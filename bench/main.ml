(* Benchmark harness.

   Part 1 (Bechamel): one microbenchmark per experiment (E1..E10) timing
   the computational kernel that regenerates it, plus throughput
   benchmarks of the substrate kernels (network evaluation per sorter,
   engine-backed 0-1 verification, tracing, Benes routing) and the
   compiled-engine microbenchmarks (compile cost, scalar compiled eval,
   batch eval, bit-sliced verification vs the scalar per-input
   baseline).

   Part 2: the full experiment tables of EXPERIMENTS.md, printed via the
   experiment registry (quick sweeps by default; set SNLB_BENCH_FULL=1
   for the full sweeps).

   Setting SNLB_BENCH_JSON=<path> instead runs only the engine
   microbenchmarks and writes a { "name": ns_per_op } JSON file for
   cross-PR perf tracking (see `make bench-json`). *)

open Bechamel
open Toolkit

(* --- benchmark subjects --- *)

let n_bench = 1024
let d_bench = 10

let pre_rng () = Xoshiro.of_seed 1234

let sorter_eval_tests =
  List.map
    (fun e ->
      let nw = e.Sorter_registry.build n_bench in
      let rng = pre_rng () in
      let input = Workload.random_permutation rng ~n:n_bench in
      Test.make
        ~name:(Printf.sprintf "eval/%s/n=%d" e.Sorter_registry.name n_bench)
        (Staged.stage (fun () -> ignore (Network.eval nw input))))
    Sorter_registry.all

(* The scalar 0-1 baseline the engine is measured against: one
   interpretive Network.eval per test input, 2^n inputs. *)
let scalar_zero_one nw =
  let n = Network.wires nw in
  let ok = ref true in
  for t = 0 to (1 lsl n) - 1 do
    if !ok then begin
      let input = Array.init n (fun w -> (t lsr w) land 1) in
      if not (Sortedness.is_sorted (Network.eval nw input)) then ok := false
    end
  done;
  !ok

let engine_tests =
  let rng = pre_rng () in
  let nw16 = Bitonic.network ~n:16 in
  let c16 = Cache.compile nw16 in
  let big = Bitonic.network ~n:n_bench in
  let cbig = Cache.compile big in
  let input = Workload.random_permutation rng ~n:n_bench in
  let batch = Workload.permutation_batch rng ~n:n_bench ~count:64 in
  [ Test.make ~name:"engine/compile/bitonic-n=1024"
      (Staged.stage (fun () -> ignore (Compiled.of_network big)));
    Test.make ~name:"engine/eval/bitonic-n=1024"
      (Staged.stage (fun () -> ignore (Compiled.eval cbig input)));
    Test.make ~name:"engine/eval-many-64/bitonic-n=1024"
      (Staged.stage (fun () -> ignore (Compiled.eval_many cbig batch)));
    Test.make ~name:"engine/zero-one-bitsliced/bitonic-n=16"
      (Staged.stage (fun () -> ignore (Bitslice.is_sorting_network c16)));
    Test.make ~name:"engine/zero-one-bitsliced-4dom/bitonic-n=16"
      (Staged.stage (fun () ->
           ignore (Bitslice.is_sorting_network ~domains:4 c16)));
    Test.make ~name:"verify/zero-one-scalar/bitonic-n=16"
      (Staged.stage (fun () -> ignore (scalar_zero_one nw16))) ]

let kernel_tests =
  let rng = pre_rng () in
  let nw16 = Bitonic.network ~n:16 in
  let input_bench = Workload.random_permutation rng ~n:n_bench in
  let bitonic_big = Bitonic.network ~n:n_bench in
  let perm = Perm.random rng n_bench in
  [ Test.make ~name:"verify/zero-one-engine/bitonic-n=16"
      (Staged.stage (fun () -> ignore (Zero_one.is_sorting_network nw16)));
    Test.make ~name:"verify/zero-one-engine-4dom/bitonic-n=16"
      (Staged.stage (fun () ->
           ignore (Zero_one.is_sorting_network ~domains:4 nw16)));
    Test.make ~name:"io/serialise+parse/bitonic-n=1024"
      (Staged.stage (fun () ->
           match Network_io.of_string (Network_io.to_string bitonic_big) with
           | Ok _ -> ()
           | Error e -> failwith e));
    Test.make ~name:"trace/bitonic/n=1024"
      (Staged.stage (fun () -> ignore (Trace.run bitonic_big input_bench)));
    Test.make ~name:"route/benes/n=1024"
      (Staged.stage (fun () -> ignore (Benes.route perm)));
    Test.make ~name:"build/bitonic-shuffle-program/n=1024"
      (Staged.stage (fun () -> ignore (Bitonic.shuffle_program ~n:n_bench)));
    (let v = Array.init n_bench (fun i -> i) in
     Test.make ~name:"machine/prefix-scan/n=1024"
       (Staged.stage (fun () -> ignore (Prefix.scan ~n:n_bench ~op:( + ) v))));
    (let v = Array.init n_bench (fun i -> i * 37) in
     Test.make ~name:"machine/ntt-forward/n=1024"
       (Staged.stage (fun () -> ignore (Ntt.forward ~n:n_bench v)))) ]

(* One kernel bench per experiment table. *)
let experiment_tests =
  let rng = pre_rng () in
  let block_rd =
    Random_net.reverse_delta rng ~levels:d_bench ~density:0.9 ~swap_prob:0.1
  in
  let rand_prog = Shuffle_net.random_program rng ~n:n_bench ~stages:(3 * d_bench) in
  let rand_it = Shuffle_net.to_iterated rand_prog in
  let rand_nw = Iterated.to_network rand_it in
  let bitonic_it = Bitonic.as_iterated ~n:n_bench in
  let bitonic_prog = Bitonic.shuffle_program ~n:n_bench in
  let cert_result = Theorem41.run rand_it in
  let e9_prefix =
    let stages =
      List.filteri (fun i _ -> i < 5 * d_bench) (Register_model.stages bitonic_prog)
    in
    Register_model.to_network (Register_model.create ~n:n_bench stages)
  in
  let e9_input = Workload.random_permutation rng ~n:n_bench in
  [ Test.make ~name:"E1/lemma41-block/n=1024"
      (Staged.stage (fun () ->
           let st = Mset.create ~n:n_bench ~k:d_bench in
           ignore (Lemma41.run st block_rd)));
    Test.make ~name:"E2/theorem41-3-blocks/n=1024"
      (Staged.stage (fun () -> ignore (Theorem41.run rand_it)));
    Test.make ~name:"E3/certificate-extract+validate/n=1024"
      (Staged.stage (fun () ->
           match Certificate.of_pattern cert_result.Theorem41.final_pattern with
           | Some cert -> assert (Certificate.validate rand_nw cert = Ok ())
           | None -> ()));
    Test.make ~name:"E4/naive-adversary/n=1024"
      (Staged.stage (fun () -> ignore (Naive.run rand_nw)));
    Test.make ~name:"E5/depth-formulas"
      (Staged.stage (fun () ->
           ignore (Bitonic.depth_formula ~n:n_bench);
           ignore (Theorem41.depth_lower_bound ~n:n_bench)));
    Test.make ~name:"E6/theorem41-vs-bitonic/n=1024"
      (Staged.stage (fun () -> ignore (Theorem41.run bitonic_it)));
    Test.make ~name:"E7/adaptive-steering-2-blocks/n=256"
      (Staged.stage (fun () ->
           ignore (Adaptive.run ~n:256 ~blocks:2 Adaptive.steering_killer)));
    Test.make ~name:"E8/truncated-f=5/n=1024"
      (Staged.stage (fun () -> ignore (Truncated.run ~f:5 bitonic_prog)));
    Test.make ~name:"E9/prefix-eval/n=1024"
      (Staged.stage (fun () -> ignore (Network.eval e9_prefix e9_input)));
    Test.make ~name:"E10/shuffle-block-parse/n=1024"
      (Staged.stage (fun () ->
           ignore (Shuffle_net.to_iterated rand_prog)));
    Test.make ~name:"E11/min-depth-search/n=4-depth-3"
      (Staged.stage (fun () ->
           match Min_depth.search ~n:4 ~depth:3 () with
           | Min_depth.Sorter _ -> ()
           | Min_depth.Impossible | Min_depth.Inconclusive | Min_depth.Interrupted -> assert false));
    Test.make ~name:"E12/shellsort-build/ciura-n=1024"
      (Staged.stage (fun () ->
           ignore
             (Shellsort_net.network ~n:n_bench
                ~increments:(Shellsort_net.ciura ~n:n_bench)))) ]

let all_tests =
  Test.make_grouped ~name:"snlb"
    (experiment_tests @ engine_tests @ kernel_tests @ sorter_eval_tests)

let run_bechamel tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock; minor_allocated ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  (* plain-text rendering: ns/run and words/run per test *)
  let tbl =
    Ascii_table.create
      ~columns:
        [ ("benchmark", Ascii_table.Left);
          ("time/run", Ascii_table.Right);
          ("minor-alloc/run", Ascii_table.Right) ]
  in
  let value_of results name =
    match Hashtbl.find_opt results name with
    | None -> None
    | Some ols -> (
        match Analyze.OLS.estimates ols with
        | Some (est :: _) -> Some est
        | Some [] | None -> None)
  in
  let clock = Hashtbl.find merged (Measure.label Instance.monotonic_clock) in
  let alloc = Hashtbl.find merged (Measure.label Instance.minor_allocated) in
  let names = ref [] in
  Hashtbl.iter (fun name _ -> names := name :: !names) clock;
  let pp_time ns =
    if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
    else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  List.iter
    (fun name ->
      let time =
        match value_of clock name with None -> "-" | Some v -> pp_time v
      in
      let words =
        match value_of alloc name with
        | None -> "-"
        | Some v -> Printf.sprintf "%.0f w" v
      in
      Ascii_table.add_row tbl [ name; time; words ])
    (List.sort compare !names);
  print_endline "=== Bechamel microbenchmarks ===";
  Ascii_table.print tbl;
  (* name -> ns/op for callers that post-process (speedup, JSON) *)
  List.filter_map
    (fun name ->
      match value_of clock name with
      | None -> None
      | Some ns -> Some (name, ns))
    (List.sort compare !names)

let report_engine_speedup results =
  let find suffix =
    List.find_opt (fun (name, _) -> String.ends_with ~suffix name) results
  in
  match
    ( find "verify/zero-one-scalar/bitonic-n=16",
      find "engine/zero-one-bitsliced/bitonic-n=16" )
  with
  | Some (_, scalar), Some (_, sliced) when sliced > 0. ->
      Printf.printf
        "\nengine speedup: bit-sliced 0-1 verification of bitonic n=16 is \
         %.0fx the scalar per-input baseline (%.2f ms -> %.3f ms)\n"
        (scalar /. sliced) (scalar /. 1e6) (sliced /. 1e6)
  | _ -> ()

let write_json path results =
  let oc = open_out path in
  output_string oc "{\n";
  List.iteri
    (fun i (name, ns) ->
      Printf.fprintf oc "  %S: %.2f%s\n" name ns
        (if i = List.length results - 1 then "" else ","))
    results;
  output_string oc "}\n";
  close_out oc;
  Printf.printf "wrote %s (%d benchmarks, ns/op)\n" path (List.length results)

(* Global observability counters, folded into the JSON files so the
   perf trajectory carries cache behaviour (hits / misses / evictions)
   and search work (nodes / pruned / subsumed) alongside ns/op. *)
let obs_rows () =
  let counters =
    List.map
      (fun (name, v) -> ("obs/" ^ name, float_of_int v))
      (Metrics.counters ())
  in
  let hists =
    List.concat_map
      (fun (name, s) ->
        [ ("obs/" ^ name ^ ".count", float_of_int s.Metrics.count);
          ("obs/" ^ name ^ ".mean", Metrics.mean s) ])
      (Metrics.histograms ())
  in
  counters @ hists

(* Wide (int64-transpose) vs chunked-63 batch evaluation of the same
   mask sample — the eval-many speedup row `make bench-json` asserts
   at >= 3x. Both sides count sorted outputs over an 8192-mask random
   sample through the same compiled bitonic n=16, so the row isolates
   the lane-packing strategy: per-mask bit gather/scatter against the
   64x64 bit-matrix transpose. *)
let eval_many_rows () =
  let wires = 16 in
  let c = Cache.compile (Bitonic.network ~n:wires) in
  let rng = pre_rng () in
  let masks = Array.init 8192 (fun _ -> Xoshiro.int rng ~bound:(1 lsl wires)) in
  let expect = Bitslice.count_sorted_masks c masks in
  let scratch = Bitslice.scratch () in
  let best f =
    let best = ref infinity in
    for _ = 1 to 5 do
      let t0 = Clock.wall () in
      assert (f () = expect);
      best := min !best (Clock.wall () -. t0)
    done;
    !best
  in
  let chunked = best (fun () -> Bitslice.count_sorted_masks c masks) in
  let wide =
    best (fun () -> Bitslice.count_sorted_masks_wide ~scratch c masks)
  in
  [ ("engine/eval-many/chunked-63/wall_ms", chunked *. 1e3);
    ("engine/eval-many/wide-64/wall_ms", wide *. 1e3);
    ("engine/eval-many/speedup", if wide > 0. then chunked /. wide else 0.) ]

(* Search-engine throughput: wall-clock rows for the exact-bounds BFS,
   written as the same flat name -> float JSON as the engine file. Each
   configuration contributes wall_ms / nodes / nodes_per_s /
   peak_frontier / depth. The pruned n=6 run is the headline
   (optimal-depth certification); the subsumption-free reference run
   exposes the node reduction the pruning buys; the multi-domain rows
   exercise Par-parallel expansion (any speedup is hardware-dependent —
   a single-core host shows pure domain overhead). *)
let search_json_rows () =
  (* sharded vs single-process on one deliberately expansion-heavy
     workload: the unrestricted n=8 system cut at depth 3, whose last
     level is ~99% of the work — the shape where fanning a level over
     worker processes can win. On a multi-core host the speedup row is
     asserted >= 1.5x with 4 shards; on a single core no parallel
     speedup is physically possible, so `make bench-json` relaxes the
     floor to a sanity bound and says so (the row still tracks
     supervisor + serialization overhead, which is a few ms/level).
     Computed first: OCaml 5 forbids Unix.fork once any domain has
     been spawned, so the fork-based rows must precede every ~domains
     fan-out (and the caller runs this whole section before the
     bechamel loops). *)
  let shard_rows =
    let n = 8 and shards = 4 and max_depth = 3 in
    let expect_unsorted = function
      | Driver.Unsorted _ -> ()
      | _ -> failwith "n=8 depth<=3 should be Unsorted"
    in
    let t0 = Clock.wall () in
    expect_unsorted
      (Driver.run ~engine:`Legacy ~max_depth
         (Driver.network_system ~restrict:false ~n ()));
    let single = Clock.wall () -. t0 in
    let dir = Filename.temp_file "snlb-bench-shard" "" in
    Sys.remove dir;
    let sharded =
      Fun.protect
        ~finally:(fun () ->
          (match Sys.readdir dir with
          | entries ->
              Array.iter
                (fun f ->
                  try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
                entries
          | exception Sys_error _ -> ());
          try Sys.rmdir dir with Sys_error _ -> ())
        (fun () ->
          let t0 = Clock.wall () in
          (match
             Shard_search.run ~shards ~dir ~max_depth
               (Driver.network_system ~restrict:false ~n ())
           with
          | Ok outcome -> expect_unsorted outcome
          | Error e -> failwith ("sharded bench run: " ^ e));
          Clock.wall () -. t0)
    in
    [ ("search/n=8/shard/single/wall_ms", single *. 1e3);
      ( Printf.sprintf "search/n=8/shard/shards=%d/wall_ms" shards,
        sharded *. 1e3 );
      ( "search/n=8/shard_speedup",
        if sharded > 0. then single /. sharded else 0. );
      ("search/shard/cores", float_of_int (Par.recommended_domains ())) ]
  in
  let k = max 2 (Par.recommended_domains ()) in
  let time_run ?checkpoint ~tag ~restrict ~domains n =
    let t0 = Clock.wall () in
    let outcome = Driver.optimal_depth ?checkpoint ~restrict ~domains ~n () in
    let wall = Clock.wall () -. t0 in
    let stats, depth =
      match outcome with
      | Driver.Sorted { depth; stats; _ } -> (stats, depth)
      | Driver.Unsorted stats | Driver.Inconclusive stats | Driver.Interrupted stats -> (stats, -1)
    in
    let prefix = Printf.sprintf "search/n=%d/%s/domains=%d" n tag domains in
    [ (prefix ^ "/wall_ms", wall *. 1e3);
      (prefix ^ "/nodes", float_of_int stats.Driver.nodes);
      ( prefix ^ "/nodes_per_s",
        if wall > 0. then float_of_int stats.Driver.nodes /. wall else 0. );
      (prefix ^ "/pruned", float_of_int stats.Driver.pruned);
      (prefix ^ "/deduped", float_of_int stats.Driver.deduped);
      (prefix ^ "/subsumed", float_of_int stats.Driver.subsumed);
      (prefix ^ "/redundant", float_of_int stats.Driver.redundant);
      (prefix ^ "/peak_frontier", float_of_int stats.Driver.peak_frontier);
      (prefix ^ "/elapsed_wall_s", stats.Driver.elapsed);
      (prefix ^ "/elapsed_cpu_s", stats.Driver.elapsed_cpu);
      (prefix ^ "/depth", float_of_int depth) ]
  in
  (* checkpointing overhead: the same n=7 pruned search with
     checkpointing on. pruned-ckpt uses the CLI's default 60 s cadence
     — on a sub-second run no write falls due, so the row isolates the
     steady-state cost between flushes (a closure per boundary), which
     must stay < 2% of the plain run. pruned-ckpt0 flushes at every
     boundary (interval 0), the worst case, so the obs/checkpoint.*
     rows alongside carry real write counts, bytes and timings. *)
  let checkpointed ~tag ~interval =
    let path = Filename.temp_file "snlb-bench" ".snap" in
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun p -> if Sys.file_exists p then Sys.remove p)
          [ path; Atomic_file.backup_path path ])
      (fun () ->
        time_run ~checkpoint:(path, interval) ~tag ~restrict:true ~domains:1 7)
  in
  (* arena vs legacy engine on one prebuilt n=8 pruned system — the
     run only, so system construction (layer tables, symmetry
     reduction) is excluded from both sides. Best of 3 to shave timing
     noise; `make bench-json` asserts the speedup row at >= 5x. *)
  let engine_rows =
    let n = 8 in
    let sys = Driver.network_system ~n () in
    let best engine =
      let best = ref infinity in
      for _ = 1 to 3 do
        let t0 = Clock.wall () in
        (match Driver.run ~engine ~max_depth:n sys with
        | Driver.Sorted { depth = 6; _ } -> ()
        | _ -> failwith "n=8 optimal depth should be 6");
        best := min !best (Clock.wall () -. t0)
      done;
      !best
    in
    let legacy = best `Legacy in
    let arena = best `Arena in
    [ ("search/n=8/engine=legacy/wall_ms", legacy *. 1e3);
      ("search/n=8/engine=arena/wall_ms", arena *. 1e3);
      ("search/n=8/arena_speedup", if arena > 0. then legacy /. arena else 0.)
    ]
  in
  List.concat
    [ time_run ~tag:"pruned" ~restrict:true ~domains:1 6;
      time_run ~tag:"pruned" ~restrict:true ~domains:k 6;
      time_run ~tag:"reference" ~restrict:false ~domains:1 6;
      time_run ~tag:"reference" ~restrict:false ~domains:k 6;
      time_run ~tag:"pruned" ~restrict:true ~domains:1 7;
      time_run ~tag:"pruned" ~restrict:true ~domains:k 7;
      checkpointed ~tag:"pruned-ckpt" ~interval:60.;
      checkpointed ~tag:"pruned-ckpt0" ~interval:0.;
      engine_rows;
      shard_rows ]

(* Analyzer throughput: repeated full analyses (structural lints, both
   abstract domains' walk, conformance recognizers) of mid-size bitonic
   networks, reported as networks/sec and comparators/sec so analyzer
   perf regressions show up in the same trajectory as engine ns/op.
   n = 16/32 sit above the exact-domain cutoff, so these rows time the
   order-bounds domain — the one that scales with network size. *)
let analysis_json_rows () =
  let time_net ~name nw =
    let comparators = Network.size nw in
    let reps = 100 in
    ignore (Analysis.analyze nw) (* warm-up *);
    let t0 = Clock.wall () in
    for _ = 1 to reps do
      ignore (Analysis.analyze nw)
    done;
    let per = (Clock.wall () -. t0) /. float_of_int reps in
    let prefix = "analysis/" ^ name in
    [ (prefix ^ "/wall_ms", per *. 1e3);
      (prefix ^ "/networks_per_s", if per > 0. then 1. /. per else 0.);
      ( prefix ^ "/comparators_per_s",
        if per > 0. then float_of_int comparators /. per else 0. ) ]
  in
  List.concat
    [ time_net ~name:"bitonic-n=16" (Bitonic.network ~n:16);
      time_net ~name:"bitonic-n=32" (Bitonic.network ~n:32) ]

(* Serve scheduler throughput: the in-process Batcher under a 32-client
   concurrent workload, batched (gather window + shared engine passes)
   vs sequential one-request-per-pass (window 0, max_batch 1) — the
   same baseline mode the daemon degrades to with batching disabled.
   Two workloads: 0-1 eval requests, which lane-pack up to 63 clients
   per bit-sliced pass (lane_fill_ratio = lanes used / 63 * passes),
   and verify requests on one network, which coalesce into a single
   2^n sweep per round. The cache is off so every row measures
   scheduler + engine work, not response-cache hits. *)
let serve_json_rows () =
  let clients = 32 in
  let nw = Odd_even_merge.network ~n:16 in
  let run_clients ~config ~per_client ~job =
    let b = Batcher.create config in
    let t0 = Clock.wall () in
    let threads =
      List.init clients (fun c ->
          Thread.create
            (fun () ->
              for k = 1 to per_client do
                job b c k
              done)
            ())
    in
    List.iter Thread.join threads;
    let wall = Clock.wall () -. t0 in
    Batcher.drain b;
    let n = clients * per_client in
    (wall, if wall > 0. then float_of_int n /. wall else 0.)
  in
  let batched =
    { Batcher.window = 0.001; max_batch = 1024; domains = 1; cache = None }
  in
  let sequential =
    { Batcher.window = 0.; max_batch = 1; domains = 1; cache = None }
  in
  let rows ~tag ~rps_b ~rps_s ~work_name ~work_b ~work_s =
    let prefix m = Printf.sprintf "serve/%s/%s" tag m in
    [ (prefix "batched/requests_per_s", rps_b);
      (prefix "sequential/requests_per_s", rps_s);
      (prefix "speedup", if rps_s > 0. then rps_b /. rps_s else 0.);
      (prefix ("batched/" ^ work_name), float_of_int work_b);
      (prefix ("sequential/" ^ work_name), float_of_int work_s) ]
  in
  let verify_job b _ _ = ignore (Batcher.verify b nw) in
  let verify_rows =
    let s0 = Batcher.sweeps () in
    let _, rps_b =
      run_clients ~config:batched ~per_client:8 ~job:verify_job
    in
    let s1 = Batcher.sweeps () in
    let _, rps_s =
      run_clients ~config:sequential ~per_client:8 ~job:verify_job
    in
    rows ~tag:"verify" ~rps_b ~rps_s ~work_name:"sweeps" ~work_b:(s1 - s0)
      ~work_s:(Batcher.sweeps () - s1)
  in
  let eval_job b c k =
    ignore (Batcher.eval01 b nw (((c * 131) + (k * 7919)) land 0xFFFF))
  in
  let eval_rows =
    let p0 = Batcher.eval_passes () and l0 = Batcher.eval_lanes () in
    let _, rps_b = run_clients ~config:batched ~per_client:32 ~job:eval_job in
    let p1 = Batcher.eval_passes () and l1 = Batcher.eval_lanes () in
    let _, rps_s =
      run_clients ~config:sequential ~per_client:32 ~job:eval_job
    in
    (* lanes/passes of the batched run: 1.0 would mean every bit-sliced
       pass carried a full 63 client inputs *)
    let fill =
      if p1 > p0 then
        float_of_int (l1 - l0) /. float_of_int ((p1 - p0) * Bitslice.lanes)
      else 0.
    in
    rows ~tag:"eval" ~rps_b ~rps_s ~work_name:"passes" ~work_b:(p1 - p0)
      ~work_s:(Batcher.eval_passes () - p1)
    @ [ ("serve/eval/lane_fill_ratio", fill) ]
  in
  verify_rows @ eval_rows

(* evolve: the population fitness kernel is the hot loop of the
   evolutionary search — one compile plus one lane-packed 2^n sweep
   per genome, fanned out over domains.  Rows give nets/s over a
   fixed population of random n=8 genomes at 1 and K domains, the
   generational driver end to end, and the differential fuzzer's
   whole-stack checking rate. *)
let evolve_json_rows () =
  let wires = 8 and depth = 6 and pop = 512 in
  let genomes =
    let rng = Xoshiro.of_seed 1 in
    Array.init pop (fun _ -> Genome.random rng ~wires ~depth ())
  in
  let time_fitness ~domains =
    let t0 = Clock.wall () in
    let fits = Fitness.population ~domains genomes in
    let wall = Clock.wall () -. t0 in
    assert (Array.length fits = pop);
    (wall, if wall > 0. then float_of_int pop /. wall else 0.)
  in
  (* on a single-core box the recommended count is 1; still measure a
     genuine multi-domain row (speedup < 1 there is honest data) *)
  let k = max 2 (Par.recommended_domains ()) in
  let _, nps1 = time_fitness ~domains:1 in
  let _, npsk = time_fitness ~domains:k in
  let row ~domains v =
    (Printf.sprintf "evolve/fitness/n=%d/pop=%d/domains=%d/nets_per_s" wires
       pop domains, v)
  in
  let run_row =
    let cfg =
      { (Evolve.default_config ~wires:6 ~depth:5) with Evolve.pop = 256;
        gens = 100; seed = 1 }
    in
    let t0 = Clock.wall () in
    let r = Evolve.run cfg in
    let wall = Clock.wall () -. t0 in
    assert (r.Evolve.found_at <> None);
    [ ("evolve/run/n=6/pop=256/wall_ms", wall *. 1e3);
      ("evolve/run/n=6/pop=256/generations",
       float_of_int r.Evolve.generations) ]
  in
  let fuzz_row =
    let r = Fuzz.run ~seconds:2.0 ~seed:1 () in
    assert (r.Fuzz.disagreements = []);
    [ ("fuzz/nets_per_s",
       if r.Fuzz.elapsed > 0. then
         float_of_int r.Fuzz.checked /. r.Fuzz.elapsed
       else 0.) ]
  in
  [ row ~domains:1 nps1; row ~domains:k npsk;
    ("evolve/fitness/speedup", if nps1 > 0. then npsk /. nps1 else 0.) ]
  @ run_row @ fuzz_row

let () =
  match Sys.getenv_opt "SNLB_BENCH_JSON" with
  | Some path ->
      (* The search rows run first: the shard benchmark forks worker
         processes, and OCaml 5 forbids Unix.fork once any domain has
         been spawned — which both the bechamel engine loop and the
         later multi-domain rows do. Fork-before-domains, always. *)
      let search_out =
        match Sys.getenv_opt "SNLB_BENCH_SEARCH_JSON" with
        | Some search_path ->
            Metrics.reset ();
            let rows = search_json_rows () in
            Some (search_path, rows @ obs_rows ())
        | None -> None
      in
      Metrics.reset ();
      (* engine-only run: fast, machine-readable perf trajectory *)
      let results =
        run_bechamel (Test.make_grouped ~name:"snlb" engine_tests)
      in
      report_engine_speedup results;
      (* the obs/ rows carry whatever the bechamel loops accumulated in
         the global registry (cache hit/miss/eviction traffic, verify
         sweep rates) *)
      write_json path (results @ eval_many_rows () @ obs_rows ());
      (match search_out with
       | Some (search_path, rows) -> write_json search_path rows
       | None -> ());
      (match Sys.getenv_opt "SNLB_BENCH_ANALYSIS_JSON" with
       | Some analysis_path ->
           Metrics.reset ();
           let rows = analysis_json_rows () in
           write_json analysis_path (rows @ obs_rows ())
       | None -> ());
      (match Sys.getenv_opt "SNLB_BENCH_SERVE_JSON" with
       | Some serve_path ->
           Metrics.reset ();
           let rows = serve_json_rows () in
           write_json serve_path (rows @ obs_rows ())
       | None -> ());
      (match Sys.getenv_opt "SNLB_BENCH_EVOLVE_JSON" with
       | Some evolve_path ->
           Metrics.reset ();
           let rows = evolve_json_rows () in
           write_json evolve_path (rows @ obs_rows ())
       | None -> ())
  | None ->
      let results = run_bechamel all_tests in
      report_engine_speedup results;
      let quick = Sys.getenv_opt "SNLB_BENCH_FULL" = None in
      Printf.printf
        "\n=== Experiment tables (%s sweeps; see EXPERIMENTS.md) ===\n"
        (if quick then "quick" else "full");
      Registry.run_all ~quick
