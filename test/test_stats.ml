(* Tests for statistics and table rendering. *)

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let check_str = Alcotest.(check string)

let test_summary_basic () =
  let s = Stat_summary.of_ints [ 1; 2; 3; 4; 5 ] in
  check_float "mean" 3.0 s.Stat_summary.mean;
  check_float "min" 1.0 s.Stat_summary.min;
  check_float "max" 5.0 s.Stat_summary.max;
  check_float "median" 3.0 s.Stat_summary.median;
  check_float "stddev" (sqrt 2.5) s.Stat_summary.stddev;
  Alcotest.(check int) "count" 5 s.Stat_summary.count

let test_summary_single () =
  let s = Stat_summary.of_floats [ 7.5 ] in
  check_float "mean" 7.5 s.Stat_summary.mean;
  check_float "stddev 0" 0.0 s.Stat_summary.stddev

let test_summary_empty_rejected () =
  check_bool "raises" true
    (match Stat_summary.of_floats [] with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_quantile () =
  let xs = [ 1.; 2.; 3.; 4. ] in
  check_float "q0" 1.0 (Stat_summary.quantile xs 0.);
  check_float "q1" 4.0 (Stat_summary.quantile xs 1.);
  check_float "median interpolates" 2.5 (Stat_summary.quantile xs 0.5);
  check_bool "out of range" true
    (match Stat_summary.quantile xs 1.5 with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_table_render () =
  let t =
    Ascii_table.create
      ~columns:[ ("name", Ascii_table.Left); ("value", Ascii_table.Right) ]
  in
  Ascii_table.add_row t [ "alpha"; "1" ];
  Ascii_table.add_row t [ "b"; "22" ];
  let r = Ascii_table.render t in
  check_str "render"
    "name   value\n-----  -----\nalpha      1\nb         22\n" r

let test_table_arity_checked () =
  let t = Ascii_table.create ~columns:[ ("a", Ascii_table.Left) ] in
  check_bool "raises" true
    (match Ascii_table.add_row t [ "x"; "y" ] with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_table_int_row () =
  let t =
    Ascii_table.create
      ~columns:[ ("a", Ascii_table.Right); ("b", Ascii_table.Right) ]
  in
  Ascii_table.add_int_row t [ 10; 20 ];
  check_bool "contains" true
    (String.length (Ascii_table.render t) > 0)

let test_csv () =
  let t =
    Ascii_table.create
      ~columns:[ ("name", Ascii_table.Left); ("note", Ascii_table.Left) ]
  in
  Ascii_table.add_row t [ "a,b"; "say \"hi\"" ];
  let csv = Ascii_table.to_csv t in
  check_str "escaped" "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n" csv

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantile is monotone in q" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 30) (float_bound_exclusive 100.))
              (pair (float_bound_inclusive 1.) (float_bound_inclusive 1.)))
    (fun (xs, (q1, q2)) ->
      let lo = min q1 q2 and hi = max q1 q2 in
      Stat_summary.quantile xs lo <= Stat_summary.quantile xs hi +. 1e-9)

let prop_mean_between_min_max =
  QCheck.Test.make ~name:"mean within [min,max]" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_bound_exclusive 1000.))
    (fun xs ->
      let s = Stat_summary.of_floats xs in
      s.Stat_summary.min <= s.Stat_summary.mean +. 1e-9
      && s.Stat_summary.mean <= s.Stat_summary.max +. 1e-9)

let () =
  Alcotest.run "stats"
    [ ( "summary",
        [ Alcotest.test_case "basic" `Quick test_summary_basic;
          Alcotest.test_case "single" `Quick test_summary_single;
          Alcotest.test_case "empty" `Quick test_summary_empty_rejected;
          Alcotest.test_case "quantile" `Quick test_quantile ] );
      ( "table",
        [ Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity" `Quick test_table_arity_checked;
          Alcotest.test_case "int rows" `Quick test_table_int_row;
          Alcotest.test_case "csv escaping" `Quick test_csv ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_quantile_monotone; prop_mean_between_min_max ] ) ]
