(* Tests for text serialisation and ASCII diagrams. *)

let check_bool = Alcotest.(check bool)

let roundtrips nw =
  match Network_io.of_string (Network_io.to_string nw) with
  | Error e -> Alcotest.fail ("roundtrip parse failed: " ^ e)
  | Ok nw2 ->
      Alcotest.(check int) "wires" (Network.wires nw) (Network.wires nw2);
      Alcotest.(check int) "size" (Network.size nw) (Network.size nw2);
      let rng = Xoshiro.of_seed 7 in
      for _ = 1 to 20 do
        let input = Workload.random_permutation rng ~n:(Network.wires nw) in
        Alcotest.(check (array int)) "same function"
          (Network.eval nw input) (Network.eval nw2 input)
      done

let test_roundtrip_sorters () =
  List.iter
    (fun e ->
      let n = if e.Sorter_registry.pow2_only then 16 else 12 in
      roundtrips (e.Sorter_registry.build n))
    Sorter_registry.all

let test_roundtrip_with_perms_and_exchanges () =
  let rng = Xoshiro.of_seed 3 in
  let prog = Shuffle_net.random_program rng ~n:16 ~stages:6 in
  roundtrips (Register_model.to_network prog);
  roundtrips (Benes.route (Perm.random rng 16))

(* simple substring search, avoiding a Str dependency *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let expect_error text fragment =
  match Network_io.of_string text with
  | Ok _ -> Alcotest.fail ("parser accepted: " ^ text)
  | Error e -> check_bool (e ^ " mentions " ^ fragment) true (contains e fragment)

let test_parse_errors () =
  expect_error "wires 4\n" "header";
  expect_error "snlb-network 2\nwires 4\n" "version";
  expect_error "snlb-network 1\nwires 4\ncmp 0 1\n" "outside a level";
  expect_error "snlb-network 1\nwires 4\nlevel\ncmp 0 0\n" "distinct";
  expect_error "snlb-network 1\nwires 4\nlevel\ncmp zero 1\n" "integer";
  expect_error "snlb-network 1\nwires 4\nlevel\ncmp 0 1\nperm 1 0 3 2\n" "precede";
  expect_error "snlb-network 1\nwires 4\nlevel\nfrobnicate\n" "unrecognised";
  (* out-of-range and duplicate wires, per directive kind, each with
     the offending line number *)
  expect_error "snlb-network 1\nwires 4\nlevel\ncmp 0 9\n" "line 4: cmp wire 9 out of range";
  expect_error "snlb-network 1\nwires 4\nlevel\ncmp -1 2\n" "out of range";
  expect_error "snlb-network 1\nwires 4\nlevel\nxchg 0 7\n" "line 4: xchg wire 7 out of range";
  expect_error "snlb-network 1\nwires 4\nlevel\nxchg -2 1\n" "out of range";
  expect_error "snlb-network 1\nwires 4\nlevel\ncmp 0 1\ncmp 1 2\n"
    "line 5: cmp (1, 2) reuses a wire";
  expect_error "snlb-network 1\nwires 4\nlevel\ncmp 0 1\nxchg 2 0\n"
    "line 5: xchg (2, 0) reuses a wire";
  expect_error "snlb-network 1\nwires 4\nlevel\nperm 0 1 2\n" "expected 4";
  expect_error "snlb-network 1\nwires 4\nlevel\nperm 0 1 2 9\n"
    "line 4: perm entry 9 out of range";
  expect_error "snlb-network 1\nwires 4\nlevel\nperm 0 1 2 -1\n" "out of range";
  expect_error "snlb-network 1\nwires 4\nlevel\nperm 0 0 1 2\n"
    "line 4: duplicate perm entry 0"

let test_comments_and_blank_lines () =
  let text = "# a comment\nsnlb-network 1\n\nwires 2\nlevel\n# inner\ncmp 0 1\n" in
  match Network_io.of_string text with
  | Ok nw -> Alcotest.(check int) "one comparator" 1 (Network.size nw)
  | Error e -> Alcotest.fail e

let test_empty_network () =
  match Network_io.of_string "snlb-network 1\nwires 3\n" with
  | Ok nw ->
      Alcotest.(check int) "wires" 3 (Network.wires nw);
      Alcotest.(check int) "no levels" 0 (List.length (Network.levels nw))
  | Error e -> Alcotest.fail e

let test_save_load () =
  let path = Filename.temp_file "snlb" ".net" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let nw = Odd_even_merge.network ~n:8 in
      (match Network_io.save path nw with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("save failed: " ^ e));
      match Network_io.load path with
      | Ok nw2 -> Alcotest.(check int) "size" (Network.size nw) (Network.size nw2)
      | Error e -> Alcotest.fail e)

let test_load_truncated () =
  (* a file torn mid-write (e.g. by a crash under a non-atomic writer)
     must load as a clean [Error], never as a silently-shorter network
     or an exception *)
  let path = Filename.temp_file "snlb" ".net" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let nw = Odd_even_merge.network ~n:8 in
      let full = Network_io.to_string nw in
      (* cut inside a token on the last line so the damage is visible
         to the parser, not just a missing trailing level *)
      let cut = String.length full - 2 in
      let oc = open_out path in
      output_string oc (String.sub full 0 cut);
      close_out oc;
      match Network_io.load path with
      | Error e -> check_bool "error names a line" true (contains e "line")
      | Ok _ -> Alcotest.fail "truncated file loaded successfully")

(* diagrams *)

let test_diagram_shape () =
  let nw = Bitonic.network ~n:4 in
  let d = Diagram.render nw in
  let lines = String.split_on_char '\n' d |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "2n-1 rows" 7 (List.length lines);
  check_bool "has min marker" true (contains d "o");
  check_bool "has max marker" true (contains d "*");
  (* every row same width *)
  let widths = List.map String.length lines in
  check_bool "rectangular" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_diagram_exchange_marker () =
  let nw = Network.of_gate_levels ~wires:2 [ [ Gate.exchange 0 1 ] ] in
  check_bool "x marker" true (contains (Diagram.render nw) "x")

let test_diagram_guard () =
  check_bool "guard" true
    (match Diagram.render ~max_wires:4 (Bitonic.network ~n:8) with
     | exception Invalid_argument _ -> true
     | _ -> false)

let prop_roundtrip_random =
  QCheck.Test.make ~name:"random register programs roundtrip" ~count:60
    QCheck.(pair (int_range 0 100_000) (int_range 1 4))
    (fun (seed, logn) ->
      let n = 1 lsl (logn + 1) in
      let rng = Xoshiro.of_seed seed in
      let prog = Shuffle_net.random_program rng ~n ~stages:(1 + Xoshiro.int rng ~bound:6) in
      let nw = Register_model.to_network prog in
      match Network_io.of_string (Network_io.to_string nw) with
      | Error _ -> false
      | Ok nw2 ->
          let input = Workload.random_permutation rng ~n in
          Network.eval nw input = Network.eval nw2 input)

let () =
  Alcotest.run "io"
    [ ( "serialisation",
        [ Alcotest.test_case "all sorters roundtrip" `Quick test_roundtrip_sorters;
          Alcotest.test_case "perms and exchanges roundtrip" `Quick
            test_roundtrip_with_perms_and_exchanges;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "comments and blanks" `Quick test_comments_and_blank_lines;
          Alcotest.test_case "empty network" `Quick test_empty_network;
          Alcotest.test_case "save/load" `Quick test_save_load;
          Alcotest.test_case "truncated file rejected" `Quick test_load_truncated ] );
      ( "diagrams",
        [ Alcotest.test_case "shape" `Quick test_diagram_shape;
          Alcotest.test_case "exchange marker" `Quick test_diagram_exchange_marker;
          Alcotest.test_case "guard" `Quick test_diagram_guard ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_roundtrip_random ]) ]
