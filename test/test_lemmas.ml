(* Executable versions of the paper's basic lemmas (Section 3.3),
   checked on random instances against oracles. *)


(* Lemma 3.1: separately A∩W0- and A∩W1-refining the two halves of a
   pattern that uses only S0/M0/L0, with refinements staying strictly
   between S0 and L0 on A, yields an A-refinement of the whole. *)
let prop_lemma_3_1 =
  QCheck.Test.make ~name:"Lemma 3.1 (parallel refinement composes)" ~count:200
    QCheck.(pair (int_range 0 100_000) (int_range 2 16))
    (fun (seed, n) ->
      let rng = Xoshiro.of_seed seed in
      let base = [| Symbol.S 0; Symbol.M 0; Symbol.L 0 |] in
      let p = Array.init n (fun _ -> base.(Xoshiro.int rng ~bound:3)) in
      let a = Pattern.m_set p 0 in
      (* refine the M0 wires independently on even (W0) and odd (W1)
         wires into M-indices, strictly between S0 and L0 *)
      let q =
        Array.mapi
          (fun w s ->
            match s with
            | Symbol.M 0 ->
                if w mod 2 = 0 then Symbol.M (Xoshiro.int rng ~bound:3)
                else Symbol.M (Xoshiro.int rng ~bound:3)
            | s -> s)
          p
      in
      Pattern.u_refines ~u:a p q)

(* Lemma 3.2: if the [P0]- and [P1]-sets are noncolliding in the first
   d-1 levels, any cross pair either collides at level d under every
   refinement or under none.  We instantiate it where the premise holds
   by construction: the adversary's final pattern on a one-block
   network, extended by one extra comparator level. *)
let prop_lemma_3_2 =
  QCheck.Test.make ~name:"Lemma 3.2 (all-or-nothing at the next level)" ~count:30
    QCheck.(int_range 0 100_000)
    (fun (seed) ->
      let n = 8 in
      let rng = Xoshiro.of_seed seed in
      let prog = Shuffle_net.random_program rng ~n ~stages:3 in
      let it = Shuffle_net.to_iterated prog in
      let r = Theorem41.run ~k:2 it in
      let p = r.Theorem41.final_pattern in
      let m0 = Pattern.m_set p 0 in
      match m0 with
      | w0 :: w1 :: _ ->
          (* extend the network with a comparator between the two
             tracked wires' current positions... easier: append a level
             comparing the original wires w0, w1 directly at the input
             is meaningless; instead check the dichotomy on the
             *existing* network for the M0 pair: noncolliding sets =>
             "cannot collide" holds for every refinement, which the
             oracle confirms as all-or-nothing with "nothing". *)
          let nw = Iterated.to_network it in
          let ranks =
            Array.map
              (fun s ->
                match s with Symbol.S _ -> 0 | Symbol.M _ -> 1 | _ -> 2)
              p
          in
          let can = Exhaustive.can_collide_oracle nw ranks w0 w1 in
          let always = Exhaustive.collides_always_oracle nw ranks w0 w1 in
          (* dichotomy: for this pair, can => always would be the
             colliding branch; the adversary guarantees the clean one *)
          (not can) && not always
      | _ -> true)

(* Lemma 3.3: refinements of the output pattern lift to refinements of
   the input pattern with the same network image. Constructively: our
   engine builds the input pattern by exactly such lifting; check that
   propagating the final input pattern forward yields a pattern whose
   M0-set has the same cardinality (the M-symbols' paths are fixed). *)
let prop_lemma_3_3 =
  QCheck.Test.make ~name:"Lemma 3.3 (M-sets lift through the network)" ~count:60
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let n = 16 in
      let rng = Xoshiro.of_seed seed in
      let prog = Shuffle_net.random_program rng ~n ~stages:8 in
      let it = Shuffle_net.to_iterated prog in
      let r = Theorem41.run it in
      let out_pattern =
        Propagate.through (Iterated.to_network it) r.Theorem41.final_pattern
      in
      List.length (Pattern.m_set out_pattern 0)
      = List.length (Pattern.m_set r.Theorem41.final_pattern 0))

(* Lemma 3.4: the rho renaming (everything below M_i -> S0, above ->
   L0, M_i -> M0) preserves noncollision of the [M_i]-set. *)
let prop_lemma_3_4 =
  QCheck.Test.make ~name:"Lemma 3.4 (rho preserves noncollision)" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let n = 8 in
      let rng = Xoshiro.of_seed seed in
      let prog = Shuffle_net.random_program rng ~n ~stages:3 in
      let it = Shuffle_net.to_iterated prog in
      let nw = Iterated.to_network it in
      (* build a finer pattern: run one block WITHOUT the final rho by
         running Lemma41 directly *)
      let st = Mset.create ~n ~k:2 in
      let b = List.hd (Iterated.blocks it) in
      let coll, _ = Lemma41.run st b.Iterated.body in
      let chosen, size = Mset.best_set coll in
      if size < 2 then true
      else begin
        let fine = Array.copy st.Mset.input_sym in
        let fine_set = Pattern.m_set fine chosen in
        (* noncolliding before rho (oracle) *)
        let ranks p =
          let sorted = List.sort_uniq Symbol.compare (Array.to_list p) in
          Array.map
            (fun s ->
              let rec idx i = function
                | [] -> assert false
                | x :: rest -> if Symbol.equal x s then i else idx (i + 1) rest
              in
              idx 0 sorted)
            p
        in
        let noncolliding p set =
          let r = ranks p in
          let rec pairs = function
            | [] -> true
            | w :: rest ->
                List.for_all
                  (fun w' -> not (Exhaustive.can_collide_oracle nw r w w'))
                  rest
                && pairs rest
          in
          pairs set
        in
        let before = noncolliding fine fine_set in
        (* apply rho *)
        Mset.rho_rename st coll chosen;
        let coarse = Array.copy st.Mset.input_sym in
        let coarse_set = Pattern.m_set coarse 0 in
        let after = noncolliding coarse coarse_set in
        (* the lemma: noncolliding before => noncolliding after; also
           the sets coincide *)
        List.sort compare fine_set = List.sort compare coarse_set
        && ((not before) || after)
      end)

let () =
  Alcotest.run "lemmas"
    [ ( "section 3.3",
        List.map QCheck_alcotest.to_alcotest
          [ prop_lemma_3_1; prop_lemma_3_2; prop_lemma_3_3; prop_lemma_3_4 ] ) ]
