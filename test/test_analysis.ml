(* Tests for the static analyzer (lib/analysis): exact and approximate
   abstract domains against exhaustive engine evaluation, dead/redundant
   classification soundness on random networks, the standard-form
   rewrite, topology conformance certificates, and the load gate. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- helpers --- *)

let zero_one_inputs n =
  Array.init (1 lsl n) (fun m ->
      Array.init n (fun w -> (m lsr w) land 1))

(* extensional equality on all 2^n zero-one inputs, via the compiled
   engine — independent of the analyzer's arithmetic *)
let same_zero_one_function a b =
  let n = Network.wires a in
  let ca = Cache.compile a and cb = Cache.compile b in
  Array.for_all
    (fun input -> Compiled.eval ca input = Compiled.eval cb input)
    (zero_one_inputs n)

let random_network rng ~n ~levels =
  let level () =
    let wires = Array.init n (fun i -> i) in
    (* Fisher–Yates, then pair a random prefix *)
    for i = n - 1 downto 1 do
      let j = Xoshiro.int rng ~bound:(i + 1) in
      let t = wires.(i) in
      wires.(i) <- wires.(j);
      wires.(j) <- t
    done;
    let pairs = Xoshiro.int rng ~bound:((n / 2) + 1) in
    List.init pairs (fun k ->
        let a = wires.(2 * k) and b = wires.((2 * k) + 1) in
        match Xoshiro.int rng ~bound:4 with
        | 0 -> Gate.Exchange { a; b }
        | 1 -> Gate.Compare { lo = max a b; hi = min a b }
        | _ -> Gate.Compare { lo = min a b; hi = max a b })
  in
  Network.of_gate_levels ~wires:n (List.init levels (fun _ -> level ()))

(* --- exact domain vs engine: 200 random networks, n <= 10 --- *)

let test_random_agreement () =
  let rng = Xoshiro.of_seed 2024 in
  for i = 1 to 200 do
    let n = 2 + Xoshiro.int rng ~bound:9 (* 2..10 *) in
    let levels = 1 + Xoshiro.int rng ~bound:8 in
    let nw = random_network rng ~n ~levels in
    let r = Analysis.analyze ~cross_check:true nw in
    check_bool "exact domain used" true r.facts.exact;
    (* sortedness verdict agrees with exhaustive evaluation *)
    let engine_sorts = Zero_one.is_sorting_network nw in
    let claimed = r.facts.sortedness = Analysis.Sorting_proved in
    if claimed <> engine_sorts then
      Alcotest.failf "net %d (n=%d): analyzer %b, engine %b" i n claimed
        engine_sorts;
    (* the built-in cross-check must agree too (no SNL999) *)
    check_bool "no internal disagreement" false
      (List.exists (fun (d : Diag.t) -> d.code = "SNL999") r.diags);
    (* removing dead comparators preserves the 0-1 function *)
    check_bool "dead removal preserves function" true
      (same_zero_one_function nw (Analysis.remove_dead nw r.facts));
    (* flipping redundant comparators preserves the 0-1 function *)
    check_bool "redundant flip preserves function" true
      (same_zero_one_function nw (Analysis.flip_redundant nw r.facts))
  done

(* The exact domain's dead classification, cross-validated against
   concrete simulation: a gate is marked dead iff NO 0-1 input makes
   it act (comparator seeing lo=1/hi=0, exchange seeing unequal bits).
   This checks soundness AND completeness of Reach's transfer function
   through an independent level-stepping evaluator. (Note: "live"
   does not mean "removal changes the function" — a live comparator's
   effect can be masked downstream; dead => removable only.) *)
let test_dead_iff_never_fires () =
  let rng = Xoshiro.of_seed 7 in
  for _ = 1 to 20 do
    let n = 2 + Xoshiro.int rng ~bound:5 in
    let nw = random_network rng ~n ~levels:(1 + Xoshiro.int rng ~bound:4) in
    let r = Analysis.analyze nw in
    let dead =
      List.map (fun g -> (g.Analysis.level, g.Analysis.gate)) r.facts.dead
    in
    (* fires.(level).(gate) <- true when some input makes the gate act *)
    let fires =
      Array.of_list
        (List.map
           (fun (l : Network.level) ->
             Array.make (max 1 (List.length l.gates)) false)
           (Network.levels nw))
    in
    for m = 0 to (1 lsl n) - 1 do
      let v = Array.init n (fun w -> (m lsr w) land 1) in
      List.iteri
        (fun li (level : Network.level) ->
          (match level.pre with
          | None -> ()
          | Some p ->
              let moved = Perm.permute_array p (Array.copy v) in
              Array.blit moved 0 v 0 n);
          List.iteri
            (fun gi g ->
              match g with
              | Gate.Compare { lo; hi } ->
                  if v.(lo) > v.(hi) then fires.(li).(gi) <- true
              | Gate.Exchange { a; b } ->
                  if v.(a) <> v.(b) then fires.(li).(gi) <- true)
            level.gates;
          List.iter
            (fun g ->
              match g with
              | Gate.Compare { lo; hi } ->
                  if v.(lo) > v.(hi) then begin
                    let t = v.(lo) in
                    v.(lo) <- v.(hi);
                    v.(hi) <- t
                  end
              | Gate.Exchange { a; b } ->
                  let t = v.(a) in
                  v.(a) <- v.(b);
                  v.(b) <- t)
            level.gates)
        (Network.levels nw)
    done;
    List.iteri
      (fun li (level : Network.level) ->
        List.iteri
          (fun gi _ ->
            check_bool "dead iff never fires" (not (List.mem (li + 1, gi) dead))
              fires.(li).(gi))
          level.gates)
      (Network.levels nw)
  done

(* --- bounds domain: sound, never contradicts the exact domain --- *)

let test_bounds_sound () =
  let rng = Xoshiro.of_seed 99 in
  for _ = 1 to 100 do
    let n = 2 + Xoshiro.int rng ~bound:7 in
    let nw = random_network rng ~n ~levels:(1 + Xoshiro.int rng ~bound:6) in
    let exact = Analysis.analyze nw in
    let approx = Analysis.analyze ~exact_max_wires:0 nw in
    check_bool "bounds domain used" false approx.facts.exact;
    (* bounds sortedness claim implies engine sortedness *)
    if approx.facts.sortedness = Analysis.Sorted_by_bounds then
      check_bool "bounds sortedness is sound" true
        (Zero_one.is_sorting_network nw);
    (* every bounds-dead gate is exactly dead, ditto redundant *)
    let key g = (g.Analysis.level, g.Analysis.gate) in
    let sub a b =
      List.for_all (fun g -> List.mem (key g) (List.map key b)) a
    in
    check_bool "bounds dead subset of exact dead" true
      (sub approx.facts.dead exact.facts.dead);
    check_bool "bounds redundant subset of exact redundant" true
      (sub approx.facts.redundant exact.facts.redundant)
  done;
  (* the bounds domain does prove bitonic sorts (it is complete enough
     for comparator chains? no — it is not; just assert soundness on a
     sorted-by-construction instance where it can decide: a single
     bubble pass on 2 wires) *)
  let two = Network.of_gate_levels ~wires:2 [ [ Gate.compare_up 0 1 ] ] in
  let r = Analysis.analyze ~exact_max_wires:0 two in
  check_bool "n=2 proved by bounds" true
    (r.Analysis.facts.sortedness = Analysis.Sorted_by_bounds)

(* odd-even transposition is proved sorted by the bounds domain at
   sizes far beyond the exact cutoff (the 0-1 sets would be 2^64) *)
let test_bounds_large () =
  let nw = Transposition.network ~n:64 in
  let r = Analysis.analyze nw in
  check_bool "large: bounds domain" false r.facts.exact;
  check_bool "large: no dead comparators" true (r.facts.dead = []);
  check_bool "large transposition proved" true
    (r.facts.sortedness = Analysis.Sorted_by_bounds)

(* --- dead/redundant detection on crafted networks --- *)

let test_injected_dead () =
  (* sort 4 wires, then re-compare (0,1): provably dead *)
  let nw =
    Network.of_gate_levels ~wires:4
      [
        [ Gate.compare_up 0 1; Gate.compare_up 2 3 ];
        [ Gate.compare_up 0 2; Gate.compare_up 1 3 ];
        [ Gate.compare_up 1 2 ];
        [ Gate.compare_up 0 1 ];
      ]
  in
  let r = Analysis.analyze nw in
  check_int "one dead comparator" 1 (List.length r.facts.dead);
  let g = List.hd r.facts.dead in
  check_int "dead at level 4" 4 g.Analysis.level;
  check_bool "SNL201 emitted" true
    (List.exists
       (fun (d : Diag.t) -> d.code = "SNL201" && d.severity = Diag.Warning)
       r.diags);
  check_bool "still sorts" true (r.facts.sortedness = Analysis.Sorting_proved);
  (* the duplicate-in-consecutive-levels case is visible to the bounds
     domain too *)
  let r' = Analysis.analyze ~exact_max_wires:0 nw in
  check_int "bounds sees it too" 1 (List.length r'.Analysis.facts.dead)

let test_redundant_flip () =
  (* compare (0,1) twice in a row: the second is redundant (wires
     already ordered — flipping it would break nothing only if the
     wires were EQUAL, so it is dead but not redundant); force true
     redundancy with an exchange of provably equal wires instead *)
  let nw =
    Network.of_gate_levels ~wires:2
      [ [ Gate.compare_up 0 1 ]; [ Gate.compare_up 0 1 ] ]
  in
  let r = Analysis.analyze nw in
  check_int "second comparator dead" 1 (List.length r.facts.dead);
  check_int "but not redundant" 0 (List.length r.facts.redundant);
  (* constant wires: after comparing a wire with itself via two
     comparators against sorted extremes, min and max wires of a
     sorted pair compared again are equal only in degenerate nets;
     instead: a 1-wire-pair exchanged twice makes the second exchange
     dead *)
  let nw2 =
    Network.of_gate_levels ~wires:3
      [
        [ Gate.compare_up 0 1 ];
        [ Gate.compare_up 1 2 ];
        [ Gate.compare_up 0 1 ];
        [ Gate.compare_up 0 2 ];
      ]
  in
  let r2 = Analysis.analyze nw2 in
  (* (0,2) after full sort of 3 wires is dead *)
  check_bool "final (0,2) dead" true
    (List.exists (fun g -> g.Analysis.level = 4) r2.facts.dead)

(* --- standardize --- *)

let test_standardize () =
  let rng = Xoshiro.of_seed 4242 in
  for _ = 1 to 50 do
    let n = 2 + Xoshiro.int rng ~bound:7 in
    let nw = random_network rng ~n ~levels:(1 + Xoshiro.int rng ~bound:5) in
    let std = Lint.standardize nw in
    check_bool "standardize preserves the function" true
      (same_zero_one_function nw std);
    (* only ascending comparators, no exchanges *)
    List.iter
      (fun (level : Network.level) ->
        List.iter
          (fun g ->
            match g with
            | Gate.Compare { lo; hi } ->
                check_bool "ascending" true (lo < hi)
            | Gate.Exchange _ -> Alcotest.fail "exchange survived standardize")
          level.gates)
      (Network.levels std)
  done

(* --- conformance --- *)

let test_conform_shuffle () =
  List.iter
    (fun n ->
      let d = Bitops.log2_exact n in
      (* register form *)
      let prog = Bitonic.shuffle_program ~n in
      let reg = Register_model.to_network prog in
      let r = Analysis.analyze ~exact_max_wires:8 reg in
      check_bool "register form shuffle-based" true
        (r.facts.shuffle_stages = Some (d * d));
      check_bool "register form iterated reverse delta" true
        (r.facts.reverse_delta_blocks = Some d);
      (* the registry serves it pre-flattened; conformance must agree *)
      let flat = Network.flatten reg in
      check_bool "flattened still shuffle-based" true
        (Conform.shuffle_stages flat = Some (d * d));
      check_bool "flattened still iterated reverse delta" true
        (Conform.iterated_reverse_delta flat = Some d))
    [ 4; 8; 16 ]

let test_conform_classics_negative () =
  (* classic bitonic is NOT shuffle-based and NOT an iterated reverse
     delta (its third level re-compares inside a committed 4-subtree) *)
  let nw = Bitonic.network ~n:8 in
  check_bool "classic bitonic not shuffle-based" true
    (Conform.shuffle_stages nw = None);
  check_bool "classic bitonic not iterated rd" true
    (Conform.iterated_reverse_delta nw = None)

let test_conform_random_reverse_delta () =
  (* random reverse delta networks exercise partial cross levels,
     mixed orientations and exchanges; recognition must certify every
     one of them *)
  let rng = Xoshiro.of_seed 11 in
  for _ = 1 to 40 do
    let levels = 1 + Xoshiro.int rng ~bound:4 in
    let rd =
      Random_net.reverse_delta rng ~levels ~density:0.7 ~swap_prob:0.2
    in
    let n = 1 lsl levels in
    let nw = Reverse_delta.to_network ~wires:n rd in
    check_bool "random rd recognized" true
      (Conform.iterated_reverse_delta nw = Some 1)
  done;
  (* iterated, with inter-block permutations (absorbed by flattening) *)
  for _ = 1 to 20 do
    let blocks = 1 + Xoshiro.int rng ~bound:3 in
    let it =
      Random_net.iterated rng ~n:8 ~blocks ~density:0.6 ~swap_prob:0.1
        ~permute:true
    in
    let nw = Iterated.to_network it in
    check_bool "random iterated recognized" true
      (Conform.iterated_reverse_delta nw = Some blocks)
  done

let test_conform_butterfly_both () =
  (* the butterfly is both a delta and a reverse delta network
     (Kruskal–Snir); check both verdicts fire on it *)
  let bf = Delta_net.butterfly ~levels:3 in
  let rd = Delta_net.to_reverse_delta bf in
  let nw = Reverse_delta.to_network ~wires:8 rd in
  check_bool "butterfly is reverse delta" true
    (Conform.iterated_reverse_delta nw = Some 1);
  check_bool "butterfly (mirrored) is delta" true
    (Conform.delta_blocks nw = Some 1)

let test_to_iterated_certificate () =
  let prog = Bitonic.shuffle_program ~n:8 in
  let nw = Register_model.to_network prog in
  match Conform.to_iterated nw with
  | Error e -> Alcotest.failf "bitonic-shuffle rejected: %s" e
  | Ok it ->
      check_int "three blocks" 3 (Iterated.block_count it);
      (* the certified decomposition evaluates identically *)
      check_bool "decomposition is extensionally equal" true
        (same_zero_one_function nw (Iterated.to_network it))

let test_to_iterated_reject () =
  match Conform.to_iterated (Bitonic.network ~n:8) with
  | Ok _ -> Alcotest.fail "classic bitonic wrongly certified"
  | Error _ -> ()

(* --- unordered-pairs table (shared with the search driver) --- *)

let test_unordered_pairs () =
  let n = 4 in
  let st = Reach.all n in
  let st = Reach.apply_gate st (Gate.compare_up 0 1) in
  let iter f = Reach.iter f st in
  let tbl = Reach.unordered_pairs ~n ~iter in
  (* (0,1) ordered now; (1,0) still has no witness either way round? —
     after compare_up 0 1 no mask has bit0=1,bit1=0, so (0,1) is
     "ordered": placing an ascending comparator 0->1 is dead *)
  check_bool "0->1 ordered" false (Reach.pair_unordered tbl ~n 0 1);
  check_bool "1->0 unordered" true (Reach.pair_unordered tbl ~n 1 0);
  check_bool "2->3 unordered" true (Reach.pair_unordered tbl ~n 2 3)

(* --- load gate --- *)

let test_check_gate () =
  let clean =
    Network.of_gate_levels ~wires:2 [ [ Gate.compare_up 0 1 ] ]
  in
  (match Analysis.check clean with
  | Ok ds -> check_int "clean: no warnings" 0 (Diag.count ds Diag.Warning)
  | Error _ -> Alcotest.fail "clean network rejected");
  let with_dead =
    Network.of_gate_levels ~wires:2
      [ [ Gate.compare_up 0 1 ]; [ Gate.compare_up 0 1 ] ]
  in
  (match Analysis.check with_dead with
  | Ok ds -> check_int "warn mode passes with warning" 1 (Diag.count ds Diag.Warning)
  | Error _ -> Alcotest.fail "warn mode must not reject warnings");
  (match Analysis.check ~strictness:Analysis.Strict with_dead with
  | Ok _ -> Alcotest.fail "strict mode must reject warnings"
  | Error _ -> ());
  match Analysis.check ~strictness:Analysis.Off with_dead with
  | Ok [] -> ()
  | _ -> Alcotest.fail "off mode must be silent"

let test_load_gate () =
  let dir = Filename.temp_file "snlb_analysis" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "net.txt" in
  let nw =
    Network.of_gate_levels ~wires:2
      [ [ Gate.compare_up 0 1 ]; [ Gate.compare_up 0 1 ] ]
  in
  (match Network_io.save path nw with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save: %s" e);
  (match Analysis.load path with
  | Ok (nw', ds) ->
      check_int "load: wires" 2 (Network.wires nw');
      check_int "load: warning surfaced" 1 (Diag.count ds Diag.Warning)
  | Error e -> Alcotest.failf "warn-mode load failed: %s" e);
  (match Analysis.load ~strictness:Analysis.Strict path with
  | Ok _ -> Alcotest.fail "strict load must reject"
  | Error _ -> ());
  Sys.remove path;
  Unix.rmdir dir

(* --- diagnostics plumbing --- *)

let test_diag_json () =
  let d =
    Diag.make
      ~span:{ Diag.level = 3; gate = Some 1 }
      ~code:"SNL201" ~severity:Diag.Warning "dead \"comparator\""
  in
  check_bool "json shape" true
    (Diag.to_json d
    = "{\"code\":\"SNL201\",\"severity\":\"warning\",\"level\":3,\"gate\":1,\"message\":\"dead \\\"comparator\\\"\"}");
  check_bool "text shape" true
    (Diag.to_text d = "warning[SNL201] level 3 gate 1: dead \"comparator\"");
  check_bool "code table knows SNL201" true (Diag.describe "SNL201" <> None);
  check_bool "code table sorted unique" true
    (let cs = List.map fst Diag.codes in
     cs = List.sort_uniq compare cs)

let () =
  Alcotest.run "analysis"
    [
      ( "domains",
        [
          Alcotest.test_case "random-agreement-200" `Quick test_random_agreement;
          Alcotest.test_case "dead-iff-never-fires" `Quick
            test_dead_iff_never_fires;
          Alcotest.test_case "bounds-sound" `Quick test_bounds_sound;
          Alcotest.test_case "bounds-large" `Quick test_bounds_large;
          Alcotest.test_case "injected-dead" `Quick test_injected_dead;
          Alcotest.test_case "redundant-flip" `Quick test_redundant_flip;
          Alcotest.test_case "standardize" `Quick test_standardize;
          Alcotest.test_case "unordered-pairs" `Quick test_unordered_pairs;
        ] );
      ( "conformance",
        [
          Alcotest.test_case "shuffle-based" `Quick test_conform_shuffle;
          Alcotest.test_case "classics-negative" `Quick
            test_conform_classics_negative;
          Alcotest.test_case "random-reverse-delta" `Quick
            test_conform_random_reverse_delta;
          Alcotest.test_case "butterfly-both" `Quick test_conform_butterfly_both;
          Alcotest.test_case "to-iterated" `Quick test_to_iterated_certificate;
          Alcotest.test_case "to-iterated-reject" `Quick test_to_iterated_reject;
        ] );
      ( "gate",
        [
          Alcotest.test_case "check-strictness" `Quick test_check_gate;
          Alcotest.test_case "load-gate" `Quick test_load_gate;
          Alcotest.test_case "diag-json" `Quick test_diag_json;
        ] );
    ]
