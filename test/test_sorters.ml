(* Exact correctness (0-1 principle) and structural properties of every
   baseline sorting network. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let pow2_sizes = [ 2; 4; 8; 16 ]
let general_sizes = [ 1; 2; 3; 5; 7; 12; 16 ]

let exact_cases =
  List.concat_map
    (fun e ->
      let sizes = if e.Sorter_registry.pow2_only then pow2_sizes else general_sizes in
      List.map
        (fun n ->
          Alcotest.test_case
            (Printf.sprintf "%s sorts all 0-1 inputs, n=%d" e.Sorter_registry.name n)
            `Quick
            (fun () ->
              let nw = e.Sorter_registry.build n in
              check_bool "0-1 exact" true (Zero_one.is_sorting_network nw)))
        sizes)
    Sorter_registry.all

let permutation_cases =
  List.map
    (fun e ->
      Alcotest.test_case
        (Printf.sprintf "%s sorts all permutations, n=6" e.Sorter_registry.name)
        `Quick
        (fun () ->
          let n = if e.Sorter_registry.pow2_only then 8 else 6 in
          check_bool "exhaustive perms" true
            (Exhaustive.sorts_all_permutations (e.Sorter_registry.build n));
          check_bool "constant output assignment" true
            (Exhaustive.constant_output_assignment (e.Sorter_registry.build n))))
    Sorter_registry.all

let test_bitonic_depth_formula () =
  List.iter
    (fun n ->
      check_int (Printf.sprintf "n=%d" n)
        (Bitonic.depth_formula ~n)
        (Network.depth (Bitonic.network ~n)))
    [ 2; 4; 8; 16; 32; 64; 128 ]

let test_oem_size_formula () =
  List.iter
    (fun n ->
      check_int (Printf.sprintf "n=%d" n)
        (Odd_even_merge.size_formula ~n)
        (Network.size (Odd_even_merge.network ~n)))
    [ 4; 8; 16; 32; 64 ]

let test_oem_smaller_than_bitonic () =
  List.iter
    (fun n ->
      check_bool (Printf.sprintf "n=%d" n) true
        (Network.size (Odd_even_merge.network ~n) < Network.size (Bitonic.network ~n)))
    [ 8; 16; 32; 64 ]

let test_bitonic_shuffle_equals_circuit () =
  let rng = Xoshiro.of_seed 77 in
  List.iter
    (fun n ->
      let prog = Bitonic.shuffle_program ~n in
      let circ = Bitonic.network ~n in
      check_int "stage count = lg^2 n"
        (let d = Bitops.log2_exact n in d * d)
        (Register_model.stage_count prog);
      check_int "comparator depth matches Batcher"
        (Bitonic.depth_formula ~n)
        (Register_model.depth prog);
      for _ = 1 to 30 do
        let input = Workload.random_permutation rng ~n in
        Alcotest.(check (array int)) "same result"
          (Network.eval circ input)
          (Register_model.eval prog input)
      done)
    [ 2; 4; 8; 16; 32 ]

let test_bitonic_as_iterated_structure () =
  let n = 32 in
  let it = Bitonic.as_iterated ~n in
  check_int "lg n blocks" 5 (Iterated.block_count it);
  check_int "lg n levels each" 5 (Iterated.levels_per_block it);
  check_bool "sorts" true (Zero_one.is_sorting_network (Iterated.to_network (Bitonic.as_iterated ~n:16)))

let test_pratt_increments () =
  Alcotest.(check (list int)) "3-smooth decreasing below 10"
    [ 9; 8; 6; 4; 3; 2; 1 ] (Pratt.increments ~n:10);
  (* all are of the form 2^p 3^q *)
  List.iter
    (fun h ->
      let rec strip d x = if x mod d = 0 then strip d (x / d) else x in
      check_int (Printf.sprintf "3-smooth %d" h) 1 (strip 3 (strip 2 h)))
    (Pratt.increments ~n:1000)

let test_pratt_depth_loglog () =
  (* depth = 2 * #increments ~ lg^2 n *)
  let d64 = Network.depth (Pratt.network ~n:64) in
  let d256 = Network.depth (Pratt.network ~n:256) in
  check_bool "grows superlinearly in lg n" true (d256 > d64);
  (* passes whose odd half is empty (large h) contribute one level *)
  check_bool "depth <= 2 * increments" true
    (d64 <= 2 * List.length (Pratt.increments ~n:64));
  check_bool "depth > increments" true
    (d64 > List.length (Pratt.increments ~n:64))

let test_periodic_block_structure () =
  let n = 16 in
  let b = Periodic.block ~n in
  check_int "lg n levels" 4 (List.length (Network.levels b));
  check_int "n/2 comparators per level" (4 * 8) (Network.size b);
  let full = Periodic.network ~n in
  check_int "lg n blocks" (4 * 4) (Network.depth full)

let test_transposition_depth () =
  List.iter
    (fun n -> check_int (Printf.sprintf "n=%d" n) n (List.length (Network.levels (Transposition.network ~n))))
    [ 1; 2; 5; 9; 16 ]

let test_insertion_depth () =
  List.iter
    (fun n ->
      check_int (Printf.sprintf "n=%d" n) (max 0 ((2 * n) - 3))
        (List.length (Network.levels (Insertion_net.network ~n))))
    [ 2; 3; 8; 13 ]

let test_registry_lookup () =
  check_bool "find bitonic" true (Sorter_registry.find "bitonic" <> None);
  check_bool "unknown" true (Sorter_registry.find "quicksort" = None);
  check_int "names count" (List.length Sorter_registry.all)
    (List.length Sorter_registry.names)

let prop_sorters_on_random_inputs =
  QCheck.Test.make ~name:"every sorter sorts random inputs (n=32/30)" ~count:50
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Xoshiro.of_seed seed in
      List.for_all
        (fun e ->
          let n = if e.Sorter_registry.pow2_only then 32 else 30 in
          let nw = e.Sorter_registry.build n in
          let input = Workload.random_permutation rng ~n in
          Sortedness.is_sorted (Network.eval nw input))
        Sorter_registry.all)

let prop_sorters_with_duplicates =
  QCheck.Test.make ~name:"sorters handle duplicate keys" ~count:50
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Xoshiro.of_seed seed in
      List.for_all
        (fun e ->
          let n = if e.Sorter_registry.pow2_only then 16 else 15 in
          let nw = e.Sorter_registry.build n in
          let input = Array.init n (fun _ -> Xoshiro.int rng ~bound:4) in
          Sortedness.is_sorted (Network.eval nw input))
        Sorter_registry.all)

let () =
  Alcotest.run "sorters"
    [ ("zero-one exact", exact_cases);
      ("exhaustive permutations", permutation_cases);
      ( "structure",
        [ Alcotest.test_case "bitonic depth formula" `Quick test_bitonic_depth_formula;
          Alcotest.test_case "odd-even-merge size formula" `Quick test_oem_size_formula;
          Alcotest.test_case "oem smaller than bitonic" `Quick test_oem_smaller_than_bitonic;
          Alcotest.test_case "bitonic shuffle = circuit" `Quick test_bitonic_shuffle_equals_circuit;
          Alcotest.test_case "bitonic as iterated" `Quick test_bitonic_as_iterated_structure;
          Alcotest.test_case "pratt increments" `Quick test_pratt_increments;
          Alcotest.test_case "pratt depth" `Quick test_pratt_depth_loglog;
          Alcotest.test_case "periodic block" `Quick test_periodic_block_structure;
          Alcotest.test_case "transposition depth" `Quick test_transposition_depth;
          Alcotest.test_case "insertion depth" `Quick test_insertion_depth;
          Alcotest.test_case "registry" `Quick test_registry_lookup ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_sorters_on_random_inputs; prop_sorters_with_duplicates ] ) ]
