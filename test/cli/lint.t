The linter proves sortedness exactly for n <= 12 and reports the
conformance verdicts (Batcher's odd-even merge is clean but not
shuffle-based):

  $ snlb lint --algo odd-even-merge -n 8
  info[SNL204] sorting network: proved over all 256 zero-one inputs (exact domain)
  odd-even-merge n=8: 8 wires, 6 levels, 19 comparators (0 dead, 0 redundant), shuffle-based: no, iterated reverse delta: no, delta: no

The shuffle-based bitonic sorter conforms to every topology the
lower bound cares about -- shuffle stages, iterated reverse delta
blocks (Definition 3.4), and the delta skeleton:

  $ snlb lint --algo bitonic-shuffle -n 8 | tail -5
  info[SNL204] sorting network: proved over all 256 zero-one inputs (exact domain)
  info[SNL301] shuffle-based: all 9 stages act on shuffle register pairs
  info[SNL302] iterated reverse delta: 3 blocks of 3 levels (Definition 3.4)
  info[SNL303] delta skeleton: 3 blocks (levels mirrored)
  bitonic-shuffle n=8: 8 wires, 9 levels, 24 comparators (0 dead, 0 redundant), shuffle-based: yes (9), iterated reverse delta: yes (3), delta: yes (3)

An injected dead comparator (a re-compare after the network already
sorted) is flagged as removable; plain mode exits 0 on warnings,
--strict turns them into failures:

  $ printf 'snlb-network 1\nwires 4\nlevel\ncmp 0 1\ncmp 2 3\nlevel\ncmp 0 2\ncmp 1 3\nlevel\ncmp 1 2\nlevel\ncmp 0 1\n' > dead.txt
  $ snlb lint dead.txt | head -2
  warning[SNL201] level 4 gate 0: dead comparator (0,1): never exchanges on any reachable input; removable
  info[SNL204] sorting network: proved over all 16 zero-one inputs (exact domain)
  $ snlb lint --strict dead.txt > /dev/null
  [1]

Machine consumers get NDJSON with stable codes and spans:

  $ snlb lint --format json dead.txt | head -2
  {"code":"SNL201","severity":"warning","level":4,"gate":0,"message":"dead comparator (0,1): never exchanges on any reachable input; removable"}
  {"code":"SNL204","severity":"info","message":"sorting network: proved over all 16 zero-one inputs (exact domain)"}

Above the exact cutoff the analyzer announces the fallback with a
typed diagnostic (SNL206) and proves what it can in the sound
order-bounds domain:

  $ snlb lint --algo transposition -n 16 | head -2
  info[SNL206] exact 0-1 domain unavailable at 16 wires (cap 12): sortedness and gate verdicts use the approximate bounds domain
  info[SNL205] sorting network: proved by the order-bounds domain

A truncated sorter is refuted, not just "unknown" -- the exact domain
exhibits a reachable unsorted output:

  $ printf 'snlb-network 1\nwires 4\nlevel\ncmp 0 1\ncmp 2 3\nlevel\ncmp 0 2\ncmp 1 3\n' > notsort.txt
  $ snlb lint notsort.txt | head -1
  info[SNL203] not a sorting network: some zero-one input leaves unsorted output 1010 (exact domain)

The same conformance machinery gates `certify --file`: Theorem 4.1
only applies to iterated reverse delta networks, so the plain bitonic
sorter (whose 10 levels are no whole number of lg-n blocks) is
rejected statically, while the shuffle-based form runs:

  $ snlb save --algo bitonic -n 16 b.txt > /dev/null
  $ snlb certify --file b.txt --kind all-plus
  certify: b.txt: not an iterated reverse delta network (network on 16 wires is not a whole number of lg-n-level blocks (or n is not a power of two)); Theorem 4.1 does not apply
  [1]
  $ snlb save --algo bitonic-shuffle -n 16 bs.txt > /dev/null
  $ snlb certify --file bs.txt --kind all-plus | tail -2
  blocks survived: 3 / 4
  adversary defeated: no fooling pair (network may sort).
