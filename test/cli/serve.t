The verification daemon speaks length-prefixed JSON over a Unix socket.
Start it in the background and let the client's dial-retry (--wait)
absorb startup latency.

  $ snlb serve --socket ./s.sock --trace serve.ndjson > serve.out 2>&1 &
  $ SERVE_PID=$!

A verify round-trip: the first submission pays the engine sweep, the
resubmission is served from the canonical response cache.

  $ snlb client --socket ./s.sock verify --algo odd-even-merge -n 8 | grep -o '"ok":true,"sorts":true,"cached":false'
  "ok":true,"sorts":true,"cached":false

  $ snlb client --socket ./s.sock verify --algo odd-even-merge -n 8 | grep -o '"sorts":true,"cached":true'
  "sorts":true,"cached":true

pratt n=8 is a different circuit but also a true sorter, so its
canonical reachable set -- and therefore its verdict -- is already
cached; it still reports its own sweep-free hit.

  $ snlb client --socket ./s.sock verify --algo pratt -n 8 | grep -o '"cached":true'
  "cached":true

eval on a 0-1 input goes through the lane-packing batcher; on a
general input, through the compiled engine inline.

  $ snlb client --socket ./s.sock eval --algo odd-even-merge -n 8 --input 1,0,1,0,0,1,0,1
  {"id":1,"trace":"c4-r1","ok":true,"output":[0,0,0,0,1,1,1,1],"sorted":true}

  $ snlb client --socket ./s.sock eval --algo odd-even-merge -n 8 --input 7,3,5,1,6,0,4,2
  {"id":1,"trace":"c5-r1","ok":true,"output":[0,1,2,3,4,5,6,7],"sorted":true}

certify re-checks the verdict independently of the bit-sliced engine;
lint reports analyzer facts.

  $ snlb client --socket ./s.sock certify --algo transposition -n 6
  {"id":1,"trace":"c6-r1","ok":true,"sorts":true,"cross_checked":true}

  $ snlb client --socket ./s.sock lint --algo transposition -n 6 | grep -o '"sortedness":"sorting-proved"'
  "sortedness":"sorting-proved"

Typed rejection: an unknown algo is an error response (client exit 1),
and the connection-level error code is stable.

  $ snlb client --socket ./s.sock verify --algo nope -n 4 > bad.out
  [1]
  $ grep -o '"code":"bad-network"' bad.out
  "code":"bad-network"

Concurrent clients coalesce; every response matches (8 background
clients, 4 isomorphism-classes of requests between them).

  $ CPIDS=""; for i in 1 2 3 4 5 6 7 8; do
  >   snlb client --socket ./s.sock verify --algo odd-even-merge -n 8 > client-$i.out &
  >   CPIDS="$CPIDS $!"
  > done; wait $CPIDS
  $ cat client-*.out | grep -c '"sorts":true'
  8

SIGTERM drains in flight work and exits 130 (the interrupted
convention), removing the endpoint.

  $ kill -TERM $SERVE_PID
  $ wait $SERVE_PID
  [130]
  $ test -S ./s.sock && echo still-there || echo gone
  gone
  $ cat serve.out
  serve: listening on ./s.sock
  snlb: serve interrupted

Every request carried a server-assigned trace id into the NDJSON
trace, correlating spans with responses.

  $ grep -c '"name":"serve.request"' serve.ndjson
  16
  $ grep -c '"trace":"c1-r1"' serve.ndjson
  1
  $ grep -o '"verb":"certify"' serve.ndjson
  "verb":"certify"
