The CLI lists its networks and experiments:

  $ snlb list | head -12
  sorting networks:
    transposition    
    insertion        
    pratt            
    periodic         (n = power of two)
    odd-even-merge   (n = power of two)
    bitonic          (n = power of two)
    bitonic-shuffle  (n = power of two)
    shellsort-shell  
    shellsort-ciura  
  experiments:
    E1   Lemma 4.1 single-block survival

Sorting is deterministic under a fixed seed:

  $ snlb sort --algo bitonic -n 8 --seed 1
  network : bitonic
  stats   : wires=8 levels=6 depth=6 comparators=24 exchanges=0
  input   : [4 6 7 3 0 2 1 5]
  output  : [0 1 2 3 4 5 6 7]
  sorted  : true

Exact verification via the 0-1 principle:

  $ snlb verify --algo odd-even-merge -n 8
  verifying odd-even-merge on n=8 over all 256 zero-one inputs...
  sorting network: true

The adversary produces a validated fooling pair on a shallow network:

  $ snlb certify -n 32 --blocks 2 --kind all-plus | tail -3
  blocks survived: 2 / 2
  fooling pair: swap values 6,7 (wires 3,5)
  certificate VALID: the network is not a sorting network.

And is defeated by a true sorter:

  $ snlb certify -n 16 --kind bitonic | tail -2
  blocks survived: 3 / 4
  adversary defeated: no fooling pair (network may sort).

Minimal-depth search (Knuth 5.3.4.47 at n=4):

  $ snlb search -n 4 --shuffle
  minimal shuffle-based sorter depth for n=4: 3 (bitonic: 3)

Benes routing:

  $ snlb route -n 8 --seed 3 | tail -2
  Benes network: 5 exchange levels, 8 crossed switches
  routing verified: true

Networks can be drawn:

  $ snlb draw --algo bitonic -n 4
  0 -o--o----o---
     |  |    |   
  1 -*--+-o--*---
        | |      
  2 -*--*-+--o---
     |    |  |   
  3 -o----*--*---

Serialisation round-trips:

  $ snlb save --algo odd-even-merge -n 8 net.txt
  wrote net.txt (8 wires, 19 comparators)
  $ snlb load net.txt
  net.txt: wires=8 levels=6 depth=6 comparators=19 exchanges=0
  sorting network: true

The load gate surfaces analysis warnings (here: bitonic's descending
comparators) without rejecting a valid network:

  $ snlb save --algo bitonic -n 8 bnet.txt
  wrote bnet.txt (8 wires, 24 comparators)
  $ snlb load bnet.txt 2>&1 | grep -c 'warning\[SNL101\]'
  6
  $ snlb load --check off bnet.txt 2>&1 | grep -c 'warning'
  0
  [1]

Parse errors carry line information:

  $ printf 'snlb-network 1\nwires 4\ncmp 0 1\n' > bad.txt
  $ snlb load bad.txt
  bad.txt: line 3: cmp outside a level
  [1]
