Checkpointed searches survive being killed. The kill-level fault point
simulates a crash at every level boundary (after the boundary snapshot
is flushed), so each incarnation completes exactly one more level and
exits 130 with its progress on disk.

  $ export SNLB_FAULT=kill-level
  $ snlb search -n 5 --checkpoint c.snap --checkpoint-interval 0
  depths <= 1 refuted before interruption
  nodes: 1  pruned: 0  deduped: 0  subsumed: 0  redundant: 0  peak frontier: 1
  snlb: search interrupted
  [130]

  $ snlb search -n 5 --checkpoint c.snap --checkpoint-interval 0 --resume
  snlb: resuming layers search, n=5, max_depth=5, next level 2
  depths <= 2 refuted before interruption
  nodes: 8  pruned: 0  deduped: 2  subsumed: 3  redundant: 0  peak frontier: 2
  snlb: search interrupted
  [130]

With the fault cleared, the resumed run finishes and reports exactly
the totals of a never-interrupted run (compare the fresh run below).

  $ unset SNLB_FAULT
  $ snlb search -n 5 --checkpoint c.snap --checkpoint-interval 0 --resume
  snlb: resuming layers search, n=5, max_depth=5, next level 3
  optimal depth for n=5: 5 (witness verified: true)
    layer 1: (0,1)(2,3)
    layer 2: (0,2)(1,4)
    layer 3: (1,2)(3,4)
    layer 4: (0,1)(2,3)
    layer 5: (1,2)
  nodes: 46  pruned: 0  deduped: 7  subsumed: 28  redundant: 162  peak frontier: 5

  $ snlb search -n 5
  optimal depth for n=5: 5 (witness verified: true)
    layer 1: (0,1)(2,3)
    layer 2: (0,2)(1,4)
    layer 3: (1,2)(3,4)
    layer 4: (0,1)(2,3)
    layer 5: (1,2)
  nodes: 46  pruned: 0  deduped: 7  subsumed: 28  redundant: 162  peak frontier: 5

A corrupted snapshot is detected (here: one damaged byte) and the
atomic writer's backup of the previous boundary is used instead.

  $ printf 'X' | dd of=c.snap bs=1 seek=0 count=1 conv=notrunc status=none
  $ snlb search -n 5 --checkpoint c.snap --checkpoint-interval 0 --resume | head -2
  snlb: falling back to checkpoint backup c.snap.bak (invalid checkpoint c.snap: bad magic (not a checkpoint))
  snlb: resuming layers search, n=5, max_depth=5, next level 4
  optimal depth for n=5: 5 (witness verified: true)
    layer 1: (0,1)(2,3)

With both copies damaged, resuming degrades to a fresh run — never a
crash, never silent trust in a torn file.

  $ printf 'X' | dd of=c.snap bs=1 seek=0 count=1 conv=notrunc status=none
  $ printf 'X' | dd of=c.snap.bak bs=1 seek=0 count=1 conv=notrunc status=none
  $ snlb search -n 5 --checkpoint c.snap --checkpoint-interval 0 --resume | head -1
  snlb: cannot resume (invalid checkpoint c.snap: bad magic (not a checkpoint); fallback also failed: invalid checkpoint c.snap.bak: bad magic (not a checkpoint)); starting fresh
  optimal depth for n=5: 5 (witness verified: true)

--resume without a checkpoint path is a usage error (exit 2).

  $ snlb search -n 5 --resume
  search: --resume needs --checkpoint FILE
  [2]

The adversary checkpoints per block: kill-block stops it after one
block, and the resumed run completes with the uninterrupted verdict.

  $ SNLB_FAULT=kill-block snlb certify -n 16 --kind bitonic --checkpoint a.snap
  n=16, 4 blocks of 4 shuffle stages
    block 0: |A|=16 |B|=16 sets=128 |D|=8
  blocks survived: 1 / 4
  adversary interrupted after 1 blocks
  snlb: certify interrupted
  [130]

  $ snlb certify -n 16 --kind bitonic --checkpoint a.snap --resume
  n=16, 4 blocks of 4 shuffle stages
    block 0: |A|=16 |B|=16 sets=128 |D|=8
    block 1: |A|=8 |B|=8 sets=128 |D|=4
    block 2: |A|=4 |B|=4 sets=128 |D|=2
    block 3: |A|=2 |B|=2 sets=128 |D|=1
  blocks survived: 3 / 4
  adversary defeated: no fooling pair (network may sort).
