Proof-carrying verdicts: the analyzer, the exhaustive searcher, and
the lower-bound adversary can each emit a certificate in a portable
text format, and `snlb check` re-validates it with an independent
checker that shares no code with the component that produced the
verdict.

Sortedness in the exact reach domain (per-level reachable-set
annotations the checker re-walks):

  $ snlb lint --algo odd-even-merge -n 4 --emit-cert oem4.cert > /dev/null
  $ snlb check oem4.cert
  cert 1 (sortedness): OK
  all 1 certificate OK

Sortedness by the approximate order-bounds domain: forcing the exact
cutoff below n makes the analyzer fall back (the typed SNL206
diagnostic) and certify with order-matrix facts instead:

  $ snlb lint --algo transposition -n 6 --exact-max 4 --emit-cert tr6.cert | head -1
  info[SNL206] exact 0-1 domain unavailable at 6 wires (cap 4): sortedness and gate verdicts use the approximate bounds domain
  $ snlb lint --algo transposition -n 6 --exact-max 4 --emit-cert tr6.cert > /dev/null
  $ snlb check tr6.cert
  cert 1 (sortedness): OK
  all 1 certificate OK

Refutation carries a concrete 0-1 witness the checker replays through
the embedded network:

  $ printf 'snlb-network 1\nwires 4\nlevel\ncmp 0 1\ncmp 2 3\nlevel\ncmp 0 2\ncmp 1 3\n' > notsort.txt
  $ snlb lint notsort.txt --emit-cert notsort.cert > /dev/null
  $ snlb check notsort.cert
  cert 1 (refutation): OK
  all 1 certificate OK

Dead-comparator facts ride along with the sortedness certificate in
one file (a re-compare after the network already sorted):

  $ printf 'snlb-network 1\nwires 4\nlevel\ncmp 0 1\ncmp 2 3\nlevel\ncmp 0 2\ncmp 1 3\nlevel\ncmp 1 2\nlevel\ncmp 1 2\n' > dead.txt
  $ snlb lint dead.txt --emit-cert dead.cert > /dev/null
  $ snlb check dead.cert
  cert 1 (sortedness): OK
  cert 2 (dead): OK
  all 2 certificates OK

The searcher's negative claim becomes an exhaustion certificate: the
logged frontiers plus a subsumption witness for every expanded child:

  $ snlb search -n 5 --max-depth 4 --emit-cert ex5.cert
  no sorting network of depth <= 4 for n=5 (exhaustive)
  nodes: 3451  pruned: 0  deduped: 338  subsumed: 0  redundant: 0  peak frontier: 119
  1 certificate written to ex5.cert
  $ snlb check ex5.cert
  cert 1 (exhaustion): OK
  all 1 certificate OK

An --optimal run that finds a depth-d sorter proves optimality with
exhaustion at d-1 plus a sortedness certificate for the witness:

  $ snlb search -n 4 --optimal --emit-cert opt4.cert
  optimal depth for n=4: 3 (witness verified: true)
    layer 1: (0,1)(2,3)
    layer 2: (0,2)(1,3)
    layer 3: (1,2)
  nodes: 46  pruned: 0  deduped: 3  subsumed: 0  redundant: 0  peak frontier: 6
  2 certificates written to opt4.cert
  $ snlb check opt4.cert
  cert 1 (exhaustion): OK
  cert 2 (sortedness): OK
  all 2 certificates OK

The adversary's fooling pair becomes a register-model transcript the
checker replays move for move:

  $ snlb certify --kind all-plus -n 4 --blocks 2 --emit-cert lb4.cert | tail -1
  1 certificate written to lb4.cert
  $ snlb check lb4.cert
  cert 1 (lower-bound): OK
  all 1 certificate OK

Corrupted certificates are rejected with typed CRT*** diagnostics,
never accepted. A doctored refutation witness that actually sorts:

  $ sed 's/^witness .*/witness 0/' notsort.cert > c.cert && snlb check c.cert
  cert 1 (refutation): REJECTED CRT211 witness: input 0 evaluates to sorted output 0
  [1]

A reach annotation that no longer contains the level's image:

  $ sed 's/^set 3 .*/set 3 0/' oem4.cert > c.cert && snlb check c.cert
  cert 1 (sortedness): REJECTED CRT201 set 3: level 3 maps mask 8 to 8, outside the annotation
  [1]

An order fact the bounds rules cannot derive:

  $ sed 's/^leq 1 /leq 1 5 0 /' tr6.cert > c.cert && snlb check c.cert
  cert 1 (sortedness): REJECTED CRT203 leq 1: claimed fact 5 <= 0 is not derivable at level 1
  [1]

A dead claim against a gate that provably fires:

  $ sed 's/^dead 4 0/dead 1 0/' dead.cert > c.cert && snlb check c.cert
  cert 1 (sortedness): OK
  cert 2 (dead): REJECTED CRT221 claim: dead claim at level 1 gate 0: the gate exchanges a reachable vector
  [1]

A lower-bound transcript whose witness values are not adjacent:

  $ sed 's/^values .*/values 0 3/' lb4.cert > c.cert && snlb check c.cert
  cert 1 (lower-bound): REJECTED CRT231 values: witness values 0, 3 are not adjacent
  [1]

An exhaustion log with a deleted cover line (the remaining covers no
longer match the children the checker re-derives):

  $ sed '0,/^cover /{/^cover /d}' ex5.cert > c.cert && snlb check c.cert
  cert 1 (exhaustion): REJECTED CRT242 level 1 parent 0 matching 1: pool entry 1 does not embed into the child under the stated permutation
  [1]

A truncated file fails parsing, with a line number:

  $ head -5 oem4.cert > c.cert && snlb check c.cert
  REJECTED CRT001 line 3: unterminated network block
  [1]
