The generic optimal-depth search certifies the known optima for small n
(domains pinned to 1 so node counts and the witness are deterministic).

  $ snlb search -n 4 --optimal --domains 1
  optimal depth for n=4: 3 (witness verified: true)
    layer 1: (0,1)(2,3)
    layer 2: (0,2)(1,3)
    layer 3: (1,2)
  nodes: 6  pruned: 0  deduped: 2  subsumed: 1  redundant: 8  peak frontier: 1

  $ snlb search -n 6 --optimal --domains 1 | head -1
  optimal depth for n=6: 5 (witness verified: true)

Deciding a fixed depth: no 4-layer network sorts 5 channels.

  $ snlb search -n 5 --depth 4
  no sorting network of depth <= 4 for n=5 (exhaustive)
  nodes: 45  pruned: 0  deduped: 2  subsumed: 16  redundant: 138  peak frontier: 5

An exhausted node budget is reported as inconclusive, with the depths
that were still fully refuted, and a nonzero exit code.

  $ snlb search -n 6 --budget 100
  inconclusive within 100 nodes (depths <= 3 refuted); raise --budget
  nodes: 106  pruned: 0  deduped: 9  subsumed: 82  redundant: 135  peak frontier: 5
  [3]

The shuffle-restricted mode (Knuth 5.3.4.47) rides the same driver.

  $ snlb search -n 4 --shuffle --depth 2
  no depth-2 shuffle-based sorter for n=4 (exhaustive)

  $ snlb search -n 8 --shuffle --budget 50
  inconclusive: stages <= 0 refuted within 50 nodes; raise --budget
  [3]

Invalid widths are rejected.

  $ snlb search -n 12
  search: n must be in [2,10] (state space is 2^n)
  [2]

  $ snlb search -n 6 --shuffle
  search: --shuffle needs n a power of two in [2,16]
  [2]
