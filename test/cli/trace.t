--trace streams one NDJSON span event per search level plus a closing
search span, without disturbing the regular output (domains pinned to 1
so the counts are deterministic).

  $ snlb search -n 6 --domains 1 --trace trace.ndjson | head -1
  optimal depth for n=6: 5 (witness verified: true)

  $ grep -c '"ev":"span"' trace.ndjson
  6

  $ grep -c '"name":"search/level"' trace.ndjson
  5

  $ grep -c '"name":"search"' trace.ndjson
  1

Every line is one JSON object carrying the required keys.

  $ awk '
  >   !/^\{.*\}$/                 { print "bad shape: " $0; bad = 1 }
  >   !/"ts":/ || !/"ev":/ || !/"name":/ || !/"wall_s":/ || !/"cpu_s":/ {
  >     print "missing key: " $0; bad = 1
  >   }
  >   END { exit bad }
  > ' trace.ndjson

The per-level deltas sum to the closing span's totals.

  $ awk -F'"nodes":' '
  >   /"name":"search\/level"/ { split($2, a, ","); sum += a[1] }
  >   /"name":"search",/       { split($2, a, ","); total = a[1] }
  >   END { if (sum == total) print "level deltas sum to total"
  >         else printf "mismatch: %d != %d\n", sum, total }
  > ' trace.ndjson
  level deltas sum to total

--metrics prints the global counter/histogram table after the run; the
search.* counter names are stable even though the values vary with
timing-dependent metrics elsewhere in the table.

  $ snlb search -n 6 --domains 1 --metrics | grep -o '^search\.[a-z_]*' | sort
  search.deduped
  search.levels
  search.nodes
  search.pruned
  search.subsumed

The shuffle-restricted search traces through the same driver.

  $ snlb search -n 4 --shuffle --depth 2 --trace shuffle.ndjson
  no depth-2 shuffle-based sorter for n=4 (exhaustive)

  $ grep -c '"name":"search/level"' shuffle.ndjson
  2
