The differential fuzzer cross-checks the whole verification stack on
seeded random networks: compiled engine vs scalar interpreter, exact
analyzer verdicts (including dead-removal and redundant-flip truth
tables), naive-adversary fooling-pair certificates, and the proved
optimal-depth table. The genome sequence is a function of the seed
alone, so the summary line is deterministic; the timing line goes to
stderr.

  $ snlb fuzz --count 300 --seed 7 2>/dev/null
  fuzz: checked 300 networks, 0 disagreements

  $ snlb fuzz --count 300 --seed 7 --metrics 2>/dev/null | grep -E "fuzz\."
  fuzz.disagreements                      0
  fuzz.networks                         300

A different seed drives a different (still clean) stream.

  $ snlb fuzz --count 150 --seed 23 2>/dev/null
  fuzz: checked 150 networks, 0 disagreements
