Evolving a depth-optimal sorting network. The depth shape defaults to
the proved optimum for the width, so a perfect-fitness individual is a
depth-optimal sorter; the witness is re-verified by the independent
0-1 checker and the final population is digested for resume checks.

  $ snlb evolve -n 5 --pop 256 --gens 300 --seed 1
  evolving n=5 depth=5: pop=256 gens<=300 seed=1
  sorter found at generation 1 (fitness 32/32, 9 comparators)
    layer 1: (1,3)(2,4)
    layer 2: (0,2)(3,4)
    layer 3: (0,1)(2,3)
    layer 4: (1,2)(3,4)
    layer 5: (2,3)
  depth 5 matches the known optimum for n=5
  witness verified (0-1 principle): true
  population digest: 6ac7f79f

Checkpointed evolutions survive being killed. The kill-gen fault point
simulates a crash at every generation boundary (after the boundary
snapshot is flushed), so each incarnation completes exactly one more
generation and exits 130 with its population on disk.

  $ export SNLB_FAULT=kill-gen
  $ snlb evolve -n 7 --pop 64 --gens 80 --seed 1 --checkpoint e.snap --checkpoint-interval 0
  evolving n=7 depth=6: pop=64 gens<=80 seed=1
  no sorter within 1 generations; best fitness 100/128 (16 comparators)
  population digest: 609e1370
  snlb: evolve interrupted
  [130]

  $ snlb evolve -n 7 --pop 64 --gens 80 --seed 1 --checkpoint e.snap --checkpoint-interval 0 --resume
  snlb: resuming evolution n=7 depth=6 pop=64 seed=1 at generation 1
  evolving n=7 depth=6: pop=64 gens<=80 seed=1
  no sorter within 2 generations; best fitness 106/128 (17 comparators)
  population digest: 39beb51e
  snlb: evolve interrupted
  [130]

With the fault cleared, the resumed run finishes with exactly the
result of a never-interrupted run — same discovery generation, same
network, byte-identical final population digest (compare the fresh run
below). All breeding randomness derives from (seed, generation, slot),
so the trajectory is independent of where the crashes landed.

  $ unset SNLB_FAULT
  $ snlb evolve -n 7 --pop 64 --gens 80 --seed 1 --checkpoint e.snap --checkpoint-interval 0 --resume
  snlb: resuming evolution n=7 depth=6 pop=64 seed=1 at generation 2
  evolving n=7 depth=6: pop=64 gens<=80 seed=1
  sorter found at generation 12 (fitness 128/128, 18 comparators)
    layer 1: (0,2)(1,5)(4,6)
    layer 2: (0,4)(1,2)(5,6)
    layer 3: (1,5)(2,6)(3,4)
    layer 4: (0,1)(2,4)(3,5)
    layer 5: (1,3)(2,5)(4,6)
    layer 6: (0,1)(2,3)(4,5)
  depth 6 matches the known optimum for n=7
  witness verified (0-1 principle): true
  population digest: 72dcf797

  $ snlb evolve -n 7 --pop 64 --gens 80 --seed 1
  evolving n=7 depth=6: pop=64 gens<=80 seed=1
  sorter found at generation 12 (fitness 128/128, 18 comparators)
    layer 1: (0,2)(1,5)(4,6)
    layer 2: (0,4)(1,2)(5,6)
    layer 3: (1,5)(2,6)(3,4)
    layer 4: (0,1)(2,4)(3,5)
    layer 5: (1,3)(2,5)(4,6)
    layer 6: (0,1)(2,3)(4,5)
  depth 6 matches the known optimum for n=7
  witness verified (0-1 principle): true
  population digest: 72dcf797

Usage errors are caught before any work starts.

  $ snlb evolve -n 5 --resume
  evolve: --resume needs --checkpoint FILE
  [2]
  $ snlb evolve -n 1
  evolve: n must be in [2,16]
  [2]
