(* Tests for the generic Shellsort network generator. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_families_produce_decreasing_to_one () =
  List.iter
    (fun name ->
      let incs = Option.get (Shellsort_net.family name) in
      List.iter
        (fun n ->
          let l = incs ~n in
          check_bool (name ^ " nonempty") true (l <> []);
          check_int (name ^ " ends at 1") 1 (List.nth l (List.length l - 1));
          let rec decreasing = function
            | a :: (b :: _ as rest) -> a > b && decreasing rest
            | [ _ ] | [] -> true
          in
          check_bool (name ^ " strictly decreasing") true (decreasing l);
          List.iter (fun h -> check_bool "in range" true (h >= 1 && (h < n || n = 1))) l)
        [ 2; 5; 16; 100; 1024 ])
    Shellsort_net.family_names

let zero_one_cases =
  List.concat_map
    (fun name ->
      List.map
        (fun n ->
          Alcotest.test_case (Printf.sprintf "%s sorts, n=%d" name n) `Quick
            (fun () ->
              let incs = Option.get (Shellsort_net.family name) in
              let nw = Shellsort_net.network ~n ~increments:(incs ~n) in
              check_bool "0-1 exact" true (Zero_one.is_sorting_network nw)))
        [ 2; 3; 7; 8; 13; 16 ])
    Shellsort_net.family_names

let test_custom_increments () =
  (* any decreasing sequence ending at 1 sorts *)
  let nw = Shellsort_net.network ~n:12 ~increments:[ 5; 2; 1 ] in
  check_bool "custom sorts" true (Zero_one.is_sorting_network nw);
  (* an increment sequence not ending at 1 must NOT sort (for n > 1) *)
  let nw = Shellsort_net.network ~n:8 ~increments:[ 4; 2 ] in
  check_bool "no final 1-pass: not a sorter" false (Zero_one.is_sorting_network nw)

let test_increment_validation () =
  check_bool "increment >= n rejected" true
    (match Shellsort_net.network ~n:4 ~increments:[ 4 ] with
     | exception Invalid_argument _ -> true
     | _ -> false);
  check_bool "increment 0 rejected" true
    (match Shellsort_net.network ~n:4 ~increments:[ 0 ] with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_depth_accounting () =
  (* each increment h contributes ceil(n/h) levels *)
  let n = 12 in
  let increments = [ 5; 2; 1 ] in
  let nw = Shellsort_net.network ~n ~increments in
  let expected =
    List.fold_left (fun acc h -> acc + ((n + h - 1) / h)) 0 increments
  in
  check_int "level count" expected (List.length (Network.levels nw))

let test_pratt_family_agrees () =
  Alcotest.(check (list int)) "pratt family = Pratt.increments"
    (Pratt.increments ~n:100)
    ((Option.get (Shellsort_net.family "pratt")) ~n:100)

let prop_random_inputs =
  QCheck.Test.make ~name:"all families sort random inputs (n=50)" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Xoshiro.of_seed seed in
      let n = 50 in
      let input = Workload.random_permutation rng ~n in
      List.for_all
        (fun name ->
          let incs = Option.get (Shellsort_net.family name) in
          let nw = Shellsort_net.network ~n ~increments:(incs ~n) in
          Sortedness.is_sorted (Network.eval nw input))
        Shellsort_net.family_names)

let () =
  Alcotest.run "shellsort"
    [ ("families", [ Alcotest.test_case "shape" `Quick test_families_produce_decreasing_to_one;
                     Alcotest.test_case "pratt agrees" `Quick test_pratt_family_agrees ]);
      ("zero-one exact", zero_one_cases);
      ( "construction",
        [ Alcotest.test_case "custom increments" `Quick test_custom_increments;
          Alcotest.test_case "validation" `Quick test_increment_validation;
          Alcotest.test_case "depth accounting" `Quick test_depth_accounting ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_random_inputs ]) ]
