(* Tests for the certificate layer (lib/cert + its emitters): soundness
   of the bounds order-matrix facts the certificates cite, print/parse
   round-trips through the portable text format, engine-independence of
   exhaustion certificates, and rejection of corrupted certificates
   with typed CRT*** errors. The checker shares no code with the
   engine, searcher, or analyzer, so every accepted certificate here is
   an independent confirmation of the emitting component. *)

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let zero_one_inputs n =
  Array.init (1 lsl n) (fun m -> Array.init n (fun w -> (m lsr w) land 1))

let random_network rng ~n ~levels =
  let level () =
    let wires = Array.init n (fun i -> i) in
    for i = n - 1 downto 1 do
      let j = Xoshiro.int rng ~bound:(i + 1) in
      let t = wires.(i) in
      wires.(i) <- wires.(j);
      wires.(j) <- t
    done;
    let pairs = Xoshiro.int rng ~bound:((n / 2) + 1) in
    List.init pairs (fun k ->
        let a = wires.(2 * k) and b = wires.((2 * k) + 1) in
        Gate.Compare { lo = min a b; hi = max a b })
  in
  Network.of_gate_levels ~wires:n (List.init levels (fun _ -> level ()))

let code_of = function Ok () -> "ok" | Error e -> e.Cert.code

(* --- bounds order-matrix soundness: every leq fact the bounds walk
   derives after every level really holds on all 2^n inputs of the
   prefix network --- *)

let test_bounds_soundness () =
  let rng = Xoshiro.of_seed 513 in
  for _ = 1 to 60 do
    let n = 2 + Xoshiro.int rng ~bound:7 (* 2..8 *) in
    let levels = 1 + Xoshiro.int rng ~bound:6 in
    let nw = random_network rng ~n ~levels in
    let b = Bounds.create n in
    List.iteri
      (fun li (level : Network.level) ->
        (match level.Network.pre with
        | None -> ()
        | Some p -> Bounds.transfer_perm b p);
        List.iter (fun g -> Bounds.transfer_gate b g) level.Network.gates;
        (* evaluate the prefix ending at this level on every input *)
        let prefix =
          Network.create ~wires:n
            (List.filteri (fun i _ -> i <= li) (Network.levels nw))
        in
        Array.iter
          (fun input ->
            let out = Network.eval prefix input in
            for i = 0 to n - 1 do
              for j = 0 to n - 1 do
                if i <> j && Bounds.leq b i j && out.(i) > out.(j) then
                  Alcotest.failf
                    "bounds claims %d <= %d after level %d, violated" i j
                    (li + 1)
              done
            done)
          (zero_one_inputs n))
      (Network.levels nw)
  done

(* --- registry round-trip: every registry sorter's n=8 sortedness
   certificate prints, re-parses to the same text, and checks --- *)

let test_registry_roundtrip () =
  List.iter
    (fun (e : Sorter_registry.entry) ->
      let nw = e.build 8 in
      match Analysis_cert.sortedness nw with
      | Error err -> Alcotest.failf "%s: no certificate: %s" e.name err
      | Ok c ->
          check_string (e.name ^ " kind") "sortedness" (Cert.kind_name c);
          let text = Cert.to_string c in
          (match Cert.parse text with
          | Error err ->
              Alcotest.failf "%s: reparse rejected: %s %s: %s" e.name
                err.Cert.code err.Cert.where err.Cert.reason
          | Ok [ c' ] ->
              check_string (e.name ^ " round-trip") text (Cert.to_string c');
              check_string (e.name ^ " checks") "ok" (code_of (Cert.check c'))
          | Ok certs ->
              Alcotest.failf "%s: %d certificates from one text" e.name
                (List.length certs)))
    Sorter_registry.all

(* --- the two search engines log identical frontiers and therefore
   emit byte-identical exhaustion certificates (n=6, depth 4) --- *)

let exhaustion_text ~engine ~n ~max_depth =
  let frontiers = ref [] in
  let frontier_log ~level:_ states = frontiers := states :: !frontiers in
  match
    Driver.optimal_depth ~engine ~frontier_log ~restrict:false ~max_depth ~n ()
  with
  | Driver.Unsorted _ -> (
      match
        Cert_emit.exhaustion ~n ~max_depth ~frontiers:(List.rev !frontiers)
      with
      | Ok c -> Cert.to_string c
      | Error e -> Alcotest.failf "no exhaustion certificate: %s" e)
  | _ -> Alcotest.fail "expected Unsorted at n=6 depth 4"

let test_exhaustion_engines_identical () =
  let legacy = exhaustion_text ~engine:`Legacy ~n:6 ~max_depth:4 in
  let arena = exhaustion_text ~engine:`Arena ~n:6 ~max_depth:4 in
  check_string "legacy = arena (byte-identical)" legacy arena;
  match Cert.parse legacy with
  | Error e -> Alcotest.failf "reparse rejected: %s" e.Cert.reason
  | Ok certs -> check_string "checks" "ok" (code_of (Cert.check_all certs))

(* --- refutation: a truncated sorter gets a witness-replay
   certificate; a corrupted (sorted) witness is rejected CRT211 --- *)

let broken4 =
  Network.of_gate_levels ~wires:4
    [ [ Gate.Compare { lo = 0; hi = 1 }; Gate.Compare { lo = 2; hi = 3 } ];
      [ Gate.Compare { lo = 0; hi = 2 }; Gate.Compare { lo = 1; hi = 3 } ];
    ]

let test_refutation () =
  match Analysis_cert.sortedness broken4 with
  | Error e -> Alcotest.failf "no certificate: %s" e
  | Ok (Cert.Refutation { network; witness } as c) ->
      check_string "checks" "ok" (code_of (Cert.check c));
      check_bool "witness really unsorted" false
        (Cert.is_sorted_mask ~n:4 (Cert.eval_mask network witness));
      (* input 0 sorts trivially: the claim becomes false *)
      let bad = Cert.Refutation { network; witness = 0 } in
      check_string "corrupt witness rejected" "CRT211" (code_of (Cert.check bad))
  | Ok c -> Alcotest.failf "expected refutation, got %s" (Cert.kind_name c)

(* --- dead gates: a re-compare after sorting is certified dead; the
   same claim against a live gate is rejected CRT221 --- *)

let test_dead_gates () =
  let dup =
    Network.of_gate_levels ~wires:4
      [ [ Gate.Compare { lo = 0; hi = 1 }; Gate.Compare { lo = 2; hi = 3 } ];
        [ Gate.Compare { lo = 0; hi = 2 }; Gate.Compare { lo = 1; hi = 3 } ];
        [ Gate.Compare { lo = 1; hi = 2 } ];
        [ Gate.Compare { lo = 1; hi = 2 } ];
      ]
  in
  match Analysis_cert.dead_gates dup with
  | Error e -> Alcotest.failf "no certificate: %s" e
  | Ok None -> Alcotest.fail "expected a dead-gate certificate"
  | Ok (Some (Cert.Dead_gates { network; sets; claims } as c)) ->
      check_string "checks" "ok" (code_of (Cert.check c));
      check_bool "has a dead claim" true
        (List.exists
           (function Cert.Dead { level = 4; _ } -> true | _ -> false)
           claims);
      let bad =
        Cert.Dead_gates
          { network; sets; claims = [ Cert.Dead { level = 1; gate = 0 } ] }
      in
      check_string "live gate claim rejected" "CRT221"
        (code_of (Cert.check bad))
  | Ok (Some c) ->
      Alcotest.failf "expected dead-gates, got %s" (Cert.kind_name c)

(* --- lower bound: the naive adversary's fooling pair on an all-plus
   shuffle network packages into a register-model transcript the
   checker replays; breaking the value adjacency is rejected --- *)

let test_lower_bound () =
  let prog = Shuffle_net.all_plus_program ~n:4 ~stages:4 in
  let nw = Register_model.to_network prog in
  let res = Theorem41.run (Shuffle_net.to_iterated prog) in
  match Certificate.of_pattern res.Theorem41.final_pattern with
  | None -> Alcotest.fail "adversary found no fooling pair on all-plus n=4"
  | Some cert -> (
      check_string "fooling pair validates" "ok"
        (match Certificate.validate nw cert with
        | Ok () -> "ok"
        | Error e -> e);
      match Certificate.to_cert nw cert with
      | Error e -> Alcotest.failf "no portable certificate: %s" e
      | Ok (Cert.Lower_bound lb as c) -> (
          check_string "checks" "ok" (code_of (Cert.check c));
          let text = Cert.to_string c in
          (match Cert.parse text with
          | Ok [ c' ] -> check_string "round-trip" text (Cert.to_string c')
          | Ok _ | Error _ -> Alcotest.fail "reparse failed");
          let bad = Cert.Lower_bound { lb with value1 = lb.value0 } in
          match Cert.check bad with
          | Ok () -> Alcotest.fail "non-adjacent values accepted"
          | Error e ->
              check_bool "typed rejection" true
                (String.length e.Cert.code = 6
                && String.sub e.Cert.code 0 3 = "CRT"))
      | Ok c -> Alcotest.failf "expected lower-bound, got %s" (Cert.kind_name c))

(* --- parse errors are typed --- *)

let test_parse_errors () =
  (match Cert.parse "not a certificate\n" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error e -> check_string "magic line" "CRT001" e.Cert.code);
  match Cert.parse "snlb-cert 1\nkind exhaustion\nn 4\nmax-depth 2\n" with
  | Ok _ -> Alcotest.fail "truncated certificate accepted"
  | Error e -> check_string "unterminated" "CRT001" e.Cert.code

let () =
  Alcotest.run "cert"
    [
      ( "domains",
        [
          Alcotest.test_case "bounds-soundness-60" `Quick test_bounds_soundness;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "registry-n8" `Quick test_registry_roundtrip;
          Alcotest.test_case "engines-identical-n6" `Quick
            test_exhaustion_engines_identical;
        ] );
      ( "kinds",
        [
          Alcotest.test_case "refutation" `Quick test_refutation;
          Alcotest.test_case "dead-gates" `Quick test_dead_gates;
          Alcotest.test_case "lower-bound" `Quick test_lower_bound;
          Alcotest.test_case "parse-errors" `Quick test_parse_errors;
        ] );
    ]
