(* Tests for the Definition 3.7 collision analysis, cross-checked
   against the exhaustive oracle on small instances. *)

let check_bool = Alcotest.(check bool)

open Symbol

(* [open Symbol] would otherwise shadow integer [<] *)
let ( < ) : int -> int -> bool = Stdlib.( < )

let example_net () =
  (* Example 3.3's network *)
  Network.of_gate_levels ~wires:4
    [ [ Gate.compare_up 1 2 ]; [ Gate.compare_up 2 3 ]; [ Gate.compare_up 0 3 ] ]

let example_pattern = [| S 0; M 0; M 0; L 0 |]

let test_example_3_3 () =
  let nw = example_net () in
  let p = example_pattern in
  (match Collide.analyse nw p 1 2 with
  | Collide.Always -> ()
  | _ -> Alcotest.fail "w1,w2 must be Always");
  (match Collide.analyse nw p 0 1 with
  | Collide.Never -> ()
  | _ -> Alcotest.fail "w0,w1 must be Never");
  (match Collide.analyse nw p 0 2 with
  | Collide.Never -> ()
  | _ -> Alcotest.fail "w0,w2 must be Never");
  (* w1,w3 can collide but not always: expect a concrete witness *)
  (match Collide.analyse nw p 1 3 with
  | Collide.Sometimes input ->
      check_bool "witness refines pattern" true (Pattern.refines_input p input);
      check_bool "witness collides" true
        (Trace.wires_collide nw input 1 3)
  | Collide.Always -> Alcotest.fail "w1,w3 is not Always (oracle says sometimes)"
  | Collide.Never | Collide.Unknown -> Alcotest.fail "w1,w3 can collide")

let test_example_3_3_w0_w3 () =
  (* w0 and w3 always collide: the analysis may or may not prove
     Always (positions are singletons here, so it should) *)
  let nw = example_net () in
  match Collide.analyse nw example_pattern 0 3 with
  | Collide.Always -> ()
  | Collide.Sometimes _ | Collide.Unknown ->
      Alcotest.fail "w0,w3: singleton paths, expected Always"
  | Collide.Never -> Alcotest.fail "w0,w3 do collide"

let test_noncolliding_on_adversary_output () =
  (* the adversary's final M_0 set must be *provably* noncolliding
     under the static analysis, not just under sampled traces *)
  List.iter
    (fun seed ->
      let n = 32 in
      let rng = Xoshiro.of_seed seed in
      let prog = Shuffle_net.random_program rng ~n ~stages:10 in
      let it = Shuffle_net.to_iterated prog in
      let r = Theorem41.run it in
      let nw = Network.flatten (Iterated.to_network it) in
      check_bool
        (Printf.sprintf "seed %d: static proof of noncollision" seed)
        true
        (Collide.noncolliding nw r.Theorem41.final_pattern r.Theorem41.final_m_set))
    [ 1; 2; 3; 4; 5 ]

(* soundness vs the exhaustive oracle *)
let prop_sound_vs_oracle =
  QCheck.Test.make ~name:"verdicts sound against exhaustive oracle (n=6)" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let n = 6 in
      let rng = Xoshiro.of_seed seed in
      (* small random circuit of 3 levels *)
      let level () =
        let wires = Perm.to_array (Perm.random rng n) in
        let gates = ref [] in
        let i = ref 0 in
        while !i + 1 < n do
          if Stdlib.( < ) (Xoshiro.float rng) 0.7 then
            gates := Gate.compare_up wires.(!i) wires.(!i + 1) :: !gates;
          i := !i + 2
        done;
        !gates
      in
      let nw = Network.of_gate_levels ~wires:n [ level (); level (); level () ] in
      let syms = [| Symbol.S 0; Symbol.M 0; Symbol.M 1; Symbol.L 0 |] in
      let p = Array.init n (fun _ -> syms.(Xoshiro.int rng ~bound:4)) in
      let ranks = Array.map
          (fun s -> match s with
             | Symbol.S _ -> 0 | Symbol.M 0 -> 1 | Symbol.M _ -> 2 | _ -> 3) p
      in
      let ok = ref true in
      for w0 = 0 to n - 1 do
        for w1 = w0 + 1 to n - 1 do
          let oracle_can = Exhaustive.can_collide_oracle nw ranks w0 w1 in
          let oracle_always = Exhaustive.collides_always_oracle nw ranks w0 w1 in
          match Collide.analyse nw p w0 w1 with
          | Collide.Always -> if not oracle_always then ok := false
          | Collide.Never -> if oracle_can then ok := false
          | Collide.Sometimes _ -> if not oracle_can then ok := false
          | Collide.Unknown -> ()
        done
      done;
      !ok)

let () =
  Alcotest.run "collide"
    [ ( "definition 3.7",
        [ Alcotest.test_case "Example 3.3 verdicts" `Quick test_example_3_3;
          Alcotest.test_case "Example 3.3 forced collision" `Quick test_example_3_3_w0_w3;
          Alcotest.test_case "adversary output provably noncolliding" `Quick
            test_noncolliding_on_adversary_output ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_sound_vs_oracle ]) ]
