(* Tests for sortedness predicates, the packed 0-1 checker (against the
   unpacked oracle), and the exhaustive helpers. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_is_sorted () =
  check_bool "empty" true (Sortedness.is_sorted [||]);
  check_bool "single" true (Sortedness.is_sorted [| 5 |]);
  check_bool "sorted" true (Sortedness.is_sorted [| 1; 2; 2; 3 |]);
  check_bool "unsorted" false (Sortedness.is_sorted [| 2; 1 |]);
  check_bool "tail unsorted" false (Sortedness.is_sorted [| 1; 2; 3; 2 |])

let test_inversions () =
  check_int "sorted" 0 (Sortedness.inversions [| 1; 2; 3 |]);
  check_int "reversed" 6 (Sortedness.inversions [| 4; 3; 2; 1 |]);
  check_int "one swap" 1 (Sortedness.inversions [| 1; 3; 2 |]);
  check_int "empty" 0 (Sortedness.inversions [||])

let naive_inversions a =
  let c = ref 0 in
  for i = 0 to Array.length a - 1 do
    for j = i + 1 to Array.length a - 1 do
      if a.(i) > a.(j) then incr c
    done
  done;
  !c

let prop_inversions_match_naive =
  QCheck.Test.make ~name:"inversions = O(n^2) oracle" ~count:300
    QCheck.(pair (int_range 0 100_000) (int_range 0 40))
    (fun (seed, n) ->
      let rng = Xoshiro.of_seed seed in
      let a = Array.init n (fun _ -> Xoshiro.int rng ~bound:20) in
      Sortedness.inversions a = naive_inversions a)

let test_displacement () =
  check_int "identity" 0 (Sortedness.displacement [| 0; 1; 2 |]);
  check_int "swap ends" 4 (Sortedness.displacement [| 2; 1; 0 |])

let test_output_assignment () =
  let nw = Network.of_gate_levels ~wires:3 [ [ Gate.compare_up 0 2 ] ] in
  let a = Sortedness.output_assignment nw [| 2; 1; 0 |] in
  (* value 0 ends on wire 0, value 2 on wire 2, value 1 stays on wire 1 *)
  Alcotest.(check (array int)) "assignment" [| 0; 1; 2 |] a;
  check_bool "same assignment detection" true
    (Sortedness.same_output_assignment nw [| 2; 1; 0 |] [| 2; 1; 0 |])

let test_zero_one_known_sorters () =
  check_bool "bitonic 8" true (Zero_one.is_sorting_network (Bitonic.network ~n:8));
  check_bool "truncated fails" false
    (Zero_one.is_sorting_network
       (Network.of_gate_levels ~wires:4 [ [ Gate.compare_up 0 1 ] ]));
  check_bool "1-wire trivially sorts" true
    (Zero_one.is_sorting_network (Network.empty 1))

let test_zero_one_guard () =
  check_bool "guard" true
    (match Zero_one.is_sorting_network ~max_wires:4 (Bitonic.network ~n:8) with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_failing_input_is_witness () =
  let broken =
    Network.of_gate_levels ~wires:4
      [ [ Gate.compare_up 0 1; Gate.compare_up 2 3 ] ]
  in
  match Zero_one.failing_input broken with
  | None -> Alcotest.fail "expected failure"
  | Some w ->
      check_bool "witness is 0-1" true (Array.for_all (fun v -> v = 0 || v = 1) w);
      check_bool "witness unsorted after eval" false
        (Sortedness.is_sorted (Network.eval broken w))

let prop_packed_matches_unpacked =
  QCheck.Test.make ~name:"packed 0-1 checker = direct enumeration" ~count:60
    QCheck.(pair (int_range 0 100_000) (int_range 1 3))
    (fun (seed, logn) ->
      let n = 1 lsl (logn + 1) in
      let rng = Xoshiro.of_seed seed in
      let stages = 1 + Xoshiro.int rng ~bound:8 in
      let prog = Shuffle_net.random_program rng ~n ~stages in
      let nw = Register_model.to_network prog in
      Zero_one.is_sorting_network nw = Exhaustive.sorts_all_zero_one nw)

let prop_unsorted_count_matches =
  QCheck.Test.make ~name:"unsorted_count = direct count" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let n = 8 in
      let rng = Xoshiro.of_seed seed in
      let prog = Shuffle_net.random_program rng ~n ~stages:4 in
      let nw = Register_model.to_network prog in
      let direct = ref 0 in
      for t = 0 to (1 lsl n) - 1 do
        let input = Array.init n (fun w -> (t lsr w) land 1) in
        if not (Sortedness.is_sorted (Network.eval nw input)) then incr direct
      done;
      Zero_one.unsorted_count nw = !direct)

let prop_zero_one_principle_itself =
  (* the 0-1 principle: sorts all 0-1 inputs <=> sorts all permutations
     (checked on random small networks, where both are enumerable) *)
  QCheck.Test.make ~name:"0-1 principle on random networks" ~count:60
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let n = 4 in
      let rng = Xoshiro.of_seed seed in
      let prog = Shuffle_net.random_program rng ~n ~stages:(2 + Xoshiro.int rng ~bound:6) in
      let nw = Register_model.to_network prog in
      Exhaustive.sorts_all_zero_one nw = Exhaustive.sorts_all_permutations nw)

let test_iter_permutations_counts () =
  let count = ref 0 in
  Exhaustive.iter_permutations 5 (fun _ -> incr count);
  check_int "5! permutations" 120 !count;
  let count = ref 0 in
  Exhaustive.iter_permutations 0 (fun _ -> incr count);
  check_int "one empty permutation" 1 !count

let test_iter_permutations_distinct () =
  let seen = Hashtbl.create 24 in
  Exhaustive.iter_permutations 4 (fun p -> Hashtbl.replace seen (Array.copy p) ());
  check_int "all distinct" 24 (Hashtbl.length seen)

let () =
  Alcotest.run "verify"
    [ ( "sortedness",
        [ Alcotest.test_case "is_sorted" `Quick test_is_sorted;
          Alcotest.test_case "inversions" `Quick test_inversions;
          Alcotest.test_case "displacement" `Quick test_displacement;
          Alcotest.test_case "output assignment" `Quick test_output_assignment ] );
      ( "zero-one",
        [ Alcotest.test_case "known sorters" `Quick test_zero_one_known_sorters;
          Alcotest.test_case "guard" `Quick test_zero_one_guard;
          Alcotest.test_case "failing input" `Quick test_failing_input_is_witness ] );
      ( "exhaustive",
        [ Alcotest.test_case "iter_permutations count" `Quick test_iter_permutations_counts;
          Alcotest.test_case "iter_permutations distinct" `Quick test_iter_permutations_distinct ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_inversions_match_naive; prop_packed_matches_unpacked;
            prop_unsorted_count_matches; prop_zero_one_principle_itself ] ) ]
