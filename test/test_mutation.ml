(* Failure injection: break correct artifacts in controlled ways and
   check the checkers catch them.  A verifier that never fires on
   mutants is as suspect as a prover that never succeeds. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- mutating sorting networks --- *)

let drop_gate nw ~level ~index =
  let lvls =
    List.mapi
      (fun li lvl ->
        if li <> level then lvl
        else
          { lvl with
            Network.gates = List.filteri (fun gi _ -> gi <> index) lvl.Network.gates })
      (Network.levels nw)
  in
  Network.create ~wires:(Network.wires nw) lvls

let reverse_gate nw ~level ~index =
  let lvls =
    List.mapi
      (fun li lvl ->
        if li <> level then lvl
        else
          { lvl with
            Network.gates =
              List.mapi
                (fun gi g ->
                  if gi <> index then g
                  else
                    match g with
                    | Gate.Compare { lo; hi } -> Gate.Compare { lo = hi; hi = lo }
                    | Gate.Exchange _ as g -> g)
                lvl.Network.gates })
      (Network.levels nw)
  in
  Network.create ~wires:(Network.wires nw) lvls

let count_killed mutate nw =
  let killed = ref 0 and total = ref 0 in
  List.iteri
    (fun level lvl ->
      List.iteri
        (fun index g ->
          if Gate.is_comparator g then begin
            incr total;
            let mutant = mutate nw ~level ~index in
            if not (Zero_one.is_sorting_network mutant) then incr killed
          end)
        lvl.Network.gates)
    (Network.levels nw);
  (!killed, !total)

let test_every_comparator_of_oem_matters () =
  (* Batcher's odd-even merge network is irredundant: deleting any
     single comparator breaks it. *)
  let nw = Odd_even_merge.network ~n:8 in
  let killed, total = count_killed drop_gate nw in
  check_int "every deletion kills" total killed

let test_every_comparator_of_bitonic_matters () =
  let nw = Bitonic.network ~n:8 in
  let killed, total = count_killed drop_gate nw in
  check_int "every deletion kills" total killed

let test_reversing_breaks_most () =
  (* flipping a comparator's orientation almost always breaks sorting;
     assert it breaks at least 90% (and record it breaks all for n=8
     bitonic, which it does) *)
  let nw = Bitonic.network ~n:8 in
  let killed, total = count_killed reverse_gate nw in
  check_bool "most reversals kill" true (killed * 10 >= total * 9)

let test_padded_network_has_redundancy () =
  (* a deliberately padded sorter (brick network plus two extra brick
     levels) has deletable comparators — the checker must NOT claim
     every mutant broken.  (Notably, the bare n-level brick network at
     n = 8 is itself irredundant, which surprised us; see the sibling
     tests.) *)
  let base = Transposition.network ~n:8 in
  let extra =
    Network.of_gate_levels ~wires:8
      [ [ Gate.compare_up 0 1; Gate.compare_up 2 3; Gate.compare_up 4 5 ];
        [ Gate.compare_up 1 2; Gate.compare_up 3 4; Gate.compare_up 5 6 ] ]
  in
  let nw = Network.serial base extra in
  let killed, total = count_killed drop_gate nw in
  check_bool "some deletions survive" true (killed < total)

(* --- mutating certificates --- *)

let make_cert () =
  let rng = Xoshiro.of_seed 77 in
  let prog = Shuffle_net.random_program rng ~n:32 ~stages:10 in
  let it = Shuffle_net.to_iterated prog in
  let r = Theorem41.run it in
  let nw = Iterated.to_network it in
  match Certificate.of_pattern r.Theorem41.final_pattern with
  | Some cert -> (nw, cert)
  | None -> Alcotest.fail "expected a certificate"

let test_certificate_mutations_rejected () =
  let nw, cert = make_cert () in
  check_bool "original valid" true (Certificate.validate nw cert = Ok ());
  (* swap two non-witness values in the twin *)
  let bad_twin = Array.copy cert.Certificate.twin in
  let i = cert.Certificate.wire0 and j = (cert.Certificate.wire0 + 1) mod 32 in
  if j <> cert.Certificate.wire1 then begin
    let t = bad_twin.(i) in
    bad_twin.(i) <- bad_twin.(j);
    bad_twin.(j) <- t;
    check_bool "twin perturbation rejected" true
      (Certificate.validate nw { cert with Certificate.twin = bad_twin } <> Ok ())
  end;
  (* non-permutation input *)
  let bad_input = Array.copy cert.Certificate.input in
  bad_input.(0) <- bad_input.(1);
  check_bool "non-permutation rejected" true
    (Certificate.validate nw { cert with Certificate.input = bad_input } <> Ok ());
  (* wrong witness wires *)
  check_bool "wire mismatch rejected" true
    (Certificate.validate nw
       { cert with Certificate.wire0 = (cert.Certificate.wire0 + 3) mod 32 }
     <> Ok ())

let test_certificate_wrong_network_rejected () =
  (* a certificate for one network must not validate against a sorter *)
  let _, cert = make_cert () in
  let sorter = Bitonic.network ~n:32 in
  check_bool "sorter refutes the certificate" true
    (Certificate.validate sorter cert <> Ok ())

(* --- fuzzing the parser --- *)

let test_parser_fuzz_never_crashes () =
  let rng = Xoshiro.of_seed 5 in
  let base = Network_io.to_string (Bitonic.network ~n:8) in
  for _ = 1 to 300 do
    (* random truncation + random byte smash *)
    let len = 1 + Xoshiro.int rng ~bound:(String.length base) in
    let s = Bytes.of_string (String.sub base 0 len) in
    let pos = Xoshiro.int rng ~bound:(Bytes.length s) in
    Bytes.set s pos (Char.chr (32 + Xoshiro.int rng ~bound:95));
    (* must return Ok or Error, never raise *)
    match Network_io.of_string (Bytes.to_string s) with
    | Ok _ | Error _ -> ()
  done;
  check_bool "no crash" true true

let test_mset_invariant_checker_fires () =
  (* corrupt the adversary state on purpose; check_invariants must
     object *)
  let st = Mset.create ~n:4 ~k:2 in
  let coll = Mset.singleton_collection st 0 in
  st.Mset.sym.(0) <- Symbol.L 0;
  check_bool "detects symbol corruption" true
    (match Mset.check_invariants st coll with
     | exception Failure _ -> true
     | () -> false)

let () =
  Alcotest.run "mutation"
    [ ( "network mutants",
        [ Alcotest.test_case "odd-even merge irredundant" `Quick
            test_every_comparator_of_oem_matters;
          Alcotest.test_case "bitonic irredundant" `Quick
            test_every_comparator_of_bitonic_matters;
          Alcotest.test_case "orientation flips break" `Quick test_reversing_breaks_most;
          Alcotest.test_case "padded network has slack" `Quick
            test_padded_network_has_redundancy ] );
      ( "certificate mutants",
        [ Alcotest.test_case "perturbations rejected" `Quick
            test_certificate_mutations_rejected;
          Alcotest.test_case "wrong network rejected" `Quick
            test_certificate_wrong_network_rejected ] );
      ( "fuzz",
        [ Alcotest.test_case "parser total" `Quick test_parser_fuzz_never_crashes;
          Alcotest.test_case "invariant checker fires" `Quick
            test_mset_invariant_checker_fires ] ) ]
