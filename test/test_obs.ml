(* Tests for the observability layer (lib/obs): clocks, the global
   metrics registry, sinks (memory and NDJSON), hierarchical spans, and
   the search driver's trace contract — per-level span deltas must sum
   to the run's final stats. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- Clock --- *)

let test_clock_monotone () =
  let samples = List.init 1000 (fun _ -> Clock.wall ()) in
  let rec walk = function
    | a :: (b :: _ as rest) ->
        check_bool "wall never decreases" true (b >= a);
        walk rest
    | _ -> ()
  in
  walk samples;
  check_bool "cpu nonnegative" true (Clock.cpu () >= 0.)

(* --- Metrics --- *)

let test_counters () =
  let c = Metrics.counter "test.obs.counter" in
  let c' = Metrics.counter "test.obs.counter" in
  Metrics.incr c;
  Metrics.add c' 41;
  (* interned: both handles hit the same cell *)
  check_int "interned handles share the cell" 42 (Metrics.value c);
  check_bool "registry lists it" true
    (List.mem_assoc "test.obs.counter" (Metrics.counters ()));
  Metrics.reset ();
  check_int "reset zeroes in place" 0 (Metrics.value c);
  Metrics.incr c;
  check_int "old handles keep recording after reset" 1 (Metrics.value c)

let test_histograms () =
  let h = Metrics.histogram "test.obs.hist" in
  Metrics.reset ();
  List.iter (Metrics.observe h) [ 1.0; 2.0; 4.0; 1024.0 ];
  Metrics.observe h nan (* dropped *);
  let s = Metrics.snapshot h in
  check_int "count" 4 s.Metrics.count;
  check_bool "sum" true (abs_float (s.Metrics.sum -. 1031.) < 1e-9);
  check_bool "min" true (s.Metrics.min = 1.0);
  check_bool "max" true (s.Metrics.max = 1024.0);
  check_bool "mean" true (abs_float (Metrics.mean s -. 257.75) < 1e-9);
  check_int "buckets sum to count" 4
    (Array.fold_left ( + ) 0 s.Metrics.buckets);
  check_bool "summary rows expand the histogram" true
    (List.mem_assoc "test.obs.hist.count" (Obs.summary ()))

(* --- Sink --- *)

let test_memory_sink () =
  let sink, events = Sink.memory () in
  check_bool "memory sink is enabled" true (Sink.enabled sink);
  check_bool "null sink is disabled" false (Sink.enabled Sink.null);
  Sink.emit sink ~ev:"a" ~name:"first" [ ("x", Sink.Int 1) ];
  Sink.emit sink ~ev:"b" ~name:"second" [ ("y", Sink.Float 0.5) ];
  match events () with
  | [ e1; e2 ] ->
      check_string "order preserved" "first" e1.Sink.name;
      check_string "kinds" "b" e2.Sink.ev;
      check_bool "fields survive" true (e1.Sink.fields = [ ("x", Sink.Int 1) ]);
      check_bool "timestamps ordered" true (e2.Sink.ts >= e1.Sink.ts)
  | es -> Alcotest.failf "expected 2 events, got %d" (List.length es)

let test_json_escaping () =
  let e =
    { Sink.ts = 1.5;
      ev = "span";
      name = "x";
      fields =
        [ ("s", Sink.Str "a\"b\\c\nd");
          ("f", Sink.Float infinity);
          ("i", Sink.Int (-3)) ] }
  in
  let j = Sink.to_json e in
  check_bool "quote escaped" true
    (String.length (String.concat "" (String.split_on_char '"' j)) < String.length j);
  let contains sub =
    let n = String.length j and m = String.length sub in
    let rec go i = i + m <= n && (String.sub j i m = sub || go (i + 1)) in
    go 0
  in
  check_bool "backslash-quote" true (contains {|a\"b|});
  check_bool "backslash-backslash" true (contains {|b\\c|});
  check_bool "newline escaped" true (contains {|c\nd|});
  check_bool "non-finite float serialises as 0" true (contains "\"f\":0");
  check_bool "negative int" true (contains "\"i\":-3")

let test_ndjson_sink () =
  let path = Filename.temp_file "snlb_obs" ".ndjson" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let sink = Sink.ndjson oc in
      Sink.emit sink ~ev:"span" ~name:"p/q" [ ("n", Sink.Int 7) ];
      Sink.emit sink ~ev:"span" ~name:"p" [];
      close_out oc;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      match List.rev !lines with
      | [ l1; l2 ] ->
          check_bool "one object per line" true
            (String.length l1 > 2
            && l1.[0] = '{'
            && l1.[String.length l1 - 1] = '}');
          let has s l =
            let n = String.length l and m = String.length s in
            let rec go i = i + m <= n && (String.sub l i m = s || go (i + 1)) in
            go 0
          in
          check_bool "name field" true (has "\"name\":\"p/q\"" l1);
          check_bool "payload field" true (has "\"n\":7" l1);
          check_bool "second line" true (has "\"name\":\"p\"" l2)
      | ls -> Alcotest.failf "expected 2 lines, got %d" (List.length ls))

(* --- Span --- *)

let test_span_nesting () =
  let sink, events = Sink.memory () in
  let r =
    Span.run ~sink ~name:"outer" @@ fun outer ->
    Span.add outer "tag" (Sink.Str "o");
    Span.run ~sink ~name:"inner" (fun inner ->
        Span.add inner "k" (Sink.Int 1);
        17)
  in
  check_int "body result returned" 17 r;
  match events () with
  | [ inner; outer ] ->
      (* inner closes (and emits) first *)
      check_string "nested path" "outer/inner" inner.Sink.name;
      check_string "outer path" "outer" outer.Sink.name;
      check_bool "wall_s present" true
        (List.mem_assoc "wall_s" inner.Sink.fields);
      check_bool "cpu_s present" true (List.mem_assoc "cpu_s" inner.Sink.fields);
      check_bool "attached field" true
        (List.mem_assoc "tag" outer.Sink.fields)
  | es -> Alcotest.failf "expected 2 span events, got %d" (List.length es)

let test_span_disabled_and_exceptions () =
  (* disabled sink: body still runs, nothing recorded *)
  let hit = ref false in
  let v = Span.run ~name:"quiet" (fun _ -> hit := true; 3) in
  check_int "value through disabled span" 3 v;
  check_bool "body ran" true !hit;
  let sink, events = Sink.memory () in
  (* a raising body emits nothing and unwinds the path stack *)
  (try
     Span.run ~sink ~name:"outer" (fun _ ->
         ignore (Span.run ~sink ~name:"boom" (fun _ -> failwith "x"));
         ())
   with Failure _ -> ());
  Span.run ~sink ~name:"after" (fun _ -> ());
  match events () with
  | [ e ] -> check_string "stack unwound past the raise" "after" e.Sink.name
  | es -> Alcotest.failf "expected 1 event, got %d" (List.length es)

let test_span_thread_isolation () =
  (* concurrent threads must not see each other's open spans as
     parents: thread B's span runs while A's is open, and both paths
     must still be flat (regression: a Domain.DLS stack is shared by
     every systhread in the domain, so serve sessions interleaved
     into names like "serve.request/serve.request") *)
  let sink, events = Sink.memory () in
  let m = Mutex.create () and c = Condition.create () in
  let a_open = ref false and b_done = ref false in
  let a =
    Thread.create
      (fun () ->
        Span.run ~sink ~name:"a" (fun _ ->
            Mutex.lock m;
            a_open := true;
            Condition.broadcast c;
            while not !b_done do
              Condition.wait c m
            done;
            Mutex.unlock m))
      ()
  in
  let b =
    Thread.create
      (fun () ->
        Mutex.lock m;
        while not !a_open do
          Condition.wait c m
        done;
        Mutex.unlock m;
        Span.run ~sink ~name:"b" (fun _ -> ());
        Mutex.lock m;
        b_done := true;
        Condition.broadcast c;
        Mutex.unlock m)
      ()
  in
  Thread.join a;
  Thread.join b;
  let names = List.map (fun e -> e.Sink.name) (events ()) in
  check_bool "both spans emitted, neither nested under the other" true
    (List.sort compare names = [ "a"; "b" ])

(* --- Driver trace contract --- *)

let test_driver_trace_totals () =
  let sink, events = Sink.memory () in
  let on_level_frontiers = ref [] in
  let outcome =
    Driver.optimal_depth ~sink
      ~on_level:(fun ~level:_ ~frontier _ ->
        on_level_frontiers := frontier :: !on_level_frontiers)
      ~n:6 ()
  in
  let stats =
    match outcome with
    | Driver.Sorted { depth; stats; _ } ->
        check_int "n=6 optimum" 5 depth;
        stats
    | Driver.Unsorted _ | Driver.Inconclusive _ | Driver.Interrupted _ ->
        Alcotest.fail "n=6 must be certified"
  in
  let levels, finals =
    List.partition
      (fun e -> e.Sink.name = "search/level")
      (List.filter (fun e -> e.Sink.ev = "span") (events ()))
  in
  let int_field e k =
    match List.assoc_opt k e.Sink.fields with
    | Some (Sink.Int v) -> v
    | _ -> Alcotest.failf "field %s missing on %s" k e.Sink.name
  in
  let sum k = List.fold_left (fun acc e -> acc + int_field e k) 0 levels in
  check_int "one event per level" 5 (List.length levels);
  check_int "level node deltas sum to stats.nodes" stats.Driver.nodes
    (sum "nodes");
  check_int "level subsumed deltas sum" stats.Driver.subsumed (sum "subsumed");
  check_int "level deduped deltas sum" stats.Driver.deduped (sum "deduped");
  check_int "level pruned deltas sum" stats.Driver.pruned (sum "pruned");
  (match finals with
  | [ f ] ->
      check_string "closing search span" "search" f.Sink.name;
      check_int "closing totals agree" stats.Driver.nodes (int_field f "nodes")
  | fs -> Alcotest.failf "expected 1 search span, got %d" (List.length fs));
  (* the live callback saw each completed level's surviving frontier *)
  check_bool "on_level frontiers = stats.frontier_sizes" true
    (List.rev !on_level_frontiers = stats.Driver.frontier_sizes)

let () =
  Alcotest.run "obs"
    [ ("clock", [ Alcotest.test_case "monotone" `Quick test_clock_monotone ]);
      ( "metrics",
        [ Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "histograms" `Quick test_histograms ] );
      ( "sink",
        [ Alcotest.test_case "memory" `Quick test_memory_sink;
          Alcotest.test_case "json escaping" `Quick test_json_escaping;
          Alcotest.test_case "ndjson file" `Quick test_ndjson_sink ] );
      ( "span",
        [ Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "disabled + exceptions" `Quick
            test_span_disabled_and_exceptions;
          Alcotest.test_case "thread isolation" `Quick
            test_span_thread_isolation ] );
      ( "driver",
        [ Alcotest.test_case "trace totals = final stats" `Quick
            test_driver_trace_totals ] ) ]
