(* Deeper adversary properties: inter-block permutations, parameter
   sweeps, alternative offset policies, adjacency of the final values,
   and randomized adaptive builders.  All verdicts are validated by
   instrumented evaluation of the actual circuits. *)

let check_bool = Alcotest.(check bool)

let validate_or_fail nw pattern =
  match Certificate.of_pattern pattern with
  | None -> Alcotest.fail "expected the adversary to survive"
  | Some cert -> (
      (match Certificate.validate nw cert with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("certificate: " ^ e));
      match Certificate.validate_noncolliding nw cert with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("noncolliding: " ^ e))

(* Iterated networks with arbitrary permutations BETWEEN blocks — the
   full generality of Definition 3.4's serial composition. *)
let test_certificates_with_interblock_permutations () =
  List.iter
    (fun seed ->
      let rng = Xoshiro.of_seed seed in
      let it =
        Random_net.iterated rng ~n:64 ~blocks:3 ~density:0.9 ~swap_prob:0.1
          ~permute:true
      in
      let r = Theorem41.run it in
      check_bool "survives" true (r.Theorem41.exhausted);
      validate_or_fail (Iterated.to_network it) r.Theorem41.final_pattern)
    [ 21; 22; 23; 24; 25 ]

(* The witness values really are adjacent, and the whole M_0 block of
   the canonical input is one contiguous run of values. *)
let test_final_values_contiguous () =
  let rng = Xoshiro.of_seed 31 in
  let it =
    Random_net.iterated rng ~n:32 ~blocks:2 ~density:0.8 ~swap_prob:0.0
      ~permute:true
  in
  let r = Theorem41.run it in
  match Certificate.of_pattern r.Theorem41.final_pattern with
  | None -> Alcotest.fail "expected survival"
  | Some cert ->
      let values =
        List.sort compare
          (List.map (fun w -> cert.Certificate.input.(w)) cert.Certificate.m_set)
      in
      let rec contiguous = function
        | a :: (b :: _ as rest) -> b = a + 1 && contiguous rest
        | [ _ ] | [] -> true
      in
      check_bool "M_0 values form one run" true (contiguous values)

(* Parameter sweep: the engine is sound for every k, not just lg n. *)
let test_k_sweep () =
  let mk seed =
    let rng = Xoshiro.of_seed seed in
    Shuffle_net.to_iterated (Shuffle_net.random_program rng ~n:32 ~stages:10)
  in
  List.iter
    (fun k ->
      let it = mk 41 in
      let r = Theorem41.run ~k it in
      if r.Theorem41.exhausted && List.length r.Theorem41.final_m_set >= 2 then
        validate_or_fail (Iterated.to_network it) r.Theorem41.final_pattern)
    [ 1; 2; 3; 5; 8; 13 ]

(* The paper's literal first-below-average offset rule is also sound. *)
let test_first_below_average_policy () =
  List.iter
    (fun seed ->
      let rng = Xoshiro.of_seed seed in
      let it =
        Shuffle_net.to_iterated (Shuffle_net.random_program rng ~n:64 ~stages:12)
      in
      let r = Theorem41.run ~policy:Mset.First_below_average it in
      if r.Theorem41.exhausted && List.length r.Theorem41.final_m_set >= 2 then
        validate_or_fail (Iterated.to_network it) r.Theorem41.final_pattern)
    [ 51; 52; 53 ]

(* Even the ablation policy must stay SOUND (it only loses more): when
   it survives, its certificates hold. *)
let test_fixed_policy_sound () =
  let rng = Xoshiro.of_seed 61 in
  let it =
    Shuffle_net.to_iterated (Shuffle_net.random_program rng ~n:64 ~stages:6)
  in
  let r = Theorem41.run ~policy:(Mset.Fixed 0) it in
  if r.Theorem41.exhausted && List.length r.Theorem41.final_m_set >= 2 then
    validate_or_fail (Iterated.to_network it) r.Theorem41.final_pattern

(* A randomized adaptive builder: arbitrary labels, arbitrary swaps —
   the engine's bookkeeping must stay consistent and its certificate
   must hold on the recorded program. *)
let test_random_adaptive_builder () =
  let rng = Xoshiro.of_seed 71 in
  let builder ~stage:_ ~state:_ ~pairs =
    Array.map
      (fun _ ->
        match Xoshiro.int rng ~bound:4 with
        | 0 -> Some Reverse_delta.Min_left
        | 1 -> Some Reverse_delta.Min_right
        | 2 -> Some Reverse_delta.Swap
        | _ -> None)
      pairs
  in
  let r = Adaptive.run ~n:64 ~blocks:3 builder in
  if r.Adaptive.survived = 3 then
    validate_or_fail
      (Register_model.to_network r.Adaptive.program)
      r.Adaptive.final_pattern

(* Truncated variant: every divisor granularity yields sound results
   on the same program. *)
let test_truncated_f_sweep () =
  let n = 64 in
  let rng = Xoshiro.of_seed 81 in
  let prog = Shuffle_net.random_program rng ~n ~stages:12 in
  let nw = Register_model.to_network prog in
  List.iter
    (fun f ->
      let r = Truncated.run ~f prog in
      if r.Truncated.exhausted && List.length r.Truncated.final_m_set >= 2 then
        validate_or_fail nw r.Truncated.final_pattern)
    [ 1; 2; 3; 6 ]

(* Lemma41's merge trail has one entry per internal node. *)
let test_merge_trail_size () =
  let n = 32 in
  let st = Mset.create ~n ~k:5 in
  let _, stats = Lemma41.run st (Butterfly.ascending ~levels:5) in
  Alcotest.(check int) "n - 1 merges" (n - 1) (List.length stats.Lemma41.merges);
  List.iter
    (fun (m : Mset.merge_stats) ->
      check_bool "offset in range" true (m.Mset.i0 >= 0 && m.Mset.i0 < 25);
      check_bool "loss within bound" true (m.Mset.removed * 25 <= m.Mset.left_total))
    stats.Lemma41.merges

let qcheck_perm_blocks_certificates =
  QCheck.Test.make
    ~name:"certificates remain valid under random inter-block permutations"
    ~count:30
    QCheck.(pair (int_range 0 100_000) (int_range 3 6))
    (fun (seed, d) ->
      let n = 1 lsl d in
      let rng = Xoshiro.of_seed seed in
      let it =
        Random_net.iterated rng ~n ~blocks:2 ~density:0.8 ~swap_prob:0.2
          ~permute:true
      in
      let r = Theorem41.run it in
      match Certificate.of_pattern r.Theorem41.final_pattern with
      | None -> true
      | Some cert ->
          Certificate.validate (Iterated.to_network it) cert = Ok ()
          && Certificate.validate_noncolliding (Iterated.to_network it) cert = Ok ())

let () =
  Alcotest.run "adversary_extra"
    [ ( "general iterated networks",
        [ Alcotest.test_case "inter-block permutations" `Quick
            test_certificates_with_interblock_permutations;
          Alcotest.test_case "final values contiguous" `Quick
            test_final_values_contiguous ] );
      ( "parameters",
        [ Alcotest.test_case "k sweep" `Quick test_k_sweep;
          Alcotest.test_case "first-below-average policy" `Quick
            test_first_below_average_policy;
          Alcotest.test_case "fixed policy sound" `Quick test_fixed_policy_sound;
          Alcotest.test_case "merge trail" `Quick test_merge_trail_size ] );
      ( "variants",
        [ Alcotest.test_case "random adaptive builder" `Quick
            test_random_adaptive_builder;
          Alcotest.test_case "truncated f sweep" `Quick test_truncated_f_sweep ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ qcheck_perm_blocks_certificates ] ) ]
