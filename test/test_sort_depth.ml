(* Tests for the Section 5 average-case depth measure. *)

let check_bool = Alcotest.(check bool)
let check_int_opt = Alcotest.(check (option int))

let test_already_sorted () =
  (* all-ascending networks leave a sorted input sorted from level 0 *)
  let nw = Transposition.network ~n:8 in
  check_int_opt "sorted input at depth 0" (Some 0)
    (Sort_depth.sorted_depth nw (Workload.sorted ~n:8));
  (* bitonic, by contrast, UNSORTS the identity with its descending
     comparators and only restores order at the very end — the same
     "nothing sorts early" effect E9 measures *)
  let bt = Bitonic.network ~n:8 in
  check_int_opt "bitonic re-sorts the identity only at depth 6" (Some 6)
    (Sort_depth.sorted_depth bt (Workload.sorted ~n:8))

let test_never_sorted () =
  let nw = Network.of_gate_levels ~wires:4 [ [ Gate.compare_up 0 1 ] ] in
  check_int_opt "unsortable input" None
    (Sort_depth.sorted_depth nw [| 3; 2; 1; 0 |])

let test_worst_case_reaches_full_depth () =
  (* the reversed input needs every level of the brick network *)
  let n = 8 in
  let nw = Transposition.network ~n in
  match Sort_depth.sorted_depth nw (Workload.reversed ~n) with
  | Some d -> check_bool "late" true (d >= n - 1)
  | None -> Alcotest.fail "brick sorts everything"

let test_depth_bounded_by_network_depth () =
  let rng = Xoshiro.of_seed 5 in
  List.iter
    (fun e ->
      let n = if e.Sorter_registry.pow2_only then 16 else 12 in
      let nw = e.Sorter_registry.build n in
      for _ = 1 to 30 do
        let input = Workload.random_permutation rng ~n in
        match Sort_depth.sorted_depth nw input with
        | Some d -> check_bool "within depth" true (d >= 0 && d <= Network.depth nw)
        | None -> Alcotest.fail (e.Sorter_registry.name ^ " failed to sort")
      done)
    Sorter_registry.all

let test_sorted_prefix_suffix_consistency () =
  (* for a sorted-at-depth-d input, truncating the network at >= d
     comparator levels must yield sorted output *)
  let n = 16 in
  let nw = Odd_even_merge.network ~n in
  let rng = Xoshiro.of_seed 9 in
  for _ = 1 to 30 do
    let input = Workload.random_permutation rng ~n in
    match Sort_depth.sorted_depth nw input with
    | None -> Alcotest.fail "oem sorts everything"
    | Some d ->
        let lvls =
          List.filteri (fun i _ -> i < d) (Network.levels nw)
        in
        let prefix = Network.create ~wires:n lvls in
        check_bool "prefix output sorted" true
          (Sortedness.is_sorted (Network.eval prefix input))
  done

let test_average_case_depth () =
  let rng = Xoshiro.of_seed 11 in
  let nw = Transposition.network ~n:16 in
  match Sort_depth.average_case_depth ~samples:200 rng nw with
  | None -> Alcotest.fail "brick sorts everything"
  | Some st ->
      check_bool "mean below worst case" true
        (st.Stat_summary.mean < float_of_int (Network.depth nw));
      check_bool "max within depth" true
        (st.Stat_summary.max <= float_of_int (Network.depth nw))

let test_exact_01_average () =
  let nw = Bitonic.network ~n:8 in
  match Sort_depth.exact_average_depth_01 nw with
  | None -> Alcotest.fail "bitonic sorts everything"
  | Some avg ->
      check_bool "positive, below depth" true
        (avg > 0. && avg <= float_of_int (Network.depth nw))

let test_non_sorter_detected () =
  let rng = Xoshiro.of_seed 13 in
  let prog = Shuffle_net.random_program rng ~n:16 ~stages:4 in
  let nw = Register_model.to_network prog in
  check_bool "non-sorter gives None on 0-1" true
    (Sort_depth.exact_average_depth_01 nw = None)

let () =
  Alcotest.run "sort_depth"
    [ ( "sorted depth",
        [ Alcotest.test_case "already sorted" `Quick test_already_sorted;
          Alcotest.test_case "never sorted" `Quick test_never_sorted;
          Alcotest.test_case "worst case late" `Quick test_worst_case_reaches_full_depth;
          Alcotest.test_case "bounded by depth" `Quick test_depth_bounded_by_network_depth;
          Alcotest.test_case "prefix consistency" `Quick
            test_sorted_prefix_suffix_consistency ] );
      ( "averages",
        [ Alcotest.test_case "random average" `Quick test_average_case_depth;
          Alcotest.test_case "exact 0-1 average" `Quick test_exact_01_average;
          Alcotest.test_case "non-sorter detected" `Quick test_non_sorter_detected ] ) ]
