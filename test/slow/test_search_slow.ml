(* Slow searches excluded from the tier-1 `dune runtest` wall: run with
   `dune build @search-slow` (or `make test-slow`). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let certify n want =
  match Driver.optimal_depth ~n () with
  | Driver.Sorted { depth; moves; stats } ->
      check_int (Printf.sprintf "n=%d optimal depth" n) want depth;
      check_bool "witness verifies" true (Driver.verify_witness ~n moves);
      Printf.printf "n=%d: depth %d, %d nodes, peak frontier %d\n%!" n depth
        stats.Driver.nodes stats.Driver.peak_frontier
  | Driver.Unsorted _ | Driver.Inconclusive _ | Driver.Interrupted _ ->
      Alcotest.failf "n=%d search failed" n

let test_n7 () = certify 7 6
let test_n8 () = certify 8 6

let test_n7_reference_agreement () =
  (* the equality-dedup reference confirms the pruned optimum at n=7
     and quantifies what subsumption buys at this size *)
  let pruned_nodes =
    match Driver.optimal_depth ~n:7 () with
    | Driver.Sorted { depth; stats; _ } ->
        check_int "pruned depth" 6 depth;
        stats.Driver.nodes
    | _ -> Alcotest.fail "pruned n=7 failed"
  in
  match Driver.optimal_depth ~restrict:false ~n:7 () with
  | Driver.Sorted { depth; stats; _ } ->
      check_int "reference depth" 6 depth;
      check_bool
        (Printf.sprintf "pruning ratio %d/%d >= 10" stats.Driver.nodes
           pruned_nodes)
        true
        (stats.Driver.nodes >= 10 * pruned_nodes)
  | _ -> Alcotest.fail "reference n=7 failed"

let test_shuffle_n8_depth5_refuted () =
  (* the E11 headline: no 5-stage shuffle-based sorter for n=8 *)
  match
    Min_depth.search ~n:8 ~depth:5
      ~budget:{ Driver.max_nodes = 2_000_000_000; max_seconds = None } ()
  with
  | Min_depth.Impossible -> ()
  | Min_depth.Sorter _ -> Alcotest.fail "a 5-stage shuffle sorter would be news"
  | Min_depth.Inconclusive | Min_depth.Interrupted -> Alcotest.fail "budget too small"

let () =
  Alcotest.run "search-slow"
    [ ( "driver",
        [ Alcotest.test_case "n=7 optimal depth 6" `Slow test_n7;
          Alcotest.test_case "n=8 optimal depth 6" `Slow test_n8;
          Alcotest.test_case "n=7 reference agreement" `Slow
            test_n7_reference_agreement;
          Alcotest.test_case "no 5-stage shuffle sorter at n=8" `Slow
            test_shuffle_n8_depth5_refuted ] ) ]
