(* Tests for permutations, in particular the shuffle of the paper. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_arr = Alcotest.(check (array int))

let test_of_array_validation () =
  let bad msg a =
    check_bool msg true
      (match Perm.of_array a with
       | exception Invalid_argument _ -> true
       | _ -> false)
  in
  bad "duplicate" [| 0; 0 |];
  bad "out of range high" [| 0; 2 |];
  bad "out of range low" [| -1; 0 |];
  ignore (Perm.of_array [||]);
  ignore (Perm.of_array [| 0 |])

let test_identity () =
  let p = Perm.identity 5 in
  check_bool "is_identity" true (Perm.is_identity p);
  check_arr "array" [| 0; 1; 2; 3; 4 |] (Perm.to_array p)

let test_shuffle_definition () =
  (* For n = 8, shuffle maps j2 j1 j0 -> j1 j0 j2. *)
  let p = Perm.shuffle 8 in
  List.iter
    (fun (j, want) -> check_int (Printf.sprintf "pi(%d)" j) want (Perm.apply p j))
    [ (0, 0); (1, 2); (2, 4); (3, 6); (4, 1); (5, 3); (6, 5); (7, 7) ]

let test_shuffle_order () =
  (* The shuffle on 2^d elements has order d. *)
  List.iter
    (fun d ->
      let p = Perm.shuffle (1 lsl d) in
      check_int (Printf.sprintf "order d=%d" d) d (Perm.order p))
    [ 2; 3; 4; 5; 6; 7 ]

let test_unshuffle_inverse () =
  List.iter
    (fun n ->
      let s = Perm.shuffle n and u = Perm.unshuffle n in
      check_bool "s o u = id" true (Perm.is_identity (Perm.compose s u));
      check_bool "u o s = id" true (Perm.is_identity (Perm.compose u s));
      check_bool "inverse" true (Perm.equal u (Perm.inverse s)))
    [ 2; 4; 8; 64; 1024 ]

let test_bit_reversal () =
  let p = Perm.bit_reversal 8 in
  check_arr "n=8" [| 0; 4; 2; 6; 1; 5; 3; 7 |] (Perm.to_array p);
  check_bool "involution" true (Perm.is_identity (Perm.compose p p))

let test_bit_complement () =
  let p = Perm.bit_complement 8 1 in
  check_arr "flip bit 1" [| 2; 3; 0; 1; 6; 7; 4; 5 |] (Perm.to_array p);
  check_bool "involution" true (Perm.is_identity (Perm.compose p p))

let test_permute_array () =
  (* value at j moves to position p(j): the paper's register semantics *)
  let p = Perm.of_array [| 1; 2; 0 |] in
  check_arr "moves" [| 'c' |> Char.code; Char.code 'a'; Char.code 'b' |]
    (Perm.permute_array p [| Char.code 'a'; Char.code 'b'; Char.code 'c' |])

let test_cycles () =
  let p = Perm.of_array [| 1; 0; 2; 4; 3 |] in
  Alcotest.(check (list (list int))) "cycles" [ [ 0; 1 ]; [ 2 ]; [ 3; 4 ] ]
    (Perm.cycles p);
  check_int "order" 2 (Perm.order p);
  check_int "order of 3-cycle" 3 (Perm.order (Perm.of_array [| 1; 2; 0 |]))

let test_compose_semantics () =
  (* compose p q applies q first *)
  let q = Perm.of_array [| 1; 2; 0 |] in
  let p = Perm.of_array [| 0; 2; 1 |] in
  check_int "(p o q) 0 = p (q 0)" (Perm.apply p (Perm.apply q 0))
    (Perm.apply (Perm.compose p q) 0)

let gen_perm =
  QCheck.Gen.(
    sized_size (int_range 1 64) (fun n ->
        let a = Array.init n (fun i -> i) in
        let* () = return () in
        map
          (fun seed ->
            let rng = Xoshiro.of_seed seed in
            let a = Array.copy a in
            for j = n - 1 downto 1 do
              let k = Xoshiro.int rng ~bound:(j + 1) in
              let t = a.(j) in a.(j) <- a.(k); a.(k) <- t
            done;
            a)
          int))

let arb_perm = QCheck.make ~print:(fun a ->
    String.concat ";" (Array.to_list (Array.map string_of_int a))) gen_perm

let prop_inverse =
  QCheck.Test.make ~name:"p o inverse p = id" ~count:300 arb_perm (fun a ->
      let p = Perm.of_array a in
      Perm.is_identity (Perm.compose p (Perm.inverse p))
      && Perm.is_identity (Perm.compose (Perm.inverse p) p))

let prop_permute_inverse =
  QCheck.Test.make ~name:"permute_array by p then inverse p is id" ~count:300
    arb_perm (fun a ->
      let p = Perm.of_array a in
      let v = Array.init (Array.length a) (fun i -> i * 3) in
      Perm.permute_array (Perm.inverse p) (Perm.permute_array p v) = v)

let prop_cycles_partition =
  QCheck.Test.make ~name:"cycles partition the domain" ~count:300 arb_perm
    (fun a ->
      let p = Perm.of_array a in
      let elems = List.concat (Perm.cycles p) in
      List.sort compare elems = List.init (Array.length a) (fun i -> i))

let prop_random_is_perm =
  QCheck.Test.make ~name:"Perm.random produces valid permutations" ~count:200
    QCheck.(pair (int_range 1 200) int)
    (fun (n, seed) ->
      let rng = Xoshiro.of_seed seed in
      let p = Perm.random rng n in
      (* of_array validates *)
      ignore (Perm.of_array (Perm.to_array p));
      Perm.n p = n)

let () =
  Alcotest.run "perm"
    [ ( "unit",
        [ Alcotest.test_case "of_array validation" `Quick test_of_array_validation;
          Alcotest.test_case "identity" `Quick test_identity;
          Alcotest.test_case "shuffle definition" `Quick test_shuffle_definition;
          Alcotest.test_case "shuffle order" `Quick test_shuffle_order;
          Alcotest.test_case "unshuffle inverse" `Quick test_unshuffle_inverse;
          Alcotest.test_case "bit reversal" `Quick test_bit_reversal;
          Alcotest.test_case "bit complement" `Quick test_bit_complement;
          Alcotest.test_case "permute_array" `Quick test_permute_array;
          Alcotest.test_case "cycles and order" `Quick test_cycles;
          Alcotest.test_case "compose semantics" `Quick test_compose_semantics ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_inverse; prop_permute_inverse; prop_cycles_partition;
            prop_random_is_perm ] ) ]
