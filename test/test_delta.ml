(* Tests for the delta-network dual and the Kruskal-Snir signature. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_flip_roundtrip () =
  let rng = Xoshiro.of_seed 9 in
  let rd = Random_net.reverse_delta rng ~levels:4 ~density:0.8 ~swap_prob:0.1 in
  let d = Delta_net.of_reverse_delta rd in
  check_bool "roundtrip" true (Delta_net.to_reverse_delta d == rd);
  check_int "levels" 4 (Delta_net.levels d);
  check_int "inputs" 16 (Delta_net.inputs d)

let test_delta_levels_reversed () =
  (* flattening a delta network = flattening the reverse delta with
     levels reversed *)
  let rng = Xoshiro.of_seed 11 in
  let rd = Random_net.reverse_delta rng ~levels:5 ~density:0.7 ~swap_prob:0.0 in
  let fwd = Delta_net.to_network ~wires:32 (Delta_net.of_reverse_delta rd) in
  let bwd = Reverse_delta.to_network ~wires:32 rd in
  let fwd_levels = List.map (fun l -> List.length l.Network.gates) (Network.levels fwd) in
  let bwd_levels = List.map (fun l -> List.length l.Network.gates) (Network.levels bwd) in
  Alcotest.(check (list int)) "mirrored level sizes" (List.rev bwd_levels) fwd_levels

let test_delta_butterfly_is_bitonic_merger () =
  let rng = Xoshiro.of_seed 13 in
  List.iter
    (fun levels ->
      let n = 1 lsl levels in
      let nw = Delta_net.to_network ~wires:n (Delta_net.butterfly ~levels) in
      for _ = 1 to 40 do
        let input = Workload.bitonic_input rng ~n in
        check_bool "merges" true (Sortedness.is_sorted (Network.eval nw input))
      done;
      (* agrees with the Butterfly module's own delta direction *)
      let reference = Butterfly.delta_network ~levels in
      for _ = 1 to 20 do
        let input = Workload.random_permutation rng ~n in
        Alcotest.(check (array int)) "same circuit"
          (Network.eval reference input) (Network.eval nw input)
      done)
    [ 1; 2; 3; 4; 5 ]

let test_butterfly_shape_signature () =
  (* Kruskal-Snir: the butterfly's full positional matching is what
     makes it simultaneously delta and reverse delta *)
  check_bool "butterfly has the shape" true
    (Delta_net.is_butterfly_shape (Butterfly.ascending ~levels:4));
  (* a shuffle block with any 0-op (missing pair) does not *)
  let rng = Xoshiro.of_seed 15 in
  let rec find_non_full tries =
    if tries = 0 then None
    else
      let rd = Random_net.reverse_delta rng ~levels:3 ~density:0.6 ~swap_prob:0.0 in
      if Delta_net.is_butterfly_shape rd then find_non_full (tries - 1) else Some rd
  in
  (match find_non_full 20 with
  | Some _ -> ()
  | None -> Alcotest.fail "density 0.6 should yield a non-butterfly shape");
  (* a full matching with a twist (non-positional) is not butterfly *)
  let twisted =
    Reverse_delta.Node
      { sub0 = Reverse_delta.Node { sub0 = Wire 0; sub1 = Wire 1; cross = [] };
        sub1 = Reverse_delta.Node { sub0 = Wire 2; sub1 = Wire 3; cross = [] };
        cross =
          [ { Reverse_delta.left = 0; right = 3; kind = Reverse_delta.Min_left };
            { Reverse_delta.left = 1; right = 2; kind = Reverse_delta.Min_left } ] }
  in
  check_bool "twisted matching is not butterfly" false
    (Delta_net.is_butterfly_shape twisted)

let test_all_plus_block_is_butterfly_shaped () =
  (* the shuffle-block parse of the all-plus program is exactly the
     butterfly, in reverse-delta clothing *)
  let n = 16 in
  let prog = Shuffle_net.all_plus_program ~n ~stages:4 in
  let opss = List.map (fun st -> st.Register_model.ops) (Register_model.stages prog) in
  let rd = Shuffle_net.block_of_ops ~n opss in
  check_bool "butterfly-shaped" true (Delta_net.is_butterfly_shape rd)

let () =
  Alcotest.run "delta"
    [ ( "delta networks",
        [ Alcotest.test_case "flip roundtrip" `Quick test_flip_roundtrip;
          Alcotest.test_case "levels mirrored" `Quick test_delta_levels_reversed;
          Alcotest.test_case "delta butterfly merges bitonic" `Quick
            test_delta_butterfly_is_bitonic_merger;
          Alcotest.test_case "Kruskal-Snir shape signature" `Quick
            test_butterfly_shape_signature;
          Alcotest.test_case "all-plus block is the butterfly" `Quick
            test_all_plus_block_is_butterfly_shaped ] ) ]
