(* Tests for the verification service (lib/serve): the JSON codec, the
   length-prefixed framing, typed request rejection, batch coalescing
   into shared bit-sliced passes, the canonical response cache, and a
   full in-process server with concurrent clients. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- Json --- *)

let test_json_roundtrip () =
  let j =
    Json.Obj
      [ ("id", Json.Int 7);
        ("verb", Json.Str "verify");
        ("weird", Json.Str "a\"b\\c\nd\te\r\x01");
        ("xs", Json.List [ Json.Int 0; Json.Bool false; Json.Null ]);
        ("f", Json.Float 2.5);
        ("nested", Json.Obj [ ("k", Json.List []) ]);
      ]
  in
  check_bool "roundtrip" true (Json.of_string (Json.to_string j) = Ok j);
  check_bool "unicode escape" true
    (Json.of_string {|"\u00e9\ud83d\ude00"|} = Ok (Json.Str "\xc3\xa9\xf0\x9f\x98\x80"));
  check_bool "int stays int" true (Json.of_string "42" = Ok (Json.Int 42));
  check_bool "float" true (Json.of_string "4e2" = Ok (Json.Float 400.));
  check_bool "ws tolerated" true
    (Json.of_string " { \"a\" : [ 1 , 2 ] } "
    = Ok (Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Int 2 ]) ]))

let test_json_rejects () =
  let bad s =
    match Json.of_string s with Ok _ -> false | Error _ -> true
  in
  List.iter
    (fun s -> check_bool ("rejects " ^ s) true (bad s))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated";
      "\"\\u12\""; "\"\\ud800\""; "{'a':1}"; "nan" ]

(* --- Frame --- *)

let with_pipe f =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () -> f r w)

let test_frame_roundtrip () =
  with_pipe @@ fun r w ->
  let reader = Frame.reader r in
  let payloads = [ ""; "x"; "{\"a\":1}"; String.make 10_000 'q' ] in
  List.iter (fun p -> Frame.write w p) payloads;
  List.iter
    (fun p ->
      match Frame.read ~max:100_000 reader with
      | Ok got -> check_string "payload" p got
      | Error e -> Alcotest.failf "frame error: %s" (Frame.error_text e))
    payloads;
  Unix.close w;
  check_bool "clean eof" true (Frame.read ~max:100_000 reader = Error Frame.Eof)

let test_frame_malformed () =
  let feed raw =
    with_pipe @@ fun r w ->
    let reader = Frame.reader r in
    let _ = Unix.write_substring w raw 0 (String.length raw) in
    Unix.close w;
    Frame.read ~max:1000 reader
  in
  let malformed = function
    | Error (Frame.Malformed _) -> true
    | _ -> false
  in
  check_bool "bad header byte" true (malformed (feed "xx\n"));
  check_bool "negative length" true (malformed (feed "-1\nx\n"));
  check_bool "empty header" true (malformed (feed "\n"));
  check_bool "header too long" true (malformed (feed "1234567890123\n"));
  check_bool "truncated payload" true (malformed (feed "10\nabc"));
  check_bool "missing terminator" true (malformed (feed "3\nabcX"));
  check_bool "oversized" true
    (match feed "5000\nhello" with Error (Frame.Oversized 5000) -> true | _ -> false);
  check_bool "eof at boundary" true (feed "" = Error Frame.Eof)

(* --- Wire --- *)

let test_wire_requests () =
  let code s =
    match Wire.parse_request s with Error (c, _) -> c | Ok _ -> "ok"
  in
  check_string "bad json" Wire.e_bad_json (code "{nope");
  check_string "missing verb" Wire.e_bad_request (code "{}");
  check_string "unknown verb" Wire.e_unsupported
    (code {|{"verb":"frobnicate","algo":"bitonic","n":4}|});
  check_string "missing network" Wire.e_bad_request (code {|{"verb":"verify"}|});
  check_string "both forms" Wire.e_bad_request
    (code {|{"verb":"verify","network":"x","algo":"bitonic","n":4}|});
  check_string "eval needs input" Wire.e_bad_request
    (code {|{"verb":"eval","algo":"bitonic","n":4}|});
  check_string "verify rejects input" Wire.e_bad_request
    (code {|{"verb":"verify","algo":"bitonic","n":4,"input":[1]}|});
  match Wire.parse_request {|{"id":9,"verb":"eval","algo":"bitonic","n":4,"input":[1,0,1,0]}|} with
  | Error _ -> Alcotest.fail "good request rejected"
  | Ok req ->
      check_bool "id echoed" true (req.Wire.id = Json.Int 9);
      check_bool "input" true (req.Wire.input = Some [| 1; 0; 1; 0 |]);
      (match Wire.resolve_network ~max_wires:16 req with
      | Ok nw -> check_int "wires" 4 (Network.wires nw)
      | Error (c, m) -> Alcotest.failf "resolve failed: %s %s" c m);
      (match Wire.resolve_network ~max_wires:3 req with
      | Error (c, _) -> check_string "width cap" Wire.e_unsupported c
      | Ok _ -> Alcotest.fail "width cap not enforced")

(* --- Scache --- *)

let cmp_net ~wires pairs =
  Network.of_gate_levels ~wires
    (List.map (List.map (fun (a, b) -> Gate.compare_up a b)) pairs)

let test_scache_keys () =
  (* isomorphic standard networks share the canonical key; the
     non-standard variant falls back to its structural key *)
  let a = cmp_net ~wires:4 [ [ (0, 1) ] ] in
  let b = cmp_net ~wires:4 [ [ (2, 3) ] ] in
  check_bool "standard" true (Scache.is_standard a);
  check_string "isomorphic collide" (Scache.key a) (Scache.key b);
  check_bool "canonical prefix" true (String.length (Scache.key a) > 2 && String.sub (Scache.key a) 0 2 = "c:");
  let down =
    Network.of_gate_levels ~wires:4 [ [ Gate.compare_down 0 1 ] ]
  in
  check_bool "descending is not standard" false (Scache.is_standard down);
  check_bool "non-standard keys structurally" true
    (String.sub (Scache.key down) 0 2 = "s:");
  check_bool "different structure, different skey" true
    (Scache.structural_key a <> Scache.structural_key b)

let test_scache_eviction () =
  let c = Scache.create ~capacity:2 () in
  let e skey = { Scache.sorts = true; witness = None; skey } in
  Scache.add c "k1" (e "1");
  Scache.add c "k2" (e "2");
  check_bool "k1 hit" true (Scache.find c "k1" <> None);
  Scache.add c "k3" (e "3");
  (* second chance: k1 was hit (used), so k2 is the cold eviction *)
  check_int "bounded" 2 (Scache.entries c);
  check_bool "k1 survives" true (Scache.peek c "k1" <> None);
  check_bool "k2 evicted" true (Scache.peek c "k2" = None);
  check_bool "k3 present" true (Scache.peek c "k3" <> None)

(* --- Batcher: coalescing and caching --- *)

let oem8 = Odd_even_merge.network ~n:8

let spawn_all fs =
  let ths = List.map (fun f -> Thread.create f ()) fs in
  List.iter Thread.join ths

let test_batch_coalescing_lanes () =
  (* 32 concurrent 0-1 evals on one network coalesce into a couple of
     63-lane passes; sequential one-request-per-pass mode pays 32 —
     the >= 3x pass reduction the bench measures, asserted exactly *)
  let inputs = List.init 32 (fun i -> (i * 37) land 0xFF) in
  let expected mask =
    let input = Array.init 8 (fun w -> (mask lsr w) land 1) in
    let out = Network.eval oem8 input in
    let m = ref 0 in
    Array.iteri (fun w v -> if v = 1 then m := !m lor (1 lsl w)) out;
    !m
  in
  let batched =
    Batcher.create { Batcher.window = 0.05; max_batch = 256; domains = 1; cache = None }
  in
  let p0 = Batcher.eval_passes () in
  let results = Array.make 32 (-1) in
  spawn_all
    (List.mapi
       (fun i mask () -> results.(i) <- Batcher.eval01 batched oem8 mask)
       inputs);
  let batched_passes = Batcher.eval_passes () - p0 in
  Batcher.drain batched;
  List.iteri
    (fun i mask -> check_int "batched output" (expected mask) results.(i))
    inputs;
  check_bool "coalesced into few passes" true (batched_passes <= 4);
  let sequential =
    Batcher.create { Batcher.window = 0.; max_batch = 1; domains = 1; cache = None }
  in
  let p1 = Batcher.eval_passes () in
  List.iter
    (fun mask -> check_int "sequential output" (expected mask) (Batcher.eval01 sequential oem8 mask))
    inputs;
  let sequential_passes = Batcher.eval_passes () - p1 in
  Batcher.drain sequential;
  check_int "sequential pays one pass per request" 32 sequential_passes;
  check_bool "batched >= 3x fewer passes" true
    (sequential_passes >= 3 * batched_passes)

let test_verify_coalescing_and_cache () =
  let cache = Scache.create ~capacity:64 () in
  let b =
    Batcher.create
      { Batcher.window = 0.05; max_batch = 256; domains = 1; cache = Some cache }
  in
  (* 8 concurrent verifies of one non-sorting network share one sweep *)
  let a = cmp_net ~wires:4 [ [ (0, 1) ] ] in
  let s0 = Batcher.sweeps () in
  let results = Array.make 8 None in
  spawn_all
    (List.init 8 (fun i () -> results.(i) <- Some (Batcher.verify b a)));
  let sweeps = Batcher.sweeps () - s0 in
  check_bool "one sweep for 8 concurrent verifies" true (sweeps <= 2);
  Array.iter
    (fun r ->
      let r = Option.get r in
      check_bool "not a sorter" false r.Batcher.sorts;
      check_bool "witness or cached" true
        (r.Batcher.cached || r.Batcher.witness <> None))
    results;
  (* an isomorphic (relabeled) standard network hits the cache without
     any engine work, but must not inherit the foreign witness *)
  let iso = cmp_net ~wires:4 [ [ (2, 3) ] ] in
  let s1 = Batcher.sweeps () in
  let r = Batcher.verify b iso in
  check_int "no sweep on isomorphic resubmission" 0 (Batcher.sweeps () - s1);
  check_bool "cached" true r.Batcher.cached;
  check_bool "verdict shared" false r.Batcher.sorts;
  check_bool "foreign witness withheld" true (r.Batcher.witness = None);
  (* exact resubmission reuses the witness: it belongs to this network *)
  let r2 = Batcher.verify b a in
  check_bool "cached exact" true r2.Batcher.cached;
  check_bool "own witness served" true (r2.Batcher.witness <> None);
  (* two different true sorters of one width share the canonical entry
     (reachable set = thresholds for both) *)
  let s2 = Batcher.sweeps () in
  let r3 = Batcher.verify b (cmp_net ~wires:4 [ [ (0,1); (2,3) ]; [ (0,2); (1,3) ]; [ (1,2) ] ]) in
  check_bool "sorter verdict" true r3.Batcher.sorts;
  check_int "sorter pays its sweep" 1 (Batcher.sweeps () - s2);
  let r4 = Batcher.verify b (cmp_net ~wires:4 [ [ (0,2); (1,3) ]; [ (0,1); (2,3) ]; [ (1,2) ] ]) in
  check_bool "other sorter cached" true r4.Batcher.cached;
  check_string "same canonical key" r3.Batcher.key r4.Batcher.key;
  Batcher.drain b

(* --- Session over a socketpair --- *)

let send_recv fd reader payload =
  Frame.write fd payload;
  match Frame.read ~max:(1 lsl 20) reader with
  | Ok r -> Result.get_ok (Json.of_string r)
  | Error e -> Alcotest.failf "session reply: %s" (Frame.error_text e)

let jmember name j = Option.get (Json.member name j)

let with_session ?(max_request = 4096) ?(idle_timeout = 0.)
    ?(request_deadline = 0.) ?(window = 0.001) f =
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
   with Invalid_argument _ -> ());
  let server_fd, client_fd =
    Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  let batcher =
    Batcher.create
      { Batcher.window;
        max_batch = 256;
        domains = 1;
        cache = Some (Scache.create ());
      }
  in
  let config =
    { Session.batcher; max_request; max_wires = 16; exact_max_wires = 12;
      idle_timeout; request_deadline; sink = Sink.null }
  in
  let th =
    (* close our end when the session loop exits, as Server.spawn
       does — that close is what turns into EOF on the client side *)
    Thread.create
      (fun () ->
        Fun.protect
          ~finally:(fun () ->
            try Unix.close server_fd with Unix.Unix_error _ -> ())
          (fun () -> Session.handle config ~conn:1 server_fd))
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close client_fd with Unix.Unix_error _ -> ());
      Thread.join th;
      Batcher.drain batcher)
    (fun () -> f client_fd (Frame.reader client_fd))

let test_session_verbs () =
  with_session @@ fun fd reader ->
  let net_text = Network_io.to_string oem8 in
  let req verb extra =
    Json.to_string
      (Json.Obj
         (("id", Json.Int 1) :: ("verb", Json.Str verb)
         :: ("network", Json.Str net_text) :: extra))
  in
  let r = send_recv fd reader (req "verify" []) in
  check_bool "verify ok" true (jmember "ok" r = Json.Bool true);
  check_bool "verify sorts" true (jmember "sorts" r = Json.Bool true);
  check_bool "trace id" true
    (match Json.member "trace" r with Some (Json.Str "c1-r1") -> true | _ -> false);
  let input = [ 1; 1; 0; 1; 0; 0; 1; 0 ] in
  let r = send_recv fd reader
      (req "eval" [ ("input", Json.List (List.map (fun v -> Json.Int v) input)) ])
  in
  let expected =
    Array.to_list (Network.eval oem8 (Array.of_list input))
  in
  check_bool "eval output" true
    (jmember "output" r = Json.List (List.map (fun v -> Json.Int v) expected));
  check_bool "eval sorted flag" true (jmember "sorted" r = Json.Bool true);
  (* general (non-0-1) eval takes the inline path *)
  let input = [ 7; 3; 5; 1; 6; 0; 4; 2 ] in
  let r = send_recv fd reader
      (req "eval" [ ("input", Json.List (List.map (fun v -> Json.Int v) input)) ])
  in
  check_bool "permutation eval" true
    (jmember "output" r
    = Json.List (List.map (fun v -> Json.Int v) [ 0; 1; 2; 3; 4; 5; 6; 7 ]));
  let r = send_recv fd reader (req "certify" []) in
  check_bool "certify sorts" true (jmember "sorts" r = Json.Bool true);
  check_bool "certify cross-checked" true
    (jmember "cross_checked" r = Json.Bool true);
  let r = send_recv fd reader (req "lint" []) in
  check_bool "lint sortedness" true
    (jmember "sortedness" r = Json.Str "sorting-proved");
  (* bad requests keep the session alive *)
  let r = send_recv fd reader {|{"id":5,"verb":"verify","algo":"nope","n":4}|} in
  check_bool "bad algo -> error" true (jmember "ok" r = Json.Bool false);
  check_bool "id echoed on error" true (jmember "id" r = Json.Int 5);
  check_bool "error code" true
    (Json.member "code" (jmember "error" r) = Some (Json.Str Wire.e_bad_network));
  let r = send_recv fd reader {|{"id":6,"verb":"verify","algo":"bitonic","n":4}|} in
  check_bool "session still alive" true (jmember "ok" r = Json.Bool true)

let test_session_framing_errors () =
  (* a malformed frame gets a typed response, then the connection is
     closed (the stream position can't be trusted) *)
  with_session (fun fd reader ->
      let _ = Unix.write_substring fd "bogus\n" 0 6 in
      (match Frame.read ~max:(1 lsl 20) reader with
      | Ok payload ->
          let r = Result.get_ok (Json.of_string payload) in
          check_bool "malformed -> not ok" true (jmember "ok" r = Json.Bool false);
          check_bool "malformed code" true
            (Json.member "code" (jmember "error" r)
            = Some (Json.Str Wire.e_malformed_frame))
      | Error e -> Alcotest.failf "expected response, got %s" (Frame.error_text e));
      check_bool "connection closed after malformed" true
        (Frame.read ~max:(1 lsl 20) reader = Error Frame.Eof));
  with_session ~max_request:64 (fun fd reader ->
      Frame.write fd (String.make 100 'z');
      (match Frame.read ~max:(1 lsl 20) reader with
      | Ok payload ->
          let r = Result.get_ok (Json.of_string payload) in
          check_bool "oversized code" true
            (Json.member "code" (jmember "error" r)
            = Some (Json.Str Wire.e_oversized))
      | Error e -> Alcotest.failf "expected response, got %s" (Frame.error_text e));
      check_bool "connection closed after oversized" true
        (Frame.read ~max:(1 lsl 20) reader = Error Frame.Eof))

(* --- idle reaper and per-request deadline --- *)

let error_code r = Json.member "code" (jmember "error" r)

let test_session_idle_reaper () =
  (* a silent client is reaped: one typed idle-timeout error, then
     the connection closes *)
  with_session ~idle_timeout:0.2 (fun fd reader ->
      ignore fd;
      let t0 = Unix.gettimeofday () in
      (match Frame.read ~max:(1 lsl 20) reader with
      | Ok payload ->
          let r = Result.get_ok (Json.of_string payload) in
          check_bool "idle -> not ok" true (jmember "ok" r = Json.Bool false);
          check_bool "idle code" true
            (error_code r = Some (Json.Str Wire.e_idle_timeout))
      | Error e -> Alcotest.failf "expected response, got %s" (Frame.error_text e));
      check_bool "reaped promptly" true (Unix.gettimeofday () -. t0 < 5.);
      check_bool "connection closed after idle reap" true
        (Frame.read ~max:(1 lsl 20) reader = Error Frame.Eof));
  (* a session that keeps talking is not reaped *)
  with_session ~idle_timeout:1.0 ~request_deadline:1.0 (fun fd reader ->
      let r =
        send_recv fd reader {|{"id":1,"verb":"verify","algo":"bitonic","n":4}|}
      in
      check_bool "live session answers" true (jmember "ok" r = Json.Bool true);
      let r =
        send_recv fd reader {|{"id":2,"verb":"verify","algo":"bitonic","n":4}|}
      in
      check_bool "still alive within timeouts" true
        (jmember "ok" r = Json.Bool true))

let test_session_deadline () =
  (* a frame that stalls mid-payload misses the deadline: typed
     deadline-exceeded, then close *)
  with_session ~idle_timeout:0.15 ~request_deadline:0.2 (fun fd reader ->
      let _ = Unix.write_substring fd "100\nabc" 0 7 in
      (match Frame.read ~max:(1 lsl 20) reader with
      | Ok payload ->
          let r = Result.get_ok (Json.of_string payload) in
          check_bool "stall -> not ok" true (jmember "ok" r = Json.Bool false);
          check_bool "stall code" true
            (error_code r = Some (Json.Str Wire.e_deadline))
      | Error e -> Alcotest.failf "expected response, got %s" (Frame.error_text e));
      check_bool "connection closed after stalled frame" true
        (Frame.read ~max:(1 lsl 20) reader = Error Frame.Eof));
  (* processing overrun: a batcher window longer than the deadline
     turns a well-formed request into deadline-exceeded *)
  with_session ~request_deadline:0.1 ~window:0.4 (fun fd reader ->
      Frame.write fd {|{"id":1,"verb":"verify","algo":"bitonic","n":4}|};
      (match Frame.read ~max:(1 lsl 20) reader with
      | Ok payload ->
          let r = Result.get_ok (Json.of_string payload) in
          check_bool "overrun -> not ok" true (jmember "ok" r = Json.Bool false);
          check_bool "overrun code" true
            (error_code r = Some (Json.Str Wire.e_deadline));
          check_bool "overrun trace id" true
            (jmember "trace" r = Json.Str "c1-r1")
      | Error e -> Alcotest.failf "expected response, got %s" (Frame.error_text e));
      check_bool "connection closed after overrun" true
        (Frame.read ~max:(1 lsl 20) reader = Error Frame.Eof))

(* --- full server: concurrent clients, drain --- *)

let test_server_concurrent_clients () =
  let path = Filename.temp_file "snlb-serve" ".sock" in
  Unix.unlink path;
  let addr = Server.Unix_path path in
  let cancel = Cancel.create () in
  let config =
    { (Server.default_config addr) with Server.window = 0.01; max_wires = 10 }
  in
  let server_result = ref (Error "never ran") in
  let server_th =
    Thread.create (fun () -> server_result := Server.run ~cancel config) ()
  in
  let rec dial tries =
    match Server.connect addr with
    | fd -> fd
    | exception Unix.Unix_error _ when tries > 0 ->
        Thread.delay 0.05;
        dial (tries - 1)
  in
  let net_text = Network_io.to_string oem8 in
  let clients = 8 and per_client = 4 in
  let failures = Atomic.make 0 in
  let client () =
    let fd = dial 100 in
    let reader = Frame.reader fd in
    for k = 1 to per_client do
      let mask = (k * 41) land 0xFF in
      let input = List.init 8 (fun w -> (mask lsr w) land 1) in
      let req =
        Json.Obj
          [ ("id", Json.Int k); ("verb", Json.Str "eval");
            ("network", Json.Str net_text);
            ("input", Json.List (List.map (fun v -> Json.Int v) input));
          ]
      in
      Frame.write fd (Json.to_string req);
      let expected =
        Array.to_list (Network.eval oem8 (Array.of_list input))
      in
      match Frame.read ~max:(1 lsl 20) reader with
      | Ok payload ->
          let r = Result.get_ok (Json.of_string payload) in
          if
            not
              (jmember "id" r = Json.Int k
              && jmember "ok" r = Json.Bool true
              && jmember "output" r
                 = Json.List (List.map (fun v -> Json.Int v) expected))
          then Atomic.incr failures
      | Error _ -> Atomic.incr failures
    done;
    Unix.close fd
  in
  spawn_all (List.init clients (fun _ -> client));
  (* trip the token: the server must drain and return Ok *)
  Cancel.cancel cancel;
  Thread.join server_th;
  check_int "every concurrent response matched the direct engine" 0
    (Atomic.get failures);
  check_bool "clean drain" true (!server_result = Ok ());
  check_bool "endpoint removed" true (not (Sys.file_exists path))

let () =
  Alcotest.run "serve"
    [ ( "json",
        [ Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects" `Quick test_json_rejects ] );
      ( "frame",
        [ Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "malformed/oversized" `Quick test_frame_malformed ] );
      ("wire", [ Alcotest.test_case "typed parsing" `Quick test_wire_requests ]);
      ( "scache",
        [ Alcotest.test_case "canonical keys" `Quick test_scache_keys;
          Alcotest.test_case "second-chance eviction" `Quick test_scache_eviction ] );
      ( "batcher",
        [ Alcotest.test_case "eval lanes coalesce (>=3x)" `Quick
            test_batch_coalescing_lanes;
          Alcotest.test_case "verify coalescing + canonical cache" `Quick
            test_verify_coalescing_and_cache ] );
      ( "session",
        [ Alcotest.test_case "verbs over a socketpair" `Quick test_session_verbs;
          Alcotest.test_case "idle reaper" `Quick test_session_idle_reaper;
          Alcotest.test_case "request deadline" `Quick test_session_deadline;
          Alcotest.test_case "framing errors are typed" `Quick
            test_session_framing_errors ] );
      ( "server",
        [ Alcotest.test_case "concurrent clients + SIGTERM-style drain" `Quick
            test_server_concurrent_clients ] ) ]
