(* Crash-safety tests: CRC, atomic publication, the checkpoint
   envelope, fault injection, cooperative cancellation, and — the part
   that matters — kill-and-resume equivalence for the search driver,
   the shuffle search and the adversary. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let with_fault spec f =
  match Fault.set (Some spec) with
  | Error e -> Alcotest.fail ("fault spec rejected: " ^ e)
  | Ok () ->
      Fun.protect ~finally:(fun () -> ignore (Fault.set None)) f

let temp_path () =
  let path = Filename.temp_file "snlb" ".snap" in
  Sys.remove path;
  path

let cleanup path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; Atomic_file.backup_path path ]

let with_temp f =
  let path = temp_path () in
  Fun.protect ~finally:(fun () -> cleanup path) (fun () -> f path)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

(* --- Crc32 --- *)

let test_crc_vectors () =
  check_int "empty" 0 (Crc32.string "");
  check_int "check vector" 0xCBF43926 (Crc32.string "123456789");
  check_int "single byte" 0xD202EF8D (Crc32.string "\x00")

let test_crc_incremental () =
  let a = "snlb checkpoint " and b = "payload bytes" in
  check_int "update composes" (Crc32.string (a ^ b))
    (Crc32.update (Crc32.update 0 a 0 (String.length a)) b 0 (String.length b));
  check_int "windowed" (Crc32.string "345")
    (Crc32.update 0 "123456789" 2 3)

let test_crc_sensitivity () =
  (* flipping any single bit of the input must change the checksum *)
  let s = "The quick brown fox jumps over the lazy dog" in
  let base = Crc32.string s in
  String.iteri
    (fun i _ ->
      for bit = 0 to 7 do
        let b = Bytes.of_string s in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
        if Crc32.string (Bytes.to_string b) = base then
          Alcotest.failf "collision at byte %d bit %d" i bit
      done)
    s

(* --- Atomic_file --- *)

let test_atomic_write_roundtrip () =
  with_temp @@ fun path ->
  (match Atomic_file.write ~path "first" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check_string "content" "first" (read_file path);
  check_bool "no backup by default" false
    (Sys.file_exists (Atomic_file.backup_path path))

let test_atomic_write_backup_rotation () =
  with_temp @@ fun path ->
  let ok = function Ok () -> () | Error e -> Alcotest.fail e in
  ok (Atomic_file.write ~backup:true ~path "v1");
  check_bool "no backup on first write" false
    (Sys.file_exists (Atomic_file.backup_path path));
  ok (Atomic_file.write ~backup:true ~path "v2");
  check_string "new content" "v2" (read_file path);
  check_string "previous version parked" "v1"
    (read_file (Atomic_file.backup_path path))

let test_atomic_write_fail_injection () =
  with_temp @@ fun path ->
  (match Atomic_file.write ~path "good" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  with_fault "ckpt-write-fail" @@ fun () ->
  (match Atomic_file.write ~path "bad" with
  | Ok () -> Alcotest.fail "injected write failure did not fire"
  | Error _ -> ());
  check_string "previous contents untouched" "good" (read_file path)

let test_atomic_truncate_injection () =
  with_temp @@ fun path ->
  with_fault "ckpt-truncate" @@ fun () ->
  (match Atomic_file.write ~path "0123456789" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check_string "torn file published" "01234" (read_file path)

(* --- Checkpoint --- *)

let sample_ckpt =
  { Checkpoint.kind = "snlb-test";
    meta = [ ("n", "6"); ("tag", "layers") ];
    payload = "arbitrary \x00 binary \xff bytes" }

let test_checkpoint_roundtrip () =
  with_temp @@ fun path ->
  (match Checkpoint.write ~path sample_ckpt with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Checkpoint.read ~path with
  | Error e -> Alcotest.fail e
  | Ok ck ->
      check_string "kind" sample_ckpt.Checkpoint.kind ck.Checkpoint.kind;
      check_bool "meta" true (ck.Checkpoint.meta = sample_ckpt.Checkpoint.meta);
      check_string "payload" sample_ckpt.Checkpoint.payload ck.Checkpoint.payload

let test_checkpoint_rejects_any_corrupt_byte () =
  (* the acceptance bar from the issue: a checkpoint with any single
     corrupted byte is rejected cleanly *)
  with_temp @@ fun path ->
  (match Checkpoint.write ~path sample_ckpt with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let good = read_file path in
  String.iteri
    (fun i _ ->
      let b = Bytes.of_string good in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
      write_file path (Bytes.to_string b);
      match Checkpoint.read ~path with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "corrupted byte %d accepted" i)
    good

let test_checkpoint_rejects_any_truncation () =
  with_temp @@ fun path ->
  (match Checkpoint.write ~path sample_ckpt with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let good = read_file path in
  for len = 0 to String.length good - 1 do
    write_file path (String.sub good 0 len);
    match Checkpoint.read ~path with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncation to %d bytes accepted" len
  done;
  (* trailing garbage is rejected too *)
  write_file path (good ^ "x");
  match Checkpoint.read ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing byte accepted"

let test_checkpoint_backup_fallback () =
  with_temp @@ fun path ->
  let ok = function Ok () -> () | Error e -> Alcotest.fail e in
  ok (Checkpoint.write ~path sample_ckpt);
  ok (Checkpoint.write ~path { sample_ckpt with payload = "newer" });
  (* tear the primary; load must fall back to the previous version *)
  let torn = read_file path in
  write_file path (String.sub torn 0 (String.length torn / 2));
  (match Checkpoint.load ~path with
  | Ok (ck, `Backup _) ->
      check_string "backup payload" sample_ckpt.Checkpoint.payload
        ck.Checkpoint.payload
  | Ok (_, `Primary) -> Alcotest.fail "torn primary accepted"
  | Error e -> Alcotest.fail ("backup not used: " ^ e));
  (* with both copies gone, load reports an error instead of raising *)
  cleanup path;
  match Checkpoint.load ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing checkpoint loaded"

let test_checkpoint_write_retry () =
  (* seed 1 at prob 0.6 makes the first ckpt-write-fail draw fire and
     the second skip: the write fails once, the bounded retry lands *)
  with_temp (fun path ->
      with_fault "ckpt-write-fail:0.6:1" @@ fun () ->
      (match Checkpoint.write ~attempts:3 ~backoff_ms:1. ~path sample_ckpt with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("retry did not recover: " ^ e));
      match Checkpoint.read ~path with
      | Ok ck ->
          check_string "retried payload intact" sample_ckpt.Checkpoint.payload
            ck.Checkpoint.payload
      | Error e -> Alcotest.fail e);
  (* a persistent failure exhausts the budget and hard-fails *)
  with_temp (fun path ->
      with_fault "ckpt-write-fail" @@ fun () ->
      match Checkpoint.write ~attempts:3 ~backoff_ms:1. ~path sample_ckpt with
      | Error _ -> check_bool "nothing published" false (Sys.file_exists path)
      | Ok () -> Alcotest.fail "write claimed success under a permanent fault")

(* --- Fault --- *)

let test_fault_parse_errors () =
  List.iter
    (fun spec ->
      match Fault.set (Some spec) with
      | Ok () ->
          ignore (Fault.set None);
          Alcotest.failf "accepted %S" spec
      | Error _ -> ())
    [ ""; "no-such-point"; "kill-level:2.0"; "kill-level:x";
      "kill-level:0.5:x"; "kill-level:0.5:1:extra" ]

let test_fault_probability_boundaries () =
  (* out-of-range probabilities must be rejected loudly, never
     clamped or silently accepted — in every spec shape *)
  let rejected spec =
    match Fault.set (Some spec) with
    | Ok () ->
        ignore (Fault.set None);
        Alcotest.failf "accepted out-of-range probability %S" spec
    | Error e ->
        check_bool (spec ^ ": error names the range") true
          (let range = "probability outside [0, 1]" in
           let n = String.length range in
           let rec has i =
             i + n <= String.length e && (String.sub e i n = range || has (i + 1))
           in
           has 0)
  in
  List.iter rejected
    [ "kill-worker:1.5"; "kill-worker:-0.001"; "kill-worker:1.0000001";
      "kill-worker:nan"; "kill-worker:inf"; "kill-worker:-inf";
      "kill-worker:1.5:42"; "stall-worker:2"; "corrupt-result:-1:7" ];
  (* the closed boundaries themselves are legal *)
  List.iter
    (fun spec ->
      match Fault.set (Some spec) with
      | Ok () -> ignore (Fault.set None)
      | Error e -> Alcotest.failf "rejected boundary spec %S: %s" spec e)
    [ "kill-worker:0"; "kill-worker:0.0"; "kill-worker:1"; "kill-worker:1.0";
      "kill-worker:0.0:42"; "kill-worker:1.0:42" ];
  (* and behave as the degenerate schedules they name *)
  with_fault "kill-worker:1.0" (fun () ->
      check_bool "prob 1.0 always fires" true
        (List.for_all Fun.id (List.init 32 (fun _ -> Fault.fire "kill-worker"))));
  with_fault "kill-worker:0.0" (fun () ->
      check_bool "prob 0.0 never fires" false
        (List.mem true (List.init 32 (fun _ -> Fault.fire "kill-worker"))))

let test_fault_worker_points_exist () =
  (* the shard supervisor's sabotage points are registered (and so
     usable from SNLB_FAULT) *)
  List.iter
    (fun p -> check_bool p true (List.mem p Fault.points))
    [ "kill-worker"; "stall-worker"; "corrupt-result" ]

let test_fault_off_by_default () =
  ignore (Fault.set None);
  check_bool "inactive" true (Fault.active () = None);
  List.iter (fun p -> check_bool p false (Fault.fire p)) Fault.points

let test_fault_point_selectivity () =
  with_fault "kill-level" @@ fun () ->
  check_bool "configured point fires" true (Fault.fire "kill-level");
  check_bool "other points do not" false (Fault.fire "kill-block");
  check_bool "prob 1.0 fires every time" true (Fault.fire "kill-level")

let test_fault_probability_determinism () =
  let draw () =
    with_fault "kill-level:0.5:42" @@ fun () ->
    List.init 64 (fun _ -> Fault.fire "kill-level")
  in
  let a = draw () and b = draw () in
  check_bool "same seed, same schedule" true (a = b);
  check_bool "prob 0.5 fires sometimes" true (List.mem true a);
  check_bool "prob 0.5 skips sometimes" true (List.mem false a);
  with_fault "kill-level:0" @@ fun () ->
  check_bool "prob 0 never fires" false
    (List.mem true (List.init 64 (fun _ -> Fault.fire "kill-level")))

(* --- Cancel --- *)

let test_cancel_token () =
  let t = Cancel.create () in
  check_bool "fresh token" false (Cancel.cancelled t);
  Cancel.cancel t;
  check_bool "tripped" true (Cancel.cancelled t);
  Cancel.cancel t;
  check_bool "sticky" true (Cancel.cancelled t)

let test_cancelled_driver_interrupts () =
  let cancel = Cancel.create () in
  Cancel.cancel cancel;
  match Driver.optimal_depth ~cancel ~n:5 () with
  | Driver.Interrupted stats ->
      check_int "no levels completed" 0 stats.Driver.completed_levels
  | _ -> Alcotest.fail "pre-cancelled run must return Interrupted"

(* --- kill-and-resume equivalence --- *)

(* Run [step ~resume ()] repeatedly — each incarnation is killed by the
   injected fault and leaves a checkpoint — until it returns a final
   outcome; [bound] guards against a broken resume looping forever. *)
let rec resume_until_done ~bound ~step resume =
  if bound = 0 then Alcotest.fail "resume loop did not converge"
  else
    match step ~resume () with
    | `Done v -> v
    | `Again r -> resume_until_done ~bound:(bound - 1) ~step (Some r)

let stats_agree what (a : Driver.stats) (b : Driver.stats) =
  check_int (what ^ ": nodes") a.Driver.nodes b.Driver.nodes;
  check_int (what ^ ": pruned") a.Driver.pruned b.Driver.pruned;
  check_int (what ^ ": deduped") a.Driver.deduped b.Driver.deduped;
  check_int (what ^ ": subsumed") a.Driver.subsumed b.Driver.subsumed;
  check_bool (what ^ ": frontier sizes") true
    (a.Driver.frontier_sizes = b.Driver.frontier_sizes);
  check_int (what ^ ": completed levels") a.Driver.completed_levels
    b.Driver.completed_levels

let test_driver_kill_resume_equivalence () =
  (* n=5 free-layer search: 5 levels, killed at every boundary, so the
     run takes one level per incarnation; the final outcome must be
     byte-identical to an uninterrupted run *)
  let n = 5 in
  let fresh =
    match Driver.optimal_depth ~n () with
    | Driver.Sorted { depth; moves; stats } -> (depth, moves, stats)
    | _ -> Alcotest.fail "n=5 must certify"
  in
  with_temp @@ fun path ->
  let interrupted = ref 0 in
  let step ~resume () =
    let outcome =
      with_fault "kill-level" @@ fun () ->
      Driver.optimal_depth ?resume ~checkpoint:(path, 0.) ~n ()
    in
    match outcome with
    | Driver.Sorted { depth; moves; stats } -> `Done (depth, moves, stats)
    | Driver.Interrupted _ -> (
        incr interrupted;
        match Driver.resume ~path with
        | Ok rs -> `Again rs
        | Error e -> Alcotest.fail ("resume failed: " ^ e))
    | _ -> Alcotest.fail "unexpected outcome under kill-level"
  in
  let fresh_depth, fresh_moves, fresh_stats = fresh in
  let depth, moves, stats = resume_until_done ~bound:10 ~step None in
  check_bool "killed at least twice" true (!interrupted >= 2);
  check_int "same depth" fresh_depth depth;
  check_bool "same witness" true (fresh_moves = moves);
  stats_agree "driver" fresh_stats stats

let test_driver_resume_describe_and_mismatch () =
  with_temp @@ fun path ->
  (* leave a checkpoint at the first boundary of an n=5 run *)
  (match
     with_fault "kill-level" @@ fun () ->
     Driver.optimal_depth ~checkpoint:(path, 0.) ~n:5 ()
   with
  | Driver.Interrupted _ -> ()
  | _ -> Alcotest.fail "kill-level must interrupt");
  match Driver.resume ~path with
  | Error e -> Alcotest.fail e
  | Ok rs ->
      check_bool "describe mentions the tag" true
        (let d = Driver.describe rs in
         String.length d > 0
         &&
         let rec contains i =
           i + 6 <= String.length d
           && (String.sub d i 6 = "layers" || contains (i + 1))
         in
         contains 0);
      (* resuming into a different width degrades to a fresh run (and
         still certifies) rather than trusting a stale snapshot *)
      (match Driver.optimal_depth ~resume:rs ~n:4 () with
      | Driver.Sorted { depth; _ } -> check_int "n=4 fresh despite rs" 3 depth
      | _ -> Alcotest.fail "mismatched resume must fall back to fresh")

let test_min_depth_kill_resume_equivalence () =
  let fresh =
    match Min_depth.minimal_depth ~n:4 ~max_depth:3 () with
    | Min_depth.Minimal (d, prog) -> (d, prog)
    | _ -> Alcotest.fail "n=4 shuffle minimal depth must resolve"
  in
  with_temp @@ fun path ->
  let step ~resume () =
    let outcome =
      with_fault "kill-level" @@ fun () ->
      Min_depth.minimal_depth ?resume ~checkpoint:(path, 0.) ~n:4 ~max_depth:3 ()
    in
    match outcome with
    | Min_depth.Minimal (d, prog) -> `Done (d, prog)
    | Min_depth.Stopped _ -> (
        match Driver.resume ~path with
        | Ok rs -> `Again rs
        | Error e -> Alcotest.fail ("resume failed: " ^ e))
    | _ -> Alcotest.fail "unexpected outcome under kill-level"
  in
  let resumed = resume_until_done ~bound:10 ~step None in
  check_int "same minimal depth" (fst fresh) (fst resumed);
  check_bool "same witness" true (snd fresh = snd resumed)

let test_tag_guard_between_searches () =
  (* a shuffle-ops snapshot must not resume into the free-layer search:
     n and max_depth can coincide, only the tag tells them apart *)
  with_temp @@ fun path ->
  (match
     with_fault "kill-level" @@ fun () ->
     Min_depth.minimal_depth ~checkpoint:(path, 0.) ~n:4 ~max_depth:4 ()
   with
  | Min_depth.Stopped _ -> ()
  | _ -> Alcotest.fail "kill-level must interrupt the shuffle search");
  match Driver.resume ~path with
  | Error e -> Alcotest.fail e
  | Ok rs -> (
      match Driver.optimal_depth ~resume:rs ~max_depth:4 ~n:4 () with
      | Driver.Sorted { depth; _ } ->
          check_int "fresh free-layer run despite foreign snapshot" 3 depth
      | _ -> Alcotest.fail "foreign snapshot must degrade to a fresh run")

let test_adversary_kill_resume_equivalence () =
  let it = Shuffle_net.to_iterated (Bitonic.shuffle_program ~n:16) in
  let fresh = Theorem41.run it in
  check_bool "uninterrupted baseline" false fresh.Theorem41.interrupted;
  with_temp @@ fun path ->
  let step ~resume () =
    let resume = resume <> None in
    let r =
      with_fault "kill-block" @@ fun () ->
      Theorem41.run ~checkpoint:path ~resume it
    in
    if r.Theorem41.interrupted then `Again () else `Done r
  in
  let resumed = resume_until_done ~bound:10 ~step None in
  check_int "same survived" fresh.Theorem41.survived resumed.Theorem41.survived;
  check_bool "same reports" true
    (fresh.Theorem41.reports = resumed.Theorem41.reports);
  check_bool "same final pattern" true
    (fresh.Theorem41.final_pattern = resumed.Theorem41.final_pattern);
  check_bool "same m-set" true
    (fresh.Theorem41.final_m_set = resumed.Theorem41.final_m_set);
  check_bool "same exhausted" true
    (fresh.Theorem41.exhausted = resumed.Theorem41.exhausted)

let test_search_survives_failing_checkpoint_writes () =
  with_temp @@ fun path ->
  let outcome =
    with_fault "ckpt-write-fail" @@ fun () ->
    Driver.optimal_depth ~checkpoint:(path, 0.) ~n:5 ()
  in
  (match outcome with
  | Driver.Sorted { depth; _ } ->
      check_int "verdict unaffected by write failures" 5 depth
  | _ -> Alcotest.fail "run must complete despite failing writes");
  check_bool "no checkpoint file left" false (Sys.file_exists path)

let test_search_recovers_from_torn_checkpoint () =
  with_temp @@ fun path ->
  (* one good boundary... *)
  (match
     with_fault "kill-level" @@ fun () ->
     Driver.optimal_depth ~checkpoint:(path, 0.) ~n:5 ()
   with
  | Driver.Interrupted _ -> ()
  | _ -> Alcotest.fail "kill-level must interrupt");
  (* ...then a torn publication over it: the primary is garbage but the
     atomic writer parked the good version as .bak *)
  (match
     with_fault "ckpt-truncate" @@ fun () ->
     Checkpoint.write ~path { sample_ckpt with payload = "next boundary" }
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Driver.resume ~path with
  | Error e -> Alcotest.fail ("backup should have been used: " ^ e)
  | Ok rs -> (
      match Driver.optimal_depth ~resume:rs ~n:5 () with
      | Driver.Sorted { depth; _ } -> check_int "resumed from backup" 5 depth
      | _ -> Alcotest.fail "resume from backup must certify")

let () =
  Alcotest.run "resilience"
    [ ( "crc32",
        [ Alcotest.test_case "standard vectors" `Quick test_crc_vectors;
          Alcotest.test_case "incremental update" `Quick test_crc_incremental;
          Alcotest.test_case "single-bit sensitivity" `Quick test_crc_sensitivity ] );
      ( "atomic-file",
        [ Alcotest.test_case "write/read" `Quick test_atomic_write_roundtrip;
          Alcotest.test_case "backup rotation" `Quick
            test_atomic_write_backup_rotation;
          Alcotest.test_case "injected write failure" `Quick
            test_atomic_write_fail_injection;
          Alcotest.test_case "injected torn write" `Quick
            test_atomic_truncate_injection ] );
      ( "checkpoint",
        [ Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "every corrupt byte rejected" `Quick
            test_checkpoint_rejects_any_corrupt_byte;
          Alcotest.test_case "every truncation rejected" `Quick
            test_checkpoint_rejects_any_truncation;
          Alcotest.test_case "backup fallback" `Quick
            test_checkpoint_backup_fallback;
          Alcotest.test_case "bounded write retry" `Quick
            test_checkpoint_write_retry ] );
      ( "fault",
        [ Alcotest.test_case "parse errors" `Quick test_fault_parse_errors;
          Alcotest.test_case "probability boundaries" `Quick
            test_fault_probability_boundaries;
          Alcotest.test_case "worker points registered" `Quick
            test_fault_worker_points_exist;
          Alcotest.test_case "off by default" `Quick test_fault_off_by_default;
          Alcotest.test_case "point selectivity" `Quick
            test_fault_point_selectivity;
          Alcotest.test_case "probabilistic determinism" `Quick
            test_fault_probability_determinism ] );
      ( "cancel",
        [ Alcotest.test_case "token" `Quick test_cancel_token;
          Alcotest.test_case "driver honours token" `Quick
            test_cancelled_driver_interrupts ] );
      ( "kill-and-resume",
        [ Alcotest.test_case "driver equivalence" `Quick
            test_driver_kill_resume_equivalence;
          Alcotest.test_case "describe + width mismatch" `Quick
            test_driver_resume_describe_and_mismatch;
          Alcotest.test_case "shuffle search equivalence" `Quick
            test_min_depth_kill_resume_equivalence;
          Alcotest.test_case "tag guards cross-resume" `Quick
            test_tag_guard_between_searches;
          Alcotest.test_case "adversary equivalence" `Quick
            test_adversary_kill_resume_equivalence;
          Alcotest.test_case "failing writes don't fail the run" `Quick
            test_search_survives_failing_checkpoint_writes;
          Alcotest.test_case "torn checkpoint falls back to backup" `Quick
            test_search_recovers_from_torn_checkpoint ] ) ]
