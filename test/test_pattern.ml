(* Tests for the pattern alphabet, refinement, and symbolic
   propagation (Sections 3.1-3.2 of the paper). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

open Symbol

(* [open Symbol] would otherwise shadow integer [<] *)
let ( < ) : int -> int -> bool = Stdlib.( < )

(* --- the order <_P --- *)

let test_order_generators () =
  (* the paper's defining inequalities *)
  let lt a b = Symbol.compare a b < 0 in
  check_bool "S_i < S_{i+1}" true (lt (S 0) (S 1));
  check_bool "S_i < X_{0,0}" true (lt (S 5) (X (0, 0)));
  check_bool "X_{i,j} < X_{i,j+1}" true (lt (X (2, 3)) (X (2, 4)));
  check_bool "X_{i,j} < M_i" true (lt (X (2, 99)) (M 2));
  check_bool "M_i < X_{i+1,0}" true (lt (M 2) (X (3, 0)));
  check_bool "M_i < L_j all i j" true (lt (M 100) (L 100));
  check_bool "L_{i+1} < L_i" true (lt (L 3) (L 2));
  (* derived facts *)
  check_bool "M_i < M_{i+1}" true (lt (M 0) (M 1));
  check_bool "S below L" true (lt (S 1000) (L 1000));
  check_bool "X_{i,j} < M_k for k>=i" true (lt (X (2, 7)) (M 5));
  check_bool "M_k < X_{i,j} for i>k" true (lt (M 2) (X (7, 0)))

let gen_symbol =
  QCheck.Gen.(
    oneof
      [ map (fun i -> S i) (int_bound 20);
        map2 (fun i j -> X (i, j)) (int_bound 20) (int_bound 20);
        map (fun i -> M i) (int_bound 20);
        map (fun i -> L i) (int_bound 20) ])

let arb_symbol = QCheck.make ~print:Symbol.to_string gen_symbol

let prop_total_antisym =
  QCheck.Test.make ~name:"compare is antisymmetric" ~count:1000
    QCheck.(pair arb_symbol arb_symbol)
    (fun (a, b) -> Symbol.compare a b = -Symbol.compare b a)

let prop_transitive =
  QCheck.Test.make ~name:"compare is transitive" ~count:1000
    QCheck.(triple arb_symbol arb_symbol arb_symbol)
    (fun (a, b, c) ->
      let le x y = Symbol.compare x y <= 0 in
      (not (le a b && le b c)) || le a c)

let prop_equal_consistent =
  QCheck.Test.make ~name:"equal agrees with compare" ~count:1000
    QCheck.(pair arb_symbol arb_symbol)
    (fun (a, b) -> Symbol.equal a b = (Symbol.compare a b = 0))

(* --- patterns and refinement --- *)

let test_example_3_1 () =
  (* W = w0..w4; p assigns L to w0,w1 and M to the rest.  p refines to
     any input giving the two largest values to w0 and w1. *)
  let p = [| L 0; L 0; M 0; M 0; M 0 |] in
  check_bool "largest on w0,w1 ok" true (Pattern.refines_input p [| 4; 3; 0; 1; 2 |]);
  check_bool "largest elsewhere not ok" false
    (Pattern.refines_input p [| 4; 2; 0; 1; 3 |]);
  (* refine p to p': also pin the smallest value to w2 *)
  let p' = [| L 0; L 0; S 0; M 0; M 0 |] in
  check_bool "p refines to p'" true (Pattern.refines p p');
  check_bool "p' does not refine to p" false (Pattern.refines p' p);
  check_bool "p' to matching input" true (Pattern.refines_input p' [| 3; 4; 0; 2; 1 |])

let test_refines_reflexive_and_constant () =
  let p = [| M 0; S 0; M 0; L 0 |] in
  check_bool "reflexive" true (Pattern.refines p p);
  let c = Pattern.constant 4 (M 0) in
  (* the all-equal pattern refines to everything *)
  check_bool "constant refines anything" true (Pattern.refines c p);
  check_bool "equivalent to itself" true (Pattern.equivalent p p)

let test_order_preserving_renaming () =
  (* Example 3.2: shifting all indices up is an equivalence *)
  let p = [| M 0; M 1; S 0 |] in
  let q = [| M 5; M 7; S 0 |] in
  check_bool "equivalent" true (Pattern.equivalent p q)

let test_u_refines () =
  let p = [| M 0; M 0; S 0 |] in
  let q = [| M 0; M 1; S 0 |] in
  check_bool "refines within U = {0,1}" true (Pattern.u_refines ~u:[ 0; 1 ] p q);
  check_bool "not a {2}-refinement (changes wire 1)" false
    (Pattern.u_refines ~u:[ 2 ] p q)

let test_symbol_set () =
  let p = [| M 0; S 0; M 0; L 0; M 1 |] in
  Alcotest.(check (list int)) "m_set 0" [ 0; 2 ] (Pattern.m_set p 0);
  Alcotest.(check (list int)) "m_set 1" [ 4 ] (Pattern.m_set p 1);
  Alcotest.(check (list int)) "m_set 2 empty" [] (Pattern.m_set p 2)

let test_canonical_input () =
  let p = [| L 0; M 0; S 0; M 0 |] in
  let input = Pattern.canonical_input p in
  check_bool "refines" true (Pattern.refines_input p input);
  (* S block, then M block (adjacent values), then L *)
  check_int "smallest at w2" 0 input.(2);
  check_int "M block first" 1 input.(1);
  check_int "M block second" 2 input.(3);
  check_int "largest at w0" 3 input.(0);
  (* M_0 wires got adjacent values *)
  check_int "adjacency" 1 (abs (input.(1) - input.(3)))

let test_input_with_swap () =
  let p = [| M 0; M 0; S 0 |] in
  let pi, pi' = Pattern.input_with_swap p 0 1 in
  check_bool "pi refines p" true (Pattern.refines_input p pi);
  check_bool "pi' refines p" true (Pattern.refines_input p pi');
  check_bool "differ at the two wires" true
    (pi.(0) = pi'.(1) && pi.(1) = pi'.(0) && pi.(2) = pi'.(2));
  check_bool "distinct symbols rejected" true
    (match Pattern.input_with_swap p 0 2 with
     | exception Invalid_argument _ -> true
     | _ -> false)

(* --- propagation (Definition 3.5) --- *)

let test_propagate_comparator () =
  let nw = Network.of_gate_levels ~wires:2 [ [ Gate.compare_up 0 1 ] ] in
  let out = Propagate.through nw [| L 0; S 0 |] in
  check_bool "min output gets S" true (Symbol.equal out.(0) (S 0));
  check_bool "max output gets L" true (Symbol.equal out.(1) (L 0));
  (* equal symbols stay on both outputs *)
  let out2 = Propagate.through nw [| M 0; M 0 |] in
  check_bool "equal symbols persist" true
    (Symbol.equal out2.(0) (M 0) && Symbol.equal out2.(1) (M 0))

let test_example_3_3_structure () =
  (* The network of Example 3.3: comparators (w1,w2), (w2,w3), (w0,w3),
     all directed to the larger index. Pattern S,M,M,L. *)
  let nw =
    Network.of_gate_levels ~wires:4
      [ [ Gate.compare_up 1 2 ]; [ Gate.compare_up 2 3 ]; [ Gate.compare_up 0 3 ] ]
  in
  let p = [| S 0; M 0; M 0; L 0 |] in
  (* (1) w1 and w2 collide: they meet at the very first comparator —
     under every refinement. *)
  check_bool "w1,w2 collide (oracle)" true (Exhaustive.collides_always_oracle nw [| 0; 1; 1; 2 |] 1 2);
  (* (2) w1 can collide with w3 but does not always *)
  check_bool "w1,w3 can collide" true (Exhaustive.can_collide_oracle nw [| 0; 1; 1; 2 |] 1 3);
  check_bool "w1,w3 not always" false (Exhaustive.collides_always_oracle nw [| 0; 1; 1; 2 |] 1 3);
  (* (3) w0 and w3 collide; w0 and w1 cannot collide *)
  check_bool "w0,w3 collide" true (Exhaustive.collides_always_oracle nw [| 0; 1; 1; 2 |] 0 3);
  check_bool "w0,w1 cannot collide" false (Exhaustive.can_collide_oracle nw [| 0; 1; 1; 2 |] 0 1);
  (* and the symbolic output pattern is consistent with refinements *)
  let input = Pattern.canonical_input p in
  check_bool "Definition 3.5 consistency" true
    (Propagate.consistent_with_input nw p input)

let prop_propagation_consistent =
  (* For random small networks, random patterns, random refinements:
     evaluating a refinement yields an output refining the symbolic
     output pattern. *)
  QCheck.Test.make ~name:"Definition 3.5 on random instances" ~count:200
    QCheck.(pair (int_range 0 100_000) (int_range 2 4))
    (fun (seed, d) ->
      let n = 1 lsl d in
      let rng = Xoshiro.of_seed seed in
      let prog = Shuffle_net.random_program rng ~n ~stages:(1 + Xoshiro.int rng ~bound:(2 * d)) in
      let nw = Register_model.to_network prog in
      (* random pattern over a small alphabet *)
      let syms = [| S 0; S 1; M 0; M 1; L 0 |] in
      let p = Array.init n (fun _ -> syms.(Xoshiro.int rng ~bound:5)) in
      (* random refinement: canonical input with a random shuffle inside
         each symbol class *)
      let base = Pattern.canonical_input p in
      (* shuffle values within equal-symbol classes *)
      let wires = Array.init n (fun w -> w) in
      Array.sort (fun a b -> Symbol.compare p.(a) p.(b)) wires;
      let input = Array.copy base in
      let i = ref 0 in
      while !i < n do
        let j = ref !i in
        while !j < n && Symbol.equal p.(wires.(!j)) p.(wires.(!i)) do incr j done;
        (* random transposition of values within the class *)
        if !j - !i >= 2 then begin
          let a = wires.(!i + Xoshiro.int rng ~bound:(!j - !i)) in
          let b = wires.(!i + Xoshiro.int rng ~bound:(!j - !i)) in
          let t = input.(a) in input.(a) <- input.(b); input.(b) <- t
        end;
        i := !j
      done;
      Propagate.consistent_with_input nw p input)

let prop_canonical_refines =
  QCheck.Test.make ~name:"canonical_input always refines its pattern" ~count:300
    QCheck.(pair (int_range 0 100_000) (int_range 1 32))
    (fun (seed, n) ->
      let rng = Xoshiro.of_seed seed in
      let syms = [| S 0; S 3; X (0, 1); M 0; M 2; L 0; L 1 |] in
      let p = Array.init n (fun _ -> syms.(Xoshiro.int rng ~bound:7)) in
      Pattern.refines_input p (Pattern.canonical_input p))

let prop_refines_transitive =
  QCheck.Test.make ~name:"pattern refinement is transitive" ~count:200
    QCheck.(pair (int_range 0 100_000) (int_range 1 16))
    (fun (seed, n) ->
      let rng = Xoshiro.of_seed seed in
      (* build a chain p0 ⊐ p1 by splitting one class of p0 *)
      let syms = [| S 0; M 0; L 0 |] in
      let p0 = Array.init n (fun _ -> syms.(Xoshiro.int rng ~bound:3)) in
      let p1 =
        Array.map (function M 0 -> if Xoshiro.bool rng then M 0 else M 1 | s -> s) p0
      in
      let p2 =
        Array.map (function M 1 -> if Xoshiro.bool rng then M 1 else M 2 | s -> s) p1
      in
      Pattern.refines p0 p1 && Pattern.refines p1 p2 && Pattern.refines p0 p2)

let () =
  Alcotest.run "pattern"
    [ ( "symbol order",
        Alcotest.test_case "paper generators" `Quick test_order_generators
        :: List.map QCheck_alcotest.to_alcotest
             [ prop_total_antisym; prop_transitive; prop_equal_consistent ] );
      ( "refinement",
        [ Alcotest.test_case "Example 3.1" `Quick test_example_3_1;
          Alcotest.test_case "reflexive / constant" `Quick test_refines_reflexive_and_constant;
          Alcotest.test_case "order-preserving renaming" `Quick test_order_preserving_renaming;
          Alcotest.test_case "U-refinement" `Quick test_u_refines;
          Alcotest.test_case "symbol sets" `Quick test_symbol_set;
          Alcotest.test_case "canonical input" `Quick test_canonical_input;
          Alcotest.test_case "input_with_swap" `Quick test_input_with_swap ] );
      ( "propagation",
        [ Alcotest.test_case "comparator semantics" `Quick test_propagate_comparator;
          Alcotest.test_case "Example 3.3 collisions" `Quick test_example_3_3_structure ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_propagation_consistent; prop_canonical_refines; prop_refines_transitive ] ) ]
