(* Tests for Benes permutation routing. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let routes_correctly p =
  let n = Perm.n p in
  let nw = Benes.route p in
  let input = Array.init n (fun i -> 1000 + i) in
  let out = Network.eval nw input in
  let ok = ref true in
  for i = 0 to n - 1 do
    if out.(Perm.apply p i) <> input.(i) then ok := false
  done;
  !ok

let test_identity_route () =
  let nw = Benes.route (Perm.identity 8) in
  check_int "no crossed switches" 0 (Benes.switch_count nw);
  check_bool "routes" true (routes_correctly (Perm.identity 8))

let test_reversal_route () =
  check_bool "reversal" true (routes_correctly (Perm.of_array [| 7; 6; 5; 4; 3; 2; 1; 0 |]))

let test_shuffle_route () =
  List.iter
    (fun n ->
      check_bool "shuffle" true (routes_correctly (Perm.shuffle n));
      check_bool "unshuffle" true (routes_correctly (Perm.unshuffle n));
      check_bool "bit reversal" true (routes_correctly (Perm.bit_reversal n)))
    [ 2; 4; 8; 16; 64 ]

let test_exhaustive_n4 () =
  (* all 24 permutations of 4 elements *)
  Exhaustive.iter_permutations 4 (fun a ->
      check_bool "routes" true (routes_correctly (Perm.of_array a)))

let test_exhaustive_n8_sample () =
  Exhaustive.iter_permutations 5 (fun a ->
      (* embed the 5-perm into 8 wires *)
      let full = Array.init 8 (fun i -> if i < 5 then a.(i) else i) in
      check_bool "routes" true (routes_correctly (Perm.of_array full)))

let test_depth_formula () =
  List.iter
    (fun n ->
      let nw = Benes.route (Perm.identity n) in
      check_int (Printf.sprintf "n=%d" n) ((2 * Bitops.log2_exact n) - 1)
        (List.length (Network.levels nw));
      check_int "depth formula" (List.length (Network.levels nw)) (Benes.depth ~n))
    [ 2; 4; 8; 32; 256 ]

let test_exchange_only () =
  let rng = Xoshiro.of_seed 23 in
  for _ = 1 to 20 do
    let p = Perm.random rng 64 in
    let nw = Benes.route p in
    check_int "comparator depth 0" 0 (Network.depth nw);
    check_int "no comparators" 0 (Network.size nw)
  done

let test_non_pow2_rejected () =
  check_bool "rejects" true
    (match Benes.route (Perm.identity 6) with
     | exception Invalid_argument _ -> true
     | _ -> false)

let prop_random_routing =
  QCheck.Test.make ~name:"random permutations route correctly" ~count:200
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 7))
    (fun (seed, d) ->
      let n = 1 lsl d in
      let rng = Xoshiro.of_seed seed in
      routes_correctly (Perm.random rng n))

let prop_composition_routes =
  QCheck.Test.make ~name:"composed permutations route correctly" ~count:100
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Xoshiro.of_seed seed in
      let n = 32 in
      let p = Perm.compose (Perm.random rng n) (Perm.shuffle n) in
      routes_correctly p)

let () =
  Alcotest.run "routing"
    [ ( "benes",
        [ Alcotest.test_case "identity" `Quick test_identity_route;
          Alcotest.test_case "reversal" `Quick test_reversal_route;
          Alcotest.test_case "structured permutations" `Quick test_shuffle_route;
          Alcotest.test_case "exhaustive n=4" `Quick test_exhaustive_n4;
          Alcotest.test_case "exhaustive 5-perms in n=8" `Quick test_exhaustive_n8_sample;
          Alcotest.test_case "depth formula" `Quick test_depth_formula;
          Alcotest.test_case "exchange-only" `Quick test_exchange_only;
          Alcotest.test_case "non power of two" `Quick test_non_pow2_rejected ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_random_routing; prop_composition_routes ] ) ]
