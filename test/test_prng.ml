(* Tests for the deterministic PRNGs. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_splitmix_deterministic () =
  let a = Splitmix.create 123L and b = Splitmix.create 123L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Splitmix.next a) (Splitmix.next b)
  done

let test_splitmix_seed_sensitivity () =
  let a = Splitmix.create 123L and b = Splitmix.create 124L in
  let differs = ref false in
  for _ = 1 to 10 do
    if Splitmix.next a <> Splitmix.next b then differs := true
  done;
  check_bool "streams differ" true !differs

let test_splitmix_copy () =
  let a = Splitmix.create 5L in
  ignore (Splitmix.next a);
  let b = Splitmix.copy a in
  Alcotest.(check int64) "copy continues identically" (Splitmix.next a) (Splitmix.next b)

let test_splitmix_split () =
  let a = Splitmix.create 7L in
  let b = Splitmix.split a in
  let xs = List.init 20 (fun _ -> Splitmix.next a) in
  let ys = List.init 20 (fun _ -> Splitmix.next b) in
  check_bool "split streams decorrelated" true (xs <> ys)

let test_splitmix_bounds () =
  let g = Splitmix.create 1L in
  for _ = 1 to 1000 do
    let v = Splitmix.next_int g ~bound:17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Splitmix.next_int: bound must be positive")
    (fun () -> ignore (Splitmix.next_int g ~bound:0))

let test_xoshiro_deterministic () =
  let a = Xoshiro.of_seed 42 and b = Xoshiro.of_seed 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Xoshiro.next a) (Xoshiro.next b)
  done

let test_xoshiro_int_uniformish () =
  let g = Xoshiro.of_seed 99 in
  let counts = Array.make 10 0 in
  let trials = 100_000 in
  for _ = 1 to trials do
    let v = Xoshiro.int g ~bound:10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      check_bool (Printf.sprintf "bucket %d near uniform (%d)" i c) true
        (abs (c - (trials / 10)) < trials / 50))
    counts

let test_xoshiro_float_range () =
  let g = Xoshiro.of_seed 3 in
  for _ = 1 to 1000 do
    let f = Xoshiro.float g in
    check_bool "in [0,1)" true (f >= 0. && f < 1.)
  done

let test_xoshiro_bool_balance () =
  let g = Xoshiro.of_seed 17 in
  let trues = ref 0 in
  for _ = 1 to 10_000 do
    if Xoshiro.bool g then incr trues
  done;
  check_bool "roughly balanced" true (abs (!trues - 5000) < 300)

let test_xoshiro_copy_split () =
  let a = Xoshiro.of_seed 8 in
  ignore (Xoshiro.next a);
  let b = Xoshiro.copy a in
  Alcotest.(check int64) "copy same" (Xoshiro.next a) (Xoshiro.next b);
  let c = Xoshiro.split a in
  check_bool "split differs" true (Xoshiro.next c <> Xoshiro.next a)

let test_xoshiro_int_small_bounds () =
  let g = Xoshiro.of_seed 4 in
  for bound = 1 to 5 do
    for _ = 1 to 200 do
      let v = Xoshiro.int g ~bound in
      check_bool "range" true (v >= 0 && v < bound)
    done
  done;
  check_int "bound 1 is constant" 0 (Xoshiro.int g ~bound:1)

let test_xoshiro_jump_deterministic () =
  let a = Xoshiro.of_seed 11 and b = Xoshiro.of_seed 11 in
  Xoshiro.jump a;
  Xoshiro.jump b;
  for _ = 1 to 100 do
    Alcotest.(check int64) "jumped streams agree" (Xoshiro.next a)
      (Xoshiro.next b)
  done

(* jump is 2^128 steps: the jumped stream must not collide with a
   long prefix of the base stream, and double-jump must differ from
   single-jump (three pairwise-disjoint streams from one seed) *)
let test_xoshiro_jump_disjoint () =
  let base = Xoshiro.of_seed 12 in
  let one = Xoshiro.copy base in
  Xoshiro.jump one;
  let two = Xoshiro.copy one in
  Xoshiro.jump two;
  let draws g = List.init 256 (fun _ -> Xoshiro.next g) in
  let b = draws base and o = draws one and t = draws two in
  let module S = Set.Make (Int64) in
  let sb = S.of_list b and so = S.of_list o and st = S.of_list t in
  check_bool "base and jump disjoint" true (S.is_empty (S.inter sb so));
  check_bool "jump and jump^2 disjoint" true (S.is_empty (S.inter so st));
  check_bool "base and jump^2 disjoint" true (S.is_empty (S.inter sb st))

(* the copy taken before a jump is untouched by it *)
let test_xoshiro_jump_preserves_copy () =
  let a = Xoshiro.of_seed 13 in
  let before = Xoshiro.copy a in
  let reference = Xoshiro.copy a in
  let expect = List.init 20 (fun _ -> Xoshiro.next reference) in
  Xoshiro.jump a;
  let got = List.init 20 (fun _ -> Xoshiro.next before) in
  check_bool "pre-jump copy unaffected" true (expect = got)

let () =
  Alcotest.run "prng"
    [ ( "splitmix",
        [ Alcotest.test_case "deterministic" `Quick test_splitmix_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_splitmix_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_splitmix_copy;
          Alcotest.test_case "split" `Quick test_splitmix_split;
          Alcotest.test_case "next_int bounds" `Quick test_splitmix_bounds ] );
      ( "xoshiro",
        [ Alcotest.test_case "deterministic" `Quick test_xoshiro_deterministic;
          Alcotest.test_case "int near uniform" `Quick test_xoshiro_int_uniformish;
          Alcotest.test_case "float range" `Quick test_xoshiro_float_range;
          Alcotest.test_case "bool balance" `Quick test_xoshiro_bool_balance;
          Alcotest.test_case "copy and split" `Quick test_xoshiro_copy_split;
          Alcotest.test_case "small bounds" `Quick test_xoshiro_int_small_bounds;
          Alcotest.test_case "jump deterministic" `Quick
            test_xoshiro_jump_deterministic;
          Alcotest.test_case "jump streams disjoint" `Quick
            test_xoshiro_jump_disjoint;
          Alcotest.test_case "jump preserves copies" `Quick
            test_xoshiro_jump_preserves_copy ] ) ]
