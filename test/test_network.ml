(* Tests for the circuit model, traces and the register model. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_arr = Alcotest.(check (array int))

let raises f =
  match f () with exception Invalid_argument _ -> true | _ -> false

(* gates *)

let test_gate_constructors () =
  check_bool "compare_up normalizes" true
    (Gate.equal (Gate.compare_up 3 1) (Gate.Compare { lo = 1; hi = 3 }));
  check_bool "compare_down reverses" true
    (Gate.equal (Gate.compare_down 1 3) (Gate.Compare { lo = 3; hi = 1 }));
  check_bool "same wire rejected" true (raises (fun () -> Gate.compare_up 2 2));
  check_bool "exchange same wire" true (raises (fun () -> Gate.exchange 1 1));
  check_bool "is_comparator" true (Gate.is_comparator (Gate.compare_up 0 1));
  check_bool "exchange not comparator" false (Gate.is_comparator (Gate.exchange 0 1))

let test_gate_map_wires () =
  let g = Gate.map_wires (fun w -> w + 10) (Gate.compare_up 0 1) in
  Alcotest.(check (pair int int)) "shifted" (10, 11) (Gate.wires g);
  check_bool "collapse rejected" true
    (raises (fun () -> Gate.map_wires (fun _ -> 0) (Gate.compare_up 0 1)))

(* network construction *)

let test_create_validation () =
  check_bool "wire out of range" true
    (raises (fun () -> Network.of_gate_levels ~wires:2 [ [ Gate.compare_up 0 2 ] ]));
  check_bool "wire reuse in level" true
    (raises (fun () ->
         Network.of_gate_levels ~wires:3
           [ [ Gate.compare_up 0 1; Gate.compare_up 1 2 ] ]));
  check_bool "perm size mismatch" true
    (raises (fun () ->
         Network.create ~wires:4
           [ { Network.pre = Some (Perm.identity 3); gates = [] } ]));
  (* disjoint gates in one level are fine *)
  ignore
    (Network.of_gate_levels ~wires:4
       [ [ Gate.compare_up 0 1; Gate.compare_up 2 3 ] ])

let test_eval_single_comparator () =
  let nw = Network.of_gate_levels ~wires:2 [ [ Gate.compare_up 0 1 ] ] in
  check_arr "sorts pair" [| 1; 2 |] (Network.eval nw [| 2; 1 |]);
  check_arr "keeps sorted pair" [| 1; 2 |] (Network.eval nw [| 1; 2 |]);
  let down = Network.of_gate_levels ~wires:2 [ [ Gate.compare_down 0 1 ] ] in
  check_arr "max first" [| 2; 1 |] (Network.eval down [| 1; 2 |])

let test_eval_exchange_and_perm () =
  let nw = Network.of_gate_levels ~wires:2 [ [ Gate.exchange 0 1 ] ] in
  check_arr "swap" [| 5; 9 |] (Network.eval nw [| 9; 5 |]);
  let p = Perm.of_array [| 1; 2; 0 |] in
  let nw = Network.permutation_level p in
  (* value at j moves to p(j) *)
  check_arr "permute" [| 30; 10; 20 |] (Network.eval nw [| 10; 20; 30 |])

let test_eval_does_not_mutate_input () =
  let nw = Network.of_gate_levels ~wires:2 [ [ Gate.compare_up 0 1 ] ] in
  let input = [| 2; 1 |] in
  ignore (Network.eval nw input);
  check_arr "input intact" [| 2; 1 |] input

let test_depth_and_size () =
  let nw =
    Network.of_gate_levels ~wires:4
      [ [ Gate.compare_up 0 1; Gate.compare_up 2 3 ];
        [ Gate.exchange 1 2 ];
        [];
        [ Gate.compare_up 1 2 ] ]
  in
  check_int "depth counts comparator levels" 2 (Network.depth nw);
  check_int "size counts comparators" 3 (Network.size nw);
  check_int "comparator_pairs" 3 (List.length (Network.comparator_pairs nw))

let test_serial_parallel () =
  let a = Network.of_gate_levels ~wires:2 [ [ Gate.compare_up 0 1 ] ] in
  let b = Network.of_gate_levels ~wires:2 [ [ Gate.compare_down 0 1 ] ] in
  let s = Network.serial a b in
  check_arr "up then down" [| 2; 1 |] (Network.eval s [| 2; 1 |]);
  let par = Network.parallel a a in
  check_int "parallel wires" 4 (Network.wires par);
  check_arr "parallel both sort" [| 1; 2; 3; 4 |] (Network.eval par [| 2; 1; 4; 3 |]);
  check_int "parallel depth" 1 (Network.depth par)

let test_serial_perm () =
  let a = Network.empty 3 in
  let b = Network.of_gate_levels ~wires:3 [ [ Gate.compare_up 0 1 ] ] in
  let p = Perm.of_array [| 2; 0; 1 |] in
  let s = Network.serial_perm a p b in
  (* input [9;1;5]: perm sends 9->w2 1->w0 5->w1, compare (0,1): [1;5;9] *)
  check_arr "routing then compare" [| 1; 5; 9 |] (Network.eval s [| 9; 1; 5 |])

let test_output_wiring_only () =
  let p = Perm.of_array [| 1; 0 |] in
  let nw = Network.serial (Network.permutation_level p) (Network.permutation_level p) in
  (match Network.output_wiring_only nw with
  | Some q -> check_bool "double swap = id" true (Perm.is_identity q)
  | None -> Alcotest.fail "expected wiring-only");
  let nwc = Network.of_gate_levels ~wires:2 [ [ Gate.compare_up 0 1 ] ] in
  check_bool "comparator is not wiring-only" true
    (Network.output_wiring_only nwc = None)

let test_trace_records_values () =
  let nw =
    Network.of_gate_levels ~wires:3
      [ [ Gate.compare_up 0 1 ]; [ Gate.compare_up 1 2 ] ]
  in
  let out, tr = Trace.run nw [| 5; 3; 1 |] in
  check_arr "out" [| 3; 1; 5 |] out;
  check_bool "5 vs 3 compared" true (Trace.compared tr 5 3);
  check_bool "5 vs 1 compared" true (Trace.compared tr 1 5);
  check_bool "3 vs 1 not compared" false (Trace.compared tr 3 1);
  check_int "two distinct pairs" 2 (Trace.count tr);
  check_bool "wires_collide 0 1" true (Trace.wires_collide nw [| 5; 3; 1 |] 0 1)

let test_trace_exchange_is_not_comparison () =
  let nw = Network.of_gate_levels ~wires:2 [ [ Gate.exchange 0 1 ] ] in
  let _, tr = Trace.run nw [| 1; 2 |] in
  check_int "no comparisons" 0 (Trace.count tr)

let test_dot_export () =
  let nw = Network.of_gate_levels ~wires:2 [ [ Gate.compare_up 0 1 ] ] in
  let dot = Network.to_dot nw in
  check_bool "digraph" true (String.length dot > 0 && String.sub dot 0 7 = "digraph")

(* register model *)

let test_register_ops () =
  let n = 4 in
  let id = Perm.identity n in
  let mk ops = Register_model.create ~n [ { Register_model.perm = id; ops } ] in
  let p = mk [| Register_model.Plus; Register_model.Minus |] in
  check_arr "plus sorts up, minus down" [| 1; 2; 4; 3 |]
    (Register_model.eval p [| 2; 1; 3; 4 |]);
  let x = mk [| Register_model.One; Register_model.Zero |] in
  check_arr "exchange and skip" [| 1; 2; 3; 4 |]
    (Register_model.eval x [| 2; 1; 3; 4 |])

let test_register_validation () =
  check_bool "odd n" true (raises (fun () -> Register_model.create ~n:3 []));
  check_bool "ops length" true
    (raises (fun () ->
         Register_model.create ~n:4
           [ { Register_model.perm = Perm.identity 4; ops = [| Register_model.Plus |] } ]))

let test_register_depth () =
  let n = 4 in
  let id = Perm.identity n in
  let zero = Array.make 2 Register_model.Zero in
  let plus = Array.make 2 Register_model.Plus in
  let swap = Array.make 2 Register_model.One in
  let p =
    Register_model.create ~n
      [ { Register_model.perm = id; ops = zero };
        { Register_model.perm = id; ops = plus };
        { Register_model.perm = id; ops = swap } ]
  in
  check_int "only comparator stages count" 1 (Register_model.depth p);
  check_int "stage_count" 3 (Register_model.stage_count p)

let prop_register_vs_circuit =
  QCheck.Test.make ~name:"register eval = circuit eval = flattened eval" ~count:100
    QCheck.(pair (int_range 0 1000) (int_range 1 4))
    (fun (seed, logn) ->
      let n = 1 lsl (logn + 1) in
      let rng = Xoshiro.of_seed seed in
      let stages = 1 + Xoshiro.int rng ~bound:8 in
      let prog = Shuffle_net.random_program rng ~n ~stages in
      let nw = Register_model.to_network prog in
      let flat = Network.flatten nw in
      let input = Workload.random_permutation rng ~n in
      let a = Register_model.eval prog input in
      a = Network.eval nw input && a = Network.eval flat input)

let prop_flatten_no_pre =
  QCheck.Test.make ~name:"flatten leaves at most a final routing level" ~count:100
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Xoshiro.of_seed seed in
      let n = 8 in
      let prog = Shuffle_net.random_program rng ~n ~stages:4 in
      let flat = Network.flatten (Register_model.to_network prog) in
      let rec go = function
        | [] -> true
        | [ last ] -> last.Network.gates = [] || last.Network.pre = None
        | lvl :: rest -> lvl.Network.pre = None && go rest
      in
      go (Network.levels flat))

let prop_trace_out_matches_eval =
  QCheck.Test.make ~name:"Trace.run output equals Network.eval" ~count:100
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Xoshiro.of_seed seed in
      let n = 16 in
      let prog = Shuffle_net.random_program rng ~n ~stages:6 in
      let nw = Register_model.to_network prog in
      let input = Workload.random_permutation rng ~n in
      fst (Trace.run nw input) = Network.eval nw input)

let () =
  Alcotest.run "network"
    [ ( "gates",
        [ Alcotest.test_case "constructors" `Quick test_gate_constructors;
          Alcotest.test_case "map_wires" `Quick test_gate_map_wires ] );
      ( "circuit",
        [ Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "single comparator" `Quick test_eval_single_comparator;
          Alcotest.test_case "exchange and permutation" `Quick test_eval_exchange_and_perm;
          Alcotest.test_case "eval is pure" `Quick test_eval_does_not_mutate_input;
          Alcotest.test_case "depth and size" `Quick test_depth_and_size;
          Alcotest.test_case "serial and parallel" `Quick test_serial_parallel;
          Alcotest.test_case "serial_perm" `Quick test_serial_perm;
          Alcotest.test_case "output_wiring_only" `Quick test_output_wiring_only;
          Alcotest.test_case "dot export" `Quick test_dot_export ] );
      ( "trace",
        [ Alcotest.test_case "records compared values" `Quick test_trace_records_values;
          Alcotest.test_case "exchange not a comparison" `Quick
            test_trace_exchange_is_not_comparison ] );
      ( "register model",
        [ Alcotest.test_case "op semantics" `Quick test_register_ops;
          Alcotest.test_case "validation" `Quick test_register_validation;
          Alcotest.test_case "depth" `Quick test_register_depth ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_register_vs_circuit; prop_flatten_no_pre; prop_trace_out_matches_eval ] ) ]
