(* Tests for the lower-bound adversary: Mset invariants, Lemma 4.1,
   Theorem 4.1, certificates, the naive baseline, the adaptive game and
   the truncated variant.  The crown jewels are the oracle tests: on
   small instances, the noncollision claims of the symbolic engine are
   re-checked against *every* refinement of the final pattern. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let random_iterated ~seed ~n ~blocks =
  let rng = Xoshiro.of_seed seed in
  let d = Bitops.log2_exact n in
  let prog = Shuffle_net.random_program rng ~n ~stages:(blocks * d) in
  (prog, Shuffle_net.to_iterated prog)

(* --- Mset --- *)

let test_create_state () =
  let st = Mset.create ~n:8 ~k:2 in
  check_int "all tracked" 8 (Mset.tracked_count st);
  let coll = Mset.singleton_collection st 3 in
  check_int "t(0) = k^3" 8 coll.Mset.t;
  check_int "one member" 1 coll.Mset.total

let test_union_collections () =
  let st = Mset.create ~n:4 ~k:2 in
  let c0 = Mset.singleton_collection st 0 in
  let c1 = Mset.singleton_collection st 1 in
  let u = Mset.union_collections [ c0; c1 ] in
  check_int "total" 2 u.Mset.total;
  check_int "t unchanged" 8 u.Mset.t;
  check_int "both in set 0" 2 (List.length (Hashtbl.find u.Mset.sets 0))

let test_merge_no_cross () =
  (* merging two leaves with no cross element loses nothing *)
  let st = Mset.create ~n:2 ~k:2 in
  let left = Mset.singleton_collection st 0 in
  let right = Mset.singleton_collection st 1 in
  let coll, stats = Mset.merge st ~cross:[] ~left ~right in
  check_int "t grows by k^2" (8 + 4) coll.Mset.t;
  check_int "no loss" 2 coll.Mset.total;
  check_int "no candidates" 0 stats.Mset.candidates;
  Mset.check_invariants st coll

let test_merge_single_collision () =
  (* a comparator joining two tracked wires of set 0: with k=2 the
     argmin offset avoids merging those sets if possible; both sides
     are set 0 so diff = 0, L_0 = 1, L_1..3 = 0 -> i0 >= 1, nothing
     removed. *)
  let st = Mset.create ~n:2 ~k:2 in
  let left = Mset.singleton_collection st 0 in
  let right = Mset.singleton_collection st 1 in
  let cross = [ { Reverse_delta.left = 0; right = 1; kind = Reverse_delta.Min_left } ] in
  let coll, stats = Mset.merge st ~cross ~left ~right in
  check_int "one candidate" 1 stats.Mset.candidates;
  check_int "offset dodges the collision" 0 stats.Mset.removed;
  check_bool "offset nonzero" true (stats.Mset.i0 > 0);
  check_int "both kept" 2 coll.Mset.total;
  Mset.check_invariants st coll

let test_merge_fixed_policy_removes () =
  let st = Mset.create ~n:2 ~k:2 in
  let left = Mset.singleton_collection st 0 in
  let right = Mset.singleton_collection st 1 in
  let cross = [ { Reverse_delta.left = 0; right = 1; kind = Reverse_delta.Min_left } ] in
  let coll, stats = Mset.merge ~policy:(Mset.Fixed 0) st ~cross ~left ~right in
  check_int "forced merge loses the left wire" 1 stats.Mset.removed;
  check_int "one survivor" 1 coll.Mset.total;
  Mset.check_invariants st coll

let test_swap_kind_never_collides () =
  let st = Mset.create ~n:2 ~k:2 in
  let left = Mset.singleton_collection st 0 in
  let right = Mset.singleton_collection st 1 in
  let cross = [ { Reverse_delta.left = 0; right = 1; kind = Reverse_delta.Swap } ] in
  let _, stats = Mset.merge st ~cross ~left ~right in
  check_int "swap is not a collision" 0 stats.Mset.candidates

let test_apply_swap_level () =
  let st = Mset.create ~n:4 ~k:2 in
  let p = Perm.of_array [| 1; 0; 3; 2 |] in
  Mset.apply_swap_level st p;
  (* positions move with the permutation *)
  check_int "pos of 0" 1 st.Mset.pos.(0);
  check_bool "origin follows" true (st.Mset.origin.(1) = Some 0)

(* --- Lemma 4.1 --- *)

let lemma_on ~seed ~d =
  let n = 1 lsl d in
  let rng = Xoshiro.of_seed seed in
  let k = max 2 d in
  let st = Mset.create ~n ~k in
  let rd = Random_net.reverse_delta rng ~levels:d ~density:0.8 ~swap_prob:0.1 in
  let coll, stats = Lemma41.run st rd in
  (st, coll, stats, k)

let test_lemma41_properties () =
  List.iter
    (fun (seed, d) ->
      let st, coll, stats, k = lemma_on ~seed ~d in
      let n = 1 lsl d in
      check_int "A = n initially" n stats.Lemma41.a_size;
      check_int "t(l) = k^3 + l k^2" ((k * k * k) + (d * k * k)) coll.Mset.t;
      (* Property (4) with integer arithmetic *)
      check_bool "loss bound" true
        (coll.Mset.total * k * k >= n * ((k * k) - d));
      Mset.check_invariants st coll)
    [ (1, 2); (2, 3); (3, 4); (4, 5); (5, 6); (6, 7) ]

let test_lemma41_butterfly_exact_structure () =
  (* On the dense ascending butterfly, the adversary keeps everything
     for k >= 2: collisions are dodged by offsets. *)
  let d = 5 in
  let n = 1 lsl d in
  let st = Mset.create ~n ~k:d in
  let coll, stats = Lemma41.run st (Butterfly.ascending ~levels:d) in
  check_int "no loss on one block" n stats.Lemma41.b_size;
  Mset.check_invariants st coll

(* --- Theorem 4.1 + certificates --- *)

let test_theorem_bitonic_defeated_exactly_at_last_block () =
  List.iter
    (fun d ->
      let n = 1 lsl d in
      let it = Bitonic.as_iterated ~n in
      let r = Theorem41.run it in
      check_int (Printf.sprintf "n=%d survives d-1 blocks" n) (d - 1) r.Theorem41.survived;
      check_bool "not exhausted" false r.Theorem41.exhausted;
      (* halving trajectory *)
      List.iteri
        (fun i (b : Theorem41.block_report) ->
          check_int (Printf.sprintf "block %d |D|" i) (n lsr (i + 1)) b.Theorem41.d_size)
        r.Theorem41.reports)
    [ 3; 4; 5; 6; 7 ]

let test_theorem_final_pattern_shape () =
  let _, it = random_iterated ~seed:5 ~n:64 ~blocks:2 in
  let r = Theorem41.run it in
  (* only S0 / M0 / L0 in the final pattern *)
  Array.iter
    (fun s ->
      check_bool "pattern symbol shape" true
        (match s with
         | Symbol.S 0 | Symbol.M 0 | Symbol.L 0 -> true
         | _ -> false))
    r.Theorem41.final_pattern;
  check_int "m_set matches pattern" (List.length r.Theorem41.final_m_set)
    (List.length (Pattern.m_set r.Theorem41.final_pattern 0))

let certificate_roundtrip ~seed ~n ~blocks =
  let _, it = random_iterated ~seed ~n ~blocks in
  let r = Theorem41.run it in
  match Certificate.of_pattern r.Theorem41.final_pattern with
  | None -> Alcotest.fail "adversary should survive shallow networks"
  | Some cert ->
      let nw = Iterated.to_network it in
      (match Certificate.validate nw cert with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("certificate invalid: " ^ e));
      (match Certificate.validate_noncolliding nw cert with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("noncolliding audit failed: " ^ e))

let test_certificates_valid () =
  List.iter
    (fun seed ->
      certificate_roundtrip ~seed ~n:32 ~blocks:2;
      certificate_roundtrip ~seed ~n:64 ~blocks:2)
    [ 1; 2; 3; 4; 5 ]

let test_certificate_tampering_detected () =
  let _, it = random_iterated ~seed:3 ~n:32 ~blocks:1 in
  let r = Theorem41.run it in
  let nw = Iterated.to_network it in
  match Certificate.of_pattern r.Theorem41.final_pattern with
  | None -> Alcotest.fail "expected certificate"
  | Some cert ->
      let bad_twin = { cert with Certificate.twin = cert.Certificate.input } in
      check_bool "twin must differ" true (Certificate.validate nw bad_twin <> Ok ());
      let bad_values =
        { cert with Certificate.value1 = cert.Certificate.value0 + 2 }
      in
      check_bool "non-adjacent rejected" true
        (Certificate.validate nw bad_values <> Ok ());
      (* a pair that IS compared must be rejected: use two values that
         some comparator touches *)
      (match Network.comparator_pairs nw with
      | (w0, w1) :: _ ->
          let input = cert.Certificate.input in
          (* craft a fake certificate claiming wires w0 w1 never collide *)
          let fake =
            { Certificate.input;
              twin = (let t = Array.copy input in
                      t.(w0) <- input.(w1); t.(w1) <- input.(w0); t);
              wire0 = w0; wire1 = w1;
              value0 = min input.(w0) input.(w1);
              value1 = max input.(w0) input.(w1);
              m_set = [ w0; w1 ] }
          in
          (* either values are not adjacent, or they are compared: in
             both cases validation must fail for this first-level pair *)
          check_bool "colliding pair rejected" true (Certificate.validate nw fake <> Ok ())
      | [] -> ())

(* ORACLE: on small n, every pair of M_0 wires of the final pattern is
   uncompared under EVERY refinement of the pattern. *)
let test_noncolliding_oracle_exhaustive () =
  List.iter
    (fun seed ->
      let n = 8 in
      let _, it = random_iterated ~seed ~n ~blocks:1 in
      let r = Theorem41.run ~k:2 it in
      let nw = Iterated.to_network it in
      (* encode the final pattern as ranked integers for the oracle *)
      let p = r.Theorem41.final_pattern in
      let ranks =
        let sorted =
          List.sort_uniq Symbol.compare (Array.to_list p)
        in
        Array.map (fun s ->
            let rec idx i = function
              | [] -> assert false
              | x :: rest -> if Symbol.equal x s then i else idx (i + 1) rest
            in
            idx 0 sorted)
          p
      in
      let m0 = Pattern.m_set p 0 in
      List.iteri
        (fun i w0 ->
          List.iteri
            (fun j w1 ->
              if j > i then
                check_bool
                  (Printf.sprintf "seed %d: wires %d,%d never collide" seed w0 w1)
                  false
                  (Exhaustive.can_collide_oracle nw ranks w0 w1))
            m0)
        m0)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* --- naive baseline --- *)

let test_naive_on_transposition () =
  (* brick network: adjacent comparisons; the naive set loses one
     member per colliding pair *)
  let nw = Transposition.network ~n:8 in
  let r = Naive.run nw in
  check_bool "survives some levels" true (r.Naive.levels_survived >= 1);
  check_bool "sizes decrease" true
    (List.hd r.Naive.sizes >= List.nth r.Naive.sizes (List.length r.Naive.sizes - 1));
  check_int "initial size n" 8 (List.hd r.Naive.sizes)

let test_naive_halving_on_all_plus () =
  (* all-plus shuffle network halves the set every level *)
  List.iter
    (fun d ->
      let n = 1 lsl d in
      let prog = Shuffle_net.all_plus_program ~n ~stages:(2 * d) in
      let nw = Register_model.to_network prog in
      let r = Naive.run nw in
      check_bool
        (Printf.sprintf "n=%d naive dies within ~lg n levels" n)
        true
        (r.Naive.levels_survived <= d + 1))
    [ 3; 4; 5; 6; 7; 8 ]

let test_naive_certificate () =
  (* the naive adversary's fooling pair is also valid on shallow nets *)
  let prog = Shuffle_net.all_plus_program ~n:32 ~stages:3 in
  let nw = Register_model.to_network prog in
  let r = Naive.run nw in
  match Certificate.of_pattern r.Naive.final_pattern with
  | None -> Alcotest.fail "naive should survive 3 levels"
  | Some cert -> (
      match Certificate.validate nw cert with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)

let test_naive_beats_nothing_paper_wins () =
  (* headline comparison on one instance *)
  let n = 256 in
  let prog = Shuffle_net.all_plus_program ~n ~stages:64 in
  let it = Shuffle_net.to_iterated prog in
  let naive = Naive.run (Iterated.to_network it) in
  let paper = Theorem41.run it in
  check_bool "paper adversary survives longer" true
    (paper.Theorem41.survived * 8 > naive.Naive.levels_survived)

(* --- adaptive --- *)

let test_adaptive_program_consistency () =
  (* the recorded program must be a shuffle-based program of the right
     size, and the certificate must validate on it *)
  let n = 64 in
  let blocks = 3 in
  let r = Adaptive.run ~n ~blocks Adaptive.oblivious_all_compare in
  check_int "stages recorded" (blocks * 6) (Register_model.stage_count r.Adaptive.program);
  (* an oblivious all-compare program equals the static all-plus one *)
  let static = Shuffle_net.all_plus_program ~n ~stages:(blocks * 6) in
  let rng = Xoshiro.of_seed 123 in
  for _ = 1 to 20 do
    let input = Workload.random_permutation rng ~n in
    Alcotest.(check (array int)) "same network"
      (Register_model.eval static input)
      (Register_model.eval r.Adaptive.program input)
  done;
  match Certificate.of_pattern r.Adaptive.final_pattern with
  | None -> Alcotest.fail "adversary should survive"
  | Some cert -> (
      match Certificate.validate (Register_model.to_network r.Adaptive.program) cert with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)

let test_adaptive_matches_theorem_on_oblivious () =
  (* stage-interleaved processing = recursive processing on the same
     network *)
  let n = 128 in
  let blocks = 4 in
  let ad = Adaptive.run ~n ~blocks Adaptive.oblivious_all_compare in
  let th =
    Theorem41.run (Shuffle_net.to_iterated (Shuffle_net.all_plus_program ~n ~stages:(blocks * 7)))
  in
  check_int "same survival" th.Theorem41.survived ad.Adaptive.survived;
  List.iter2
    (fun (a : Theorem41.block_report) (b : Theorem41.block_report) ->
      check_int "same |D| trajectory" a.Theorem41.d_size b.Theorem41.d_size)
    th.Theorem41.reports ad.Adaptive.reports

let test_steering_killer_not_weaker () =
  let n = 64 in
  let blocks = 6 in
  let obl = Adaptive.run ~n ~blocks Adaptive.oblivious_all_compare in
  let steer = Adaptive.run ~n ~blocks Adaptive.steering_killer in
  check_bool "steering kills at least as much" true
    (List.length steer.Adaptive.final_m_set <= List.length obl.Adaptive.final_m_set)

(* --- truncated --- *)

let test_truncated_full_f_equals_theorem () =
  let n = 64 in
  let d = 6 in
  let rng = Xoshiro.of_seed 17 in
  let prog = Shuffle_net.random_program rng ~n ~stages:(3 * d) in
  let tr = Truncated.run ~f:d prog in
  let th = Theorem41.run (Shuffle_net.to_iterated prog) in
  check_int "same survival" th.Theorem41.survived tr.Truncated.survived;
  List.iter2
    (fun (a : Theorem41.block_report) (b : Truncated.chunk_report) ->
      check_int "same |A|" a.Theorem41.a_size b.Truncated.a_size;
      check_int "same |B|" a.Theorem41.b_size b.Truncated.b_size;
      check_int "same |D|" a.Theorem41.d_size b.Truncated.d_size)
    th.Theorem41.reports tr.Truncated.reports

let test_truncated_certificate () =
  let n = 64 in
  let rng = Xoshiro.of_seed 19 in
  let prog = Shuffle_net.random_program rng ~n ~stages:12 in
  let tr = Truncated.run ~f:2 prog in
  check_bool "survives" true (tr.Truncated.survived >= 1);
  if tr.Truncated.exhausted then
    match Certificate.of_pattern tr.Truncated.final_pattern with
    | None -> ()
    | Some cert -> (
        let nw = Register_model.to_network prog in
        match Certificate.validate nw cert with
        | Ok () -> ()
        | Error e -> Alcotest.fail ("truncated certificate: " ^ e))

let test_truncated_rejects_bad_f () =
  let prog = Shuffle_net.all_plus_program ~n:16 ~stages:8 in
  check_bool "f must divide" true
    (match Truncated.run ~f:3 prog with
     | exception Invalid_argument _ -> true
     | _ -> false)

(* --- paper formulas --- *)

let test_formulas () =
  check_bool "paper_bound decreasing in blocks" true
    (Theorem41.paper_bound ~n:1024 ~blocks:2 < Theorem41.paper_bound ~n:1024 ~blocks:1);
  check_bool "depth bound grows" true
    (Theorem41.depth_lower_bound ~n:(1 lsl 16) > Theorem41.depth_lower_bound ~n:(1 lsl 8));
  check_bool "max_survivable_blocks positive for huge n" true
    (Theorem41.max_survivable_blocks ~n:(1 lsl 60) >= 1);
  check_int "tiny n gives 0 guaranteed blocks" 0 (Theorem41.max_survivable_blocks ~n:16)

let qcheck_certificates =
  QCheck.Test.make ~name:"random shallow shuffle nets always yield valid certificates"
    ~count:40
    QCheck.(pair (int_range 0 100_000) (int_range 3 6))
    (fun (seed, d) ->
      let n = 1 lsl d in
      let _, it = random_iterated ~seed ~n ~blocks:2 in
      let r = Theorem41.run it in
      match Certificate.of_pattern r.Theorem41.final_pattern with
      | None -> true (* adversary may lose at tiny n; that is not a bug *)
      | Some cert ->
          let nw = Iterated.to_network it in
          Certificate.validate nw cert = Ok ()
          && Certificate.validate_noncolliding nw cert = Ok ())

let qcheck_lemma_invariants =
  QCheck.Test.make ~name:"Lemma 4.1 invariants on random blocks" ~count:40
    QCheck.(triple (int_range 0 100_000) (int_range 2 6) (int_range 2 8))
    (fun (seed, d, k) ->
      let n = 1 lsl d in
      let rng = Xoshiro.of_seed seed in
      let st = Mset.create ~n ~k in
      let rd = Random_net.reverse_delta rng ~levels:d ~density:0.9 ~swap_prob:0.2 in
      let coll, stats = Lemma41.run st rd in
      Mset.check_invariants st coll;
      stats.Lemma41.b_size * k * k >= stats.Lemma41.a_size * ((k * k) - d))

let () =
  Alcotest.run "adversary"
    [ ( "mset",
        [ Alcotest.test_case "create" `Quick test_create_state;
          Alcotest.test_case "union" `Quick test_union_collections;
          Alcotest.test_case "merge without cross" `Quick test_merge_no_cross;
          Alcotest.test_case "merge dodges a collision" `Quick test_merge_single_collision;
          Alcotest.test_case "fixed policy pays" `Quick test_merge_fixed_policy_removes;
          Alcotest.test_case "swap never collides" `Quick test_swap_kind_never_collides;
          Alcotest.test_case "inter-block permutation" `Quick test_apply_swap_level ] );
      ( "lemma 4.1",
        [ Alcotest.test_case "properties on random blocks" `Quick test_lemma41_properties;
          Alcotest.test_case "butterfly keeps everything" `Quick
            test_lemma41_butterfly_exact_structure ] );
      ( "theorem 4.1",
        [ Alcotest.test_case "bitonic defeats it at the last block" `Quick
            test_theorem_bitonic_defeated_exactly_at_last_block;
          Alcotest.test_case "final pattern shape" `Quick test_theorem_final_pattern_shape ] );
      ( "certificates",
        [ Alcotest.test_case "valid on shallow networks" `Quick test_certificates_valid;
          Alcotest.test_case "tampering detected" `Quick test_certificate_tampering_detected;
          Alcotest.test_case "EXHAUSTIVE noncollision oracle" `Slow
            test_noncolliding_oracle_exhaustive ] );
      ( "naive",
        [ Alcotest.test_case "on transposition" `Quick test_naive_on_transposition;
          Alcotest.test_case "halving on all-plus" `Quick test_naive_halving_on_all_plus;
          Alcotest.test_case "naive certificate" `Quick test_naive_certificate;
          Alcotest.test_case "paper adversary wins" `Quick test_naive_beats_nothing_paper_wins ] );
      ( "adaptive",
        [ Alcotest.test_case "program consistency" `Quick test_adaptive_program_consistency;
          Alcotest.test_case "matches Theorem 4.1 on oblivious" `Quick
            test_adaptive_matches_theorem_on_oblivious;
          Alcotest.test_case "steering at least as strong" `Quick
            test_steering_killer_not_weaker ] );
      ( "truncated",
        [ Alcotest.test_case "f = lg n equals Theorem 4.1" `Quick
            test_truncated_full_f_equals_theorem;
          Alcotest.test_case "certificate" `Quick test_truncated_certificate;
          Alcotest.test_case "bad f rejected" `Quick test_truncated_rejects_bad_f ] );
      ( "formulas",
        [ Alcotest.test_case "bounds" `Quick test_formulas ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_certificates; qcheck_lemma_invariants ] ) ]
