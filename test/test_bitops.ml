(* Unit and property tests for Bitops. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_is_power_of_two () =
  List.iter
    (fun (x, want) -> check_bool (string_of_int x) want (Bitops.is_power_of_two x))
    [ (1, true); (2, true); (4, true); (1024, true); (1 lsl 40, true);
      (0, false); (-1, false); (-4, false); (3, false); (6, false);
      (1023, false); (1025, false) ]

let test_log2_exact () =
  List.iter
    (fun (x, want) -> check (string_of_int x) want (Bitops.log2_exact x))
    [ (1, 0); (2, 1); (4, 2); (8, 3); (1 lsl 20, 20) ];
  Alcotest.check_raises "not a power" (Invalid_argument
    "Bitops.log2_exact: 6 is not a power of two") (fun () ->
      ignore (Bitops.log2_exact 6))

let test_floor_ceil_log2 () =
  List.iter
    (fun (x, fl, ce) ->
      check (Printf.sprintf "floor %d" x) fl (Bitops.floor_log2 x);
      check (Printf.sprintf "ceil %d" x) ce (Bitops.ceil_log2 x))
    [ (1, 0, 0); (2, 1, 1); (3, 1, 2); (4, 2, 2); (5, 2, 3); (7, 2, 3);
      (8, 3, 3); (9, 3, 4); (1000, 9, 10); (1024, 10, 10) ]

let test_bit_ops () =
  check "bit" 1 (Bitops.bit 0b1010 1);
  check "bit" 0 (Bitops.bit 0b1010 2);
  check "set" 0b1110 (Bitops.set_bit 0b1010 2);
  check "set idempotent" 0b1010 (Bitops.set_bit 0b1010 1);
  check "clear" 0b1000 (Bitops.clear_bit 0b1010 1);
  check "clear idempotent" 0b1010 (Bitops.clear_bit 0b1010 0);
  check "flip on" 0b1011 (Bitops.flip_bit 0b1010 0);
  check "flip off" 0b0010 (Bitops.flip_bit 0b1010 3)

let test_rotate () =
  check "rotl 0b100" 0b001 (Bitops.rotate_left ~width:3 0b100);
  check "rotl 0b011" 0b110 (Bitops.rotate_left ~width:3 0b011);
  check "rotr inverse" 0b100 (Bitops.rotate_right ~width:3 0b001);
  (* shuffle on 8 = rotate-left of 3-bit indices: 1 -> 2 -> 4 -> 1 *)
  check "orbit" 2 (Bitops.rotate_left ~width:3 1);
  check "orbit" 4 (Bitops.rotate_left ~width:3 2);
  check "orbit" 1 (Bitops.rotate_left ~width:3 4)

let test_reverse_bits () =
  check "rev 3bit" 0b110 (Bitops.reverse_bits ~width:3 0b011);
  check "rev 4bit" 0b0001 (Bitops.reverse_bits ~width:4 0b1000);
  check "palindrome" 0b101 (Bitops.reverse_bits ~width:3 0b101)

let test_popcount () =
  List.iter
    (fun (x, want) -> check (string_of_int x) want (Bitops.popcount x))
    [ (0, 0); (1, 1); (0b1011, 3); (max_int, 62) ]

let test_gray () =
  check "gray 0" 0 (Bitops.gray 0);
  check "gray 1" 1 (Bitops.gray 1);
  check "gray 2" 3 (Bitops.gray 2);
  check "gray 3" 2 (Bitops.gray 3);
  (* adjacent codes differ in exactly one bit *)
  for i = 0 to 200 do
    check_bool "adjacent" true
      (Bitops.popcount (Bitops.gray i lxor Bitops.gray (i + 1)) = 1)
  done

let test_errors () =
  let raises f = match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check_bool "bit index" true (raises (fun () -> Bitops.bit 0 63));
  check_bool "bit negative" true (raises (fun () -> Bitops.bit 0 (-1)));
  check_bool "rot range" true (raises (fun () -> Bitops.rotate_left ~width:3 8));
  check_bool "rot width" true (raises (fun () -> Bitops.rotate_left ~width:0 0));
  check_bool "pow2" true (raises (fun () -> Bitops.pow2 63));
  check_bool "popcount" true (raises (fun () -> Bitops.popcount (-1)))

let prop_rotate_roundtrip =
  QCheck.Test.make ~name:"rotate_left then rotate_right is identity" ~count:500
    QCheck.(pair (int_range 1 20) (int_bound (1 lsl 20 - 1)))
    (fun (width, x) ->
      let x = x land ((1 lsl width) - 1) in
      Bitops.rotate_right ~width (Bitops.rotate_left ~width x) = x)

let prop_reverse_involution =
  QCheck.Test.make ~name:"reverse_bits is an involution" ~count:500
    QCheck.(pair (int_range 1 20) (int_bound (1 lsl 20 - 1)))
    (fun (width, x) ->
      let x = x land ((1 lsl width) - 1) in
      Bitops.reverse_bits ~width (Bitops.reverse_bits ~width x) = x)

let prop_gray_roundtrip =
  QCheck.Test.make ~name:"gray_inverse . gray = id" ~count:500
    QCheck.(int_bound (1 lsl 30))
    (fun x -> Bitops.gray_inverse (Bitops.gray x) = x)

let prop_popcount_additive =
  QCheck.Test.make ~name:"popcount of disjoint union adds" ~count:500
    QCheck.(pair (int_bound (1 lsl 30)) (int_bound (1 lsl 30)))
    (fun (a, b) ->
      let b = b land lnot a in
      Bitops.popcount (a lor b) = Bitops.popcount a + Bitops.popcount b)

let () =
  Alcotest.run "bitops"
    [ ( "unit",
        [ Alcotest.test_case "is_power_of_two" `Quick test_is_power_of_two;
          Alcotest.test_case "log2_exact" `Quick test_log2_exact;
          Alcotest.test_case "floor/ceil log2" `Quick test_floor_ceil_log2;
          Alcotest.test_case "bit set/clear/flip" `Quick test_bit_ops;
          Alcotest.test_case "rotations" `Quick test_rotate;
          Alcotest.test_case "reverse_bits" `Quick test_reverse_bits;
          Alcotest.test_case "popcount" `Quick test_popcount;
          Alcotest.test_case "gray code" `Quick test_gray;
          Alcotest.test_case "argument validation" `Quick test_errors ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_rotate_roundtrip; prop_reverse_involution; prop_gray_roundtrip;
            prop_popcount_additive ] ) ]
