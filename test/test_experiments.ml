(* Smoke tests: the cheap experiments run to completion (no exceptions,
   in-process assertions all pass) in quick mode.  The heavyweight
   sweeps (E7 adaptive, E9 sampling) are exercised by `snlb table all`
   and the bench harness rather than the unit suite. *)

let run id () =
  match Registry.find id with
  | None -> Alcotest.failf "unknown experiment %s" id
  | Some e -> e.Registry.run ~quick:true

(* silence the tables: the experiments print to stdout *)
let quietly f () =
  let saved = Unix.dup Unix.stdout in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Unix.dup2 devnull Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      Unix.close devnull)
    f

let test_registry_complete () =
  Alcotest.(check int) "16 experiments" 16 (List.length Registry.all);
  List.iter
    (fun e ->
      Alcotest.(check bool) ("find " ^ e.Registry.id) true
        (Registry.find e.Registry.id <> None))
    Registry.all;
  Alcotest.(check bool) "lookup is case-insensitive" true
    (Registry.find "e5" <> None);
  Alcotest.(check bool) "unknown id" true (Registry.find "E99" = None)

let smoke id = Alcotest.test_case id `Slow (quietly (run id))

let () =
  Alcotest.run "experiments"
    [ ("registry", [ Alcotest.test_case "complete" `Quick test_registry_complete ]);
      ( "smoke (quick mode)",
        List.map smoke
          [ "E1"; "E3"; "E5"; "E6"; "E10"; "E11"; "E12"; "E13"; "E14"; "E15" ] ) ]
