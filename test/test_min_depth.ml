(* Tests for the minimal-depth search (Section 6 / Knuth 5.3.4.47),
   now a shuffle-restricted instantiation of the generic driver. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let budget max_nodes = { Driver.max_nodes; max_seconds = None }

let test_n2 () =
  match Min_depth.minimal_depth ~n:2 ~max_depth:2 () with
  | Min_depth.Minimal (1, prog) ->
      check_bool "verified" true (Min_depth.verify_witness ~n:2 prog)
  | Min_depth.Minimal (d, _) -> Alcotest.failf "n=2 minimal depth %d, want 1" d
  | Min_depth.No_sorter -> Alcotest.fail "n=2 must have a 1-stage sorter"
  | Min_depth.Unknown _ | Min_depth.Stopped _ -> Alcotest.fail "n=2 must be decidable"

let test_n4_exact () =
  (match Min_depth.search ~n:4 ~depth:2 () with
  | Min_depth.Impossible -> ()
  | Min_depth.Sorter _ -> Alcotest.fail "no 2-stage sorter exists for n=4"
  | Min_depth.Inconclusive | Min_depth.Interrupted -> Alcotest.fail "n=4 depth 2 must be decidable");
  match Min_depth.minimal_depth ~n:4 ~max_depth:4 () with
  | Min_depth.Minimal (3, prog) ->
      check_bool "verified" true (Min_depth.verify_witness ~n:4 prog);
      check_int "matches bitonic" (Bitonic.depth_formula ~n:4) 3
  | Min_depth.Minimal (d, _) -> Alcotest.failf "n=4 minimal depth %d, want 3" d
  | Min_depth.No_sorter -> Alcotest.fail "bitonic is a 3-stage witness"
  | Min_depth.Unknown _ | Min_depth.Stopped _ -> Alcotest.fail "n=4 must be decidable"

let test_n8_depth3_impossible () =
  match Min_depth.search ~n:8 ~depth:3 () with
  | Min_depth.Impossible -> ()
  | Min_depth.Sorter _ -> Alcotest.fail "no 3-stage sorter for n=8 (< trivial bound would be absurd... but 3 = lg n is still too shallow)"
  | Min_depth.Inconclusive | Min_depth.Interrupted -> Alcotest.fail "should be decidable"

let test_n8_depth4_impossible () =
  match Min_depth.search ~n:8 ~depth:4 ~budget:(budget 500_000_000) () with
  | Min_depth.Impossible -> ()
  | Min_depth.Sorter _ -> Alcotest.fail "depth-4 sorter for n=8 would be a discovery; recheck"
  | Min_depth.Inconclusive | Min_depth.Interrupted -> Alcotest.fail "budget too small"

let test_bitonic_witness_shape () =
  (* the searcher's own witness format: feeding bitonic's op vectors
     through verify_witness *)
  let n = 8 in
  let prog = Bitonic.shuffle_program ~n in
  let opss = List.map (fun st -> st.Register_model.ops) (Register_model.stages prog) in
  check_bool "bitonic passes verify_witness" true (Min_depth.verify_witness ~n opss)

let test_budget_reported () =
  match Min_depth.search ~n:8 ~depth:5 ~budget:(budget 50) () with
  | Min_depth.Inconclusive -> ()
  | Min_depth.Interrupted -> Alcotest.fail "nothing cancels this run"
  | Min_depth.Sorter _ | Min_depth.Impossible ->
      Alcotest.fail "a 50-node budget cannot decide depth 5"

let test_minimal_unknown () =
  (* minimal_depth must report budget exhaustion distinguishably
     instead of raising *)
  match Min_depth.minimal_depth ~n:8 ~max_depth:5 ~budget:(budget 50) () with
  | Min_depth.Unknown k -> check_bool "refuted levels >= 0" true (k >= 0)
  | Min_depth.Stopped _ -> Alcotest.fail "nothing cancels this run"
  | Min_depth.Minimal _ | Min_depth.No_sorter ->
      Alcotest.fail "a 50-node budget cannot decide n=8"

let test_invalid_n () =
  check_bool "rejects n=6" true
    (match Min_depth.search ~n:6 ~depth:1 () with
     | exception Invalid_argument _ -> true
     | _ -> false)

let () =
  Alcotest.run "min_depth"
    [ ( "search",
        [ Alcotest.test_case "n=2" `Quick test_n2;
          Alcotest.test_case "n=4 exact minimum is 3" `Quick test_n4_exact;
          Alcotest.test_case "n=8 depth 3 impossible" `Quick test_n8_depth3_impossible;
          Alcotest.test_case "n=8 depth 4 impossible" `Slow test_n8_depth4_impossible;
          Alcotest.test_case "bitonic as witness" `Quick test_bitonic_witness_shape;
          Alcotest.test_case "budget honoured" `Quick test_budget_reported;
          Alcotest.test_case "minimal_depth reports Unknown" `Quick test_minimal_unknown;
          Alcotest.test_case "invalid n" `Quick test_invalid_n ] ) ]
