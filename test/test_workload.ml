(* Tests for the workload generators. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let is_permutation a =
  let n = Array.length a in
  let seen = Array.make n false in
  Array.for_all (fun v -> v >= 0 && v < n && not seen.(v) && (seen.(v) <- true; true)) a

let test_random_permutation () =
  let rng = Xoshiro.of_seed 1 in
  for _ = 1 to 50 do
    check_bool "valid" true (is_permutation (Workload.random_permutation rng ~n:33))
  done

let test_zero_one () =
  let rng = Xoshiro.of_seed 2 in
  let v = Workload.random_zero_one rng ~n:100 in
  check_bool "only 0/1" true (Array.for_all (fun x -> x = 0 || x = 1) v);
  let w = Workload.zero_one_with_ones ~n:6 ~ones:2 in
  Alcotest.(check (array int)) "ones first" [| 1; 1; 0; 0; 0; 0 |] w;
  check_bool "bad ones" true
    (match Workload.zero_one_with_ones ~n:3 ~ones:4 with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_sorted_reversed () =
  Alcotest.(check (array int)) "sorted" [| 0; 1; 2 |] (Workload.sorted ~n:3);
  Alcotest.(check (array int)) "reversed" [| 2; 1; 0 |] (Workload.reversed ~n:3)

let test_nearly_sorted () =
  let rng = Xoshiro.of_seed 3 in
  let a = Workload.nearly_sorted rng ~n:50 ~swaps:3 in
  check_bool "still a permutation" true (is_permutation a);
  check_bool "few inversions" true (Sortedness.inversions a <= 3 * 50)

let test_k_rotated () =
  Alcotest.(check (array int)) "rot 1" [| 1; 2; 3; 0 |] (Workload.k_rotated ~n:4 ~k:1);
  Alcotest.(check (array int)) "rot -1 = rot n-1" (Workload.k_rotated ~n:4 ~k:3)
    (Workload.k_rotated ~n:4 ~k:(-1));
  check_int "rot n = id" 0 (Sortedness.inversions (Workload.k_rotated ~n:4 ~k:4))

let count_descents a =
  let c = ref 0 in
  for i = 0 to Array.length a - 2 do
    if a.(i) > a.(i + 1) then incr c
  done;
  !c

let test_bitonic_input_shape () =
  let rng = Xoshiro.of_seed 4 in
  for _ = 1 to 100 do
    let a = Workload.bitonic_input rng ~n:32 in
    check_bool "permutation" true (is_permutation a);
    (* ascending run then descending run: direction changes at most once *)
    let changes = ref 0 in
    let dir = ref 0 in
    for i = 0 to 30 do
      let d = compare a.(i + 1) a.(i) in
      if d <> 0 && d <> !dir then begin
        if !dir <> 0 then incr changes;
        dir := d
      end
    done;
    check_bool "at most one direction change" true (!changes <= 1);
    ignore (count_descents a)
  done

let prop_deterministic =
  QCheck.Test.make ~name:"same seed, same workload" ~count:100
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let a = Workload.random_permutation (Xoshiro.of_seed seed) ~n:20 in
      let b = Workload.random_permutation (Xoshiro.of_seed seed) ~n:20 in
      a = b)

let () =
  Alcotest.run "workload"
    [ ( "generators",
        [ Alcotest.test_case "random permutation" `Quick test_random_permutation;
          Alcotest.test_case "zero-one" `Quick test_zero_one;
          Alcotest.test_case "sorted / reversed" `Quick test_sorted_reversed;
          Alcotest.test_case "nearly sorted" `Quick test_nearly_sorted;
          Alcotest.test_case "rotations" `Quick test_k_rotated;
          Alcotest.test_case "bitonic shape" `Quick test_bitonic_input_shape ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_deterministic ]) ]
