(* Tests for lib/evolve: genome operators, the batch fitness kernel,
   the generational driver's determinism and checkpoint/resume, and
   the differential fuzzer. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- genome invariants --- *)

(* the structural contract of Genome.t, checked from outside: pairs
   oriented and in range, channels disjoint per level, levels sorted
   by lower channel *)
let valid g =
  let w = Genome.wires g in
  Array.for_all
    (fun level ->
      let used = Hashtbl.create 8 in
      let ok = ref true in
      let last_lo = ref (-1) in
      Array.iter
        (fun (lo, hi) ->
          if not (0 <= lo && lo < hi && hi < w) then ok := false;
          if Hashtbl.mem used lo || Hashtbl.mem used hi then ok := false;
          Hashtbl.replace used lo ();
          Hashtbl.replace used hi ();
          if lo < !last_lo then ok := false;
          last_lo := lo)
        level;
      !ok)
    g.Genome.levels

let genome_of (seed, wires, depth) =
  let rng = Xoshiro.of_seed seed in
  Genome.random rng ~wires ~depth ~density:(0.2 +. (0.7 *. Xoshiro.float rng)) ()

let genome_params = QCheck.(triple (int_range 0 100_000) (int_range 2 10) (int_range 0 6))

let qcheck_random_valid =
  QCheck.Test.make ~name:"random genomes are valid" ~count:300 genome_params
    (fun p ->
      let g = genome_of p in
      valid g
      && Genome.shape g = (let _, _, d = p in d)
      && Genome.wires g = (let _, w, _ = p in w))

let qcheck_mutate_valid =
  QCheck.Test.make ~name:"mutate preserves validity, wires and shape"
    ~count:300 genome_params (fun p ->
      let _, w, d = p in
      let g = genome_of p in
      let rng = Xoshiro.of_seed 7 in
      let m = ref g in
      for _ = 1 to 20 do
        m := Genome.mutate rng !m
      done;
      valid !m && Genome.wires !m = w && Genome.shape !m = d)

let qcheck_crossover_valid =
  QCheck.Test.make ~name:"crossover preserves validity, wires and shape"
    ~count:300
    QCheck.(pair genome_params (int_range 0 100_000))
    (fun (p, seed2) ->
      let _, w, d = p in
      let a = genome_of p in
      let b = genome_of (seed2, w, d) in
      let rng = Xoshiro.of_seed 13 in
      let c = Genome.crossover rng a b in
      valid c && Genome.wires c = w && Genome.shape c = d)

let qcheck_repair_no_dead =
  QCheck.Test.make ~name:"repair leaves no analyzer-provable dead comparator"
    ~count:200
    QCheck.(triple (int_range 0 100_000) (int_range 2 8) (int_range 1 6))
    (fun p ->
      let g = genome_of p in
      let r = Genome.repair g in
      let facts = (Analysis.analyze (Genome.to_network r)).Analysis.facts in
      valid r && facts.Analysis.dead = []
      && Genome.shape r = Genome.shape g
      && Genome.wires r = Genome.wires g)

let qcheck_repair_extensional =
  QCheck.Test.make ~name:"repair preserves 0-1 behaviour" ~count:100
    QCheck.(triple (int_range 0 100_000) (int_range 2 8) (int_range 1 5))
    (fun p ->
      let g = genome_of p in
      let r = Genome.repair g in
      let c = Compiled.of_network (Genome.to_network g) in
      let c' = Compiled.of_network (Genome.to_network r) in
      let n = Genome.wires g in
      let ok = ref true in
      for m = 0 to (1 lsl n) - 1 do
        if
          (Bitslice.eval_masks c [| m |]).(0)
          <> (Bitslice.eval_masks c' [| m |]).(0)
        then ok := false
      done;
      !ok)

let qcheck_repair_grow_valid =
  QCheck.Test.make ~name:"repair_grow preserves validity and shape" ~count:200
    QCheck.(triple (int_range 0 100_000) (int_range 2 8) (int_range 1 6))
    (fun p ->
      let g = genome_of p in
      let r = Genome.repair_grow (Xoshiro.of_seed 3) g in
      valid r && Genome.wires r = Genome.wires g
      && Genome.shape r = Genome.shape g)

let qcheck_string_roundtrip =
  QCheck.Test.make ~name:"to_string/of_string round-trips" ~count:300
    genome_params (fun p ->
      let g = genome_of p in
      match Genome.of_string (Genome.to_string g) with
      | Ok g' -> Genome.equal g g'
      | Error _ -> false)

(* --- fitness kernel --- *)

let test_fitness_sorter () =
  let nw = Odd_even_merge.network ~n:8 in
  let c = Compiled.of_network nw in
  check_int "sorter has max fitness" (Fitness.max_fitness ~wires:8)
    (Fitness.compiled c)

let test_fitness_empty () =
  (* the empty network sorts exactly the n+1 already-sorted 0-1 ramps *)
  let g = Genome.create ~wires:6 (Array.make 3 [||]) in
  check_int "empty genome sorts the ramps only" 7 (Fitness.genome g)

let test_fitness_population_matches () =
  let rng = Xoshiro.of_seed 5 in
  let gs = Array.init 40 (fun _ -> Genome.random rng ~wires:7 ~depth:4 ()) in
  let single = Array.map Fitness.genome gs in
  let batch1 = Fitness.population ~domains:1 gs in
  let batch4 = Fitness.population ~domains:4 gs in
  check_bool "population = per-genome map" true (batch1 = single);
  check_bool "independent of domains" true (batch1 = batch4)

let test_fitness_population_subranges () =
  (* two wide genomes at domains=4 force the (genome, subrange) split:
     each 2^13 sweep is cut up and the per-genome counts summed back,
     which must be invisible in the results *)
  let rng = Xoshiro.of_seed 11 in
  let gs = Array.init 2 (fun _ -> Genome.random rng ~wires:13 ~depth:3 ()) in
  let single = Array.map Fitness.genome gs in
  check_bool "subrange-split population = per-genome map" true
    (Fitness.population ~domains:4 gs = single)

let test_fitness_population_sample () =
  let rng = Xoshiro.of_seed 23 in
  let gs = Array.init 33 (fun _ -> Genome.random rng ~wires:9 ~depth:4 ()) in
  let masks = Array.init 500 (fun _ -> Xoshiro.int rng ~bound:(1 lsl 9)) in
  let single = Array.map (fun g -> Fitness.sample g ~masks) gs in
  check_bool "population_sample = per-genome sample" true
    (Fitness.population_sample ~domains:1 gs ~masks = single);
  check_bool "independent of domains" true
    (Fitness.population_sample ~domains:3 gs ~masks = single);
  (* the wide path must agree with the chunked 63-lane fold *)
  let narrow g =
    Bitslice.count_sorted_masks (Compiled.of_network (Genome.to_network g)) masks
  in
  check_bool "wide sample = 63-lane count" true
    (single = Array.map narrow gs)

(* --- shared lane-packed kernel --- *)

let test_fold_masks_covers_all () =
  let nw = Bitonic.network ~n:8 in
  let c = Compiled.of_network nw in
  let masks = Array.init 256 (fun t -> t) in
  let seen =
    Bitslice.fold_masks c masks ~init:0 (* chunks tile the input *)
      ~f:(fun acc ~off out ->
        check_int "chunk starts where previous ended" acc off;
        acc + Array.length out)
  in
  check_int "every mask evaluated once" 256 seen

let test_count_sorted_consistency () =
  let rng = Xoshiro.of_seed 11 in
  for _ = 1 to 20 do
    let g = Genome.random rng ~wires:7 ~depth:3 ~density:0.5 () in
    let c = Compiled.of_network (Genome.to_network g) in
    let total = 1 lsl 7 in
    let sorted = Bitslice.count_sorted_range c ~lo:0 ~hi:total in
    let unsorted = Bitslice.count_unsorted c in
    check_int "sorted + unsorted = 2^n" total (sorted + unsorted);
    let masks = Array.init total (fun t -> t) in
    check_int "count_sorted_masks agrees" sorted
      (Bitslice.count_sorted_masks c masks)
  done

(* --- generational driver --- *)

let digest_of_run ?checkpoint ?resume cfg =
  let r = Evolve.run ?checkpoint ?resume cfg in
  (Evolve.population_digest r.Evolve.population, r)

let test_evolve_deterministic () =
  let cfg =
    { (Evolve.default_config ~wires:6 ~depth:5) with Evolve.pop = 64; gens = 8 }
  in
  let d1, r1 = digest_of_run cfg in
  let d2, r2 = digest_of_run cfg in
  check_string "same seed, same population" d1 d2;
  check_bool "same trajectory" true (r1.Evolve.found_at = r2.Evolve.found_at);
  let d3, _ = digest_of_run { cfg with Evolve.seed = 2 } in
  check_bool "different seed, different population" true (d1 <> d3)

let test_evolve_domains_independent () =
  let cfg =
    { (Evolve.default_config ~wires:6 ~depth:5) with
      Evolve.pop = 64;
      gens = 6;
      domains = 1;
    }
  in
  let d1, _ = digest_of_run cfg in
  let d4, _ = digest_of_run { cfg with Evolve.domains = 4 } in
  check_string "domains only parallelize fitness" d1 d4

let test_evolve_finds_small_sorters () =
  List.iter
    (fun (n, pop) ->
      let depth = Option.get (Evolve.known_optimal_depth n) in
      let cfg =
        { (Evolve.default_config ~wires:n ~depth) with
          Evolve.pop;
          gens = 300;
        }
      in
      let r = Evolve.run cfg in
      check_bool (Printf.sprintf "n=%d depth-optimal sorter found" n) true
        (r.Evolve.found_at <> None);
      check_bool "witness verifies" true
        (Zero_one.is_sorting_network (Genome.to_network r.Evolve.best)))
    [ (4, 64); (5, 256); (6, 512) ]

let with_temp_ckpt f =
  let path = Filename.temp_file "snlb_evolve_test" ".ckpt" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".bak"; path ^ ".tmp" ])
    (fun () -> f path)

let test_evolve_resume_byte_identical () =
  (* n=7 at a small population takes >5 generations, leaving room for
     the kill-gen fault to land before discovery *)
  let cfg =
    { (Evolve.default_config ~wires:7 ~depth:6) with
      Evolve.pop = 64;
      gens = 40;
    }
  in
  let full_digest, full = digest_of_run cfg in
  with_temp_ckpt @@ fun path ->
  (match Fault.set (Some "kill-gen:0.5:1") with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let interrupted =
    Fun.protect
      ~finally:(fun () -> ignore (Fault.set None))
      (fun () -> Evolve.run ~checkpoint:(path, 0.) cfg)
  in
  check_bool "fault interrupted the run" true interrupted.Evolve.interrupted;
  check_bool "stopped before the cap" true
    (interrupted.Evolve.generations < full.Evolve.generations);
  let resumed_digest, resumed =
    digest_of_run ~checkpoint:(path, 0.) ~resume:true cfg
  in
  check_bool "resume completed" true (not resumed.Evolve.interrupted);
  check_string "resumed population is byte-identical" full_digest
    resumed_digest;
  check_bool "same outcome" true
    (full.Evolve.found_at = resumed.Evolve.found_at)

let test_evolve_resume_rejects_mismatch () =
  let cfg =
    { (Evolve.default_config ~wires:6 ~depth:5) with Evolve.pop = 32; gens = 4 }
  in
  with_temp_ckpt @@ fun path ->
  ignore (Evolve.run ~checkpoint:(path, 0.) cfg);
  (* a config with a different width must not adopt the snapshot; it
     degrades to a fresh deterministic run *)
  let other = { cfg with Evolve.wires = 7; depth = 6 } in
  let d_fresh, _ = digest_of_run other in
  let d_resumed, _ = digest_of_run ~checkpoint:(path, 0.) ~resume:true other in
  check_string "incompatible snapshot ignored" d_fresh d_resumed

let test_known_optimal_depths () =
  List.iter
    (fun (n, d) ->
      check_bool
        (Printf.sprintf "optimal depth n=%d" n)
        true
        (Evolve.known_optimal_depth n = Some d))
    [ (2, 1); (3, 3); (4, 3); (5, 5); (6, 5); (7, 6); (8, 6); (16, 9) ];
  check_bool "out of range" true (Evolve.known_optimal_depth 17 = None)

(* --- differential fuzzer --- *)

let test_fuzz_clean_run () =
  let r = Fuzz.run ~count:400 ~seconds:600. ~seed:5 () in
  check_int "checked the requested count" 400 r.Fuzz.checked;
  check_int "no disagreements" 0 (List.length r.Fuzz.disagreements)

let test_fuzz_genome_at_replayable () =
  let a = Fuzz.genome_at ~seed:5 ~index:3 in
  let b = Fuzz.genome_at ~seed:5 ~index:3 in
  check_bool "replay is deterministic" true (Genome.equal a b);
  let c = Fuzz.genome_at ~seed:5 ~index:4 in
  check_bool "indices differ" true (not (Genome.equal a c))

let test_fuzz_check_accepts_sorters () =
  List.iter
    (fun nw ->
      let g =
        match
          Genome.of_string
            (Printf.sprintf "%d %d\n%s" (Network.wires nw)
               (List.length (Network.levels nw))
               (String.concat "\n"
                  (List.map
                     (fun (l : Network.level) ->
                       String.concat " "
                         (List.filter_map
                            (fun gate ->
                              match gate with
                              | Gate.Compare { lo; hi } ->
                                  Some (Printf.sprintf "%d,%d" lo hi)
                              | Gate.Exchange _ -> None)
                            l.Network.gates))
                     (Network.levels nw))))
        with
        | Ok g -> g
        | Error e -> Alcotest.fail e
      in
      match Fuzz.check_genome g with
      | Ok () -> ()
      | Error (kind, detail) ->
          Alcotest.fail (Printf.sprintf "%s: %s" kind detail))
    [ Odd_even_merge.network ~n:8; Bitonic.network ~n:4 ]

let test_fuzz_minimize () =
  let rng = Xoshiro.of_seed 23 in
  let g = Genome.random rng ~wires:6 ~depth:4 ~density:0.9 () in
  (* a synthetic monotone failure: "has at least 3 comparators" *)
  let fails g = Genome.size g >= 3 in
  let m = Fuzz.minimize g ~fails in
  check_bool "still fails" true (fails m);
  check_int "1-minimal under comparator removal" 3 (Genome.size m)

let () =
  Alcotest.run "evolve"
    [ ( "genome",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_random_valid;
            qcheck_mutate_valid;
            qcheck_crossover_valid;
            qcheck_repair_no_dead;
            qcheck_repair_extensional;
            qcheck_repair_grow_valid;
            qcheck_string_roundtrip ] );
      ( "fitness",
        [ Alcotest.test_case "sorter maxes out" `Quick test_fitness_sorter;
          Alcotest.test_case "empty network baseline" `Quick test_fitness_empty;
          Alcotest.test_case "population kernel" `Quick
            test_fitness_population_matches;
          Alcotest.test_case "population subrange split" `Quick
            test_fitness_population_subranges;
          Alcotest.test_case "population_sample wide path" `Quick
            test_fitness_population_sample;
          Alcotest.test_case "fold_masks tiles the input" `Quick
            test_fold_masks_covers_all;
          Alcotest.test_case "count_sorted consistency" `Quick
            test_count_sorted_consistency ] );
      ( "driver",
        [ Alcotest.test_case "deterministic under seed" `Quick
            test_evolve_deterministic;
          Alcotest.test_case "independent of domains" `Quick
            test_evolve_domains_independent;
          Alcotest.test_case "rediscovers optimal depths n=4..6" `Slow
            test_evolve_finds_small_sorters;
          Alcotest.test_case "kill-gen resume is byte-identical" `Quick
            test_evolve_resume_byte_identical;
          Alcotest.test_case "incompatible snapshot rejected" `Quick
            test_evolve_resume_rejects_mismatch;
          Alcotest.test_case "known optimal depth table" `Quick
            test_known_optimal_depths ] );
      ( "fuzz",
        [ Alcotest.test_case "400 seeded networks run clean" `Slow
            test_fuzz_clean_run;
          Alcotest.test_case "indices replay" `Quick
            test_fuzz_genome_at_replayable;
          Alcotest.test_case "real sorters pass every oracle" `Quick
            test_fuzz_check_accepts_sorters;
          Alcotest.test_case "minimize reaches 1-minimality" `Quick
            test_fuzz_minimize ] ) ]
