(* End-to-end integration: the adversary's verdicts must be consistent
   with ground-truth sorting-ness established independently by the 0-1
   principle, and its certificates must validate against real circuits
   in both network models. *)

let check_bool = Alcotest.(check bool)

let test_adversary_soundness_vs_zero_one () =
  (* If the adversary survives all blocks with |D| >= 2, the network is
     NOT a sorting network — confirmed by the exact 0-1 check. *)
  List.iter
    (fun seed ->
      List.iter
        (fun (n, blocks) ->
          let rng = Xoshiro.of_seed seed in
          let d = Bitops.log2_exact n in
          let prog = Shuffle_net.random_program rng ~n ~stages:(blocks * d) in
          let it = Shuffle_net.to_iterated prog in
          let r = Theorem41.run it in
          let nw = Iterated.to_network it in
          if r.Theorem41.exhausted && List.length r.Theorem41.final_m_set >= 2 then
            check_bool
              (Printf.sprintf "seed %d n=%d: adversary win implies not sorting" seed n)
              false
              (Zero_one.is_sorting_network nw))
        [ (8, 1); (8, 2); (16, 1); (16, 2); (16, 3) ])
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

let test_sorters_defeat_adversary () =
  (* Completeness on real sorters: a sorting network must defeat the
     adversary (|D| = 1 before or at the final block). *)
  List.iter
    (fun n ->
      let it = Bitonic.as_iterated ~n in
      check_bool "bitonic verified" true
        (n > 16 || Zero_one.is_sorting_network (Iterated.to_network it));
      let r = Theorem41.run it in
      check_bool "adversary defeated" true
        ((not r.Theorem41.exhausted) || List.length r.Theorem41.final_m_set < 2))
    [ 8; 16; 32; 64 ]

let test_certificate_against_both_models () =
  List.iter
    (fun seed ->
      let n = 64 in
      let rng = Xoshiro.of_seed seed in
      let prog = Shuffle_net.random_program rng ~n ~stages:12 in
      let it = Shuffle_net.to_iterated prog in
      let r = Theorem41.run it in
      match Certificate.of_pattern r.Theorem41.final_pattern with
      | None -> Alcotest.fail "expected survival on 2 blocks at n=64"
      | Some cert ->
          List.iter
            (fun (label, nw) ->
              match Certificate.validate nw cert with
              | Ok () -> ()
              | Error e -> Alcotest.fail (label ^ ": " ^ e))
            [ ("iterated", Iterated.to_network it);
              ("register", Register_model.to_network prog);
              ("flattened", Network.flatten (Register_model.to_network prog)) ])
    [ 11; 12; 13; 14; 15 ]

let test_fooling_pair_breaks_sorting_claim () =
  (* Take a sorter, remove its last block: the adversary's fooling pair
     must expose the hole that Zero_one also finds. *)
  let n = 32 in
  let d = 5 in
  let prog = Bitonic.shuffle_program ~n in
  let stages = List.filteri (fun i _ -> i < (d - 1) * d) (Register_model.stages prog) in
  let truncated = Register_model.create ~n stages in
  let it = Shuffle_net.to_iterated truncated in
  let r = Theorem41.run it in
  check_bool "adversary survives the truncated sorter" true
    (r.Theorem41.exhausted && List.length r.Theorem41.final_m_set >= 2);
  match Certificate.of_pattern r.Theorem41.final_pattern with
  | None -> Alcotest.fail "no certificate"
  | Some cert -> (
      let nw = Register_model.to_network truncated in
      match Certificate.validate nw cert with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)

let test_benes_glues_iterated_blocks () =
  (* Inter-block permutations realised by Benes exchange levels leave
     the adversary's analysis unchanged: exchange elements never
     collide, so a (perm, block) network and a (benes-network, block)
     network yield the same fooling behaviour. *)
  let n = 16 in
  let rng = Xoshiro.of_seed 99 in
  let p = Perm.random rng n in
  let body = Butterfly.ascending ~levels:4 in
  let with_perm =
    Iterated.to_network
      (Iterated.create ~n
         [ { Iterated.pre = None; body }; { Iterated.pre = Some p; body } ])
  in
  let with_benes =
    let b1 = Reverse_delta.to_network ~wires:n body in
    Network.serial (Network.serial b1 (Benes.route p)) b1
  in
  let rng2 = Xoshiro.of_seed 100 in
  for _ = 1 to 100 do
    let input = Workload.random_permutation rng2 ~n in
    Alcotest.(check (array int)) "same function"
      (Network.eval with_perm input)
      (Network.eval with_benes input)
  done

let test_cli_style_pipeline () =
  (* mirror of the `snlb certify` code path *)
  let n = 128 in
  let rng = Xoshiro.of_seed 2718 in
  let prog = Shuffle_net.random_program rng ~n ~stages:21 in
  let it = Shuffle_net.to_iterated prog in
  let r = Theorem41.run it in
  check_bool "reports for every processed block" true
    (List.length r.Theorem41.reports >= r.Theorem41.survived);
  List.iter
    (fun (b : Theorem41.block_report) ->
      check_bool "B <= A" true (b.Theorem41.b_size <= b.Theorem41.a_size);
      check_bool "D <= B" true (b.Theorem41.d_size <= b.Theorem41.b_size);
      check_bool "bound sane" true (b.Theorem41.paper_bound <= float_of_int n))
    r.Theorem41.reports

let qcheck_soundness_small =
  QCheck.Test.make ~name:"adversary win => not sorting (random n=8)" ~count:80
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let n = 8 in
      let rng = Xoshiro.of_seed seed in
      let blocks = 1 + Xoshiro.int rng ~bound:3 in
      let prog = Shuffle_net.random_program rng ~n ~stages:(blocks * 3) in
      let it = Shuffle_net.to_iterated prog in
      let r = Theorem41.run ~k:2 it in
      let nw = Iterated.to_network it in
      if r.Theorem41.exhausted && List.length r.Theorem41.final_m_set >= 2 then
        not (Zero_one.is_sorting_network nw)
      else true)

let () =
  Alcotest.run "integration"
    [ ( "end to end",
        [ Alcotest.test_case "adversary soundness vs 0-1 ground truth" `Quick
            test_adversary_soundness_vs_zero_one;
          Alcotest.test_case "sorters defeat the adversary" `Quick
            test_sorters_defeat_adversary;
          Alcotest.test_case "certificates valid in all models" `Quick
            test_certificate_against_both_models;
          Alcotest.test_case "truncated sorter exposed" `Quick
            test_fooling_pair_breaks_sorting_claim;
          Alcotest.test_case "Benes-glued blocks" `Quick test_benes_glues_iterated_blocks;
          Alcotest.test_case "CLI pipeline invariants" `Quick test_cli_style_pipeline ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ qcheck_soundness_small ]) ]
