(* Tests for the domain fan-out and its use in Zero_one. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_map_ranges_covers () =
  List.iter
    (fun domains ->
      let results =
        Par.map_ranges ~domains ~lo:3 ~hi:40 (fun ~lo ~hi -> (lo, hi))
      in
      (* contiguous, ordered, covering *)
      let rec walk expect = function
        | [] -> check_int "ends at hi" 40 expect
        | (lo, hi) :: rest ->
            check_int "contiguous" expect lo;
            check_bool "nonempty or single" true (hi >= lo);
            walk hi rest
      in
      walk 3 results)
    [ 1; 2; 3; 7; 64 ]

let test_map_ranges_empty () =
  let results = Par.map_ranges ~domains:4 ~lo:5 ~hi:5 (fun ~lo ~hi -> hi - lo) in
  Alcotest.(check (list int)) "one empty chunk" [ 0 ] results

let test_map_ranges_sums () =
  let total ~domains =
    Par.map_ranges ~domains ~lo:0 ~hi:1000 (fun ~lo ~hi ->
        let s = ref 0 in
        for i = lo to hi - 1 do
          s := !s + i
        done;
        !s)
    |> List.fold_left ( + ) 0
  in
  check_int "sequential = parallel" (total ~domains:1) (total ~domains:5)

let test_map_list_order () =
  let xs = List.init 37 (fun i -> i) in
  Alcotest.(check (list int)) "order preserved"
    (List.map (fun x -> x * x) xs)
    (Par.map_list ~domains:4 (fun x -> x * x) xs)

let test_invalid_args () =
  check_bool "lo > hi" true
    (match Par.map_ranges ~domains:2 ~lo:5 ~hi:4 (fun ~lo:_ ~hi:_ -> ()) with
     | exception Invalid_argument _ -> true
     | _ -> false);
  check_bool "domains 0" true
    (match Par.map_ranges ~domains:0 ~lo:0 ~hi:4 (fun ~lo:_ ~hi:_ -> ()) with
     | exception Invalid_argument _ -> true
     | _ -> false)

exception Boom of int

(* Regression: a raise in the calling-domain chunk used to skip the
   joins for every spawned domain (leaked domains, possible hang at
   exit). All spawned chunks must run to completion and be joined
   before the exception propagates. *)
let test_map_ranges_first_chunk_raises () =
  let ran = Atomic.make 0 in
  (match
     Par.map_ranges ~domains:4 ~lo:0 ~hi:400 (fun ~lo ~hi:_ ->
         if lo = 0 then raise (Boom lo) else Atomic.incr ran)
   with
  | _ -> Alcotest.fail "expected Boom from the first chunk"
  | exception Boom 0 -> ());
  check_int "every spawned chunk still ran and was joined" 3 (Atomic.get ran)

let test_map_ranges_spawned_chunk_raises () =
  let ran = Atomic.make 0 in
  (match
     Par.map_ranges ~domains:4 ~lo:0 ~hi:400 (fun ~lo ~hi:_ ->
         if lo = 200 then raise (Boom lo) else Atomic.incr ran)
   with
  | _ -> Alcotest.fail "expected Boom from a spawned chunk"
  | exception Boom 200 -> ());
  check_int "the other chunks all completed" 3 (Atomic.get ran)

let test_map_ranges_first_failure_wins () =
  (* several failing chunks: the first in range order is re-raised *)
  (match
     Par.map_ranges ~domains:4 ~lo:0 ~hi:400 (fun ~lo ~hi:_ ->
         if lo >= 100 then raise (Boom lo))
   with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom b -> check_int "lowest failing chunk wins" 100 b)

let test_recommended_domains_env () =
  let with_env v f =
    Unix.putenv "SNLB_DOMAINS" v;
    Fun.protect ~finally:(fun () -> Unix.putenv "SNLB_DOMAINS" "") f
  in
  with_env "3" (fun () ->
      check_int "override honored" 3 (Par.recommended_domains ()));
  (* the clamp boundaries themselves are valid and warning-free *)
  with_env "1" (fun () ->
      check_int "lower boundary honored" 1 (Par.recommended_domains ()));
  with_env "64" (fun () ->
      check_int "upper boundary honored" 64 (Par.recommended_domains ()));
  with_env "999" (fun () ->
      check_int "clamped above" 64 (Par.recommended_domains ()));
  with_env "0" (fun () ->
      check_int "clamped below" 1 (Par.recommended_domains ()));
  with_env "-7" (fun () ->
      check_int "negative clamped" 1 (Par.recommended_domains ()));
  (* non-numeric values fall back to the hardware heuristic *)
  with_env "lots" (fun () ->
      let d = Par.recommended_domains () in
      check_bool "fallback in range" true (d >= 1 && d <= 64))

let test_zero_one_domains_agree () =
  List.iter
    (fun nw ->
      let seq = Zero_one.is_sorting_network ~domains:1 nw in
      let par = Zero_one.is_sorting_network ~domains:4 nw in
      check_bool "verdicts agree" true (seq = par);
      check_int "counts agree"
        (Zero_one.unsorted_count ~domains:1 nw)
        (Zero_one.unsorted_count ~domains:4 nw))
    [ Bitonic.network ~n:8;
      Pratt.network ~n:11;
      Network.of_gate_levels ~wires:6 [ [ Gate.compare_up 0 1 ] ] ]

let test_zero_one_domains_witness () =
  let broken = Network.of_gate_levels ~wires:8 [ [ Gate.compare_up 0 7 ] ] in
  match Zero_one.failing_input ~domains:3 broken with
  | None -> Alcotest.fail "expected a witness"
  | Some w ->
      check_bool "unsorted" false (Sortedness.is_sorted (Network.eval broken w))

let prop_domains_equal =
  QCheck.Test.make ~name:"packed verdicts independent of domain count" ~count:40
    QCheck.(pair (int_range 0 100_000) (int_range 1 6))
    (fun (seed, domains) ->
      let rng = Xoshiro.of_seed seed in
      let prog = Shuffle_net.random_program rng ~n:8 ~stages:6 in
      let nw = Register_model.to_network prog in
      Zero_one.unsorted_count ~domains:1 nw = Zero_one.unsorted_count ~domains nw)

let () =
  Alcotest.run "parallel"
    [ ( "par",
        [ Alcotest.test_case "ranges cover" `Quick test_map_ranges_covers;
          Alcotest.test_case "empty range" `Quick test_map_ranges_empty;
          Alcotest.test_case "sums agree" `Quick test_map_ranges_sums;
          Alcotest.test_case "map_list order" `Quick test_map_list_order;
          Alcotest.test_case "argument validation" `Quick test_invalid_args;
          Alcotest.test_case "raise in first chunk joins all" `Quick
            test_map_ranges_first_chunk_raises;
          Alcotest.test_case "raise in spawned chunk propagates" `Quick
            test_map_ranges_spawned_chunk_raises;
          Alcotest.test_case "first failure in range order wins" `Quick
            test_map_ranges_first_failure_wins;
          Alcotest.test_case "SNLB_DOMAINS override" `Quick
            test_recommended_domains_env ] );
      ( "zero-one",
        [ Alcotest.test_case "domains agree" `Quick test_zero_one_domains_agree;
          Alcotest.test_case "witness under domains" `Quick test_zero_one_domains_witness ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_domains_equal ]) ]
