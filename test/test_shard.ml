(* Shard-coordinator tests: the supervisor's failure model
   (crash / stall / corruption / poison / drain), and — the part that
   matters — decision identity: the sharded search and the island
   evolve must produce byte-identical outcomes to their single-process
   references, including when every worker attempt is sabotaged. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let with_fault spec f =
  match Fault.set (Some spec) with
  | Error e -> Alcotest.fail ("fault spec rejected: " ^ e)
  | Ok () -> Fun.protect ~finally:(fun () -> ignore (Fault.set None)) f

let temp_dir () =
  let path = Filename.temp_file "snlb-shard" "" in
  Sys.remove path;
  path

let rm_rf dir =
  (match Sys.readdir dir with
  | entries ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        entries
  | exception Sys_error _ -> ());
  try Sys.rmdir dir with Sys_error _ -> ()

let with_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* fast timeouts so sabotaged runs stay test-sized *)
let quick_config ~dir =
  { (Shard.default_config ~dir) with
    Shard.max_attempts = 3;
    backoff_base = 0.01;
    backoff_cap = 0.05;
    heartbeat_interval = 0.05;
    heartbeat_timeout = 0.4;
    grace = 0.2;
  }

(* --- the supervisor --- *)

let units_of n = List.init n (fun i -> (Printf.sprintf "u%d" i, string_of_int i))

let double ~id:_ ~payload = string_of_int (2 * int_of_string payload)

let expect_doubled what n = function
  | Shard.Completed results ->
      check_int (what ^ ": all units") n (List.length results);
      List.iteri
        (fun i (id, r) ->
          check_string (what ^ ": order") (Printf.sprintf "u%d" i) id;
          check_string (what ^ ": payload") (string_of_int (2 * i)) r)
        results
  | Shard.Quarantined ids ->
      Alcotest.failf "%s: quarantined %s" what (String.concat "," ids)
  | Shard.Cancelled -> Alcotest.failf "%s: cancelled" what

let test_supervisor_clean () =
  with_dir @@ fun dir ->
  let config = { (quick_config ~dir) with Shard.workers = 2 } in
  expect_doubled "clean" 5
    (Shard.run config ~kind:"t" ~units:(units_of 5) ~worker:double)

let test_supervisor_bad_ids () =
  with_dir @@ fun dir ->
  let config = quick_config ~dir in
  let boom units =
    match Shard.run config ~kind:"t" ~units ~worker:double with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "bad unit ids accepted"
  in
  boom [ ("", "x") ];
  boom [ ("a/b", "x") ];
  boom [ ("dup", "x"); ("dup", "y") ]

let sabotage_test what spec =
  with_dir @@ fun dir ->
  let config = { (quick_config ~dir) with Shard.workers = 2 } in
  with_fault spec @@ fun () ->
  (* prob 1.0: every unit's first attempt is sabotaged, every retry is
     clean — the run must still complete with correct results *)
  expect_doubled what 4
    (Shard.run config ~kind:"t" ~units:(units_of 4) ~worker:double)

let test_supervisor_kill () = sabotage_test "kill-worker" "kill-worker"
let test_supervisor_stall () = sabotage_test "stall-worker" "stall-worker"
let test_supervisor_corrupt () = sabotage_test "corrupt-result" "corrupt-result"

let test_supervisor_quarantine () =
  with_dir @@ fun dir ->
  let config = { (quick_config ~dir) with Shard.workers = 2 } in
  let worker ~id ~payload =
    if id = "u1" then failwith "poison" else double ~id ~payload
  in
  match Shard.run config ~kind:"t" ~units:(units_of 3) ~worker with
  | Shard.Quarantined [ "u1" ] -> ()
  | Shard.Quarantined ids ->
      Alcotest.failf "wrong quarantine set: %s" (String.concat "," ids)
  | Shard.Completed _ -> Alcotest.fail "poison unit completed"
  | Shard.Cancelled -> Alcotest.fail "cancelled"

let test_supervisor_cancel () =
  with_dir @@ fun dir ->
  let config = quick_config ~dir in
  let cancel = Cancel.create () in
  Cancel.cancel cancel;
  match Shard.run ~cancel config ~kind:"t" ~units:(units_of 3) ~worker:double with
  | Shard.Cancelled -> ()
  | _ -> Alcotest.fail "pre-cancelled run must return Cancelled"

(* --- sharded search: decision identity --- *)

let stats_agree what (a : Driver.stats) (b : Driver.stats) =
  check_int (what ^ ": nodes") a.Driver.nodes b.Driver.nodes;
  check_int (what ^ ": pruned") a.Driver.pruned b.Driver.pruned;
  check_int (what ^ ": deduped") a.Driver.deduped b.Driver.deduped;
  check_int (what ^ ": subsumed") a.Driver.subsumed b.Driver.subsumed;
  check_int (what ^ ": redundant") a.Driver.redundant b.Driver.redundant;
  check_bool (what ^ ": frontier sizes") true
    (a.Driver.frontier_sizes = b.Driver.frontier_sizes);
  check_int (what ^ ": peak frontier") a.Driver.peak_frontier
    b.Driver.peak_frontier;
  check_int (what ^ ": completed levels") a.Driver.completed_levels
    b.Driver.completed_levels

let outcomes_agree what single sharded =
  match (single, sharded) with
  | ( Driver.Sorted { depth = d1; moves = m1; stats = s1 },
      Driver.Sorted { depth = d2; moves = m2; stats = s2 } ) ->
      check_int (what ^ ": depth") d1 d2;
      check_bool (what ^ ": witness") true (m1 = m2);
      stats_agree what s1 s2
  | Driver.Unsorted a, Driver.Unsorted b
  | Driver.Inconclusive a, Driver.Inconclusive b
  | Driver.Interrupted a, Driver.Interrupted b ->
      stats_agree what a b
  | _ -> Alcotest.failf "%s: outcome constructors differ" what

let sharded_outcome ?budget ~shards ~dir ?(max_depth = 6) ~n () =
  match
    Shard_search.run ?budget ~config:(quick_config ~dir) ~shards ~dir
      ~max_depth
      (Driver.network_system ~n ())
  with
  | Ok outcome -> outcome
  | Error e -> Alcotest.failf "sharded search failed: %s" e

let test_search_identity () =
  let single = Driver.optimal_depth ~engine:`Legacy ~max_depth:6 ~n:6 () in
  List.iter
    (fun shards ->
      with_dir @@ fun dir ->
      outcomes_agree
        (Printf.sprintf "n=6 shards=%d" shards)
        single
        (sharded_outcome ~shards ~dir ~n:6 ()))
    [ 1; 2; 3; 5 ]

let test_search_identity_wider () =
  (* the acceptance range: n=7 and n=8 must shard decision-identically
     too (n=8 is the registry-optimal 6-level case, ~6k nodes) *)
  List.iter
    (fun n ->
      let single = Driver.optimal_depth ~engine:`Legacy ~max_depth:6 ~n () in
      with_dir @@ fun dir ->
      outcomes_agree
        (Printf.sprintf "n=%d shards=4" n)
        single
        (sharded_outcome ~shards:4 ~dir ~n ()))
    [ 7; 8 ]

let test_search_identity_budget () =
  (* a node budget that trips mid-search must trip identically *)
  let budget = { Driver.max_nodes = 120; max_seconds = None } in
  let single =
    Driver.optimal_depth ~engine:`Legacy ~budget ~max_depth:6 ~n:6 ()
  in
  (match single with
  | Driver.Inconclusive _ -> ()
  | _ -> Alcotest.fail "expected the reference run to trip its budget");
  with_dir @@ fun dir ->
  outcomes_agree "n=6 budget trip" single
    (sharded_outcome ~budget ~shards:3 ~dir ~n:6 ())

let test_search_identity_under_faults () =
  (* kill-worker at every shard: prob 1.0 sabotages each unit's first
     attempt, so every worker index is killed in turn; ditto the stall
     and corruption points. The merged outcome must not move. *)
  let single = Driver.optimal_depth ~engine:`Legacy ~max_depth:6 ~n:6 () in
  List.iter
    (fun spec ->
      with_dir @@ fun dir ->
      with_fault spec @@ fun () ->
      outcomes_agree ("n=6 under " ^ spec) single
        (sharded_outcome ~shards:3 ~dir ~n:6 ()))
    [ "kill-worker"; "stall-worker"; "corrupt-result" ];
  (* randomized seeded kill schedules: only some attempts die *)
  List.iter
    (fun seed ->
      with_dir @@ fun dir ->
      with_fault (Printf.sprintf "kill-worker:0.5:%d" seed) @@ fun () ->
      outcomes_agree
        (Printf.sprintf "n=6 under seeded kills (seed %d)" seed)
        single
        (sharded_outcome ~shards:3 ~dir ~n:6 ()))
    [ 1; 7; 2026 ]

(* --- island evolve: determinism and fault identity --- *)

let evolve_config =
  { (Evolve.default_config ~wires:6 ~depth:5) with
    Evolve.pop = 32;
    gens = 8;
    seed = 11;
  }

let digests r =
  Array.to_list (Array.map Evolve.population_digest r.Shard_islands.populations)

let islands_outcome ~mode ~dir ?(islands = 3) ?(epoch = 3) ?(migrants = 2) () =
  match
    Shard_islands.run ~config:(quick_config ~dir) ~mode ~dir ~islands ~epoch
      ~migrants evolve_config
  with
  | Ok r -> r
  | Error e -> Alcotest.failf "islands run failed: %s" e

let islands_agree what a b =
  check_bool (what ^ ": found") true (a.Shard_islands.found = b.Shard_islands.found);
  check_int (what ^ ": best fitness") a.Shard_islands.best_fitness
    b.Shard_islands.best_fitness;
  check_string (what ^ ": best genome") (Genome.to_string a.Shard_islands.best)
    (Genome.to_string b.Shard_islands.best);
  check_int (what ^ ": generations") a.Shard_islands.generations
    b.Shard_islands.generations;
  check_bool (what ^ ": digests") true (digests a = digests b)

let test_islands_single_matches_plain () =
  (* one island, no migration: the plain generational run, reproduced
     through the fork-and-merge machinery *)
  let plain = Evolve.run evolve_config in
  with_dir @@ fun dir ->
  let r = islands_outcome ~mode:`Processes ~dir ~islands:1 ~migrants:0 () in
  check_bool "found agrees" true
    (r.Shard_islands.found
    = Option.map (fun g -> (g, 0)) plain.Evolve.found_at);
  check_int "fitness agrees" plain.Evolve.best_fitness
    r.Shard_islands.best_fitness;
  check_bool "population agrees" true
    (digests r = [ Evolve.population_digest plain.Evolve.population ])

let test_islands_processes_match_inline () =
  with_dir @@ fun dir ->
  let inline = islands_outcome ~mode:`Inline ~dir () in
  with_dir @@ fun dir ->
  let procs = islands_outcome ~mode:`Processes ~dir () in
  islands_agree "inline vs processes" inline procs

let test_islands_identity_under_faults () =
  with_dir @@ fun dir ->
  let reference = islands_outcome ~mode:`Inline ~dir () in
  List.iter
    (fun spec ->
      with_dir @@ fun dir ->
      with_fault spec @@ fun () ->
      islands_agree ("islands under " ^ spec) reference
        (islands_outcome ~mode:`Processes ~dir ()))
    [ "kill-worker"; "stall-worker"; "corrupt-result"; "kill-worker:0.5:3" ]

let () =
  Alcotest.run "shard"
    [ ( "supervisor",
        [ Alcotest.test_case "clean pool" `Quick test_supervisor_clean;
          Alcotest.test_case "unit-id validation" `Quick test_supervisor_bad_ids;
          Alcotest.test_case "kill-worker retries" `Quick test_supervisor_kill;
          Alcotest.test_case "stall-worker reaped" `Quick test_supervisor_stall;
          Alcotest.test_case "corrupt-result rejected" `Quick
            test_supervisor_corrupt;
          Alcotest.test_case "poison unit quarantined" `Quick
            test_supervisor_quarantine;
          Alcotest.test_case "cancel drains" `Quick test_supervisor_cancel ] );
      ( "search",
        [ Alcotest.test_case "decision identity (1/2/3/5 shards)" `Quick
            test_search_identity;
          Alcotest.test_case "decision identity at n=7,8" `Quick
            test_search_identity_wider;
          Alcotest.test_case "budget-trip identity" `Quick
            test_search_identity_budget;
          Alcotest.test_case "identity under every fault point" `Quick
            test_search_identity_under_faults ] );
      ( "islands",
        [ Alcotest.test_case "islands=1 matches plain evolve" `Quick
            test_islands_single_matches_plain;
          Alcotest.test_case "processes match inline" `Quick
            test_islands_processes_match_inline;
          Alcotest.test_case "identity under every fault point" `Quick
            test_islands_identity_under_faults ] );
    ]
