(* Tests for the compiled evaluation engine: the scalar compiled
   executor, the 63-lane bit-sliced 0-1 executor and the structural
   compile cache, all cross-checked against the interpretive
   Network.eval (the reference semantics). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- randomized networks: gates (both orientations), exchanges, pre
   permutations, and gate-free permutation levels --- *)

let random_network rng =
  let n = 2 + Xoshiro.int rng ~bound:9 in
  let nlevels = Xoshiro.int rng ~bound:7 in
  let levels =
    List.init nlevels (fun _ ->
        let pre =
          if Xoshiro.int rng ~bound:3 = 0 then Some (Perm.random rng n)
          else None
        in
        let gates =
          if Xoshiro.int rng ~bound:5 = 0 then [] (* permutation-only level *)
          else begin
            let order = Perm.to_array (Perm.random rng n) in
            let npairs = Xoshiro.int rng ~bound:((n / 2) + 1) in
            List.init npairs (fun i ->
                let a = order.(2 * i) and b = order.((2 * i) + 1) in
                match Xoshiro.int rng ~bound:3 with
                | 0 -> Gate.compare_up a b
                | 1 -> Gate.compare_down a b
                | _ -> Gate.exchange a b)
          end
        in
        { Network.pre; gates })
  in
  Network.create ~wires:n levels

let random_input rng n =
  Array.init n (fun _ -> Xoshiro.int rng ~bound:8)

let zero_one_input n t = Array.init n (fun w -> (t lsr w) land 1)

(* --- scalar compiled eval --- *)

let prop_compiled_eval_agrees =
  QCheck.Test.make ~name:"compiled eval = Network.eval" ~count:300
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Xoshiro.of_seed seed in
      let nw = random_network rng in
      let n = Network.wires nw in
      let c = Compiled.of_network nw in
      List.for_all
        (fun () ->
          let input = random_input rng n in
          Compiled.eval c input = Network.eval nw input)
        (List.init 5 (fun _ -> ())))

let prop_compiled_shape =
  QCheck.Test.make ~name:"compiled depth/size match network" ~count:200
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Xoshiro.of_seed seed in
      let nw = random_network rng in
      let c = Compiled.of_network nw in
      Compiled.wires c = Network.wires nw
      && Compiled.depth c = Network.depth nw
      && Compiled.comparators c = Network.size nw
      && Compiled.levels c = List.length (Network.levels nw))

let prop_eval_many_agrees =
  QCheck.Test.make ~name:"eval_many = per-input eval (incl. domains)"
    ~count:100
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 3))
    (fun (seed, domains) ->
      let rng = Xoshiro.of_seed seed in
      let nw = random_network rng in
      let n = Network.wires nw in
      let c = Compiled.of_network nw in
      let inputs = Array.init 17 (fun _ -> random_input rng n) in
      let batch = Compiled.eval_many ~domains c inputs in
      Array.for_all2
        (fun out input -> out = Network.eval nw input)
        batch inputs)

(* --- bit-sliced 0-1 executor --- *)

let direct_unsorted_indices nw =
  let n = Network.wires nw in
  let bad = ref [] in
  for t = (1 lsl n) - 1 downto 0 do
    if not (Sortedness.is_sorted (Network.eval nw (zero_one_input n t))) then
      bad := t :: !bad
  done;
  !bad

let prop_bitslice_agrees =
  QCheck.Test.make ~name:"bit-sliced count/find = direct 0-1 enumeration"
    ~count:120
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Xoshiro.of_seed seed in
      let nw = random_network rng in
      let c = Compiled.of_network nw in
      let bad = direct_unsorted_indices nw in
      Bitslice.count_unsorted c = List.length bad
      && Bitslice.find_unsorted c = (match bad with [] -> None | t :: _ -> Some t))

let prop_eval_masks_agrees =
  (* arbitrary non-consecutive lane-packed masks match per-input
     Network.eval, including networks with pre permutations (output
     routing through [take]) and the sortedness-per-lane helper *)
  QCheck.Test.make ~name:"eval_masks = per-mask Network.eval" ~count:120
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Xoshiro.of_seed seed in
      let nw = random_network rng in
      let n = Network.wires nw in
      let c = Compiled.of_network nw in
      let m = 1 + Xoshiro.int rng ~bound:Bitslice.lanes in
      let masks =
        Array.init m (fun _ -> Xoshiro.int rng ~bound:(1 lsl n))
      in
      let out = Bitslice.eval_masks c masks in
      Array.for_all2
        (fun mask o ->
          let input = Array.init n (fun w -> (mask lsr w) land 1) in
          let direct = Network.eval nw input in
          let direct_mask = ref 0 in
          Array.iteri
            (fun w v -> if v = 1 then direct_mask := !direct_mask lor (1 lsl w))
            direct;
          o = !direct_mask
          && Bitslice.mask_sorted ~wires:n o = Sortedness.is_sorted direct)
        masks out)

let prop_wide_masks_agree =
  (* the >63-lane int64-block paths (transpose in, run, transpose out /
     read violations off the wire rows) are bit-identical to the
     chunked 63-lane fold, at every batch size including 0, non-block
     multiples, and networks with pre permutations and exchanges *)
  QCheck.Test.make ~name:"wide (64-lane) paths = 63-lane fold_masks"
    ~count:100
    QCheck.(pair (int_range 0 1_000_000) (int_range 0 300))
    (fun (seed, nmasks) ->
      let rng = Xoshiro.of_seed seed in
      let nw = random_network rng in
      let n = Network.wires nw in
      let c = Compiled.of_network nw in
      let masks = Array.init nmasks (fun _ -> Xoshiro.int rng ~bound:(1 lsl n)) in
      let narrow =
        Bitslice.fold_masks c masks ~init:[] ~f:(fun acc ~off:_ out ->
            List.rev_append (Array.to_list out) acc)
        |> List.rev
      in
      let scratch = Bitslice.scratch () in
      Array.to_list (Bitslice.eval_masks_wide ~scratch c masks) = narrow
      && Bitslice.count_sorted_masks_wide ~scratch c masks
         = Bitslice.count_sorted_masks c masks
      (* a fresh scratch per call changes nothing *)
      && Bitslice.count_sorted_masks_wide c masks
         = Bitslice.count_sorted_masks c masks)

let prop_bitslice_ranges_partition =
  (* arbitrary (non-lane-aligned) range splits cover exactly once *)
  QCheck.Test.make ~name:"bit-sliced range sweeps partition"
    ~count:80
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 200))
    (fun (seed, cut) ->
      let rng = Xoshiro.of_seed seed in
      let nw = random_network rng in
      let n = Network.wires nw in
      let c = Compiled.of_network nw in
      let hi = 1 lsl n in
      let mid = cut mod (hi + 1) in
      Bitslice.count_unsorted_range c ~lo:0 ~hi:mid
      + Bitslice.count_unsorted_range c ~lo:mid ~hi
      = Bitslice.count_unsorted c)

let prop_bitslice_domains_agree =
  QCheck.Test.make ~name:"bit-sliced verdicts independent of domain count"
    ~count:60
    QCheck.(pair (int_range 0 1_000_000) (int_range 2 5))
    (fun (seed, domains) ->
      let rng = Xoshiro.of_seed seed in
      let nw = random_network rng in
      let c = Compiled.of_network nw in
      Bitslice.count_unsorted ~domains c = Bitslice.count_unsorted c
      && Bitslice.is_sorting_network ~domains c
         = Bitslice.is_sorting_network c)

(* --- sorted depth: engine-backed Sort_depth vs an interpretive
   oracle (the pre-engine reference implementation) --- *)

let oracle_sorted_depth nw input =
  let target = Array.copy input in
  Array.sort compare target;
  let values = ref (Array.copy input) in
  let matches = ref [] in
  let comparator_levels = ref 0 in
  if !values = target then matches := [ 0 ];
  List.iter
    (fun lvl ->
      (match lvl.Network.pre with
      | None -> ()
      | Some p -> values := Perm.permute_array p !values);
      let has_comparator =
        List.exists Gate.is_comparator lvl.Network.gates
      in
      List.iter
        (fun g ->
          let v = !values in
          match g with
          | Gate.Compare { lo; hi } ->
              if v.(lo) > v.(hi) then begin
                let t = v.(lo) in
                v.(lo) <- v.(hi);
                v.(hi) <- t
              end
          | Gate.Exchange { a; b } ->
              let t = v.(a) in
              v.(a) <- v.(b);
              v.(b) <- t)
        lvl.Network.gates;
      if has_comparator then incr comparator_levels;
      if !values = target then matches := !comparator_levels :: !matches
      else matches := [])
    (Network.levels nw);
  match List.rev !matches with
  | first :: _ when !values = target -> Some first
  | _ -> None

let prop_sorted_depth_agrees =
  QCheck.Test.make ~name:"engine sorted_depth = interpretive oracle"
    ~count:200
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Xoshiro.of_seed seed in
      let nw = random_network rng in
      let n = Network.wires nw in
      List.for_all
        (fun input -> Sort_depth.sorted_depth nw input = oracle_sorted_depth nw input)
        (List.init 4 (fun i ->
             if i = 0 then Array.init n (fun j -> j) (* already sorted *)
             else random_input rng n)))

(* --- exhaustive agreement on every registry sorter --- *)

let registry_agreement n =
  List.iter
    (fun e ->
      let nw = e.Sorter_registry.build n in
      let c = Cache.compile nw in
      for t = 0 to (1 lsl n) - 1 do
        let input = zero_one_input n t in
        if Compiled.eval c input <> Network.eval nw input then
          Alcotest.failf "%s n=%d: compiled eval disagrees on input %d"
            e.Sorter_registry.name n t
      done;
      check_bool
        (Printf.sprintf "%s n=%d bit-sliced verdict" e.Sorter_registry.name n)
        true
        (Bitslice.is_sorting_network c);
      check_int
        (Printf.sprintf "%s n=%d unsorted count" e.Sorter_registry.name n)
        0 (Bitslice.count_unsorted c))
    Sorter_registry.all

let test_registry_n8 () = registry_agreement 8
let test_registry_n16 () = registry_agreement 16

(* --- compile cache --- *)

let test_cache_hits () =
  Cache.clear ();
  let nw = Bitonic.network ~n:8 in
  let c1 = Cache.compile nw in
  (* structurally equal but independently constructed network *)
  let c2 = Cache.compile (Bitonic.network ~n:8) in
  check_bool "same compiled object" true (c1 == c2);
  let s = Cache.stats () in
  check_int "one miss" 1 s.Cache.misses;
  check_int "one hit" 1 s.Cache.hits;
  check_int "one entry" 1 s.Cache.entries;
  let _ = Cache.compile (Bitonic.network ~n:16) in
  check_int "distinct networks get distinct entries" 2 (Cache.stats ()).Cache.entries;
  Cache.clear ();
  check_int "clear empties" 0 (Cache.stats ()).Cache.entries

let test_cache_distinguishes_structure () =
  Cache.clear ();
  (* same gates, different pre permutation: must not share an entry *)
  let gates = [ [ Gate.compare_up 0 1 ] ] in
  let plain = Network.of_gate_levels ~wires:4 gates in
  let routed =
    Network.create ~wires:4
      [ { Network.pre = Some (Perm.shuffle 4); gates = [ Gate.compare_up 0 1 ] } ]
  in
  let cp = Cache.compile plain and cr = Cache.compile routed in
  check_bool "different structures, different compiled" true (cp != cr);
  check_int "two entries" 2 (Cache.stats ()).Cache.entries

let test_cache_eviction () =
  Cache.clear ();
  Cache.set_capacity 8;
  Fun.protect
    ~finally:(fun () ->
      Cache.set_capacity 512;
      Cache.clear ())
    (fun () ->
      let hot = Bitonic.network ~n:8 in
      let c_hot = Cache.compile hot in
      (* flood with distinct single-gate networks, touching the hot
         entry between insertions so its used bit stays set *)
      for i = 1 to 40 do
        ignore
          (Cache.compile
             (Network.of_gate_levels ~wires:64 [ [ Gate.compare_up 0 i ] ]));
        ignore (Cache.compile hot)
      done;
      let s = Cache.stats () in
      check_bool "evictions happened" true (s.Cache.evictions > 0);
      check_bool "table stays bounded" true (s.Cache.entries <= 8);
      let c_hot' = Cache.compile hot in
      check_bool "hot entry survived every sweep" true (c_hot == c_hot');
      check_int "hot re-lookup was a hit, not a recompile" s.Cache.misses
        (Cache.stats ()).Cache.misses)

let test_cache_concurrent_compile () =
  Cache.clear ();
  (* all domains compile the same (structurally equal) network; the
     duplicate-compile race must resolve to one shared entry with
     consistent counters *)
  let handles =
    List.init 4 (fun _ ->
        Domain.spawn (fun () -> Cache.compile (Bitonic.network ~n:16)))
  in
  let results = List.map Domain.join handles in
  let s = Cache.stats () in
  check_int "one entry" 1 s.Cache.entries;
  check_int "every call counted once" 4 (s.Cache.hits + s.Cache.misses);
  check_bool "at least one miss" true (s.Cache.misses >= 1);
  (match results with
  | first :: rest ->
      List.iter
        (fun c -> check_bool "same physical compiled form" true (c == first))
        rest
  | [] -> assert false);
  Cache.clear ()

(* --- witness path through Zero_one --- *)

let test_zero_one_verify_witness () =
  let broken =
    Network.of_gate_levels ~wires:6 [ [ Gate.compare_up 0 1 ] ]
  in
  (match Zero_one.verify broken with
  | Ok () -> Alcotest.fail "expected a failing input"
  | Error w ->
      check_bool "witness is 0-1" true (Array.for_all (fun v -> v = 0 || v = 1) w);
      check_bool "witness really fails" false
        (Sortedness.is_sorted (Network.eval broken w)));
  check_bool "sorter verifies Ok" true
    (Zero_one.verify (Bitonic.network ~n:8) = Ok ())

let () =
  Alcotest.run "engine"
    [ ( "registry",
        [ Alcotest.test_case "exhaustive agreement n=8" `Quick test_registry_n8;
          Alcotest.test_case "exhaustive agreement n=16" `Slow test_registry_n16 ] );
      ( "cache",
        [ Alcotest.test_case "hits and clear" `Quick test_cache_hits;
          Alcotest.test_case "structural discrimination" `Quick
            test_cache_distinguishes_structure;
          Alcotest.test_case "second-chance eviction" `Quick
            test_cache_eviction;
          Alcotest.test_case "concurrent duplicate compile" `Quick
            test_cache_concurrent_compile ] );
      ( "zero-one",
        [ Alcotest.test_case "verify returns witness" `Quick
            test_zero_one_verify_witness ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_compiled_eval_agrees; prop_compiled_shape;
            prop_eval_many_agrees; prop_bitslice_agrees;
            prop_eval_masks_agrees; prop_wide_masks_agree;
            prop_bitslice_ranges_partition; prop_bitslice_domains_agree;
            prop_sorted_depth_agrees ] ) ]
