(* Tests for reverse delta networks, butterflies, shuffle decomposition
   and iterated networks. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let raises f =
  match f () with exception Invalid_argument _ -> true | _ -> false

(* reverse delta structure *)

let wire w = Reverse_delta.Wire w

let node sub0 sub1 cross = Reverse_delta.Node { sub0; sub1; cross }

let cross l r kind = { Reverse_delta.left = l; right = r; kind }

let test_validate_accepts_wellformed () =
  let rd =
    node
      (node (wire 0) (wire 1) [ cross 0 1 Reverse_delta.Min_left ])
      (node (wire 2) (wire 3) [])
      [ cross 1 2 Reverse_delta.Min_right; cross 0 3 Reverse_delta.Swap ]
  in
  Reverse_delta.validate rd;
  check_int "levels" 2 (Reverse_delta.levels rd);
  check_int "inputs" 4 (Reverse_delta.inputs rd);
  check_int "cross_count" 3 (Reverse_delta.cross_count rd);
  check_int "comparator_count" 2 (Reverse_delta.comparator_count rd);
  Alcotest.(check (array int)) "leaves" [| 0; 1; 2; 3 |] (Reverse_delta.leaves rd)

let test_validate_rejects () =
  check_bool "unbalanced" true
    (raises (fun () ->
         Reverse_delta.validate (node (wire 0) (node (wire 1) (wire 2) []) [])));
  check_bool "shared wire" true
    (raises (fun () -> Reverse_delta.validate (node (wire 0) (wire 0) [])));
  check_bool "cross from wrong side" true
    (raises (fun () ->
         Reverse_delta.validate
           (node (wire 0) (wire 1) [ cross 1 0 Reverse_delta.Min_left ])));
  check_bool "wire reused in level" true
    (raises (fun () ->
         Reverse_delta.validate
           (node
              (node (wire 0) (wire 1) [])
              (node (wire 2) (wire 3) [])
              [ cross 0 2 Reverse_delta.Min_left;
                cross 0 3 Reverse_delta.Min_left ])))

let test_to_network_time_order () =
  (* deepest cross levels fire first *)
  let rd =
    node
      (node (wire 0) (wire 1) [ cross 0 1 Reverse_delta.Min_left ])
      (node (wire 2) (wire 3) [ cross 2 3 Reverse_delta.Min_left ])
      [ cross 0 2 Reverse_delta.Min_left; cross 1 3 Reverse_delta.Min_left ]
  in
  let nw = Reverse_delta.to_network ~wires:4 rd in
  check_int "levels" 2 (List.length (Network.levels nw));
  (match Network.levels nw with
  | [ first; second ] ->
      check_int "level 1 has the leaf-node gates" 2 (List.length first.Network.gates);
      check_int "level 2 has the root gates" 2 (List.length second.Network.gates)
  | _ -> Alcotest.fail "expected 2 levels");
  (* this particular rd is the 2-level ascending butterfly = bitonic
     merger of 4 wires in reverse-delta (ascend) direction *)
  Alcotest.(check (array int)) "eval" [| 1; 2; 3; 4 |] (Network.eval nw [| 4; 3; 2; 1 |])

let test_map_wires () =
  let rd = node (wire 0) (wire 1) [ cross 0 1 Reverse_delta.Min_left ] in
  let rd' = Reverse_delta.map_wires (fun w -> w + 5) rd in
  Alcotest.(check (array int)) "leaves shifted" [| 5; 6 |] (Reverse_delta.leaves rd');
  check_bool "non-injective rejected" true
    (raises (fun () -> ignore (Reverse_delta.map_wires (fun _ -> 3) rd)))

(* butterfly *)

let test_butterfly_structure () =
  List.iter
    (fun levels ->
      let bf = Butterfly.ascending ~levels in
      Reverse_delta.validate bf;
      check_int "levels" levels (Reverse_delta.levels bf);
      check_int "comparators" (levels * (1 lsl (levels - 1)))
        (Reverse_delta.comparator_count bf))
    [ 1; 2; 3; 4; 5; 6 ]

let test_butterfly_level_bits () =
  (* time step k compares wires differing in bit k-1 *)
  let bf = Butterfly.network ~levels:3 in
  List.iteri
    (fun k lvl ->
      List.iter
        (fun g ->
          let a, b = Gate.wires g in
          check_int (Printf.sprintf "level %d bit" k) (1 lsl k) (a lxor b))
        lvl.Network.gates)
    (Network.levels bf)

let test_delta_butterfly_is_bitonic_merger () =
  let rng = Xoshiro.of_seed 11 in
  List.iter
    (fun levels ->
      let n = 1 lsl levels in
      let nw = Butterfly.delta_network ~levels in
      for _ = 1 to 50 do
        let input = Workload.bitonic_input rng ~n in
        check_bool "merges bitonic" true
          (Sortedness.is_sorted (Network.eval nw input))
      done)
    [ 1; 2; 3; 4; 5 ]

(* shuffle decomposition *)

let test_block_of_ops_roundtrip () =
  let rng = Xoshiro.of_seed 21 in
  List.iter
    (fun d ->
      let n = 1 lsl d in
      let prog = Shuffle_net.random_program rng ~n ~stages:d in
      let opss =
        List.map (fun st -> st.Register_model.ops) (Register_model.stages prog)
      in
      let rd = Shuffle_net.block_of_ops ~n opss in
      Reverse_delta.validate rd;
      check_int "levels = d" d (Reverse_delta.levels rd);
      let nw_rd = Reverse_delta.to_network ~wires:n rd in
      let nw = Network.flatten (Register_model.to_network prog) in
      for _ = 1 to 20 do
        let input = Workload.random_permutation rng ~n in
        Alcotest.(check (array int)) "same function"
          (Network.eval nw input) (Network.eval nw_rd input)
      done)
    [ 1; 2; 3; 4; 5; 6 ]

let test_forest_of_ops_partition () =
  let rng = Xoshiro.of_seed 31 in
  let n = 64 in
  let d = 6 in
  List.iter
    (fun f ->
      let prog = Shuffle_net.random_program rng ~n ~stages:f in
      let opss =
        List.map (fun st -> st.Register_model.ops) (Register_model.stages prog)
      in
      let forest = Shuffle_net.forest_of_ops ~n opss in
      check_int "tree count" (1 lsl (d - f)) (List.length forest);
      (* leaves partition all wires *)
      let all =
        List.concat_map (fun rd -> Array.to_list (Reverse_delta.leaves rd)) forest
      in
      Alcotest.(check (list int)) "partition" (List.init n (fun i -> i))
        (List.sort compare all);
      List.iter
        (fun rd -> check_int "tree levels" f (Reverse_delta.levels rd))
        forest)
    [ 1; 2; 3; 6 ]

let test_forest_chunk_evaluation () =
  (* Gluing the chunk circuits with the inter-chunk permutation must
     reproduce the register program exactly. *)
  let rng = Xoshiro.of_seed 41 in
  let n = 32 in
  let f = 5 in
  let chunks_count = 3 in
  let prog = Shuffle_net.random_program rng ~n ~stages:(chunks_count * f) in
  let chunks = Shuffle_net.chunk_ops prog ~f in
  let glue = Shuffle_net.inter_chunk_perm ~n ~f in
  let chunk_net opss =
    let forest = Shuffle_net.forest_of_ops ~n opss in
    List.fold_left
      (fun acc rd -> Network.serial acc (Reverse_delta.to_network ~wires:n rd))
      (Network.empty n) forest
  in
  let composed =
    List.fold_left
      (fun (acc, first) opss ->
        let net = chunk_net opss in
        if first then (Network.serial acc net, false)
        else (Network.serial acc (Network.serial (Network.permutation_level glue) net), false))
      (Network.empty n, true) chunks
    |> fst
  in
  (* outputs of the composed chunk circuits are in final-chunk wire
     coordinates; map back to register coordinates by applying glue once
     more at the end *)
  let composed = Network.serial composed (Network.permutation_level glue) in
  for _ = 1 to 50 do
    let input = Workload.random_permutation rng ~n in
    Alcotest.(check (array int)) "chunked = direct"
      (Register_model.eval prog input)
      (Network.eval composed input)
  done

let test_chunk_ops_validation () =
  let rng = Xoshiro.of_seed 51 in
  let n = 16 in
  let prog = Shuffle_net.random_program rng ~n ~stages:8 in
  check_bool "non-divisible" true (raises (fun () -> Shuffle_net.chunk_ops prog ~f:3));
  check_int "divisible" 2 (List.length (Shuffle_net.chunk_ops prog ~f:4));
  (* non-shuffle program rejected *)
  let bad =
    Register_model.create ~n
      [ { Register_model.perm = Perm.identity n;
          ops = Array.make (n / 2) Register_model.Plus } ]
  in
  check_bool "not shuffle-based" true (raises (fun () -> Shuffle_net.chunk_ops bad ~f:1))

let test_inter_chunk_perm_full_block_is_identity () =
  check_bool "rotl^d = id" true
    (Perm.is_identity (Shuffle_net.inter_chunk_perm ~n:64 ~f:6))

(* iterated *)

let test_iterated_validation () =
  let rd = Butterfly.ascending ~levels:2 in
  let it = Iterated.uniform [ rd; rd ] in
  check_int "blocks" 2 (Iterated.block_count it);
  check_int "levels per block" 2 (Iterated.levels_per_block it);
  check_int "depth" 4 (Iterated.depth it);
  check_bool "wrong size block" true
    (raises (fun () ->
         ignore
           (Iterated.create ~n:8 [ { Iterated.pre = None; body = rd } ])))

let test_iterated_with_permutation () =
  let rd = Butterfly.ascending ~levels:2 in
  let p = Perm.of_array [| 3; 2; 1; 0 |] in
  let it = Iterated.create ~n:4 [ { Iterated.pre = Some p; body = rd } ] in
  let nw = Iterated.to_network it in
  (* reversal then ascending 2-level butterfly sorts a sorted input
     after reversal: [1;2;3;4] -> reversed -> sorted again *)
  Alcotest.(check (array int)) "perm applied first" [| 1; 2; 3; 4 |]
    (Network.eval nw [| 1; 2; 3; 4 |])

(* random nets *)

let test_random_reverse_delta_valid () =
  let rng = Xoshiro.of_seed 61 in
  for levels = 1 to 7 do
    let rd = Random_net.reverse_delta rng ~levels ~density:0.7 ~swap_prob:0.2 in
    Reverse_delta.validate rd;
    check_int "levels" levels (Reverse_delta.levels rd)
  done

let test_random_iterated_valid () =
  let rng = Xoshiro.of_seed 71 in
  let it = Random_net.iterated rng ~n:32 ~blocks:3 ~density:0.5 ~swap_prob:0.1 ~permute:true in
  check_int "blocks" 3 (Iterated.block_count it);
  ignore (Iterated.to_network it)

let prop_shuffle_block_equivalence =
  QCheck.Test.make ~name:"to_iterated preserves the function" ~count:60
    QCheck.(pair (int_range 0 10_000) (int_range 2 5))
    (fun (seed, d) ->
      let n = 1 lsl d in
      let rng = Xoshiro.of_seed seed in
      let blocks = 1 + Xoshiro.int rng ~bound:3 in
      let prog = Shuffle_net.random_program rng ~n ~stages:(blocks * d) in
      let it = Shuffle_net.to_iterated prog in
      let nw_it = Iterated.to_network it in
      let nw = Network.flatten (Register_model.to_network prog) in
      let input = Workload.random_permutation rng ~n in
      Network.eval nw input = Network.eval nw_it input)

let () =
  Alcotest.run "topology"
    [ ( "reverse delta",
        [ Alcotest.test_case "validate wellformed" `Quick test_validate_accepts_wellformed;
          Alcotest.test_case "validate rejects" `Quick test_validate_rejects;
          Alcotest.test_case "to_network time order" `Quick test_to_network_time_order;
          Alcotest.test_case "map_wires" `Quick test_map_wires ] );
      ( "butterfly",
        [ Alcotest.test_case "structure" `Quick test_butterfly_structure;
          Alcotest.test_case "level k touches bit k-1" `Quick test_butterfly_level_bits;
          Alcotest.test_case "delta direction merges bitonic" `Quick
            test_delta_butterfly_is_bitonic_merger ] );
      ( "shuffle decomposition",
        [ Alcotest.test_case "block_of_ops roundtrip" `Quick test_block_of_ops_roundtrip;
          Alcotest.test_case "forest partitions wires" `Quick test_forest_of_ops_partition;
          Alcotest.test_case "chunk evaluation with glue" `Quick test_forest_chunk_evaluation;
          Alcotest.test_case "chunk_ops validation" `Quick test_chunk_ops_validation;
          Alcotest.test_case "full-block glue is identity" `Quick
            test_inter_chunk_perm_full_block_is_identity ] );
      ( "iterated",
        [ Alcotest.test_case "validation and depth" `Quick test_iterated_validation;
          Alcotest.test_case "inter-block permutation" `Quick test_iterated_with_permutation ] );
      ( "random",
        [ Alcotest.test_case "random reverse delta valid" `Quick test_random_reverse_delta_valid;
          Alcotest.test_case "random iterated valid" `Quick test_random_iterated_valid ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_shuffle_block_equivalence ] ) ]
