(* Tests for the strict-ascend machine: parallel prefix and the NTT —
   the algorithms the paper's introduction cites as the reason to care
   about the shuffle-only class. *)

let check_bool = Alcotest.(check bool)
let check_arr = Alcotest.(check (array int))

let test_pass_identity () =
  (* a pass of do-nothing steps returns registers to their start: the
     shuffle has order lg n *)
  let n = 16 in
  let v = Array.init n (fun i -> 100 + i) in
  let id ~stage:_ ~origin:_ x y = (x, y) in
  check_arr "identity pass" v (Ascend.pass ~n id v)

let test_pass_origin_coordinates () =
  (* the step sees pair origins (o, o + 2^(d-t)) with o's bit d-t = 0 *)
  let n = 16 in
  let d = 4 in
  let seen = ref [] in
  let spy ~stage ~origin x y =
    seen := (stage, origin) :: !seen;
    (x, y)
  in
  ignore (Ascend.pass ~n spy (Array.init n (fun i -> i)));
  List.iter
    (fun (stage, origin) ->
      check_bool "origin bit is zero" true ((origin lsr (d - stage)) land 1 = 0))
    !seen;
  Alcotest.(check int) "d * n/2 pair visits" (d * n / 2) (List.length !seen)

let test_pass_is_register_model () =
  (* an ascend pass with comparator steps equals the register-model
     shuffle program with the corresponding op vectors *)
  let n = 16 in
  let rng = Xoshiro.of_seed 5 in
  let prog = Shuffle_net.all_plus_program ~n ~stages:4 in
  let step ~stage:_ ~origin:_ x y = (min x y, max x y) in
  for _ = 1 to 30 do
    let input = Workload.random_permutation rng ~n in
    check_arr "pass = register program"
      (Register_model.eval prog input)
      (Ascend.pass ~n step input)
  done

let test_truncated_steps () =
  let n = 8 in
  let id ~stage:_ ~origin:_ x y = (x, y) in
  let v = Array.init n (fun i -> i) in
  (* after 1 no-op step values sit rotated by one shuffle *)
  let out = Ascend.steps ~n ~stages:1 id v in
  let expect = Perm.permute_array (Perm.shuffle n) v in
  check_arr "one shuffle" expect out

let test_prefix_sums () =
  List.iter
    (fun n ->
      let v = Array.init n (fun i -> (i * 7) + 1) in
      let out = Prefix.scan ~n ~op:( + ) v in
      let acc = ref 0 in
      Array.iteri
        (fun i x ->
          acc := !acc + x;
          Alcotest.(check int) (Printf.sprintf "n=%d i=%d" n i) !acc out.(i))
        v)
    [ 2; 4; 8; 16; 64; 256 ]

let test_prefix_non_commutative () =
  (* string concatenation: order must be exactly left-to-right *)
  let n = 16 in
  let v = Array.init n (fun i -> String.make 1 (Char.chr (97 + i))) in
  let out = Prefix.scan ~n ~op:( ^ ) v in
  Alcotest.(check string) "full concat" "abcdefghijklmnop" out.(n - 1);
  Alcotest.(check string) "prefix 3" "abc" out.(2)

let test_exclusive_scan () =
  let n = 8 in
  let v = Array.make n 1 in
  let out = Prefix.exclusive_scan ~n ~op:( + ) ~zero:0 v in
  check_arr "ranks" [| 0; 1; 2; 3; 4; 5; 6; 7 |] out

let test_reduce () =
  let n = 32 in
  let v = Array.init n (fun i -> i) in
  Alcotest.(check int) "sum" (n * (n - 1) / 2) (Prefix.reduce ~n ~op:( + ) v);
  Alcotest.(check int) "max" (n - 1) (Prefix.reduce ~n ~op:max v)

let test_ntt_matches_naive () =
  List.iter
    (fun n ->
      let rng = Xoshiro.of_seed (n + 1) in
      let v = Array.init n (fun _ -> Xoshiro.int rng ~bound:Ntt.modulus) in
      check_arr (Printf.sprintf "n=%d" n) (Ntt.naive_dft ~n v) (Ntt.forward ~n v))
    [ 1; 2; 4; 8; 16; 64; 128 ]

let test_ntt_roundtrip () =
  List.iter
    (fun n ->
      let rng = Xoshiro.of_seed (n + 2) in
      let v = Array.init n (fun _ -> Xoshiro.int rng ~bound:Ntt.modulus) in
      check_arr (Printf.sprintf "n=%d" n) v (Ntt.inverse ~n (Ntt.forward ~n v)))
    [ 2; 4; 32; 512 ]

let test_convolution () =
  (* polynomial product (1 + 2x + 3x^2)(4 + 5x) cyclically in degree 8 *)
  let n = 8 in
  let a = [| 1; 2; 3; 0; 0; 0; 0; 0 |] and b = [| 4; 5; 0; 0; 0; 0; 0; 0 |] in
  check_arr "product" [| 4; 13; 22; 15; 0; 0; 0; 0 |] (Ntt.convolve ~n a b);
  (* cyclic wraparound *)
  let c = Array.make n 0 in
  c.(7) <- 1;
  let d = Array.make n 0 in
  d.(2) <- 1;
  let e = Ntt.convolve ~n c d in
  check_arr "x^7 * x^2 = x^1 (mod x^8 - 1)"
    [| 0; 1; 0; 0; 0; 0; 0; 0 |] e

let prop_prefix_random =
  QCheck.Test.make ~name:"prefix scan equals sequential fold" ~count:100
    QCheck.(pair (int_range 0 100_000) (int_range 1 6))
    (fun (seed, d) ->
      let n = 1 lsl d in
      let rng = Xoshiro.of_seed seed in
      let v = Array.init n (fun _ -> Xoshiro.int rng ~bound:1000) in
      let out = Prefix.scan ~n ~op:( + ) v in
      let acc = ref 0 in
      Array.for_all2 (fun x o -> acc := !acc + x; o = !acc) v out)

let prop_ntt_linear =
  QCheck.Test.make ~name:"NTT is linear" ~count:60
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let n = 32 in
      let rng = Xoshiro.of_seed seed in
      let a = Array.init n (fun _ -> Xoshiro.int rng ~bound:Ntt.modulus) in
      let b = Array.init n (fun _ -> Xoshiro.int rng ~bound:Ntt.modulus) in
      let sum = Array.init n (fun i -> (a.(i) + b.(i)) mod Ntt.modulus) in
      let fa = Ntt.forward ~n a and fb = Ntt.forward ~n b in
      Ntt.forward ~n sum
      = Array.init n (fun i -> (fa.(i) + fb.(i)) mod Ntt.modulus))

let () =
  Alcotest.run "machines"
    [ ( "ascend",
        [ Alcotest.test_case "identity pass" `Quick test_pass_identity;
          Alcotest.test_case "origin coordinates" `Quick test_pass_origin_coordinates;
          Alcotest.test_case "pass = register model" `Quick test_pass_is_register_model;
          Alcotest.test_case "truncated steps" `Quick test_truncated_steps ] );
      ( "prefix",
        [ Alcotest.test_case "sums" `Quick test_prefix_sums;
          Alcotest.test_case "non-commutative op" `Quick test_prefix_non_commutative;
          Alcotest.test_case "exclusive scan" `Quick test_exclusive_scan;
          Alcotest.test_case "reduce" `Quick test_reduce ] );
      ( "ntt",
        [ Alcotest.test_case "matches naive DFT" `Quick test_ntt_matches_naive;
          Alcotest.test_case "roundtrip" `Quick test_ntt_roundtrip;
          Alcotest.test_case "convolution" `Quick test_convolution ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_prefix_random; prop_ntt_linear ] ) ]
