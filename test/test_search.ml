(* Tests for the exact-bounds search subsystem (lib/search): packed
   state arithmetic, subsumption with its necessary-condition filters,
   layer generation up to symmetry, and the BFS driver against both the
   known optimal depths and the subsumption-free reference search. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- State --- *)

let test_state_initial () =
  let st = State.initial ~n:4 in
  check_int "card" 16 (State.card st);
  check_bool "mem 0" true (State.mem st 0);
  check_bool "mem 15" true (State.mem st 15);
  check_bool "not sorted" false (State.is_sorted st);
  let st2 = State.initial ~n:2 in
  (* one ascending comparator sorts two wires: image {00, 01r.. } *)
  let st2' = State.apply_comparators st2 [ (0, 1) ] in
  check_int "n=2 sorted card" 3 (State.card st2');
  check_bool "n=2 sorted" true (State.is_sorted st2');
  check_bool "masks" true (State.masks st2' = [ 0b00; 0b10; 0b11 ])

let test_state_of_masks () =
  let st = State.of_masks ~n:4 [ 0b0011; 0b0101; 0b0011 ] in
  check_int "dups collapse" 2 (State.card st);
  check_bool "roundtrip" true (State.masks st = [ 0b0011; 0b0101 ]);
  let img = State.map_masks st (fun m -> m lxor 0b1111) in
  check_bool "map" true (State.masks img = [ 0b1010; 0b1100 ]);
  check_bool "subset" true
    (State.subset st (State.of_masks ~n:4 [ 0b0011; 0b0101; 0b1000 ]));
  check_bool "not subset" false
    (State.subset st (State.of_masks ~n:4 [ 0b0011 ]));
  check_bool "equal" true (State.equal st (State.of_masks ~n:4 [ 0b0101; 0b0011 ]));
  check_bool "invalid mask rejected" true
    (match State.of_masks ~n:4 [ 16 ] with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_state_subset_short_circuit () =
  (* n=7 states span multiple packed words; a violation found in the
     first word must answer false through the early-exit path even
     though every later word is a subset *)
  let n = 7 in
  let a = State.of_masks ~n [ 1; 100; 120 ] in
  let b = State.of_masks ~n [ 2; 100; 120 ] in
  check_bool "violation in word 0" false (State.subset a b);
  check_bool "reflexive" true (State.subset a a);
  check_bool "subset of full" true (State.subset a (State.initial ~n));
  check_bool "full not subset" false (State.subset (State.initial ~n) a);
  (* violation only in the last word: the scan must still find it *)
  let c = State.of_masks ~n [ 1; 100 ] in
  let d = State.of_masks ~n [ 1; 100; 127 ] in
  check_bool "late extra mask" false (State.subset d c)

let test_state_sorted_recognition () =
  (* exactly the n+1 sorted vectors: ones packed at the high wires *)
  let n = 5 in
  let sorted = List.init (n + 1) (fun k -> ((1 lsl k) - 1) lsl (n - k)) in
  check_bool "sorted set" true (State.is_sorted (State.of_masks ~n sorted));
  check_bool "unsorted vector" false
    (State.is_sorted (State.of_masks ~n (0b00001 :: sorted)))

(* --- Subsume --- *)

let st4 = State.of_masks ~n:4

let test_subsume_permuted_positive () =
  (* {0011} maps to {0101} by the wire swap 1 <-> 2 *)
  let a = st4 [ 0b0011 ] and b = st4 [ 0b0101 ] in
  check_bool "a subsumes b" true (Subsume.subsumes_states a b);
  check_bool "b subsumes a" true (Subsume.subsumes_states b a);
  (* plain subset: identity permutation fast path *)
  check_bool "subset path" true
    (Subsume.subsumes_states (st4 [ 0b0011 ]) (st4 [ 0b0011; 0b1000 ]))

let test_subsume_card_filter () =
  let a = st4 [ 0b0001; 0b0010 ] and b = st4 [ 0b0001 ] in
  check_bool "larger cannot subsume" false (Subsume.subsumes_states a b)

let test_subsume_level_filter () =
  (* equal cardinality but level profiles differ: (1,2) vs (1,1) ones *)
  let a = st4 [ 0b0001; 0b0011 ] and b = st4 [ 0b0001; 0b0010 ] in
  let fa = Subsume.fingerprint a and fb = Subsume.fingerprint b in
  check_bool "level filter refutes" false (Subsume.level_cards_le fa fb);
  check_bool "subsumes agrees" false (Subsume.subsumes (a, fa) (b, fb))

let test_subsume_channel_filter () =
  (* same level profile (two level-2 vectors) but A's wire 0 lies in
     both vectors and no wire of B does: candidate list comes back
     empty before any permutation search *)
  let a = st4 [ 0b0011; 0b0101 ] and b = st4 [ 0b0011; 0b1100 ] in
  let fa = Subsume.fingerprint a and fb = Subsume.fingerprint b in
  check_bool "wire 0 has no candidate" true
    ((Subsume.channel_candidates fa fb).(0) = []);
  check_bool "subsumes agrees" false (Subsume.subsumes (a, fa) (b, fb))

let test_subsume_backtracking_negative () =
  (* level-2 vectors are graph edges; a 6-cycle and two triangles have
     identical degree histograms (every filter passes) yet are not
     isomorphic, so only the exhaustive matching refutes this one *)
  let c6 =
    State.of_masks ~n:6
      [ 0b000011; 0b000110; 0b001100; 0b011000; 0b110000; 0b100001 ]
  and triangles =
    State.of_masks ~n:6
      [ 0b000011; 0b000110; 0b000101; 0b011000; 0b110000; 0b101000 ]
  in
  let fa = Subsume.fingerprint c6 and fb = Subsume.fingerprint triangles in
  check_bool "every wire keeps candidates" true
    (Array.for_all (fun l -> l <> []) (Subsume.channel_candidates fa fb));
  check_bool "C6 !~ 2xC3" false (Subsume.subsumes (c6, fa) (triangles, fb));
  check_bool "2xC3 !~ C6" false (Subsume.subsumes (triangles, fb) (c6, fa))

let test_subsume_permutation_property =
  QCheck.Test.make ~name:"any permuted image subsumes both ways" ~count:200
    QCheck.(pair (int_range 3 6) int)
    (fun (n, seed) ->
      let rng = Xoshiro.of_seed seed in
      let pi = Perm.random rng n in
      let nmasks = 1 + Xoshiro.int rng ~bound:10 in
      let masks = List.init nmasks (fun _ -> Xoshiro.int rng ~bound:(1 lsl n)) in
      let image m =
        List.fold_left
          (fun acc w -> if (m lsr w) land 1 = 1 then acc lor (1 lsl Perm.apply pi w) else acc)
          0
          (List.init n Fun.id)
      in
      let a = State.of_masks ~n masks in
      let b = State.of_masks ~n (List.map image masks) in
      Subsume.subsumes_states a b && Subsume.subsumes_states b a)

(* --- Layers --- *)

let test_layer_counts () =
  check_int "n=4 all" 9 (List.length (Layers.all ~n:4));
  check_int "n=5 all" 25 (List.length (Layers.all ~n:5));
  check_int "n=6 all" 75 (List.length (Layers.all ~n:6));
  check_bool "first n=5" true (Layers.first ~n:5 = [ (0, 1); (2, 3) ]);
  check_int "n=4 second" 4 (List.length (Layers.second ~n:4));
  check_int "n=6 second" 9 (List.length (Layers.second ~n:6));
  List.iter
    (fun layer ->
      check_bool "second is a matching from all" true
        (List.mem layer (Layers.all ~n:6)))
    (Layers.second ~n:6)

(* --- Driver --- *)

let optimal n =
  match Driver.optimal_depth ~n () with
  | Driver.Sorted { depth; moves; stats } -> (depth, moves, stats)
  | Driver.Unsorted _ | Driver.Inconclusive _ | Driver.Interrupted _ ->
      Alcotest.failf "n=%d: search did not return a witness" n

let test_known_optimal_depths () =
  List.iter
    (fun (n, want) ->
      let depth, moves, _ = optimal n in
      check_int (Printf.sprintf "n=%d optimal" n) want depth;
      check_int "witness length" want (List.length moves);
      check_bool "witness verifies" true (Driver.verify_witness ~n moves);
      check_int "network depth" want
        (Network.depth (Driver.witness_network ~n moves)))
    [ (2, 1); (3, 3); (4, 3); (5, 5); (6, 5) ]

let test_reference_agreement () =
  (* the subsumption-pruned search agrees with the equality-dedup
     reference, and at n=6 expands over 10x fewer nodes *)
  List.iter
    (fun n ->
      let depth, _, stats = optimal n in
      match Driver.optimal_depth ~restrict:false ~n () with
      | Driver.Sorted { depth = ref_depth; stats = ref_stats; _ } ->
          check_int (Printf.sprintf "n=%d reference depth" n) depth ref_depth;
          if n = 6 then
            check_bool
              (Printf.sprintf "pruning ratio %d/%d >= 10" ref_stats.Driver.nodes
                 stats.Driver.nodes)
              true
              (ref_stats.Driver.nodes >= 10 * stats.Driver.nodes)
      | Driver.Unsorted _ | Driver.Inconclusive _ | Driver.Interrupted _ ->
          Alcotest.failf "n=%d: reference search failed" n)
    [ 2; 3; 4; 5; 6 ]

let test_redundant_hook_agreement () =
  (* the static-analysis move filter must not change any verdict: the
     same system with the hook disabled finds the same optimal depth,
     and the hook actually fires (skips are counted, never as nodes) *)
  List.iter
    (fun n ->
      let sys = Driver.network_system ~n () in
      let sys_off = { sys with Driver.redundant_of = Driver.no_redundant } in
      let depth_of = function
        | Driver.Sorted { depth; stats; _ } -> (depth, stats)
        | Driver.Unsorted _ | Driver.Inconclusive _ | Driver.Interrupted _ ->
            Alcotest.failf "n=%d: search failed" n
      in
      let d_on, s_on = depth_of (Driver.run ~max_depth:n sys) in
      let d_off, s_off = depth_of (Driver.run ~max_depth:n sys_off) in
      check_int (Printf.sprintf "n=%d depth, hook on vs off" n) d_off d_on;
      check_int (Printf.sprintf "n=%d hook-off skips nothing" n) 0
        s_off.Driver.redundant;
      if n >= 5 then
        check_bool (Printf.sprintf "n=%d hook fires" n) true
          (s_on.Driver.redundant > 0);
      (* skipped moves are not applications: with the hook on, the
         search can only expand fewer or equal nodes *)
      check_bool (Printf.sprintf "n=%d hook never adds nodes" n) true
        (s_on.Driver.nodes <= s_off.Driver.nodes))
    [ 3; 4; 5; 6 ]

let test_unsorted_exhaustive () =
  match Driver.optimal_depth ~max_depth:4 ~n:5 () with
  | Driver.Unsorted stats ->
      check_int "all 4 levels completed" 4 stats.Driver.completed_levels
  | Driver.Sorted _ -> Alcotest.fail "no depth-4 network sorts n=5"
  | Driver.Inconclusive _ | Driver.Interrupted _ ->
      Alcotest.fail "must be decidable"

let test_budget_inconclusive () =
  match
    Driver.optimal_depth ~budget:{ Driver.max_nodes = 100; max_seconds = None }
      ~n:6 ()
  with
  | Driver.Inconclusive stats ->
      check_bool "some levels refuted" true (stats.Driver.completed_levels >= 1);
      check_bool "stopped early" true (stats.Driver.completed_levels < 5)
  | Driver.Sorted _ | Driver.Unsorted _ | Driver.Interrupted _ ->
      Alcotest.fail "100 nodes cannot certify n=6"

let test_wall_clock_budget () =
  (* the n=7 reference search needs minutes, so a 0.3 s wall budget
     must trip it — after roughly the same wall time whether 1 or 4
     domains expand.  The old CPU-summed budget (Sys.time across
     domains) tripped the 4-domain run ~4x early, well under the
     lower bound asserted here. *)
  let budget = { Driver.max_nodes = 1_000_000_000; max_seconds = Some 0.3 } in
  let run domains =
    let t0 = Clock.wall () in
    let outcome =
      Driver.optimal_depth ~domains ~budget ~restrict:false ~n:7 ()
    in
    let wall = Clock.wall () -. t0 in
    match outcome with
    | Driver.Inconclusive stats -> (wall, stats)
    | Driver.Sorted _ | Driver.Unsorted _ | Driver.Interrupted _ ->
        Alcotest.fail "0.3 s cannot decide the n=7 reference search"
  in
  let wall1, stats1 = run 1 in
  let wall4, stats4 = run 4 in
  List.iter
    (fun (domains, wall, stats) ->
      check_bool
        (Printf.sprintf "domains=%d ran up to the budget (%.3f s)" domains wall)
        true (wall > 0.25);
      check_bool
        (Printf.sprintf "domains=%d stopped within 2x the budget (%.3f s)"
           domains wall)
        true (wall < 0.6);
      check_bool "stats.elapsed is wall-clock" true
        (stats.Driver.elapsed <= wall +. 0.05);
      check_bool "cpu elapsed also reported" true
        (stats.Driver.elapsed_cpu >= 0.))
    [ (1, wall1, stats1); (4, wall4, stats4) ];
  check_bool "equal wall budgets complete comparable levels" true
    (abs (stats4.Driver.completed_levels - stats1.Driver.completed_levels) <= 1)

let test_multi_domain_agreement () =
  (* same optimum through the parallel expansion / filter path *)
  match Driver.optimal_depth ~domains:2 ~n:5 () with
  | Driver.Sorted { depth; moves; _ } ->
      check_int "n=5 at 2 domains" 5 depth;
      check_bool "witness verifies" true (Driver.verify_witness ~n:5 moves)
  | Driver.Unsorted _ | Driver.Inconclusive _ | Driver.Interrupted _ ->
      Alcotest.fail "n=5 must be certified at 2 domains"

(* --- canonical wire-permutation form --- *)

let permute_mask pi m =
  let img = ref 0 in
  for c = 0 to Array.length pi - 1 do
    if (m lsr c) land 1 = 1 then img := !img lor (1 lsl pi.(c))
  done;
  !img

let conjugate p nw =
  let levels =
    List.map
      (fun lvl ->
        { Network.pre = None;
          gates = List.map (Gate.map_wires (Perm.apply p)) lvl.Network.gates })
      (Network.levels nw)
  in
  Network.create ~wires:(Network.wires nw) levels

let reachable_masks nw =
  let n = Network.wires nw in
  List.sort_uniq compare
    (List.init (1 lsl n) (fun m ->
         let out = Network.eval nw (Array.init n (fun w -> (m lsr w) land 1)) in
         let r = ref 0 in
         Array.iteri (fun w v -> if v = 1 then r := !r lor (1 lsl w)) out;
         !r))

let rec all_perms = function
  | [] -> [ [] ]
  | xs ->
      List.concat_map
        (fun x -> List.map (fun p -> x :: p) (all_perms (List.filter (( <> ) x) xs)))
        xs

let prop_canonical_masks_invariant =
  QCheck.Test.make ~name:"canonical_masks invariant under channel permutation"
    ~count:200
    QCheck.(pair (int_range 0 1_000_000) (int_range 4 6))
    (fun (seed, n) ->
      let rng = Xoshiro.of_seed seed in
      let card = 1 + Xoshiro.int rng ~bound:40 in
      let masks = List.init card (fun _ -> Xoshiro.int rng ~bound:(1 lsl n)) in
      let st = State.of_masks ~n masks in
      let pi = Perm.to_array (Perm.random rng n) in
      let img = State.map_masks st (permute_mask pi) in
      Subsume.canonical_masks st = Subsume.canonical_masks img)

let test_canonical_hash_isomorphic () =
  (* conjugated networks (wires relabeled end to end) must collide,
     across widths and for both random circuits and the classics *)
  let rng = Xoshiro.of_seed 7 in
  for _ = 1 to 30 do
    let n = 4 + Xoshiro.int rng ~bound:3 in
    let nlayers = 1 + Xoshiro.int rng ~bound:3 in
    let nw =
      Network.of_gate_levels ~wires:n
        (List.init nlayers (fun _ ->
             let order = Perm.to_array (Perm.random rng n) in
             let npairs = 1 + Xoshiro.int rng ~bound:(n / 2) in
             List.init npairs (fun i ->
                 Gate.compare_up order.(2 * i) order.((2 * i) + 1))))
    in
    let p = Perm.random rng n in
    check_bool "conjugate collides" true
      (Subsume.canonical_hash nw = Subsume.canonical_hash (conjugate p nw));
    check_bool "conjugate key collides" true
      (Subsume.canonical_key nw = Subsume.canonical_key (conjugate p nw))
  done;
  (* every true sorter of one width has reachable set = the thresholds,
     so all of them share a single canonical entry *)
  check_bool "all n=8 sorters share the hash" true
    (Subsume.canonical_hash (Bitonic.network ~n:8)
    = Subsume.canonical_hash (Odd_even_merge.network ~n:8))

let test_canonical_hash_exhaustive_n4 () =
  (* ground truth by brute force over all 4! wire permutations: the
     hash must collide exactly on reachable-set-isomorphic networks *)
  let n = 4 in
  let pairs =
    List.concat_map
      (fun i -> List.init (n - i - 1) (fun j -> (i, i + j + 1)))
      (List.init n Fun.id)
  in
  let nets =
    List.map (fun p -> [ [ p ] ]) pairs
    @ List.concat_map
        (fun p1 -> List.map (fun p2 -> [ [ p1 ]; [ p2 ] ]) pairs)
        pairs
  in
  let nets =
    List.map
      (fun layers ->
        Network.of_gate_levels ~wires:n
          (List.map (List.map (fun (a, b) -> Gate.compare_up a b)) layers))
      nets
  in
  let perms = List.map Array.of_list (all_perms [ 0; 1; 2; 3 ]) in
  let data =
    List.map (fun nw -> (reachable_masks nw, Subsume.canonical_hash nw)) nets
  in
  let iso ra rb =
    List.exists
      (fun pi -> List.sort compare (List.map (permute_mask pi) ra) = rb)
      perms
  in
  List.iter
    (fun (ra, ha) ->
      List.iter
        (fun (rb, hb) ->
          check_bool "hash collides exactly on isomorphs" (iso ra rb) (ha = hb))
        data)
    data

(* --- Arena: the packed frontier must be decision-identical to the
   boxed State/Subsume reference --- *)

let random_layer rng n =
  let order = Perm.to_array (Perm.random rng n) in
  let npairs = 1 + Xoshiro.int rng ~bound:(n / 2) in
  List.sort compare
    (List.init npairs (fun k ->
         let a = order.(2 * k) and b = order.((2 * k) + 1) in
         (min a b, max a b)))

(* grow a random frontier, committing every child into [arena] and
   mirroring it in a reference list of (state, arena index) pairs *)
let random_frontier rng arena n steps =
  let states = ref [] in
  Arena.stage_state arena (State.initial ~n);
  (match Arena.commit arena ~level:0 with
  | `Fresh idx -> states := [ (State.initial ~n, idx) ]
  | `Dup _ -> Alcotest.fail "initial state cannot be a duplicate");
  let ok = ref true in
  for _ = 1 to steps do
    let st, idx =
      List.nth !states (Xoshiro.int rng ~bound:(List.length !states))
    in
    let layer = random_layer rng n in
    let st' = State.apply_comparators st layer in
    Arena.stage_child arena ~parent:idx layer;
    ok := !ok && Arena.staged_is_sorted arena = State.is_sorted st';
    match Arena.commit arena ~level:1 with
    | `Fresh idx' ->
        ok := !ok && State.equal (Arena.to_state arena idx') st';
        states := (st', idx') :: !states
    | `Dup idx' -> ok := !ok && State.equal (Arena.to_state arena idx') st'
  done;
  (!ok, !states)

let prop_arena_dedup_agrees =
  QCheck.Test.make
    ~name:"arena open-addressing dedup = Hashtbl dedup (n=4..8)" ~count:40
    QCheck.(pair (int_range 0 1_000_000) (int_range 4 8))
    (fun (seed, n) ->
      let rng = Xoshiro.of_seed seed in
      let arena = Arena.create ~n () in
      let seen = Hashtbl.create 64 in
      let states = ref [ State.initial ~n ] in
      Hashtbl.replace seen (State.key (State.initial ~n)) (State.initial ~n);
      Arena.stage_state arena (State.initial ~n);
      let ok = ref (Arena.commit arena ~level:0 = `Fresh 0) in
      for _ = 1 to 150 do
        let st =
          List.nth !states (Xoshiro.int rng ~bound:(List.length !states))
        in
        let st' = State.apply_comparators st (random_layer rng n) in
        let key = State.key st' in
        let fresh_ref = not (Hashtbl.mem seen key) in
        Arena.stage_state arena st';
        (match Arena.commit arena ~level:1 with
        | `Fresh idx ->
            ok :=
              !ok && fresh_ref && State.equal (Arena.to_state arena idx) st';
            Hashtbl.replace seen key st';
            states := st' :: !states
        | `Dup idx ->
            ok :=
              !ok && (not fresh_ref)
              && State.equal (Arena.to_state arena idx) st');
        ok := !ok && Arena.length arena = Hashtbl.length seen
      done;
      (* identical survivor sets, and (spot-checked — canonical_masks
         enumerates permutations) identical canonical forms *)
      let arena_survivors =
        List.init (Arena.length arena) (fun i -> Arena.to_state arena i)
      in
      let arena_keys = List.sort compare (List.map State.key arena_survivors) in
      let ref_keys =
        List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) seen [])
      in
      !ok && arena_keys = ref_keys
      && List.for_all
           (fun st ->
             Subsume.canonical_masks st
             = Subsume.canonical_masks (Hashtbl.find seen (State.key st)))
           (List.filteri (fun i _ -> i < 3) arena_survivors))

let prop_arena_subsumes_parity =
  QCheck.Test.make
    ~name:"Arena.subsumes = Subsume.subsumes on random frontiers (n=4..8)"
    ~count:25
    QCheck.(pair (int_range 0 1_000_000) (int_range 4 8))
    (fun (seed, n) ->
      let rng = Xoshiro.of_seed seed in
      let arena = Arena.create ~n () in
      let ok, states = random_frontier rng arena n 80 in
      let arr = Array.of_list states in
      let m = Array.length arr in
      ok
      && List.for_all
           (fun _ ->
             let sa, ia = arr.(Xoshiro.int rng ~bound:m)
             and sb, ib = arr.(Xoshiro.int rng ~bound:m) in
             Arena.subsumes arena ia ib = Subsume.subsumes_states sa sb)
           (List.init 250 Fun.id))

let test_arena_engine_equivalence () =
  (* both engines must agree verbatim: outcome, depth, and every
     decision counter, because their dedup and subsumption logic is
     specified to be boolean-identical *)
  List.iter
    (fun n ->
      let sys = Driver.network_system ~n () in
      match
        ( Driver.run ~engine:`Legacy ~max_depth:n sys,
          Driver.run ~engine:`Arena ~max_depth:n sys )
      with
      | ( Driver.Sorted { depth = da; stats = sa; _ },
          Driver.Sorted { depth = db; stats = sb; moves } ) ->
          check_int "depth" da db;
          check_bool "arena witness verifies" true
            (Driver.verify_witness ~n moves);
          check_int "nodes" sa.Driver.nodes sb.Driver.nodes;
          check_int "pruned" sa.Driver.pruned sb.Driver.pruned;
          check_int "deduped" sa.Driver.deduped sb.Driver.deduped;
          check_int "subsumed" sa.Driver.subsumed sb.Driver.subsumed;
          check_int "redundant" sa.Driver.redundant sb.Driver.redundant;
          check_int "peak frontier" sa.Driver.peak_frontier
            sb.Driver.peak_frontier;
          check_bool "frontier sizes" true
            (sa.Driver.frontier_sizes = sb.Driver.frontier_sizes)
      | _ -> Alcotest.fail "both engines must certify the optimum")
    [ 4; 5; 6 ];
  (* the equality-dedup (unrestricted) system runs the arena too *)
  match
    ( Driver.optimal_depth ~engine:`Legacy ~restrict:false ~n:4 (),
      Driver.optimal_depth ~engine:`Auto ~restrict:false ~n:4 () )
  with
  | ( Driver.Sorted { depth = da; stats = sa; _ },
      Driver.Sorted { depth = db; stats = sb; _ } ) ->
      check_int "unrestricted depth" da db;
      check_int "unrestricted nodes" sa.Driver.nodes sb.Driver.nodes;
      check_int "unrestricted deduped" sa.Driver.deduped sb.Driver.deduped
  | _ -> Alcotest.fail "n=4 unrestricted must certify the optimum"

let test_domains2_no_regression () =
  (* The work-size threshold (Par.map_list ?min_per_domain, wired
     through the driver's expansion / fingerprint / subsumption calls)
     keeps small frontiers sequential: domains=2 at n=6 used to be
     ~10x slower than domains=1 (BENCH_search.json, 11.5k vs 123k
     nodes/s) because every tiny level paid domain spawns. Min-of-3
     runs each to absorb scheduler noise; the bound is deliberately
     loose (2x + 50ms) — the point is catching a return of the
     order-of-magnitude cliff, not micro-benchmarking. *)
  let wall d =
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      (match Driver.optimal_depth ~domains:d ~n:6 () with
      | Driver.Sorted { depth = 5; _ } -> ()
      | _ -> Alcotest.fail "n=6 optimum must be 5");
      best := min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let t1 = wall 1 in
  let t2 = wall 2 in
  check_bool
    (Printf.sprintf "domains=2 (%.4fs) within 2x of domains=1 (%.4fs)" t2 t1)
    true
    (t2 <= (2. *. t1) +. 0.05)

let () =
  Alcotest.run "search"
    [ ( "state",
        [ Alcotest.test_case "initial and comparators" `Quick test_state_initial;
          Alcotest.test_case "of_masks/map/subset" `Quick test_state_of_masks;
          Alcotest.test_case "sortedness" `Quick test_state_sorted_recognition;
          Alcotest.test_case "subset short-circuits" `Quick
            test_state_subset_short_circuit ] );
      ( "subsume",
        [ Alcotest.test_case "permuted positive" `Quick test_subsume_permuted_positive;
          Alcotest.test_case "cardinality filter" `Quick test_subsume_card_filter;
          Alcotest.test_case "level filter" `Quick test_subsume_level_filter;
          Alcotest.test_case "channel filter" `Quick test_subsume_channel_filter;
          Alcotest.test_case "backtracking negative" `Quick
            test_subsume_backtracking_negative;
          QCheck_alcotest.to_alcotest test_subsume_permutation_property ] );
      ( "canonical",
        [ QCheck_alcotest.to_alcotest prop_canonical_masks_invariant;
          Alcotest.test_case "isomorphic networks collide" `Quick
            test_canonical_hash_isomorphic;
          Alcotest.test_case "n=4 exhaustive: collide iff isomorphic" `Quick
            test_canonical_hash_exhaustive_n4 ] );
      ("layers", [ Alcotest.test_case "counts" `Quick test_layer_counts ]);
      ( "arena",
        [ QCheck_alcotest.to_alcotest prop_arena_dedup_agrees;
          QCheck_alcotest.to_alcotest prop_arena_subsumes_parity;
          Alcotest.test_case "legacy/arena engines agree" `Quick
            test_arena_engine_equivalence ] );
      ( "driver",
        [ Alcotest.test_case "known optima n<=6" `Quick test_known_optimal_depths;
          Alcotest.test_case "reference agreement + 10x pruning" `Quick
            test_reference_agreement;
          Alcotest.test_case "redundant hook on/off agreement" `Quick
            test_redundant_hook_agreement;
          Alcotest.test_case "exhaustive refutation" `Quick test_unsorted_exhaustive;
          Alcotest.test_case "budget inconclusive" `Quick test_budget_inconclusive;
          Alcotest.test_case "wall-clock time budget" `Quick
            test_wall_clock_budget;
          Alcotest.test_case "two domains agree" `Quick test_multi_domain_agreement;
          Alcotest.test_case "domains=2 within 2x of domains=1 at n=6" `Quick
            test_domains2_no_regression ] ) ]
