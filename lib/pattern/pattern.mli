(** Input patterns and refinement (Definitions 3.1–3.3).

    An input pattern is a total mapping from wires to pattern symbols;
    we represent it as a [Symbol.t array] indexed by wire. A pattern
    [p] stands for the set [p[V]] of all input permutations [pi] with
    [(p w <_P p w') => (pi w < pi w')]. *)

type t = Symbol.t array

val constant : int -> Symbol.t -> t
(** [constant n sym] assigns [sym] to every one of [n] wires — the
    starting pattern of Theorem 4.1 is [constant n (M 0)]. *)

val symbol_set : t -> Symbol.t -> int list
(** [symbol_set p sym] is the [sym]-set of [p]: the wires mapped to
    [sym], ascending (the "[P]-set" notation of the paper). *)

val m_set : t -> int -> int list
(** [m_set p i = symbol_set p (M i)]. *)

val refines : t -> t -> bool
(** [refines p q] decides [p ⊐_W q]: for all wires [w], [w'],
    [p w <_P p w'] implies [q w <_P q w']. *)

val u_refines : u:int list -> t -> t -> bool
(** [u_refines ~u p q] decides [p ⊐_U q]: [refines p q] and
    [p w = q w] for every wire outside [u] (Definition 3.2(b)). *)

val equivalent : t -> t -> bool
(** Mutual refinement — the patterns denote the same input set and
    differ by an order-preserving renaming. *)

val refines_input : t -> int array -> bool
(** [refines_input p pi] decides [p ⊐_W pi] for a concrete input
    permutation (Definition 3.1(c)). *)

val canonical_input : t -> int array
(** [canonical_input p] is the refinement of [p] to a concrete input
    that assigns values [0 .. n-1] in symbol order, breaking ties
    within a symbol by wire index. Wires sharing a symbol therefore
    receive *adjacent* values — exactly the property Corollary 4.1.1
    needs for the [M_0]-set. *)

val input_with_swap : t -> int -> int -> int array * int array
(** [input_with_swap p w0 w1] is the pair [(pi, pi')] where [pi] is
    {!canonical_input} and [pi'] equals [pi] with the values of wires
    [w0] and [w1] exchanged. Meaningful when [p w0 = p w1], in which
    case both are refinements of [p].
    @raise Invalid_argument if [p w0 <> p w1]. *)

val pp : Format.formatter -> t -> unit
