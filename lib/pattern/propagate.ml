let through nw p =
  if Array.length p <> Network.wires nw then
    invalid_arg "Propagate.through: pattern length mismatch";
  let sym = ref (Array.copy p) in
  let step lvl =
    (match lvl.Network.pre with
    | None -> ()
    | Some perm ->
        let old = !sym in
        let next = Array.copy old in
        Array.iteri (fun w s -> next.(Perm.apply perm w) <- s) old;
        sym := next);
    List.iter
      (fun g ->
        let s = !sym in
        match g with
        | Gate.Compare { lo; hi } ->
            if Symbol.compare s.(lo) s.(hi) > 0 then begin
              let t = s.(lo) in
              s.(lo) <- s.(hi);
              s.(hi) <- t
            end
        | Gate.Exchange { a; b } ->
            let t = s.(a) in
            s.(a) <- s.(b);
            s.(b) <- t)
      lvl.Network.gates
  in
  List.iter step (Network.levels nw);
  !sym

let consistent_with_input nw p pi =
  Pattern.refines_input p pi
  &&
  let out_pattern = through nw p in
  let out_values = Network.eval nw pi in
  Pattern.refines_input out_pattern out_values
