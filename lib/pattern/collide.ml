type verdict = Always | Never | Sometimes of int array | Unknown

(* Deterministic wire-symbol snapshots: the symbol resting on every
   wire just before each level's gates fire (after its permutation). *)
let symbol_snapshots nw p =
  let sym = ref (Array.copy p) in
  List.map
    (fun lvl ->
      (match lvl.Network.pre with
      | None -> ()
      | Some perm ->
          let old = !sym in
          let next = Array.copy old in
          Array.iteri (fun w s -> next.(Perm.apply perm w) <- s) old;
          sym := next);
      let snapshot = Array.copy !sym in
      List.iter
        (fun g ->
          let s = !sym in
          match g with
          | Gate.Compare { lo; hi } ->
              if Symbol.compare s.(lo) s.(hi) > 0 then begin
                let t = s.(lo) in
                s.(lo) <- s.(hi);
                s.(hi) <- t
              end
          | Gate.Exchange { a; b } ->
              let t = s.(a) in
              s.(a) <- s.(b);
              s.(b) <- t)
        lvl.Network.gates;
      snapshot)
    (Network.levels nw)

type track = { mutable posns : bool array }

let singleton tr =
  let found = ref None in
  try
    Array.iteri
      (fun w present ->
        if present then
          match !found with
          | None -> found := Some w
          | Some _ -> raise Exit)
      tr.posns;
    !found
  with Exit -> None

let apply_perm_track perm tr =
  let old = tr.posns in
  let next = Array.make (Array.length old) false in
  Array.iteri (fun w present -> if present then next.(Perm.apply perm w) <- true) old;
  tr.posns <- next

(* Route one value (of fixed symbol [sigma]) through a gate, given the
   wire-symbol snapshot. Positions whose wire symbol differs from
   [sigma] are impossible and pruned. *)
let route_track snapshot sigma tr g =
  match g with
  | Gate.Exchange { a; b } ->
      let at_a = tr.posns.(a) and at_b = tr.posns.(b) in
      tr.posns.(a) <- at_b;
      tr.posns.(b) <- at_a
  | Gate.Compare { lo; hi } ->
      let feasible w = tr.posns.(w) && Symbol.equal snapshot.(w) sigma in
      let at_lo = feasible lo and at_hi = feasible hi in
      tr.posns.(lo) <- false;
      tr.posns.(hi) <- false;
      let place ~from ~other =
        let c = Symbol.compare sigma snapshot.(other) in
        if c < 0 then tr.posns.(lo) <- true
        else if c > 0 then tr.posns.(hi) <- true
        else begin
          (* equal symbols: outcome undetermined, fork *)
          tr.posns.(lo) <- true;
          tr.posns.(hi) <- true
        end;
        ignore from
      in
      if at_lo then place ~from:lo ~other:hi;
      if at_hi then place ~from:hi ~other:lo

(* Random refinement: canonical input with values shuffled within each
   symbol class, deterministically derived from [salt]. *)
let random_refinement p salt =
  let n = Array.length p in
  let rng = Xoshiro.of_seed (salt * 1_000_003) in
  let wires = Array.init n (fun w -> w) in
  Array.sort
    (fun a b ->
      let c = Symbol.compare p.(a) p.(b) in
      if c <> 0 then c else Int.compare a b)
    wires;
  (* Fisher-Yates within runs of equal symbols *)
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j < n && Symbol.equal p.(wires.(!j)) p.(wires.(!i)) do
      incr j
    done;
    for k = !j - 1 downto !i + 1 do
      let r = !i + Xoshiro.int rng ~bound:(k - !i + 1) in
      let t = wires.(k) in
      wires.(k) <- wires.(r);
      wires.(r) <- t
    done;
    i := !j
  done;
  let input = Array.make n 0 in
  Array.iteri (fun v w -> input.(w) <- v) wires;
  input

let analyse ?(witness_attempts = 32) nw p w0 w1 =
  let n = Network.wires nw in
  if Array.length p <> n then invalid_arg "Collide.analyse: pattern length mismatch";
  if w0 = w1 || w0 < 0 || w1 < 0 || w0 >= n || w1 >= n then
    invalid_arg "Collide.analyse: invalid wire pair";
  let snapshots = symbol_snapshots nw p in
  let mk w =
    let posns = Array.make n false in
    posns.(w) <- true;
    { posns }
  in
  let t0 = mk w0 and t1 = mk w1 in
  let sigma0 = p.(w0) and sigma1 = p.(w1) in
  let possible = ref false in
  let definite = ref false in
  List.iter2
    (fun lvl snapshot ->
      (match lvl.Network.pre with
      | None -> ()
      | Some perm ->
          apply_perm_track perm t0;
          apply_perm_track perm t1);
      (* collision detection against the pre-gate snapshot *)
      List.iter
        (fun g ->
          match g with
          | Gate.Exchange _ -> ()
          | Gate.Compare { lo; hi } ->
              let joint =
                (t0.posns.(lo) && t1.posns.(hi)) || (t0.posns.(hi) && t1.posns.(lo))
              in
              if joint then begin
                possible := true;
                match (singleton t0, singleton t1) with
                | Some a, Some b
                  when (a = lo && b = hi) || (a = hi && b = lo) ->
                    definite := true
                | (Some _ | None), _ -> ()
              end)
        lvl.Network.gates;
      List.iter
        (fun g ->
          route_track snapshot sigma0 t0 g;
          route_track snapshot sigma1 t1 g)
        lvl.Network.gates)
    (Network.levels nw) snapshots;
  if !definite then Always
  else if not !possible then Never
  else begin
    (* look for a concrete witness among sampled refinements *)
    let found = ref None in
    let attempt = ref 0 in
    while !found = None && !attempt < witness_attempts do
      let input = random_refinement p !attempt in
      let _, tr = Trace.run nw input in
      if Trace.compared tr input.(w0) input.(w1) then found := Some input;
      incr attempt
    done;
    match !found with Some input -> Sometimes input | None -> Unknown
  end

let noncolliding nw p ws =
  let rec pairs = function
    | [] -> true
    | w :: rest ->
        List.for_all
          (fun w' -> analyse ~witness_attempts:0 nw p w w' = Never)
          rest
        && pairs rest
  in
  pairs ws
