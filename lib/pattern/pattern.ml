type t = Symbol.t array

let constant n sym = Array.make n sym

let symbol_set p sym =
  let out = ref [] in
  for w = Array.length p - 1 downto 0 do
    if Symbol.equal p.(w) sym then out := w :: !out
  done;
  !out

let m_set p i = symbol_set p (Symbol.M i)

(* [p ⊐ q] iff sorting wires by p-symbol then comparing q-symbols never
   inverts: check all wire pairs via the sorted order in O(n^2) worst
   case is avoidable — group wires by p-symbol; q must be constant‐
   compatible: for wires u, v: p u < p v => q u < q v.  Equivalent
   test: order wires by (p, q); then (a) within a p-class any q values
   are allowed?  No: refinement only constrains strict p-inequalities,
   so within a p-class q is unconstrained; (b) across consecutive
   p-classes in p-order, max q of the lower class must be < min q of
   the higher class. *)
let refines p q =
  let n = Array.length p in
  if Array.length q <> n then invalid_arg "Pattern.refines: length mismatch";
  let wires = Array.init n (fun w -> w) in
  Array.sort (fun a b -> Symbol.compare p.(a) p.(b)) wires;
  let ok = ref true in
  (* classes of equal p-symbols in increasing order *)
  let i = ref 0 in
  let prev_max : Symbol.t option ref = ref None in
  while !ok && !i < n do
    let j = ref !i in
    while !j < n && Symbol.equal p.(wires.(!j)) p.(wires.(!i)) do
      incr j
    done;
    (* wires.(i..j-1) share a p-symbol *)
    let qmin = ref q.(wires.(!i)) and qmax = ref q.(wires.(!i)) in
    for k = !i + 1 to !j - 1 do
      let s = q.(wires.(k)) in
      if Symbol.(s < !qmin) then qmin := s;
      if Symbol.(!qmax < s) then qmax := s
    done;
    (match !prev_max with
    | Some m when not Symbol.(m < !qmin) -> ok := false
    | Some _ | None -> ());
    prev_max := Some !qmax;
    i := !j
  done;
  !ok

let u_refines ~u p q =
  refines p q
  &&
  let in_u = Array.make (Array.length p) false in
  List.iter (fun w -> in_u.(w) <- true) u;
  let rec go w =
    w >= Array.length p
    || ((in_u.(w) || Symbol.equal p.(w) q.(w)) && go (w + 1))
  in
  go 0

let equivalent p q = refines p q && refines q p

let refines_input p pi =
  let n = Array.length p in
  if Array.length pi <> n then invalid_arg "Pattern.refines_input: length mismatch";
  let wires = Array.init n (fun w -> w) in
  Array.sort (fun a b -> Symbol.compare p.(a) p.(b)) wires;
  let ok = ref true in
  let i = ref 0 in
  let prev_max = ref min_int in
  while !ok && !i < n do
    let j = ref !i in
    while !j < n && Symbol.equal p.(wires.(!j)) p.(wires.(!i)) do
      incr j
    done;
    let vmin = ref max_int and vmax = ref min_int in
    for k = !i to !j - 1 do
      let v = pi.(wires.(k)) in
      if v < !vmin then vmin := v;
      if v > !vmax then vmax := v
    done;
    if !prev_max >= !vmin then ok := false;
    prev_max := max !prev_max !vmax;
    i := !j
  done;
  !ok

let canonical_input p =
  let n = Array.length p in
  let wires = Array.init n (fun w -> w) in
  Array.sort
    (fun a b ->
      let c = Symbol.compare p.(a) p.(b) in
      if c <> 0 then c else Int.compare a b)
    wires;
  let input = Array.make n 0 in
  Array.iteri (fun v w -> input.(w) <- v) wires;
  input

let input_with_swap p w0 w1 =
  if not (Symbol.equal p.(w0) p.(w1)) then
    invalid_arg "Pattern.input_with_swap: wires carry distinct symbols";
  let pi = canonical_input p in
  let pi' = Array.copy pi in
  pi'.(w0) <- pi.(w1);
  pi'.(w1) <- pi.(w0);
  (pi, pi')

let pp fmt p =
  Format.fprintf fmt "[";
  Array.iteri
    (fun w s ->
      if w > 0 then Format.fprintf fmt " ";
      Symbol.pp fmt s)
    p;
  Format.fprintf fmt "]"
