type t = S of int | X of int * int | M of int | L of int

(* Encode the generated order with a per-class key:
   S_i is below every X/M/L; the X/M band interleaves as
   X(i,_) < M(i) < X(i+1,_); L is above everything, reversed. *)
let compare a b =
  let class_rank = function S _ -> 0 | X _ | M _ -> 1 | L _ -> 2 in
  let ca = class_rank a and cb = class_rank b in
  if ca <> cb then Int.compare ca cb
  else
    match (a, b) with
    | S i, S j -> Int.compare i j
    | L i, L j -> Int.compare j i
    | (X _ | M _), (X _ | M _) ->
        let key = function
          | X (i, j) -> (i, 0, j)
          | M i -> (i, 1, 0)
          | S _ | L _ -> assert false
        in
        Stdlib.compare (key a) (key b)
    | (S _ | L _), _ | _, (S _ | L _) -> assert false

let equal a b = compare a b = 0

let ( < ) a b = compare a b < 0

let to_string = function
  | S i -> Printf.sprintf "S%d" i
  | X (i, j) -> Printf.sprintf "X%d,%d" i j
  | M i -> Printf.sprintf "M%d" i
  | L i -> Printf.sprintf "L%d" i

let pp fmt s = Format.pp_print_string fmt (to_string s)
