(** Collision analysis under a pattern (Definition 3.7).

    For two input wires [w0], [w1] of a network and an input pattern
    [p], the paper distinguishes: they {e collide} under [p] (their
    values are compared under every refinement), they {e can collide}
    (some refinement compares them), or they {e cannot collide} (no
    refinement does).

    The analysis here is sound but incomplete. It tracks, for each of
    the two values, an over-approximating set of wires the value may
    occupy at each level. The key observation making this precise
    enough in practice: by Definition 3.5 the {e symbol} resting on
    each wire is deterministic, so whenever our value (of symbol [s])
    sits at a comparator whose other side shows a strictly ordered
    symbol, its routing is forced; only meetings of equal symbols
    fork the position set.

    - [Never] is sound: the two position sets are never jointly under
      one comparator, so no refinement can compare the values.
    - [Always] is sound: both position sets were singletons up to a
      comparator joining them, so every refinement compares them.
    - [Sometimes input] carries a concrete witness refinement, checked
      by instrumented evaluation.
    - [Unknown] is the honest residual. *)

type verdict =
  | Always  (** Definition 3.7(a): collide under every refinement *)
  | Never  (** Definition 3.7(c): cannot collide *)
  | Sometimes of int array
      (** Definition 3.7(b) witness: a refinement of the pattern under
          which the wires collide (but the analysis could not decide
          whether they always do) *)
  | Unknown

val analyse :
  ?witness_attempts:int -> Network.t -> Pattern.t -> int -> int -> verdict
(** [analyse nw p w0 w1] classifies the pair. [witness_attempts]
    (default 32) bounds the random refinements sampled when the static
    analysis cannot decide; sampling uses a generator derived from the
    pattern, so results are deterministic. *)

val noncolliding : Network.t -> Pattern.t -> int list -> bool
(** [noncolliding nw p ws] is [true] iff the static analysis proves
    every pair of wires in [ws] {e cannot} collide under [p]
    (Definition 3.7(d)). A [false] answer means "not proven". *)
