(** Symbolic propagation of a pattern through a network
    (Definition 3.5).

    A comparator receiving symbols [a] and [b] emits the [<_P]-smaller
    one on its min-output and the larger on its max-output; equal
    symbols emit that symbol on both outputs. This makes the output
    pattern of a network on an input pattern well defined, and it is
    the semantics the adversary's bookkeeping must agree with. *)

val through : Network.t -> Pattern.t -> Pattern.t
(** [through nw p] is the output pattern [nw p]: the symbols resting
    on each wire after all levels (including [pre] permutations and
    exchanges) have fired. *)

val consistent_with_input : Network.t -> Pattern.t -> int array -> bool
(** [consistent_with_input nw p pi] checks the defining property of
    Definition 3.5 on one refinement: evaluating [nw] on the concrete
    input [pi] (which must refine [p]) must produce an output that
    refines the symbolic output [through nw p]. Used by the property
    tests. *)
