(** Crash-safe file publication: tmp + fsync + rename.

    A write that goes through this module is all-or-nothing: readers
    (and a process restarted after a crash) see either the complete
    previous contents of [path] or the complete new contents, never a
    truncated or interleaved file. The contents are written to a
    private temporary file in the destination directory, fsynced,
    renamed over [path] (atomic within a POSIX filesystem), and the
    directory entry is fsynced best-effort so the rename itself
    survives a power loss.

    {!Network_io.save} and {!Checkpoint.write} both route through
    here. Fault injection ({!Fault}) can force a failed write
    (["ckpt-write-fail"]) or publish a deliberately torn file
    (["ckpt-truncate"]) to exercise callers' recovery paths. *)

val write : ?backup:bool -> path:string -> string -> (unit, string) result
(** [write ~path contents] atomically replaces [path] with [contents].
    With [~backup:true] (default [false]) an existing [path] is first
    renamed to [path ^ ".bak"], so the previous good version survives
    even a publication that is later found corrupt. Never raises:
    filesystem errors come back as [Error]; on failure the temporary
    file is removed and the previous [path] (when [backup] is off) is
    untouched. *)

val backup_path : string -> string
(** [backup_path path] is [path ^ ".bak"], where {!write} [~backup:true]
    parks the previous version. *)
