(** Deterministic fault injection for the crash-safety paths.

    Production code never trusts its recovery logic to luck: the
    failure modes a long search must survive — checkpoint writes that
    fail, checkpoint files torn mid-write, the process dying between
    levels — are injected on demand so tests exercise them exactly.

    Configuration comes from the [SNLB_FAULT] environment variable (or
    {!set} in tests), syntax [point\[:prob\[:seed\]\]]:

    - [point] — one of the registered injection points below;
    - [prob] — firing probability per consultation, default [1.0];
    - [seed] — seed of the private SplitMix64 stream deciding
      sub-[1.0] probabilities, default [0]; a fixed seed makes every
      probabilistic schedule reproducible.

    Points:

    - ["ckpt-write-fail"] — {!Atomic_file.write} returns [Error]
      without touching the destination;
    - ["ckpt-truncate"] — {!Atomic_file.write} publishes a file
      holding only half the intended bytes (the torn file a power
      loss between write and fsync can leave);
    - ["kill-level"] — {!Driver.run} behaves as if killed at a level
      boundary (checkpoint already flushed, run reports interrupted);
    - ["kill-block"] — {!Theorem41.run} likewise, between adversary
      blocks;
    - ["kill-gen"] — the evolutionary driver likewise, at a generation
      boundary;
    - ["kill-worker"] — the {!Shard} supervisor sabotages a worker's
      {e first} attempt at a unit: the child exits immediately with a
      nonzero status before touching the unit (retries run clean, so
      with probability [1.0] every unit crashes exactly once and the
      merged outcome must still equal the fault-free run);
    - ["stall-worker"] — likewise, but the child hangs without ever
      writing its heartbeat, exercising the staleness timeout and
      SIGKILL path;
    - ["corrupt-result"] — likewise, but the child completes the unit
      and then flips a byte in the published result envelope, so the
      supervisor's CRC check must reject it and retry.

    The three worker points draw from the supervisor's stream (the
    parent process), not the worker's, so a seeded sub-[1.0] schedule
    is reproducible regardless of worker interleaving.

    When [SNLB_FAULT] is unset the whole module is a single [ref] read
    per consultation — the fault paths cost nothing in production. An
    unparseable [SNLB_FAULT] value warns on [stderr] once and injects
    nothing (a typo must not silently change behaviour {e or} crash a
    long run). Every fired injection bumps the ["faults.injected"]
    counter so [--metrics] shows what a test run actually exercised. *)

val points : string list
(** The registered injection points. *)

val set : string option -> (unit, string) result
(** [set (Some spec)] installs a fault configuration (same syntax as
    [SNLB_FAULT]), [set None] disables injection. [Error] (and no
    configuration change) if the spec is malformed or names an
    unregistered point. Tests use this; the environment variable is
    read once, lazily, before the first consultation. *)

val active : unit -> string option
(** The configured point, if any (after consulting [SNLB_FAULT]). *)

val fire : string -> bool
(** [fire point] — should the fault at [point] trigger now? [false]
    immediately when unconfigured or configured for another point;
    otherwise decided by the configured probability and stream. *)
