let points =
  [ "ckpt-write-fail"; "ckpt-truncate"; "kill-level"; "kill-block"; "kill-gen";
    "kill-worker"; "stall-worker"; "corrupt-result" ]

type spec = { point : string; prob : float; rng : Splitmix.t }

let c_injected = Metrics.counter "faults.injected"

(* None until the env var has been consulted; Some config afterwards.
   A mutex guards the rng draw (fire can be consulted from the CLI
   main loop and, in principle, worker domains). *)
let config : spec option option ref = ref None
let lock = Mutex.create ()

let parse s =
  let fail msg = Error (Printf.sprintf "bad fault spec %S: %s" s msg) in
  match String.split_on_char ':' (String.trim s) with
  | [] | [ "" ] -> fail "empty"
  | point :: rest ->
      if not (List.mem point points) then
        fail
          (Printf.sprintf "unknown point (known: %s)"
             (String.concat ", " points))
      else begin
        match rest with
        | [] -> Ok (point, 1.0, 0)
        | [ p ] | [ p; "" ] -> (
            match float_of_string_opt p with
            | Some prob when prob >= 0.0 && prob <= 1.0 -> Ok (point, prob, 0)
            | Some _ -> fail "probability outside [0, 1]"
            | None -> fail "probability is not a float")
        | [ p; sd ] -> (
            match (float_of_string_opt p, int_of_string_opt sd) with
            | Some prob, Some seed when prob >= 0.0 && prob <= 1.0 ->
                Ok (point, prob, seed)
            | Some _, Some _ -> fail "probability outside [0, 1]"
            | None, _ -> fail "probability is not a float"
            | _, None -> fail "seed is not an integer")
        | _ -> fail "too many ':' fields"
      end

let install = function
  | None ->
      config := Some None;
      Ok ()
  | Some s -> (
      match parse s with
      | Ok (point, prob, seed) ->
          config :=
            Some (Some { point; prob; rng = Splitmix.create (Int64.of_int seed) });
          Ok ()
      | Error _ as e -> e)

let set spec =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) (fun () -> install spec)

let from_env () =
  match Sys.getenv_opt "SNLB_FAULT" with
  | None -> config := Some None
  | Some s -> (
      match install (Some s) with
      | Ok () -> ()
      | Error msg ->
          Printf.eprintf "snlb: SNLB_FAULT ignored: %s\n%!" msg;
          config := Some None)

let current () =
  match !config with
  | Some c -> c
  | None ->
      from_env ();
      Option.join !config

let active () =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () -> Option.map (fun s -> s.point) (current ()))

let fire point =
  match !config with
  | Some None -> false (* the common case: injection off, one ref read *)
  | _ ->
      Mutex.lock lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock lock)
        (fun () ->
          match current () with
          | None -> false
          | Some spec ->
              spec.point = point
              && (spec.prob >= 1.0
                 ||
                 (* 53 uniform mantissa bits from the private stream *)
                 let u =
                   Int64.to_float (Int64.shift_right_logical (Splitmix.next spec.rng) 11)
                   /. 9007199254740992.0
                 in
                 u < spec.prob)
              &&
              (Metrics.incr c_injected;
               true))
