type t = {
  kind : string;
  meta : (string * string) list;
  payload : string;
}

let magic = "SNLBCKPT"
let version = 1

let c_writes = Metrics.counter "checkpoint.writes"
let c_bytes = Metrics.counter "checkpoint.bytes"
let c_retries = Metrics.counter "checkpoint.retries"
let h_write_ms = Metrics.histogram "checkpoint.write_ms"
let h_restore_ms = Metrics.histogram "checkpoint.restore_ms"

let add_u32 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let add_lstring buf s =
  add_u32 buf (String.length s);
  Buffer.add_string buf s

let encode t =
  let body = Buffer.create (String.length t.payload + 256) in
  add_u32 body version;
  add_lstring body t.kind;
  add_u32 body (List.length t.meta);
  List.iter
    (fun (k, v) ->
      add_lstring body k;
      add_lstring body v)
    t.meta;
  add_lstring body t.payload;
  let body = Buffer.contents body in
  let head = Buffer.create 12 in
  Buffer.add_string head magic;
  add_u32 head (Crc32.string body);
  Buffer.add_string head body;
  Buffer.contents head

let write ?(attempts = 3) ?(backoff_ms = 10.) ~path t =
  let t0 = Clock.wall () in
  let contents = encode t in
  let rec go attempt =
    match Atomic_file.write ~backup:true ~path contents with
    | Ok () ->
        Metrics.incr c_writes;
        Metrics.add c_bytes (String.length contents);
        Metrics.observe h_write_ms ((Clock.wall () -. t0) *. 1e3);
        Ok ()
    | Error _ as e ->
        if attempt >= attempts then e
        else begin
          Metrics.incr c_retries;
          Unix.sleepf
            (Float.min 1.0
               (backoff_ms *. (2. ** float_of_int (attempt - 1)) /. 1000.));
          go (attempt + 1)
        end
  in
  go 1

(* --- reading --- *)

exception Bad of string

let u32 s pos =
  if pos + 4 > String.length s then raise (Bad "truncated integer field");
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

let lstring s pos =
  let len = u32 s pos in
  if pos + 4 + len > String.length s then raise (Bad "truncated string field");
  (String.sub s (pos + 4) len, pos + 4 + len)

let decode s =
  let mlen = String.length magic in
  if String.length s < mlen + 8 then raise (Bad "file too short");
  if String.sub s 0 mlen <> magic then raise (Bad "bad magic (not a checkpoint)");
  let stored_crc = u32 s mlen in
  let body_pos = mlen + 4 in
  let crc = Crc32.update 0 s body_pos (String.length s - body_pos) in
  if crc <> stored_crc then
    raise
      (Bad (Printf.sprintf "CRC mismatch (stored %08x, computed %08x)" stored_crc crc));
  let v = u32 s body_pos in
  if v <> version then raise (Bad (Printf.sprintf "unsupported format version %d" v));
  let kind, pos = lstring s (body_pos + 4) in
  let nmeta = u32 s pos in
  if nmeta > 0xFFFF then raise (Bad "implausible meta count");
  let pos = ref (pos + 4) in
  let meta = ref [] in
  for _ = 1 to nmeta do
    let k, p = lstring s !pos in
    let v, p = lstring s p in
    meta := (k, v) :: !meta;
    pos := p
  done;
  let payload, pos = lstring s !pos in
  if pos <> String.length s then raise (Bad "trailing bytes after payload");
  { kind; meta = List.rev !meta; payload }

let read ~path =
  let t0 = Clock.wall () in
  let contents =
    match In_channel.with_open_bin path In_channel.input_all with
    | s -> Ok s
    | exception Sys_error m -> Error m
  in
  match contents with
  | Error m -> Error (Printf.sprintf "cannot read checkpoint %s: %s" path m)
  | Ok s -> (
      match decode s with
      | t ->
          Metrics.observe h_restore_ms ((Clock.wall () -. t0) *. 1e3);
          Ok t
      | exception Bad m ->
          Error (Printf.sprintf "invalid checkpoint %s: %s" path m))

let load ~path =
  match read ~path with
  | Ok t -> Ok (t, `Primary)
  | Error primary -> (
      match read ~path:(Atomic_file.backup_path path) with
      | Ok t -> Ok (t, `Backup primary)
      | Error backup -> Error (Printf.sprintf "%s; fallback also failed: %s" primary backup))
