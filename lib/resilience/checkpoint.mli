(** Versioned, checksummed checkpoint container files.

    A checkpoint is an opaque payload (the writer's serialized
    progress) wrapped in a self-validating binary envelope and
    published atomically ({!Atomic_file}, with the previous version
    kept as [path ^ ".bak"]). The envelope:

    {v
    offset  size  field
    0       8     magic "SNLBCKPT"
    8       4     CRC-32 (big-endian) of every byte from offset 12 on
    12      4     format version (currently 1)
    16      4+k   kind: length-prefixed string, e.g. "snlb-search-driver"
    ..      ..    meta: count, then length-prefixed key/value pairs
    ..      4+p   payload: length-prefixed bytes
    v}

    All integers are unsigned 32-bit big-endian; nothing may follow
    the payload. {!read} re-derives the CRC over the tail, so {e any}
    single corrupted byte is caught: a flip in the magic fails the
    magic check, a flip in the CRC field itself or anywhere after it
    fails the checksum comparison. Torn files (truncated at any byte)
    fail the length or checksum checks. Validation never raises —
    every defect is an [Error] with a reason, so a crash mid-write can
    never take down the process that restarts afterwards.

    The [kind] string names the writer ({!Driver}, {!Theorem41}); the
    [meta] pairs carry the writer's compatibility keys (width [n],
    restriction flags, level reached) that are checked before the
    payload is trusted. Observability: writes bump
    ["checkpoint.writes"] / ["checkpoint.bytes"] and time into the
    ["checkpoint.write_ms"] histogram; reads time into
    ["checkpoint.restore_ms"]. *)

type t = {
  kind : string;  (** writer identity, validated on resume *)
  meta : (string * string) list;  (** writer compatibility keys *)
  payload : string;  (** opaque serialized progress *)
}

val write :
  ?attempts:int -> ?backoff_ms:float -> path:string -> t -> (unit, string) result
(** Envelope, checksum and atomically publish, keeping any previous
    [path] as [path ^ ".bak"]. Never raises.

    Transient write failures (a full disk clearing up, an NFS blip, an
    injected ["ckpt-write-fail"]) are retried up to [attempts] times
    total (default 3) with exponential backoff starting at
    [backoff_ms] (default 10, doubling, capped at 1 s per sleep); each
    retry bumps the ["checkpoint.retries"] counter. After the budget
    the last error is returned unchanged — a permanently unwritable
    checkpoint still hard-fails the run. *)

val read : path:string -> (t, string) result
(** Read and validate one file: magic, version, structural lengths,
    CRC, no trailing bytes. Never raises. *)

val load : path:string -> (t * [ `Primary | `Backup of string ], string) result
(** {!read} [path]; if that fails for any reason (missing, torn,
    corrupted), fall back to [path ^ ".bak"]. [`Backup reason] reports
    why the primary was rejected so callers can warn; [Error] means
    both copies are unusable (the message covers both). *)
