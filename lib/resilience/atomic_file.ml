let backup_path path = path ^ ".bak"

let fsync_dir dir =
  (* best-effort: some filesystems refuse O_RDONLY fsync on a directory *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

let write ?(backup = false) ~path contents =
  if Fault.fire "ckpt-write-fail" then Error "injected fault: write failure"
  else begin
    let contents =
      if Fault.fire "ckpt-truncate" then
        String.sub contents 0 (String.length contents / 2)
      else contents
    in
    let dir = Filename.dirname path in
    let tmp =
      Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ()) (Domain.self () :> int)
    in
    let publish () =
      let fd =
        Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
      in
      let cleanup_fd = ref (Some fd) in
      Fun.protect
        ~finally:(fun () -> Option.iter Unix.close !cleanup_fd)
        (fun () ->
          let len = String.length contents in
          let written = Unix.write_substring fd contents 0 len in
          if written <> len then failwith "short write";
          Unix.fsync fd;
          Unix.close fd;
          cleanup_fd := None);
      if backup && Sys.file_exists path then Unix.rename path (backup_path path);
      Unix.rename tmp path;
      fsync_dir dir
    in
    match publish () with
    | () -> Ok ()
    | exception e ->
        (try Sys.remove tmp with Sys_error _ -> ());
        let msg =
          match e with
          | Unix.Unix_error (err, fn, arg) ->
              Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message err)
          | Sys_error m | Failure m -> m
          | e -> Printexc.to_string e
        in
        Error (Printf.sprintf "atomic write to %s failed: %s" path msg)
  end
