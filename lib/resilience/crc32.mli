(** CRC-32 (IEEE 802.3, polynomial [0xEDB88320]), the checksum guarding
    checkpoint payloads against torn or bit-flipped files.

    Table-driven, one byte per step; values fit OCaml's native [int]
    (always in [0, 2^32)). The empty string checksums to [0] and the
    standard check vector ["123456789"] to [0xCBF43926]. *)

val string : string -> int
(** CRC-32 of the whole string. *)

val update : int -> string -> int -> int -> int
(** [update crc s pos len] extends [crc] with [s.[pos .. pos+len-1]],
    so [update (update 0 a 0 la) b 0 lb = string (a ^ b)].
    @raise Invalid_argument if the range is outside [s]. *)
