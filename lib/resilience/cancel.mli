(** Cooperative cancellation.

    A token is a single atomic flag: signal handlers (or any other
    thread/domain) {!cancel} it, and long-running loops — the search
    driver's expansion workers, the adversary's block loop — poll
    {!cancelled} at their natural yield points and drain cleanly
    instead of being abandoned mid-step. Cancellation is one-way and
    sticky: once tripped, a token stays tripped. *)

type t

val create : unit -> t
(** A fresh, untripped token. *)

val cancel : t -> unit
(** Trip the token. Safe from signal handlers and any domain. *)

val cancelled : t -> bool
(** Has the token been tripped? One atomic read. *)
