(** Sortedness predicates and the "constant output mapping" test.

    The paper defines a sorting network as one that maps every input
    permutation to the same output permutation. For networks built in
    the standard layout that constant mapping is "ascending by wire
    index", which {!is_sorted} checks; {!output_assignment} exposes the
    general form for networks whose outputs land in a routed order. *)

val is_sorted : int array -> bool
(** Ascending (non-strict) order. *)

val sorts_input : Network.t -> int array -> bool
(** [sorts_input nw input] evaluates and checks ascending output. *)

val output_assignment : Network.t -> int array -> int array
(** [output_assignment nw input] is the array [a] with [a.(v)] the
    output wire on which value [v] lands — the "output permutation"
    of the paper's sorting-network definition. [input] must be a
    permutation of [0, n). *)

val same_output_assignment : Network.t -> int array -> int array -> bool
(** Whether two input permutations land wire-for-wire identically —
    the failure witness shape produced by Corollary 4.1.1: if two
    *distinct* inputs induce the same assignment the network sorts at
    most one of them. *)

val inversions : int array -> int
(** Number of inverted pairs; 0 iff sorted. [O(n log n)]. *)

val displacement : int array -> int
(** Sum over positions of [|a.(i) - i|] for a permutation [a] of
    [0, n) — how far the output is from sorted, used by the
    average-case experiment E9. *)
