(* Average-case depth (paper Section 5), computed on the compiled
   engine: the network is lowered once (structurally cached) and each
   input makes one pass over the flat instruction stream, with
   per-level snapshots reported back in the original register
   coordinates for the "equals the sorted target" test. *)

let sorted_depth_compiled c input =
  let n = Compiled.wires c in
  if Array.length input <> n then
    invalid_arg "Sort_depth.sorted_depth: input length mismatch";
  let target = Array.copy input in
  Array.sort compare target;
  (* [matches] holds, in decreasing order, the comparator-level indices
     of the suffix of levels since the contents last became (and
     stayed) equal to the sorted target *)
  let matches = ref [] in
  if input = target then matches := [ 0 ];
  let final =
    Compiled.scan_levels c input ~on_level:(fun ~comparator_levels values ->
        (* checked after every level (including exchange/permutation-only
           ones) so "stays sorted" really means continuously *)
        if values = target then matches := comparator_levels :: !matches
        else matches := [])
  in
  match List.rev !matches with
  | first :: _ when final = target -> Some first
  | _ -> None

let sorted_depth nw input = sorted_depth_compiled (Cache.compile nw) input

let average_case_depth ?(samples = 500) rng nw =
  let n = Network.wires nw in
  let c = Cache.compile nw in
  let depths = ref [] in
  let ok = ref true in
  for _ = 1 to samples do
    if !ok then begin
      let input = Perm.to_array (Perm.random rng n) in
      match sorted_depth_compiled c input with
      | Some d -> depths := d :: !depths
      | None -> ok := false
    end
  done;
  if !ok then Some (Stat_summary.of_ints !depths) else None

let exact_average_depth_01 ?(max_wires = 16) nw =
  let n = Network.wires nw in
  if n > max_wires then
    invalid_arg "Sort_depth.exact_average_depth_01: too many wires";
  let c = Cache.compile nw in
  let total = ref 0 in
  let ok = ref true in
  for t = 0 to (1 lsl n) - 1 do
    if !ok then begin
      let input = Array.init n (fun w -> (t lsr w) land 1) in
      match sorted_depth_compiled c input with
      | Some d -> total := !total + d
      | None -> ok := false
    end
  done;
  if !ok then Some (float_of_int !total /. float_of_int (1 lsl n)) else None
