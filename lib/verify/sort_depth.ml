let sorted_depth nw input =
  let n = Network.wires nw in
  if Array.length input <> n then
    invalid_arg "Sort_depth.sorted_depth: input length mismatch";
  let target = Array.copy input in
  Array.sort compare target;
  (* record, per comparator level, whether the working array equals the
     sorted target after it fired *)
  let values = ref (Array.copy input) in
  let matches = ref [] in
  let comparator_levels = ref 0 in
  if !values = target then matches := [ 0 ];
  List.iter
    (fun lvl ->
      (match lvl.Network.pre with
      | None -> ()
      | Some p -> values := Perm.permute_array p !values);
      let has_comparator = List.exists Gate.is_comparator lvl.Network.gates in
      List.iter
        (fun g ->
          let v = !values in
          match g with
          | Gate.Compare { lo; hi } ->
              if v.(lo) > v.(hi) then begin
                let t = v.(lo) in
                v.(lo) <- v.(hi);
                v.(hi) <- t
              end
          | Gate.Exchange { a; b } ->
              let t = v.(a) in
              v.(a) <- v.(b);
              v.(b) <- t)
        lvl.Network.gates;
      if has_comparator then incr comparator_levels;
      (* check after every level (including exchange/permutation-only
         ones) so "stays sorted" really means continuously *)
      if !values = target then matches := !comparator_levels :: !matches
      else matches := [])
    (Network.levels nw);
  (* matches now holds, in decreasing order, the suffix of levels since
     the array last became (and stayed) sorted *)
  match List.rev !matches with
  | first :: _ when !values = target -> Some first
  | _ -> None

let average_case_depth ?(samples = 500) rng nw =
  let n = Network.wires nw in
  let depths = ref [] in
  let ok = ref true in
  for _ = 1 to samples do
    if !ok then begin
      let input = Perm.to_array (Perm.random rng n) in
      match sorted_depth nw input with
      | Some d -> depths := d :: !depths
      | None -> ok := false
    end
  done;
  if !ok then Some (Stat_summary.of_ints !depths) else None

let exact_average_depth_01 ?(max_wires = 16) nw =
  let n = Network.wires nw in
  if n > max_wires then
    invalid_arg "Sort_depth.exact_average_depth_01: too many wires";
  let total = ref 0 in
  let ok = ref true in
  for t = 0 to (1 lsl n) - 1 do
    if !ok then begin
      let input = Array.init n (fun w -> (t lsr w) land 1) in
      match sorted_depth nw input with
      | Some d -> total := !total + d
      | None -> ok := false
    end
  done;
  if !ok then Some (float_of_int !total /. float_of_int (1 lsl n)) else None
