(* Exact 0-1 verification, routed through the compiled engine: the
   network is compiled once (structurally cached), then the bit-sliced
   executor checks 63 test inputs per pass over the instruction
   stream.  This module owns the exponential-blowup guard and the
   witness cross-check against the interpretive Network.eval. *)

let check_guard ?(max_wires = 26) nw =
  let n = Network.wires nw in
  if n > max_wires then
    invalid_arg
      (Printf.sprintf "Zero_one: %d wires exceeds max_wires=%d (2^n inputs)" n max_wires);
  n

let input_of_index n t = Array.init n (fun w -> (t lsr w) land 1)

let c_sweeps = Metrics.counter "verify.zero_one.sweeps"
let c_inputs = Metrics.counter "verify.zero_one.inputs"
let h_rate = Metrics.histogram "verify.zero_one.inputs_per_s"

let verify ?max_wires ?(domains = 1) nw =
  let n = check_guard ?max_wires nw in
  let c = Cache.compile nw in
  let t0 = Clock.wall () in
  let answer = Bitslice.find_unsorted ~domains c in
  let dt = Float.max 1e-9 (Clock.wall () -. t0) in
  Metrics.incr c_sweeps;
  Metrics.add c_inputs (1 lsl n);
  Metrics.observe h_rate (float_of_int (1 lsl n) /. dt);
  match answer with
  | None -> Ok ()
  | Some t ->
      let input = input_of_index n t in
      (* independent cross-check: the witness must also fail under the
         interpretive evaluator, or engine and network disagree *)
      if Sortedness.is_sorted (Network.eval nw input) then
        failwith "Zero_one.verify: engine and direct evaluation disagree";
      Error input

let is_sorting_network ?max_wires ?domains nw =
  match verify ?max_wires ?domains nw with Ok () -> true | Error _ -> false

let failing_input ?max_wires ?domains nw =
  match verify ?max_wires ?domains nw with
  | Ok () -> None
  | Error input -> Some input

let unsorted_count ?max_wires ?(domains = 1) nw =
  ignore (check_guard ?max_wires nw);
  Bitslice.count_unsorted ~domains (Cache.compile nw)
