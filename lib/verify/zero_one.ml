let bits_per_word = 62

(* Columns for the test inputs [t_lo, t_hi): column.(w) holds one bit
   per test input, packed 62 per word; bit b of word j refers to input
   t = t_lo + j*62 + b and holds bit w of t. *)
let initial_columns n t_lo t_hi =
  let count = t_hi - t_lo in
  let words = (count + bits_per_word - 1) / bits_per_word in
  Array.init n (fun w ->
      let col = Array.make words 0 in
      for i = 0 to count - 1 do
        if ((t_lo + i) lsr w) land 1 = 1 then begin
          let j = i / bits_per_word and b = i mod bits_per_word in
          col.(j) <- col.(j) lor (1 lsl b)
        end
      done;
      col)

let run_network nw t_lo t_hi =
  let n = Network.wires nw in
  let cols = ref (initial_columns n t_lo t_hi) in
  let words = Array.length !cols.(0) in
  let apply_gate cols g =
    match g with
    | Gate.Compare { lo; hi } ->
        let a = cols.(lo) and b = cols.(hi) in
        for j = 0 to words - 1 do
          let x = a.(j) and y = b.(j) in
          a.(j) <- x land y;
          b.(j) <- x lor y
        done
    | Gate.Exchange { a; b } ->
        let t = cols.(a) in
        cols.(a) <- cols.(b);
        cols.(b) <- t
  in
  List.iter
    (fun lvl ->
      (match lvl.Network.pre with
      | None -> ()
      | Some p ->
          let old = Array.copy !cols in
          for w = 0 to n - 1 do
            !cols.(Perm.apply p w) <- old.(w)
          done);
      List.iter (apply_gate !cols) lvl.Network.gates)
    (Network.levels nw);
  !cols

let check_guard ?(max_wires = 26) nw =
  let n = Network.wires nw in
  if n > max_wires then
    invalid_arg
      (Printf.sprintf "Zero_one: %d wires exceeds max_wires=%d (2^n inputs)" n max_wires);
  n

(* Word [j] may have junk above the last valid test-input bit; this
   masks it off.  [(1 lsl 62) - 1 = max_int] by wraparound, so the
   full-word case needs no special path. *)
let valid_mask count j =
  let lo = j * bits_per_word in
  let valid = min bits_per_word (count - lo) in
  (1 lsl valid) - 1

(* Violation bitmap per word over the slice: inputs for which some
   adjacent output pair is out of order. *)
let violations n count cols =
  let words = Array.length cols.(0) in
  Array.init words (fun j ->
      let v = ref 0 in
      for w = 0 to n - 2 do
        (* sorted ascending requires col_w <= col_{w+1} pointwise *)
        v := !v lor (cols.(w).(j) land lnot cols.(w + 1).(j))
      done;
      !v land valid_mask count j)

let slice_clean nw ~lo ~hi =
  let n = Network.wires nw in
  let cols = run_network nw lo hi in
  Array.for_all (fun v -> v = 0) (violations n (hi - lo) cols)

let is_sorting_network ?max_wires ?(domains = 1) nw =
  let n = check_guard ?max_wires nw in
  let results =
    Par.map_ranges ~domains ~lo:0 ~hi:(1 lsl n) (fun ~lo ~hi ->
        slice_clean nw ~lo ~hi)
  in
  List.for_all Fun.id results

let slice_failing nw ~lo ~hi =
  let n = Network.wires nw in
  let cols = run_network nw lo hi in
  let viol = violations n (hi - lo) cols in
  let found = ref None in
  Array.iteri
    (fun j v ->
      if !found = None && v <> 0 then begin
        let b = ref 0 in
        while (v lsr !b) land 1 = 0 do
          incr b
        done;
        found := Some (lo + (j * bits_per_word) + !b)
      end)
    viol;
  !found

let failing_input ?max_wires ?(domains = 1) nw =
  let n = check_guard ?max_wires nw in
  let hits =
    Par.map_ranges ~domains ~lo:0 ~hi:(1 lsl n) (fun ~lo ~hi ->
        slice_failing nw ~lo ~hi)
  in
  match List.find_opt Option.is_some hits with
  | None -> None
  | Some None -> assert false
  | Some (Some t) ->
      let input = Array.init n (fun w -> (t lsr w) land 1) in
      let out = Network.eval nw input in
      if Sortedness.is_sorted out then
        failwith "Zero_one.failing_input: packed and direct evaluation disagree";
      Some input

let slice_unsorted nw ~lo ~hi =
  let n = Network.wires nw in
  let cols = run_network nw lo hi in
  Array.fold_left
    (fun acc v -> acc + Bitops.popcount v)
    0
    (violations n (hi - lo) cols)

let unsorted_count ?max_wires ?(domains = 1) nw =
  let n = check_guard ?max_wires nw in
  let counts =
    Par.map_ranges ~domains ~lo:0 ~hi:(1 lsl n) (fun ~lo ~hi ->
        slice_unsorted nw ~lo ~hi)
  in
  List.fold_left ( + ) 0 counts
