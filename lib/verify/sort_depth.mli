(** The paper's average-case depth measure (Section 5).

    "First, determine for every possible input the depth of the first
    level of the network at which the input becomes sorted (i.e.,
    agrees with an appropriate fixed assignment of ranks given to the
    nodes at that level). Then define the average case complexity as
    the average of this depth over all inputs."

    For the ascending sorters in this library the fixed rank
    assignment at every level is "value v belongs on wire v", so an
    input has become sorted at the first comparator level after which
    the working array equals the identity — and, comparators being
    monotone on already-sorted arrays only for uniform orientation,
    we verify the array *stays* sorted to the end before crediting the
    level (so the definition is meaningful for mixed-orientation
    networks too).

    All measures run on the compiled engine ({!Compiled.scan_levels}
    via the structural {!Cache}), so sampling many inputs through one
    network pays compilation once. *)

val sorted_depth : Network.t -> int array -> int option
(** [sorted_depth nw input] is [Some d] where [d] is the number of
    comparator levels after which the contents first coincide with the
    fully sorted order and keep coinciding until the end ([Some 0] if
    the input is already sorted); [None] if the network never sorts
    this input. *)

val average_case_depth :
  ?samples:int -> Xoshiro.t -> Network.t -> Stat_summary.t option
(** [average_case_depth rng nw] samples random permutation inputs
    (default 500) and summarises their sorted depths. [None] if some
    sampled input is never sorted (the network is not a sorter on the
    sample). *)

val exact_average_depth_01 : ?max_wires:int -> Network.t -> float option
(** The same average computed exactly over all [2^n] zero-one inputs
    (guarded like {!Zero_one}; default [max_wires] 16). [None] if some
    0-1 input never sorts. *)
