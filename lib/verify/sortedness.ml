let is_sorted a =
  let rec go i = i >= Array.length a - 1 || (a.(i) <= a.(i + 1) && go (i + 1)) in
  go 0

let sorts_input nw input = is_sorted (Network.eval nw input)

let output_assignment nw input =
  let out = Network.eval nw input in
  let n = Array.length out in
  let a = Array.make n (-1) in
  Array.iteri
    (fun wire v ->
      if v < 0 || v >= n || a.(v) >= 0 then
        invalid_arg "Sortedness.output_assignment: input is not a permutation";
      a.(v) <- wire)
    out;
  a

let same_output_assignment nw i1 i2 =
  output_assignment nw i1 = output_assignment nw i2

(* Merge-sort based inversion count. *)
let inversions a =
  let a = Array.copy a in
  let tmp = Array.make (Array.length a) 0 in
  let count = ref 0 in
  let rec sort lo hi =
    if hi - lo > 1 then begin
      let mid = (lo + hi) / 2 in
      sort lo mid;
      sort mid hi;
      let i = ref lo and j = ref mid and k = ref lo in
      while !i < mid && !j < hi do
        if a.(!i) <= a.(!j) then begin
          tmp.(!k) <- a.(!i);
          incr i
        end
        else begin
          tmp.(!k) <- a.(!j);
          count := !count + (mid - !i);
          incr j
        end;
        incr k
      done;
      while !i < mid do
        tmp.(!k) <- a.(!i);
        incr i;
        incr k
      done;
      while !j < hi do
        tmp.(!k) <- a.(!j);
        incr j;
        incr k
      done;
      Array.blit tmp lo a lo (hi - lo)
    end
  in
  sort 0 (Array.length a);
  !count

let displacement a =
  let total = ref 0 in
  Array.iteri (fun i v -> total := !total + abs (v - i)) a;
  !total
