let iter_permutations n f =
  if n < 0 || n > 10 then
    invalid_arg "Exhaustive.iter_permutations: n must be in [0,10]";
  let a = Array.init n (fun i -> i) in
  (* Heap's algorithm, iterative form. *)
  let c = Array.make n 0 in
  f a;
  let i = ref 0 in
  while !i < n do
    if c.(!i) < !i then begin
      let j = if !i mod 2 = 0 then 0 else c.(!i) in
      let t = a.(j) in
      a.(j) <- a.(!i);
      a.(!i) <- t;
      f a;
      c.(!i) <- c.(!i) + 1;
      i := 0
    end
    else begin
      c.(!i) <- 0;
      incr i
    end
  done

exception Found

let sorts_all_permutations nw =
  let n = Network.wires nw in
  (* compiled scalar evaluation: n! inputs through one flat instruction
     stream; independent of the bit-sliced path, so the 0-1-principle
     property test still cross-checks two distinct executors *)
  let c = Cache.compile nw in
  try
    iter_permutations n (fun p ->
        if not (Sortedness.is_sorted (Compiled.eval c p)) then raise Found);
    true
  with Found -> false

(* Deliberately NOT routed through the engine: this is the ground-truth
   oracle the engine's own tests compare against, so it must stay on
   the interpretive Network.eval. *)
let sorts_all_zero_one nw =
  let n = Network.wires nw in
  if n > 22 then invalid_arg "Exhaustive.sorts_all_zero_one: n too large";
  try
    for t = 0 to (1 lsl n) - 1 do
      let input = Array.init n (fun w -> (t lsr w) land 1) in
      if not (Sortedness.is_sorted (Network.eval nw input)) then raise Found
    done;
    true
  with Found -> false

let constant_output_assignment nw =
  let n = Network.wires nw in
  let reference = ref None in
  try
    iter_permutations n (fun p ->
        let a = Sortedness.output_assignment nw p in
        match !reference with
        | None -> reference := Some a
        | Some r -> if a <> r then raise Found);
    true
  with Found -> false

(* Enumerate the refinements of the encoded pattern: permutations pi
   with (p w < p w') => (pi w < pi w').  Equivalently: sort wires by
   pattern value; wires in the same pattern class receive a contiguous
   block of values in any internal order. *)
let iter_refinements pattern f =
  let n = Array.length pattern in
  (* Wires grouped by pattern symbol, in symbol order. *)
  let wires = Array.init n (fun w -> w) in
  Array.sort (fun w0 w1 -> compare (pattern.(w0), w0) (pattern.(w1), w1)) wires;
  let groups =
    let out = ref [] and cur = ref [ wires.(0) ] in
    for i = 1 to n - 1 do
      if pattern.(wires.(i)) = pattern.(wires.(i - 1)) then
        cur := wires.(i) :: !cur
      else begin
        out := List.rev !cur :: !out;
        cur := [ wires.(i) ]
      end
    done;
    out := List.rev !cur :: !out;
    List.rev !out
  in
  let assignment = Array.make n 0 in
  let rec go base = function
    | [] -> f (Array.copy assignment)
    | group :: rest ->
        let k = List.length group in
        let garr = Array.of_list group in
        iter_permutations k (fun sigma ->
            Array.iteri (fun i w -> assignment.(w) <- base + sigma.(i)) garr;
            go (base + k) rest)
  in
  go 0 groups

let can_collide_oracle nw pattern w0 w1 =
  let n = Network.wires nw in
  if n > 8 then invalid_arg "Exhaustive.can_collide_oracle: n too large";
  if Array.length pattern <> n then
    invalid_arg "Exhaustive.can_collide_oracle: pattern length mismatch";
  let found = ref false in
  iter_refinements pattern (fun pi ->
      if (not !found) && Trace.wires_collide nw pi w0 w1 then found := true);
  !found

let collides_always_oracle nw pattern w0 w1 =
  let n = Network.wires nw in
  if n > 8 then invalid_arg "Exhaustive.collides_always_oracle: n too large";
  if Array.length pattern <> n then
    invalid_arg "Exhaustive.collides_always_oracle: pattern length mismatch";
  let all = ref true in
  iter_refinements pattern (fun pi ->
      if !all && not (Trace.wires_collide nw pi w0 w1) then all := false);
  !all
