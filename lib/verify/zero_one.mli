(** Exact sorting-network verification via the 0-1 principle.

    A comparator network sorts all inputs iff it sorts all [2^n]
    inputs over {0,1} (Knuth 5.3.4, cited by Section 5 of the paper).
    Checking goes through the compiled engine: the network is lowered
    once to a flat instruction stream ({!Cache} / {!Compiled}) and the
    bit-sliced executor ({!Bitslice}) evaluates 63 test inputs per
    pass — a comparator is one [(AND, OR)] word pair — so verifying
    [n = 20] is a few tens of millions of word operations instead of
    [2^20] interpretive evaluations.

    Networks may contain [pre] permutations and exchanges; both are
    folded into the instruction stream at compile time.

    All sweeps short-circuit: the first failing input stops every
    parallel chunk (a shared atomic flag), and the witness is returned,
    re-checked against {!Network.eval} before being surfaced. *)

val verify :
  ?max_wires:int -> ?domains:int -> Network.t -> (unit, int array) result
(** [verify nw] is [Ok ()] iff [nw] sorts ascending by wire index, and
    otherwise [Error input] for a 0-1 input it fails to sort — with
    [domains = 1] (the default) the smallest such input in the
    test-input order, with more domains some failing input (whichever
    chunk wins the race; the others are short-circuited). [domains]
    splits the [2^n]-input sweep across OCaml 5 domains via
    {!Par.map_ranges}.
    @raise Invalid_argument if [wires nw > max_wires] (default 26), to
    guard against accidental exponential blowups. *)

val is_sorting_network : ?max_wires:int -> ?domains:int -> Network.t -> bool
(** [verify nw = Ok ()]. *)

val failing_input : ?max_wires:int -> ?domains:int -> Network.t -> int array option
(** [failing_input nw] is [Some v] for some 0-1 input [v] that [nw]
    fails to sort, or [None] if [nw] is a sorting network. The witness
    is re-checked against {!Network.eval} before being returned. *)

val unsorted_count : ?max_wires:int -> ?domains:int -> Network.t -> int
(** Number of 0-1 inputs (out of [2^n]) that the network leaves
    unsorted — a resolution measure for partial sorters (E9). *)
