(** Exact sorting-network verification via the 0-1 principle.

    A comparator network sorts all inputs iff it sorts all [2^n]
    inputs over {0,1} (Knuth 5.3.4, cited by Section 5 of the paper).
    On 0-1 values a comparator is [(AND, OR)], so we evaluate all
    [2^n] inputs simultaneously: each wire carries a bit *column*
    indexed by test input, packed 62 to a word. Verification of
    [n = 20] takes a few hundred million word operations instead of
    [2^20] separate evaluations.

    Networks may contain [pre] permutations and exchanges; both are
    handled (they permute columns). *)

val is_sorting_network : ?max_wires:int -> ?domains:int -> Network.t -> bool
(** [is_sorting_network nw] decides exactly whether [nw] sorts
    ascending by wire index. [domains] (default 1) splits the
    [2^n]-input sweep across OCaml 5 domains — the test-input ranges
    are independent, so speedup is near-linear for large [n].
    @raise Invalid_argument if [wires nw > max_wires] (default 26), to
    guard against accidental exponential blowups. *)

val failing_input : ?max_wires:int -> ?domains:int -> Network.t -> int array option
(** [failing_input nw] is [Some v] for some 0-1 input [v] that [nw]
    fails to sort, or [None] if [nw] is a sorting network. The witness
    is re-checked against {!Network.eval} before being returned. *)

val unsorted_count : ?max_wires:int -> ?domains:int -> Network.t -> int
(** Number of 0-1 inputs (out of [2^n]) that the network leaves
    unsorted — a resolution measure for partial sorters (E9). *)
