(** Brute-force oracles for small instances.

    These are deliberately naive reference implementations used to
    cross-check the clever ones (packed 0-1 verification, the symbolic
    collision analysis, the adversary certificates) on sizes where
    exhaustive enumeration is feasible. *)

val iter_permutations : int -> (int array -> unit) -> unit
(** [iter_permutations n f] calls [f] on every permutation of
    [{0..n-1}] (Heap's algorithm; the array passed to [f] is reused —
    copy if retained). @raise Invalid_argument if [n > 10]. *)

val sorts_all_permutations : Network.t -> bool
(** Exact check over all [n!] permutation inputs ([n <= 10]),
    evaluated through the compiled scalar engine (one instruction
    stream, [n!] inputs). *)

val sorts_all_zero_one : Network.t -> bool
(** Exact check over all [2^n] 0-1 inputs by direct (unpacked,
    interpretive) evaluation ([n <= 22]); the oracle for {!Zero_one}
    and the engine — deliberately kept on {!Network.eval}. *)

val constant_output_assignment : Network.t -> bool
(** The paper's literal definition of a sorting network: every input
    permutation induces the same value-to-output-wire assignment
    ([n <= 10]). Equivalent to {!sorts_all_permutations} up to output
    routing. *)

val can_collide_oracle : Network.t -> int array -> int -> int -> bool
(** [can_collide_oracle nw symbolic_input w0 w1]: given an input
    pattern encoded as an integer array (equal entries = equal pattern
    symbols, order of entries = symbol order), decide by enumerating
    *all* refinements to permutations whether wires [w0] and [w1] can
    collide (Definition 3.7(b)). Exponential; [n <= 10]. *)

val collides_always_oracle : Network.t -> int array -> int -> int -> bool
(** Definition 3.7(a): whether [w0] and [w1] collide under every
    refinement of the encoded pattern. *)
