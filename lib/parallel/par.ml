let default_cap = 8
let clamp_max = 64
let clamp_domains v = min clamp_max (max 1 v)

let recommended_domains () =
  let default () =
    let cores = Domain.recommended_domain_count () in
    min default_cap (max 1 (cores - 1))
  in
  match Sys.getenv_opt "SNLB_DOMAINS" with
  | None -> default ()
  | Some s -> (
      (* an empty / all-whitespace value means "unset", silently *)
      match String.trim s with
      | "" -> default ()
      | t -> (
          match int_of_string_opt t with
          | Some v when v >= 1 && v <= 64 -> v
          | Some v ->
              let c = clamp_domains v in
              Printf.eprintf
                "snlb: SNLB_DOMAINS=%d out of range [1, 64]; clamping to %d\n%!"
                v c;
              c
          | None ->
              let d = default () in
              Printf.eprintf
                "snlb: SNLB_DOMAINS=%S is not an integer; using default %d\n%!"
                s d;
              d))

let map_ranges ~domains ~lo ~hi f =
  if lo > hi then invalid_arg "Par.map_ranges: lo > hi";
  if domains < 1 then invalid_arg "Par.map_ranges: domains < 1";
  let total = hi - lo in
  let chunks = max 1 (min domains total) in
  if chunks = 1 || total = 0 then [ f ~lo ~hi ]
  else begin
    let bounds =
      List.init chunks (fun i ->
          let a = lo + (total * i / chunks) in
          let b = lo + (total * (i + 1) / chunks) in
          (a, b))
    in
    match bounds with
    | [] -> assert false
    | (a0, b0) :: rest ->
        (* Every spawned chunk is wrapped so Domain.join never raises;
           the calling-domain chunk runs under Fun.protect whose finally
           joins every handle. A raise anywhere — including in the first
           chunk, the SIGINT [Cancel] drain path — therefore never leaks
           a running domain or skips a join. The first failing chunk in
           range order is re-raised with its backtrace once all chunks
           have been joined. *)
        let wrap g =
          match g () with
          | v -> Ok v
          | exception e -> Error (e, Printexc.get_raw_backtrace ())
        in
        let handles =
          List.map
            (fun (a, b) -> Domain.spawn (fun () -> wrap (fun () -> f ~lo:a ~hi:b)))
            rest
        in
        let joined = ref [] in
        let first =
          Fun.protect
            ~finally:(fun () -> joined := List.map Domain.join handles)
            (fun () -> wrap (fun () -> f ~lo:a0 ~hi:b0))
        in
        List.map
          (function
            | Ok v -> v
            | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
          (first :: !joined)
  end

let map_list ?(min_per_domain = 1) ~domains f xs =
  if domains < 1 then invalid_arg "Par.map_list: domains < 1";
  if min_per_domain < 1 then invalid_arg "Par.map_list: min_per_domain < 1";
  let arr = Array.of_list xs in
  let n = Array.length arr in
  (* Work-size threshold: spawning a domain costs orders of magnitude
     more than mapping one small element, so a list that cannot feed
     every domain at least [min_per_domain] elements shrinks its
     fan-out — down to fully sequential — instead of paying spawn and
     GC-synchronisation overhead that dwarfs the work (the domains=2
     10x regression on small search frontiers). *)
  let domains = min domains (n / min_per_domain) in
  if domains <= 1 || n <= 1 then List.map f xs
  else begin
    let out = Array.make n None in
    let results =
      map_ranges ~domains ~lo:0 ~hi:n (fun ~lo ~hi ->
          List.init (hi - lo) (fun i -> (lo + i, f arr.(lo + i))))
    in
    List.iter (List.iter (fun (i, y) -> out.(i) <- Some y)) results;
    Array.to_list (Array.map Option.get out)
  end

let map_list_until ?min_per_domain ~domains ~stop ~default f xs =
  map_list ?min_per_domain ~domains (fun x -> if stop () then default else f x) xs
