(** Minimal multicore fan-out for the embarrassingly parallel parts of
    the library (OCaml 5 domains, no external dependencies).

    Used by {!Zero_one} to split exact 0-1 verification across
    test-input ranges and by the experiment harness for independent
    sampling legs. Work is split into contiguous chunks, one domain per
    chunk; domains never share mutable state, so no synchronisation
    beyond [join] is needed. *)

val default_cap : int
(** 8 — the ceiling of the {e heuristic} default below. *)

val clamp_max : int
(** 64 — the ceiling an explicit [SNLB_DOMAINS] is clamped to. *)

val recommended_domains : unit -> int
(** [max 1 (cpu count - 1)], capped at {!default_cap} (8); the extra
    domains beyond the chunk count are never spawned. The
    [SNLB_DOMAINS] environment variable overrides the heuristic with a
    fixed count, clamped to [\[1, {!clamp_max}\]] (64) — CI and
    benchmarks use it to pin parallelism deterministically.

    Note the deliberate asymmetry: the {e default} never exceeds 8 even
    on a 64-core box (fan-out past 8 domains has shown no wins on the
    library's workloads, and idle-core stealing hurts co-tenants),
    while an {e explicit} [SNLB_DOMAINS] is trusted up to 64. Callers
    that report parallelism (the CLI's [--metrics], the bench JSON
    rows) should record both the chosen count and {!default_cap} so a
    row measured on a big machine is not misread as using every core —
    see the [par.domains] / [par.domains.default_cap] counters.

    An out-of-range or non-integer value is never silently honoured:
    it triggers a one-line [stderr] warning naming the bad value before
    clamping (respectively falling back to the heuristic). An empty or
    all-whitespace value means "unset" and is ignored without a
    warning. *)

val map_ranges :
  domains:int -> lo:int -> hi:int -> (lo:int -> hi:int -> 'a) -> 'a list
(** [map_ranges ~domains ~lo ~hi f] partitions [\[lo, hi)] into at most
    [domains] contiguous chunks and evaluates [f] on each chunk in its
    own domain (the first chunk runs on the calling domain). Results
    come back in range order. [f] must not touch mutable state shared
    with the other chunks. With [domains <= 1] everything runs inline.

    Exception safety: every spawned domain is joined before the call
    returns, {e including} when a chunk raises — a raise in the
    calling-domain chunk no longer leaks running domains (they are
    joined under [Fun.protect]), and a raise in any chunk is re-raised
    (first failing chunk in range order, original backtrace) only after
    all chunks have been joined, so no work is left in flight.
    @raise Invalid_argument if [lo > hi] or [domains < 1]. *)

val map_list :
  ?min_per_domain:int -> domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list ~domains f xs] maps [f] over [xs] with up to [domains]
    concurrent domains, preserving order. [min_per_domain] (default 1)
    is a work-size threshold: the fan-out is capped at
    [length xs / min_per_domain] domains, so a list too small to feed
    every domain that many elements runs on fewer domains — or fully
    sequentially — instead of paying a spawn per handful of elements.
    Callers whose per-element work is small relative to a domain spawn
    (the search driver's frontier expansion) should pass a threshold;
    [1] preserves the old always-parallel behaviour.
    @raise Invalid_argument if [domains < 1] or [min_per_domain < 1]. *)

val map_list_until :
  ?min_per_domain:int ->
  domains:int ->
  stop:(unit -> bool) ->
  default:'b ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** {!map_list} with cooperative cancellation: [stop] is consulted
    before each element, and once it returns [true] every remaining
    element yields [default] without calling [f], so an in-flight
    fan-out drains in order instead of being abandoned mid-level.
    [stop] runs on worker domains — it must be domain-safe (an atomic
    read, e.g. [Resilience.Cancel.cancelled]) and cheap. Elements
    mapped before the trip keep their real results. *)
