(* Static analysis of every library sorter: dead/redundant comparator
   counts and topology-conformance verdicts. The classics are expected
   to be fully live (zero dead gates) — every comparator earns its
   keep — and only the shuffle-based bitonic form should conform to
   the iterated-reverse-delta topology of Theorem 4.1. *)

let verdict (f : Analysis.facts) =
  match f.Analysis.sortedness with
  | Analysis.Sorting_proved -> "proved (exact)"
  | Analysis.Sorting_refuted _ -> "REFUTED"
  | Analysis.Sorted_by_bounds -> "proved (bounds)"
  | Analysis.Unknown -> "unknown"

let opt = function None -> "no" | Some k -> Printf.sprintf "yes (%d)" k

let run ~quick =
  Exp_util.header ~id:"E15"
    ~title:"static analysis of the classics: dead gates and conformance";
  let ns = if quick then [ 8 ] else [ 8; 16 ] in
  let tbl =
    Ascii_table.create
      ~columns:
        [ ("network", Ascii_table.Left);
          ("n", Ascii_table.Right);
          ("comparators", Ascii_table.Right);
          ("dead", Ascii_table.Right);
          ("redundant", Ascii_table.Right);
          ("sortedness", Ascii_table.Left);
          ("shuffle", Ascii_table.Left);
          ("rev-delta", Ascii_table.Left);
          ("delta", Ascii_table.Left) ]
  in
  List.iter
    (fun n ->
      List.iter
        (fun e ->
          if not (e.Sorter_registry.pow2_only && not (Bitops.is_power_of_two n))
          then begin
            let nw = e.Sorter_registry.build n in
            let { Analysis.facts; _ } = Analysis.analyze nw in
            Ascii_table.add_row tbl
              [ e.Sorter_registry.name;
                string_of_int n;
                string_of_int facts.Analysis.comparators;
                string_of_int (List.length facts.Analysis.dead);
                string_of_int (List.length facts.Analysis.redundant);
                verdict facts;
                opt facts.Analysis.shuffle_stages;
                opt facts.Analysis.reverse_delta_blocks;
                opt facts.Analysis.delta_blocks ]
          end)
        Sorter_registry.all)
    ns;
  Ascii_table.print tbl;
  Exp_util.footnote
    "dead/redundant by the exact 0-1 reachable-set domain for n <= 12, the \
     sound order-bounds domain above; 'unknown' at n = 16 is the bounds \
     domain declining to decide, not a refutation. The merge-based classics \
     (bitonic, odd-even merge, Pratt, transposition) are fully live — no \
     gate ever wasted — while the periodic and Shellsort families provably \
     carry dead comparators, the price of their oblivious periodic \
     structure. Only bitonic-shuffle — the register program flattened to a \
     circuit — is shuffle-based, though periodic's blocks also form the \
     (reverse) delta skeleton Theorem 4.1 needs."
