(** E8 — the f(n)-truncated variant (Section 5).

    Allowing an arbitrary permutation after every [f] shuffle stages
    decomposes each chunk into a forest of [f]-level reverse delta
    trees; the adversary unions the per-tree collections. The paper
    predicts a depth lower bound scaling like [f lg n / lg f]; the
    experiment sweeps [f] for each [n] and reports chunks and total
    comparator levels survived on dense networks. *)

val run : quick:bool -> unit
