(** E13 — how hard non-sorters are to catch (the representative-set
    discussion of Section 5).

    The paper rules out polynomial-size "representative" 0-1 test sets
    for the shuffle-based class. The executable cousin: take correct
    sorters and delete a single comparator; each mutant fails to sort
    (E-mutation tests prove it), but often on a *tiny* fraction of the
    [2^n] zero-one inputs, so any fixed test set that catches all
    near-misses must be large, and random testing needs many draws.
    The table reports, per sorter, the distribution over mutants of
    the number of failing 0-1 inputs, and the implied expected number
    of random tests to catch the hardest mutant. *)

val run : quick:bool -> unit
