let divisors_of d = List.filter (fun f -> d mod f = 0) (List.init d (fun i -> i + 1))

let run ~quick =
  Exp_util.header ~id:"E8"
    ~title:"truncated variant: permutation every f stages";
  let tbl =
    Ascii_table.create
      ~columns:
        [ ("n", Ascii_table.Right);
          ("f", Ascii_table.Right);
          ("chunks", Ascii_table.Right);
          ("survived", Ascii_table.Right);
          ("levels", Ascii_table.Right);
          ("f*lgn/lgf", Ascii_table.Right) ]
  in
  List.iter
    (fun n ->
      let d = Bitops.log2_exact n in
      let prog = Bitonic.shuffle_program ~n in
      List.iter
        (fun f ->
          let chunks = d * d / f in
          let r = Truncated.run ~f prog in
          let prediction =
            if f = 1 then float_of_int d
            else
              float_of_int (f * d) /. log (float_of_int f) *. log 2.
          in
          Ascii_table.add_row tbl
            [ string_of_int n;
              string_of_int f;
              string_of_int chunks;
              string_of_int r.Truncated.survived;
              string_of_int (r.Truncated.survived * f);
              Exp_util.float2 prediction ])
        (divisors_of d))
    (Exp_util.ns ~quick);
  Ascii_table.print tbl;
  Exp_util.footnote
    "network: the lg^2 n-stage shuffle-based bitonic sorter. survived counts chunks \
     with >= 2 uncompared adjacent values left; levels = survived * f. The last column \
     is the paper's class-level scale Omega(f lg n / lg f) for networks allowed a free \
     permutation every f stages — a statement about the worst network of that class, \
     while the measured rows show the adversary on one fixed sorter, where finer \
     re-selection granularity (smaller f) can only help it. f = lg n is Theorem 4.1."
