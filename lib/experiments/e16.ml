(* Evolutionary rediscovery of depth-optimal sorting networks.  For
   each width the genome shape is pinned to the proved optimal depth
   (Bundala & Zavodny), so the only question is whether the population
   can fill the shape with a sorter — the depth itself is never
   evolved past the optimum. *)

let run ~quick =
  Exp_util.header ~id:"E16"
    ~title:"evolutionary search vs known optimal depths (fixed seeds)";
  let tbl =
    Ascii_table.create
      ~columns:
        [ ("n", Ascii_table.Right);
          ("optimal depth", Ascii_table.Right);
          ("evolved depth", Ascii_table.Right);
          ("generation", Ascii_table.Right);
          ("comparators", Ascii_table.Right);
          ("pop", Ascii_table.Right);
          ("seed", Ascii_table.Right);
          ("witness", Ascii_table.Left) ]
  in
  (* pop scales with width; seeds are fixed so the table is a
     regression surface, not a lottery *)
  let configs =
    [ (4, 64, 1); (5, 256, 1); (6, 512, 1); (7, 512, 1); (8, 1024, 1) ]
  in
  let configs =
    if quick then List.filter (fun (n, _, _) -> n <= 6) configs else configs
  in
  List.iter
    (fun (n, pop, seed) ->
      let opt =
        match Evolve.known_optimal_depth n with
        | Some d -> d
        | None -> assert false
      in
      let cfg =
        { (Evolve.default_config ~wires:n ~depth:opt) with
          Evolve.pop;
          gens = 600;
          seed;
        }
      in
      let r = Evolve.run cfg in
      let evolved, gen, size, witness =
        match r.Evolve.found_at with
        | Some g ->
            let nw = Genome.to_network r.Evolve.best in
            ( string_of_int (Network.depth nw),
              string_of_int g,
              string_of_int (Genome.size r.Evolve.best),
              if Zero_one.is_sorting_network nw then "verified" else "BROKEN" )
        | None ->
            ( "none",
              "-",
              string_of_int (Genome.size r.Evolve.best),
              Printf.sprintf "best %d/%d" r.Evolve.best_fitness
                (Fitness.max_fitness ~wires:n) )
      in
      Ascii_table.add_row tbl
        [ string_of_int n;
          string_of_int opt;
          evolved;
          gen;
          size;
          string_of_int pop;
          string_of_int seed;
          witness ])
    configs;
  Ascii_table.print tbl;
  Exp_util.footnote
    "tournament selection (k=3, elitism 2) over fixed-depth genomes; fitness = \
     sorted 0-1 inputs counted by the lane-packed bit-sliced engine; repair \
     mutation deletes analyzer-proved dead comparators. Every witness is \
     re-verified by the independent 0-1 checker. Quick mode stops at n = 6."
