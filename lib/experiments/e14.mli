(** E14 — exact optimal network depths for n <= 8 by the generic search
    engine, against the known values (1, 3, 3, 5, 5, 6, 6 for
    n = 2..8), the paper's asymptotic Corollary 4.1.1 depth bound, and
    the shallowest sorter in the library registry.

    Each row certifies the optimum with a layered breadth-first search
    (subsumption-pruned) and re-verifies the witness with the
    independent compiled 0-1 checker. Quick mode stops at n = 6. *)

val run : quick:bool -> unit
