(** E15 — the static analyzer over the sorter registry: per-network
    dead and redundant comparator counts (zero for the merge-based
    classics; provably positive for the periodic and Shellsort
    families), the sortedness verdict by domain (exact for n <= 12,
    order bounds above), and the three topology-conformance verdicts
    (shuffle-based, iterated reverse delta, delta skeleton) that gate
    Theorem 4.1. Quick mode analyzes n = 8 only; the full run adds
    n = 16 to show the exact/bounds domain split. *)

val run : quick:bool -> unit
