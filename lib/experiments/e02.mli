(** E2 — Theorem 4.1: iterating over consecutive blocks.

    For iterated reverse delta networks (random shuffle blocks, with
    and without random inter-block permutations), tracks the special
    set size [|D|] block by block against the theorem's guarantee
    [n / lg^{4d} n], and reports how many blocks the adversary
    survives. *)

val run : quick:bool -> unit
