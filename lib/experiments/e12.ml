let run ~quick =
  Exp_util.header ~id:"E12"
    ~title:"Shellsort-based networks by increment family";
  let tbl =
    Ascii_table.create
      ~columns:
        [ ("family", Ascii_table.Left);
          ("n", Ascii_table.Right);
          ("increments", Ascii_table.Right);
          ("depth", Ascii_table.Right);
          ("size", Ascii_table.Right);
          ("depth/lg^2 n", Ascii_table.Right);
          ("sorts (0-1)", Ascii_table.Left) ]
  in
  let sizes = if quick then [ 16; 64; 256; 1024 ] else [ 16; 64; 256; 1024; 4096 ] in
  List.iter
    (fun name ->
      let incs = Option.get (Shellsort_net.family name) in
      List.iter
        (fun n ->
          let increments = incs ~n in
          let nw = Shellsort_net.network ~n ~increments in
          let lg = log (float_of_int n) /. log 2. in
          let verified =
            if n <= 16 then string_of_bool (Zero_one.is_sorting_network nw)
            else "(n>16: see tests)"
          in
          Ascii_table.add_row tbl
            [ name;
              string_of_int n;
              string_of_int (List.length increments);
              string_of_int (Network.depth nw);
              string_of_int (Network.size nw);
              Exp_util.float2 (float_of_int (Network.depth nw) /. (lg *. lg));
              verified ])
        sizes)
    Shellsort_net.family_names;
  (* Pratt's 2-level-per-increment construction for comparison *)
  List.iter
    (fun n ->
      let nw = Pratt.network ~n in
      let lg = log (float_of_int n) /. log 2. in
      Ascii_table.add_row tbl
        [ "pratt-2level";
          string_of_int n;
          string_of_int (List.length (Pratt.increments ~n));
          string_of_int (Network.depth nw);
          string_of_int (Network.size nw);
          Exp_util.float2 (float_of_int (Network.depth nw) /. (lg *. lg));
          (if n <= 16 then string_of_bool (Zero_one.is_sorting_network nw)
           else "(n>16: see tests)") ])
    sizes;
  Ascii_table.print tbl;
  Exp_util.footnote
    "the generic realisation pays a chain-length sweep per increment, so every family \
     goes polynomial; only Pratt increments admit the 2-level-per-increment shortcut \
     (rows 'pratt-2level', ~0.75 lg^2 n) because 2h- and 3h-sortedness leaves disjoint \
     inversions — the Theta(lg^2 n) regime of the paper's and Cypher's bounds."
