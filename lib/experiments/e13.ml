let drop_gate nw ~level ~index =
  let lvls =
    List.mapi
      (fun li lvl ->
        if li <> level then lvl
        else
          { lvl with
            Network.gates =
              List.filteri (fun gi _ -> gi <> index) lvl.Network.gates })
      (Network.levels nw)
  in
  Network.create ~wires:(Network.wires nw) lvls

let run ~quick =
  Exp_util.header ~id:"E13"
    ~title:"near-miss detectability (representative-set discussion)";
  let tbl =
    Ascii_table.create
      ~columns:
        [ ("sorter", Ascii_table.Left);
          ("n", Ascii_table.Right);
          ("broken mutants", Ascii_table.Right);
          ("failing 0-1 inputs (min/med/max)", Ascii_table.Left);
          ("hardest: share of 2^n", Ascii_table.Right);
          ("E[random tests]", Ascii_table.Right) ]
  in
  let sorters =
    [ ("bitonic", (fun n -> Bitonic.network ~n), [ 8; 16 ]);
      ("odd-even-merge", (fun n -> Odd_even_merge.network ~n), [ 8; 16 ]);
      ("pratt", (fun n -> Pratt.network ~n), [ 8; 12; 16 ]) ]
  in
  ignore quick;
  List.iter
    (fun (name, build, sizes) ->
      List.iter
        (fun n ->
          let nw = build n in
          let counts = ref [] in
          List.iteri
            (fun level lvl ->
              List.iteri
                (fun index g ->
                  if Gate.is_comparator g then begin
                    let mutant = drop_gate nw ~level ~index in
                    counts := Zero_one.unsorted_count mutant :: !counts
                  end)
                lvl.Network.gates)
            (Network.levels nw);
          let all = List.sort compare !counts in
          let redundant, broken = List.partition (fun c -> c = 0) all in
          let k = List.length broken in
          let min_c = List.hd broken in
          let med_c = List.nth broken (k / 2) in
          let max_c = List.nth broken (k - 1) in
          let total = float_of_int (1 lsl n) in
          Ascii_table.add_row tbl
            [ name;
              string_of_int n;
              Printf.sprintf "%d (+%d redundant)" k (List.length redundant);
              Printf.sprintf "%d / %d / %d" min_c med_c max_c;
              Printf.sprintf "%.2e" (float_of_int min_c /. total);
              Printf.sprintf "%.0f" (total /. float_of_int min_c) ])
        sizes)
    sorters;
  Ascii_table.print tbl;
  Exp_util.footnote
    "Batcher's networks are irredundant (every deletion breaks them; the mutation \
     tests assert it) while Pratt's has spare comparators ('redundant' column). The \
     hardest broken mutants fail on a vanishing share of inputs — min share halves per \
     doubled n — so a representative test set must include those rare witnesses and \
     grow with n: the effect behind Section 5's impossibility of polynomial \
     representative sets."
