let run ~quick =
  Exp_util.header ~id:"E5"
    ~title:"depth landscape: Batcher upper bound vs. the lower bound";
  let tbl =
    Ascii_table.create
      ~columns:
        [ ("n", Ascii_table.Right);
          ("lg n", Ascii_table.Right);
          ("bitonic", Ascii_table.Right);
          ("formula", Ascii_table.Right);
          ("oem", Ascii_table.Right);
          ("periodic", Ascii_table.Right);
          ("pratt", Ascii_table.Right);
          ("lower bound", Ascii_table.Right);
          ("trivial", Ascii_table.Right) ]
  in
  let measured_top = if quick then 10 else 13 in
  List.iter
    (fun d ->
      let n = 1 lsl d in
      let measured build = string_of_int (Network.depth (build n)) in
      let bitonic, oem, periodic, pratt =
        if d <= measured_top then
          ( measured (fun n -> Bitonic.network ~n),
            measured (fun n -> Odd_even_merge.network ~n),
            measured (fun n -> Periodic.network ~n),
            measured (fun n -> Pratt.network ~n) )
        else ("-", "-", "-", "-")
      in
      Ascii_table.add_row tbl
        [ string_of_int n;
          string_of_int d;
          bitonic;
          string_of_int (Bitonic.depth_formula ~n);
          oem;
          periodic;
          pratt;
          Exp_util.float2 (Theorem41.depth_lower_bound ~n);
          string_of_int d ])
    (List.init (if quick then 8 else 18) (fun i -> i + 3));
  Ascii_table.print tbl;
  Exp_util.footnote
    "lower bound = lg^2 n/(4 lglg n) from Corollary 4.1.1; the Theta(lglg n) gap to \
     bitonic's lg n(lg n+1)/2 is the paper's open question."
