(** E11 — minimal-depth search for shuffle-based sorters (Section 6 /
    Knuth 5.3.4.47, decided exhaustively for tiny n).

    Reports the exact minimal stage count of a shuffle-based sorting
    network for n = 2 and 4, and the exhaustive refutation of depth-4
    (and, budget permitting, depth-5) networks for n = 8, against
    bitonic's lg n (lg n + 1)/2 stages. *)

val run : quick:bool -> unit
