let run ~quick =
  Exp_util.header ~id:"E11"
    ~title:"minimal depth of shuffle-based sorters (exhaustive, tiny n)";
  let tbl =
    Ascii_table.create
      ~columns:
        [ ("n", Ascii_table.Right);
          ("depth", Ascii_table.Right);
          ("verdict", Ascii_table.Left);
          ("bitonic depth", Ascii_table.Right);
          ("nodes/time note", Ascii_table.Left) ]
  in
  let row ?(max_nodes = 200_000_000) n depth note =
    let budget = { Driver.max_nodes; max_seconds = None } in
    let verdict =
      match Min_depth.search ~n ~depth ~budget () with
      | Min_depth.Sorter prog ->
          assert (Min_depth.verify_witness ~n prog);
          "sorter exists (witness verified)"
      | Min_depth.Impossible -> "impossible (exhaustive)"
      | Min_depth.Inconclusive | Min_depth.Interrupted -> "inconclusive (budget)"
    in
    Ascii_table.add_row tbl
      [ string_of_int n; string_of_int depth; verdict;
        string_of_int (Bitonic.depth_formula ~n); note ]
  in
  row 2 1 "trivial";
  row 4 2 "refutes depth < bitonic's 3";
  row 4 3 "Batcher optimal at n=4";
  row 8 3 "trivial lower bound lg n";
  row 8 4 "";
  if not quick then
    row ~max_nodes:2_000_000_000 8 5 "proves bitonic optimal at n=8";
  Ascii_table.print tbl;
  Exp_util.footnote
    "search space: images of all 2^n zero-one inputs under stage prefixes — a layered \
     BFS through the generic Search.Driver with equality dedup and the unit-mask \
     reachability prune; every 'sorter exists' witness is re-verified by the \
     independent packed 0-1 checker."
