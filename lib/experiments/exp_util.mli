(** Shared plumbing for the experiment modules. *)

val rng : unit -> Xoshiro.t
(** A fresh generator with the fixed experiment seed, so every
    experiment table is reproducible. *)

val header : id:string -> title:string -> unit
(** Prints the experiment banner. *)

val footnote : string -> unit
(** Prints an indented note below a table. *)

val ns : quick:bool -> int list
(** The standard sweep of power-of-two input sizes: up to [2^10] in
    quick mode, [2^13] otherwise. *)

val fraction : int -> int -> string
(** ["a/b (p%)"] rendering. *)

val float2 : float -> string
(** Two-decimal rendering. *)
