(** E3 — Corollary 4.1.1: fooling pairs, validated end to end.

    For shuffle-based networks shallow enough that the adversary's
    special set keeps >= 2 wires, extract the fooling pair (pi, pi')
    and validate — by instrumented concrete evaluation, independently
    of the symbolic engine — that the witness values are never
    compared, that both inputs are routed identically, and that the
    full M_0-set is pairwise uncompared. *)

val run : quick:bool -> unit
