(** All experiments, addressable by id (used by the CLI and the bench
    harness). *)

type t = { id : string; title : string; run : quick:bool -> unit }

val all : t list

val find : string -> t option
(** Case-insensitive lookup by id ("E1" .. "E10"). *)

val run_all : quick:bool -> unit
