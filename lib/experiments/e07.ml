let builders =
  [ ("oblivious", Adaptive.oblivious_all_compare);
    ("greedy", Adaptive.greedy_killer);
    ("steering", Adaptive.steering_killer) ]

let run ~quick =
  Exp_util.header ~id:"E7" ~title:"adaptive builders vs. the adversary";
  let tbl =
    Ascii_table.create
      ~columns:
        [ ("builder", Ascii_table.Left);
          ("n", Ascii_table.Right);
          ("blocks", Ascii_table.Right);
          ("survived", Ascii_table.Right);
          ("final |D|", Ascii_table.Right);
          ("certificate", Ascii_table.Left) ]
  in
  let blocks = if quick then 10 else 14 in
  List.iter
    (fun n ->
      List.iter
        (fun (name, builder) ->
          let r = Adaptive.run ~n ~blocks builder in
          let cert_status =
            if r.Adaptive.survived < blocks then "builder won earlier"
            else
              match Certificate.of_pattern r.Adaptive.final_pattern with
              | None -> "adversary lost"
              | Some cert -> (
                  let nw = Register_model.to_network r.Adaptive.program in
                  match Certificate.validate nw cert with
                  | Ok () -> "valid"
                  | Error e -> "FAIL: " ^ e)
          in
          Ascii_table.add_row tbl
            [ name;
              string_of_int n;
              string_of_int blocks;
              string_of_int r.Adaptive.survived;
              string_of_int (List.length r.Adaptive.final_m_set);
              cert_status ])
        builders)
    (Exp_util.ns ~quick);
  Ascii_table.print tbl;
  Exp_util.footnote
    "builders see the adversary's full state (more than the paper grants) and still \
     cannot beat the Omega(lg n / lglg n)-block survival."
