let run ~quick =
  Exp_util.header ~id:"E6"
    ~title:"adversary vs. the bitonic sorter (shuffle form)";
  let tbl =
    Ascii_table.create
      ~columns:
        [ ("n", Ascii_table.Right);
          ("blocks", Ascii_table.Right);
          ("survived", Ascii_table.Right);
          ("defeated", Ascii_table.Left);
          ("|D| trajectory", Ascii_table.Left) ]
  in
  List.iter
    (fun n ->
      let it = Bitonic.as_iterated ~n in
      let r = Theorem41.run it in
      let ds =
        String.concat ","
          (List.map
             (fun (b : Theorem41.block_report) -> string_of_int b.d_size)
             r.reports)
      in
      let blocks = Iterated.block_count it in
      Ascii_table.add_row tbl
        [ string_of_int n;
          string_of_int blocks;
          string_of_int r.Theorem41.survived;
          (if r.Theorem41.survived < blocks then "yes" else "NO (would disprove sorting!)");
          ds ])
    (Exp_util.ns ~quick);
  Ascii_table.print tbl;
  Exp_util.footnote
    "a sorter must defeat the adversary; bitonic halves |D| per block, losing it exactly \
     on the final block — the adversary survives lg n - 1 of lg n blocks."
