type t = { id : string; title : string; run : quick:bool -> unit }

let all =
  [ { id = "E1"; title = "Lemma 4.1 single-block survival"; run = E01.run };
    { id = "E2"; title = "Theorem 4.1 block iteration"; run = E02.run };
    { id = "E3"; title = "Corollary 4.1.1 fooling pairs"; run = E03.run };
    { id = "E4"; title = "naive vs paper adversary"; run = E04.run };
    { id = "E5"; title = "depth landscape"; run = E05.run };
    { id = "E6"; title = "adversary vs bitonic"; run = E06.run };
    { id = "E7"; title = "adaptive builders"; run = E07.run };
    { id = "E8"; title = "truncated f(n) variant"; run = E08.run };
    { id = "E9"; title = "average case"; run = E09.run };
    { id = "E10"; title = "model equivalences"; run = E10.run };
    { id = "E11"; title = "minimal-depth search (tiny n)"; run = E11.run };
    { id = "E12"; title = "Shellsort increment families"; run = E12.run };
    { id = "E13"; title = "near-miss detectability"; run = E13.run };
    { id = "E14"; title = "exact optimal depths (search)"; run = E14.run };
    { id = "E15"; title = "static analysis of the classics"; run = E15.run };
    { id = "E16"; title = "evolutionary search vs known optima"; run = E16.run } ]

let find id =
  let canon = String.uppercase_ascii id in
  List.find_opt (fun e -> e.id = canon) all

let run_all ~quick = List.iter (fun e -> e.run ~quick) all
