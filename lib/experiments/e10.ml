let run ~quick =
  Exp_util.header ~id:"E10" ~title:"model equivalences and routing";
  let tbl =
    Ascii_table.create
      ~columns:
        [ ("check", Ascii_table.Left);
          ("instances", Ascii_table.Right);
          ("trials", Ascii_table.Right);
          ("pass", Ascii_table.Left) ]
  in
  let rng = Exp_util.rng () in
  let trials = if quick then 50 else 200 in
  let sizes = [ 8; 16; 64; 256 ] in
  let record name instances total pass =
    Ascii_table.add_row tbl
      [ name; string_of_int instances; string_of_int total;
        (if pass then "yes" else "NO") ]
  in
  (* register model vs circuit model vs flattened circuit *)
  let pass = ref true and count = ref 0 in
  List.iter
    (fun n ->
      let d = Bitops.log2_exact n in
      for _ = 1 to trials / 10 do
        let prog = Shuffle_net.random_program rng ~n ~stages:(2 * d) in
        let nw = Register_model.to_network prog in
        let flat = Network.flatten nw in
        for _ = 1 to 10 do
          incr count;
          let input = Workload.random_permutation rng ~n in
          let a = Register_model.eval prog input in
          if a <> Network.eval nw input || a <> Network.eval flat input then
            pass := false
        done
      done)
    sizes;
  record "register = circuit = flattened" (List.length sizes) !count !pass;
  (* shuffle block = reverse delta network *)
  let pass = ref true and count = ref 0 in
  List.iter
    (fun n ->
      let d = Bitops.log2_exact n in
      for _ = 1 to trials / 10 do
        let prog = Shuffle_net.random_program rng ~n ~stages:d in
        let it = Shuffle_net.to_iterated prog in
        let nw_rd = Iterated.to_network it in
        let nw = Network.flatten (Register_model.to_network prog) in
        for _ = 1 to 10 do
          incr count;
          let input = Workload.random_permutation rng ~n in
          if Network.eval nw input <> Network.eval nw_rd input then pass := false
        done
      done)
    sizes;
  record "lg n shuffle stages = reverse delta" (List.length sizes) !count !pass;
  (* The butterfly is delta AND reverse delta: the all-plus shuffle
     block (constructed as a reverse delta network) is the same circuit
     as the delta-direction butterfly, and that circuit is the classic
     bitonic merger. *)
  let pass = ref true and count = ref 0 in
  List.iter
    (fun n ->
      let levels = Bitops.log2_exact n in
      let dsc = Butterfly.delta_network ~levels in
      let block =
        Network.flatten
          (Register_model.to_network
             (Shuffle_net.all_plus_program ~n ~stages:levels))
      in
      for _ = 1 to trials do
        incr count;
        let bitonic = Workload.bitonic_input rng ~n in
        if not (Sortedness.is_sorted (Network.eval dsc bitonic)) then pass := false;
        let any = Workload.random_permutation rng ~n in
        if Network.eval dsc any <> Network.eval block any then pass := false
      done)
    sizes;
  record "all-plus shuffle block = delta butterfly = bitonic merger"
    (List.length sizes) !count !pass;
  (* Benes routing *)
  let pass = ref true and count = ref 0 in
  List.iter
    (fun n ->
      for _ = 1 to trials do
        incr count;
        let p = Perm.random rng n in
        let nw = Benes.route p in
        let input = Array.init n (fun i -> i * 7) in
        let out = Network.eval nw input in
        let ok = ref true in
        for i = 0 to n - 1 do
          if out.(Perm.apply p i) <> input.(i) then ok := false
        done;
        if (not !ok)
           || Network.depth nw <> 0
           || List.length (Network.levels nw) <> Benes.depth ~n
        then pass := false
      done)
    sizes;
  record "Benes routes any permutation in 2lg n - 1" (List.length sizes) !count !pass;
  Ascii_table.print tbl;
  Exp_util.footnote
    "these are the unstated structural facts of Sections 1 and 3, checked by execution."
