(** E9 — the average-case remark (Section 5).

    The lower bound cannot extend to average-case depth: shallow
    shuffle-based prefixes already sort most inputs. The experiment
    truncates the shuffle-based bitonic sorter after each block and
    measures the fraction of random inputs (and, exactly, of all 0-1
    inputs for small n) already sorted, plus the mean residual
    displacement. *)

val run : quick:bool -> unit
