let run ~quick =
  Exp_util.header ~id:"E2"
    ~title:"Theorem 4.1: special-set decay over consecutive blocks";
  let tbl =
    Ascii_table.create
      ~columns:
        [ ("network", Ascii_table.Left);
          ("n", Ascii_table.Right);
          ("blocks", Ascii_table.Right);
          ("survived", Ascii_table.Right);
          ("theory>=", Ascii_table.Right);
          ("|D| per block", Ascii_table.Left) ]
  in
  let rng = Exp_util.rng () in
  let blocks = if quick then 12 else 16 in
  let cases n =
    let d = Bitops.log2_exact n in
    [ ( "shuffle-rand",
        Shuffle_net.to_iterated
          (Shuffle_net.random_program rng ~n ~stages:(blocks * d)) );
      ( "rd+perms",
        Random_net.iterated rng ~n ~blocks ~density:0.9 ~swap_prob:0.05
          ~permute:true );
      ( "all-plus",
        Shuffle_net.to_iterated (Shuffle_net.all_plus_program ~n ~stages:(blocks * d))
      ) ]
  in
  List.iter
    (fun n ->
      List.iter
        (fun (name, it) ->
          let r = Theorem41.run it in
          let ds =
            String.concat ","
              (List.map
                 (fun (b : Theorem41.block_report) -> string_of_int b.d_size)
                 r.reports)
          in
          Ascii_table.add_row tbl
            [ name;
              string_of_int n;
              string_of_int blocks;
              string_of_int r.survived;
              string_of_int (Theorem41.max_survivable_blocks ~n);
              ds ])
        (cases n))
    (Exp_util.ns ~quick);
  Ascii_table.print tbl;
  Exp_util.footnote
    "theory>= is the blocks the closed-form bound n/lg^{4d}n guarantees; \
     measured survival exceeds it because the bound is very pessimistic at these sizes.";
  (* Seed-aggregated view: the decay is not an artifact of one draw. *)
  let tbl2 =
    Ascii_table.create
      ~columns:
        [ ("n", Ascii_table.Right);
          ("seeds", Ascii_table.Right);
          ("survived", Ascii_table.Left);
          ("final |D|", Ascii_table.Left);
          ("block-0 |D|", Ascii_table.Left) ]
  in
  let seeds = if quick then 5 else 10 in
  List.iter
    (fun n ->
      let d = Bitops.log2_exact n in
      let runs =
        List.init seeds (fun s ->
            let rng = Xoshiro.of_seed (1000 + s) in
            let prog = Shuffle_net.random_program rng ~n ~stages:(blocks * d) in
            Theorem41.run (Shuffle_net.to_iterated prog))
      in
      let stat f = Stat_summary.of_ints (List.map f runs) in
      let fmt st = Format.asprintf "%a" Stat_summary.pp st in
      Ascii_table.add_row tbl2
        [ string_of_int n;
          string_of_int seeds;
          fmt (stat (fun r -> r.Theorem41.survived));
          fmt (stat (fun r -> List.length r.Theorem41.final_m_set));
          fmt
            (stat (fun r ->
                 match r.Theorem41.reports with
                 | b :: _ -> b.Theorem41.d_size
                 | [] -> 0)) ])
    (Exp_util.ns ~quick);
  Printf.printf "\n  Across independent random networks (mean±std [min,max]):\n";
  Ascii_table.print tbl2
