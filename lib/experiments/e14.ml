(* Known optimal depths of sorting networks, n = 2..8 (Knuth; Bundala &
   Závodný for n <= 16). The search below re-derives each value. *)
let known = [ (2, 1); (3, 3); (4, 3); (5, 5); (6, 5); (7, 6); (8, 6) ]

let best_registry_depth n =
  List.filter_map
    (fun e ->
      if e.Sorter_registry.pow2_only && not (Bitops.is_power_of_two n) then None
      else
        match e.Sorter_registry.build n with
        | nw -> Some (Network.depth nw)
        | exception _ -> None)
    Sorter_registry.all
  |> function
  | [] -> None
  | ds -> Some (List.fold_left min max_int ds)

let run ~quick =
  Exp_util.header ~id:"E14"
    ~title:"exact optimal depths (free search) vs adversary bound vs sorters";
  let tbl =
    Ascii_table.create
      ~columns:
        [ ("n", Ascii_table.Right);
          ("optimal depth", Ascii_table.Right);
          ("known", Ascii_table.Right);
          ("Cor 4.1.1 bound", Ascii_table.Right);
          ("best sorter", Ascii_table.Right);
          ("nodes", Ascii_table.Right);
          ("witness", Ascii_table.Left) ]
  in
  let ns = if quick then [ 2; 3; 4; 5; 6 ] else [ 2; 3; 4; 5; 6; 7; 8 ] in
  List.iter
    (fun n ->
      let optimal, nodes, witness =
        match Driver.optimal_depth ~n () with
        | Driver.Sorted { depth; moves; stats } ->
            ( string_of_int depth,
              string_of_int stats.Driver.nodes,
              if Driver.verify_witness ~n moves then "verified" else "BROKEN" )
        | Driver.Unsorted stats ->
            ("none<=n", string_of_int stats.Driver.nodes, "-")
        | Driver.Inconclusive stats | Driver.Interrupted stats ->
            ("budget", string_of_int stats.Driver.nodes, "-")
      in
      let adversary =
        (* lglg n = 0 at n = 2 makes the bound vacuously infinite *)
        if Bitops.is_power_of_two n && n >= 4 then
          Exp_util.float2 (Theorem41.depth_lower_bound ~n)
        else "-"
      in
      let best =
        match best_registry_depth n with
        | Some d -> string_of_int d
        | None -> "-"
      in
      Ascii_table.add_row tbl
        [ string_of_int n;
          optimal;
          string_of_int (List.assoc n known);
          adversary;
          best;
          nodes;
          witness ])
    ns;
  Ascii_table.print tbl;
  Exp_util.footnote
    "optimal depth: layered BFS over reachable 0-1 image states with canonical \
     first layer, second layers up to symmetry, and Bundala-Zavodny subsumption; \
     witnesses re-verified on all 2^n inputs by the compiled bit-sliced engine. \
     The asymptotic Corollary 4.1.1 bound is vacuous at these sizes; the gap to \
     the best library sorter closes at powers of two."
