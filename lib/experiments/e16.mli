(** E16 — evolutionary rediscovery of depth-optimal sorting networks
    for n = 4..8 under fixed seeds, against the proved optimal depths
    (Bundala–Závodný).

    Each row pins the genome shape to the known optimal depth and
    reports the generation at which the population first contains a
    sorter, its comparator count, and an independent 0-1 verification
    of the witness. Quick mode stops at n = 6. *)

val run : quick:bool -> unit
