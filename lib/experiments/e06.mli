(** E6 — the adversary against a genuine sorter (shuffle-based
    bitonic).

    A sorting network must drive the special set down to one wire by
    its last block — and bitonic does, with a strikingly clean
    trajectory: the set halves once per block. The experiment records
    that trajectory and confirms the adversary is defeated on the last
    block, for every n. *)

val run : quick:bool -> unit
