(** E7 — adaptivity does not save the builder (Section 5).

    Plays the stage-by-stage game of {!Adaptive} with three builders
    of increasing aggressiveness (oblivious all-compare, greedy
    same-set killer, killer with routing/steering), all given full
    knowledge of the adversary's bookkeeping. Where the adversary
    survives, its fooling pair is validated against the adaptively
    built network. *)

val run : quick:bool -> unit
