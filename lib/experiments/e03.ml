let verdict = function Ok () -> "ok" | Error e -> "FAIL: " ^ e

let run ~quick =
  Exp_util.header ~id:"E3"
    ~title:"Corollary 4.1.1: fooling-pair certificates";
  let tbl =
    Ascii_table.create
      ~columns:
        [ ("network", Ascii_table.Left);
          ("n", Ascii_table.Right);
          ("stages", Ascii_table.Right);
          ("|D|", Ascii_table.Right);
          ("witness", Ascii_table.Left);
          ("certificate", Ascii_table.Left);
          ("noncolliding", Ascii_table.Left) ]
  in
  let rng = Exp_util.rng () in
  List.iter
    (fun n ->
      let d = Bitops.log2_exact n in
      let blocks = max 1 (d / 2) in
      List.iter
        (fun (name, prog) ->
          let it = Shuffle_net.to_iterated prog in
          let r = Theorem41.run it in
          let nw = Iterated.to_network it in
          match Certificate.of_pattern r.final_pattern with
          | None ->
              Ascii_table.add_row tbl
                [ name; string_of_int n; string_of_int (blocks * d);
                  string_of_int (List.length r.final_m_set);
                  "-"; "adversary lost"; "-" ]
          | Some cert ->
              Ascii_table.add_row tbl
                [ name;
                  string_of_int n;
                  string_of_int (blocks * d);
                  string_of_int (List.length cert.Certificate.m_set);
                  Printf.sprintf "values %d,%d @ wires %d,%d"
                    cert.Certificate.value0 cert.Certificate.value1
                    cert.Certificate.wire0 cert.Certificate.wire1;
                  verdict (Certificate.validate nw cert);
                  verdict (Certificate.validate_noncolliding nw cert) ])
        [ ("shuffle-rand", Shuffle_net.random_program rng ~n ~stages:(blocks * d));
          ("all-plus", Shuffle_net.all_plus_program ~n ~stages:(blocks * d)) ])
    (Exp_util.ns ~quick);
  Ascii_table.print tbl;
  Exp_util.footnote
    "every row with |D| >= 2 is a machine-checked proof that the network does not sort."
