(** E5 — the depth landscape: upper bound vs. lower bound.

    Bitonic's exact depth [lg n (lg n + 1)/2] (measured on constructed
    networks, matched against the closed form) next to the paper's
    lower-bound curve [lg^2 n / (4 lglg n)] and the trivial [lg n]
    bound — the [Theta(lglg n)] gap the paper leaves open, in numbers. *)

val run : quick:bool -> unit
