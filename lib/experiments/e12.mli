(** E12 — Shellsort-based networks across increment families.

    Context for the paper's introduction: Cypher's
    [Omega(lg^2 n / lglg n)] bound for Shellsort networks with
    decreasing increments is matched only by Pratt's 3-smooth family;
    the popular practical families (Shell, Hibbard, Ciura) yield
    polynomial-depth networks when realised obliviously. The table
    measures depth and size per family (all verified correct by the
    0-1 principle at small n in the test suite). *)

val run : quick:bool -> unit
