let run ~quick =
  Exp_util.header ~id:"E4"
    ~title:"naive halving adversary vs. Lemma 4.1 adversary";
  let tbl =
    Ascii_table.create
      ~columns:
        [ ("network", Ascii_table.Left);
          ("n", Ascii_table.Right);
          ("levels", Ascii_table.Right);
          ("naive survives", Ascii_table.Right);
          ("paper survives", Ascii_table.Right);
          ("ratio", Ascii_table.Right) ]
  in
  let rng = Exp_util.rng () in
  let blocks = if quick then 12 else 16 in
  List.iter
    (fun n ->
      let d = Bitops.log2_exact n in
      let stages = blocks * d in
      List.iter
        (fun (name, prog) ->
          let it = Shuffle_net.to_iterated prog in
          let nw = Iterated.to_network it in
          let naive = Naive.run nw in
          let paper = Theorem41.run it in
          (* blocks survived -> comparator levels survived *)
          let paper_levels = paper.Theorem41.survived * d in
          let ratio =
            if naive.Naive.levels_survived = 0 then "inf"
            else
              Exp_util.float2
                (float_of_int paper_levels
                /. float_of_int naive.Naive.levels_survived)
          in
          Ascii_table.add_row tbl
            [ name;
              string_of_int n;
              string_of_int stages;
              string_of_int naive.Naive.levels_survived;
              string_of_int paper_levels;
              ratio ])
        [ ("all-plus", Shuffle_net.all_plus_program ~n ~stages);
          ("shuffle-rand", Shuffle_net.random_program rng ~n ~stages) ])
    (Exp_util.ns ~quick);
  Ascii_table.print tbl;
  Exp_util.footnote
    "naive ~ lg n levels; paper ~ survived-blocks x lg n levels — the gap grows with n \
     exactly as Omega(lg^2 n/lglg n) vs Omega(lg n) predicts."
