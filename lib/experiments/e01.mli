(** E1 — Lemma 4.1 on a single reverse delta block.

    Measures, for one [l]-level reverse delta network, the surviving
    mass [|B|] against the lemma's guarantee [|A| (1 - l/k^2)] and the
    set count [t(l) = k^3 + l k^2], across topologies (butterfly,
    random reverse delta, random shuffle block), plus the
    offset-policy ablation (argmin vs first-below-average vs fixed 0). *)

val run : quick:bool -> unit
