let seed = 0x5EED

let rng () = Xoshiro.of_seed seed

let header ~id ~title =
  Printf.printf "\n=== %s: %s ===\n%!" id title

let footnote s = Printf.printf "  note: %s\n%!" s

let ns ~quick =
  let top = if quick then 10 else 13 in
  List.init (top - 3) (fun i -> 1 lsl (i + 4))

let fraction a b =
  if b = 0 then "n/a"
  else Printf.sprintf "%d/%d (%.1f%%)" a b (100. *. float_of_int a /. float_of_int b)

let float2 x = Printf.sprintf "%.2f" x
