let block_of ~rng ~n = function
  | "butterfly" -> Butterfly.ascending ~levels:(Bitops.log2_exact n)
  | "random-rd" ->
      Random_net.reverse_delta rng ~levels:(Bitops.log2_exact n) ~density:0.9
        ~swap_prob:0.1
  | "shuffle-rand" ->
      let d = Bitops.log2_exact n in
      let prog = Shuffle_net.random_program rng ~n ~stages:d in
      (match Shuffle_net.forest_of_ops ~n
               (List.map (fun st -> st.Register_model.ops)
                  (Register_model.stages prog))
       with
      | [ rd ] -> rd
      | _ -> assert false)
  | name -> invalid_arg name

let one_block ~policy ~rng ~n topo =
  let k = max 2 (Bitops.log2_exact n) in
  let st = Mset.create ~n ~k in
  let rd = block_of ~rng ~n topo in
  let coll, stats = Lemma41.run ~policy st rd in
  let _, d_size = Mset.best_set coll in
  (k, stats, d_size)

let run ~quick =
  Exp_util.header ~id:"E1"
    ~title:"Lemma 4.1: survival through one reverse delta block";
  let tbl =
    Ascii_table.create
      ~columns:
        [ ("topology", Ascii_table.Left);
          ("n", Ascii_table.Right);
          ("l", Ascii_table.Right);
          ("k", Ascii_table.Right);
          ("|A|", Ascii_table.Right);
          ("|B|", Ascii_table.Right);
          ("bound", Ascii_table.Right);
          ("t(l)", Ascii_table.Right);
          ("max|M_i|", Ascii_table.Right) ]
  in
  let rng = Exp_util.rng () in
  List.iter
    (fun topo ->
      List.iter
        (fun n ->
          let k, stats, d_size = one_block ~policy:Mset.Argmin ~rng ~n topo in
          let l = stats.Lemma41.levels in
          let bound =
            float_of_int stats.Lemma41.a_size
            *. (1. -. (float_of_int l /. float_of_int (k * k)))
          in
          Ascii_table.add_row tbl
            [ topo;
              string_of_int n;
              string_of_int l;
              string_of_int k;
              string_of_int stats.Lemma41.a_size;
              string_of_int stats.Lemma41.b_size;
              Printf.sprintf "%.1f" bound;
              string_of_int stats.Lemma41.sets;
              string_of_int d_size ])
        (Exp_util.ns ~quick))
    [ "butterfly"; "random-rd"; "shuffle-rand" ];
  Ascii_table.print tbl;
  Exp_util.footnote
    "|B| must stay >= bound = |A|(1 - l/k^2); the lemma's guarantee is asserted in-process.";
  (* Ablation: offset policy. *)
  let tbl2 =
    Ascii_table.create
      ~columns:
        [ ("policy", Ascii_table.Left);
          ("n", Ascii_table.Right);
          ("|A|", Ascii_table.Right);
          ("|B|", Ascii_table.Right);
          ("max|M_i|", Ascii_table.Right) ]
  in
  let policies =
    [ ("argmin", Mset.Argmin);
      ("first-ok", Mset.First_below_average);
      ("fixed-0", Mset.Fixed 0) ]
  in
  List.iter
    (fun (label, policy) ->
      List.iter
        (fun n ->
          let rng = Exp_util.rng () in
          let _, stats, d_size = one_block ~policy ~rng ~n "shuffle-rand" in
          Ascii_table.add_row tbl2
            [ label;
              string_of_int n;
              string_of_int stats.Lemma41.a_size;
              string_of_int stats.Lemma41.b_size;
              string_of_int d_size ])
        [ List.nth (Exp_util.ns ~quick) (List.length (Exp_util.ns ~quick) - 1) ])
    policies;
  Printf.printf "\n  Offset-policy ablation (same random shuffle block):\n";
  Ascii_table.print tbl2;
  Exp_util.footnote
    "fixed-0 ignores the averaging argument; argmin and first-ok keep the lemma's guarantee."
