(** E4 — naive halving baseline vs. the paper's adversary.

    The Section 2 motivation: a single special set halves at every
    level, surviving only ~lg n comparator levels, while the
    collection-of-sets adversary survives ~lg n *blocks* of lg n
    levels each. This experiment measures both on the same networks —
    the gap is the paper's contribution, made visible. *)

val run : quick:bool -> unit
