(** E10 — model-equivalence audit.

    Randomised and exhaustive checks of the structural facts the paper
    uses without proof: register model = circuit model (same mapping),
    flattening preserves the mapping, [lg n] shuffle stages = one
    reverse delta network, the butterfly is a reverse delta network
    whose reversal (a delta network) still sorts bitonic 0-1 inputs,
    and any permutation routes through a Beneš network in
    [2 lg n - 1] exchange levels. *)

val run : quick:bool -> unit
