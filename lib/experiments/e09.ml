let prefix_program prog ~stages =
  let stages_list =
    List.filteri (fun i _ -> i < stages) (Register_model.stages prog)
  in
  Register_model.create ~n:(Register_model.n prog) stages_list

let prefix_network nw ~levels =
  let lvls = List.filteri (fun i _ -> i < levels) (Network.levels nw) in
  Network.create ~wires:(Network.wires nw) lvls

let columns =
  [ ("n", Ascii_table.Right);
    ("depth", Ascii_table.Right);
    ("random sorted", Ascii_table.Left);
    ("0-1 sorted", Ascii_table.Left);
    ("mean inversions", Ascii_table.Right) ]

let measure tbl ~rng ~samples ~n nw =
  (* compile once, evaluate the whole sample batch through the flat
     instruction stream (same RNG order as the per-sample loop) *)
  let c = Cache.compile nw in
  let inputs = Workload.permutation_batch rng ~n ~count:samples in
  let outputs = Compiled.eval_many c inputs in
  let sorted_count = ref 0 and inv = ref 0 in
  Array.iter
    (fun out ->
      if Sortedness.is_sorted out then incr sorted_count;
      inv := !inv + Sortedness.inversions out)
    outputs;
  let zo =
    if n <= 16 then
      let bad = Zero_one.unsorted_count nw in
      let all = 1 lsl n in
      Exp_util.fraction (all - bad) all
    else "-"
  in
  Ascii_table.add_row tbl
    [ string_of_int n;
      string_of_int (Network.depth nw);
      Exp_util.fraction !sorted_count samples;
      zo;
      Printf.sprintf "%.1f" (float_of_int !inv /. float_of_int samples) ]

let run ~quick =
  Exp_util.header ~id:"E9"
    ~title:"average case: fraction of inputs sorted by truncated networks";
  let samples = if quick then 300 else 1000 in
  (* Gradual sorter: odd-even transposition prefixes — most random
     inputs finish well before the worst-case n levels. *)
  let tbl = Ascii_table.create ~columns in
  let rng = Exp_util.rng () in
  List.iter
    (fun n ->
      let full = Transposition.network ~n in
      let steps = List.sort_uniq compare
          [ n / 2; (5 * n) / 8; (3 * n) / 4; (7 * n) / 8; n - 2; n - 1; n ]
      in
      List.iter
        (fun levels ->
          if levels > 0 then
            measure tbl ~rng ~samples ~n (prefix_network full ~levels))
        steps)
    (if quick then [ 16; 32; 64 ] else [ 16; 32; 64; 128 ]);
  Printf.printf "  odd-even transposition prefixes (gradual sorter):\n";
  Ascii_table.print tbl;
  (* Monolithic sorter: bitonic prefixes — essentially no input is
     sorted until the final merge completes. *)
  let tbl2 = Ascii_table.create ~columns in
  List.iter
    (fun n ->
      let d = Bitops.log2_exact n in
      let prog = Bitonic.shuffle_program ~n in
      List.iter
        (fun blocks ->
          let p = prefix_program prog ~stages:(blocks * d) in
          measure tbl2 ~rng ~samples ~n (Register_model.to_network p))
        (List.init d (fun i -> i + 1)))
    (if quick then [ 16; 64 ] else [ 16; 64; 256 ]);
  Printf.printf "\n  shuffle-bitonic prefixes (block granularity):\n";
  Ascii_table.print tbl2;
  (* Section 5's literal definition: per input, the first level at
     which it becomes (and stays) sorted; averaged. *)
  let tbl3 =
    Ascii_table.create
      ~columns:
        [ ("sorter", Ascii_table.Left);
          ("n", Ascii_table.Right);
          ("worst depth", Ascii_table.Right);
          ("avg depth (random)", Ascii_table.Left);
          ("avg depth (0-1 exact)", Ascii_table.Right) ]
  in
  List.iter
    (fun (name, build, ns) ->
      List.iter
        (fun n ->
          let nw = build n in
          let rng = Exp_util.rng () in
          let random =
            match Sort_depth.average_case_depth ~samples rng nw with
            | Some st -> Format.asprintf "%a" Stat_summary.pp st
            | None -> "not a sorter?"
          in
          let exact =
            if n <= 16 then
              match Sort_depth.exact_average_depth_01 nw with
              | Some avg -> Exp_util.float2 avg
              | None -> "-"
            else "-"
          in
          Ascii_table.add_row tbl3
            [ name; string_of_int n; string_of_int (Network.depth nw); random; exact ])
        ns)
    [ ("transposition", (fun n -> Transposition.network ~n), [ 16; 64 ]);
      ("bitonic", (fun n -> Bitonic.network ~n), [ 16; 64 ]);
      ("odd-even-merge", (fun n -> Odd_even_merge.network ~n), [ 16; 64 ]);
      ("pratt", (fun n -> Pratt.network ~n), [ 16; 64 ]) ];
  Printf.printf "\n  Section 5's average-case depth (first level sorted, averaged):\n";
  Ascii_table.print tbl3;
  Exp_util.footnote
    "transposition prefixes show average-case depth well below worst case (the \
     phenomenon behind Section 5's average-case remark); bitonic sorts nothing early. \
     The O(lg n lglg n) average-case networks of Leighton-Plaxton [8] are out of \
     scope (see DESIGN.md substitutions)."
