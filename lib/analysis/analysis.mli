(** The analyzer façade: one level-by-level walk of a network through
    the abstract domains, producing a facts record plus typed
    diagnostics; the strictness gate for loading; the observability
    counters.

    Domain choice: networks with at most [exact_max_wires] wires
    (default 12) use the exact 0-1 reachable-set domain ({!Reach}) —
    sortedness is then decided (proved {e or} refuted), and
    dead/redundant classifications are exact on 0-1 behaviour. Wider
    networks use the polynomial order-bounds domain ({!Bounds}) —
    sortedness can only be proved, never refuted, and dead/redundant
    are sound under-approximations (every flagged gate really is
    dead/redundant; unflagged gates are unclassified).

    Definitions (see DESIGN.md for the soundness argument):
    - a comparator is {b dead} when it never exchanges on any
      reachable input — removing it leaves the network's function
      unchanged (diagnostics: SNL201, warning);
    - a comparator is {b redundant} when its two wires provably carry
      equal values — flipping its orientation changes nothing
      (SNL202, info). Redundant implies dead; each gate gets one
      diagnostic, the strongest that applies, while {!facts} lists
      every dead gate (redundant included) in [dead]. *)

type sortedness =
  | Sorting_proved  (** exact domain: all reachable 0-1 outputs sorted *)
  | Sorting_refuted of int
      (** exact domain: this reachable output mask is unsorted *)
  | Sorted_by_bounds  (** order-bounds domain proved sortedness *)
  | Unknown  (** bounds domain could not decide *)

type gate_ref = { level : int; gate : int; a : int; b : int }
(** [level] 1-based, [gate] 0-based within the level, [a]/[b] the
    wires ([lo]/[hi] for comparators). *)

type facts = {
  wires : int;
  levels : int;
  depth : int;
  comparators : int;
  exchanges : int;
  exact : bool;  (** exact 0-1 domain used *)
  sortedness : sortedness;
  dead : gate_ref list;  (** every dead comparator, redundant included *)
  redundant : gate_ref list;
  shuffle_stages : int option;
  reverse_delta_blocks : int option;
  delta_blocks : int option;
}

type report = { facts : facts; diags : Diag.t list }

val analyze : ?exact_max_wires:int -> ?cross_check:bool -> Network.t -> report
(** [cross_check] (default false): when the exact domain decided
    sortedness, re-derive the verdict independently through the
    compiled bit-sliced engine; a disagreement — an analyzer bug —
    yields an SNL999 error diagnostic (and is counted). *)

val remove_dead : Network.t -> facts -> Network.t
(** The network with every comparator in [facts.dead] removed
    (extensionally equal by soundness of the dead classification). *)

val flip_redundant : Network.t -> facts -> Network.t
(** The network with every comparator in [facts.redundant]
    orientation-flipped (ditto). *)

(** {1 Load gate} *)

type strictness = Off | Warn | Strict

val check : ?strictness:strictness -> Network.t -> (Diag.t list, Diag.t list) result
(** Gate a loaded network. [Off]: [Ok []] always. [Warn] (default):
    [Ok diags] unless an error-severity diagnostic is present. [Strict]:
    [Error diags] if any warning or error is present. Diagnostics are
    the structural + semantic set of {!analyze} (no conformance — that
    is opt-in via [snlb lint]). *)

val load :
  ?strictness:strictness -> string -> (Network.t * Diag.t list, string) result
(** [Network_io.load] followed by {!check} (the gate cannot live
    inside lib/network without a dependency cycle — this wrapper is
    the composed entry point; the CLI's [snlb load --check] uses it). *)
