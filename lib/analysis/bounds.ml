type t = {
  n : int;
  r : Bytes.t;  (** [r.(i*n + j) <> 0] iff [v_i <= v_j] proved *)
  lo : int array;
  hi : int array;
}

let create n =
  if n < 1 then invalid_arg "Bounds.create";
  let r = Bytes.make (n * n) '\000' in
  for i = 0 to n - 1 do
    Bytes.unsafe_set r ((i * n) + i) '\001'
  done;
  { n; r; lo = Array.make n 0; hi = Array.make n (n - 1) }

let n t = t.n

let get t i j = Bytes.unsafe_get t.r ((i * t.n) + j) <> '\000'
let set t i j v = Bytes.unsafe_set t.r ((i * t.n) + j) (if v then '\001' else '\000')

let leq t i j =
  if i < 0 || i >= t.n || j < 0 || j >= t.n then invalid_arg "Bounds.leq";
  get t i j

let interval t w =
  if w < 0 || w >= t.n then invalid_arg "Bounds.interval";
  (t.lo.(w), t.hi.(w))

let transfer_compare t a b =
  (* a <- min, b <- max; snapshot the four lines first, the update
     reads and writes overlapping entries. *)
  let n = t.n in
  let row_a = Bytes.sub t.r (a * n) n and row_b = Bytes.sub t.r (b * n) n in
  let col_a = Bytes.create n and col_b = Bytes.create n in
  for c = 0 to n - 1 do
    Bytes.unsafe_set col_a c (Bytes.unsafe_get t.r ((c * n) + a));
    Bytes.unsafe_set col_b c (Bytes.unsafe_get t.r ((c * n) + b))
  done;
  let old rc i = Bytes.unsafe_get rc i <> '\000' in
  for c = 0 to n - 1 do
    if c <> a && c <> b then begin
      set t c a (old col_a c && old col_b c);
      set t a c (old row_a c || old row_b c);
      set t c b (old col_a c || old col_b c);
      set t b c (old row_a c && old row_b c)
    end
  done;
  set t a b true;
  set t b a (old row_a b && old col_a b);
  let la = t.lo.(a) and ha = t.hi.(a) and lb = t.lo.(b) and hb = t.hi.(b) in
  t.lo.(a) <- min la lb;
  t.hi.(a) <- min ha hb;
  t.lo.(b) <- max la lb;
  t.hi.(b) <- max ha hb

let swap_wires t a b =
  let n = t.n in
  for c = 0 to n - 1 do
    let x = Bytes.unsafe_get t.r ((a * n) + c)
    and y = Bytes.unsafe_get t.r ((b * n) + c) in
    Bytes.unsafe_set t.r ((a * n) + c) y;
    Bytes.unsafe_set t.r ((b * n) + c) x
  done;
  for c = 0 to n - 1 do
    let x = Bytes.unsafe_get t.r ((c * n) + a)
    and y = Bytes.unsafe_get t.r ((c * n) + b) in
    Bytes.unsafe_set t.r ((c * n) + a) y;
    Bytes.unsafe_set t.r ((c * n) + b) x
  done;
  let l = t.lo.(a) in
  t.lo.(a) <- t.lo.(b);
  t.lo.(b) <- l;
  let h = t.hi.(a) in
  t.hi.(a) <- t.hi.(b);
  t.hi.(b) <- h

let transfer_gate t = function
  | Gate.Compare { lo; hi } -> transfer_compare t lo hi
  | Gate.Exchange { a; b } -> swap_wires t a b

let transfer_perm t p =
  if Perm.n p <> t.n then invalid_arg "Bounds.transfer_perm: size mismatch";
  let n = t.n in
  let img = Perm.to_array p in
  let r' = Bytes.make (n * n) '\000' in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if Bytes.unsafe_get t.r ((i * n) + j) <> '\000' then
        Bytes.unsafe_set r' ((img.(i) * n) + img.(j)) '\001'
    done
  done;
  Bytes.blit r' 0 t.r 0 (n * n);
  let lo' = Perm.permute_array p t.lo and hi' = Perm.permute_array p t.hi in
  Array.blit lo' 0 t.lo 0 n;
  Array.blit hi' 0 t.hi 0 n

let sorted_proved t =
  let ok = ref true in
  for w = 0 to t.n - 2 do
    if not (get t w (w + 1)) then ok := false
  done;
  !ok

let equal_proved t a b = get t a b && get t b a

let gate_dead t = function
  | Gate.Compare { lo; hi } -> get t lo hi || t.hi.(lo) <= t.lo.(hi)
  | Gate.Exchange { a; b } -> equal_proved t a b

let gate_redundant t = function
  | Gate.Compare { lo; hi } -> equal_proved t lo hi
  | Gate.Exchange { a; b } -> equal_proved t a b
