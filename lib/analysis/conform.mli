(** Topology conformance: does a concrete circuit have the paper's
    structure?

    Three certificates, all decided on the {e flattened} form of the
    network: [pre] permutations are absorbed into a running wire
    relabeling (conformance is invariant under relabeling). A level
    that is {e pure routing} — a [pre] and no gates — is ambiguous
    after flattening: in a register-model program it is an idle stage
    that still occupies a slot in the stage cadence, while in an
    iterated network it is an inter-block permutation occupying no
    level. Recognizers therefore try both canonical readings (keep
    such levels as empty gate levels, or drop them entirely) and
    accept if either conforms; block recognition prefers the
    routing reading, so a circuit that decomposes both ways reports
    the coarser inter-block count. Networks mixing structural and
    routing perm levels may be conservatively rejected. Trailing
    pure-routing levels (the output-routing residue
    {!Network.flatten} leaves) are always ignored — they rename
    outputs but do not change the skeleton:

    - {b shuffle-based} ({!shuffle_stages}): the network is a
      register-model program whose every stage permutation is the
      shuffle. Characterisation used (see lib/topology/shuffle_net):
      after flattening, the gates of global level [K] must pair wires
      that differ exactly in index bit [d - k], where [n = 2^d] and
      [k = ((K-1) mod d) + 1] — exactly the register pairs
      [(2m, 2m+1)] seen through [k] unshuffles.

    - {b iterated reverse delta} ({!iterated_reverse_delta},
      {!reverse_delta_block}): the levels split into blocks of
      [d = lg n], and each block is some [d]-level reverse delta
      network on all [n] wires (Definition 3.4) — the inter-block
      permutations of the paper's [(k, l)]-iterated networks are
      absorbed by flattening into the next block's wire names, which
      the definition permits (they are arbitrary). Recognition works
      bottom-up: wires start as singleton components; a gate at block
      step [t] must join two distinct components inside one
      [2^t]-wire subtree, on opposite [2^(t-1)] halves, so each
      connected component of the step-[t] gate graph is 2-coloured
      (an odd cycle refutes conformance) and merged; components and
      never-touched wires are packed into the remaining tree slots by
      a greedy power-of-two (buddy) allocation. A successful
      recognition {e constructs} the [Reverse_delta.t], validates it,
      and replays it through [Reverse_delta.to_network] to check it
      reproduces the block gate-for-gate — so a [Some] verdict is a
      machine-checked certificate. A [None] can in principle be
      conservative when the greedy packing of partially-constrained
      subtrees fails where a cleverer one would not; for networks
      whose merge components are full subtrees (all the shuffle-based
      constructions) the recognition is exact.

    - {b delta} ({!delta_blocks}): the mirror class — each block read
      with its levels reversed is a reverse delta network.

    The paper's Theorem 4.1 consumes {!to_iterated}: the certified
    decomposition as an [Iterated.t], letting adversary runs
    statically reject inapplicable networks. *)

val shuffle_stages : Network.t -> int option
(** [Some stages] iff [n] is a power of two and every gate sits on a
    shuffle register pair of its stage; [stages] is the flattened
    level count. [None] otherwise (including [n] not a power of 2). *)

val reverse_delta_block : wires:int -> Gate.t list list -> Reverse_delta.t option
(** Recognize one block: exactly [lg wires] gate levels (empty levels
    allowed) forming a reverse delta network on wires [0, wires). *)

val iterated_reverse_delta : Network.t -> int option
(** [Some blocks] iff the flattened level count is a positive multiple
    of [lg n] and every [lg n]-level chunk is a reverse delta network. *)

val delta_blocks : Network.t -> int option
(** Mirror verdict: every chunk, levels reversed, is a reverse delta
    network. (A network that is both is butterfly-like, cf. E10.) *)

val to_iterated : Network.t -> (Iterated.t, string) result
(** The certified decomposition behind {!iterated_reverse_delta},
    with identity inter-block permutations (flattening already moved
    any routing into wire names). [Error] explains the first
    non-conforming block or shape mismatch. The result's
    [Iterated.to_network] is gate-for-gate the flattened input, minus
    a trailing gate-free routing level if the input had one. *)
