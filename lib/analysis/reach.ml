type t = { n : int; set : Bytes.t }

let max_wires = 16

let n t = t.n

let all n =
  if n < 1 || n > max_wires then
    invalid_arg (Printf.sprintf "Reach.all: n = %d not in [1, %d]" n max_wires);
  { n; set = Bytes.make (1 lsl n) '\001' }

let mem t m = Bytes.unsafe_get t.set m <> '\000'

let cardinal t =
  let c = ref 0 in
  Bytes.iter (fun b -> if b <> '\000' then incr c) t.set;
  !c

let iter f t =
  for m = 0 to Bytes.length t.set - 1 do
    if Bytes.unsafe_get t.set m <> '\000' then f m
  done

let apply_gate t g =
  match g with
  | Gate.Compare { lo; hi } ->
      let set = Bytes.make (Bytes.length t.set) '\000' in
      iter
        (fun m ->
          let m' =
            if m land (1 lsl lo) <> 0 && m land (1 lsl hi) = 0 then
              m lxor ((1 lsl lo) lor (1 lsl hi))
            else m
          in
          Bytes.unsafe_set set m' '\001')
        t;
      { t with set }
  | Gate.Exchange { a; b } ->
      let set = Bytes.make (Bytes.length t.set) '\000' in
      iter
        (fun m ->
          let ba = (m lsr a) land 1 and bb = (m lsr b) land 1 in
          let m' =
            if ba = bb then m else m lxor ((1 lsl a) lor (1 lsl b))
          in
          Bytes.unsafe_set set m' '\001')
        t;
      { t with set }

let apply_perm t p =
  if Perm.n p <> t.n then invalid_arg "Reach.apply_perm: size mismatch";
  let img = Perm.to_array p in
  let set = Bytes.make (Bytes.length t.set) '\000' in
  iter
    (fun m ->
      let m' = ref 0 in
      for w = 0 to t.n - 1 do
        if m land (1 lsl w) <> 0 then m' := !m' lor (1 lsl img.(w))
      done;
      Bytes.unsafe_set set !m' '\001')
    t;
  { t with set }

let is_sorted_mask ~n m =
  let k = Bitops.popcount m in
  m = ((1 lsl k) - 1) lsl (n - k)

let find_unsorted t =
  let found = ref None in
  (try
     iter
       (fun m ->
         if not (is_sorted_mask ~n:t.n m) then begin
           found := Some m;
           raise Exit
         end)
       t
   with Exit -> ());
  !found

let bits_always_equal t a b =
  let ok = ref true in
  (try
     iter
       (fun m ->
         if ((m lsr a) land 1) <> ((m lsr b) land 1) then begin
           ok := false;
           raise Exit
         end)
       t
   with Exit -> ());
  !ok

let gate_dead t g =
  match g with
  | Gate.Compare { lo; hi } ->
      (* fires iff some reachable vector has 1 on lo and 0 on hi *)
      let fires = ref false in
      (try
         iter
           (fun m ->
             if m land (1 lsl lo) <> 0 && m land (1 lsl hi) = 0 then begin
               fires := true;
               raise Exit
             end)
           t
       with Exit -> ());
      not !fires
  | Gate.Exchange { a; b } -> bits_always_equal t a b

let gate_redundant t g =
  match g with
  | Gate.Compare { lo; hi } -> bits_always_equal t lo hi
  | Gate.Exchange { a; b } -> bits_always_equal t a b

let unordered_pairs ~n ~iter =
  let tbl = Bytes.make (n * n) '\000' in
  let total = n * (n - 1) in
  let seen = ref 0 in
  (try
     iter (fun m ->
         for i = 0 to n - 1 do
           if m land (1 lsl i) <> 0 then
             for j = 0 to n - 1 do
               if m land (1 lsl j) = 0 && Bytes.unsafe_get tbl ((i * n) + j) = '\000'
               then begin
                 Bytes.unsafe_set tbl ((i * n) + j) '\001';
                 incr seen;
                 if !seen = total then raise Exit
               end
             done
         done)
   with Exit -> ());
  tbl

let pair_unordered tbl ~n i j = Bytes.unsafe_get tbl ((i * n) + j) <> '\000'
