(** Exact 0-1 reachable-set abstract domain.

    The abstract value attached to a network prefix on [n] wires is the
    {e set of 0-1 wire vectors} reachable at that point: start from all
    [2^n] vectors (the 0-1 principle reduces sortedness to these) and
    push the set through each permutation and gate. Because the set is
    tracked exactly, every verdict derived from it is both sound and
    complete on 0-1 inputs:

    - the prefix sorts all 0-1 inputs iff every member of the final set
      is sorted — by the 0-1 principle this proves or refutes
      sortedness of the whole network without evaluating it;
    - a comparator is {e dead} (exchanges nothing, hence removable
      without changing the function) iff no reachable vector has a 1 on
      its [lo] wire and a 0 on its [hi] wire;
    - a comparator is {e redundant} (its two wires provably carry equal
      bits, hence its orientation is immaterial) iff every reachable
      vector agrees on its two wires. Redundant implies dead.

    A vector is encoded as an [int] mask with bit [w] = the bit on wire
    [w]; a mask is sorted when its ones occupy the highest-indexed
    wires. Sets are byte tables indexed by mask, so the domain is
    practical up to {!max_wires} wires ([2^16] entries); the analyzer
    falls back to the approximate {!Bounds} domain beyond its
    configured cutoff. *)

type t

val max_wires : int
(** 16 — table size caps the domain, the analyzer's default exact
    cutoff is lower (12). *)

val n : t -> int

val all : int -> t
(** [all n] is the full set of [2^n] vectors — the abstract value at
    the network's input. @raise Invalid_argument unless
    [1 <= n <= max_wires]. *)

val mem : t -> int -> bool
val cardinal : t -> int
val iter : (int -> unit) -> t -> unit
(** Masks in increasing order. *)

val apply_gate : t -> Gate.t -> t
(** Transfer function of one gate: a [Compare {lo; hi}] sends a vector
    with (1 on [lo], 0 on [hi]) to the exchanged vector and leaves the
    rest alone; an [Exchange] swaps the two bits unconditionally. *)

val apply_perm : t -> Perm.t -> t
(** Bit [Perm.apply p w] of the image = bit [w] of the source,
    matching [Perm.permute_array] on wire contents. *)

val is_sorted_mask : n:int -> int -> bool
(** Sorted = all ones on the highest wires: [m = (2^k - 1) * 2^(n-k)]
    for [k = popcount m]. *)

val find_unsorted : t -> int option
(** Smallest reachable unsorted mask, if any — the witness input for a
    sortedness refutation is any preimage of it; the mask itself is
    what the analyzer reports. *)

val gate_dead : t -> Gate.t -> bool
(** Exchanges count as dead only if their wires always carry equal
    bits (swapping equal bits is the identity on 0-1 vectors). *)

val gate_redundant : t -> Gate.t -> bool

(** {1 Shared pair table}

    The search driver's redundant-move filter needs the same "could an
    ascending comparator placed on [(i, j)] still exchange something?"
    fact, but its reachable sets live in [Search.State], not here. The
    table construction is shared by abstracting over the mask
    iterator. *)

val unordered_pairs : n:int -> iter:((int -> unit) -> unit) -> Bytes.t
(** [unordered_pairs ~n ~iter] scans every mask produced by [iter]
    once and returns an [n * n] byte table whose entry [(i, j)]
    (row-major) is [1] iff some mask has bit [i] set and bit [j]
    clear — i.e. a comparator directing [i -> j] placed at this point
    would exchange at least one reachable vector. Scanning stops early
    once every ordered pair has been witnessed. *)

val pair_unordered : Bytes.t -> n:int -> int -> int -> bool
(** [pair_unordered tbl ~n i j] reads entry [(i, j)]. *)
