(* Certificate emission for the analyzer's verdicts. The analyzer
   proves; {!Cert.check} re-verifies from first principles — every
   certificate leaving this module has already survived that check, so
   a [Ok] here means an independent audit of the verdict, not a
   restatement of it. *)

let self_check cert =
  match Cert.check cert with
  | Ok () -> Ok cert
  | Error e ->
      Error
        (Printf.sprintf "emitted certificate fails its own check: %s %s: %s"
           e.Cert.code e.Cert.where e.Cert.reason)

(* all order facts the bounds walk has proved at this point, as
   deterministic lexicographic (i, j) pairs *)
let bounds_claims b =
  let n = Bounds.n b in
  let pairs = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto 0 do
      if i <> j && Bounds.leq b i j then pairs := (i, j) :: !pairs
    done
  done;
  !pairs

let reach_sets nw =
  let n = Network.wires nw in
  let st = ref (Reach.all n) in
  let sets =
    List.map
      (fun (level : Network.level) ->
        (match level.pre with
        | None -> ()
        | Some p -> st := Reach.apply_perm !st p);
        List.iter (fun g -> st := Reach.apply_gate !st g) level.gates;
        let masks = ref [] in
        Reach.iter (fun m -> masks := m :: !masks) !st;
        List.rev !masks)
      (Network.levels nw)
  in
  (sets, !st)

let sortedness ?(exact_max_wires = 12) nw =
  let n = Network.wires nw in
  if n <= min exact_max_wires Reach.max_wires then begin
    let sets, final = reach_sets nw in
    match Reach.find_unsorted final with
    | None ->
        self_check
          (Cert.Sortedness
             { network = nw; domain = Cert.Reach_sets (Array.of_list sets) })
    | Some _ ->
        (* refute with a concrete input: the smallest 0-1 vector whose
           output is unsorted (one exists — the final set is the image
           of all 2^n inputs) *)
        let witness = ref None in
        let m = ref 0 in
        while !witness = None && !m < 1 lsl n do
          if not (Cert.is_sorted_mask ~n (Cert.eval_mask nw !m)) then
            witness := Some !m;
          incr m
        done;
        (match !witness with
        | Some witness ->
            self_check (Cert.Refutation { network = nw; witness })
        | None ->
            Error "analyzer refuted sortedness but no witness input exists")
  end
  else begin
    let b = Bounds.create n in
    let lvls =
      List.map
        (fun (level : Network.level) ->
          (match level.pre with
          | None -> ()
          | Some p -> Bounds.transfer_perm b p);
          List.iter (fun g -> Bounds.transfer_gate b g) level.gates;
          bounds_claims b)
        (Network.levels nw)
    in
    if Bounds.sorted_proved b then
      self_check
        (Cert.Sortedness
           { network = nw; domain = Cert.Bounds_leq (Array.of_list lvls) })
    else
      Error
        (Printf.sprintf
           "the bounds domain cannot decide sortedness at %d wires (exact \
            domain capped at %d)"
           n
           (min exact_max_wires Reach.max_wires))
  end

let dead_gates ?(exact_max_wires = 12) nw =
  let n = Network.wires nw in
  if n > min exact_max_wires Reach.max_wires then Ok None
  else begin
    let st = ref (Reach.all n) in
    let claims = ref [] in
    let sets =
      List.mapi
        (fun li (level : Network.level) ->
          (match level.pre with
          | None -> ()
          | Some p -> st := Reach.apply_perm !st p);
          List.iteri
            (fun gi g ->
              if Reach.gate_redundant !st g then
                claims := Cert.Redundant { level = li + 1; gate = gi } :: !claims
              else if Reach.gate_dead !st g then
                claims := Cert.Dead { level = li + 1; gate = gi } :: !claims)
            level.gates;
          List.iter (fun g -> st := Reach.apply_gate !st g) level.gates;
          let masks = ref [] in
          Reach.iter (fun m -> masks := m :: !masks) !st;
          List.rev !masks)
        (Network.levels nw)
    in
    match List.rev !claims with
    | [] -> Ok None
    | claims ->
        Result.map
          (fun c -> Some c)
          (self_check
             (Cert.Dead_gates
                { network = nw; sets = Array.of_list sets; claims }))
  end
