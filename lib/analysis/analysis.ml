let c_networks = Metrics.counter "analysis.networks"
let c_comparators = Metrics.counter "analysis.comparators"
let c_dead = Metrics.counter "analysis.dead"
let c_redundant = Metrics.counter "analysis.redundant"
let c_cross = Metrics.counter "analysis.cross_checks"

type sortedness =
  | Sorting_proved
  | Sorting_refuted of int
  | Sorted_by_bounds
  | Unknown

type gate_ref = { level : int; gate : int; a : int; b : int }

type facts = {
  wires : int;
  levels : int;
  depth : int;
  comparators : int;
  exchanges : int;
  exact : bool;
  sortedness : sortedness;
  dead : gate_ref list;
  redundant : gate_ref list;
  shuffle_stages : int option;
  reverse_delta_blocks : int option;
  delta_blocks : int option;
}

type report = { facts : facts; diags : Diag.t list }

(* One walk, either domain. Queries for all gates of a level run
   against the level-entry state (the gates of a level fire in
   parallel); transfers are then applied sequentially, which is
   equivalent because gates of one level touch disjoint wires. *)
let classify_gates ~exact nw =
  let dead = ref [] and redundant = ref [] in
  let record lvl gi g ~is_dead ~is_red =
    if is_dead || is_red then begin
      let a, b = match g with
        | Gate.Compare { lo; hi } -> (lo, hi)
        | Gate.Exchange { a; b } -> (a, b)
      in
      let r = { level = lvl; gate = gi; a; b } in
      if is_dead || is_red then dead := r :: !dead;
      if is_red then redundant := r :: !redundant
    end
  in
  let final_sortedness =
    if exact then begin
      let n = Network.wires nw in
      let st = ref (Reach.all n) in
      List.iteri
        (fun li (level : Network.level) ->
          (match level.pre with
          | None -> ()
          | Some p -> st := Reach.apply_perm !st p);
          List.iteri
            (fun gi g ->
              record (li + 1) gi g
                ~is_dead:(Reach.gate_dead !st g)
                ~is_red:(Reach.gate_redundant !st g))
            level.gates;
          List.iter (fun g -> st := Reach.apply_gate !st g) level.gates)
        (Network.levels nw);
      match Reach.find_unsorted !st with
      | None -> Sorting_proved
      | Some m -> Sorting_refuted m
    end
    else begin
      let b = Bounds.create (Network.wires nw) in
      List.iteri
        (fun li (level : Network.level) ->
          (match level.pre with
          | None -> ()
          | Some p -> Bounds.transfer_perm b p);
          List.iteri
            (fun gi g ->
              record (li + 1) gi g ~is_dead:(Bounds.gate_dead b g)
                ~is_red:(Bounds.gate_redundant b g))
            level.gates;
          List.iter (fun g -> Bounds.transfer_gate b g) level.gates)
        (Network.levels nw);
      if Bounds.sorted_proved b then Sorted_by_bounds else Unknown
    end
  in
  (final_sortedness, List.rev !dead, List.rev !redundant)

let mask_bits ~n m =
  String.init n (fun i -> if m land (1 lsl (n - 1 - i)) <> 0 then '1' else '0')

let analyze_gen ?(exact_max_wires = 12) ?(cross_check = false)
    ~conformance nw =
  let n = Network.wires nw in
  let exact = n <= min exact_max_wires Reach.max_wires in
  let sortedness, dead, redundant = classify_gates ~exact nw in
  let comparators = Network.size nw in
  let exchanges =
    List.fold_left
      (fun acc (l : Network.level) ->
        acc
        + List.length (List.filter (fun g -> not (Gate.is_comparator g)) l.gates))
      0 (Network.levels nw)
  in
  Metrics.incr c_networks;
  Metrics.add c_comparators comparators;
  Metrics.add c_dead (List.length dead);
  Metrics.add c_redundant (List.length redundant);
  let shuffle_stages, reverse_delta_blocks, delta_blocks =
    if conformance then
      ( Conform.shuffle_stages nw,
        Conform.iterated_reverse_delta nw,
        Conform.delta_blocks nw )
    else (None, None, None)
  in
  let facts =
    {
      wires = n;
      levels = List.length (Network.levels nw);
      depth = Network.depth nw;
      comparators;
      exchanges;
      exact;
      sortedness;
      dead;
      redundant;
      shuffle_stages;
      reverse_delta_blocks;
      delta_blocks;
    }
  in
  let diags = ref (List.rev (Lint.structural nw)) in
  let add d = diags := d :: !diags in
  if not exact then
    add
      (Diag.make ~code:"SNL206" ~severity:Diag.Info
         (Printf.sprintf
            "exact 0-1 domain unavailable at %d wires (cap %d): sortedness \
             and gate verdicts use the approximate bounds domain"
            n
            (min exact_max_wires Reach.max_wires)));
  let red_set = List.map (fun r -> (r.level, r.gate)) redundant in
  List.iter
    (fun r ->
      let span = { Diag.level = r.level; gate = Some r.gate } in
      if List.mem (r.level, r.gate) red_set then
        add
          (Diag.make ~span ~code:"SNL202" ~severity:Diag.Info
             (Printf.sprintf
                "redundant comparator (%d,%d): wires provably equal, \
                 orientation immaterial"
                r.a r.b))
      else
        add
          (Diag.make ~span ~code:"SNL201" ~severity:Diag.Warning
             (Printf.sprintf
                "dead comparator (%d,%d): never exchanges on any reachable \
                 input; removable"
                r.a r.b)))
    dead;
  (match sortedness with
  | Sorting_proved ->
      add
        (Diag.make ~code:"SNL204" ~severity:Diag.Info
           (Printf.sprintf
              "sorting network: proved over all %d zero-one inputs (exact \
               domain)"
              (1 lsl n)))
  | Sorting_refuted m ->
      add
        (Diag.make ~code:"SNL203" ~severity:Diag.Info
           (Printf.sprintf
              "not a sorting network: some zero-one input leaves unsorted \
               output %s (exact domain)"
              (mask_bits ~n m)))
  | Sorted_by_bounds ->
      add
        (Diag.make ~code:"SNL205" ~severity:Diag.Info
           "sorting network: proved by the order-bounds domain")
  | Unknown -> ());
  if conformance then begin
    (match shuffle_stages with
    | Some s ->
        add
          (Diag.make ~code:"SNL301" ~severity:Diag.Info
             (Printf.sprintf
                "shuffle-based: all %d stages act on shuffle register pairs" s))
    | None -> ());
    (match reverse_delta_blocks with
    | Some b ->
        add
          (Diag.make ~code:"SNL302" ~severity:Diag.Info
             (Printf.sprintf
                "iterated reverse delta: %d block%s of %d levels (Definition \
                 3.4)"
                b
                (if b = 1 then "" else "s")
                (Bitops.log2_exact n)))
    | None -> ());
    match delta_blocks with
    | Some b ->
        add
          (Diag.make ~code:"SNL303" ~severity:Diag.Info
             (Printf.sprintf "delta skeleton: %d block%s (levels mirrored)" b
                (if b = 1 then "" else "s")))
    | None -> ()
  end;
  if cross_check && exact then begin
    Metrics.incr c_cross;
    let engine_sorts = Bitslice.is_sorting_network (Cache.compile nw) in
    let claimed = sortedness = Sorting_proved in
    if engine_sorts <> claimed then
      add
        (Diag.make ~code:"SNL999" ~severity:Diag.Error
           (Printf.sprintf
              "analyzer/engine disagree on sortedness (analyzer: %b, \
               bit-sliced engine: %b) — please report"
              claimed engine_sorts))
  end;
  { facts; diags = List.rev !diags }

let analyze ?exact_max_wires ?cross_check nw =
  analyze_gen ?exact_max_wires ?cross_check ~conformance:true nw

let remove_dead nw facts =
  let dead = List.map (fun r -> (r.level, r.gate)) facts.dead in
  let levels =
    List.mapi
      (fun li (level : Network.level) ->
        let gates =
          List.filteri (fun gi _ -> not (List.mem (li + 1, gi) dead)) level.gates
        in
        { level with Network.gates })
      (Network.levels nw)
  in
  Network.create ~wires:(Network.wires nw) levels

let flip_redundant nw facts =
  let red = List.map (fun r -> (r.level, r.gate)) facts.redundant in
  let levels =
    List.mapi
      (fun li (level : Network.level) ->
        let gates =
          List.mapi
            (fun gi g ->
              if List.mem (li + 1, gi) red then
                match g with
                | Gate.Compare { lo; hi } -> Gate.Compare { lo = hi; hi = lo }
                | Gate.Exchange _ as g -> g
              else g)
            level.gates
        in
        { level with Network.gates })
      (Network.levels nw)
  in
  Network.create ~wires:(Network.wires nw) levels

type strictness = Off | Warn | Strict

let check ?(strictness = Warn) nw =
  match strictness with
  | Off -> Ok []
  | Warn | Strict ->
      let { diags; _ } = analyze_gen ~conformance:false nw in
      let errs = Diag.count diags Diag.Error
      and warns = Diag.count diags Diag.Warning in
      if errs > 0 || (strictness = Strict && warns > 0) then Error diags
      else Ok diags

let load ?strictness path =
  match Network_io.load path with
  | Error e -> Error e
  | Ok nw -> (
      match check ?strictness nw with
      | Ok diags -> Ok (nw, diags)
      | Error diags ->
          let errs = Diag.count diags Diag.Error
          and warns = Diag.count diags Diag.Warning in
          Error
            (Printf.sprintf "network rejected by analysis (%d error%s, %d warning%s)"
               errs
               (if errs = 1 then "" else "s")
               warns
               (if warns = 1 then "" else "s")))
