(* Topology conformance (see conform.mli for the algorithm notes). *)

(* --- flattened gate levels, with the routing residue stripped --- *)

(* Like {!Network.flatten}, but per level: [pre] permutations are
   absorbed into a running wire relabeling (conformance is invariant
   under relabeling — reverse delta leaf labels are arbitrary). A
   level that was {e pure routing} — a [pre] and no gates — is
   ambiguous after flattening: in a register-model program it is an
   idle stage that still occupies a slot in the level cadence (the
   shuffle-based bitonic has whole idle stages early in each phase),
   while in an iterated network it is an inter-block permutation that
   occupies no level at all. The two readings give two canonical gate
   level sequences; recognizers try both ([keep] first) and accept if
   either conforms. Mixed networks — some perm levels structural,
   some not — may be conservatively rejected, which the mli
   documents. Trailing pure-routing levels (e.g. the output-routing
   residue {!Network.flatten} leaves) are never kept: no block ends in
   routing. Gate-free levels {e without} a [pre] are genuine padding
   and always kept. *)
let slots nw =
  let n = Network.wires nw in
  let slot = Array.init n (fun r -> r) in
  List.map
    (fun (lvl : Network.level) ->
      (match lvl.pre with
      | None -> ()
      | Some p ->
          let old = Array.copy slot in
          for r = 0 to n - 1 do
            slot.(Perm.apply p r) <- old.(r)
          done);
      let routing = lvl.gates = [] && lvl.pre <> None in
      (routing, List.map (Gate.map_wires (fun r -> slot.(r))) lvl.gates))
    (Network.levels nw)

let drop_trailing_routing sl =
  let rec dw = function (true, _) :: rest -> dw rest | l -> l in
  List.rev (dw (List.rev sl))

(* Both canonical readings; [forms] deduplicates when they agree. *)
let gate_levels_keep nw = List.map snd (drop_trailing_routing (slots nw))

let gate_levels_drop nw =
  List.filter_map (fun (r, g) -> if r then None else Some g) (slots nw)

(* [keep] first suits the stage-cadence readings (shuffle check);
   block recognition prefers [drop] — treating perm-only levels as
   inter-block routing is the iterated-network reading, and when both
   readings decompose (an ambiguity real circuits can exhibit) the
   routing one reports the coarser, intended block count. *)
let forms nw =
  let keep = gate_levels_keep nw and drop = gate_levels_drop nw in
  if keep = drop then [ keep ] else [ keep; drop ]

(* --- shuffle-based --- *)

let shuffle_stages nw =
  let n = Network.wires nw in
  if not (Bitops.is_power_of_two n) || n < 2 then None
  else begin
    let d = Bitops.log2_exact n in
    let of_gls gls =
      let ok =
        List.for_all2
          (fun gates bit ->
            List.for_all
              (fun g ->
                let a, b = Gate.wires g in
                a lxor b = 1 lsl bit)
              gates)
          gls
          (List.mapi (fun i _ -> d - 1 - (i mod d)) gls)
      in
      if ok && gls <> [] then Some (List.length gls) else None
    in
    List.find_map of_gls (forms nw)
  end

(* --- reverse delta recognition --- *)

(* During recognition a component is either a bare wire or a committed
   subtree of capacity [2^t]: two colour classes of earlier components
   plus the cross gates that joined them. Wire counts and capacities
   differ once never-touched wires are involved; capacities drive the
   aligned (buddy) packing, wire counts the totals. *)
type item =
  | Leaf of int
  | Comp of comp

and comp = {
  cap : int;
  wires_in : int;
  side0 : item list;
  side1 : item list;
  crosses : Reverse_delta.cross list;
}

let item_cap = function Leaf _ -> 1 | Comp c -> c.cap
let item_wires = function Leaf _ -> 1 | Comp c -> c.wires_in

exception No

let wires_of items = List.fold_left (fun s it -> s + item_wires it) 0 items

(* A component's two sides are interchangeable: flipping swaps the
   subtrees and mirrors every cross (left/right and min orientation). *)
let flip_comp c =
  {
    c with
    side0 = c.side1;
    side1 = c.side0;
    crosses =
      List.map
        (fun (x : Reverse_delta.cross) ->
          {
            Reverse_delta.left = x.right;
            right = x.left;
            kind =
              (match x.kind with
              | Reverse_delta.Min_left -> Reverse_delta.Min_right
              | Reverse_delta.Min_right -> Reverse_delta.Min_left
              | Reverse_delta.Swap -> Reverse_delta.Swap);
          })
        c.crosses;
  }

(* Pack [items] into a subtree of [cap] leaf slots, building the tree.
   Full-capacity components all live at this node: their cross levels
   merge (their wire sets are disjoint), each oriented greedily to
   balance the two halves; everything smaller drops into whichever
   half has more wire room, largest capacity first. Power-of-two sizes
   make the greedy split exact when components carry no internal
   slack; with slack-filling or unbalanced orientations it can in
   principle fail where a smarter assignment would succeed — the
   verdict is then conservatively "no" (and "yes" is always replayed
   and machine-checked, see below). *)
let rec pack cap items =
  if wires_of items > cap then raise No;
  if cap = 1 then
    match items with
    | [ Leaf w ] -> Reverse_delta.Wire w
    | _ -> raise No (* empty slot: not enough wires to fill the tree *)
  else begin
    let full, rest =
      List.partition
        (fun it -> match it with Comp c -> c.cap = cap | Leaf _ -> false)
        items
    in
    let side0, side1, crosses =
      List.fold_left
        (fun (s0, s1, cr) it ->
          match it with
          | Leaf _ -> assert false
          | Comp c ->
              let asis =
                max
                  (wires_of s0 + wires_of c.side0)
                  (wires_of s1 + wires_of c.side1)
              and flipped =
                max
                  (wires_of s0 + wires_of c.side1)
                  (wires_of s1 + wires_of c.side0)
              in
              let c = if asis <= flipped then c else flip_comp c in
              (s0 @ c.side0, s1 @ c.side1, cr @ c.crosses))
        ([], [], []) full
    in
    let half = cap / 2 in
    let extra0, extra1 =
      let sorted =
        List.sort (fun a b -> compare (item_cap b) (item_cap a)) rest
      in
      List.fold_left
        (fun (e0, e1) it ->
          let w = item_wires it in
          let r0 = half - wires_of (side0 @ e0)
          and r1 = half - wires_of (side1 @ e1) in
          if r0 >= r1 && r0 >= w then (it :: e0, e1)
          else if r1 >= w then (e0, it :: e1)
          else raise No)
        ([], []) sorted
    in
    Reverse_delta.Node
      {
        sub0 = pack half (side0 @ extra0);
        sub1 = pack half (side1 @ extra1);
        cross = crosses;
      }
  end

let reverse_delta_block ~wires gls =
  if not (Bitops.is_power_of_two wires) || wires < 2 then None
  else begin
    let d = Bitops.log2_exact wires in
    if List.length gls <> d then None
    else
      try
        (* comp_of.(w) = index of w's current root in [roots] *)
        let comp_of = Array.init wires (fun w -> w) in
        let roots = Hashtbl.create wires in
        for w = 0 to wires - 1 do
          Hashtbl.replace roots w (Leaf w)
        done;
        let next_root = ref wires in
        List.iteri
          (fun t0 gates ->
            let t = t0 + 1 in
            let cap_t = 1 lsl t in
            (* adjacency between roots, with the gates on each edge *)
            let adj = Hashtbl.create 16 in
            let touched = ref [] in
            let add_edge r g r' =
              if not (Hashtbl.mem adj r) then touched := r :: !touched;
              Hashtbl.replace adj r ((r', g) :: (try Hashtbl.find adj r with Not_found -> []))
            in
            List.iter
              (fun g ->
                let a, b = Gate.wires g in
                let ra = comp_of.(a) and rb = comp_of.(b) in
                if ra = rb then raise No;
                add_edge ra g rb;
                add_edge rb g ra)
              gates;
            (* connected components of the touched roots; 2-colour *)
            let colour = Hashtbl.create 16 in
            List.iter
              (fun start ->
                if not (Hashtbl.mem colour start) then begin
                  Hashtbl.replace colour start 0;
                  let queue = Queue.create () in
                  Queue.add start queue;
                  let members = ref [] in
                  while not (Queue.is_empty queue) do
                    let r = Queue.pop queue in
                    members := r :: !members;
                    let c = Hashtbl.find colour r in
                    List.iter
                      (fun (r', _) ->
                        match Hashtbl.find_opt colour r' with
                        | None ->
                            Hashtbl.replace colour r' (1 - c);
                            Queue.add r' queue
                        | Some c' -> if c' = c then raise No)
                      (Hashtbl.find adj r)
                  done;
                  (* merge this component into one step-t comp *)
                  let side c' =
                    List.filter (fun r -> Hashtbl.find colour r = c') !members
                  in
                  let items c' = List.map (Hashtbl.find roots) (side c') in
                  let s0 = items 0 and s1 = items 1 in
                  let wires_of = List.fold_left (fun s it -> s + item_wires it) 0 in
                  if wires_of s0 > cap_t / 2 || wires_of s1 > cap_t / 2 then
                    raise No;
                  (* gates become crosses; the side-0 endpoint is [left] *)
                  let crosses =
                    List.filter_map
                      (fun g ->
                        let a, b = Gate.wires g in
                        if not (List.mem comp_of.(a) !members) then None
                        else begin
                          let a0 = Hashtbl.find colour comp_of.(a) = 0 in
                          let left = if a0 then a else b
                          and right = if a0 then b else a in
                          let kind =
                            match g with
                            | Gate.Exchange _ -> Reverse_delta.Swap
                            | Gate.Compare { lo; _ } ->
                                if lo = left then Reverse_delta.Min_left
                                else Reverse_delta.Min_right
                          in
                          Some { Reverse_delta.left; right; kind }
                        end)
                      gates
                  in
                  let comp =
                    Comp
                      {
                        cap = cap_t;
                        wires_in = wires_of s0 + wires_of s1;
                        side0 = s0;
                        side1 = s1;
                        crosses;
                      }
                  in
                  let id = !next_root in
                  incr next_root;
                  Hashtbl.replace roots id comp;
                  List.iter (fun r -> Hashtbl.remove roots r) !members;
                  Array.iteri
                    (fun w r -> if List.mem r !members then comp_of.(w) <- id)
                    comp_of
                end)
              (List.rev !touched))
          gls;
        let forest = Hashtbl.fold (fun _ it acc -> it :: acc) roots [] in
        let rd = pack wires forest in
        Reverse_delta.validate rd;
        (* replay: the constructed tree must reproduce the block
           gate-for-gate, making Some a machine-checked certificate *)
        let replay = Network.levels (Reverse_delta.to_network ~wires rd) in
        let norm gs =
          List.sort compare
            (List.map
               (fun g ->
                 match g with
                 | Gate.Compare { lo; hi } -> (0, lo, hi)
                 | Gate.Exchange { a; b } -> (1, min a b, max a b))
               gs)
        in
        let same =
          List.length replay = List.length gls
          && List.for_all2
               (fun (l : Network.level) gs -> norm l.gates = norm gs)
               replay gls
        in
        if same then Some rd else None
      with No -> None
  end

let chunks ~d gls =
  let rec go acc cur k = function
    | [] -> if k = 0 then Some (List.rev acc) else None
    | g :: rest ->
        if k + 1 = d then go (List.rev (g :: cur) :: acc) [] 0 rest
        else go acc (g :: cur) (k + 1) rest
  in
  go [] [] 0 gls

(* Candidate block decompositions, one per canonical reading that
   chunks evenly. *)
let blocks_of nw =
  let n = Network.wires nw in
  if not (Bitops.is_power_of_two n) || n < 2 then []
  else
    let d = Bitops.log2_exact n in
    List.filter_map
      (fun gls -> if gls = [] then None else chunks ~d gls)
      (List.rev (forms nw))

let count_if recognize nw =
  let n = Network.wires nw in
  List.find_map
    (fun cs ->
      if List.for_all (fun c -> recognize ~wires:n c) cs then
        Some (List.length cs)
      else None)
    (blocks_of nw)

let iterated_reverse_delta nw =
  count_if (fun ~wires c -> reverse_delta_block ~wires c <> None) nw

let delta_blocks nw =
  count_if (fun ~wires c -> reverse_delta_block ~wires (List.rev c) <> None) nw

let to_iterated nw =
  let n = Network.wires nw in
  match blocks_of nw with
  | [] ->
      Error
        (Printf.sprintf
           "network on %d wires is not a whole number of lg-n-level blocks \
            (or n is not a power of two)"
           n)
  | candidates ->
      let rec build i acc = function
        | [] -> Ok (List.rev acc)
        | c :: rest -> (
            match reverse_delta_block ~wires:n c with
            | Some rd -> build (i + 1) (rd :: acc) rest
            | None ->
                Error
                  (Printf.sprintf "block %d is not a reverse delta network" i))
      in
      let rec try_all last = function
        | [] -> last
        | cs :: more -> (
            match build 1 [] cs with
            | Ok rds -> Ok (Iterated.uniform rds)
            | Error _ as e -> try_all e more)
      in
      try_all (Error "unreachable") candidates
