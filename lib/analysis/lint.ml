let structural nw =
  let n = Network.wires nw in
  let touched = Array.make n false in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  List.iteri
    (fun li (level : Network.level) ->
      let lvl = li + 1 in
      if level.gates = [] then
        add
          (Diag.make
             ~span:{ Diag.level = lvl; gate = None }
             ~code:"SNL104" ~severity:Diag.Info
             (if level.pre = None then "gate-free level (padding)"
              else "gate-free level (pure routing)"));
      List.iteri
        (fun gi g ->
          let a, b = Gate.wires g in
          touched.(a) <- true;
          touched.(b) <- true;
          match g with
          | Gate.Compare { lo; hi } when lo > hi ->
              add
                (Diag.make
                   ~span:{ Diag.level = lvl; gate = Some gi }
                   ~code:"SNL101" ~severity:Diag.Warning
                   (Printf.sprintf
                      "descending comparator (min to wire %d > max to wire \
                       %d); standard form orders min downward"
                      lo hi))
          | Gate.Exchange { a; b } ->
              add
                (Diag.make
                   ~span:{ Diag.level = lvl; gate = Some gi }
                   ~code:"SNL102" ~severity:Diag.Info
                   (Printf.sprintf
                      "unconditional exchange of wires %d and %d (free \
                       rewiring, not a comparison)"
                      a b))
          | Gate.Compare _ -> ())
        level.gates)
    (Network.levels nw);
  if n >= 2 then begin
    let untouched = ref [] in
    for w = n - 1 downto 0 do
      if not touched.(w) then untouched := w :: !untouched
    done;
    match !untouched with
    | [] -> ()
    | ws ->
        let shown = List.filteri (fun i _ -> i < 8) ws in
        let listing = String.concat ", " (List.map string_of_int shown) in
        let listing =
          if List.length ws > 8 then listing ^ ", ..." else listing
        in
        add
          (Diag.make ~code:"SNL103" ~severity:Diag.Warning
             (Printf.sprintf "%d of %d channels untouched by any gate: %s"
                (List.length ws) n listing))
  end;
  List.rev !diags

let standardize nw =
  let n = Network.wires nw in
  (* sigma.(w) = the standardized wire currently carrying what the
     original network holds on wire w at this point of execution *)
  let sigma = Array.init n (fun w -> w) in
  let swap a b =
    let t = sigma.(a) in
    sigma.(a) <- sigma.(b);
    sigma.(b) <- t
  in
  let levels =
    List.map
      (fun (level : Network.level) ->
        (match level.pre with
        | None -> ()
        | Some p ->
            (* original contents move w -> p w; standardized wires stay *)
            let s' = Array.make n 0 in
            Array.iteri (fun w s -> s'.(Perm.apply p w) <- s) sigma;
            Array.blit s' 0 sigma 0 n);
        let gates =
          List.filter_map
            (fun g ->
              match g with
              | Gate.Exchange { a; b } ->
                  swap a b;
                  None
              | Gate.Compare { lo; hi } ->
                  let x = sigma.(lo) and y = sigma.(hi) in
                  if x > y then swap lo hi;
                  Some (Gate.Compare { lo = min x y; hi = max x y }))
            level.gates
        in
        { Network.pre = None; gates })
      (Network.levels nw)
  in
  (* original output wire w carries standardized wire sigma.(w): route
     it home with one final permutation level *)
  let sigma_p = Perm.of_array (Array.copy sigma) in
  let levels =
    if Perm.is_identity sigma_p then levels
    else levels @ [ { Network.pre = Some (Perm.inverse sigma_p); gates = [] } ]
  in
  Network.create ~wires:n levels
