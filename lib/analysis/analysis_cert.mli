(** Proof-carrying output for the analyzer's verdicts.

    Each emitter re-runs the relevant abstract-domain walk, records the
    per-level annotations a {!Cert} checker needs, and validates the
    finished certificate with {!Cert.check} before returning it — so an
    [Ok] certificate has already been accepted by the independent
    checker, and an analyzer bug surfaces here as an [Error], never as
    a bogus certificate. *)

val sortedness :
  ?exact_max_wires:int -> Network.t -> (Cert.t, string) result
(** A certificate for the network's sortedness verdict: within the
    exact domain ([wires <= exact_max_wires], default 12), either a
    reach-domain {!Cert.Sortedness} (network sorts) or a
    {!Cert.Refutation} with a concrete witness input (it does not).
    Above the cutoff, a bounds-domain {!Cert.Sortedness} when the
    order-matrix walk proves sorting; [Error] when it cannot decide. *)

val dead_gates :
  ?exact_max_wires:int -> Network.t -> (Cert.t option, string) result
(** The reach-domain facts justifying every [SNL201]/[SNL202]
    dead/redundant-comparator diagnostic, as one {!Cert.Dead_gates}
    certificate. [Ok None] when the network is outside the exact
    domain or has no dead gates. *)
