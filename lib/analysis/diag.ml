type severity = Error | Warning | Info

type span = { level : int; gate : int option }

type t = {
  code : string;
  severity : severity;
  span : span option;
  message : string;
}

let make ?span ~code ~severity message = { code; severity; span; message }

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let span_text = function
  | None -> ""
  | Some { level; gate = None } -> Printf.sprintf "level %d: " level
  | Some { level; gate = Some g } -> Printf.sprintf "level %d gate %d: " level g

let to_text d =
  Printf.sprintf "%s[%s] %s%s" (severity_name d.severity) d.code
    (span_text d.span) d.message

(* Minimal JSON string escaping: codes and messages are ASCII, but a
   file path can reach a message, so escape everything the grammar
   requires. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json d =
  let b = Buffer.create 96 in
  Buffer.add_string b
    (Printf.sprintf "{\"code\":\"%s\",\"severity\":\"%s\"" (json_escape d.code)
       (severity_name d.severity));
  (match d.span with
  | None -> ()
  | Some { level; gate } -> (
      Buffer.add_string b (Printf.sprintf ",\"level\":%d" level);
      match gate with
      | None -> ()
      | Some g -> Buffer.add_string b (Printf.sprintf ",\"gate\":%d" g)));
  Buffer.add_string b
    (Printf.sprintf ",\"message\":\"%s\"}" (json_escape d.message));
  Buffer.contents b

let count ds sev = List.length (List.filter (fun d -> d.severity = sev) ds)

let codes =
  [
    ("SNL001", "file cannot be parsed as a network");
    ("SNL002", "network structure invalid (width, wiring)");
    ("SNL101", "descending comparator (non-standard form)");
    ("SNL102", "unconditional exchange element");
    ("SNL103", "channel untouched by any gate");
    ("SNL104", "gate-free level (pure routing or padding)");
    ("SNL201", "dead comparator: never exchanges on any reachable 0-1 input");
    ("SNL202", "redundant comparator: its wires are provably already ordered");
    ("SNL203", "sortedness refuted (exact 0-1 domain, witness input)");
    ("SNL204", "sortedness proved (exact 0-1 domain)");
    ("SNL205", "sortedness proved (order-bounds domain)");
    ("SNL206", "exact 0-1 domain unavailable at this width; using bounds");
    ("SNL301", "shuffle-based: every stage pairs shuffle-adjacent registers");
    ("SNL302", "iterated reverse delta skeleton (paper Section 2)");
    ("SNL303", "delta skeleton (paper Section 2)");
    ("SNL999", "internal: analyzer verdict contradicts engine evaluation");
  ]

let describe c = List.assoc_opt c codes
