(** Structural lints and the standard-form rewrite.

    These checks need no abstract interpretation — they read the
    wiring only. (Out-of-range, self-comparing and overlapping gates
    cannot occur in a constructed [Network.t]: [Network.create]
    rejects them, and [Network_io] reports them with line numbers at
    parse time. What remains checkable here is the valid-but-odd.) *)

val structural : Network.t -> Diag.t list
(** - SNL101 (warning) per descending comparator ([lo > hi]);
    - SNL102 (info) per unconditional exchange element;
    - SNL103 (warning) once, listing channels no gate ever touches
      (for [wires >= 2]: such a channel can never be sorted against
      the others);
    - SNL104 (info) per gate-free level (pure routing or padding). *)

val standardize : Network.t -> Network.t
(** Knuth's untangling (exercise 5.3.4.16): rewrite every descending
    comparator to ascending and absorb exchange elements and [pre]
    permutations into a running relabelling of the wires, appending
    one final gate-free routing level when the net relabelling is not
    the identity. The result computes exactly the same input/output
    function, has only ascending comparators and no exchanges, and
    keeps the level count (plus possibly the routing level). *)
