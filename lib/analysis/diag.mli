(** Typed diagnostics for the network analyzer.

    Every fact the analyzer wants to surface — a structural smell, a
    semantic proof, a topology-conformance verdict, a load failure —
    becomes a {!t}: a stable machine-readable code, a severity, an
    optional span (1-based level, 0-based gate index within the level)
    and a human message. The code table is documented in DESIGN.md and
    frozen: codes are append-only so downstream tooling (CI greps, the
    JSON consumers of [snlb lint --format json]) can match on them.

    Severity semantics: [Error] means the input is unusable (parse
    failure, invalid structure) — [snlb lint] exits 1; [Warning] means
    the network is valid but suspicious (dead comparator, untouched
    channel, descending comparator); [Info] records proved facts
    (sortedness verdicts, conformance certificates, redundancy). A
    non-sorting network is {e not} an error: the analyzer lints
    mergers and partial circuits too. *)

type severity = Error | Warning | Info

type span = { level : int; gate : int option }
(** [level] is 1-based (matching [Network.t] level order and the
    [level N:] lines of the file format); [gate] is the 0-based index
    within that level's gate list. For parse diagnostics, [level]
    carries the source line number instead. *)

type t = {
  code : string;  (** e.g. ["SNL201"]; stable, append-only *)
  severity : severity;
  span : span option;
  message : string;
}

val make : ?span:span -> code:string -> severity:severity -> string -> t

val severity_name : severity -> string
(** ["error"] / ["warning"] / ["info"]. *)

val to_text : t -> string
(** One human line, e.g.
    ["warning[SNL201] level 3 gate 0: dead comparator (4,5): ..."]. *)

val to_json : t -> string
(** One NDJSON object:
    [{"code":...,"severity":...,"level":N,"gate":N,"message":...}]
    ([level]/[gate] omitted when absent). Strings are JSON-escaped. *)

val count : t list -> severity -> int

val describe : string -> string option
(** Short description of a diagnostic code, if known — the code table. *)

val codes : (string * string) list
(** All known codes with their one-line descriptions, sorted. *)
