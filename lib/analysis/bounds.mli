(** Approximate order-bounds abstract domain for large networks.

    Where {!Reach} tracks the exact reachable 0-1 set (exponential in
    [n]), this domain keeps two kinds of sound facts, each polynomial:

    - an [n * n] order matrix [R] with [R(i, j)] set only if the value
      on wire [i] is [<=] the value on wire [j] for {e every} input;
    - per-wire intervals [[lo_w, hi_w]] bounding the value rank on
      wire [w] when the input is a permutation of [0 .. n-1].

    Soundness argument (DESIGN.md has the full version): facts are
    proved over permutation inputs; every input vector is a monotone
    image of some permutation vector, and comparator networks commute
    with monotone maps (min/max do, exchanges and rewirings trivially
    do), so a proved [v_i <= v_j] holds for all inputs — in particular
    all 0-1 inputs, which makes the derived verdicts (sortedness,
    dead, redundant) agree soundly with the exact domain: the bounds
    domain may answer "don't know", never wrongly "yes".

    Transfer functions: a comparator [a <- min, b <- max] sets
    [R(a, b)], keeps [R(b, a)] only if both old directions held (the
    equal case), and propagates third-wire facts ([c <= min] needs
    [c <=] both inputs, [min <= c] needs either, dually for max);
    intervals take the pointwise min/max of the endpoints. All rules
    preserve transitive closedness of [R] when gates are applied
    level-wise, but the domain does not rely on it — queries only read
    single entries.

    Values are mutable and updated in place ([O(n)] per gate,
    [O(n^2)] per permutation level); the analyzer queries all gates of
    a level against the level-entry state before transferring any of
    them, matching the parallel gate semantics. *)

type t

val create : int -> t
(** Top: no order facts beyond reflexivity, intervals [[0, n-1]]. *)

val n : t -> int

val leq : t -> int -> int -> bool
(** [leq b i j] — is [v_i <= v_j] proved (on every input)? *)

val interval : t -> int -> int * int

val transfer_gate : t -> Gate.t -> unit

val transfer_perm : t -> Perm.t -> unit
(** Contents of wire [j] move to wire [Perm.apply p j]. *)

val sorted_proved : t -> bool
(** [R(w, w+1)] for every consecutive pair — proves the network sorts
    every input (not just 0-1). *)

val gate_dead : t -> Gate.t -> bool
(** For a comparator [lo <- min, hi <- max]: proved to never exchange,
    i.e. [leq lo hi] or the intervals are disjoint in that order. For
    an exchange: dead only if the wires are provably equal. *)

val gate_redundant : t -> Gate.t -> bool
(** Both directions proved: the wires carry equal values always. *)
