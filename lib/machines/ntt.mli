(** The FFT as a strict ascend algorithm: a number-theoretic transform
    over Z_p with p = 998244353 (so the arithmetic is exact and the
    tests are deterministic).

    One ascend pass runs the decimation-in-frequency radix-2 transform:
    at stage [s] the machine pairs exactly the wires a DIF butterfly of
    block size [n / 2^(s-1)] needs (they differ in bit [lg n - s]), so
    the classic constant-geometry (Pease) FFT is literally an
    {!Ascend.pass} with the right twiddles. The raw pass emits
    bit-reversed output; [forward]/[inverse] relabel to natural order
    (a fixed wire relabeling, free in the paper's model). *)

val modulus : int
(** 998244353 = 119 * 2^23 + 1; supports transforms up to [n = 2^23]. *)

val forward : n:int -> int array -> int array
(** [forward ~n v] is the DFT of [v] over Z_p: output [k] is
    [sum_j v_j W^(jk)] with [W] a primitive n-th root of unity.
    Elements are taken mod p. @raise Invalid_argument unless [n] is a
    power of two [<= 2^23] and [Array.length v = n]. *)

val inverse : n:int -> int array -> int array
(** [inverse ~n (forward ~n v) = v mod p]. *)

val convolve : n:int -> int array -> int array -> int array
(** Cyclic convolution via three transforms; the classic application
    and a strong end-to-end test of the machine. *)

val naive_dft : n:int -> int array -> int array
(** The O(n^2) reference implementation the tests compare against. *)
