let modulus = 998244353
let generator = 3

let ( %* ) a b = a * b mod modulus

let rec power base e =
  if e = 0 then 1
  else
    let h = power base (e / 2) in
    let h2 = h %* h in
    if e land 1 = 1 then h2 %* base else h2

let inverse_mod a = power a (modulus - 2)

let check_n n v =
  if not (Bitops.is_power_of_two n) || n > 1 lsl 23 then
    invalid_arg "Ntt: n must be a power of two <= 2^23";
  if Array.length v <> n then invalid_arg "Ntt: input length mismatch"

let bit_reverse_relabel n v =
  let d = Bitops.log2_exact n in
  Array.init n (fun i -> v.(Bitops.reverse_bits ~width:d i))

(* One DIF pass with root [w] (primitive n-th root): stage s pairs
   (o, o + 2^(d-s)); butterfly x' = x + y, y' = (x - y) * w^(j * 2^(s-1))
   with j = o mod 2^(d-s).  Output is bit-reversed. *)
let dif_pass ~n ~w v =
  let d = Bitops.log2_exact n in
  let step ~stage ~origin x y =
    let j = origin land ((1 lsl (d - stage)) - 1) in
    let twiddle = power w (j * (1 lsl (stage - 1))) in
    let x' = (x + y) mod modulus in
    let y' = (x - y + modulus) mod modulus %* twiddle in
    (x', y')
  in
  Ascend.pass ~n step v

let forward ~n v =
  check_n n v;
  if n = 1 then Array.copy v
  else begin
    let v = Array.map (fun x -> ((x mod modulus) + modulus) mod modulus) v in
    let w = power generator ((modulus - 1) / n) in
    bit_reverse_relabel n (dif_pass ~n ~w v)
  end

let inverse ~n v =
  check_n n v;
  if n = 1 then Array.copy v
  else begin
    let v = Array.map (fun x -> ((x mod modulus) + modulus) mod modulus) v in
    let w = inverse_mod (power generator ((modulus - 1) / n)) in
    let out = bit_reverse_relabel n (dif_pass ~n ~w v) in
    let n_inv = inverse_mod n in
    Array.map (fun x -> x %* n_inv) out
  end

let convolve ~n a b =
  check_n n a;
  check_n n b;
  let fa = forward ~n a and fb = forward ~n b in
  inverse ~n (Array.init n (fun i -> fa.(i) %* fb.(i)))

let naive_dft ~n v =
  check_n n v;
  let w = if n = 1 then 1 else power generator ((modulus - 1) / n) in
  Array.init n (fun k ->
      let acc = ref 0 in
      for j = 0 to n - 1 do
        acc := (!acc + (v.(j) mod modulus %* power w (j * k mod n))) mod modulus
      done;
      !acc)
