(** Parallel prefix (scan) as a strict ascend algorithm.

    One ascend pass suffices: at the step for hypercube dimension [b],
    the pair exchanges block totals and the upper element prepends the
    lower block's total to its prefix. Because a strict ascend pass
    visits dimensions from most to least significant, the raw pass
    computes prefixes in {e bit-reversed} index order; the wrappers
    below relabel input and output wires by the (fixed,
    data-independent) bit-reversal permutation so callers see natural
    order, which costs no comparator-model depth. *)

val scan : n:int -> op:('a -> 'a -> 'a) -> 'a array -> 'a array
(** [scan ~n ~op v] is the inclusive prefix
    [[v0; v0+v1; v0+v1+v2; ...]] for any associative [op], computed in
    one ascend pass ([lg n] steps). *)

val exclusive_scan : n:int -> op:('a -> 'a -> 'a) -> zero:'a -> 'a array -> 'a array
(** Exclusive variant: element [i] receives [v_0 + ... + v_{i-1}],
    with [zero] at index 0. *)

val reduce : n:int -> op:('a -> 'a -> 'a) -> 'a array -> 'a
(** [reduce ~n ~op v] folds [v] left-to-right with [op] in one ascend
    pass (an all-reduce: every register ends with the total; the first
    is returned). *)
