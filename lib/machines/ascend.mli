(** The strict-ascend shuffle-exchange machine.

    The paper's closing argument for caring about the shuffle-only
    class: "the primary motivation for considering hypercubic networks
    ... is that they admit elegant and efficient strict ascend
    algorithms for a wide variety of basic operations (e.g., parallel
    prefix, FFT)". This module is that machine: [n = 2^d] registers;
    one pass performs [d] steps, each consisting of the shuffle
    permutation followed by an arbitrary pairwise operation on the
    register pairs [(2k, 2k+1)] — exactly the dataflow of the paper's
    register-model networks, with comparators generalised to arbitrary
    binary operations.

    As derived for {!Shuffle_net}, at step [t] (1-indexed) the pair on
    registers [(2k, 2k+1)] holds the values that entered the pass on
    wires [(o, o + 2^(d-t))] with [o = rotr^t (2k)] — i.e. a strict
    ascend pass visits hypercube dimension [d-1] down to [0], and the
    step function is told the pair's origin coordinates so algorithms
    can use twiddle factors or rank information. *)

type 'a step = stage:int -> origin:int -> 'a -> 'a -> 'a * 'a
(** [step ~stage ~origin x y] transforms the pair at stage [stage]
    (1-indexed within the pass). [origin] is the pass-input wire of
    the first element [x]; the second element [y] entered on wire
    [origin + 2^(d - stage)]. Returns the new [(x, y)]. *)

val pass : n:int -> 'a step -> 'a array -> 'a array
(** [pass ~n f v] runs one full ascend pass ([lg n] shuffle+operate
    steps) over [v]. The result is indexed by register; because
    [rotl^(lg n)] is the identity, register [r] holds the value whose
    pass-output coordinate is [r]. @raise Invalid_argument unless
    [Array.length v = n] is a power of two >= 2. *)

val passes : n:int -> int -> 'a step -> 'a array -> 'a array
(** [passes ~n k f v] chains [k] full passes ([k lg n] steps). *)

val steps : n:int -> stages:int -> 'a step -> 'a array -> 'a array
(** [steps ~n ~stages f v] runs a truncated pass of [stages <= lg n]
    steps (the machine counterpart of the Section 5 [f(n)] classes).
    Values end displaced by [rotl^stages]; the result array is given
    in register order. *)
