type 'a step = stage:int -> origin:int -> 'a -> 'a -> 'a * 'a

let rotr ~width ~count x =
  let k = count mod width in
  if k = 0 then x
  else ((x lsr k) lor (x lsl (width - k))) land ((1 lsl width) - 1)

let check_n n v =
  if not (Bitops.is_power_of_two n) || n < 2 then
    invalid_arg "Ascend: n must be a power of two >= 2";
  if Array.length v <> n then invalid_arg "Ascend: input length mismatch"

let steps ~n ~stages f v =
  check_n n v;
  let d = Bitops.log2_exact n in
  if stages < 0 || stages > d then
    invalid_arg "Ascend.steps: stages must be in [0, lg n]";
  let cur = ref (Array.copy v) in
  for t = 1 to stages do
    (* shuffle: register contents move j -> rotl j *)
    let shuffled = Array.make n !cur.(0) in
    Array.iteri
      (fun j x -> shuffled.(rotr ~width:d ~count:(d - 1) j) <- x)
      !cur;
    (* operate on register pairs; pair (2k, 2k+1) entered the pass on
       wires (rotr^t 2k, rotr^t (2k+1)) *)
    for k = 0 to (n / 2) - 1 do
      let origin = rotr ~width:d ~count:t (2 * k) in
      let x, y = f ~stage:t ~origin shuffled.(2 * k) shuffled.((2 * k) + 1) in
      shuffled.(2 * k) <- x;
      shuffled.((2 * k) + 1) <- y
    done;
    cur := shuffled
  done;
  !cur

let pass ~n f v =
  let d = Bitops.log2_exact n in
  steps ~n ~stages:d f v

let passes ~n k f v =
  let rec go acc i = if i = 0 then acc else go (pass ~n f acc) (i - 1) in
  if k < 0 then invalid_arg "Ascend.passes: negative pass count";
  check_n n v;
  go (Array.copy v) k
