type 'a cell = { prefix : 'a; total : 'a }

let bit_reverse_relabel n v =
  let d = Bitops.log2_exact n in
  Array.init n (fun i -> v.(Bitops.reverse_bits ~width:d i))

(* The ascend pass visits dimensions MSB-first, which yields prefixes in
   bit-reversed order; relabeling both sides restores natural order. *)
let scan ~n ~op v =
  if Array.length v <> n then invalid_arg "Prefix.scan: length mismatch";
  let cells =
    bit_reverse_relabel n (Array.map (fun x -> { prefix = x; total = x }) v)
  in
  let step ~stage:_ ~origin:_ x y =
    let total = op x.total y.total in
    ({ x with total }, { prefix = op x.total y.prefix; total })
  in
  let out = Ascend.pass ~n step cells in
  bit_reverse_relabel n (Array.map (fun c -> c.prefix) out)

let exclusive_scan ~n ~op ~zero v =
  let inc = scan ~n ~op v in
  Array.init n (fun i -> if i = 0 then zero else inc.(i - 1))

let reduce ~n ~op v =
  if Array.length v <> n then invalid_arg "Prefix.reduce: length mismatch";
  let cells = bit_reverse_relabel n (Array.copy v) in
  let step ~stage:_ ~origin:_ x y =
    let total = op x y in
    (total, total)
  in
  let out = Ascend.pass ~n step cells in
  out.(0)
