(** Knuth-style ASCII diagrams of comparator networks.

    One horizontal line per wire, time flowing left to right; a
    comparator is drawn as [o---o] endpoints joined by a vertical bar
    (the min-output end is marked [o], the max end [*] when the
    comparator points "down" the page), an exchange as [x...x].
    Comparators of one level that span overlapping wire ranges are
    staggered into adjacent columns so the bars never cross.

    {v
      0 --o--o-------
          |  |
      1 --o--+--o----
             |  |
      2 --o--+--o----
          |  |
      3 --o--o-------
    v} *)

val render : ?max_wires:int -> Network.t -> string
(** [render nw] draws the (flattened) network.
    @raise Invalid_argument if [wires nw > max_wires] (default 64). *)
