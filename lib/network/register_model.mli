(** The paper's register model of comparator networks.

    A network on [n] registers is a sequence of pairs [(Pi_i, x_i)]
    where [Pi_i] permutes the register contents and [x_i] assigns one
    of the operations [+ - 0 1] to each register pair [(2k, 2k+1)]
    (Section 1). A network is *based on the shuffle permutation* when
    every [Pi_i] is the shuffle.

    [to_network] realises the standard equivalence with the circuit
    model: same size, same depth, same input/output mapping. *)

type op =
  | Plus  (** compare; min to register [2k], max to [2k+1] *)
  | Minus  (** compare; max to register [2k], min to [2k+1] *)
  | Zero  (** no operation *)
  | One  (** unconditional exchange *)

type stage = { perm : Perm.t; ops : op array }
(** One step: permute register contents by [perm], then apply [ops.(k)]
    to registers [2k] and [2k+1]. [ops] has length [n/2]. *)

type t

val create : n:int -> stage list -> t
(** @raise Invalid_argument if [n] is not even and positive, a
    permutation has the wrong size, or an op vector the wrong length. *)

val n : t -> int

val stages : t -> stage list

val shuffle_program : n:int -> op array list -> t
(** [shuffle_program ~n opss] builds the shuffle-based program whose
    [i]-th stage is [(shuffle, opss_i)] — the class the lower bound is
    about. [n] must be a power of two >= 2. *)

val stage_count : t -> int

val depth : t -> int
(** Number of stages whose op vector contains a comparator. *)

val to_network : t -> Network.t
(** Circuit-model equivalent: one level per stage, [pre] carrying the
    stage permutation. *)

val eval : t -> int array -> int array
(** Direct register-model evaluation (used to cross-check
    [to_network]). *)

val random_ops : Xoshiro.t -> n:int -> op array
(** A uniformly random op vector over [{+,-,0,1}] of length [n/2]. *)

val comparator_ops : n:int -> op array
(** The all-[Plus] vector (a full level of ascending comparators). *)

val pp_op : Format.formatter -> op -> unit
