type op = Plus | Minus | Zero | One

type stage = { perm : Perm.t; ops : op array }

type t = { n : int; stages : stage list }

let create ~n stages =
  if n < 2 || n mod 2 <> 0 then
    invalid_arg "Register_model.create: n must be positive and even";
  List.iteri
    (fun i st ->
      if Perm.n st.perm <> n then
        invalid_arg
          (Printf.sprintf "Register_model.create: stage %d permutation size %d <> %d"
             i (Perm.n st.perm) n);
      if Array.length st.ops <> n / 2 then
        invalid_arg
          (Printf.sprintf "Register_model.create: stage %d has %d ops, want %d"
             i (Array.length st.ops) (n / 2)))
    stages;
  { n; stages }

let n p = p.n
let stages p = p.stages

let shuffle_program ~n opss =
  let sh = Perm.shuffle n in
  create ~n (List.map (fun ops -> { perm = sh; ops }) opss)

let stage_count p = List.length p.stages

let stage_has_comparator st =
  Array.exists (function Plus | Minus -> true | Zero | One -> false) st.ops

let depth p =
  List.fold_left
    (fun acc st -> if stage_has_comparator st then acc + 1 else acc)
    0 p.stages

let gates_of_ops ops =
  let out = ref [] in
  Array.iteri
    (fun k op ->
      let a = 2 * k and b = (2 * k) + 1 in
      match op with
      | Plus -> out := Gate.Compare { lo = a; hi = b } :: !out
      | Minus -> out := Gate.Compare { lo = b; hi = a } :: !out
      | One -> out := Gate.Exchange { a; b } :: !out
      | Zero -> ())
    ops;
  List.rev !out

let to_network p =
  let level_of_stage st =
    { Network.pre = Some st.perm; gates = gates_of_ops st.ops }
  in
  Network.create ~wires:p.n (List.map level_of_stage p.stages)

let eval p input =
  if Array.length input <> p.n then
    invalid_arg "Register_model.eval: input length mismatch";
  let step values st =
    let values = Perm.permute_array st.perm values in
    Array.iteri
      (fun k op ->
        let a = 2 * k and b = (2 * k) + 1 in
        match op with
        | Plus ->
            if values.(a) > values.(b) then begin
              let t = values.(a) in
              values.(a) <- values.(b);
              values.(b) <- t
            end
        | Minus ->
            if values.(a) < values.(b) then begin
              let t = values.(a) in
              values.(a) <- values.(b);
              values.(b) <- t
            end
        | One ->
            let t = values.(a) in
            values.(a) <- values.(b);
            values.(b) <- t
        | Zero -> ())
      st.ops;
    values
  in
  List.fold_left step (Array.copy input) p.stages

let random_ops rng ~n =
  if n < 2 || n mod 2 <> 0 then
    invalid_arg "Register_model.random_ops: n must be positive and even";
  Array.init (n / 2) (fun _ ->
      match Xoshiro.int rng ~bound:4 with
      | 0 -> Plus
      | 1 -> Minus
      | 2 -> Zero
      | _ -> One)

let comparator_ops ~n =
  if n < 2 || n mod 2 <> 0 then
    invalid_arg "Register_model.comparator_ops: n must be positive and even";
  Array.make (n / 2) Plus

let pp_op fmt = function
  | Plus -> Format.pp_print_string fmt "+"
  | Minus -> Format.pp_print_string fmt "-"
  | Zero -> Format.pp_print_string fmt "0"
  | One -> Format.pp_print_string fmt "1"
