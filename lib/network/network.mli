(** Comparator networks in the circuit model.

    A network on [wires] wires is a sequence of levels. Each level may
    first apply a fixed permutation to the wire contents (the [pre]
    component — this is the [Pi_i] of the paper's register model and
    the "arbitrary fixed permutation between reverse delta networks" of
    iterated networks) and then fires a set of gates on pairwise
    disjoint wires. A network with [pre = None] everywhere is a plain
    circuit-model network; {!flatten} converts any network into that
    form, preserving the input/output mapping exactly.

    Networks are immutable. Evaluation never mutates the input array. *)

type level = { pre : Perm.t option; gates : Gate.t list }

type t

val create : wires:int -> level list -> t
(** [create ~wires levels] validates and builds a network: every gate
    index must lie in [0, wires); within one level gates must touch
    pairwise disjoint wires; every [pre] permutation must have size
    [wires]. @raise Invalid_argument on violation. *)

val of_gate_levels : wires:int -> Gate.t list list -> t
(** [of_gate_levels ~wires gss] is [create] with [pre = None] on every
    level. *)

val wires : t -> int

val levels : t -> level list

val depth : t -> int
(** [depth nw] is the number of levels that contain at least one
    comparator. Levels holding only exchanges or a permutation are free
    rewiring and do not count, matching the paper's depth measure. *)

val size : t -> int
(** [size nw] is the total number of comparator gates. *)

val empty : int -> t
(** [empty n] is the n-wire network with no levels (the identity). *)

val permutation_level : Perm.t -> t
(** [permutation_level p] is a single gate-free level applying [p]. *)

val serial : t -> t -> t
(** [serial a b] feeds the outputs of [a] into the inputs of [b]
    wire-by-wire. @raise Invalid_argument if widths differ. *)

val serial_perm : t -> Perm.t -> t -> t
(** [serial_perm a p b] connects output wire [j] of [a] to input wire
    [p j] of [b] — the serial composition with an arbitrary one-to-one
    wire mapping used by the paper's ⊗ operator. *)

val parallel : t -> t -> t
(** [parallel a b] places [b] next to [a]: the wires of [b] are
    shifted up by [wires a]. Levels are aligned index-wise (level [i]
    of the result contains level [i] of both); this preserves each
    component's level structure and hence depth is
    [max (depth a) (depth b)] when neither uses [pre] permutations.
    @raise Invalid_argument if either network uses [pre] permutations
    (flatten first). *)

val eval : t -> int array -> int array
(** [eval nw input] runs the network on an integer input (length must
    equal [wires nw]) and returns the output array. *)

val eval_gen : cmp:('a -> 'a -> int) -> t -> 'a array -> 'a array
(** Generic-element evaluation with an explicit comparison. *)

val eval_trace : on_compare:(int -> int -> unit) -> t -> int array -> int array
(** [eval_trace ~on_compare nw input] evaluates like {!eval} but calls
    [on_compare u v] for every [Compare] gate fired, with [u] and [v]
    the two *values* (not wires) examined, in gate order. Exchange
    elements and permutations do not report: they never compare
    (Definition 3.6). *)

val flatten : t -> t
(** [flatten nw] is an input/output-equivalent network in which no
    level carries a [pre] permutation except possibly one final
    gate-free output-routing level. Comparator count, level count and
    depth are preserved. *)

val output_wiring_only : t -> Perm.t option
(** [output_wiring_only nw] is [Some p] if [nw] contains no gates at
    all and is therefore the fixed permutation [p]; [None] otherwise. *)

val gates_of_level : level -> Gate.t list

val comparator_pairs : t -> (int * int) list
(** All [(lo, hi)] comparator wire pairs in order, across levels; for
    structural tests and DOT export. *)

val to_dot : t -> string
(** Graphviz rendering of the (flattened) network: one column of nodes
    per level, comparator edges labelled by direction. Intended for the
    explorer example; small networks only. *)

val pp_stats : Format.formatter -> t -> unit
(** One-line summary: wires, levels, depth, comparators, exchanges. *)
