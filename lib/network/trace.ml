module Pair_set = Set.Make (struct
  type t = int * int

  let compare = compare
end)

type t = Pair_set.t

let norm u v = if u <= v then (u, v) else (v, u)

let run nw input =
  let seen = ref Pair_set.empty in
  let on_compare u v = seen := Pair_set.add (norm u v) !seen in
  let out = Network.eval_trace ~on_compare nw input in
  (out, !seen)

let compared tr u v = Pair_set.mem (norm u v) tr

let count tr = Pair_set.cardinal tr

let pairs tr = Pair_set.elements tr

let wires_collide nw input w0 w1 =
  let _, tr = run nw input in
  compared tr input.(w0) input.(w1)
