(* Gates of one level are packed greedily into sub-columns such that no
   two gates in a sub-column have overlapping [min..max] wire spans. *)
let pack_columns gates =
  let span g =
    let a, b = Gate.wires g in
    (min a b, max a b)
  in
  let columns : (int * int * Gate.t) list list ref = ref [] in
  List.iter
    (fun g ->
      let lo, hi = span g in
      let rec place = function
        | [] -> [ [ (lo, hi, g) ] ]
        | col :: rest ->
            let overlaps =
              List.exists (fun (l, h, _) -> not (hi < l || h < lo)) col
            in
            if overlaps then col :: place rest else ((lo, hi, g) :: col) :: rest
      in
      columns := place !columns)
    gates;
  List.rev_map List.rev !columns |> List.rev

let render ?(max_wires = 64) nw =
  let n = Network.wires nw in
  if n > max_wires then
    invalid_arg
      (Printf.sprintf "Diagram.render: %d wires exceeds max_wires=%d" n max_wires);
  let nw = Network.flatten nw in
  (* canvas rows: wire rows at even indices, gap rows between *)
  let rows = (2 * n) - 1 in
  let canvas = ref (Array.make rows (Buffer.create 8)) in
  let label_width = String.length (string_of_int (n - 1)) in
  canvas :=
    Array.init rows (fun r ->
        let b = Buffer.create 32 in
        if r mod 2 = 0 then
          Buffer.add_string b (Printf.sprintf "%*d -" label_width (r / 2))
        else Buffer.add_string b (String.make (label_width + 2) ' ');
        b);
  let canvas = !canvas in
  let width_so_far () = Buffer.length canvas.(0) in
  let pad_to w =
    Array.iteri
      (fun r b ->
        let fill = if r mod 2 = 0 then '-' else ' ' in
        while Buffer.length b < w do
          Buffer.add_char b fill
        done)
      canvas
  in
  let draw_column col =
    let base = width_so_far () in
    pad_to (base + 1);
    List.iter
      (fun (lo, hi, g) ->
        let top = 2 * lo and bottom = 2 * hi in
        (* min-output end drawn 'o', max end '*', exchange ends 'x' *)
        let top_char, bottom_char =
          match g with
          | Gate.Exchange _ -> ('x', 'x')
          | Gate.Compare { lo = min_wire; _ } ->
              let a, b = Gate.wires g in
              if min_wire = min a b then ('o', '*') else ('*', 'o')
        in
        for r = top to bottom do
          let b = canvas.(r) in
          let ch =
            if r = top then top_char
            else if r = bottom then bottom_char
            else if r mod 2 = 0 then '+'
            else '|'
          in
          (* overwrite the just-padded cell *)
          let s = Buffer.contents b in
          Buffer.clear b;
          Buffer.add_string b (String.sub s 0 (String.length s - 1));
          Buffer.add_char b ch
        done)
      col;
    pad_to (base + 2)
  in
  List.iter
    (fun lvl ->
      match lvl.Network.gates with
      | [] -> ()
      | gates ->
          List.iter draw_column (pack_columns gates);
          pad_to (width_so_far () + 1))
    (Network.levels nw);
  pad_to (width_so_far () + 1);
  let out = Buffer.create 1024 in
  Array.iter
    (fun b ->
      Buffer.add_string out (Buffer.contents b);
      Buffer.add_char out '\n')
    canvas;
  Buffer.contents out
