(** Circuit elements of a comparator network.

    Following the paper's register model, a level may contain three
    kinds of active elements: a comparator ("+" or "-", represented by
    {!constructor-Compare} with the min-output wire stated explicitly),
    an unconditional exchange ("1"), and nothing at all ("0", the
    absence of a gate). Only [Compare] elements inspect values; an
    [Exchange] merely rewires, so it never counts as a comparison in
    the collision analysis (Definition 3.6). *)

type t =
  | Compare of { lo : int; hi : int }
      (** After the gate, wire [lo] holds the smaller of the two input
          values and wire [hi] the larger. [lo] and [hi] are arbitrary
          distinct wire indices; a "-" element of the register model is
          a [Compare] with [lo > hi]. *)
  | Exchange of { a : int; b : int }
      (** Unconditionally swaps the values on wires [a] and [b]. *)

val compare_up : int -> int -> t
(** [compare_up i j] is a comparator placing the minimum on [min i j]
    and the maximum on [max i j] — the usual "sort ascending by wire
    index" orientation. @raise Invalid_argument if [i = j]. *)

val compare_down : int -> int -> t
(** [compare_down i j] places the maximum on [min i j]. *)

val exchange : int -> int -> t
(** [exchange i j] is the unconditional swap.
    @raise Invalid_argument if [i = j]. *)

val wires : t -> int * int
(** [wires g] is the (unordered) pair of wire indices [g] touches. *)

val is_comparator : t -> bool

val map_wires : (int -> int) -> t -> t
(** [map_wires f g] renames the wires of [g] through [f].
    @raise Invalid_argument if [f] sends the two wires to one index. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
