type t =
  | Compare of { lo : int; hi : int }
  | Exchange of { a : int; b : int }

let check_distinct fn i j =
  if i = j then invalid_arg (Printf.sprintf "Gate.%s: wires must be distinct (%d)" fn i)

let compare_up i j =
  check_distinct "compare_up" i j;
  Compare { lo = min i j; hi = max i j }

let compare_down i j =
  check_distinct "compare_down" i j;
  Compare { lo = max i j; hi = min i j }

let exchange i j =
  check_distinct "exchange" i j;
  Exchange { a = min i j; b = max i j }

let wires = function
  | Compare { lo; hi } -> (lo, hi)
  | Exchange { a; b } -> (a, b)

let is_comparator = function Compare _ -> true | Exchange _ -> false

let map_wires f = function
  | Compare { lo; hi } ->
      let lo' = f lo and hi' = f hi in
      check_distinct "map_wires" lo' hi';
      Compare { lo = lo'; hi = hi' }
  | Exchange { a; b } ->
      let a' = f a and b' = f b in
      check_distinct "map_wires" a' b';
      Exchange { a = a'; b = b' }

let equal g1 g2 =
  match (g1, g2) with
  | Compare c1, Compare c2 -> c1.lo = c2.lo && c1.hi = c2.hi
  | Exchange e1, Exchange e2 ->
      (e1.a = e2.a && e1.b = e2.b) || (e1.a = e2.b && e1.b = e2.a)
  | Compare _, Exchange _ | Exchange _, Compare _ -> false

let pp fmt = function
  | Compare { lo; hi } -> Format.fprintf fmt "cmp(%d<%d)" lo hi
  | Exchange { a; b } -> Format.fprintf fmt "xchg(%d,%d)" a b
