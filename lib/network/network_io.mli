(** Plain-text (de)serialisation of networks.

    A simple line-oriented format, stable across versions, so networks
    can be stored, diffed, shipped to other tools and read back:

    {v
    snlb-network 1
    wires 4
    level
    cmp 0 1
    cmp 2 3
    level
    perm 1 0 3 2
    xchg 1 2
    v}

    [cmp a b] places the minimum on wire [a] (so ["cmp 3 1"] is a
    descending comparator); [perm] gives the level's pre-permutation as
    the image list; blank lines and [#]-comments are ignored. Parsing
    validates as it goes — [cmp]/[xchg]/[perm] wires out of
    [0, wires), a gate reusing a wire already touched in its level,
    and [perm] lines with missing or duplicate images are all rejected
    with the offending line number. *)

val to_string : Network.t -> string

val of_string : string -> (Network.t, string) result
(** Round-trip guarantee: [of_string (to_string nw)] succeeds and the
    result evaluates identically to [nw] (tested). *)

val save : string -> Network.t -> (unit, string) result
(** [save path nw] writes the textual form to [path] atomically
    ({!Atomic_file.write}: temp file, fsync, rename), so a crash
    mid-save can never leave a torn file where a good one was. *)

val load : string -> (Network.t, string) result
