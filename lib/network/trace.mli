(** Collision traces: which pairs of values a network compares.

    The lower-bound argument revolves around Definition 3.6: two input
    wires collide under an input iff their values meet at a comparator.
    This module runs a network on a concrete input and records exactly
    that relation on values, so that adversary certificates ("values
    [m] and [m+1] are never compared") can be validated independently
    of the symbolic machinery. *)

type t
(** The comparison relation observed during one evaluation. *)

val run : Network.t -> int array -> int array * t
(** [run nw input] evaluates [nw] on [input], returning the output and
    the full trace of value comparisons. *)

val compared : t -> int -> int -> bool
(** [compared tr u v] is [true] iff values [u] and [v] met at some
    comparator during the traced run. Symmetric. *)

val count : t -> int
(** Total number of comparator firings recorded (with multiplicity
    collapsed per distinct value pair). *)

val pairs : t -> (int * int) list
(** All distinct compared value pairs, each as [(min, max)], sorted. *)

val wires_collide : Network.t -> int array -> int -> int -> bool
(** [wires_collide nw input w0 w1] is [true] iff input wires [w0] and
    [w1] collide in [nw] under [input] — i.e. the values placed on
    those wires are compared somewhere (Definition 3.6). *)
