type level = { pre : Perm.t option; gates : Gate.t list }

type t = { wires : int; levels : level list }

let validate_level ~wires lvl =
  (match lvl.pre with
  | None -> ()
  | Some p ->
      if Perm.n p <> wires then
        invalid_arg
          (Printf.sprintf "Network.create: permutation size %d <> wires %d"
             (Perm.n p) wires));
  let used = Array.make wires false in
  let touch w =
    if w < 0 || w >= wires then
      invalid_arg (Printf.sprintf "Network.create: wire %d out of [0,%d)" w wires)
    else if used.(w) then
      invalid_arg (Printf.sprintf "Network.create: wire %d used twice in a level" w)
    else used.(w) <- true
  in
  let touch_gate g =
    let a, b = Gate.wires g in
    touch a;
    touch b
  in
  List.iter touch_gate lvl.gates

let create ~wires levels =
  if wires < 1 then invalid_arg "Network.create: wires must be >= 1";
  List.iter (validate_level ~wires) levels;
  { wires; levels }

let of_gate_levels ~wires gss =
  create ~wires (List.map (fun gates -> { pre = None; gates }) gss)

let wires nw = nw.wires
let levels nw = nw.levels

let level_has_comparator lvl = List.exists Gate.is_comparator lvl.gates

let depth nw =
  List.fold_left
    (fun acc lvl -> if level_has_comparator lvl then acc + 1 else acc)
    0 nw.levels

let size nw =
  List.fold_left
    (fun acc lvl ->
      acc + List.length (List.filter Gate.is_comparator lvl.gates))
    0 nw.levels

let empty n = create ~wires:n []

let permutation_level p =
  create ~wires:(Perm.n p) [ { pre = Some p; gates = [] } ]

let serial a b =
  if a.wires <> b.wires then invalid_arg "Network.serial: width mismatch";
  { wires = a.wires; levels = a.levels @ b.levels }

let serial_perm a p b =
  if a.wires <> b.wires || Perm.n p <> a.wires then
    invalid_arg "Network.serial_perm: width mismatch";
  { wires = a.wires;
    levels = a.levels @ ({ pre = Some p; gates = [] } :: b.levels) }

let parallel a b =
  let uses_pre nw = List.exists (fun l -> l.pre <> None) nw.levels in
  if uses_pre a || uses_pre b then
    invalid_arg "Network.parallel: flatten components first (pre permutations present)";
  let off = a.wires in
  let shift g = Gate.map_wires (fun w -> w + off) g in
  let rec zip la lb =
    match (la, lb) with
    | [], [] -> []
    | la, [] -> la
    | [], lb -> List.map (fun l -> { l with gates = List.map shift l.gates }) lb
    | ha :: ta, hb :: tb ->
        { pre = None; gates = ha.gates @ List.map shift hb.gates } :: zip ta tb
  in
  { wires = a.wires + b.wires; levels = zip a.levels b.levels }

let apply_gate_generic ~cmp ~on_compare values g =
  match g with
  | Gate.Compare { lo; hi } ->
      let u = values.(lo) and v = values.(hi) in
      on_compare u v;
      if cmp u v > 0 then begin
        values.(lo) <- v;
        values.(hi) <- u
      end
  | Gate.Exchange { a; b } ->
      let u = values.(a) in
      values.(a) <- values.(b);
      values.(b) <- u

let eval_generic ~cmp ~on_compare nw input =
  if Array.length input <> nw.wires then
    invalid_arg
      (Printf.sprintf "Network.eval: input length %d <> wires %d"
         (Array.length input) nw.wires);
  let values = ref (Array.copy input) in
  let step lvl =
    (match lvl.pre with
    | None -> ()
    | Some p -> values := Perm.permute_array p !values);
    List.iter (apply_gate_generic ~cmp ~on_compare !values) lvl.gates
  in
  List.iter step nw.levels;
  !values

let nop2 _ _ = ()

let eval nw input = eval_generic ~cmp:Int.compare ~on_compare:nop2 nw input

let eval_gen ~cmp nw input = eval_generic ~cmp ~on_compare:nop2 nw input

let eval_trace ~on_compare nw input =
  eval_generic ~cmp:Int.compare ~on_compare nw input

let flatten nw =
  (* [slot] tracks, for each register r, the flattened slot x currently
     holding the value that the original network keeps in register r;
     gates are rewired through it.  Values never move in the flattened
     coordinates except when a gate swaps them, which is the same swap
     in both coordinate systems. *)
  let n = nw.wires in
  let slot = Array.init n (fun r -> r) in
  let flat_levels =
    List.map
      (fun lvl ->
        (match lvl.pre with
        | None -> ()
        | Some p ->
            (* Content of register r moves to register (p r): register
               (p r) now maps to the slot that register r mapped to. *)
            let old = Array.copy slot in
            for r = 0 to n - 1 do
              slot.(Perm.apply p r) <- old.(r)
            done);
        let gates = List.map (Gate.map_wires (fun r -> slot.(r))) lvl.gates in
        { pre = None; gates })
      nw.levels
  in
  (* Final routing: the value for output register r sits in slot.(r). *)
  let routing =
    let p = Perm.inverse (Perm.of_array slot) in
    if Perm.is_identity p then [] else [ { pre = Some p; gates = [] } ]
  in
  { wires = n; levels = flat_levels @ routing }

let gates_of_level lvl = lvl.gates

let output_wiring_only nw =
  if List.exists (fun l -> l.gates <> []) nw.levels then None
  else
    Some
      (List.fold_left
         (fun acc l ->
           match l.pre with None -> acc | Some p -> Perm.compose p acc)
         (Perm.identity nw.wires) nw.levels)

let comparator_pairs nw =
  List.concat_map
    (fun lvl ->
      List.filter_map
        (function
          | Gate.Compare { lo; hi } -> Some (lo, hi)
          | Gate.Exchange _ -> None)
        lvl.gates)
    nw.levels

let to_dot nw =
  let nw = flatten nw in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph network {\n  rankdir=LR;\n  node [shape=point];\n";
  let n = nw.wires in
  let col = ref 0 in
  let node c w = Printf.sprintf "n%d_%d" c w in
  for w = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "  %s [xlabel=\"w%d\"];\n" (node 0 w) w)
  done;
  List.iter
    (fun lvl ->
      let c = !col in
      incr col;
      for w = 0 to n - 1 do
        Buffer.add_string buf
          (Printf.sprintf "  %s -> %s [arrowhead=none,color=gray];\n" (node c w)
             (node (c + 1) w))
      done;
      List.iter
        (fun g ->
          match g with
          | Gate.Compare { lo; hi } ->
              Buffer.add_string buf
                (Printf.sprintf "  %s -> %s [color=black,label=\"min\"];\n"
                   (node (c + 1) hi) (node (c + 1) lo))
          | Gate.Exchange { a; b } ->
              Buffer.add_string buf
                (Printf.sprintf "  %s -> %s [color=blue,dir=both];\n"
                   (node (c + 1) a) (node (c + 1) b)))
        lvl.gates)
    nw.levels;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp_stats fmt nw =
  let exchanges =
    List.fold_left
      (fun acc lvl ->
        acc + List.length (List.filter (fun g -> not (Gate.is_comparator g)) lvl.gates))
      0 nw.levels
  in
  Format.fprintf fmt "wires=%d levels=%d depth=%d comparators=%d exchanges=%d"
    nw.wires (List.length nw.levels) (depth nw) (size nw) exchanges
