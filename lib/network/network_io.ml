let to_string nw =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "snlb-network 1\n";
  Buffer.add_string buf (Printf.sprintf "wires %d\n" (Network.wires nw));
  List.iter
    (fun lvl ->
      Buffer.add_string buf "level\n";
      (match lvl.Network.pre with
      | None -> ()
      | Some p ->
          Buffer.add_string buf "perm";
          Array.iter
            (fun v -> Buffer.add_string buf (Printf.sprintf " %d" v))
            (Perm.to_array p);
          Buffer.add_char buf '\n');
      List.iter
        (fun g ->
          match g with
          | Gate.Compare { lo; hi } ->
              Buffer.add_string buf (Printf.sprintf "cmp %d %d\n" lo hi)
          | Gate.Exchange { a; b } ->
              Buffer.add_string buf (Printf.sprintf "xchg %d %d\n" a b))
        lvl.Network.gates)
    (Network.levels nw);
  Buffer.contents buf

type parse_level = { mutable pre : Perm.t option; mutable gates : Gate.t list }

let of_string text =
  let lines = String.split_on_char '\n' text in
  let wires = ref None in
  let levels : parse_level list ref = ref [] in
  let current : parse_level option ref = ref None in
  let header_seen = ref false in
  let exception Fail of string in
  let fail line msg =
    raise (Fail (Printf.sprintf "line %d: %s" line msg))
  in
  let int_of line s =
    match int_of_string_opt s with
    | Some v -> v
    | None -> fail line (Printf.sprintf "expected integer, got %S" s)
  in
  try
    List.iteri
      (fun i raw ->
        let lineno = i + 1 in
        let line = String.trim raw in
        if line = "" || line.[0] = '#' then ()
        else
          match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
          | [ "snlb-network"; "1" ] -> header_seen := true
          | "snlb-network" :: v ->
              fail lineno ("unsupported format version: " ^ String.concat " " v)
          | [ "wires"; w ] ->
              if not !header_seen then fail lineno "missing snlb-network header";
              wires := Some (int_of lineno w)
          | [ "level" ] ->
              if !wires = None then fail lineno "level before wires";
              let lvl = { pre = None; gates = [] } in
              levels := lvl :: !levels;
              current := Some lvl
          | "perm" :: images -> (
              match !current with
              | None -> fail lineno "perm outside a level"
              | Some lvl ->
                  if lvl.pre <> None then fail lineno "duplicate perm in level";
                  if lvl.gates <> [] then fail lineno "perm must precede gates";
                  let arr = Array.of_list (List.map (int_of lineno) images) in
                  let w = Option.get !wires in
                  if Array.length arr <> w then
                    fail lineno
                      (Printf.sprintf "perm has %d entries, expected %d (wires)"
                         (Array.length arr) w);
                  let seen = Array.make w false in
                  Array.iter
                    (fun v ->
                      if v < 0 || v >= w then
                        fail lineno
                          (Printf.sprintf "perm entry %d out of range [0, %d)" v
                             w)
                      else if seen.(v) then
                        fail lineno
                          (Printf.sprintf "duplicate perm entry %d" v)
                      else seen.(v) <- true)
                    arr;
                  (match Perm.of_array arr with
                  | p -> lvl.pre <- Some p
                  | exception Invalid_argument m -> fail lineno m))
          | [ ("cmp" | "xchg") as kw; a; b ] -> (
              match !current with
              | None -> fail lineno (kw ^ " outside a level")
              | Some lvl ->
                  let a = int_of lineno a and b = int_of lineno b in
                  let w = Option.get !wires in
                  List.iter
                    (fun v ->
                      if v < 0 || v >= w then
                        fail lineno
                          (Printf.sprintf "%s wire %d out of range [0, %d)" kw v
                             w))
                    [ a; b ];
                  if a = b then fail lineno "gate wires must be distinct";
                  List.iter
                    (fun g ->
                      let x, y = Gate.wires g in
                      if x = a || y = a || x = b || y = b then
                        fail lineno
                          (Printf.sprintf
                             "%s (%d, %d) reuses a wire already touched in \
                              this level"
                             kw a b))
                    lvl.gates;
                  let gate =
                    if kw = "cmp" then Gate.Compare { lo = a; hi = b }
                    else Gate.Exchange { a; b }
                  in
                  lvl.gates <- gate :: lvl.gates)
          | tokens ->
              fail lineno ("unrecognised directive: " ^ String.concat " " tokens))
      lines;
    match !wires with
    | None -> Error "missing 'wires' declaration"
    | Some w -> (
        let lvls =
          List.rev_map
            (fun l -> { Network.pre = l.pre; gates = List.rev l.gates })
            !levels
        in
        match Network.create ~wires:w lvls with
        | nw -> Ok nw
        | exception Invalid_argument m -> Error m)
  with Fail m -> Error m

let save path nw = Atomic_file.write ~backup:false ~path (to_string nw)

let load path =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> of_string (In_channel.input_all ic))
