let depth ~n = (2 * Bitops.log2_exact n) - 1

(* The looping algorithm.  [perm] is the residual permutation in local
   coordinates (value on local input i must exit on local output
   perm.(i)); [wires] maps local indices to global wire ids.  Upper
   subnetwork = even local wires, lower = odd, so no rewiring levels
   are needed: after the input switches the color-0 value of input
   pair i sits on local wire 2i, which is the upper subnetwork's i-th
   wire. *)
let rec build wires perm =
  let n = Array.length perm in
  if n = 1 then []
  else if n = 2 then
    if perm.(0) = 0 then [ [] ]
    else [ [ Gate.exchange wires.(0) wires.(1) ] ]
  else begin
    let inv = Array.make n 0 in
    Array.iteri (fun i v -> inv.(v) <- i) perm;
    (* 2-color input positions: paired inputs (2i, 2i+1) get different
       colors, and the sources of paired outputs (2j, 2j+1) get
       different colors.  Following partner links traces cycles. *)
    let color = Array.make n (-1) in
    for start = 0 to n - 1 do
      if color.(start) < 0 then begin
        let p = ref start in
        let continue = ref true in
        while !continue do
          color.(!p) <- 0;
          color.(!p lxor 1) <- 1;
          (* The partner's destination's own output-partner must come
             from a color-0 source: that source continues the chain. *)
          let o = perm.(!p lxor 1) in
          let q = inv.(o lxor 1) in
          if color.(q) < 0 then p := q
          else begin
            assert (color.(q) = 0);
            continue := false
          end
        done
      end
    done;
    (* Input switches: crossed iff the even input is colored 1. *)
    let in_gates = ref [] in
    for i = (n / 2) - 1 downto 0 do
      if color.(2 * i) = 1 then
        in_gates := Gate.exchange wires.(2 * i) wires.((2 * i) + 1) :: !in_gates
    done;
    (* Sub-permutations: the color-0 value of input pair i enters the
       upper subnetwork at position i and must exit it at position
       (destination / 2); dually for color 1 / lower. *)
    let perm_u = Array.make (n / 2) 0 and perm_l = Array.make (n / 2) 0 in
    for i = 0 to (n / 2) - 1 do
      let p0 = if color.(2 * i) = 0 then 2 * i else (2 * i) + 1 in
      perm_u.(i) <- perm.(p0) / 2;
      perm_l.(i) <- perm.(p0 lxor 1) / 2
    done;
    let wires_u = Array.init (n / 2) (fun i -> wires.(2 * i)) in
    let wires_l = Array.init (n / 2) (fun i -> wires.((2 * i) + 1)) in
    let sub_u = build wires_u perm_u in
    let sub_l = build wires_l perm_l in
    let middle = List.map2 (fun a b -> a @ b) sub_u sub_l in
    (* Output switches: output pair j is crossed iff the value destined
       for output 2j arrives from the lower subnetwork. *)
    let out_gates = ref [] in
    for j = (n / 2) - 1 downto 0 do
      let src = inv.(2 * j) in
      if color.(src) = 1 then
        out_gates := Gate.exchange wires.(2 * j) wires.((2 * j) + 1) :: !out_gates
    done;
    (!in_gates :: middle) @ [ !out_gates ]
  end

let route p =
  let n = Perm.n p in
  if not (Bitops.is_power_of_two n) || n < 2 then
    invalid_arg "Benes.route: size must be a power of two >= 2";
  let levels = build (Array.init n (fun i -> i)) (Perm.to_array p) in
  Network.of_gate_levels ~wires:n levels

let switch_count nw =
  List.fold_left
    (fun acc lvl ->
      acc
      + List.length
          (List.filter (fun g -> not (Gate.is_comparator g)) lvl.Network.gates))
    0 (Network.levels nw)
