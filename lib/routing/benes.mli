(** Beneš permutation routing via the looping algorithm.

    The paper notes (after Definition 3.4) that the arbitrary fixed
    permutations between consecutive reverse delta networks are
    harmless because any permutation on [n = 2^d] inputs can be routed
    by a shuffle-exchange network in [3d - 4] levels [10, 9, 14] —
    i.e., permutations cost only a constant-factor depth increase on
    hypercubic machines. This module exhibits that fact constructively
    with the classic Beneš construction: any permutation is realised
    by [2d - 1] levels of exchange elements (a butterfly followed by
    an inverse butterfly, middle level shared), set up by the looping
    algorithm. The produced network contains only "1"/"0" elements —
    no comparators — so it composes with comparator networks without
    affecting their depth (Definition 3.6 counts only comparisons). *)

val depth : n:int -> int
(** [2 lg n - 1] exchange levels. *)

val route : Perm.t -> Network.t
(** [route p] is an exchange-only network moving the value on input
    wire [i] to output wire [p i], for [n = 2^d] wires.
    @raise Invalid_argument if the size is not a power of two. *)

val switch_count : Network.t -> int
(** Number of crossed switches (exchange gates) in a routed network;
    at most [n lg n - n/2]. *)
