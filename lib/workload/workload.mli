(** Seeded input generators for tests, benches and experiments.

    Everything is a deterministic function of the supplied generator,
    so experiment tables are reproducible run to run. *)

val random_permutation : Xoshiro.t -> n:int -> int array
(** Uniform permutation of [0, n). *)

val random_zero_one : Xoshiro.t -> n:int -> int array
(** Uniform vector over [{0,1}^n]. *)

val zero_one_with_ones : n:int -> ones:int -> int array
(** The 0-1 vector whose [ones] ones occupy the lowest-index positions
    — maximally unsorted for an ascending sorter. *)

val sorted : n:int -> int array
(** The identity input [0, 1, ..., n-1]. *)

val reversed : n:int -> int array
(** The descending input. *)

val nearly_sorted : Xoshiro.t -> n:int -> swaps:int -> int array
(** Identity perturbed by [swaps] random transpositions. *)

val k_rotated : n:int -> k:int -> int array
(** The identity rotated by [k] positions. *)

val permutation_batch : Xoshiro.t -> n:int -> count:int -> int array array
(** [count] independent uniform permutations, drawn in the same
    generator order as [count] calls to {!random_permutation} — the
    input shape consumed by {!Compiled.eval_many} sweeps. *)

val zero_one_batch : Xoshiro.t -> n:int -> count:int -> int array array
(** [count] independent uniform 0-1 vectors (see
    {!permutation_batch}). *)

val bitonic_input : Xoshiro.t -> n:int -> int array
(** A random bitonic sequence (ascending run followed by a descending
    run), as consumed by one bitonic-merge butterfly. *)
