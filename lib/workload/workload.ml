let random_permutation rng ~n = Perm.to_array (Perm.random rng n)

let random_zero_one rng ~n = Array.init n (fun _ -> if Xoshiro.bool rng then 1 else 0)

let zero_one_with_ones ~n ~ones =
  if ones < 0 || ones > n then invalid_arg "Workload.zero_one_with_ones";
  Array.init n (fun i -> if i < ones then 1 else 0)

let sorted ~n = Array.init n (fun i -> i)

let reversed ~n = Array.init n (fun i -> n - 1 - i)

let nearly_sorted rng ~n ~swaps =
  let a = sorted ~n in
  for _ = 1 to swaps do
    let i = Xoshiro.int rng ~bound:n and j = Xoshiro.int rng ~bound:n in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a

let k_rotated ~n ~k =
  let k = ((k mod n) + n) mod n in
  Array.init n (fun i -> (i + k) mod n)

(* Batch variants consume the generator in the same order as [count]
   sequential calls, so swapping a per-sample loop for a batch +
   [Compiled.eval_many] sweep reproduces identical tables. *)
let batch ~count gen =
  if count < 0 then invalid_arg "Workload.batch: negative count";
  let out = Array.make count [||] in
  for i = 0 to count - 1 do
    out.(i) <- gen ()
  done;
  out

let permutation_batch rng ~n ~count =
  batch ~count (fun () -> random_permutation rng ~n)

let zero_one_batch rng ~n ~count =
  batch ~count (fun () -> random_zero_one rng ~n)

let bitonic_input rng ~n =
  let peak = Xoshiro.int rng ~bound:(n + 1) in
  let values = random_permutation rng ~n in
  let ascending = Array.sub values 0 peak in
  Array.sort compare ascending;
  let descending = Array.sub values peak (n - peak) in
  Array.sort (fun a b -> compare b a) descending;
  Array.append ascending descending
