type config = {
  workers : int;
  dir : string;
  max_attempts : int;
  backoff_base : float;
  backoff_cap : float;
  heartbeat_interval : float;
  heartbeat_timeout : float;
  grace : float;
  poll_interval : float;
}

let default_config ~dir =
  {
    workers = 4;
    dir;
    max_attempts = 3;
    backoff_base = 0.05;
    backoff_cap = 2.0;
    heartbeat_interval = 0.5;
    heartbeat_timeout = 10.0;
    grace = 0.5;
    poll_interval = 0.002;
  }

type outcome =
  | Completed of (string * string) list
  | Quarantined of string list
  | Cancelled

let c_spawned = Metrics.counter "shard.spawned"
let c_completed = Metrics.counter "shard.completed"
let c_retries = Metrics.counter "shard.retries"
let c_crashed = Metrics.counter "shard.crashed"
let c_stalled = Metrics.counter "shard.stalled"
let c_quarantined = Metrics.counter "shard.quarantined"
let c_pool_shrunk = Metrics.counter "shard.pool_shrunk"

let id_ok id =
  String.length id > 0
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '.' || c = '_' || c = '-')
       id

let unit_path dir id = Filename.concat dir ("unit-" ^ id ^ ".ck")
let result_path dir id = Filename.concat dir ("result-" ^ id ^ ".ck")
let hb_path dir id = Filename.concat dir ("hb-" ^ id)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let touch path =
  try
    let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    Unix.close fd
  with Unix.Unix_error _ -> ()

(* Flip one payload byte of a just-published result envelope in place,
   so the supervisor's CRC re-derivation must reject it (the
   "corrupt-result" sabotage — a stand-in for a torn sector or bit
   rot between publish and read). *)
let corrupt_file path =
  try
    let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let len = (Unix.fstat fd).Unix.st_size in
        if len > 0 then begin
          let pos = len - 1 in
          let buf = Bytes.create 1 in
          ignore (Unix.lseek fd pos Unix.SEEK_SET);
          if Unix.read fd buf 0 1 = 1 then begin
            Bytes.set buf 0 (Char.chr (Char.code (Bytes.get buf 0) lxor 0xff));
            ignore (Unix.lseek fd pos Unix.SEEK_SET);
            ignore (Unix.write fd buf 0 1)
          end
        end)
  with Unix.Unix_error _ -> ()

type sabotage = Clean | Kill | Stall | Corrupt

(* Runs in the forked child; never returns. Exit codes: 0 success,
   66 bad unit envelope, 70 worker exception, 97 injected kill. *)
let child config ~kind ~worker ~id ~sabotage =
  Sys.set_signal Sys.sigint Sys.Signal_default;
  Sys.set_signal Sys.sigterm Sys.Signal_default;
  match sabotage with
  | Kill -> Unix._exit 97
  | Stall ->
      (* Hang without ever heartbeating: the supervisor's staleness
         timeout must SIGKILL us. *)
      Unix.sleepf 3600.;
      Unix._exit 98
  | Clean | Corrupt -> (
      let hb = hb_path config.dir id in
      touch hb;
      Sys.set_signal Sys.sigalrm (Sys.Signal_handle (fun _ -> touch hb));
      ignore
        (Unix.setitimer Unix.ITIMER_REAL
           {
             Unix.it_interval = config.heartbeat_interval;
             it_value = config.heartbeat_interval;
           });
      match Checkpoint.read ~path:(unit_path config.dir id) with
      | Error _ -> Unix._exit 66
      | Ok u when u.Checkpoint.kind <> kind ^ "-unit" -> Unix._exit 66
      | Ok u -> (
          match worker ~id ~payload:u.Checkpoint.payload with
          | result -> (
              let rp = result_path config.dir id in
              match
                Checkpoint.write ~path:rp
                  {
                    Checkpoint.kind = kind ^ "-result";
                    meta = [ ("unit", id) ];
                    payload = result;
                  }
              with
              | Ok () ->
                  if sabotage = Corrupt then corrupt_file rp;
                  Unix._exit 0
              | Error _ -> Unix._exit 70)
          | exception _ -> Unix._exit 70))

type unit_state =
  | Ready of float  (* not before this wall-clock time *)
  | Running of running
  | Done of string
  | Poisoned

and running = { pid : int; started : float; sabotage : sabotage }

let emit sink ~id ~attempt ~status ~dur =
  Sink.emit sink ~ev:"shard" ~name:"shard.unit"
    [
      ("unit", Sink.Str id);
      ("attempt", Sink.Int attempt);
      ("status", Sink.Str status);
      ("dur_ms", Sink.Float (dur *. 1e3));
    ]

let run ?(sink = Sink.null) ?cancel config ~kind ~units ~worker =
  if config.workers < 1 then invalid_arg "Shard.run: workers < 1";
  if config.max_attempts < 1 then invalid_arg "Shard.run: max_attempts < 1";
  let ids = List.map fst units in
  List.iter
    (fun id ->
      if not (id_ok id) then
        invalid_arg (Printf.sprintf "Shard.run: bad unit id %S" id))
    ids;
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun id ->
      if Hashtbl.mem tbl id then
        invalid_arg (Printf.sprintf "Shard.run: duplicate unit id %S" id);
      Hashtbl.add tbl id ())
    ids;
  mkdir_p config.dir;
  let units = Array.of_list units in
  let n = Array.length units in
  (* Every unit crosses process boundaries as a CRC-checked envelope —
     both hops, so a torn unit file is caught by the worker and a torn
     result by the supervisor. *)
  Array.iter
    (fun (id, payload) ->
      (* A stale result from a previous run in the same dir must not
         be mistaken for this run's output. *)
      (try Sys.remove (result_path config.dir id) with Sys_error _ -> ());
      (try Sys.remove (Atomic_file.backup_path (result_path config.dir id))
       with Sys_error _ -> ());
      match
        Checkpoint.write
          ~path:(unit_path config.dir id)
          { Checkpoint.kind = kind ^ "-unit"; meta = [ ("unit", id) ]; payload }
      with
      | Ok () -> ()
      | Error m -> failwith (Printf.sprintf "Shard.run: cannot write unit %s: %s" id m))
    units;
  let state = Array.make n (Ready 0.0) in
  let attempts = Array.make n 0 in
  let pool = ref (min config.workers (max 1 n)) in
  let live = ref 0 in
  let consecutive_failures = ref 0 in
  let quarantined = ref [] in
  let fail i ~status ~dur =
    let attempt = attempts.(i) in
    let id = fst units.(i) in
    emit sink ~id ~attempt ~status ~dur;
    incr consecutive_failures;
    if !consecutive_failures >= 2 * !pool && !pool > 1 then begin
      decr pool;
      Metrics.incr c_pool_shrunk;
      consecutive_failures := 0
    end;
    if attempt >= config.max_attempts then begin
      Metrics.incr c_quarantined;
      quarantined := id :: !quarantined;
      state.(i) <- Poisoned
    end
    else begin
      Metrics.incr c_retries;
      let delay =
        Float.min config.backoff_cap
          (config.backoff_base *. (2. ** float_of_int (attempt - 1)))
      in
      state.(i) <- Ready (Unix.gettimeofday () +. delay)
    end
  in
  let read_result i =
    let id = fst units.(i) in
    match Checkpoint.read ~path:(result_path config.dir id) with
    | Ok r
      when r.Checkpoint.kind = kind ^ "-result"
           && List.assoc_opt "unit" r.Checkpoint.meta = Some id ->
        Some r.Checkpoint.payload
    | Ok _ | Error _ -> None
  in
  let reap_exit i r code ~dur =
    match code with
    | Unix.WEXITED 0 -> (
        match read_result i with
        | Some payload ->
            Metrics.incr c_completed;
            consecutive_failures := 0;
            emit sink ~id:(fst units.(i)) ~attempt:attempts.(i) ~status:"done"
              ~dur;
            state.(i) <- Done payload
        | None ->
            (* exit 0 but no valid result: torn or sabotaged file *)
            Metrics.incr c_crashed;
            fail i ~status:"corrupt-result" ~dur)
    | Unix.WEXITED _ | Unix.WSTOPPED _ ->
        Metrics.incr c_crashed;
        fail i ~status:"crashed" ~dur
    | Unix.WSIGNALED _ ->
        Metrics.incr c_crashed;
        fail i ~status:(if r.sabotage = Stall then "stalled" else "killed") ~dur
  in
  let spawn i now =
    let id = fst units.(i) in
    attempts.(i) <- attempts.(i) + 1;
    (* Sabotage is decided in the supervisor, from its own Fault
       stream, and only on a unit's first attempt — so prob 1.0 kills
       every unit exactly once and the run must still converge. *)
    let sabotage =
      if attempts.(i) > 1 then Clean
      else if Fault.fire "kill-worker" then Kill
      else if Fault.fire "stall-worker" then Stall
      else if Fault.fire "corrupt-result" then Corrupt
      else Clean
    in
    touch (hb_path config.dir id);
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 -> child config ~kind ~worker ~id ~sabotage
    | pid ->
        Metrics.incr c_spawned;
        incr live;
        state.(i) <- Running { pid; started = now; sabotage }
  in
  let kill_running signal =
    Array.iter
      (function
        | Running r -> ( try Unix.kill r.pid signal with Unix.Unix_error _ -> ())
        | _ -> ())
      state
  in
  let reap_blocking () =
    Array.iteri
      (fun i s ->
        match s with
        | Running r ->
            (try ignore (Unix.waitpid [] r.pid) with Unix.Unix_error _ -> ());
            decr live;
            state.(i) <- Poisoned
        | _ -> ())
      state
  in
  let drain () =
    kill_running Sys.sigterm;
    let deadline = Unix.gettimeofday () +. config.grace in
    let rec wait_grace () =
      let still =
        Array.exists (function Running _ -> true | _ -> false) state
      in
      if still && Unix.gettimeofday () < deadline then begin
        Array.iteri
          (fun i s ->
            match s with
            | Running r -> (
                match Unix.waitpid [ Unix.WNOHANG ] r.pid with
                | 0, _ -> ()
                | _ -> decr live; state.(i) <- Poisoned
                | exception Unix.Unix_error _ -> decr live; state.(i) <- Poisoned)
            | _ -> ())
          state;
        Unix.sleepf config.poll_interval;
        wait_grace ()
      end
    in
    wait_grace ();
    kill_running Sys.sigkill;
    reap_blocking ()
  in
  let cancelled () =
    match cancel with Some c -> Cancel.cancelled c | None -> false
  in
  let finished () =
    let all_done = ref true in
    Array.iter
      (function Done _ | Poisoned -> () | _ -> all_done := false)
      state;
    !all_done
  in
  let rec loop () =
    if cancelled () then begin
      drain ();
      Cancelled
    end
    else begin
      let now = Unix.gettimeofday () in
      (* reap exits *)
      Array.iteri
        (fun i s ->
          match s with
          | Running r -> (
              match Unix.waitpid [ Unix.WNOHANG ] r.pid with
              | 0, _ -> ()
              | _, code ->
                  decr live;
                  reap_exit i r code ~dur:(now -. r.started)
              | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
                  decr live;
                  Metrics.incr c_crashed;
                  fail i ~status:"lost" ~dur:(now -. r.started))
          | _ -> ())
        state;
      (* heartbeat staleness *)
      Array.iteri
        (fun i s ->
          match s with
          | Running r ->
              let hb = hb_path config.dir (fst units.(i)) in
              let last =
                match Unix.stat hb with
                | st -> Float.max r.started st.Unix.st_mtime
                | exception Unix.Unix_error _ -> r.started
              in
              if now -. last > config.heartbeat_timeout then begin
                (try Unix.kill r.pid Sys.sigkill with Unix.Unix_error _ -> ());
                (try ignore (Unix.waitpid [] r.pid)
                 with Unix.Unix_error _ -> ());
                decr live;
                Metrics.incr c_stalled;
                fail i ~status:"stalled" ~dur:(now -. r.started)
              end
          | _ -> ())
        state;
      (* fill free slots with ready units, in submission order *)
      let i = ref 0 in
      while !live < !pool && !i < n do
        (match state.(!i) with
        | Ready at when at <= now -> spawn !i now
        | _ -> ());
        incr i
      done;
      if finished () then
        if !quarantined <> [] then Quarantined (List.rev !quarantined)
        else
          Completed
            (Array.to_list
               (Array.mapi
                  (fun i (id, _) ->
                    match state.(i) with
                    | Done payload -> (id, payload)
                    | _ -> assert false)
                  units))
      else begin
        Unix.sleepf config.poll_interval;
        loop ()
      end
    end
  in
  loop ()
