(** Fault-tolerant multi-process work-unit supervisor.

    The coordinator pattern behind [--shards] search and island-model
    evolve: a parent process forks a pool of workers over a queue of
    work units, where every hop between processes is a CRC-checked
    {!Checkpoint} envelope published atomically ({!Atomic_file}).
    Delivery is at-least-once and merges are idempotent: a unit may
    run twice (crash after publish, retry after a torn result), but
    because results are complete-or-absent and keyed by unit id, the
    merge of the survivors is identical no matter how many attempts it
    took.

    On-disk layout, all inside [config.dir]:

    - [unit-<id>.ck] — the unit envelope, kind [<kind>-unit], meta
      [("unit", id)], written by the supervisor before any fork;
    - [result-<id>.ck] — the result envelope, kind [<kind>-result],
      published atomically by the worker as its last act;
    - [hb-<id>] — the heartbeat file, mtime refreshed by the worker on
      a SIGALRM interval timer while it computes.

    Failure model (every path deterministically testable via
    {!Fault}'s ["kill-worker"] / ["stall-worker"] / ["corrupt-result"]
    points, which sabotage a unit's {e first} attempt only):

    - {b crash} — nonzero exit or signal death is observed by a
      non-blocking [waitpid] reap (no zombies survive the run) and
      counts as a unit failure;
    - {b stall} — a worker whose heartbeat goes stale past
      [heartbeat_timeout] is SIGKILLed, reaped, and counts as a unit
      failure;
    - {b corruption} — a result that fails the envelope CRC / kind /
      unit-id validation counts as a unit failure (the torn file is
      discarded);
    - {b retry} — a failed unit re-queues with capped exponential
      backoff ([backoff_base] · 2{^attempt-1}, capped at
      [backoff_cap]) until [max_attempts] total attempts, after which
      it is {b quarantined} and the run reports it instead of looping
      forever on a poison unit;
    - {b degradation} — when every live worker keeps dying
      (2 · pool-size consecutive failures), the pool shrinks by one,
      down to a floor of one worker; the scheduler never deadlocks —
      each loop iteration either spawns, reaps, or sleeps one poll
      tick, and the unit set is finite;
    - {b drain} — when [cancel] trips (the CLI wires SIGINT/SIGTERM
      to it), every live worker is SIGTERMed, given [grace] seconds,
      SIGKILLed if still alive, and reaped before [`Cancelled]
      returns.

    Observability: counters ["shard.spawned"], ["shard.completed"],
    ["shard.retries"], ["shard.crashed"], ["shard.stalled"],
    ["shard.quarantined"], ["shard.pool_shrunk"]; one ["shard"] event
    per unit attempt on the sink with unit id, attempt number, status
    and duration. *)

type config = {
  workers : int;  (** initial pool size (>= 1) *)
  dir : string;  (** scratch directory for envelopes and heartbeats *)
  max_attempts : int;  (** total attempts before quarantine (>= 1) *)
  backoff_base : float;  (** first retry delay, seconds *)
  backoff_cap : float;  (** retry delay ceiling, seconds *)
  heartbeat_interval : float;  (** worker heartbeat period, seconds *)
  heartbeat_timeout : float;  (** staleness threshold, seconds *)
  grace : float;  (** SIGTERM-to-SIGKILL window on drain, seconds *)
  poll_interval : float;  (** supervisor scheduling tick, seconds *)
}

val default_config : dir:string -> config
(** 4 workers, 3 attempts, 50 ms base / 2 s cap backoff, 0.5 s
    heartbeats with a 10 s staleness timeout, 0.5 s drain grace,
    2 ms poll tick. *)

type outcome =
  | Completed of (string * string) list
      (** every unit succeeded; [(id, result payload)] in submission
          order *)
  | Quarantined of string list
      (** these unit ids exhausted [max_attempts]; remaining units
          were still driven to completion before returning *)
  | Cancelled
      (** the cancel token tripped; the pool has been drained and
          reaped *)

val run :
  ?sink:Sink.t ->
  ?cancel:Cancel.t ->
  config ->
  kind:string ->
  units:(string * string) list ->
  worker:(id:string -> payload:string -> string) ->
  outcome
(** [run config ~kind ~units ~worker] writes one [<kind>-unit]
    envelope per [(id, payload)] unit, forks up to [config.workers]
    workers, each of which runs [worker ~id ~payload] (the closure
    crosses the fork, so it captures whatever state the caller built)
    and publishes the returned string as the unit's [<kind>-result]
    envelope, and supervises to one of the three outcomes above.

    Unit ids must be non-empty, unique, and filename-safe
    ([A-Za-z0-9._-]); [Invalid_argument] otherwise. [config.dir] is
    created if missing. Envelope files are left in place on return
    (the caller owns cleanup) — re-running with the same dir simply
    overwrites them. *)
