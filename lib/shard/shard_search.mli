(** Process-sharded exact-depth search (ROADMAP item 1(c)).

    Runs {!Driver}'s layered BFS with each level's frontier expansion
    partitioned into [shards] contiguous slices, every slice expanded
    in a forked worker under the {!Shard} supervisor, and the per-level
    results merged by the coordinator with {e the same} decision
    procedure the in-process engines use — so the outcome, witness,
    and every decision statistic ([nodes] / [pruned] / [deduped] /
    [subsumed] / [redundant] / [frontier_sizes] / [completed_levels])
    are identical to [Driver.run ~domains:1] on the same system, even
    when every worker attempt is killed, stalled, or corrupted once
    ({!Fault} ["kill-worker"] / ["stall-worker"] / ["corrupt-result"]:
    the supervisor retries and the merge is idempotent).

    How identity is preserved: workers expand their slice {e without}
    global budget checks and return per-entry records (sorted-witness,
    candidate children with fingerprints, prune/redundant/live-move
    tallies); the coordinator replays the sequential semantics over
    the records in global entry order — nodes are charged per entry
    and the budget consulted before the entry's other tallies count, a
    found witness stops the scan so later entries contribute nothing,
    equality dedup and the greedy subsumption filter
    ({!Driver.subsume_filter}) run exactly as in-process. Fingerprints
    are computed worker-side (a pure function — decision-neutral) so
    that phase parallelises too.

    Known divergences from [Driver.run], by design: [budget.max_seconds]
    is only consulted at level boundaries (a wall-clock budget is
    inherently racy; node budgets merge identically), workers expand
    their whole slice even when another slice already tripped the node
    budget (the merge discards the excess, so only wasted work — never
    a different decision), and an [Interrupted] outcome reports the
    last {e completed} level (partial-level tallies of a mid-level
    cancel are not reproduced). [stats.elapsed_cpu] covers the
    coordinator only.

    Why processes rather than domains: forked workers own a private
    heap and GC and die independently — a crash, stall, or OOM in one
    slice costs one retried unit, not the run — which is what lets the
    n=9–10 regime (hour-scale frontiers) run unattended. On multi-core
    hosts the slices also parallelise without sharing a runtime; on a
    single core the supervisor adds only a few ms per level. *)

val run :
  ?sink:Sink.t ->
  ?cancel:Cancel.t ->
  ?budget:Driver.budget ->
  ?config:Shard.config ->
  shards:int ->
  dir:string ->
  max_depth:int ->
  'm Driver.system ->
  ('m Driver.outcome, string) result
(** [run ~shards ~dir ~max_depth sys] searches like
    [Driver.run ~max_depth sys] with per-level expansion fanned out
    over [shards] worker processes ([config] defaults to
    [Shard.default_config ~dir] with [workers = shards]; a [config]
    argument's [workers] field is overridden by [shards], its [dir] by
    [dir]). The move type ['m] must be marshal-safe (plain data, as
    all in-tree systems are) — slices cross the process boundary as
    {!Checkpoint} envelopes. [Error] when the supervisor quarantines a
    poison slice after [config.max_attempts] failed attempts.
    @raise Invalid_argument unless [shards >= 1]. *)
