(** Island-model evolutionary search over forked worker processes
    (ROADMAP item 4(c)).

    [islands] independent populations evolve in parallel, each from
    its own seed ([cfg.seed] for island 0, deterministic offsets
    after), synchronising every [epoch] generations at a barrier where
    (1) a perfect sorter on any island stops the run and (2) otherwise
    each island's first [migrants] slots — its elite head — replace
    the {e last} [migrants] slots of its right neighbour on the ring.
    Migration rides the same canonical population serialization
    ({!Evolve.population_payload}) the checkpoint envelope uses, so a
    work unit, a checkpoint, and a migration message are one format.

    Each epoch of each island is one {!Evolve.run_segment} in a
    {!Shard} worker. Segments are pure functions of
    [(config, start_gen, population)] — every draw keyed by the
    absolute generation — so the at-least-once supervisor can kill,
    stall, or corrupt any worker attempt ({!Fault}) and the retried
    segment recomputes byte-identical results: [`Processes] and
    [`Inline] (same schedule, no forks — the reference the tests
    compare digests against) always agree. With [islands = 1] the
    trajectory equals the single-process {!Evolve.run} on the same
    config.

    The champion is compared across islands by (fitness, size, island
    index) with {!Evolve}'s deterministic order; a find reports the
    earliest (generation, island) pair. *)

type t = {
  found : (int * int) option;
      (** earliest (absolute generation, island) evolving a perfect
          sorter, by (generation, island) order *)
  best : Genome.t;
  best_fitness : int;
  best_size : int;
  generations : int;
      (** absolute generations evaluated per island when the run
          stopped *)
  epochs_run : int;  (** completed synchronisation rounds *)
  populations : Genome.t array array;  (** final population per island *)
  interrupted : bool;  (** cancel tripped; state is the last barrier *)
}

val run :
  ?sink:Sink.t ->
  ?cancel:Cancel.t ->
  ?config:Shard.config ->
  mode:[ `Inline | `Processes ] ->
  dir:string ->
  islands:int ->
  epoch:int ->
  migrants:int ->
  Evolve.config ->
  (t, string) result
(** [run ~mode ~dir ~islands ~epoch ~migrants cfg] evolves [islands]
    populations for up to [cfg.gens] total generations each, in
    epochs of [epoch] generations. [`Processes] forks one worker per
    island per epoch under the {!Shard} supervisor ([config] defaults
    to [Shard.default_config ~dir] with [workers = islands]);
    [`Inline] runs the identical schedule in-process. [Error] when a
    poison island is quarantined.
    @raise Invalid_argument unless [islands >= 1], [epoch >= 1],
    [0 <= migrants <= cfg.pop / 2], and [cfg] validates. *)
