type t = {
  found : (int * int) option;
  best : Genome.t;
  best_fitness : int;
  best_size : int;
  generations : int;
  epochs_run : int;
  populations : Genome.t array array;
  interrupted : bool;
}

let kind = "snlb-shard-islands"

let c_epochs = Metrics.counter "shard.islands.epochs"
let c_migrations = Metrics.counter "shard.islands.migrations"

(* Island seeds must be deterministic and distinct; island 0 keeps the
   base seed so [islands = 1] reproduces the single-process run. *)
let island_seed base i = base + (i * 1_000_003)

(* What a worker sends back per epoch: the population in the canonical
   text format (the same bytes a checkpoint or migration carries) plus
   the segment verdict. Genomes travel as their stable serialization,
   never as Marshal of the abstract type. *)
type epoch_result = {
  r_population : string;
  r_found_at : int option;
  r_best_fitness : int;
  r_best_size : int;
  r_best : string;
  r_generations : int;
}

let segment_result seg =
  {
    r_population = Evolve.population_payload seg.Evolve.seg_population;
    r_found_at = seg.Evolve.seg_found_at;
    r_best_fitness = seg.Evolve.seg_best_fitness;
    r_best_size = seg.Evolve.seg_best_size;
    r_best = Genome.to_string seg.Evolve.seg_best;
    r_generations = seg.Evolve.seg_generations;
  }

let run ?(sink = Sink.null) ?cancel ?config ~mode ~dir ~islands ~epoch
    ~migrants cfg =
  if islands < 1 then invalid_arg "Shard_islands.run: islands < 1";
  if epoch < 1 then invalid_arg "Shard_islands.run: epoch < 1";
  if migrants < 0 || migrants > cfg.Evolve.pop / 2 then
    invalid_arg "Shard_islands.run: migrants must be in [0, pop/2]";
  let island_cfg i = { cfg with Evolve.seed = island_seed cfg.Evolve.seed i } in
  (* validates cfg too (per island, but identically shaped) *)
  let populations =
    Array.init islands (fun i -> Evolve.initial_population (island_cfg i))
  in
  let config =
    { (Option.value config ~default:(Shard.default_config ~dir)) with
      Shard.workers = islands;
      dir }
  in
  let cancelled () =
    match cancel with Some c -> Cancel.cancelled c | None -> false
  in
  let total = cfg.Evolve.gens in
  let best = ref None in
  (* (fitness, size, island, genome); Evolve.better on the first three *)
  let note_best (f, s, i, g) =
    match !best with
    | Some (f0, s0, i0, _) when not (Evolve.better (f, s, i) (f0, s0, i0)) -> ()
    | _ -> best := Some (f, s, i, g)
  in
  let found = ref None in
  let note_found gen i =
    match !found with
    | Some (g0, i0) when (g0, i0) <= (gen, i) -> ()
    | _ -> found := Some (gen, i)
  in
  let error = ref None in
  let interrupted = ref false in
  let start_gen = ref 0 in
  let epochs_run = ref 0 in
  let generations = ref 0 in
  while
    !start_gen < total && !found = None && !error = None && not !interrupted
  do
    if cancelled () then interrupted := true
    else begin
      let gens = min epoch (total - !start_gen) in
      let sg = !start_gen in
      let results =
        match mode with
        | `Inline ->
            Ok
              (List.init islands (fun i ->
                   segment_result
                     (Evolve.run_segment (island_cfg i) ~start_gen:sg ~gens
                        populations.(i))))
        | `Processes -> (
            let units =
              List.init islands (fun i ->
                  ( Printf.sprintf "i%d-e%d" i !epochs_run,
                    Evolve.population_payload populations.(i) ))
            in
            let worker ~id ~payload =
              let i =
                match String.index_opt id '-' with
                | Some dash ->
                    int_of_string (String.sub id 1 (dash - 1))
                | None -> invalid_arg "island unit id"
              in
              let icfg = island_cfg i in
              match Evolve.parse_population icfg payload with
              | Error e -> failwith ("island population payload: " ^ e)
              | Ok pop ->
                  Marshal.to_string
                    (segment_result (Evolve.run_segment icfg ~start_gen:sg ~gens pop))
                    []
            in
            match Shard.run ~sink ?cancel config ~kind ~units ~worker with
            | Shard.Completed rs ->
                Ok
                  (List.map
                     (fun (_, payload) ->
                       (Marshal.from_string payload 0 : epoch_result))
                     rs)
            | Shard.Quarantined ids ->
                Error
                  (Printf.sprintf
                     "island epoch %d quarantined after %d attempts: %s"
                     !epochs_run config.Shard.max_attempts
                     (String.concat ", " ids))
            | Shard.Cancelled ->
                interrupted := true;
                Error "cancelled")
      in
      match results with
      | Error e -> if not !interrupted then error := Some e
      | Ok rs ->
          let rs = Array.of_list rs in
          Array.iteri
            (fun i r ->
              let icfg = island_cfg i in
              (match Evolve.parse_population icfg r.r_population with
              | Ok pop -> populations.(i) <- pop
              | Error e ->
                  error := Some ("island result population: " ^ e));
              (match Genome.of_string r.r_best with
              | Ok g -> note_best (r.r_best_fitness, r.r_best_size, i, g)
              | Error e -> error := Some ("island result best: " ^ e));
              match r.r_found_at with
              | Some gen -> note_found gen i
              | None -> ())
            rs;
          if !error = None then begin
            Metrics.incr c_epochs;
            incr epochs_run;
            generations :=
              sg
              +
              (match !found with
              | Some (gen, _) -> gen + 1 - sg
              | None -> gens);
            Sink.emit sink ~ev:"shard" ~name:"shard.islands.epoch"
              [
                ("epoch", Sink.Int (!epochs_run - 1));
                ("start_gen", Sink.Int sg);
                ("gens", Sink.Int gens);
                ( "best_fitness",
                  Sink.Int
                    (match !best with Some (f, _, _, _) -> f | None -> 0) );
              ];
            start_gen := sg + gens;
            (* ring migration: island i's elite head seeds island
               i+1's tail; skipped on a find (the run is over) *)
            if !found = None && migrants > 0 && islands > 1 then begin
              let heads =
                Array.map (fun pop -> Array.sub pop 0 migrants) populations
              in
              Array.iteri
                (fun i pop ->
                  let src = heads.((i + islands - 1) mod islands) in
                  let popn = Array.length pop in
                  Array.blit src 0 pop (popn - migrants) migrants;
                  Metrics.add c_migrations migrants)
                populations
            end
          end
    end
  done;
  match !error with
  | Some e -> Error e
  | None ->
      let best_fitness, best_size, _, best =
        match !best with
        | Some b -> b
        | None ->
            (* cancelled before the first barrier *)
            (0, Genome.size populations.(0).(0), 0, populations.(0).(0))
      in
      Ok
        {
          found = !found;
          best;
          best_fitness;
          best_size;
          generations = !generations;
          epochs_run = !epochs_run;
          populations;
          interrupted = !interrupted;
        }
