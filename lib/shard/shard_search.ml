(* Per-entry worker record: everything the coordinator needs to replay
   the sequential per-level semantics without re-expanding. [e_cands]
   is in the same order the in-process engine would collect children;
   fingerprints ride along when the system dedups by subsumption (a
   pure function of the state, so computing them worker-side — even
   for children the merge later equality-dedups — cannot change any
   decision, it only moves work into the parallel phase). *)
type 'm entry_result = {
  e_found : 'm list option;  (* reversed move prefix of a sorted child *)
  e_cands : (State.t * 'm list * Subsume.fingerprint option) list;
  e_pruned : int;
  e_redundant : int;
  e_nlive : int;
}

type 'm unit_payload = {
  u_level : int;
  u_entries : (State.t * 'm list) list;
}

let kind = "snlb-shard-search"

let c_nodes = Metrics.counter "search.nodes"
let c_pruned = Metrics.counter "search.pruned"
let c_deduped = Metrics.counter "search.deduped"
let c_subsumed = Metrics.counter "search.subsumed"
let c_levels = Metrics.counter "search.levels"
let c_redundant = Metrics.counter "analysis.redundant_moves"
let c_shard_levels = Metrics.counter "shard.search.levels"

(* Mirrors the in-process expand for one frontier entry, minus the
   global node/stop bookkeeping (replayed by the coordinator's merge).
   On a sorted child the iteration stops exactly like the engines do
   (later moves of this entry are never applied). *)
let expand_entry sys ~lvl ~last ~remaining ~moves ~want_fp (st, pre) =
  let is_red = sys.Driver.redundant_of ~level:lvl st in
  let redundant = ref 0 in
  let live =
    List.filter
      (fun m ->
        if is_red m then begin
          incr redundant;
          false
        end
        else true)
      moves
  in
  let nlive = List.length live in
  let found = ref None in
  let cands = ref [] in
  let pruned = ref 0 in
  (try
     List.iter
       (fun m ->
         let st' = sys.Driver.apply m st in
         if State.is_sorted st' then begin
           found := Some (m :: pre);
           raise Exit
         end
         else if last then ()
         else if sys.Driver.prune ~level:lvl ~remaining st' then incr pruned
         else
           let fp =
             if want_fp then Some (Subsume.fingerprint st') else None
           in
           cands := (st', m :: pre, fp) :: !cands)
       live
   with Exit -> ());
  {
    e_found = !found;
    e_cands = List.rev !cands;
    e_pruned = !pruned;
    e_redundant = !redundant;
    e_nlive = nlive;
  }

(* Contiguous, order-preserving slices: the first [len mod k] slices
   get one extra entry. *)
let slice k entries =
  let arr = Array.of_list entries in
  let len = Array.length arr in
  let k = max 1 (min k len) in
  let base = len / k and extra = len mod k in
  List.init k (fun i ->
      let start = (i * base) + min i extra in
      let count = base + if i < extra then 1 else 0 in
      Array.to_list (Array.sub arr start count))

let run ?(sink = Sink.null) ?cancel ?(budget = Driver.default_budget) ?config
    ~shards ~dir ~max_depth sys =
  if shards < 1 then invalid_arg "Shard_search.run: shards < 1";
  let config =
    { (Option.value config ~default:(Shard.default_config ~dir)) with
      Shard.workers = shards;
      dir }
  in
  let w0 = Clock.wall () in
  let cpu0 = Clock.cpu () in
  let nodes = ref 0 in
  let pruned_total = ref 0 in
  let deduped_total = ref 0 in
  let subsumed_total = ref 0 in
  let redundant_total = ref 0 in
  let sizes = ref [] in
  let mk_stats completed =
    let fs = List.rev !sizes in
    {
      Driver.nodes = !nodes;
      pruned = !pruned_total;
      deduped = !deduped_total;
      subsumed = !subsumed_total;
      redundant = !redundant_total;
      frontier_sizes = fs;
      peak_frontier = List.fold_left max 0 fs;
      completed_levels = completed;
      elapsed = Clock.wall () -. w0;
      elapsed_cpu = Clock.cpu () -. cpu0;
    }
  in
  let record_totals s =
    Metrics.add c_nodes s.Driver.nodes;
    Metrics.add c_pruned s.Driver.pruned;
    Metrics.add c_deduped s.Driver.deduped;
    Metrics.add c_subsumed s.Driver.subsumed;
    Metrics.add c_redundant s.Driver.redundant;
    Metrics.add c_levels s.Driver.completed_levels
  in
  let cancelled () =
    match cancel with Some c -> Cancel.cancelled c | None -> false
  in
  let want_fp = sys.Driver.dedup = Driver.Subsume in
  let worker ~id:_ ~payload =
    let u : 'm unit_payload = Marshal.from_string payload 0 in
    let lvl = u.u_level in
    let moves = sys.Driver.moves_at ~level:lvl in
    let remaining = max_depth - lvl in
    let last = lvl = max_depth in
    (* Stop the slice at the first sorted child, like the in-process
       scan: the merge discards everything after a witness anyway. *)
    let out = ref [] in
    (try
       List.iter
         (fun entry ->
           let r = expand_entry sys ~lvl ~last ~remaining ~moves ~want_fp entry in
           out := r :: !out;
           if r.e_found <> None then raise Exit)
         u.u_entries
     with Exit -> ());
    Marshal.to_string (List.rev !out : 'm entry_result list) []
  in
  let seen : (int array, unit) Hashtbl.t = Hashtbl.create 4096 in
  Hashtbl.replace seen (State.key sys.Driver.initial) ();
  let kept : (State.t * Subsume.fingerprint) list ref = ref [] in
  let frontier = ref [ (sys.Driver.initial, []) ] in
  let result = ref None in
  let error = ref None in
  let level = ref 1 in
  Span.run ~sink ~name:"shard-search" @@ fun search_sp ->
  if State.is_sorted sys.Driver.initial then
    result := Some (Driver.Sorted { depth = 0; moves = []; stats = mk_stats 0 });
  while !result = None && !error = None && !level <= max_depth && !frontier <> [] do
    let lvl = !level in
    let timed_out =
      match budget.Driver.max_seconds with
      | Some s -> Clock.wall () -. w0 > s
      | None -> false
    in
    if timed_out then result := Some (Driver.Inconclusive (mk_stats (lvl - 1)))
    else if cancelled () then
      result := Some (Driver.Interrupted (mk_stats (lvl - 1)))
    else begin
      Metrics.incr c_shard_levels;
      Span.run ~sink ~name:"level" @@ fun sp ->
      let slices = slice shards !frontier in
      let units =
        List.mapi
          (fun i entries ->
            ( Printf.sprintf "l%d-s%d" lvl i,
              Marshal.to_string { u_level = lvl; u_entries = entries } [] ))
          slices
      in
      match Shard.run ~sink ?cancel config ~kind ~units ~worker with
      | Shard.Cancelled ->
          result := Some (Driver.Interrupted (mk_stats (lvl - 1)))
      | Shard.Quarantined ids ->
          error :=
            Some
              (Printf.sprintf
                 "shard search: level %d slices quarantined after %d attempts: %s"
                 lvl config.Shard.max_attempts (String.concat ", " ids))
      | Shard.Completed results ->
          (* Replay the sequential per-level semantics over the
             per-entry records in global entry order: this is where
             budget, witness-stops, dedup and subsumption make exactly
             the decisions the in-process engines make. *)
          let entry_results =
            List.concat_map
              (fun (_, payload) ->
                (Marshal.from_string payload 0 : 'm entry_result list))
              results
          in
          let stop = ref false in
          let over_budget = ref false in
          let found = ref None in
          let cands_rev = ref [] in
          List.iter
            (fun r ->
              if not !stop then begin
                let before = !nodes in
                nodes := before + r.e_nlive;
                if before + r.e_nlive > budget.Driver.max_nodes then begin
                  over_budget := true;
                  stop := true
                end
                else begin
                  pruned_total := !pruned_total + r.e_pruned;
                  redundant_total := !redundant_total + r.e_redundant;
                  match r.e_found with
                  | Some rev_moves ->
                      found := Some rev_moves;
                      stop := true
                  | None ->
                      List.iter (fun c -> cands_rev := c :: !cands_rev) r.e_cands
                end
              end)
            entry_results;
          (match (!found, !over_budget) with
          | Some rev_moves, _ ->
              result :=
                Some
                  (Driver.Sorted
                     {
                       depth = lvl;
                       moves = List.rev rev_moves;
                       stats = mk_stats (lvl - 1);
                     })
          | None, true ->
              result := Some (Driver.Inconclusive (mk_stats (lvl - 1)))
          | None, false ->
              let candidates = List.rev !cands_rev in
              let fresh =
                List.filter
                  (fun (st, _, _) ->
                    let k = State.key st in
                    if Hashtbl.mem seen k then begin
                      incr deduped_total;
                      false
                    end
                    else begin
                      Hashtbl.replace seen k ();
                      true
                    end)
                  candidates
              in
              let survivors =
                match sys.Driver.dedup with
                | Driver.Equal -> List.map (fun (st, pre, _) -> (st, pre)) fresh
                | Driver.Subsume ->
                    let with_fp =
                      List.map
                        (fun (st, pre, fp) -> (st, pre, Option.get fp))
                        fresh
                    in
                    let ordered =
                      List.stable_sort
                        (fun (_, _, fa) (_, _, fb) ->
                          compare fa.Subsume.card fb.Subsume.card)
                        with_fp
                    in
                    let kept_states, dropped =
                      Driver.subsume_filter ~domains:1 ~kept ordered
                    in
                    subsumed_total := !subsumed_total + dropped;
                    kept_states
              in
              let width = List.length survivors in
              sizes := width :: !sizes;
              frontier := survivors;
              incr level;
              Span.add sp "level" (Sink.Int lvl);
              Span.add sp "frontier" (Sink.Int width));
          if !result = None && cancelled () then
            result := Some (Driver.Interrupted (mk_stats lvl))
    end
  done;
  match !error with
  | Some e -> Error e
  | None ->
      let outcome =
        match !result with
        | Some r -> r
        | None -> Driver.Unsorted (mk_stats (!level - 1))
      in
      let s, verdict =
        match outcome with
        | Driver.Sorted { stats; _ } -> (stats, "sorted")
        | Driver.Unsorted stats -> (stats, "unsorted")
        | Driver.Inconclusive stats -> (stats, "inconclusive")
        | Driver.Interrupted stats -> (stats, "interrupted")
      in
      record_totals s;
      Span.add search_sp "outcome" (Sink.Str verdict);
      Span.add search_sp "nodes" (Sink.Int s.Driver.nodes);
      Span.add search_sp "shards" (Sink.Int shards);
      Ok outcome
