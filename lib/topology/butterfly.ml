let build ~levels ~choose =
  if levels < 0 then invalid_arg "Butterfly.build: negative level count";
  let rec go base l =
    if l = 0 then Reverse_delta.Wire base
    else
      let half = 1 lsl (l - 1) in
      let sub0 = go base (l - 1) in
      let sub1 = go (base + half) (l - 1) in
      let cross = ref [] in
      for i = half - 1 downto 0 do
        match choose ~level:l ~pos:(base + i) with
        | None -> ()
        | Some kind ->
            cross :=
              { Reverse_delta.left = base + i; right = base + half + i; kind }
              :: !cross
      done;
      Reverse_delta.Node { sub0; sub1; cross = !cross }
  in
  let rd = go 0 levels in
  Reverse_delta.validate rd;
  rd

let ascending ~levels =
  build ~levels ~choose:(fun ~level:_ ~pos:_ -> Some Reverse_delta.Min_left)

let network ~levels =
  Reverse_delta.to_network ~wires:(1 lsl levels) (ascending ~levels)

let delta_network ~levels =
  let nw = network ~levels in
  let lvls = List.rev (Network.levels nw) in
  Network.create ~wires:(Network.wires nw) lvls
