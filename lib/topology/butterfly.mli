(** The butterfly network as a reverse delta network.

    The butterfly is the unique network that is both a delta network
    and a reverse delta network (Kruskal & Snir, cited as [6] in the
    paper), and a [lg n]-level butterfly is equivalent to a
    shuffle-based network of depth [lg n]. Here it is built in the
    contiguous layout: the node over wire range [base, base + 2^l)
    splits into halves and pairs wire [base+i] with [base+half+i], so
    time step [k] compares wires differing in index bit [k-1]
    (ascend order, LSB to MSB). *)

val build :
  levels:int -> choose:(level:int -> pos:int -> Reverse_delta.kind option) ->
  Reverse_delta.t
(** [build ~levels ~choose] is the [2^levels]-wire butterfly on wires
    [0, 2^levels) where the cross element between positions [pos] and
    [pos + half] of the node at time step [level] (1-indexed, 1 = first
    fired, i.e. deepest recursion) is [choose ~level ~pos]. [pos]
    ranges over the node's base offset plus local index — concretely it
    is the global index of the [sub0]-side wire. *)

val ascending : levels:int -> Reverse_delta.t
(** All cross elements present, min to the lower-indexed wire. This is
    the comparator skeleton of one bitonic merge step. *)

val network : levels:int -> Network.t
(** [network ~levels] is [ascending] flattened to a circuit. *)

val delta_network : levels:int -> Network.t
(** The same butterfly run in *descend* (delta) direction: level order
    reversed, so time step [k] compares across bit [levels - k]. Used
    to exhibit that the butterfly is a delta network as well. *)
