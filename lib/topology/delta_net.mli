(** (Forward) delta networks — the mirror class of {!Reverse_delta}.

    A delta network is obtained from a reverse delta network by
    "flipping" it: interchanging inputs and outputs, i.e. reversing
    time. Recursively, a [2^(l+1)]-input delta network is a *first*
    level of cross elements feeding two parallel [2^l]-input delta
    networks. The paper (citing Kruskal & Snir [6]) notes the butterfly
    is the unique network that is both; {!is_butterfly_shape} checks
    the structural signature of that fact on concrete instances.

    We reuse {!Reverse_delta.t} as the underlying tree — a delta
    network is the same recursion read with the cross level fired
    {e before} the subnetworks. *)

type t
(** A delta network (a reverse delta tree, interpreted mirrored). *)

val of_reverse_delta : Reverse_delta.t -> t
(** [of_reverse_delta rd] is the flip of [rd]: same tree, cross levels
    fire root-first. Inputs/outputs swap roles, so the flip of a
    network computing [f] computes the time-reversal of [f]'s wiring
    (comparator orientations are preserved). *)

val to_reverse_delta : t -> Reverse_delta.t
(** The underlying tree (flipping back is the identity). *)

val levels : t -> int

val inputs : t -> int

val to_network : wires:int -> t -> Network.t
(** Flattens with root cross level first: level [k] (1-based) holds
    the cross elements of recursion depth [k-1]. *)

val butterfly : levels:int -> t
(** The all-comparator contiguous butterfly read in delta direction —
    the classic bitonic merger (see E10). *)

val is_butterfly_shape : Reverse_delta.t -> bool
(** Structural test used by the Kruskal–Snir uniqueness check: a tree
    is butterfly-shaped iff every node's cross level is a full
    positional matching (leaf [i] of [sub0] to leaf [i] of [sub1]).
    Exactly these trees give the same level structure whether read as
    delta or reverse delta networks. *)
