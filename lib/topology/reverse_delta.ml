type kind = Min_left | Min_right | Swap

type cross = { left : int; right : int; kind : kind }

type t = Wire of int | Node of { sub0 : t; sub1 : t; cross : cross list }

let rec leaves_rev acc = function
  | Wire w -> w :: acc
  | Node { sub0; sub1; _ } -> leaves_rev (leaves_rev acc sub0) sub1

let leaves rd = Array.of_list (List.rev (leaves_rev [] rd))

let rec levels = function
  | Wire _ -> 0
  | Node { sub0; _ } -> 1 + levels sub0

let inputs rd = 1 lsl levels rd

module Int_set = Set.Make (Int)

let validate rd =
  (* Returns the leaf set and the level count while checking shape. *)
  let rec go = function
    | Wire w ->
        if w < 0 then invalid_arg "Reverse_delta.validate: negative wire id";
        (Int_set.singleton w, 0)
    | Node { sub0; sub1; cross } ->
        let s0, l0 = go sub0 and s1, l1 = go sub1 in
        if l0 <> l1 then
          invalid_arg
            (Printf.sprintf "Reverse_delta.validate: subnetworks of depth %d and %d" l0 l1);
        if not (Int_set.is_empty (Int_set.inter s0 s1)) then
          invalid_arg "Reverse_delta.validate: subnetworks share a wire";
        let used = Hashtbl.create 16 in
        let touch w =
          if Hashtbl.mem used w then
            invalid_arg
              (Printf.sprintf "Reverse_delta.validate: wire %d used twice in a cross level" w)
          else Hashtbl.add used w ()
        in
        List.iter
          (fun c ->
            if not (Int_set.mem c.left s0) then
              invalid_arg
                (Printf.sprintf "Reverse_delta.validate: left wire %d not in sub0" c.left);
            if not (Int_set.mem c.right s1) then
              invalid_arg
                (Printf.sprintf "Reverse_delta.validate: right wire %d not in sub1" c.right);
            touch c.left;
            touch c.right)
          cross;
        (Int_set.union s0 s1, l0 + 1)
  in
  ignore (go rd)

let rec cross_count = function
  | Wire _ -> 0
  | Node { sub0; sub1; cross } ->
      List.length cross + cross_count sub0 + cross_count sub1

let rec comparator_count = function
  | Wire _ -> 0
  | Node { sub0; sub1; cross } ->
      let here =
        List.length
          (List.filter (fun c -> match c.kind with Swap -> false | Min_left | Min_right -> true) cross)
      in
      here + comparator_count sub0 + comparator_count sub1

let gate_of_cross c =
  match c.kind with
  | Min_left -> Gate.Compare { lo = c.left; hi = c.right }
  | Min_right -> Gate.Compare { lo = c.right; hi = c.left }
  | Swap -> Gate.Exchange { a = c.left; b = c.right }

let to_network ~wires rd =
  let l = levels rd in
  (* time_levels.(k) holds the gates firing at time step k+1; a node at
     recursion depth j fires at time step l - j. *)
  let time_levels = Array.make l [] in
  let rec walk depth = function
    | Wire _ -> ()
    | Node { sub0; sub1; cross } ->
        let step = l - depth - 1 in
        time_levels.(step) <- time_levels.(step) @ List.map gate_of_cross cross;
        walk (depth + 1) sub0;
        walk (depth + 1) sub1
  in
  walk 0 rd;
  Network.of_gate_levels ~wires (Array.to_list time_levels)

let butterfly_cross sub0 sub1 choose =
  let l0 = leaves sub0 and l1 = leaves sub1 in
  if Array.length l0 <> Array.length l1 then
    invalid_arg "Reverse_delta.butterfly_cross: subnetwork size mismatch";
  let out = ref [] in
  for i = Array.length l0 - 1 downto 0 do
    match choose i with
    | None -> ()
    | Some kind -> out := { left = l0.(i); right = l1.(i); kind } :: !out
  done;
  !out

let map_wires f rd =
  let rec go = function
    | Wire w -> Wire (f w)
    | Node { sub0; sub1; cross } ->
        Node
          { sub0 = go sub0;
            sub1 = go sub1;
            cross =
              List.map (fun c -> { c with left = f c.left; right = f c.right }) cross }
  in
  let rd' = go rd in
  validate rd';
  rd'

let pp_kind fmt = function
  | Min_left -> Format.pp_print_string fmt "+"
  | Min_right -> Format.pp_print_string fmt "-"
  | Swap -> Format.pp_print_string fmt "x"

let rec pp fmt = function
  | Wire w -> Format.fprintf fmt "w%d" w
  | Node { sub0; sub1; cross } ->
      Format.fprintf fmt "@[<hv 2>(node@ %a@ %a@ [" pp sub0 pp sub1;
      List.iteri
        (fun i c ->
          if i > 0 then Format.fprintf fmt ";@ ";
          Format.fprintf fmt "%d%a%d" c.left pp_kind c.kind c.right)
        cross;
      Format.fprintf fmt "])@]"
