(** Shuffle-based networks, and their reverse delta decomposition.

    The paper's class: register-model networks in which every stage
    permutation is the shuffle. The key structural fact behind the
    lower bound is that [d = lg n] consecutive shuffle stages form one
    [d]-level reverse delta network; more generally, [f <= d]
    consecutive shuffle stages split into [2^(d-f)] disjoint [f]-level
    reverse delta networks (used by the Section 5 truncated variant).

    Derivation used throughout this module: stage [k] (1-indexed within
    a block) applies the shuffle and then acts on register pairs
    [(2m, 2m+1)]; in the coordinates of the block's input wires, that
    pair is [(rotr^k 2m, rotr^k (2m+1))] — two wires that differ
    exactly in index bit [d-k], the even register giving the wire with
    that bit 0. Hence all comparisons of stages 1..f preserve index
    bits [0, d-f), and the recursive split of Definition 3.4 falls out
    with the node at recursion depth [j] crossing bit [d-f+j]. *)

val block_of_ops : n:int -> Register_model.op array list -> Reverse_delta.t
(** [block_of_ops ~n opss] is the [lg n]-level reverse delta network
    realised by the shuffle-based block whose stage op vectors are
    [opss] (length exactly [lg n], each of length [n/2]). Leaf wires
    are the block's input wires [0, n). *)

val forest_of_ops : n:int -> Register_model.op array list -> Reverse_delta.t list
(** [forest_of_ops ~n opss] handles the truncated case: for
    [f = length opss <= lg n] stages it returns the [2^(lg n - f)]
    disjoint [f]-level reverse delta networks (in increasing order of
    their fixed low-bit class) whose union is the block. For
    [f = lg n] this is a singleton equal to {!block_of_ops}. *)

val chunk_ops : Register_model.t -> f:int -> Register_model.op array list list
(** [chunk_ops prog ~f] validates that [prog] is shuffle-based and has
    a stage count divisible by [f], then groups the op vectors into
    chunks of [f]. @raise Invalid_argument otherwise. *)

val inter_chunk_perm : n:int -> f:int -> Perm.t
(** After [f] shuffle stages the value that a chunk saw on its input
    wire [o] exits on position [rotl^f o] (up to the moves made by the
    gates themselves, which both coordinate systems share). The next
    chunk's input wire for it is therefore [rotl^f o]; this permutation
    re-indexes patterns between consecutive chunks. For [f = lg n] it
    is the identity. *)

val to_iterated : Register_model.t -> Iterated.t
(** [to_iterated prog] decomposes a shuffle-based program with stage
    count a multiple of [lg n] into the equivalent iterated reverse
    delta network (identity inter-block permutations). *)

val random_program : Xoshiro.t -> n:int -> stages:int -> Register_model.t
(** Uniformly random op vectors on every stage. *)

val all_plus_program : n:int -> stages:int -> Register_model.t
(** Every stage is a full level of "+" comparators — the densest
    shuffle-based network. *)
