(** Seeded random instances of the topology classes.

    Random reverse delta networks exercise the full generality of
    Definition 3.4 (arbitrary cross matchings, partial levels, mixed
    orientations), which the deterministic constructions do not. All
    generators are deterministic functions of the supplied generator
    state. *)

val reverse_delta :
  Xoshiro.t -> levels:int -> density:float -> swap_prob:float -> Reverse_delta.t
(** [reverse_delta rng ~levels ~density ~swap_prob] builds a random
    [levels]-level reverse delta network on wires [0, 2^levels): at
    every node the cross level is a uniformly random perfect matching
    between the two subnetworks' leaves, each matched pair kept with
    probability [density]; a kept pair is an exchange with probability
    [swap_prob] and otherwise a comparator with uniform orientation. *)

val iterated :
  Xoshiro.t ->
  n:int -> blocks:int -> density:float -> swap_prob:float -> permute:bool ->
  Iterated.t
(** [iterated rng ~n ~blocks ~density ~swap_prob ~permute] chains
    [blocks] random reverse delta networks; when [permute] is true a
    uniformly random wire permutation is inserted before every block
    (the full generality the lower bound allows). *)
