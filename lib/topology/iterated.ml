type block = { pre : Perm.t option; body : Reverse_delta.t }

type t = { n : int; blocks : block list }

let create ~n blocks =
  if not (Bitops.is_power_of_two n) then
    invalid_arg "Iterated.create: n must be a power of two";
  List.iteri
    (fun i b ->
      Reverse_delta.validate b.body;
      if Reverse_delta.inputs b.body <> n then
        invalid_arg
          (Printf.sprintf "Iterated.create: block %d has %d inputs, want %d" i
             (Reverse_delta.inputs b.body) n);
      let ls = Reverse_delta.leaves b.body in
      let seen = Array.make n false in
      Array.iter
        (fun w ->
          if w < 0 || w >= n then
            invalid_arg
              (Printf.sprintf "Iterated.create: block %d wire %d out of [0,%d)" i w n)
          else seen.(w) <- true)
        ls;
      if Array.exists not seen then
        invalid_arg (Printf.sprintf "Iterated.create: block %d does not cover all wires" i);
      match b.pre with
      | Some p when Perm.n p <> n ->
          invalid_arg (Printf.sprintf "Iterated.create: block %d permutation size mismatch" i)
      | Some _ | None -> ())
    blocks;
  { n; blocks }

let n it = it.n
let blocks it = it.blocks
let block_count it = List.length it.blocks

let levels_per_block it =
  match it.blocks with
  | [] -> 0
  | b :: rest ->
      let l = Reverse_delta.levels b.body in
      List.iter
        (fun b' ->
          if Reverse_delta.levels b'.body <> l then
            invalid_arg "Iterated.levels_per_block: blocks of differing level counts")
        rest;
      l

let to_network it =
  let block_net b =
    let body = Reverse_delta.to_network ~wires:it.n b.body in
    match b.pre with
    | None -> body
    | Some p -> Network.serial (Network.permutation_level p) body
  in
  List.fold_left
    (fun acc b -> Network.serial acc (block_net b))
    (Network.empty it.n) it.blocks

let depth it = Network.depth (to_network it)

let uniform rds =
  match rds with
  | [] -> invalid_arg "Iterated.uniform: empty block list"
  | rd :: _ ->
      let n = Reverse_delta.inputs rd in
      create ~n (List.map (fun body -> { pre = None; body }) rds)
