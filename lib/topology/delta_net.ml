type t = Reverse_delta.t

let of_reverse_delta rd =
  Reverse_delta.validate rd;
  rd

let to_reverse_delta d = d

let levels = Reverse_delta.levels

let inputs = Reverse_delta.inputs

let to_network ~wires d =
  let l = Reverse_delta.levels d in
  let time_levels = Array.make (max l 1) [] in
  let gate_of_cross (c : Reverse_delta.cross) =
    match c.kind with
    | Reverse_delta.Min_left -> Gate.Compare { lo = c.left; hi = c.right }
    | Reverse_delta.Min_right -> Gate.Compare { lo = c.right; hi = c.left }
    | Reverse_delta.Swap -> Gate.Exchange { a = c.left; b = c.right }
  in
  let rec walk depth = function
    | Reverse_delta.Wire _ -> ()
    | Reverse_delta.Node { sub0; sub1; cross } ->
        time_levels.(depth) <- time_levels.(depth) @ List.map gate_of_cross cross;
        walk (depth + 1) sub0;
        walk (depth + 1) sub1
  in
  walk 0 d;
  Network.of_gate_levels ~wires (Array.to_list (Array.sub time_levels 0 l))

let butterfly ~levels = of_reverse_delta (Butterfly.ascending ~levels)

let rec is_butterfly_shape = function
  | Reverse_delta.Wire _ -> true
  | Reverse_delta.Node { sub0; sub1; cross } ->
      let l0 = Reverse_delta.leaves sub0 and l1 = Reverse_delta.leaves sub1 in
      let half = Array.length l0 in
      List.length cross = half
      && List.for_all
           (fun (c : Reverse_delta.cross) ->
             let rec index arr w i =
               if i >= Array.length arr then None
               else if arr.(i) = w then Some i
               else index arr w (i + 1)
             in
             match (index l0 c.left 0, index l1 c.right 0) with
             | Some i, Some j -> i = j
             | _, _ -> false)
           cross
      && is_butterfly_shape sub0 && is_butterfly_shape sub1
