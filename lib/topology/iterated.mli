(** Iterated reverse delta networks: [k] consecutive reverse delta
    networks with an arbitrary fixed permutation allowed between
    consecutive blocks (the [(k,l)]-iterated reverse delta networks of
    the paper, realised by the serial-composition operator ⊗). *)

type block = { pre : Perm.t option; body : Reverse_delta.t }
(** One block: an optional wire permutation applied before the block's
    reverse delta network runs. [pre] maps the previous block's output
    wire [j] to this block's input wire [pre j]. *)

type t

val create : n:int -> block list -> t
(** [create ~n blocks] validates that every block spans exactly the
    wires [0, n) (i.e. [inputs body = n] and leaves are a permutation
    of [0, n)) and that permutations have size [n].
    @raise Invalid_argument on violation. *)

val n : t -> int

val blocks : t -> block list

val block_count : t -> int

val levels_per_block : t -> int
(** [levels_per_block it] is [l] when every block has [l] levels. *)

val to_network : t -> Network.t
(** Flattens all blocks in sequence, inserting the inter-block
    permutations as gate-free routing levels. *)

val depth : t -> int
(** Total comparator depth of the flattened network. *)

val uniform : Reverse_delta.t list -> t
(** [uniform rds] is the iterated network with identity inter-block
    permutations. All blocks must span the same wire set [0, n). *)
