let reverse_delta rng ~levels ~density ~swap_prob =
  if density < 0. || density > 1. then
    invalid_arg "Random_net.reverse_delta: density must be in [0,1]";
  if swap_prob < 0. || swap_prob > 1. then
    invalid_arg "Random_net.reverse_delta: swap_prob must be in [0,1]";
  let rec go base l =
    if l = 0 then Reverse_delta.Wire base
    else
      let half = 1 lsl (l - 1) in
      let sub0 = go base (l - 1) in
      let sub1 = go (base + half) (l - 1) in
      let leaves0 = Reverse_delta.leaves sub0 in
      let leaves1 = Reverse_delta.leaves sub1 in
      let matching = Perm.random rng half in
      let cross = ref [] in
      for i = half - 1 downto 0 do
        if Xoshiro.float rng < density then begin
          let kind =
            if Xoshiro.float rng < swap_prob then Reverse_delta.Swap
            else if Xoshiro.bool rng then Reverse_delta.Min_left
            else Reverse_delta.Min_right
          in
          cross :=
            { Reverse_delta.left = leaves0.(i);
              right = leaves1.(Perm.apply matching i);
              kind }
            :: !cross
        end
      done;
      Reverse_delta.Node { sub0; sub1; cross = !cross }
  in
  let rd = go 0 levels in
  Reverse_delta.validate rd;
  rd

let iterated rng ~n ~blocks ~density ~swap_prob ~permute =
  let levels = Bitops.log2_exact n in
  let block _ =
    let body = reverse_delta rng ~levels ~density ~swap_prob in
    let pre = if permute then Some (Perm.random rng n) else None in
    { Iterated.pre; body }
  in
  Iterated.create ~n (List.init blocks block)
