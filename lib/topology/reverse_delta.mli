(** Reverse delta networks, in the recursive form of Definition 3.4.

    A [2^(l+1)]-input reverse delta network consists of two parallel
    [2^l]-input reverse delta networks followed by one level of cross
    elements, each taking one wire from either subnetwork; a 1-input
    reverse delta network is a bare wire. The lower-bound adversary
    walks this structure directly, so the type keeps the recursion
    explicit instead of flattening to a circuit immediately.

    Wires are global integer identifiers carried at the leaves; cross
    elements reference those global identifiers, never positional
    ports. The two subnetworks of a node always have disjoint wire
    sets. *)

type kind =
  | Min_left  (** comparator: min to the [sub0]-side wire ("+") *)
  | Min_right  (** comparator: min to the [sub1]-side wire ("-") *)
  | Swap  (** unconditional exchange ("1"); never a collision *)

type cross = { left : int; right : int; kind : kind }
(** One cross element: [left] is an input wire of [sub0], [right] of
    [sub1]. Pairs not mentioned get the "0" (do nothing) element. *)

type t = Wire of int | Node of { sub0 : t; sub1 : t; cross : cross list }

val validate : t -> unit
(** Checks the structural invariants: both subnetworks of every node
    have the same number of leaves, all leaf wires are distinct, every
    cross element joins a [sub0] wire with a [sub1] wire, and no wire
    is used twice within one cross level.
    @raise Invalid_argument on violation. *)

val levels : t -> int
(** [levels rd] is [l]: the number of cross levels on any root-to-leaf
    path (0 for a wire). *)

val inputs : t -> int
(** [inputs rd = 2^(levels rd)] is the number of leaf wires. *)

val leaves : t -> int array
(** The leaf wires, in recursive order ([sub0] leaves before [sub1]
    leaves). *)

val cross_count : t -> int
(** Total number of cross elements of all kinds. *)

val comparator_count : t -> int
(** Cross elements that are comparators ([Min_left] or [Min_right]). *)

val to_network : wires:int -> t -> Network.t
(** [to_network ~wires rd] flattens [rd] into a circuit-model network
    on [wires] total wires (leaf identifiers must lie in
    [0, wires)). Cross levels of recursion depth [j] fire at time step
    [levels rd - j], so the two subnetworks run before their parent's
    cross level, as the definition requires. Wires of the ambient
    network not mentioned by [rd] pass through untouched. *)

val butterfly_cross : t -> t -> (int -> kind option) -> cross list
(** [butterfly_cross sub0 sub1 choose] pairs leaf [i] of [sub0] with
    leaf [i] of [sub1] (positionally) and keeps the pair iff
    [choose i] is [Some kind]. Convenience for builders. *)

val map_wires : (int -> int) -> t -> t
(** Renames all leaf and cross wires. The renaming must be injective on
    the leaf set (validated). *)

val pp : Format.formatter -> t -> unit
(** Structural rendering for debugging; small instances only. *)
