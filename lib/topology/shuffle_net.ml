let rotr ~width ~count x =
  let d = width in
  let k = count mod d in
  if k = 0 then x
  else ((x lsr k) lor (x lsl (d - k))) land ((1 lsl d) - 1)

let rotl ~width ~count x = rotr ~width ~count:(width - (count mod width)) x

let kind_of_op = function
  | Register_model.Plus -> Some Reverse_delta.Min_left
  | Register_model.Minus -> Some Reverse_delta.Min_right
  | Register_model.One -> Some Reverse_delta.Swap
  | Register_model.Zero -> None

(* Builds the forest for one chunk of [f] shuffle stages on [n = 2^d]
   wires.  Crosses are bucketed by [(j, key)] where [j] is the
   recursion depth of the owning node and [key] the node's fixed low
   bits (bits [0, d-f+j) of its wires). *)
let forest_of_ops ~n opss =
  if not (Bitops.is_power_of_two n) || n < 2 then
    invalid_arg "Shuffle_net: n must be a power of two >= 2";
  let d = Bitops.log2_exact n in
  let f = List.length opss in
  if f < 1 || f > d then
    invalid_arg (Printf.sprintf "Shuffle_net: chunk of %d stages, want 1..%d" f d);
  List.iter
    (fun ops ->
      if Array.length ops <> n / 2 then
        invalid_arg "Shuffle_net: op vector length mismatch")
    opss;
  let crosses : (int * int, Reverse_delta.cross list) Hashtbl.t =
    Hashtbl.create 64
  in
  let add_cross j key c =
    let cur = Option.value ~default:[] (Hashtbl.find_opt crosses (j, key)) in
    Hashtbl.replace crosses (j, key) (c :: cur)
  in
  List.iteri
    (fun k0 ops ->
      let k = k0 + 1 in
      let j = f - k in
      let split_bit = d - k in
      let key_mask = (1 lsl (d - f + j)) - 1 in
      Array.iteri
        (fun m op ->
          match kind_of_op op with
          | None -> ()
          | Some kind ->
              let o_even = rotr ~width:d ~count:k (2 * m) in
              let o_odd = rotr ~width:d ~count:k ((2 * m) + 1) in
              assert (o_odd = o_even lxor (1 lsl split_bit));
              add_cross j (o_even land key_mask)
                { Reverse_delta.left = o_even; right = o_odd; kind })
        ops)
    opss;
  let rec build j key =
    if j = f then Reverse_delta.Wire key
    else
      let bit = d - f + j in
      let sub0 = build (j + 1) key in
      let sub1 = build (j + 1) (key lor (1 lsl bit)) in
      let cross =
        Option.value ~default:[] (Hashtbl.find_opt crosses (j, key))
      in
      Reverse_delta.Node { sub0; sub1; cross }
  in
  let trees =
    List.init (1 lsl (d - f)) (fun c ->
        let rd = build 0 c in
        Reverse_delta.validate rd;
        rd)
  in
  trees

let block_of_ops ~n opss =
  let d = Bitops.log2_exact n in
  if List.length opss <> d then
    invalid_arg
      (Printf.sprintf "Shuffle_net.block_of_ops: %d stages, want %d"
         (List.length opss) d);
  match forest_of_ops ~n opss with
  | [ rd ] -> rd
  | _ -> assert false

let chunk_ops prog ~f =
  let n = Register_model.n prog in
  if not (Bitops.is_power_of_two n) then
    invalid_arg "Shuffle_net.chunk_ops: n must be a power of two";
  let sh = Perm.shuffle n in
  let opss =
    List.map
      (fun st ->
        if not (Perm.equal st.Register_model.perm sh) then
          invalid_arg "Shuffle_net.chunk_ops: program is not shuffle-based";
        st.Register_model.ops)
      (Register_model.stages prog)
  in
  if f < 1 then invalid_arg "Shuffle_net.chunk_ops: f must be >= 1";
  if List.length opss mod f <> 0 then
    invalid_arg
      (Printf.sprintf "Shuffle_net.chunk_ops: %d stages not divisible by f=%d"
         (List.length opss) f);
  let rec chunks acc cur k = function
    | [] ->
        assert (k = 0);
        List.rev acc
    | ops :: rest ->
        if k = f - 1 then chunks (List.rev (ops :: cur) :: acc) [] 0 rest
        else chunks acc (ops :: cur) (k + 1) rest
  in
  chunks [] [] 0 opss

let inter_chunk_perm ~n ~f =
  let d = Bitops.log2_exact n in
  Perm.of_array (Array.init n (fun o -> rotl ~width:d ~count:f o))

let to_iterated prog =
  let n = Register_model.n prog in
  let d = Bitops.log2_exact n in
  let chunks = chunk_ops prog ~f:d in
  Iterated.uniform (List.map (fun opss -> block_of_ops ~n opss) chunks)

let random_program rng ~n ~stages =
  Register_model.shuffle_program ~n
    (List.init stages (fun _ -> Register_model.random_ops rng ~n))

let all_plus_program ~n ~stages =
  Register_model.shuffle_program ~n
    (List.init stages (fun _ -> Register_model.comparator_ops ~n))
