(** Small descriptive statistics for the experiment harness. *)

type t = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  median : float;
}

val of_floats : float list -> t
(** @raise Invalid_argument on the empty list. *)

val of_ints : int list -> t

val quantile : float list -> float -> float
(** [quantile xs q] for [q] in [0,1], linear interpolation between
    order statistics. @raise Invalid_argument on the empty list or out
    of range [q]. *)

val pp : Format.formatter -> t -> unit
(** ["mean±stddev [min,max]"]. *)
