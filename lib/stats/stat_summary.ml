type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let quantile xs q =
  if xs = [] then invalid_arg "Stat_summary.quantile: empty list";
  if q < 0. || q > 1. then invalid_arg "Stat_summary.quantile: q out of [0,1]";
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) in
  let hi = min (n - 1) (lo + 1) in
  let frac = pos -. float_of_int lo in
  (a.(lo) *. (1. -. frac)) +. (a.(hi) *. frac)

let of_floats xs =
  match xs with
  | [] -> invalid_arg "Stat_summary.of_floats: empty list"
  | _ ->
      let n = List.length xs in
      let fn = float_of_int n in
      let mean = List.fold_left ( +. ) 0. xs /. fn in
      let var =
        if n < 2 then 0.
        else
          List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs
          /. (fn -. 1.)
      in
      { count = n;
        mean;
        stddev = sqrt var;
        min = List.fold_left min infinity xs;
        max = List.fold_left max neg_infinity xs;
        median = quantile xs 0.5 }

let of_ints xs = of_floats (List.map float_of_int xs)

let pp fmt s =
  Format.fprintf fmt "%.3g±%.2g [%.3g,%.3g]" s.mean s.stddev s.min s.max
