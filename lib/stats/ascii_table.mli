(** Aligned plain-text tables (and CSV) for the experiment harness.

    Every experiment prints one of these; EXPERIMENTS.md embeds the
    output verbatim, so the renderer is deliberately plain. *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t
(** Column headers with their alignment. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the arity differs from [columns]. *)

val add_int_row : t -> int list -> unit

val render : t -> string
(** Header, separator rule, rows — all columns padded to width. *)

val to_csv : t -> string

val print : t -> unit
(** [render] to stdout followed by a newline flush. *)
