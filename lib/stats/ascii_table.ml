type align = Left | Right

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : string list list;  (** reversed *)
}

let create ~columns =
  { headers = List.map fst columns;
    aligns = List.map snd columns;
    rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg
      (Printf.sprintf "Ascii_table.add_row: %d cells, want %d"
         (List.length cells) (List.length t.headers));
  t.rows <- cells :: t.rows

let add_int_row t cells = add_row t (List.map string_of_int cells)

let pad align width s =
  let missing = width - String.length s in
  if missing <= 0 then s
  else
    match align with
    | Left -> s ^ String.make missing ' '
    | Right -> String.make missing ' ' ^ s

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      t.headers
  in
  let render_cells cells =
    String.concat "  "
      (List.map2
         (fun (w, a) c -> pad a w c)
         (List.combine widths t.aligns)
         cells)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (render_cells t.headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_cells row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let line cells = String.concat "," (List.map csv_escape cells) in
  String.concat "\n" (line t.headers :: List.map line (List.rev t.rows)) ^ "\n"

let print t =
  print_string (render t);
  flush stdout
