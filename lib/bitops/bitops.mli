(** Bit-level index arithmetic shared by all topology constructions.

    Every network in this library lives on [n = 2^d] wires, and the
    shuffle permutation, butterflies and reverse delta networks are all
    defined by operations on the binary representation of wire indices.
    This module centralises that arithmetic. All functions raise
    [Invalid_argument] on out-of-range inputs rather than returning
    garbage. *)

val is_power_of_two : int -> bool
(** [is_power_of_two n] is [true] iff [n = 2^k] for some [k >= 0].
    Nonpositive values are not powers of two. *)

val log2_exact : int -> int
(** [log2_exact n] is [d] such that [n = 2^d].
    @raise Invalid_argument if [n] is not a positive power of two. *)

val ceil_log2 : int -> int
(** [ceil_log2 n] is the least [d] with [2^d >= n], for [n >= 1]. *)

val floor_log2 : int -> int
(** [floor_log2 n] is the greatest [d] with [2^d <= n], for [n >= 1]. *)

val bit : int -> int -> int
(** [bit j i] is bit [i] (0 or 1) of [j], with bit 0 the least
    significant. [i] must be in [0, 62]. *)

val set_bit : int -> int -> int
(** [set_bit j i] is [j] with bit [i] forced to 1. *)

val clear_bit : int -> int -> int
(** [clear_bit j i] is [j] with bit [i] forced to 0. *)

val flip_bit : int -> int -> int
(** [flip_bit j i] is [j] with bit [i] complemented. *)

val rotate_left : width:int -> int -> int
(** [rotate_left ~width j] rotates the low [width] bits of [j] left by
    one position: bit [width-1] moves to bit 0. This is exactly the
    shuffle permutation of the paper on indices of [width] bits.
    @raise Invalid_argument if [j] is not in [0, 2^width). *)

val rotate_right : width:int -> int -> int
(** [rotate_right ~width j] is the inverse of {!rotate_left}: the
    unshuffle permutation on indices of [width] bits. *)

val reverse_bits : width:int -> int -> int
(** [reverse_bits ~width j] reverses the low [width] bits of [j]. *)

val popcount : int -> int
(** [popcount j] is the number of set bits of [j >= 0]. *)

val pow2 : int -> int
(** [pow2 d] is [2^d] for [0 <= d <= 62]. *)

val gray : int -> int
(** [gray j] is the binary-reflected Gray code of [j >= 0]. *)

val gray_inverse : int -> int
(** [gray_inverse g] is the [j] with [gray j = g]. *)
