let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2_exact n =
  if not (is_power_of_two n) then
    invalid_arg (Printf.sprintf "Bitops.log2_exact: %d is not a power of two" n);
  let rec go acc m = if m = 1 then acc else go (acc + 1) (m lsr 1) in
  go 0 n

(* binary descent: 6 compare/shift steps for any 62-bit value, instead
   of one iteration per bit — this is a leaf of the search and engine
   hot loops (bit iteration over packed states) *)
let floor_log2 n =
  if n < 1 then invalid_arg "Bitops.floor_log2: argument must be >= 1";
  let r = ref 0 and m = ref n in
  if !m lsr 32 <> 0 then begin
    r := !r + 32;
    m := !m lsr 32
  end;
  if !m lsr 16 <> 0 then begin
    r := !r + 16;
    m := !m lsr 16
  end;
  if !m lsr 8 <> 0 then begin
    r := !r + 8;
    m := !m lsr 8
  end;
  if !m lsr 4 <> 0 then begin
    r := !r + 4;
    m := !m lsr 4
  end;
  if !m lsr 2 <> 0 then begin
    r := !r + 2;
    m := !m lsr 2
  end;
  if !m lsr 1 <> 0 then r := !r + 1;
  !r

let ceil_log2 n =
  if n < 1 then invalid_arg "Bitops.ceil_log2: argument must be >= 1";
  let f = floor_log2 n in
  if 1 lsl f = n then f else f + 1

let check_bit_index i =
  if i < 0 || i > 62 then
    invalid_arg (Printf.sprintf "Bitops: bit index %d out of [0,62]" i)

let bit j i =
  check_bit_index i;
  (j lsr i) land 1

let set_bit j i =
  check_bit_index i;
  j lor (1 lsl i)

let clear_bit j i =
  check_bit_index i;
  j land lnot (1 lsl i)

let flip_bit j i =
  check_bit_index i;
  j lxor (1 lsl i)

let pow2 d =
  if d < 0 || d > 62 then
    invalid_arg (Printf.sprintf "Bitops.pow2: exponent %d out of [0,62]" d);
  1 lsl d

let check_width_value ~fn ~width j =
  if width < 1 || width > 62 then
    invalid_arg (Printf.sprintf "Bitops.%s: width %d out of [1,62]" fn width);
  if j < 0 || j >= 1 lsl width then
    invalid_arg
      (Printf.sprintf "Bitops.%s: value %d out of [0,2^%d)" fn j width)

let rotate_left ~width j =
  check_width_value ~fn:"rotate_left" ~width j;
  let high = (j lsr (width - 1)) land 1 in
  ((j lsl 1) land ((1 lsl width) - 1)) lor high

let rotate_right ~width j =
  check_width_value ~fn:"rotate_right" ~width j;
  let low = j land 1 in
  (j lsr 1) lor (low lsl (width - 1))

let reverse_bits ~width j =
  check_width_value ~fn:"reverse_bits" ~width j;
  let rec go acc i =
    if i = width then acc
    else go ((acc lsl 1) lor ((j lsr i) land 1)) (i + 1)
  in
  go 0 0

(* SWAR: pairwise, nibble-wise, byte-wise folds then one multiply to
   sum the byte counts — constant ~12 word ops for any 62-bit value.
   The masks are written for OCaml's 63-bit ints (nonnegative values
   use bits 0-61, so the 01 pattern tops out at bit 60). *)
let popcount j =
  if j < 0 then invalid_arg "Bitops.popcount: negative argument";
  let j = j - ((j lsr 1) land 0x1555_5555_5555_5555) in
  let j = (j land 0x3333_3333_3333_3333) + ((j lsr 2) land 0x3333_3333_3333_3333) in
  let j = (j + (j lsr 4)) land 0x0F0F_0F0F_0F0F_0F0F in
  (j * 0x0101_0101_0101_0101) lsr 56

let gray j =
  if j < 0 then invalid_arg "Bitops.gray: negative argument";
  j lxor (j lsr 1)

let gray_inverse g =
  if g < 0 then invalid_arg "Bitops.gray_inverse: negative argument";
  let rec go acc m = if m = 0 then acc else go (acc lxor m) (m lsr 1) in
  go 0 g
