(** Canonical response cache for verify verdicts, with the bounded
    second-chance eviction policy of {!Cache} (hits mark entries used;
    a full cache evicts the first cold entry, so hot entries survive
    the bound). Domain- and thread-safe (one mutex).

    Keys come from {!key}: wire-permutation {e canonical} for standard
    networks — no pre permutations, no exchanges, every comparator
    ascending — so isomorphic submissions share one entry, and exact
    {e structural} for everything else. The restriction is a soundness
    requirement, not an optimisation: for standard networks "sorts"
    is a property of the canonical reachable set (the thresholds are
    fixed points, so sorting means the reachable set {e is} the
    threshold set, and that is preserved by relabeling); a
    non-standard network can share a canonical form with a sorter yet
    not sort. Keys are full canonical strings, not hashes — two keys
    are equal exactly when the forms are, so a hash collision can
    never smuggle a wrong verdict.

    Hits, misses and evictions are recorded in the global
    {!Obs.Metrics} registry ([serve.cache.*]). *)

type entry = {
  sorts : bool;
  witness : int array option;
      (** a failing 0-1 input when [not sorts]. Witnesses belong to
          the concrete network, not its isomorphism class: reuse one
          only when [skey] matches the requesting network's
          structural key. *)
  skey : string;  (** structural key of the network that produced it *)
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 512. @raise Invalid_argument if < 1. *)

val find : t -> string -> entry option
(** Counted lookup: records a [serve.cache] hit or miss and marks a
    found entry recently used. *)

val peek : t -> string -> entry option
(** Uncounted lookup (no metrics, no used-bit): for re-checks by the
    batch worker after the session already paid the miss. *)

val add : t -> string -> entry -> unit

val entries : t -> int

val is_standard : Network.t -> bool
(** No pre permutations, no exchanges, every comparator [lo < hi]. *)

val structural_key : Network.t -> string
(** Exact textual form — equal exactly for identical networks. *)

val key : Network.t -> string
(** Canonical key for standard networks of 2–16 wires (isomorphic
    networks collide, by design); {!structural_key} otherwise. *)
