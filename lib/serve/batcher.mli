(** The request scheduler: gather / batch / scatter.

    Session threads block in {!verify} / {!eval01}; one worker thread
    drains the queue in rounds, lingering {!type-config.window}
    seconds after a round's first arrival so concurrent clients land
    together. Verify requests group by cache key — one bit-sliced
    [2^n] sweep serves every request in the group, and the verdict is
    published to the response cache — and 0-1 eval requests on the
    same network lane-pack up to 63 per {!Bitslice.eval_masks} pass,
    unrelated clients filling unused lanes of one word-parallel
    batch. [window = 0., max_batch = 1, cache = None] is sequential
    one-request-per-pass mode, the bench baseline.

    Counters ([serve.batch.*], [serve.verify.*], [serve.eval.*],
    [serve.queue.depth]) land in the global {!Obs.Metrics} registry. *)

type config = {
  window : float;  (** seconds to linger after a round's first job *)
  max_batch : int;  (** jobs per round; 1 = sequential mode *)
  domains : int;  (** domains per verify sweep *)
  cache : Scache.t option;  (** response cache; [None] = uncached *)
}

type verify_result = {
  sorts : bool;
  witness : int array option;
      (** failing 0-1 input; only present when it belongs to the
          requesting network itself (see {!Scache}) *)
  cached : bool;  (** served from the response cache, no engine work *)
  coalesced : int;  (** requests sharing this round's sweep ([>= 1]) *)
  key : string;  (** the cache key used *)
}

type t

val create : config -> t
(** Starts the worker thread.
    @raise Invalid_argument if [max_batch < 1] or [domains < 1]. *)

val verify : t -> Network.t -> verify_result
(** Blocking exact 0-1 verification. The caller's width guard is
    {!Wire.resolve_network}; the sweep is [2^wires]. Cache fast path
    first (no queue, no engine), then gather/batch/scatter.
    @raise Invalid_argument after {!drain}. *)

val eval01 : t -> Network.t -> int -> int
(** [eval01 t nw mask] evaluates one 0-1 input (bit [w] = wire [w]),
    lane-packed with whatever else the round gathered on the same
    network. Returns the output mask (through the network's output
    routing). @raise Invalid_argument after {!drain}. *)

val drain : t -> unit
(** Stop accepting, finish every queued job, join the worker.
    Idempotent. *)

val sweeps : unit -> int
(** Current value of the [serve.verify.sweeps] counter (tests). *)

val eval_passes : unit -> int
(** Current value of the [serve.eval.passes] counter (tests). *)

val eval_lanes : unit -> int
(** Current value of the [serve.eval.lanes] counter; divided by
    [63 * eval_passes] this is the lane-fill ratio (tests, bench). *)
