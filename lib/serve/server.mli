(** The serve driver: listen, accept, drain.

    Binds a Unix-domain or loopback-TCP endpoint, spawns one
    {!Session} thread per accepted connection, and shares one
    {!Batcher} (plus, unless disabled, one {!Scache}) across all of
    them — that sharing is what lets unrelated clients coalesce into
    common engine passes and cache entries.

    Shutdown is cooperative: the accept loop polls the {!Cancel}
    token between short [select] timeouts; once tripped (the CLI
    trips it from SIGINT/SIGTERM handlers) the server stops
    accepting, removes the endpoint, shuts down the read side of
    every live connection — each session finishes the request it
    already read, so in-flight batches flush — joins the sessions,
    and drains the batcher before returning. *)

type addr = Unix_path of string | Tcp of int
(** [Tcp] binds loopback only: the daemon has no authentication, so
    it must not listen on routable interfaces. *)

val addr_text : addr -> string

type config = {
  addr : addr;
  domains : int;  (** domains per verify sweep *)
  window : float;  (** batch gather window, seconds *)
  max_batch : int;  (** jobs per batch round *)
  cache_capacity : int;  (** response-cache entries; 0 disables *)
  max_request : int;  (** frame payload cap, bytes *)
  max_wires : int;  (** width cap — sweeps are [2^wires] *)
  exact_max_wires : int;  (** lint: exact-domain cutoff *)
  idle_timeout : float;
      (** seconds a session may sit idle before the reaper closes it
          with a typed [idle-timeout] error; [0.] disables *)
  request_deadline : float;
      (** seconds one request may take end to end before the session
          answers [deadline-exceeded] and closes; [0.] disables *)
}

val default_config : addr -> config
(** 1 domain, 2 ms window, 256-job rounds, 512 cache entries, 1 MiB
    frames, 16 wires, exact lint up to 12, 300 s idle timeout, 30 s
    request deadline. *)

val connect : addr -> Unix.file_descr
(** Client-side dial (the CLI client and tests).
    @raise Unix.Unix_error when nobody is listening. *)

val run :
  ?sink:Sink.t ->
  ?ready:(unit -> unit) ->
  cancel:Cancel.t ->
  config ->
  (unit, string) result
(** Serve until [cancel] trips, then drain; [ready] fires once the
    endpoint is accepting (the CLI prints its "listening" line there,
    so a caller watching stdout can start dialing). [Error] only for
    startup failures (endpoint in use, bind permission); a served
    lifetime always ends in [Ok ()] after a clean drain. Ignores
    SIGPIPE process-wide. *)
