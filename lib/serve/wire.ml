(* The serve request/response model and its JSON binding.

   One request per frame, one response per frame. A request is an
   object with:

     id       any JSON value; echoed verbatim in the response
     verb     "verify" | "certify" | "lint" | "eval"
     network  the network in snlb text format, OR
     algo,n   a registry sorter by name and width
     input    (eval only) the input values, one per wire
     cert     (verify/certify/lint) true to request a proof-carrying
              certificate for the verdict, in the snlb-cert text
              format `snlb check` validates

   A response carries the request [id], a server-assigned [trace] id
   (the correlation key into --trace NDJSON spans), [ok], and either
   verb-specific result fields or an [error] object with a stable
   machine-readable [code] and a human [message]. *)

type verb = Verify | Certify | Lint | Eval

let verb_name = function
  | Verify -> "verify"
  | Certify -> "certify"
  | Lint -> "lint"
  | Eval -> "eval"

type net_spec = Text of string | Algo of { algo : string; n : int }

type request = {
  id : Json.t;
  verb : verb;
  net : net_spec;
  input : int array option;
  want_cert : bool;
}

(* stable error codes (append-only, mirrored in README) *)
let e_malformed_frame = "malformed-frame"
let e_oversized = "oversized-request"
let e_bad_json = "bad-json"
let e_bad_request = "bad-request"
let e_bad_network = "bad-network"
let e_unsupported = "unsupported"
let e_shutting_down = "shutting-down"
let e_idle_timeout = "idle-timeout"
let e_deadline = "deadline-exceeded"

let request_of_json j =
  let ( let* ) = Result.bind in
  let id = Option.value (Json.member "id" j) ~default:Json.Null in
  let* verb =
    match Json.member "verb" j with
    | Some (Json.Str "verify") -> Ok Verify
    | Some (Json.Str "certify") -> Ok Certify
    | Some (Json.Str "lint") -> Ok Lint
    | Some (Json.Str "eval") -> Ok Eval
    | Some (Json.Str v) ->
        Error (e_unsupported, Printf.sprintf "unknown verb %S" v)
    | Some _ -> Error (e_bad_request, "verb must be a string")
    | None -> Error (e_bad_request, "missing verb")
  in
  let* net =
    match (Json.member "network" j, Json.member "algo" j) with
    | Some (Json.Str text), None -> Ok (Text text)
    | Some _, None -> Error (e_bad_request, "network must be a string")
    | None, Some (Json.Str algo) -> (
        match Option.bind (Json.member "n" j) Json.to_int with
        | Some n -> Ok (Algo { algo; n })
        | None -> Error (e_bad_request, "algo needs an integer n"))
    | None, Some _ -> Error (e_bad_request, "algo must be a string")
    | Some _, Some _ ->
        Error (e_bad_request, "give either network or algo, not both")
    | None, None -> Error (e_bad_request, "missing network (or algo/n)")
  in
  let* input =
    match Json.member "input" j with
    | None -> Ok None
    | Some (Json.List xs) -> (
        match
          List.map (fun x -> Option.get (Json.to_int x)) xs
        with
        | ints -> Ok (Some (Array.of_list ints))
        | exception Invalid_argument _ ->
            Error (e_bad_request, "input must be a list of integers"))
    | Some _ -> Error (e_bad_request, "input must be a list of integers")
  in
  let* want_cert =
    match Json.member "cert" j with
    | None -> Ok false
    | Some (Json.Bool b) -> Ok b
    | Some _ -> Error (e_bad_request, "cert must be a boolean")
  in
  match (verb, input) with
  | Eval, None -> Error (e_bad_request, "eval needs an input")
  | (Verify | Certify | Lint), Some _ ->
      Error (e_bad_request, "input is only meaningful for eval")
  | Eval, Some _ when want_cert ->
      Error (e_bad_request, "cert is only meaningful for verify/certify/lint")
  | _ -> Ok { id; verb; net; input; want_cert }

let parse_request payload =
  match Json.of_string payload with
  | Error msg -> Error (e_bad_json, msg)
  | Ok j -> request_of_json j

(* Resolve the network spec to a validated Network.t, enforcing the
   serve width cap (sweeps are 2^wires — the cap is the DoS guard). *)
let resolve_network ~max_wires req =
  let built =
    match req.net with
    | Text text -> (
        match Network_io.of_string text with
        | Ok nw -> Ok nw
        | Error e -> Error (e_bad_network, e))
    | Algo { algo; n } -> (
        match Sorter_registry.find algo with
        | None ->
            Error
              ( e_bad_network,
                Printf.sprintf "unknown algo %S; try: %s" algo
                  (String.concat ", " Sorter_registry.names) )
        | Some entry ->
            if n < 2 then Error (e_bad_network, "n must be at least 2")
            else if entry.pow2_only && not (Bitops.is_power_of_two n) then
              Error
                ( e_bad_network,
                  Printf.sprintf "%s requires n to be a power of two" algo )
            else
              match entry.build n with
              | nw -> Ok nw
              | exception Invalid_argument e -> Error (e_bad_network, e))
  in
  match built with
  | Error _ as e -> e
  | Ok nw ->
      let w = Network.wires nw in
      if w > max_wires then
        Error
          ( e_unsupported,
            Printf.sprintf "network has %d wires; this server caps at %d" w
              max_wires )
      else Ok nw

(* --- responses --- *)

let ints_json a = Json.List (Array.to_list (Array.map (fun v -> Json.Int v) a))

let ok_response ~id ~trace fields =
  Json.Obj (("id", id) :: ("trace", Json.Str trace) :: ("ok", Json.Bool true) :: fields)

let error_response ~id ~trace ~code msg =
  Json.Obj
    [ ("id", id);
      ("trace", Json.Str trace);
      ("ok", Json.Bool false);
      ("error", Json.Obj [ ("code", Json.Str code); ("message", Json.Str msg) ]);
    ]
