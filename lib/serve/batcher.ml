(* The request scheduler: gather / batch / scatter.

   Session threads block in [verify] / [eval01]; a single worker
   thread drains the queue in rounds. Each round takes every pending
   job (up to [max_batch]), after lingering [window] seconds from the
   first arrival so concurrent clients land in the same round, then:

   - verify jobs are grouped by cache key: one bit-sliced 2^n sweep
     serves every request in the group (duplicates and isomorphic
     standard networks coalesce), and the verdict is published to the
     response cache so later resubmissions don't reach the engine at
     all;

   - eval jobs on 0-1 inputs are grouped by network and lane-packed,
     up to 63 unrelated clients' inputs per Bitslice.eval_masks pass
     (one word-parallel execution of the compiled stream).

   Sequential mode — window 0, max_batch 1, no cache — degrades to
   one-request-per-pass and is the baseline the bench compares
   against.

   The worker is a thread, not a domain: it spends its life either
   blocked on the condition variable or inside the engine, and verify
   sweeps can still fan out across domains via [domains] (Zero_one
   releases the runtime lock per chunk). *)

type config = {
  window : float;  (* seconds to linger after the first job of a round *)
  max_batch : int;  (* jobs per round; 1 = sequential mode *)
  domains : int;  (* domains per verify sweep *)
  cache : Scache.t option;
}

type verify_result = {
  sorts : bool;
  witness : int array option;
  cached : bool;  (* served from the response cache, no engine pass *)
  coalesced : int;  (* requests sharing this round's sweep (>= 1) *)
  key : string;  (* the cache key used *)
}

(* one-shot result cell: the scatter half of gather/batch/scatter *)
module Cell = struct
  type 'a t = { m : Mutex.t; c : Condition.t; mutable v : 'a option }

  let create () = { m = Mutex.create (); c = Condition.create (); v = None }

  let fill cell v =
    Mutex.lock cell.m;
    cell.v <- Some v;
    Condition.broadcast cell.c;
    Mutex.unlock cell.m

  let wait cell =
    Mutex.lock cell.m;
    while cell.v = None do
      Condition.wait cell.c cell.m
    done;
    let v = Option.get cell.v in
    Mutex.unlock cell.m;
    v
end

type job =
  | Jverify of {
      nw : Network.t;
      skey : string;
      key : string;
      cell : verify_result Cell.t;
    }
  | Jeval of { nw : Network.t; skey : string; mask : int; cell : int Cell.t }

type t = {
  config : config;
  m : Mutex.t;
  c : Condition.t;
  queue : job Queue.t;
  mutable stopping : bool;
  mutable worker : Thread.t option;
}

let c_requests = Metrics.counter "serve.batch.requests"
let c_rounds = Metrics.counter "serve.batch.rounds"
let c_queue_depth = Metrics.counter "serve.queue.depth"
let c_sweeps = Metrics.counter "serve.verify.sweeps"
let c_coalesced = Metrics.counter "serve.verify.coalesced"
let c_eval_passes = Metrics.counter "serve.eval.passes"
let c_eval_lanes = Metrics.counter "serve.eval.lanes"

let sweeps () = Metrics.value c_sweeps
let eval_passes () = Metrics.value c_eval_passes
let eval_lanes () = Metrics.value c_eval_lanes

(* group jobs by a string key, preserving arrival order within groups *)
let group_by key_of jobs =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun j ->
      let k = key_of j in
      match Hashtbl.find_opt tbl k with
      | Some l -> l := j :: !l
      | None ->
          Hashtbl.add tbl k (ref [ j ]);
          order := k :: !order)
    jobs;
  List.rev_map (fun k -> (k, List.rev !(Hashtbl.find tbl k))) !order

let run_verify_group t key jobs =
  let prior =
    match t.config.cache with
    | None -> None
    | Some cache -> Scache.peek cache key
  in
  let entry =
    match prior with
    | Some e -> e
    | None ->
        let nw, skey =
          match List.hd jobs with
          | Jverify { nw; skey; _ } -> (nw, skey)
          | Jeval _ -> assert false
        in
        Metrics.incr c_sweeps;
        Metrics.add c_coalesced (List.length jobs - 1);
        let entry =
          match Zero_one.verify ~domains:t.config.domains nw with
          | Ok () -> { Scache.sorts = true; witness = None; skey }
          | Error w -> { Scache.sorts = false; witness = Some w; skey }
        in
        Option.iter (fun cache -> Scache.add cache key entry) t.config.cache;
        entry
  in
  let cached = prior <> None in
  let coalesced = if cached then 1 else List.length jobs in
  List.iter
    (function
      | Jverify { skey; cell; _ } ->
          (* a witness is a property of the concrete network: only
             hand it to requests whose structural key matches the one
             that produced it (see Scache) *)
          let witness =
            if entry.Scache.skey = skey then entry.Scache.witness else None
          in
          Cell.fill cell
            { sorts = entry.Scache.sorts; witness; cached; coalesced; key }
      | Jeval _ -> assert false)
    jobs

let run_eval_group _t jobs =
  let nw =
    match List.hd jobs with Jeval { nw; _ } -> nw | Jverify _ -> assert false
  in
  let compiled = Cache.compile nw in
  let jobs = Array.of_list jobs in
  let masks =
    Array.map
      (function Jeval { mask; _ } -> mask | Jverify _ -> assert false)
      jobs
  in
  (* the chunking into <= 63-lane passes lives in Bitslice.fold_masks,
     shared with the evolutionary fitness kernel *)
  Bitslice.fold_masks compiled masks ~init:() ~f:(fun () ~off out ->
      Metrics.incr c_eval_passes;
      Metrics.add c_eval_lanes (Array.length out);
      Array.iteri
        (fun i o ->
          match jobs.(off + i) with
          | Jeval { cell; _ } -> Cell.fill cell o
          | Jverify _ -> assert false)
        out)

let run_round t jobs =
  Metrics.incr c_rounds;
  let verifies, evals =
    List.partition (function Jverify _ -> true | Jeval _ -> false) jobs
  in
  List.iter
    (fun (key, group) -> run_verify_group t key group)
    (group_by (function Jverify { key; _ } -> key | Jeval _ -> assert false)
       verifies);
  List.iter
    (fun (_skey, group) -> run_eval_group t group)
    (group_by (function Jeval { skey; _ } -> skey | Jverify _ -> assert false)
       evals)

let worker_loop t =
  let rec loop () =
    Mutex.lock t.m;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.c t.m
    done;
    if Queue.is_empty t.queue && t.stopping then Mutex.unlock t.m
    else begin
      (* linger so concurrently arriving requests join this round; no
         lingering during drain or in sequential mode *)
      if t.config.window > 0. && not t.stopping then begin
        Mutex.unlock t.m;
        Thread.delay t.config.window;
        Mutex.lock t.m
      end;
      let jobs = ref [] in
      let k = ref 0 in
      while (not (Queue.is_empty t.queue)) && !k < t.config.max_batch do
        jobs := Queue.pop t.queue :: !jobs;
        incr k
      done;
      Mutex.unlock t.m;
      Metrics.add c_queue_depth (- !k);
      run_round t (List.rev !jobs);
      loop ()
    end
  in
  loop ()

let create config =
  if config.max_batch < 1 then invalid_arg "Batcher.create: max_batch < 1";
  if config.domains < 1 then invalid_arg "Batcher.create: domains < 1";
  let t =
    { config;
      m = Mutex.create ();
      c = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      worker = None;
    }
  in
  t.worker <- Some (Thread.create worker_loop t);
  t

let submit t job =
  Mutex.lock t.m;
  if t.stopping then begin
    Mutex.unlock t.m;
    invalid_arg "Batcher: stopped"
  end
  else begin
    Queue.push job t.queue;
    Condition.signal t.c;
    Mutex.unlock t.m;
    Metrics.incr c_requests;
    Metrics.incr c_queue_depth
  end

let verify t nw =
  let skey = Scache.structural_key nw in
  let key = if t.config.cache = None then skey else Scache.key nw in
  match
    match t.config.cache with None -> None | Some c -> Scache.find c key
  with
  | Some entry ->
      (* response-cache fast path: no queue, no engine *)
      let witness =
        if entry.Scache.skey = skey then entry.Scache.witness else None
      in
      { sorts = entry.Scache.sorts; witness; cached = true; coalesced = 1; key }
  | None ->
      let cell = Cell.create () in
      submit t (Jverify { nw; skey; key; cell });
      Cell.wait cell

let eval01 t nw mask =
  let cell = Cell.create () in
  submit t (Jeval { nw; skey = Scache.structural_key nw; mask; cell });
  Cell.wait cell

let drain t =
  Mutex.lock t.m;
  t.stopping <- true;
  Condition.broadcast t.c;
  Mutex.unlock t.m;
  match t.worker with
  | Some th ->
      Thread.join th;
      t.worker <- None
  | None -> ()
