(** Minimal JSON values for the serve wire protocol.

    A deliberately small RFC 8259 subset — objects, arrays, strings
    with full escape handling (including surrogate pairs), 63-bit
    ints, floats, booleans, null — so [lib/serve] carries no parser
    dependency. Numbers without a fraction or exponent parse as
    {!Int}; everything else numeric as {!Float}. Object key order is
    preserved on both parse and print. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** One-line rendering, strings escaped per RFC 8259; non-finite
    floats serialise as [0] (matching {!Sink.to_json}). *)

val of_string : string -> (t, string) result
(** Strict parse of exactly one value (trailing garbage is an error).
    Errors carry the byte offset. *)

val member : string -> t -> t option
(** Field lookup; [None] on non-objects and missing keys. *)

val to_int : t -> int option

val to_str : t -> string option

val to_list : t -> t list option

val to_bool : t -> bool option
