(* Per-connection request loop.

   One thread per connection reads frames, parses and validates
   requests, dispatches — verify and 0-1 eval block in the batcher so
   concurrent connections coalesce into shared engine passes; lint,
   certify and general eval run inline — and writes one response
   frame per request. The session thread is its connection's only
   writer, so no write lock is needed.

   Every request gets a server-assigned trace id ("c<conn>-r<seq>"),
   carried both in the response and on the request's span, so a
   --trace NDJSON capture correlates with what clients saw.

   Error handling is typed and connection-preserving where possible:
   bad JSON or a bad request gets an error response and the session
   continues; a framing violation (malformed or oversized) gets a
   best-effort error response and the connection is closed, because
   the stream position can no longer be trusted. *)

type config = {
  batcher : Batcher.t;
  max_request : int;  (* frame payload cap, bytes *)
  max_wires : int;  (* width cap (sweeps are 2^wires) *)
  exact_max_wires : int;  (* lint: exact domain cutoff *)
  idle_timeout : float;  (* seconds between requests; 0 disables *)
  request_deadline : float;  (* seconds per request; 0 disables *)
  sink : Sink.t;
}

let c_requests = Metrics.counter "serve.requests"
let c_errors = Metrics.counter "serve.errors"
let c_idle_closed = Metrics.counter "serve.idle_closed"
let c_deadline_expired = Metrics.counter "serve.deadline_expired"

let severity_json d = Json.Str (Diag.severity_name d.Diag.severity)

let diag_json d =
  let span_fields =
    match d.Diag.span with
    | None -> []
    | Some { Diag.level; gate } -> (
        [ ("level", Json.Int level) ]
        @ match gate with None -> [] | Some g -> [ ("gate", Json.Int g) ])
  in
  Json.Obj
    (("code", Json.Str d.Diag.code)
    :: ("severity", severity_json d)
    :: (span_fields @ [ ("message", Json.Str d.Diag.message) ]))

let sortedness_json = function
  | Analysis.Sorting_proved -> Json.Str "sorting-proved"
  | Analysis.Sorting_refuted _ -> Json.Str "sorting-refuted"
  | Analysis.Sorted_by_bounds -> Json.Str "sorted-by-bounds"
  | Analysis.Unknown -> Json.Str "unknown"

let mask_of_input input =
  let ok = Array.for_all (fun v -> v = 0 || v = 1) input in
  if not ok then None
  else begin
    let m = ref 0 in
    Array.iteri (fun w v -> if v = 1 then m := !m lor (1 lsl w)) input;
    Some !m
  end

let input_of_mask ~wires m = Array.init wires (fun w -> (m lsr w) land 1)

let witness_fields = function
  | None -> []
  | Some w -> [ ("witness", Wire.ints_json w) ]

(* Proof-carrying responses: on request (want_cert), the verdict is
   accompanied by snlb-cert text the client can hand to the
   independent checker (`snlb check`). Emission is best-effort — a
   verdict the certificate emitters cannot back (e.g. bounds-domain
   undecided above the exact cutoff) reports a [cert_error] field, it
   never fails the request. *)
let cert_fields ~exact_max_wires ~dead want nw =
  if not want then []
  else
    match Analysis_cert.sortedness ~exact_max_wires nw with
    | Error e -> [ ("cert_error", Json.Str e) ]
    | Ok sc ->
        let dead_certs =
          if not dead then []
          else
            match Analysis_cert.dead_gates ~exact_max_wires nw with
            | Ok (Some dc) -> [ dc ]
            | Ok None | Error _ -> []
        in
        [ ( "cert",
            Json.Str
              (String.concat "\n"
                 (List.map Cert.to_string (sc :: dead_certs))) ) ]

let dispatch config req nw =
  match req.Wire.verb with
  | Wire.Verify ->
      let r = Batcher.verify config.batcher nw in
      (* the cache key is internal (and long); clients get a digest
         that is still equal exactly when the keys are *)
      let key_digest = Digest.to_hex (Digest.string r.Batcher.key) in
      Ok
        ([ ("sorts", Json.Bool r.Batcher.sorts);
           ("cached", Json.Bool r.Batcher.cached);
           ("coalesced", Json.Int r.Batcher.coalesced);
           ("key", Json.Str key_digest);
         ]
        @ witness_fields r.Batcher.witness
        @ cert_fields ~exact_max_wires:config.exact_max_wires ~dead:false
            req.Wire.want_cert nw)
  | Wire.Certify -> (
      (* uncached, unbatched, independently re-checked: the verdict a
         client can audit. Negative: the witness is re-evaluated
         through the interpretive Network.eval (not the engine that
         produced it). Positive: the whole 2^n sweep is re-run
         interpretively when the width allows. *)
      match Zero_one.verify ~domains:1 nw with
      | Error w ->
          let out = Network.eval nw w in
          Ok
            ([ ("sorts", Json.Bool false);
               ("rechecked", Json.Bool (not (Sortedness.is_sorted out)));
               ("output", Wire.ints_json out);
             ]
            @ witness_fields (Some w)
            @ cert_fields ~exact_max_wires:config.exact_max_wires ~dead:false
                req.Wire.want_cert nw)
      | Ok () ->
          let cross =
            if Network.wires nw <= 20 then
              Some (Exhaustive.sorts_all_zero_one nw)
            else None
          in
          if cross = Some false then
            Error
              ( Wire.e_unsupported,
                "internal: engine and interpretive sweeps disagree" )
          else
            Ok
              ([ ("sorts", Json.Bool true);
                 ("cross_checked", Json.Bool (cross = Some true));
               ]
              @ cert_fields ~exact_max_wires:config.exact_max_wires
                  ~dead:false req.Wire.want_cert nw))
  | Wire.Lint ->
      let r = Analysis.analyze ~exact_max_wires:config.exact_max_wires nw in
      let f = r.Analysis.facts in
      Ok
        ([ ("wires", Json.Int f.Analysis.wires);
           ("levels", Json.Int f.Analysis.levels);
           ("depth", Json.Int f.Analysis.depth);
           ("comparators", Json.Int f.Analysis.comparators);
           ("exchanges", Json.Int f.Analysis.exchanges);
           ("exact", Json.Bool f.Analysis.exact);
           ("sortedness", sortedness_json f.Analysis.sortedness);
           ("dead", Json.Int (List.length f.Analysis.dead));
           ("redundant", Json.Int (List.length f.Analysis.redundant));
           ("diags", Json.List (List.map diag_json r.Analysis.diags));
         ]
        @ cert_fields ~exact_max_wires:config.exact_max_wires ~dead:true
            req.Wire.want_cert nw)
  | Wire.Eval -> (
      let input = Option.get req.Wire.input in
      if Array.length input <> Network.wires nw then
        Error
          ( Wire.e_bad_request,
            Printf.sprintf "input has %d values for %d wires"
              (Array.length input) (Network.wires nw) )
      else
        match mask_of_input input with
        | Some mask ->
            (* 0-1 input: through the batcher, lane-packed with other
               clients' inputs on the same network *)
            let out = Batcher.eval01 config.batcher nw mask in
            let wires = Network.wires nw in
            Ok
              [ ("output", Wire.ints_json (input_of_mask ~wires out));
                ("sorted", Json.Bool (Bitslice.mask_sorted ~wires out));
              ]
        | None ->
            (* general integers: one pass of the compiled engine *)
            let out = Compiled.eval (Cache.compile nw) input in
            Ok
              [ ("output", Wire.ints_json out);
                ("sorted", Json.Bool (Sortedness.is_sorted out));
              ])

let respond fd response = Frame.write fd (Json.to_string response)

let handle config ~conn fd =
  (* the reaper: a blocking read wakes with EAGAIN after the larger
     enabled timeout; Frame.read's own deadline (started at a frame's
     first byte) then narrows mid-frame stalls to request_deadline *)
  let rcv_timeout =
    match (config.idle_timeout > 0., config.request_deadline > 0.) with
    | true, _ -> config.idle_timeout
    | false, true -> config.request_deadline
    | false, false -> 0.
  in
  if rcv_timeout > 0. then (
    try Unix.setsockopt_float fd Unix.SO_RCVTIMEO rcv_timeout
    with Unix.Unix_error _ | Invalid_argument _ -> ());
  let deadline =
    if config.request_deadline > 0. then Some config.request_deadline else None
  in
  let reader = Frame.reader fd in
  let seq = ref 0 in
  let next_trace () =
    incr seq;
    Printf.sprintf "c%d-r%d" conn !seq
  in
  let rec loop () =
    match Frame.read ?deadline ~max:config.max_request reader with
    | Error Frame.Eof -> ()
    | Error (Frame.Timed_out Frame.Idle) ->
        (* nothing in flight: reap the session with a typed goodbye *)
        Metrics.incr c_idle_closed;
        respond fd
          (Wire.error_response ~id:Json.Null ~trace:(next_trace ())
             ~code:Wire.e_idle_timeout
             (Printf.sprintf "session idle for more than %gs; closing"
                rcv_timeout))
    | Error (Frame.Timed_out Frame.Stalled) ->
        (* the peer started a frame and stalled: the request missed
           its deadline and the stream position is untrusted *)
        Metrics.incr c_deadline_expired;
        respond fd
          (Wire.error_response ~id:Json.Null ~trace:(next_trace ())
             ~code:Wire.e_deadline "request not received in time; closing")
    | Error (Frame.Oversized n) ->
        (* the payload was not consumed: answer and close *)
        Metrics.incr c_errors;
        respond fd
          (Wire.error_response ~id:Json.Null ~trace:(next_trace ())
             ~code:Wire.e_oversized
             (Printf.sprintf "request of %d bytes exceeds the %d-byte cap" n
                config.max_request))
    | Error (Frame.Malformed msg) ->
        Metrics.incr c_errors;
        respond fd
          (Wire.error_response ~id:Json.Null ~trace:(next_trace ())
             ~code:Wire.e_malformed_frame msg)
    | Ok payload ->
        let trace = next_trace () in
        Metrics.incr c_requests;
        let t_req = Unix.gettimeofday () in
        let response =
          Span.run ~sink:config.sink ~name:"serve.request" @@ fun sp ->
          Span.add sp "trace" (Sink.Str trace);
          match Wire.parse_request payload with
          | Error (code, msg) ->
              Metrics.incr c_errors;
              Wire.error_response ~id:Json.Null ~trace ~code msg
          | Ok req -> (
              Span.add sp "verb" (Sink.Str (Wire.verb_name req.Wire.verb));
              match Wire.resolve_network ~max_wires:config.max_wires req with
              | Error (code, msg) ->
                  Metrics.incr c_errors;
                  Wire.error_response ~id:req.Wire.id ~trace ~code msg
              | Ok nw -> (
                  Span.add sp "wires" (Sink.Int (Network.wires nw));
                  match dispatch config req nw with
                  | Ok fields -> Wire.ok_response ~id:req.Wire.id ~trace fields
                  | Error (code, msg) ->
                      Metrics.incr c_errors;
                      Wire.error_response ~id:req.Wire.id ~trace ~code msg
                  | exception Invalid_argument _ ->
                      (* the batcher stopped under us: a request racing
                         the drain gets a typed answer, not a dead
                         socket; the connection closes right after *)
                      Metrics.incr c_errors;
                      Wire.error_response ~id:req.Wire.id ~trace
                        ~code:Wire.e_shutting_down "daemon is draining"))
        in
        if
          config.request_deadline > 0.
          && Unix.gettimeofday () -. t_req > config.request_deadline
        then begin
          (* processing overran: the client is told which request
             died and why, then the connection closes — holding the
             session (and its batcher slot) is not an option *)
          Metrics.incr c_deadline_expired;
          Metrics.incr c_errors;
          respond fd
            (Wire.error_response ~id:Json.Null ~trace ~code:Wire.e_deadline
               (Printf.sprintf "request exceeded the %gs deadline; closing"
                  config.request_deadline))
        end
        else begin
          respond fd response;
          loop ()
        end
  in
  (* a vanished peer (EPIPE on write, ECONNRESET on read) or a
     drain-time shutdown of our read side ends the session cleanly *)
  try loop () with Unix.Unix_error _ -> ()
