(* Minimal JSON: just enough for the serve wire protocol (RFC 8259
   subset), dependency-free so lib/serve stays stdlib-only. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- printing --- *)

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.17g" f)
      else Buffer.add_char b '0'
  | Str s -> escape b s
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          write b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape b k;
          Buffer.add_char b ':';
          write b v)
        kvs;
      Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 256 in
  write b j;
  Buffer.contents b

(* --- parsing: plain recursive descent over the string --- *)

exception Parse of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let next () =
    if !pos >= n then fail "unexpected end of input"
    else begin
      let c = s.[!pos] in
      incr pos;
      c
    end
  in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    let g = next () in
    if g <> c then fail (Printf.sprintf "expected %c, got %c" c g)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let utf8_of_code b u =
    (* BMP only; surrogate pairs are combined by the caller *)
    if u < 0x80 then Buffer.add_char b (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
    end
    else if u < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (u lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let hex4 () =
    let v = ref 0 in
    for _ = 1 to 4 do
      let c = next () in
      let d =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad \\u escape"
      in
      v := (!v * 16) + d
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents b
      | '\\' ->
          (match next () with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              let u = hex4 () in
              if u >= 0xD800 && u <= 0xDBFF then begin
                (* high surrogate: require the low half *)
                expect '\\';
                expect 'u';
                let lo = hex4 () in
                if lo < 0xDC00 || lo > 0xDFFF then fail "lone surrogate"
                else
                  utf8_of_code b
                    (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
              end
              else if u >= 0xDC00 && u <= 0xDFFF then fail "lone surrogate"
              else utf8_of_code b u
          | _ -> fail "bad escape");
          go ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
          Buffer.add_char b c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    let digits () =
      let d0 = !pos in
      while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
        incr pos
      done;
      if !pos = d0 then fail "bad number"
    in
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      incr pos;
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        incr pos;
        (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
        digits ()
    | _ -> ());
    let lit = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string lit)
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> Float (float_of_string lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else
          let rec elts acc =
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> elts (v :: acc)
            | ']' -> List (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          elts []
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> members ((k, v) :: acc)
            | '}' -> Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or } in object"
          in
          members []
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Parse (p, msg) -> Error (Printf.sprintf "at byte %d: %s" p msg)
  | exception Failure msg -> Error msg

(* --- accessors --- *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function List xs -> Some xs | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
