(** Per-connection request loop (one thread per connection).

    Reads frames, dispatches requests, writes responses — verify and
    0-1 eval through the {!Batcher} (so concurrent connections
    coalesce into shared engine passes), lint / certify / general
    eval inline. Each request gets a server-assigned trace id
    [c<conn>-r<seq>], present in the response and on the request's
    {!Span} (so a [--trace] capture correlates with client-side
    responses).

    Typed failures: protocol-level errors ([bad-json], [bad-request],
    [bad-network], [unsupported]) are answered and the connection
    lives on; framing violations ([malformed-frame],
    [oversized-request]) are answered best-effort and the connection
    is closed, since the stream position is no longer trustworthy.

    Timeouts close the same way — one typed error response, then the
    connection: a session idle past [idle_timeout] is reaped
    ([idle-timeout]), and a request that stalls mid-frame or whose
    processing overruns [request_deadline] answers
    [deadline-exceeded] — so one stalled client can never hold a
    session thread (and its batcher slot) forever. *)

type config = {
  batcher : Batcher.t;
  max_request : int;  (** frame payload cap, bytes *)
  max_wires : int;  (** width cap — sweeps are [2^wires] *)
  exact_max_wires : int;  (** lint: exact-domain cutoff *)
  idle_timeout : float;
      (** seconds a session may sit between requests before it is
          reaped; [0.] disables the reaper *)
  request_deadline : float;
      (** seconds one request may take, first frame byte to response;
          [0.] disables. Enforced via [SO_RCVTIMEO] plus {!Frame}'s
          per-frame deadline on the read side, and an after-dispatch
          check on the processing side. *)
  sink : Sink.t;
}

val handle : config -> conn:int -> Unix.file_descr -> unit
(** Serve the connection until EOF, a framing violation, a timeout,
    or a peer / shutdown-induced I/O error. Does not close [fd] (the
    caller owns it). Never raises on connection-level I/O failures. *)
