(* Canonical response cache for verify verdicts.

   Keying. Two networks that are wire-permutation isomorphic (their
   0-1 reachable sets coincide up to a channel relabeling) share one
   canonical form (Subsume.canonical_key) — but sharing a *verdict*
   across an isomorphism class is only sound for STANDARD networks
   (no pre permutations, no exchanges, every comparator ascending:
   lo < hi). For a standard network the thresholds are fixed points,
   so the reachable set R always contains the n+1 threshold vectors T
   and the network sorts iff R = T; if R_B = pi(R_A) and R_A = T then
   R_B is a (n+1)-element superset-image of T, hence exactly T, so
   the verdict is a property of the canonical form. A non-standard
   network can reach the same canonical form while failing to sort
   (e.g. a sorter followed by a nontrivial output permutation), so
   those are cached under their exact structural key only.

   Witnesses. A failing 0-1 input is a property of the concrete
   network, not of its isomorphism class, so a canonical hit on a
   negative verdict may only reuse the stored witness when the
   structural keys also match; otherwise the verdict is served
   without a witness (the client can ask [certify] for one).

   Eviction is second-chance (the Engine.Cache policy): hits mark
   entries used; a full cache evicts the first cold entry found,
   giving recently hit entries a second pass through the ring. *)

type entry = {
  sorts : bool;
  witness : int array option;  (* a failing 0-1 input when [not sorts] *)
  skey : string;  (* structural key of the network that produced it *)
}

type slot = { v : entry; mutable used : bool }

type t = {
  m : Mutex.t;
  tbl : (string, slot) Hashtbl.t;
  ring : string Queue.t;
  capacity : int;
}

let c_hits = Metrics.counter "serve.cache.hits"
let c_misses = Metrics.counter "serve.cache.misses"
let c_evictions = Metrics.counter "serve.cache.evictions"

let create ?(capacity = 512) () =
  if capacity < 1 then invalid_arg "Scache.create: capacity < 1";
  { m = Mutex.create (); tbl = Hashtbl.create 64; ring = Queue.create (); capacity }

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let find t key =
  with_lock t @@ fun () ->
  match Hashtbl.find_opt t.tbl key with
  | Some slot ->
      slot.used <- true;
      Metrics.incr c_hits;
      Some slot.v
  | None ->
      Metrics.incr c_misses;
      None

(* find without touching the hit/miss counters (and without marking
   the entry used): the batch worker's duplicate-suppression re-check,
   which must not double-count the miss the session already paid *)
let peek t key =
  with_lock t @@ fun () ->
  Option.map (fun s -> s.v) (Hashtbl.find_opt t.tbl key)

let add t key v =
  with_lock t @@ fun () ->
  if Hashtbl.mem t.tbl key then Hashtbl.replace t.tbl key { v; used = true }
  else begin
    while Hashtbl.length t.tbl >= t.capacity do
      (* the ring holds exactly the table's keys, so this terminates:
         each pass clears one used flag or evicts *)
      let k = Queue.pop t.ring in
      let s = Hashtbl.find t.tbl k in
      if s.used then begin
        s.used <- false;
        Queue.push k t.ring
      end
      else begin
        Hashtbl.remove t.tbl k;
        Metrics.incr c_evictions
      end
    done;
    Hashtbl.replace t.tbl key { v; used = false };
    Queue.push key t.ring
  end

let entries t = with_lock t @@ fun () -> Hashtbl.length t.tbl

(* --- key derivation --- *)

let is_standard nw =
  List.for_all
    (fun lvl ->
      lvl.Network.pre = None
      && List.for_all
           (function
             | Gate.Compare { lo; hi } -> lo < hi
             | Gate.Exchange _ -> false)
           lvl.Network.gates)
    (Network.levels nw)

let structural_key nw = "s:" ^ Network_io.to_string nw

let key nw =
  let w = Network.wires nw in
  if is_standard nw && w >= 2 && w <= 16 then "c:" ^ Subsume.canonical_key nw
  else structural_key nw
