(** The serve request/response model and its JSON binding.

    Each frame carries one JSON object. Requests name a verb
    ([verify] / [certify] / [lint] / [eval]), a network (inline snlb
    text via [network], or a registry sorter via [algo] + [n]), an
    arbitrary [id] echoed back verbatim, and for [eval] an [input]
    list. Responses echo [id], add a server-assigned [trace]
    correlation id and [ok]; failures carry an [error] object with a
    stable machine-readable [code]. The full protocol reference with
    examples lives in README.md. *)

type verb = Verify | Certify | Lint | Eval

val verb_name : verb -> string

type net_spec = Text of string | Algo of { algo : string; n : int }

type request = {
  id : Json.t;  (** echoed verbatim; [Null] when absent *)
  verb : verb;
  net : net_spec;
  input : int array option;  (** [eval] only *)
  want_cert : bool;
      (** [verify]/[certify]/[lint] only: client asked for a
          proof-carrying certificate of the verdict (the response's
          [cert] field, snlb-cert text) *)
}

(** {1 Stable error codes} (append-only) *)

val e_malformed_frame : string
val e_oversized : string
val e_bad_json : string
val e_bad_request : string
val e_bad_network : string
val e_unsupported : string
val e_shutting_down : string

val e_idle_timeout : string
(** the session sat idle past the server's idle timeout; the server
    answers once with this code and closes the connection *)

val e_deadline : string
(** the request ran past the server's per-request deadline (stalled
    mid-frame, or processing overran); sent once, then the connection
    is closed *)

val parse_request : string -> (request, string * string) result
(** Parse one frame payload. [Error (code, message)] uses
    {!e_bad_json} for JSON-level failures and {!e_bad_request} /
    {!e_unsupported} for shape violations. *)

val resolve_network :
  max_wires:int -> request -> (Network.t, string * string) result
(** Build and validate the request's network: inline text through
    {!Network_io.of_string}, registry sorters through
    {!Sorter_registry} (with the power-of-two check), then the serve
    width cap — sweeps are [2^wires], so the cap is the denial-of-
    service guard ({!e_unsupported} beyond it). *)

val ints_json : int array -> Json.t

val ok_response : id:Json.t -> trace:string -> (string * Json.t) list -> Json.t

val error_response :
  id:Json.t -> trace:string -> code:string -> string -> Json.t
