(** Length-prefixed framing for the serve wire protocol.

    One frame is [<len>\n<payload>\n]: the payload's byte length in
    ASCII decimal, a newline, the payload, a trailing newline. The
    trailing newline keeps a captured stream line-oriented (NDJSON
    when payloads are one-line JSON) and detects length disagreement:
    a frame whose terminator is missing is malformed, and the
    connection should be closed rather than resynchronised.

    Reading is buffered per {!reader}; writing is a single
    [Unix.write] loop — callers serialise concurrent writers (the
    session loop owns its connection's write side). *)

type timeout_kind =
  | Idle  (** the timeout fired between frames: an idle session *)
  | Stalled
      (** a frame was underway: the peer stalled mid-frame, or the
          frame ran past the [deadline] *)

type error =
  | Eof  (** clean end of stream between frames *)
  | Oversized of int
      (** declared payload length exceeds the configured cap; the
          payload has {e not} been consumed — close the connection *)
  | Malformed of string  (** framing grammar violation *)
  | Timed_out of timeout_kind
      (** the fd's [SO_RCVTIMEO] expired ([EAGAIN]/[EWOULDBLOCK] on a
          blocking read), or [deadline] elapsed; the stream position
          can no longer be trusted — close the connection *)

type reader

val reader : Unix.file_descr -> reader
(** A buffered frame reader owning its buffer (one per connection). *)

val read : ?deadline:float -> max:int -> reader -> (string, error) result
(** Next payload, or why not. [Eof] only at a clean frame boundary —
    truncation mid-frame is [Malformed]. [deadline] caps the seconds a
    single frame may take from its {e first byte} (idle time between
    frames never counts); it is only checked when a read returns, so
    pair it with [SO_RCVTIMEO] on the fd to bound blocking reads.
    @raise Unix.Unix_error on real I/O failure (not EOF, and not
    [EAGAIN]/[EWOULDBLOCK], which become [Timed_out]). *)

val write : Unix.file_descr -> string -> unit
(** Write one complete frame, retrying short writes.
    @raise Unix.Unix_error e.g. [EPIPE] when the peer is gone (the
    server ignores SIGPIPE so the error surfaces here). *)

val error_text : error -> string
