(* The server driver: listen, accept, drain.

   The accept loop polls with a short select timeout so a Cancel
   token tripped by SIGINT/SIGTERM is noticed promptly; drain then
   (1) stops accepting and removes the endpoint, (2) shuts down the
   read side of every live connection — sessions finish the request
   they already read (in-flight batches flush through the batcher)
   and then see EOF — (3) joins the session threads, and (4) drains
   the batcher. The CLI maps a cancelled run to exit 130. *)

type addr = Unix_path of string | Tcp of int

let addr_text = function
  | Unix_path p -> p
  | Tcp port -> Printf.sprintf "127.0.0.1:%d" port

type config = {
  addr : addr;
  domains : int;  (* per verify sweep *)
  window : float;  (* batch gather window, seconds *)
  max_batch : int;
  cache_capacity : int;  (* 0 disables the response cache *)
  max_request : int;
  max_wires : int;
  exact_max_wires : int;
  idle_timeout : float;  (* idle-session reaper; 0 disables *)
  request_deadline : float;  (* per-request cap; 0 disables *)
}

let default_config addr =
  { addr;
    domains = 1;
    window = 0.002;
    max_batch = 256;
    cache_capacity = 512;
    max_request = 1 lsl 20;
    max_wires = 16;
    exact_max_wires = 12;
    idle_timeout = 300.;
    request_deadline = 30.;
  }

let c_connections = Metrics.counter "serve.connections"

let listen_socket = function
  | Unix_path path ->
      (* remove a stale endpoint, but never a foreign file *)
      (match Unix.lstat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
      | _ -> failwith (path ^ " exists and is not a socket")
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen fd 64;
      fd

let connect = function
  | Unix_path path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
  | Tcp port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      fd

let run ?(sink = Sink.null) ?(ready = fun () -> ()) ~cancel config =
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception Invalid_argument _ -> ());
  match listen_socket config.addr with
  | exception Unix.Unix_error (e, _, _) ->
      Error
        (Printf.sprintf "cannot listen on %s: %s" (addr_text config.addr)
           (Unix.error_message e))
  | exception Failure msg -> Error msg
  | lsock ->
      let cache =
        if config.cache_capacity = 0 then None
        else Some (Scache.create ~capacity:config.cache_capacity ())
      in
      let batcher =
        Batcher.create
          { Batcher.window = config.window;
            max_batch = config.max_batch;
            domains = config.domains;
            cache;
          }
      in
      let session_config =
        { Session.batcher;
          max_request = config.max_request;
          max_wires = config.max_wires;
          exact_max_wires = config.exact_max_wires;
          idle_timeout = config.idle_timeout;
          request_deadline = config.request_deadline;
          sink;
        }
      in
      let m = Mutex.create () in
      let live = ref [] in (* (conn id, fd, thread) of running sessions *)
      let spawn conn fd =
        let th =
          Thread.create
            (fun () ->
              Fun.protect
                ~finally:(fun () ->
                  (try Unix.close fd with Unix.Unix_error _ -> ());
                  Mutex.lock m;
                  live := List.filter (fun (c, _, _) -> c <> conn) !live;
                  Mutex.unlock m)
                (fun () -> Session.handle session_config ~conn fd))
            ()
        in
        Mutex.lock m;
        (* the session may already have removed itself; a stale entry
           only costs drain a no-op shutdown and an instant join *)
        live := (conn, fd, th) :: !live;
        Mutex.unlock m
      in
      Sink.emit sink ~ev:"serve" ~name:"serve.listen"
        [ ("addr", Sink.Str (addr_text config.addr)) ];
      ready ();
      let conn = ref 0 in
      let rec accept_loop () =
        if Cancel.cancelled cancel then ()
        else begin
          (match Unix.select [ lsock ] [] [] 0.2 with
          | [], _, _ -> ()
          | _ :: _, _, _ -> (
              match Unix.accept lsock with
              | fd, _ ->
                  incr conn;
                  Metrics.incr c_connections;
                  spawn !conn fd
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          accept_loop ()
        end
      in
      accept_loop ();
      (* drain: stop accepting, wake blocked session reads, let each
         session flush its in-flight request, then stop the batcher *)
      (try Unix.close lsock with Unix.Unix_error _ -> ());
      (match config.addr with
      | Unix_path path -> (
          try Unix.unlink path with Unix.Unix_error _ -> ())
      | Tcp _ -> ());
      Mutex.lock m;
      let snapshot = !live in
      Mutex.unlock m;
      List.iter
        (fun (_, fd, _) ->
          try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
          with Unix.Unix_error _ -> ())
        snapshot;
      List.iter (fun (_, _, th) -> Thread.join th) snapshot;
      Batcher.drain batcher;
      Sink.emit sink ~ev:"serve" ~name:"serve.drained" [];
      Ok ()
