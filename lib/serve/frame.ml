(* Length-prefixed framing over a file descriptor.

   A frame is the payload's byte length in ASCII decimal, a newline,
   the payload, a newline:

     <len>\n<payload>\n

   The redundant trailing newline keeps the stream greppable/tailable
   (each payload sits on its own line) and doubles as a cheap
   synchronisation check: its absence means the peer and we disagree
   about the length, and the connection is torn down rather than
   resynchronised by guesswork. *)

type timeout_kind =
  | Idle  (* no frame started when the receive timeout fired *)
  | Stalled  (* a frame was underway: mid-frame stall or deadline *)

type error =
  | Eof  (* clean end of stream at a frame boundary *)
  | Oversized of int  (* declared length beyond the configured cap *)
  | Malformed of string  (* anything that breaks the framing grammar *)
  | Timed_out of timeout_kind
      (* the fd's SO_RCVTIMEO fired, or the frame ran past [deadline] *)

let max_header_digits = 12

type reader = {
  fd : Unix.file_descr;
  buf : Bytes.t;
  mutable pos : int;  (* next unread byte in [buf] *)
  mutable len : int;  (* valid bytes in [buf] *)
}

let reader fd = { fd; buf = Bytes.create 65536; pos = 0; len = 0 }

exception Rcv_timeout

(* raises Unix_error only for real I/O failures; EAGAIN/EWOULDBLOCK
   (the fd's SO_RCVTIMEO expiring) becomes Rcv_timeout *)
let refill r =
  if r.pos < r.len then ()
  else begin
    r.pos <- 0;
    r.len <- 0;
    let rec go () =
      match Unix.read r.fd r.buf 0 (Bytes.length r.buf) with
      | k -> r.len <- k
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          raise Rcv_timeout
    in
    go ()
  end

let read_byte r =
  refill r;
  if r.len = 0 then None
  else begin
    let c = Bytes.get r.buf r.pos in
    r.pos <- r.pos + 1;
    Some c
  end

let read ?deadline ~max r =
  (* the deadline clock starts at the frame's first byte, so time a
     session sits idle between requests never counts against it *)
  let started = ref None in
  let note_started () =
    if !started = None then started := Some (Unix.gettimeofday ())
  in
  let check_deadline () =
    match (!started, deadline) with
    | Some t0, Some d when Unix.gettimeofday () -. t0 > d -> raise Rcv_timeout
    | _ -> ()
  in
  (* header: 1..max_header_digits decimal digits then '\n' *)
  let rec header acc digits =
    match read_byte r with
    | None -> if digits = 0 then Error Eof else Error (Malformed "eof in frame header")
    | Some c -> (
        note_started ();
        check_deadline ();
        match c with
        | '\n' ->
            if digits = 0 then Error (Malformed "empty frame header")
            else Ok acc
        | '0' .. '9' ->
            if digits >= max_header_digits then
              Error (Malformed "frame header too long")
            else header ((acc * 10) + (Char.code c - Char.code '0')) (digits + 1)
        | c -> Error (Malformed (Printf.sprintf "bad byte %C in frame header" c)))
  in
  match
    match header 0 0 with
    | Error _ as e -> e
    | Ok len when len > max -> Error (Oversized len)
    | Ok len -> (
        let payload = Bytes.create len in
        let rec fill off =
          if off = len then true
          else begin
            refill r;
            check_deadline ();
            if r.len = 0 then false
            else begin
              let k = min (r.len - r.pos) (len - off) in
              Bytes.blit r.buf r.pos payload off k;
              r.pos <- r.pos + k;
              fill (off + k)
            end
          end
        in
        if not (fill 0) then Error (Malformed "eof in frame payload")
        else
          match read_byte r with
          | Some '\n' -> Ok (Bytes.unsafe_to_string payload)
          | Some _ -> Error (Malformed "missing frame terminator")
          | None -> Error (Malformed "eof before frame terminator"))
  with
  | result -> result
  | exception Rcv_timeout ->
      Error (Timed_out (if !started = None then Idle else Stalled))

let write fd payload =
  let s = Printf.sprintf "%d\n%s\n" (String.length payload) payload in
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let error_text = function
  | Eof -> "eof"
  | Oversized n -> Printf.sprintf "oversized frame (%d bytes)" n
  | Malformed msg -> msg
  | Timed_out Idle -> "receive timeout with no frame underway"
  | Timed_out Stalled -> "receive timeout mid-frame"
