(** xoshiro256** — the default pseudo-random generator of the library.

    All stochastic workloads (random permutations, random comparator
    labelings, sampled inputs) draw from this generator, seeded
    explicitly, so that experiment tables are bit-for-bit reproducible
    across runs. Reference: Blackman & Vigna, "Scrambled linear
    pseudorandom number generators" (TOMS 2021). *)

type t
(** Mutable generator state (256 bits). *)

val of_seed : int -> t
(** [of_seed s] expands the integer seed [s] through {!Splitmix} into a
    full 256-bit state. Distinct seeds give decorrelated streams. *)

val of_splitmix : Splitmix.t -> t
(** [of_splitmix g] draws the 256-bit state from [g], advancing it. *)

val copy : t -> t
(** [copy g] is an independent generator with the same current state. *)

val next : t -> int64
(** [next g] advances [g] and returns 64 pseudo-random bits. *)

val int : t -> bound:int -> int
(** [int g ~bound] is a uniform integer in [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool
(** [bool g] is a uniform boolean. *)

val float : t -> float
(** [float g] is a uniform float in [0, 1). *)

val split : t -> t
(** [split g] derives an independent generator, advancing [g]. *)

val jump : t -> unit
(** [jump g] advances [g] by exactly [2^128] steps of {!next} (the
    standard xoshiro256** jump polynomial). Taking a {!copy} before
    each jump carves one seed into up to [2^128] streams of [2^128]
    non-overlapping outputs each — per-domain substreams derived from
    a single seed with no {!Splitmix} re-seeding, so a population can
    be split across workers while every stream stays disjoint. *)
