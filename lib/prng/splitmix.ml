type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }
let copy g = { state = g.state }

(* The standard SplitMix64 output mix (Stafford's Mix13 variant). *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let next_int g ~bound =
  if bound <= 0 then invalid_arg "Splitmix.next_int: bound must be positive";
  (* Take the high-quality low 62 bits and reduce by modulo with a
     rejection loop to avoid bias. *)
  let mask = Int64.to_int (Int64.shift_right_logical Int64.minus_one 2) in
  let rec go () =
    let r = Int64.to_int (next g) land mask in
    let v = r mod bound in
    (* Reject the final partial block to keep the distribution uniform. *)
    if r - v > mask - bound + 1 then go () else v
  in
  go ()

let split g =
  let seed = next g in
  { state = mix64 seed }
