(** SplitMix64: a tiny, fast, splittable pseudo-random generator.

    Used to seed {!Xoshiro} and to derive independent streams for
    parallel experiment legs. The generator is deterministic: the same
    seed always yields the same stream, which makes every experiment in
    this repository exactly reproducible. Reference: Steele, Lea &
    Flood, "Fast splittable pseudorandom number generators" (OOPSLA'14). *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a fresh generator from a 64-bit seed. *)

val copy : t -> t
(** [copy g] is an independent generator with the same current state. *)

val next : t -> int64
(** [next g] advances [g] and returns 64 pseudo-random bits. *)

val next_int : t -> bound:int -> int
(** [next_int g ~bound] is a uniform integer in [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    independent of the remainder of [g]'s stream. *)
