type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let of_splitmix g =
  { s0 = Splitmix.next g;
    s1 = Splitmix.next g;
    s2 = Splitmix.next g;
    s3 = Splitmix.next g }

let of_seed s = of_splitmix (Splitmix.create (Int64.of_int s))

let copy g = { s0 = g.s0; s1 = g.s1; s2 = g.s2; s3 = g.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next g =
  let result = Int64.mul (rotl (Int64.mul g.s1 5L) 7) 9L in
  let t = Int64.shift_left g.s1 17 in
  g.s2 <- Int64.logxor g.s2 g.s0;
  g.s3 <- Int64.logxor g.s3 g.s1;
  g.s1 <- Int64.logxor g.s1 g.s2;
  g.s0 <- Int64.logxor g.s0 g.s3;
  g.s2 <- Int64.logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let int g ~bound =
  if bound <= 0 then invalid_arg "Xoshiro.int: bound must be positive";
  let mask = Int64.to_int (Int64.shift_right_logical Int64.minus_one 2) in
  let rec go () =
    let r = Int64.to_int (next g) land mask in
    let v = r mod bound in
    if r - v > mask - bound + 1 then go () else v
  in
  go ()

let bool g = Int64.logand (next g) 1L = 1L

let float g =
  (* 53 high bits give a uniform dyadic rational in [0,1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next g) 11) in
  float_of_int bits *. 0x1p-53

let split g =
  let sm = Splitmix.create (next g) in
  of_splitmix sm

(* The canonical xoshiro256** jump polynomial (Blackman & Vigna): xor
   together the states reached at the set bit positions while stepping,
   landing exactly 2^128 steps ahead. *)
let jump_poly =
  [| 0x180ec6d33cfd0abaL; 0xd5a61266f0c9392cL;
     0xa9582618e03fc9aaL; 0x39abdc4529b1661cL |]

let jump g =
  let s0 = ref 0L and s1 = ref 0L and s2 = ref 0L and s3 = ref 0L in
  Array.iter
    (fun word ->
      for b = 0 to 63 do
        if Int64.logand (Int64.shift_right_logical word b) 1L = 1L then begin
          s0 := Int64.logxor !s0 g.s0;
          s1 := Int64.logxor !s1 g.s1;
          s2 := Int64.logxor !s2 g.s2;
          s3 := Int64.logxor !s3 g.s3
        end;
        ignore (next g)
      done)
    jump_poly;
  g.s0 <- !s0;
  g.s1 <- !s1;
  g.s2 <- !s2;
  g.s3 <- !s3
