(** Permutations of [{0, ..., n-1}].

    A permutation is represented by its image array: [to_array p] at
    index [j] is [p(j)]. Values of type {!t} are immutable by
    convention: no function in this library mutates a permutation after
    construction, and [of_array] copies its input.

    The shuffle permutation of the paper is {!shuffle}: for [n = 2^d]
    and [j] with binary representation [j_{d-1} ... j_0], [shuffle n]
    maps [j] to [j_{d-2} ... j_0 j_{d-1}] (rotate-left of the index
    bits). *)

type t

val n : t -> int
(** [n p] is the size of the domain of [p]. *)

val apply : t -> int -> int
(** [apply p j] is [p(j)].
    @raise Invalid_argument if [j] is outside [0, n p). *)

val of_array : int array -> t
(** [of_array a] validates that [a] is a permutation of
    [{0,...,length a - 1}] and copies it.
    @raise Invalid_argument otherwise. *)

val to_array : t -> int array
(** [to_array p] is a fresh copy of the image array of [p]. *)

val identity : int -> t
(** [identity n] is the identity on [{0,...,n-1}]. *)

val shuffle : int -> t
(** [shuffle n] is the perfect-shuffle permutation for [n] a power of
    two: index bits rotate left. @raise Invalid_argument if [n] is not
    a power of two [>= 2]. *)

val unshuffle : int -> t
(** [unshuffle n] is the inverse of [shuffle n]: index bits rotate
    right. *)

val bit_reversal : int -> t
(** [bit_reversal n] reverses the index bits; [n] must be a power of
    two [>= 2]. It is an involution. *)

val bit_complement : int -> int -> t
(** [bit_complement n i] flips index bit [i]; an involution pairing
    each wire with its hypercube neighbour across dimension [i]. *)

val compose : t -> t -> t
(** [compose p q] is the permutation [j -> p (q j)] (apply [q] first).
    @raise Invalid_argument if sizes differ. *)

val inverse : t -> t
(** [inverse p] is the permutation [q] with [compose p q = identity]. *)

val equal : t -> t -> bool
(** Extensional equality. *)

val is_identity : t -> bool

val random : Xoshiro.t -> int -> t
(** [random rng n] is a uniformly random permutation of size [n]
    (Fisher–Yates). *)

val permute_array : t -> 'a array -> 'a array
(** [permute_array p a] is the array [b] with [b.(p j) = a.(j)]: the
    element in position [j] moves to position [p(j)], matching the
    paper's "register contents are permuted according to Pi". *)

val cycles : t -> int list list
(** [cycles p] is the cycle decomposition of [p]; each cycle starts at
    its smallest element, cycles sorted by first element. Fixed points
    appear as singleton cycles. *)

val order : t -> int
(** [order p] is the multiplicative order of [p] (lcm of cycle
    lengths). For [shuffle (2^d)] this is [d]. *)

val pp : Format.formatter -> t -> unit
(** [pp fmt p] prints the image array, e.g. [[0 2 1 3]]. *)
