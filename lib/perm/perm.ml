type t = int array

let n p = Array.length p

let apply p j =
  if j < 0 || j >= Array.length p then
    invalid_arg (Printf.sprintf "Perm.apply: index %d out of [0,%d)" j (Array.length p));
  p.(j)

let validate a =
  let m = Array.length a in
  let seen = Array.make m false in
  Array.iter
    (fun v ->
      if v < 0 || v >= m then
        invalid_arg (Printf.sprintf "Perm.of_array: value %d out of [0,%d)" v m)
      else if seen.(v) then
        invalid_arg (Printf.sprintf "Perm.of_array: value %d appears twice" v)
      else seen.(v) <- true)
    a

let of_array a =
  validate a;
  Array.copy a

let to_array p = Array.copy p

let identity m = Array.init m (fun j -> j)

let check_pow2 fn m =
  if not (Bitops.is_power_of_two m) || m < 2 then
    invalid_arg (Printf.sprintf "Perm.%s: %d is not a power of two >= 2" fn m)

let shuffle m =
  check_pow2 "shuffle" m;
  let d = Bitops.log2_exact m in
  Array.init m (fun j -> Bitops.rotate_left ~width:d j)

let unshuffle m =
  check_pow2 "unshuffle" m;
  let d = Bitops.log2_exact m in
  Array.init m (fun j -> Bitops.rotate_right ~width:d j)

let bit_reversal m =
  check_pow2 "bit_reversal" m;
  let d = Bitops.log2_exact m in
  Array.init m (fun j -> Bitops.reverse_bits ~width:d j)

let bit_complement m i =
  check_pow2 "bit_complement" m;
  let d = Bitops.log2_exact m in
  if i < 0 || i >= d then
    invalid_arg (Printf.sprintf "Perm.bit_complement: bit %d out of [0,%d)" i d);
  Array.init m (fun j -> Bitops.flip_bit j i)

let compose p q =
  if Array.length p <> Array.length q then
    invalid_arg "Perm.compose: size mismatch";
  Array.init (Array.length p) (fun j -> p.(q.(j)))

let inverse p =
  let m = Array.length p in
  let inv = Array.make m 0 in
  for j = 0 to m - 1 do
    inv.(p.(j)) <- j
  done;
  inv

let equal p q = p = q

let is_identity p =
  let rec go j = j = Array.length p || (p.(j) = j && go (j + 1)) in
  go 0

let random rng m =
  let a = Array.init m (fun j -> j) in
  for j = m - 1 downto 1 do
    let k = Xoshiro.int rng ~bound:(j + 1) in
    let tmp = a.(j) in
    a.(j) <- a.(k);
    a.(k) <- tmp
  done;
  a

let permute_array p a =
  if Array.length p <> Array.length a then
    invalid_arg "Perm.permute_array: size mismatch";
  let b = Array.make (Array.length a) a.(0) in
  Array.iteri (fun j v -> b.(p.(j)) <- v) a;
  b

let cycles p =
  let m = Array.length p in
  let seen = Array.make m false in
  let out = ref [] in
  for start = 0 to m - 1 do
    if not seen.(start) then begin
      let rec walk acc j =
        if seen.(j) then List.rev acc
        else begin
          seen.(j) <- true;
          walk (j :: acc) p.(j)
        end
      in
      out := walk [] start :: !out
    end
  done;
  List.rev !out

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let lcm a b = a / gcd a b * b

let order p =
  List.fold_left (fun acc c -> lcm acc (List.length c)) 1 (cycles p)

let pp fmt p =
  Format.fprintf fmt "[";
  Array.iteri
    (fun j v -> if j = 0 then Format.fprintf fmt "%d" v else Format.fprintf fmt " %d" v)
    p;
  Format.fprintf fmt "]"
