type stage = { perm : int array; ops : string }
type cover = { cite : int; pi : int array }

type domain =
  | Reach_sets of int list array
  | Bounds_leq of (int * int) list array

type claim =
  | Dead of { level : int; gate : int }
  | Redundant of { level : int; gate : int }

type t =
  | Sortedness of { network : Network.t; domain : domain }
  | Refutation of { network : Network.t; witness : int }
  | Dead_gates of {
      network : Network.t;
      sets : int list array;
      claims : claim list;
    }
  | Lower_bound of {
      n : int;
      stages : stage list;
      input : int array;
      twin : int array;
      wire0 : int;
      wire1 : int;
      value0 : int;
      value1 : int;
      m_set : int list;
    }
  | Exhaustion of {
      n : int;
      max_depth : int;
      frontiers : int list list array;
      covers : cover list array;
    }

type error = { code : string; where : string; reason : string }

(* stable error codes (append-only, mirrored in README) *)
let codes =
  [
    ("CRT001", "certificate text cannot be parsed");
    ("CRT002", "embedded network invalid");
    ("CRT101", "certificate structure invalid (missing/duplicate directive)");
    ("CRT102", "value out of range (mask, wire, level, permutation)");
    ("CRT201", "annotated set does not contain a level's image");
    ("CRT202", "final annotation does not prove sortedness");
    ("CRT203", "order fact not derivable by the bounds inference rules");
    ("CRT211", "refutation witness evaluates to a sorted output");
    ("CRT221", "dead/redundant claim not justified by the annotated set");
    ("CRT231", "lower-bound transcript structurally illegal");
    ("CRT232", "lower-bound witness values were compared");
    ("CRT233", "twin outputs differ beyond the witness swap");
    ("CRT234", "fooling-pair outputs are both sorted");
    ("CRT235", "lower-bound M-set values were compared");
    ("CRT241", "exhaustion cover cites an unavailable frontier entry");
    ("CRT242", "exhaustion cover permutation does not embed the cited state");
    ("CRT243", "a sorted state contradicts the claimed exhaustion");
    ("CRT244", "exhaustion cover count does not match the expansion");
  ]

let err code where fmt =
  Printf.ksprintf (fun reason -> Error { code; where; reason }) fmt

let kind_name = function
  | Sortedness _ -> "sortedness"
  | Refutation _ -> "refutation"
  | Dead_gates _ -> "dead"
  | Lower_bound _ -> "lower-bound"
  | Exhaustion _ -> "exhaustion"

(* --- mask primitives (the checker's own, not the engine's) --- *)

let is_sorted_mask ~n m =
  let k = Bitops.popcount m in
  m = ((1 lsl k) - 1) lsl (n - k)

let bit m w = (m lsr w) land 1

let permute_mask pi m =
  let img = ref 0 in
  let w = ref m in
  while !w <> 0 do
    let c = Bitops.floor_log2 (!w land - !w) in
    img := !img lor (1 lsl pi.(c));
    w := !w land (!w - 1)
  done;
  !img

let apply_perm_mask ~n p m =
  let img = ref 0 in
  for w = 0 to n - 1 do
    if bit m w = 1 then img := !img lor (1 lsl Perm.apply p w)
  done;
  !img

let apply_gate_mask m g =
  match g with
  | Gate.Compare { lo; hi } ->
      if bit m lo = 1 && bit m hi = 0 then m lxor ((1 lsl lo) lor (1 lsl hi))
      else m
  | Gate.Exchange { a; b } ->
      if bit m a <> bit m b then m lxor ((1 lsl a) lor (1 lsl b)) else m

let apply_level_mask ~n (lvl : Network.level) m =
  let m =
    match lvl.Network.pre with
    | None -> m
    | Some p -> apply_perm_mask ~n p m
  in
  List.fold_left apply_gate_mask m lvl.Network.gates

let eval_mask nw m =
  let n = Network.wires nw in
  List.fold_left (fun m lvl -> apply_level_mask ~n lvl m) m (Network.levels nw)

(* ascending comparator layer on a mask: pair (i, j) with i < j puts
   the minimum bit on wire i *)
let apply_matching_mask pairs m =
  List.fold_left
    (fun m (i, j) ->
      if bit m i = 1 && bit m j = 0 then m lxor ((1 lsl i) lor (1 lsl j))
      else m)
    m pairs

let all_matchings ~n =
  if n < 2 || n > 12 then invalid_arg "Cert.all_matchings: n must be in [2, 12]";
  let rec gen = function
    | [] -> [ [] ]
    | c :: rest ->
        let skip = gen rest in
        let paired =
          List.concat_map
            (fun d ->
              List.map
                (fun m -> (c, d) :: m)
                (gen (List.filter (fun x -> x <> d) rest)))
            rest
        in
        skip @ paired
  in
  List.sort compare (List.filter (fun m -> m <> []) (gen (List.init n Fun.id)))

let is_permutation a =
  let n = Array.length a in
  let seen = Array.make n false in
  Array.for_all
    (fun v ->
      if v < 0 || v >= n || seen.(v) then false
      else begin
        seen.(v) <- true;
        true
      end)
    a

(* --- printing --- *)

let add_ints b l =
  List.iter (fun v -> Buffer.add_string b (" " ^ string_of_int v)) l

let add_network b nw =
  Buffer.add_string b "network\n";
  Buffer.add_string b (Network_io.to_string nw);
  Buffer.add_string b "end-network\n"

let add_sets b sets =
  Array.iteri
    (fun l ms ->
      Buffer.add_string b (Printf.sprintf "set %d" (l + 1));
      add_ints b ms;
      Buffer.add_char b '\n')
    sets

let to_string c =
  let b = Buffer.create 1024 in
  Buffer.add_string b "snlb-cert 1\n";
  Buffer.add_string b ("kind " ^ kind_name c ^ "\n");
  (match c with
  | Sortedness { network; domain } -> (
      add_network b network;
      match domain with
      | Reach_sets sets ->
          Buffer.add_string b "domain reach\n";
          add_sets b sets
      | Bounds_leq lvls ->
          Buffer.add_string b "domain bounds\n";
          Array.iteri
            (fun l pairs ->
              Buffer.add_string b (Printf.sprintf "leq %d" (l + 1));
              List.iter
                (fun (i, j) ->
                  Buffer.add_string b (Printf.sprintf " %d %d" i j))
                pairs;
              Buffer.add_char b '\n')
            lvls)
  | Refutation { network; witness } ->
      add_network b network;
      Buffer.add_string b (Printf.sprintf "witness %d\n" witness)
  | Dead_gates { network; sets; claims } ->
      add_network b network;
      add_sets b sets;
      List.iter
        (function
          | Dead { level; gate } ->
              Buffer.add_string b (Printf.sprintf "dead %d %d\n" level gate)
          | Redundant { level; gate } ->
              Buffer.add_string b
                (Printf.sprintf "redundant %d %d\n" level gate))
        claims
  | Lower_bound { n; stages; input; twin; wire0; wire1; value0; value1; m_set }
    ->
      Buffer.add_string b (Printf.sprintf "n %d\n" n);
      List.iter
        (fun st ->
          Buffer.add_string b "stage";
          add_ints b (Array.to_list st.perm);
          Buffer.add_string b (" " ^ st.ops ^ "\n"))
        stages;
      Buffer.add_string b "input";
      add_ints b (Array.to_list input);
      Buffer.add_char b '\n';
      Buffer.add_string b "twin";
      add_ints b (Array.to_list twin);
      Buffer.add_char b '\n';
      Buffer.add_string b (Printf.sprintf "wires %d %d\n" wire0 wire1);
      Buffer.add_string b
        (Printf.sprintf "values %d %d\n" value0 value1);
      Buffer.add_string b "mset";
      add_ints b m_set;
      Buffer.add_char b '\n'
  | Exhaustion { n; max_depth; frontiers; covers } ->
      Buffer.add_string b (Printf.sprintf "n %d\n" n);
      Buffer.add_string b (Printf.sprintf "max-depth %d\n" max_depth);
      Array.iteri
        (fun l states ->
          Buffer.add_string b (Printf.sprintf "level %d\n" (l + 1));
          List.iter
            (fun ms ->
              Buffer.add_string b "state";
              add_ints b ms;
              Buffer.add_char b '\n')
            states;
          List.iter
            (fun cv ->
              Buffer.add_string b (Printf.sprintf "cover %d" cv.cite);
              add_ints b (Array.to_list cv.pi);
              Buffer.add_char b '\n')
            covers.(l))
        frontiers);
  Buffer.add_string b "end-cert\n";
  Buffer.contents b

(* --- parsing --- *)

exception Fail of error

let fail code lineno fmt =
  Printf.ksprintf
    (fun reason ->
      raise (Fail { code; where = Printf.sprintf "line %d" lineno; reason }))
    fmt

let parse text =
  let lines = Array.of_list (String.split_on_char '\n' text) in
  let nlines = Array.length lines in
  let int_of lineno s =
    match int_of_string_opt s with
    | Some v -> v
    | None -> fail "CRT001" lineno "expected integer, got %S" s
  in
  let tokens_of line =
    String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
  in
  let i = ref 0 in
  let skippable line = line = "" || line.[0] = '#' in
  let skip_blanks () =
    while !i < nlines && skippable (String.trim lines.(!i)) do
      incr i
    done
  in
  (* collect one certificate's directives: (lineno, tokens) in order,
     with at most one verbatim network block *)
  let read_body () =
    let dirs = ref [] in
    let net : (int * string) option ref = ref None in
    let closed = ref false in
    while not !closed do
      if !i >= nlines then
        fail "CRT001" nlines "unterminated certificate (missing end-cert)";
      let lineno = !i + 1 in
      let line = String.trim lines.(!i) in
      incr i;
      if skippable line then ()
      else if line = "end-cert" then closed := true
      else if line = "network" then begin
        if !net <> None then fail "CRT101" lineno "duplicate network block";
        let b = Buffer.create 256 in
        let net_done = ref false in
        while not !net_done do
          if !i >= nlines then
            fail "CRT001" lineno "unterminated network block";
          let raw = lines.(!i) in
          incr i;
          if String.trim raw = "end-network" then net_done := true
          else begin
            Buffer.add_string b raw;
            Buffer.add_char b '\n'
          end
        done;
        net := Some (lineno, Buffer.contents b)
      end
      else dirs := (lineno, tokens_of line) :: !dirs
    done;
    (List.rev !dirs, !net)
  in
  let parse_network kind_line net =
    match net with
    | None -> fail "CRT101" kind_line "missing network block"
    | Some (lineno, text) -> (
        match Network_io.of_string text with
        | Ok nw -> nw
        | Error e -> fail "CRT002" lineno "embedded network invalid: %s" e)
  in
  (* sequential "set L ..." / "leq L ..." / "level L" numbering *)
  let expect_seq lineno what expected l =
    if l <> expected then
      fail "CRT101" lineno "%s %d out of order (expected %s %d)" what l what
        expected
  in
  let assemble kind_line kind (dirs, net) =
    let unknown lineno tok =
      fail "CRT001" lineno "unrecognised directive %S in a %s certificate" tok
        kind
    in
    match kind with
    | "sortedness" ->
        let network = parse_network kind_line net in
        let dom = ref None in
        let sets = ref [] and leqs = ref [] in
        List.iter
          (fun (lineno, toks) ->
            match toks with
            | [ "domain"; ("reach" | "bounds") ] when !dom <> None ->
                fail "CRT101" lineno "duplicate domain directive"
            | [ "domain"; ("reach" | "bounds" as d) ] -> dom := Some d
            | [ "domain"; d ] -> fail "CRT001" lineno "unknown domain %S" d
            | "set" :: l :: ms ->
                expect_seq lineno "set" (List.length !sets + 1) (int_of lineno l);
                sets := List.map (int_of lineno) ms :: !sets
            | "leq" :: l :: ps ->
                expect_seq lineno "leq" (List.length !leqs + 1) (int_of lineno l);
                let rec pairs = function
                  | [] -> []
                  | [ _ ] ->
                      fail "CRT001" lineno "leq needs an even number of wires"
                  | a :: b :: rest ->
                      (int_of lineno a, int_of lineno b) :: pairs rest
                in
                leqs := pairs ps :: !leqs
            | tok :: _ -> unknown lineno tok
            | [] -> ())
          dirs;
        let domain =
          match !dom with
          | Some "reach" ->
              if !leqs <> [] then
                fail "CRT101" kind_line "leq lines in a reach-domain certificate";
              Reach_sets (Array.of_list (List.rev !sets))
          | Some "bounds" ->
              if !sets <> [] then
                fail "CRT101" kind_line "set lines in a bounds-domain certificate";
              Bounds_leq (Array.of_list (List.rev !leqs))
          | _ -> fail "CRT101" kind_line "missing domain directive"
        in
        Sortedness { network; domain }
    | "refutation" ->
        let network = parse_network kind_line net in
        let witness = ref None in
        List.iter
          (fun (lineno, toks) ->
            match toks with
            | [ "witness"; _ ] when !witness <> None ->
                fail "CRT101" lineno "duplicate witness directive"
            | [ "witness"; m ] -> witness := Some (int_of lineno m)
            | tok :: _ -> unknown lineno tok
            | [] -> ())
          dirs;
        (match !witness with
        | Some witness -> Refutation { network; witness }
        | None -> fail "CRT101" kind_line "missing witness directive")
    | "dead" ->
        let network = parse_network kind_line net in
        let sets = ref [] and claims = ref [] in
        List.iter
          (fun (lineno, toks) ->
            match toks with
            | "set" :: l :: ms ->
                expect_seq lineno "set" (List.length !sets + 1) (int_of lineno l);
                sets := List.map (int_of lineno) ms :: !sets
            | [ ("dead" | "redundant" as kw); l; g ] ->
                let level = int_of lineno l and gate = int_of lineno g in
                claims :=
                  (if kw = "dead" then Dead { level; gate }
                   else Redundant { level; gate })
                  :: !claims
            | tok :: _ -> unknown lineno tok
            | [] -> ())
          dirs;
        if !claims = [] then
          fail "CRT101" kind_line "a dead certificate needs at least one claim";
        Dead_gates
          { network;
            sets = Array.of_list (List.rev !sets);
            claims = List.rev !claims }
    | "lower-bound" ->
        if net <> None then
          fail "CRT101" kind_line
            "lower-bound certificates carry stages, not a network block";
        let n = ref None in
        let need_n lineno =
          match !n with
          | Some n -> n
          | None -> fail "CRT101" lineno "n must be declared first"
        in
        let stages = ref [] in
        let input = ref None and twin = ref None in
        let wires = ref None and values = ref None and mset = ref None in
        let ints lineno what expected toks =
          let l = List.map (int_of lineno) toks in
          if List.length l <> expected then
            fail "CRT001" lineno "%s needs %d integers, got %d" what expected
              (List.length l);
          l
        in
        let once lineno what r v =
          if !r <> None then fail "CRT101" lineno "duplicate %s directive" what;
          r := Some v
        in
        List.iter
          (fun (lineno, toks) ->
            match toks with
            | [ "n"; v ] -> once lineno "n" n (int_of lineno v)
            | "stage" :: rest ->
                let nn = need_n lineno in
                if List.length rest <> nn + 1 then
                  fail "CRT001" lineno
                    "stage needs %d permutation images and an op string" nn;
                let rec split k acc = function
                  | rest when k = 0 -> (List.rev acc, rest)
                  | x :: rest -> split (k - 1) (x :: acc) rest
                  | [] -> assert false
                in
                let imgs, ops = split nn [] rest in
                let ops =
                  match ops with [ o ] -> o | _ -> assert false
                in
                String.iter
                  (fun ch ->
                    match ch with
                    | '+' | '-' | '0' | '1' -> ()
                    | _ -> fail "CRT001" lineno "bad op character %C" ch)
                  ops;
                stages :=
                  { perm = Array.of_list (List.map (int_of lineno) imgs); ops }
                  :: !stages
            | "input" :: rest ->
                once lineno "input" input
                  (Array.of_list (ints lineno "input" (need_n lineno) rest))
            | "twin" :: rest ->
                once lineno "twin" twin
                  (Array.of_list (ints lineno "twin" (need_n lineno) rest))
            | "wires" :: rest ->
                once lineno "wires" wires (ints lineno "wires" 2 rest)
            | "values" :: rest ->
                once lineno "values" values (ints lineno "values" 2 rest)
            | "mset" :: rest -> once lineno "mset" mset (List.map (int_of lineno) rest)
            | tok :: _ -> unknown lineno tok
            | [] -> ())
          dirs;
        let req what = function
          | Some v -> v
          | None -> fail "CRT101" kind_line "missing %s directive" what
        in
        let w0, w1 =
          match req "wires" !wires with [ a; b ] -> (a, b) | _ -> assert false
        in
        let v0, v1 =
          match req "values" !values with [ a; b ] -> (a, b) | _ -> assert false
        in
        Lower_bound
          { n = req "n" !n;
            stages = List.rev !stages;
            input = req "input" !input;
            twin = req "twin" !twin;
            wire0 = w0;
            wire1 = w1;
            value0 = v0;
            value1 = v1;
            m_set = req "mset" !mset }
    | "exhaustion" ->
        if net <> None then
          fail "CRT101" kind_line
            "exhaustion certificates carry frontiers, not a network block";
        let n = ref None and depth = ref None in
        let need lineno what = function
          | Some v -> v
          | None -> fail "CRT101" lineno "%s must be declared first" what
        in
        (* blocks built in reverse; the current block is the head *)
        let fronts : int list list list ref = ref [] in
        let covs : cover list list ref = ref [] in
        List.iter
          (fun (lineno, toks) ->
            match toks with
            | [ "n"; v ] ->
                if !n <> None then fail "CRT101" lineno "duplicate n directive";
                n := Some (int_of lineno v)
            | [ "max-depth"; v ] ->
                if !depth <> None then
                  fail "CRT101" lineno "duplicate max-depth directive";
                depth := Some (int_of lineno v)
            | [ "level"; l ] ->
                ignore (need lineno "max-depth" !depth);
                expect_seq lineno "level" (List.length !fronts + 1)
                  (int_of lineno l);
                fronts := [] :: !fronts;
                covs := [] :: !covs
            | "state" :: ms -> (
                match !fronts with
                | [] -> fail "CRT101" lineno "state outside a level block"
                | blk :: rest ->
                    fronts := (List.map (int_of lineno) ms :: blk) :: rest)
            | "cover" :: cite :: pi -> (
                match !covs with
                | [] -> fail "CRT101" lineno "cover outside a level block"
                | blk :: rest ->
                    let nn = need lineno "n" !n in
                    if List.length pi <> nn then
                      fail "CRT001" lineno
                        "cover needs a %d-wire permutation, got %d entries" nn
                        (List.length pi);
                    let cv =
                      { cite = int_of lineno cite;
                        pi = Array.of_list (List.map (int_of lineno) pi) }
                    in
                    covs := (cv :: blk) :: rest)
            | tok :: _ -> unknown lineno tok
            | [] -> ())
          dirs;
        let req what = function
          | Some v -> v
          | None -> fail "CRT101" kind_line "missing %s directive" what
        in
        let max_depth = req "max-depth" !depth in
        let blocks = List.length !fronts in
        if max_depth >= 1 && blocks <> max_depth - 1 then
          fail "CRT101" kind_line "max-depth %d needs %d level blocks, got %d"
            max_depth (max_depth - 1) blocks;
        Exhaustion
          { n = req "n" !n;
            max_depth;
            frontiers =
              Array.of_list (List.rev_map List.rev !fronts);
            covers = Array.of_list (List.rev_map List.rev !covs) }
    | k -> fail "CRT001" kind_line "unknown certificate kind %S" k
  in
  try
    let certs = ref [] in
    skip_blanks ();
    while !i < nlines do
      let lineno = !i + 1 in
      (match tokens_of (String.trim lines.(!i)) with
      | [ "snlb-cert"; "1" ] -> incr i
      | [ "snlb-cert"; v ] ->
          fail "CRT001" lineno "unsupported certificate format version %S" v
      | _ -> fail "CRT001" lineno "expected snlb-cert 1 header");
      skip_blanks ();
      let kind_line = !i + 1 in
      let kind =
        if !i >= nlines then fail "CRT001" kind_line "missing kind directive"
        else
          match tokens_of (String.trim lines.(!i)) with
          | [ "kind"; k ] ->
              incr i;
              k
          | _ -> fail "CRT001" kind_line "expected kind directive"
      in
      certs := assemble kind_line kind (read_body ()) :: !certs;
      skip_blanks ()
    done;
    if !certs = [] then
      Error
        { code = "CRT001"; where = "line 1"; reason = "empty certificate file" }
    else Ok (List.rev !certs)
  with Fail e -> Error e

(* --- checking --- *)

let ( let* ) = Result.bind

let check_masks ~n where masks =
  let total = 1 lsl n in
  let rec go = function
    | [] -> Ok ()
    | m :: rest ->
        if m < 0 || m >= total then
          err "CRT102" where "mask %d outside [0, %d)" m total
        else go rest
  in
  go masks

let rec first_error f = function
  | [] -> Ok ()
  | x :: rest ->
      let* () = f x in
      first_error f rest

(* sortedness, reach domain: each annotated set must contain the image
   of the previous one through its level; the final set must hold only
   sorted vectors. Any chain with those two properties over-approximates
   the true reachable sets starting from all 2^n inputs, so the verdict
   is sound even if the annotations are loose. *)
let check_reach_chain network sets ~on_level =
  let n = Network.wires network in
  let* () =
    if n > 16 then
      err "CRT102" "network" "reach certificates support at most 16 wires"
    else Ok ()
  in
  let levels = Network.levels network in
  let* () =
    if Array.length sets <> List.length levels then
      err "CRT101" "set"
        "network has %d levels but the certificate annotates %d"
        (List.length levels) (Array.length sets)
    else Ok ()
  in
  let total = 1 lsl n in
  let cur = ref (List.init total Fun.id) in
  let li = ref 0 in
  let* () =
    first_error
      (fun (lvl : Network.level) ->
        let l = !li + 1 in
        let where = Printf.sprintf "set %d" l in
        let claimed = sets.(!li) in
        incr li;
        let* () = check_masks ~n where claimed in
        let tbl = Bytes.make total '\000' in
        List.iter (fun m -> Bytes.set tbl m '\001') claimed;
        let* () = on_level ~level:l ~entry:!cur ~lvl in
        let* () =
          first_error
            (fun m ->
              let m' = apply_level_mask ~n lvl m in
              if Bytes.get tbl m' = '\000' then
                err "CRT201" where
                  "level %d maps mask %d to %d, outside the annotation" l m m'
              else Ok ())
            !cur
        in
        cur := claimed;
        Ok ())
      levels
  in
  Ok !cur

let check_sortedness_reach network sets =
  let n = Network.wires network in
  let* final =
    check_reach_chain network sets ~on_level:(fun ~level:_ ~entry:_ ~lvl:_ ->
        Ok ())
  in
  first_error
    (fun m ->
      if is_sorted_mask ~n m then Ok ()
      else
        err "CRT202" "final set" "unsorted mask %d survives the last level" m)
    final

(* sortedness, bounds domain: re-derive each level's claimed order
   facts with the pure min/max rules, starting from only the previous
   level's claims (weakening is sound — fewer facts derive fewer). *)
let check_sortedness_bounds network lvls =
  let n = Network.wires network in
  let levels = Network.levels network in
  let* () =
    if Array.length lvls <> List.length levels then
      err "CRT101" "leq"
        "network has %d levels but the certificate annotates %d"
        (List.length levels) (Array.length lvls)
    else Ok ()
  in
  let r = Array.make_matrix n n false in
  let reset claimed =
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        r.(i).(j) <- i = j
      done
    done;
    List.iter (fun (i, j) -> r.(i).(j) <- true) claimed
  in
  reset [];
  let transfer_compare a b =
    (* a <- min, b <- max; snapshot first, entries overlap *)
    let row_a = Array.copy r.(a) and row_b = Array.copy r.(b) in
    let col_a = Array.init n (fun c -> r.(c).(a))
    and col_b = Array.init n (fun c -> r.(c).(b)) in
    for c = 0 to n - 1 do
      if c <> a && c <> b then begin
        r.(c).(a) <- col_a.(c) && col_b.(c);
        r.(a).(c) <- row_a.(c) || row_b.(c);
        r.(c).(b) <- col_a.(c) || col_b.(c);
        r.(b).(c) <- row_a.(c) && row_b.(c)
      end
    done;
    r.(a).(b) <- true;
    r.(b).(a) <- row_a.(b) && col_a.(b)
  in
  let swap_wires a b =
    let t = r.(a) in
    r.(a) <- r.(b);
    r.(b) <- t;
    for c = 0 to n - 1 do
      let x = r.(c).(a) in
      r.(c).(a) <- r.(c).(b);
      r.(c).(b) <- x
    done
  in
  let transfer_perm p =
    let img = Perm.to_array p in
    let r' = Array.make_matrix n n false in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if r.(i).(j) then r'.(img.(i)).(img.(j)) <- true
      done
    done;
    for i = 0 to n - 1 do
      Array.blit r'.(i) 0 r.(i) 0 n
    done
  in
  let li = ref 0 in
  let* () =
    first_error
      (fun (lvl : Network.level) ->
        let l = !li + 1 in
        let where = Printf.sprintf "leq %d" l in
        let claimed = lvls.(!li) in
        incr li;
        (match lvl.Network.pre with
        | None -> ()
        | Some p -> transfer_perm p);
        List.iter
          (function
            | Gate.Compare { lo; hi } -> transfer_compare lo hi
            | Gate.Exchange { a; b } -> swap_wires a b)
          lvl.Network.gates;
        let* () =
          first_error
            (fun (i, j) ->
              if i < 0 || i >= n || j < 0 || j >= n then
                err "CRT102" where "wire pair (%d, %d) outside [0, %d)" i j n
              else if not r.(i).(j) then
                err "CRT203" where
                  "claimed fact %d <= %d is not derivable at level %d" i j l
              else Ok ())
            claimed
        in
        reset claimed;
        Ok ())
      levels
  in
  let missing = ref None in
  for w = n - 2 downto 0 do
    if not r.(w).(w + 1) then missing := Some w
  done;
  match !missing with
  | None -> Ok ()
  | Some w ->
      err "CRT202" "final leq" "fact %d <= %d is not claimed at the last level"
        w (w + 1)

let check_refutation network witness =
  let n = Network.wires network in
  let* () =
    if n > 20 then
      err "CRT102" "network" "refutation certificates support at most 20 wires"
    else Ok ()
  in
  let* () =
    if witness < 0 || witness >= 1 lsl n then
      err "CRT102" "witness" "witness %d outside [0, %d)" witness (1 lsl n)
    else Ok ()
  in
  let out = eval_mask network witness in
  if is_sorted_mask ~n out then
    err "CRT211" "witness" "input %d evaluates to sorted output %d" witness out
  else Ok ()

let check_dead network sets claims =
  let n = Network.wires network in
  let* () =
    if n > 16 then
      err "CRT102" "network" "dead certificates support at most 16 wires"
    else Ok ()
  in
  let levels = Network.levels network in
  let nlevels = List.length levels in
  let* () =
    if Array.length sets <> nlevels then
      err "CRT101" "set"
        "network has %d levels but the certificate annotates %d" nlevels
        (Array.length sets)
    else Ok ()
  in
  let* () =
    first_error
      (fun cl ->
        let level = match cl with Dead { level; _ } | Redundant { level; _ } -> level in
        if level < 1 || level > nlevels then
          err "CRT102" "claim" "claim level %d outside [1, %d]" level nlevels
        else Ok ())
      claims
  in
  let total = 1 lsl n in
  let cur = ref (List.init total Fun.id) in
  let li = ref 0 in
  first_error
    (fun (lvl : Network.level) ->
      let l = !li + 1 in
      let where = Printf.sprintf "set %d" l in
      let claimed = sets.(!li) in
      incr li;
      let* () = check_masks ~n where claimed in
      (* gates are classified against the level-entry state, after the
         permutation and before any gate fires *)
      let entry =
        match lvl.Network.pre with
        | None -> !cur
        | Some p -> List.map (apply_perm_mask ~n p) !cur
      in
      let gates = Array.of_list lvl.Network.gates in
      let* () =
        first_error
          (fun cl ->
            let level, gate, red =
              match cl with
              | Dead { level; gate } -> (level, gate, false)
              | Redundant { level; gate } -> (level, gate, true)
            in
            if level <> l then Ok ()
            else if gate < 0 || gate >= Array.length gates then
              err "CRT102" "claim" "level %d has no gate %d" l gate
            else
              let g = gates.(gate) in
              let a, b = Gate.wires g in
              let agree = List.for_all (fun m -> bit m a = bit m b) entry in
              if red then
                if agree then Ok ()
                else
                  err "CRT221" "claim"
                    "redundant claim at level %d gate %d: wires %d and %d \
                     differ on a reachable vector"
                    l gate a b
              else
                let dead =
                  match g with
                  | Gate.Compare { lo; hi } ->
                      List.for_all
                        (fun m -> not (bit m lo = 1 && bit m hi = 0))
                        entry
                  | Gate.Exchange _ -> agree
                in
                if dead then Ok ()
                else
                  err "CRT221" "claim"
                    "dead claim at level %d gate %d: the gate exchanges a \
                     reachable vector"
                    l gate)
          claims
      in
      let tbl = Bytes.make total '\000' in
      List.iter (fun m -> Bytes.set tbl m '\001') claimed;
      let* () =
        first_error
          (fun m ->
            let m' = List.fold_left apply_gate_mask m lvl.Network.gates in
            if Bytes.get tbl m' = '\000' then
              err "CRT201" where
                "level %d maps mask %d to %d, outside the annotation" l m m'
            else Ok ())
          entry
      in
      cur := claimed;
      Ok ())
    levels

let check_lower_bound ~n ~stages ~input ~twin ~wire0 ~wire1 ~value0 ~value1 ~m_set =
  let n = n in
  let* () =
    if n < 2 || n mod 2 <> 0 then
      err "CRT102" "n" "register model needs an even n >= 2, got %d" n
    else Ok ()
  in
  let* () =
    let si = ref 0 in
    first_error
      (fun st ->
        incr si;
        let where = Printf.sprintf "stage %d" !si in
        if Array.length st.perm <> n then
          err "CRT102" where "permutation has %d entries, expected %d"
            (Array.length st.perm) n
        else if not (is_permutation st.perm) then
          err "CRT102" where "stage images are not a permutation"
        else if String.length st.ops <> n / 2 then
          err "CRT102" where "op string has %d entries, expected %d"
            (String.length st.ops) (n / 2)
        else Ok ())
      stages
  in
  let* () =
    if Array.length input <> n || not (is_permutation input) then
      err "CRT231" "input" "input is not a permutation of 0..%d" (n - 1)
    else Ok ()
  in
  let* () =
    if
      wire0 < 0 || wire0 >= n || wire1 < 0 || wire1 >= n
      || wire0 = wire1
    then err "CRT102" "wires" "witness wires (%d, %d) illegal" wire0 wire1
    else Ok ()
  in
  let* () =
    if value1 <> value0 + 1 then
      err "CRT231" "values" "witness values %d, %d are not adjacent" value0
        value1
    else Ok ()
  in
  let* () =
    if
      input.(wire0) <> value0 || input.(wire1) <> value1
    then err "CRT231" "values" "witness wires do not carry the witness values"
    else Ok ()
  in
  let* () =
    let expected = Array.copy input in
    expected.(wire0) <- value1;
    expected.(wire1) <- value0;
    if twin <> expected then
      err "CRT231" "twin" "twin is not input with the stated swap"
    else Ok ()
  in
  let* () =
    let seen = Array.make n false in
    let rec go = function
      | [] -> Ok ()
      | w :: rest ->
          if w < 0 || w >= n then
            err "CRT102" "mset" "wire %d outside [0, %d)" w n
          else if seen.(w) then err "CRT231" "mset" "wire %d repeated" w
          else begin
            seen.(w) <- true;
            go rest
          end
    in
    let* () = go m_set in
    if List.length m_set < 2 then
      err "CRT231" "mset" "the M-set needs at least two wires"
    else if not (List.mem wire0 m_set && List.mem wire1 m_set)
    then err "CRT231" "mset" "the witness wires are not in the M-set"
    else Ok ()
  in
  (* replay: the reference register-model interpreter, tracing every
     value comparison ('+'/'-' ops compare; '1'/'0' and permutations
     never do). Values stay a permutation of 0..n-1, so the trace is an
     n x n table over values. *)
  let compared = Bytes.make (n * n) '\000' in
  let run ~trace input =
    let v = ref (Array.copy input) in
    List.iter
      (fun st ->
        let cur = !v in
        let nxt = Array.make n 0 in
        Array.iteri (fun j x -> nxt.(st.perm.(j)) <- x) cur;
        String.iteri
          (fun k op ->
            let a = 2 * k and b = (2 * k) + 1 in
            let x = nxt.(a) and y = nxt.(b) in
            let swap () =
              nxt.(a) <- y;
              nxt.(b) <- x
            in
            match op with
            | '+' ->
                if trace then begin
                  Bytes.set compared ((x * n) + y) '\001';
                  Bytes.set compared ((y * n) + x) '\001'
                end;
                if x > y then swap ()
            | '-' ->
                if trace then begin
                  Bytes.set compared ((x * n) + y) '\001';
                  Bytes.set compared ((y * n) + x) '\001'
                end;
                if x < y then swap ()
            | '1' -> swap ()
            | _ -> ())
          st.ops;
        v := nxt)
      stages;
    !v
  in
  let out0 = run ~trace:true input in
  let out1 = run ~trace:false twin in
  let was_compared x y = Bytes.get compared ((x * n) + y) <> '\000' in
  let* () =
    if was_compared value0 value1 then
      err "CRT232" "trace" "witness values %d and %d were compared" value0
        value1
    else Ok ()
  in
  let swap v =
    if v = value0 then value1
    else if v = value1 then value0
    else v
  in
  let* () =
    if Array.for_all2 (fun a b -> b = swap a) out0 out1 then Ok ()
    else err "CRT233" "outputs" "outputs differ beyond the witness swap"
  in
  let sorted a =
    let ok = ref true in
    for i = 0 to Array.length a - 2 do
      if a.(i) > a.(i + 1) then ok := false
    done;
    !ok
  in
  let* () =
    if sorted out0 && sorted out1 then
      err "CRT234" "outputs" "both fooling-pair outputs are sorted"
    else Ok ()
  in
  let values = List.map (fun w -> input.(w)) m_set in
  let rec audit = function
    | [] -> Ok ()
    | v :: rest -> (
        match List.find_opt (fun u -> was_compared v u) rest with
        | Some u -> err "CRT235" "mset" "M-set values %d and %d were compared" v u
        | None -> audit rest)
  in
  audit values

(* exhaustion: re-expand every frontier state by every matching with
   the checker's own enumeration and set arithmetic. Soundness is by
   induction on the remaining depth budget r: V(Q, 0) — every pool
   entry holds an unsorted vector; V(Q, r) — every child C of a level-K
   entry is covered by pi(pool(J)) contained in C with pool(J) appended
   at a level <= K + 1 (enforced by the index bound), so a sorting
   suffix for C would sort pool(J) one layer earlier than V(pool(J),
   r - 1) allows (subsumption lemma + untangling). Children of the last
   frontier must simply be unsorted. Taking r = max_depth at the
   implicit initial entry: no max_depth-layer network sorts. *)
let check_exhaustion ~n ~max_depth ~frontiers ~covers =
  let n = n in
  let* () =
    if n < 2 || n > 12 then
      err "CRT102" "n" "exhaustion certificates support n in [2, 12]"
    else Ok ()
  in
  let* () =
    if max_depth < 1 || max_depth > 32 then
      err "CRT102" "max-depth" "max-depth %d outside [1, 32]" max_depth
    else Ok ()
  in
  let* () =
    if
      Array.length frontiers <> max_depth - 1
      || Array.length covers <> max_depth - 1
    then
      err "CRT101" "level" "max-depth %d needs %d level blocks" max_depth
        (max_depth - 1)
    else Ok ()
  in
  let total = 1 lsl n in
  let matchings = all_matchings ~n in
  let pool = ref (Array.make 64 [||]) and pool_len = ref 0 in
  let add_pool arr =
    if !pool_len = Array.length !pool then begin
      let np = Array.make (2 * Array.length !pool) [||] in
      Array.blit !pool 0 np 0 !pool_len;
      pool := np
    end;
    (!pool).(!pool_len) <- arr;
    incr pool_len
  in
  (* every pool entry must contain an unsorted vector: the r = 0 base
     case of the induction *)
  let state_of where masks =
    let* () = check_masks ~n where masks in
    let* () =
      if masks = [] then err "CRT102" where "empty frontier state"
      else Ok ()
    in
    if List.for_all (fun m -> is_sorted_mask ~n m) masks then
      err "CRT243" where "frontier state holds only sorted vectors"
    else Ok (Array.of_list masks)
  in
  let initial = Array.init total Fun.id in
  let* () =
    if n >= 2 then Ok ()
    else err "CRT102" "n" "n must be at least 2"
  in
  add_pool initial;
  let prev = ref [ initial ] in
  let rec levels l =
    if l > max_depth - 1 then Ok ()
    else begin
      let where = Printf.sprintf "level %d" l in
      let* states =
        let rec go acc i = function
          | [] -> Ok (List.rev acc)
          | ms :: rest ->
              let* st = state_of (Printf.sprintf "%s state %d" where i) ms in
              go (st :: acc) (i + 1) rest
        in
        go [] 0 frontiers.(l - 1)
      in
      List.iter add_pool states;
      let cov = ref covers.(l - 1) in
      let child_tbl = Bytes.make total '\000' in
      let rec parents pi = function
        | [] ->
            if !cov <> [] then
              err "CRT244" where "%d cover lines left over" (List.length !cov)
            else Ok ()
        | p :: rest ->
            let rec moves mi = function
              | [] -> parents (pi + 1) rest
              | m :: ms ->
                  let cwhere =
                    Printf.sprintf "%s parent %d matching %d" where pi mi
                  in
                  Bytes.fill child_tbl 0 total '\000';
                  let all_sorted = ref true in
                  Array.iter
                    (fun v ->
                      let c = apply_matching_mask m v in
                      Bytes.set child_tbl c '\001';
                      if not (is_sorted_mask ~n c) then all_sorted := false)
                    p;
                  if !all_sorted then
                    err "CRT243" cwhere
                      "a depth-%d sorted child contradicts the exhaustion" l
                  else begin
                    match !cov with
                    | [] -> err "CRT244" cwhere "cover lines exhausted"
                    | { cite; pi = perm } :: covrest ->
                        cov := covrest;
                        if cite < 0 || cite >= !pool_len then
                          err "CRT241" cwhere
                            "cover cites pool entry %d (only %d available)"
                            cite !pool_len
                        else if
                          Array.length perm <> n || not (is_permutation perm)
                        then
                          err "CRT102" cwhere "cover permutation is illegal"
                        else
                          let q = (!pool).(cite) in
                          let embeds =
                            Array.for_all
                              (fun v ->
                                Bytes.get child_tbl (permute_mask perm v)
                                <> '\000')
                              q
                          in
                          if embeds then moves (mi + 1) ms
                          else
                            err "CRT242" cwhere
                              "pool entry %d does not embed into the child \
                               under the stated permutation"
                              cite
                  end
            in
            moves 0 matchings
      in
      let* () = parents 0 !prev in
      prev := states;
      levels (l + 1)
    end
  in
  let* () = levels 1 in
  (* the last frontier: every child of every matching must be unsorted *)
  let child_tbl = Bytes.make total '\000' in
  ignore child_tbl;
  let rec final pi = function
    | [] -> Ok ()
    | p :: rest ->
        let rec moves mi = function
          | [] -> final (pi + 1) rest
          | m :: ms ->
              let all_sorted =
                Array.for_all
                  (fun v -> is_sorted_mask ~n (apply_matching_mask m v))
                  p
              in
              if all_sorted then
                err "CRT243"
                  (Printf.sprintf "level %d parent %d matching %d" max_depth
                     pi mi)
                  "a depth-%d sorting network exists, contradicting the claim"
                  max_depth
              else moves (mi + 1) ms
        in
        moves 0 matchings
  in
  final 0 !prev

let check = function
  | Sortedness { network; domain } -> (
      match domain with
      | Reach_sets sets -> check_sortedness_reach network sets
      | Bounds_leq lvls -> check_sortedness_bounds network lvls)
  | Refutation { network; witness } -> check_refutation network witness
  | Dead_gates { network; sets; claims } -> check_dead network sets claims
  | Lower_bound { n; stages; input; twin; wire0; wire1; value0; value1; m_set }
    ->
      check_lower_bound ~n ~stages ~input ~twin ~wire0 ~wire1 ~value0 ~value1
        ~m_set
  | Exhaustion { n; max_depth; frontiers; covers } ->
      check_exhaustion ~n ~max_depth ~frontiers ~covers

let check_all certs =
  let rec go i = function
    | [] -> Ok ()
    | c :: rest -> (
        match check c with
        | Ok () -> go (i + 1) rest
        | Error e ->
            Error
              { e with
                where =
                  Printf.sprintf "cert %d (%s): %s" i (kind_name c) e.where })
  in
  go 1 certs
