(** Proof-carrying certificates and their independent checker.

    Every high-stakes verdict the system emits — "this network sorts",
    "this comparator is dead", "depth [d] is optimal" — can be shipped
    with a certificate that this module re-validates {e without
    calling} the engine, search or analysis code that produced it. The
    library deliberately depends only on the data-model layers
    ([Bitops], [Perm], [Network]): the checker re-derives everything it
    accepts from first principles, so a bug in the producers cannot
    leak into a checked verdict.

    {2 Certificate kinds}

    - {e sortedness}: a per-level invariant annotation. In the [reach]
      domain each level carries an over-approximation of the 0-1
      reachable set; the checker verifies each level's image is
      contained in the next annotation and that the final one holds
      only sorted vectors. In the [bounds] domain each level carries
      the claimed [i <= j] order facts; the checker re-derives them
      with the pure min/max inference rules.
    - {e refutation}: a concrete 0-1 witness input, replayed through a
      ~15-line reference interpreter.
    - {e dead}: reachable-set facts justifying each dead/redundant
      comparator diagnostic (the [SNL201]/[SNL202] pruning claims).
    - {e lower-bound}: an adversary transcript in the paper's register
      model [(Pi_i, x_i)]; the checker replays both runs of the
      fooling pair and confirms the witness values were never compared.
    - {e exhaustion}: the layered-BFS frontier log with a subsumption
      permutation witness per expanded child, proving no network of
      depth [max_depth] exists on [n] wires.

    {2 Trust boundary}

    The checker {e assumes} only standard mathematics documented in
    DESIGN.md: the 0-1 principle, the subsumption lemma ([pi(A)
    contained in B] and [B] sortable in [r] layers implies [A] sortable
    in [r] layers, via Knuth's untangling of generalized networks), and
    that a depth-[d] standard network is a sequence of [d] nonempty
    ascending matchings. Everything else — set images, matching
    enumeration, permutation legality, comparison traces — it recomputes
    itself. *)

(** One register-model stage: a wire permutation (image array, size
    [n]) followed by [n/2] ops over register pairs [(2k, 2k+1)],
    written as a string over ['+'] (ascending comparator), ['-']
    (descending), ['1'] (unconditional exchange), ['0'] (no gate). *)
type stage = { perm : int array; ops : string }

(** A subsumption witness for one expanded child: [pi(pool(cite))] is
    contained in the child's reachable set, where [pool] is the
    implicit initial state (index 0) followed by every logged frontier
    state in order. *)
type cover = { cite : int; pi : int array }

(** Per-level sortedness annotations, one entry per network level. *)
type domain =
  | Reach_sets of int list array
      (** entry [l]: over-approximation of the reachable 0-1 masks
          {e after} level [l+1] *)
  | Bounds_leq of (int * int) list array
      (** entry [l]: order facts [i <= j] claimed to hold {e after}
          level [l+1] *)

type claim =
  | Dead of { level : int; gate : int }
      (** 1-based level, 0-based gate index: the gate never exchanges *)
  | Redundant of { level : int; gate : int }
      (** the gate's wires provably carry equal bits *)

type t =
  | Sortedness of { network : Network.t; domain : domain }
  | Refutation of { network : Network.t; witness : int }
  | Dead_gates of {
      network : Network.t;
      sets : int list array;
          (** reach annotations after each level, as in [Reach_sets] *)
      claims : claim list;
    }
  | Lower_bound of {
      n : int;
      stages : stage list;
      input : int array;
      twin : int array;
      wire0 : int;
      wire1 : int;
      value0 : int;
      value1 : int;
      m_set : int list;
    }
  | Exhaustion of {
      n : int;
      max_depth : int;
      frontiers : int list list array;
          (** length [max_depth - 1]; entry [l]: the BFS frontier after
              level [l+1], each state its sorted reachable-mask list *)
      covers : cover list array;
          (** length [max_depth - 1]; entry [l]: one cover per
              (parent of frontier [l], matching) child, parents in
              frontier order, matchings in {!all_matchings} order *)
    }

type error = { code : string; where : string; reason : string }
(** A typed rejection: [code] is a stable [CRT***] identifier (table in
    {!codes} and the README), [where] locates the failing certificate
    and directive, [reason] is the human sentence. *)

val codes : (string * string) list
(** All [CRT***] error codes with one-line meanings (append-only). *)

val kind_name : t -> string
(** ["sortedness"], ["refutation"], ["dead"], ["lower-bound"] or
    ["exhaustion"]. *)

val to_string : t -> string
(** Canonical text form ([snlb-cert 1] header). Printing is
    deterministic: equal certificates render byte-identically. *)

val parse : string -> (t list, error) result
(** Parse a file of one or more concatenated certificates. Blank lines
    and [#] comments are ignored outside embedded network blocks. *)

val check : t -> (unit, error) result
(** Validate one certificate from first principles (no engine, search
    or analysis code). [Ok ()] means the certified verdict holds. *)

val check_all : t list -> (unit, error) result
(** {!check} in order, first failure wins; [where] carries the
    certificate's position. *)

(** {2 Building blocks, exposed for emitters and tests} *)

val is_sorted_mask : n:int -> int -> bool
(** Sorted = ones on the highest wires. *)

val eval_mask : Network.t -> int -> int
(** The reference 0-1 interpreter: one mask through every level
    (pre-permutation, then gates). Bit [w] of the mask is the value on
    wire [w]. *)

val all_matchings : n:int -> (int * int) list list
(** Every nonempty matching of [n] channels as ascending [(i, j)]
    pairs, in a fixed canonical order (sorted lists of sorted pairs,
    ordered lexicographically). This is the checker's {e complete}
    enumeration of candidate layers — 9 for n = 4, 75 for n = 6 — and
    emitters must enumerate children in the same order.
    @raise Invalid_argument unless [2 <= n <= 12]. *)
