(* Namespace wrapper so callers can write Search.Driver etc.; the
   library is unwrapped, matching the rest of the repository. *)

module State = State
module Subsume = Subsume
module Layers = Layers
module Driver = Driver
