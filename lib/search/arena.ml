(* GC-free state arena for the exact search.

   Every state the BFS ever sees lives as a packed row of int64 words
   in one flat Bigarray (64 masks per word — mask [m] is bit [m mod 64]
   of word [m / 64] of its row), with the per-state scalars the
   subsumption filters scan (cardinality, BFS level, hash, packed
   filter signatures) in parallel int arrays: a struct-of-arrays
   layout, so the hot scans touch dense int arrays instead of chasing
   boxed [State.t]/fingerprint records. Dedup is an open-addressing
   hash table keyed by an xxhash64-style hash of the row words — no
   boxed keys, no per-state allocation on the probe path.

   The 64-per-word packing (vs [State]'s 62) is what makes comparator
   application word-parallel: index bits 0-5 select the bit inside a
   word and the bits above select the word, so applying a comparator
   [(i, j)] to the whole reachable set is a butterfly on the row — an
   intra-word masked shift when [j < 6], a masked cross-word shift when
   [i < 6 <= j], and whole-word moves when [6 <= i] — O(words) word
   operations per comparator instead of a per-mask loop.

   Subsumption filters run on packed SWAR signatures: the per-level
   counts (and per-channel ones/zeros counts) are packed into bitfields
   sized by [C(n, k)] with one guard bit per field, so "every count of
   A <= the matching count of B" is one subtract-and-mask per signature
   word (the carry trick: [((b | guards) - a) & guards = guards] iff no
   field borrows). *)

type row = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

(* field k of a packed signature word: value at [shift], guard bit at
   [shift + width] *)
type layout = {
  sig_words : int;
  field_word : int array; (* k -> signature word *)
  field_shift : int array; (* k -> bit offset *)
  guards : int array; (* per signature word: OR of guard bits *)
}

type t = {
  n : int;
  wpr : int; (* int64 words per row *)
  mutable cap : int; (* allocated rows (one extra staging row) *)
  mutable len : int; (* committed states *)
  mutable words : row; (* (cap + 1) * wpr; row [len] is the staging slot *)
  mutable card : int array;
  mutable level : int array;
  mutable hash : int array; (* 62-bit nonnegative row hash *)
  mutable sigs : int array; (* cap * sig_stride when with_sigs *)
  with_sigs : bool;
  sig_stride : int;
  lay : layout;
  mutable table : int array; (* open addressing: 0 = empty, else idx + 1 *)
  mutable mask : int; (* Array.length table - 1 *)
  (* precomputed per n *)
  intra : int64 array array; (* i < j < 6: movers pattern *)
  bitset : int64 array; (* i < 6: intra positions with bit i set *)
  sorted_row : int64 array;
  (* row patterns for the signature counts: level k's masks at
     [k * wpr], channel (c, k)'s at [(n + 1 + c * (n + 1) + k) * wpr] —
     a count is one AND+popcount per row word instead of a loop over
     the masks *)
  count_pat : row;
  byte_pc : int array; (* popcount of each global byte index *)
  byte_hc : int array array; (* per byte position: its high channels 3+d *)
  (* packed-count scratch (n <= 10 fast path): index = popcount of the
     byte position, 4 x 8-bit fields = counts by low-3-bit popcount *)
  sc_accl : int array;
  sc_accc : int array array;
  (* reusable subsumption scratch (single-domain use) *)
  sc_lvl : int array;
  sc_chan : int array array;
  sc_zeros : int array;
  sc_cand : int array;
  sc_order : int array;
  sc_opc : int array;
  sc_pi : int array;
  (* local stats, flushed to Metrics by [record_metrics] *)
  mutable st_probes : int;
  mutable st_collisions : int;
  mutable st_resizes : int;
}

let c_states = Metrics.counter "arena.states"
let c_dups = Metrics.counter "arena.dups"
let c_probes = Metrics.counter "arena.probes"
let c_collisions = Metrics.counter "arena.collisions"
let c_resizes = Metrics.counter "arena.resizes"
let c_bytes = Metrics.counter "arena.bytes"

(* --- bit utilities on int64 words --- *)

let pop64 x =
  Bitops.popcount (Int64.to_int (Int64.logand x 0x3FFF_FFFF_FFFF_FFFFL))
  + Bitops.popcount (Int64.to_int (Int64.shift_right_logical x 62))

let debruijn64 = 0x03F79D71B4CB0A89L

let db_tab =
  let t = Array.make 64 0 in
  for i = 0 to 63 do
    t.(Int64.to_int
         (Int64.shift_right_logical
            (Int64.mul (Int64.shift_left 1L i) debruijn64)
            58)
       land 63) <- i
  done;
  t

(* index of the (single) set bit of [b] *)
let bit_index64 b =
  Array.unsafe_get db_tab
    (Int64.to_int (Int64.shift_right_logical (Int64.mul b debruijn64) 58)
     land 63)

(* Byte tables for the packed signature counts. A mask [m] splits as
   byte position [P = m lsr 3] and in-byte bit [i = m land 7], with
   [popcount m = popcount P + popcount i]. For a row byte of value [v]
   at position [P], [byte_t1.(v)] holds, in four 8-bit fields, how many
   set bits [i] of [v] have [popcount i = 0, 1, 2, 3] — so one integer
   add per byte accumulates four level counts at once. [byte_t2.(c)]
   is the same restricted to bits [i] with bit [c] set (the in-byte
   channels 0-2); channels >= 3 are decided by [P] alone and reuse
   [byte_t1]. *)
let byte_t1 =
  Array.init 256 (fun v ->
      let acc = ref 0 in
      for i = 0 to 7 do
        if (v lsr i) land 1 = 1 then
          acc := !acc + (1 lsl (8 * Bitops.popcount i))
      done;
      !acc)

let byte_t2 =
  Array.init 3 (fun c ->
      Array.init 256 (fun v ->
          let acc = ref 0 in
          for i = 0 to 7 do
            if (v lsr i) land 1 = 1 && (i lsr c) land 1 = 1 then
              acc := !acc + (1 lsl (8 * Bitops.popcount i))
          done;
          !acc))

(* --- construction --- *)

let binomial n k =
  let k = min k (n - k) in
  let r = ref 1 in
  for i = 0 to k - 1 do
    r := !r * (n - i) / (i + 1)
  done;
  !r

let width_of_value v =
  let w = ref 1 in
  while v lsr !w <> 0 do
    incr w
  done;
  !w

(* pack the n + 1 count fields (field k holds values up to C(n, k))
   into as few <= 62-bit words as the guard bits allow *)
let make_layout n =
  let field_word = Array.make (n + 1) 0 in
  let field_shift = Array.make (n + 1) 0 in
  let guards = ref [] in
  let word = ref 0 and shift = ref 0 and guard = ref 0 in
  for k = 0 to n do
    let w = width_of_value (binomial n k) in
    if !shift + w + 1 > 62 then begin
      guards := !guard :: !guards;
      incr word;
      shift := 0;
      guard := 0
    end;
    field_word.(k) <- !word;
    field_shift.(k) <- !shift;
    guard := !guard lor (1 lsl (!shift + w));
    shift := !shift + w + 1
  done;
  guards := !guard :: !guards;
  { sig_words = !word + 1;
    field_word;
    field_shift;
    guards = Array.of_list (List.rev !guards) }

let check_n n =
  if n < 2 || n > 16 then
    invalid_arg "Arena.create: n must be in [2, 16] (rows are 2^n bits)"

let create ?(with_sigs = true) ~n () =
  check_n n;
  let wpr = max 1 ((1 lsl n) / 64) in
  let cap = 1024 in
  let lay = make_layout n in
  (* level sig, then per channel a ones sig and a zeros sig *)
  let sig_stride = lay.sig_words * (1 + (2 * n)) in
  let intra =
    Array.init 6 (fun i ->
        Array.init 6 (fun j ->
            if i >= j then 0L
            else begin
              let p = ref 0L in
              for b = 0 to 63 do
                if (b lsr i) land 1 = 1 && (b lsr j) land 1 = 0 then
                  p := Int64.logor !p (Int64.shift_left 1L b)
              done;
              !p
            end))
  in
  let bitset =
    Array.init 6 (fun i ->
        let p = ref 0L in
        for b = 0 to 63 do
          if (b lsr i) land 1 = 1 then p := Int64.logor !p (Int64.shift_left 1L b)
        done;
        !p)
  in
  let sorted_row =
    let r = Array.make wpr 0L in
    for k = 0 to n do
      let m = ((1 lsl k) - 1) lsl (n - k) in
      r.(m / 64) <- Int64.logor r.(m / 64) (Int64.shift_left 1L (m land 63))
    done;
    r
  in
  let count_pat =
    let p =
      Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout
        ((n + 1 + (n * (n + 1))) * wpr)
    in
    Bigarray.Array1.fill p 0L;
    let set slot m =
      let w = (slot * wpr) + (m lsr 6) in
      Bigarray.Array1.set p w
        (Int64.logor (Bigarray.Array1.get p w) (Int64.shift_left 1L (m land 63)))
    in
    for m = 0 to (1 lsl n) - 1 do
      let k = Bitops.popcount m in
      set k m;
      for c = 0 to n - 1 do
        if (m lsr c) land 1 = 1 then set (n + 1 + (c * (n + 1)) + k) m
      done
    done;
    p
  in
  { n;
    wpr;
    cap;
    len = 0;
    words = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout ((cap + 1) * wpr);
    card = Array.make cap 0;
    level = Array.make cap 0;
    hash = Array.make cap 0;
    sigs = (if with_sigs then Array.make (cap * sig_stride) 0 else [||]);
    with_sigs;
    sig_stride;
    lay;
    table = Array.make 4096 0;
    mask = 4095;
    intra;
    bitset;
    sorted_row;
    count_pat;
    byte_pc = Array.init (wpr * 8) Bitops.popcount;
    byte_hc =
      Array.init (wpr * 8) (fun p ->
          let l = ref [] in
          for d = 12 downto 0 do
            if (p lsr d) land 1 = 1 then l := (3 + d) :: !l
          done;
          Array.of_list !l);
    sc_accl = Array.make (max 1 (n - 2)) 0;
    sc_accc = Array.make_matrix n (max 1 (n - 2)) 0;
    sc_lvl = Array.make (n + 1) 0;
    sc_chan = Array.make_matrix n (n + 1) 0;
    sc_zeros = Array.make (n + 1) 0;
    sc_cand = Array.make n 0;
    sc_order = Array.init n Fun.id;
    sc_opc = Array.make n 0;
    sc_pi = Array.make n 0;
    st_probes = 0;
    st_collisions = 0;
    st_resizes = 0 }

let n t = t.n
let length t = t.len
let card t idx = t.card.(idx)
let level t idx = t.level.(idx)

let record_metrics t =
  Metrics.add c_probes t.st_probes;
  Metrics.add c_collisions t.st_collisions;
  Metrics.add c_resizes t.st_resizes;
  Metrics.add c_bytes ((t.cap + 1) * t.wpr * 8);
  t.st_probes <- 0;
  t.st_collisions <- 0;
  t.st_resizes <- 0

let grow t =
  let cap' = t.cap * 2 in
  let words' =
    Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout ((cap' + 1) * t.wpr)
  in
  Bigarray.Array1.blit
    (Bigarray.Array1.sub t.words 0 ((t.cap + 1) * t.wpr))
    (Bigarray.Array1.sub words' 0 ((t.cap + 1) * t.wpr));
  t.words <- words';
  let grow_arr a fill =
    let a' = Array.make cap' fill in
    Array.blit a 0 a' 0 t.cap;
    a'
  in
  t.card <- grow_arr t.card 0;
  t.level <- grow_arr t.level 0;
  t.hash <- grow_arr t.hash 0;
  if t.with_sigs then begin
    let s' = Array.make (cap' * t.sig_stride) 0 in
    Array.blit t.sigs 0 s' 0 (t.cap * t.sig_stride);
    t.sigs <- s'
  end;
  t.cap <- cap'

(* --- staging row (index [len]) --- *)

let stage_off t = t.len * t.wpr

let stage_state t st =
  if State.n st <> t.n then invalid_arg "Arena.stage_state: width mismatch";
  if t.len >= t.cap then grow t;
  let base = stage_off t in
  for w = 0 to t.wpr - 1 do
    Bigarray.Array1.unsafe_set t.words (base + w) 0L
  done;
  State.iter_masks
    (fun m ->
      let w = base + (m lsr 6) in
      Bigarray.Array1.unsafe_set t.words w
        (Int64.logor
           (Bigarray.Array1.unsafe_get t.words w)
           (Int64.shift_left 1L (m land 63))))
    st

(* apply one ascending comparator (i, j), i < j, to the staging row:
   every mask with bit i set and bit j clear moves to the mask with
   those bits exchanged; everything else stays. Butterfly by case on
   whether the affected index bits are intra-word. *)
let apply_cmp t base i j =
  let words = t.words and wpr = t.wpr in
  if j < 6 then begin
    let pat = t.intra.(i).(j) in
    let delta = (1 lsl j) - (1 lsl i) in
    for w = 0 to wpr - 1 do
      let x = Bigarray.Array1.unsafe_get words (base + w) in
      let mov = Int64.logand x pat in
      if mov <> 0L then
        Bigarray.Array1.unsafe_set words (base + w)
          (Int64.logor (Int64.logxor x mov) (Int64.shift_left mov delta))
    done
  end
  else if i < 6 then begin
    let pat = t.bitset.(i) in
    let dj = 1 lsl (j - 6) in
    let shift = 1 lsl i in
    for w = 0 to wpr - 1 do
      if w land dj = 0 then begin
        let x = Bigarray.Array1.unsafe_get words (base + w) in
        let mov = Int64.logand x pat in
        if mov <> 0L then begin
          Bigarray.Array1.unsafe_set words (base + w) (Int64.logxor x mov);
          let w' = base + w + dj in
          Bigarray.Array1.unsafe_set words w'
            (Int64.logor
               (Bigarray.Array1.unsafe_get words w')
               (Int64.shift_right_logical mov shift))
        end
      end
    done
  end
  else begin
    let di = 1 lsl (i - 6) and dj = 1 lsl (j - 6) in
    for w = 0 to wpr - 1 do
      if w land di <> 0 && w land dj = 0 then begin
        let x = Bigarray.Array1.unsafe_get words (base + w) in
        if x <> 0L then begin
          let w' = base + w - di + dj in
          Bigarray.Array1.unsafe_set words w'
            (Int64.logor (Bigarray.Array1.unsafe_get words w') x);
          Bigarray.Array1.unsafe_set words (base + w) 0L
        end
      end
    done
  end

let stage_child t ~parent pairs =
  if t.len >= t.cap then grow t;
  let src = parent * t.wpr and dst = stage_off t in
  for w = 0 to t.wpr - 1 do
    Bigarray.Array1.unsafe_set t.words (dst + w)
      (Bigarray.Array1.unsafe_get t.words (src + w))
  done;
  List.iter (fun (i, j) -> apply_cmp t dst i j) pairs

let row_subset t base_a base_b =
  let ok = ref true in
  let w = ref 0 in
  while !ok && !w < t.wpr do
    let a = Bigarray.Array1.unsafe_get t.words (base_a + !w) in
    let b = Bigarray.Array1.unsafe_get t.words (base_b + !w) in
    if Int64.logand a (Int64.lognot b) <> 0L then ok := false;
    incr w
  done;
  !ok

let staged_is_sorted t =
  let base = stage_off t in
  let ok = ref true in
  for w = 0 to t.wpr - 1 do
    if
      Int64.logand
        (Bigarray.Array1.unsafe_get t.words (base + w))
        (Int64.lognot t.sorted_row.(w))
      <> 0L
    then ok := false
  done;
  !ok

let row_card t base =
  let c = ref 0 in
  for w = 0 to t.wpr - 1 do
    c := !c + pop64 (Bigarray.Array1.unsafe_get t.words (base + w))
  done;
  !c

(* --- hashing and open addressing --- *)

(* xxhash64-flavoured word mix: multiply-rotate accumulation over the
   row words, SplitMix64-style avalanche finish. Folded to 62 bits so
   the table index math stays on nonnegative ints. *)
let row_hash t base =
  let h = ref 0x9E3779B97F4A7C15L in
  for w = 0 to t.wpr - 1 do
    let x = Bigarray.Array1.unsafe_get t.words (base + w) in
    let acc = Int64.add !h (Int64.mul x 0xC2B2AE3D27D4EB4FL) in
    let acc =
      Int64.logor (Int64.shift_left acc 31) (Int64.shift_right_logical acc 33)
    in
    h := Int64.mul acc 0x9E3779B185EBCA87L
  done;
  let x = !h in
  let x = Int64.logxor x (Int64.shift_right_logical x 30) in
  let x = Int64.mul x 0xBF58476D1CE4E5B9L in
  let x = Int64.logxor x (Int64.shift_right_logical x 27) in
  let x = Int64.mul x 0x94D049BB133111EBL in
  let x = Int64.logxor x (Int64.shift_right_logical x 31) in
  Int64.to_int x land 0x3FFF_FFFF_FFFF_FFFF

let rows_equal t base_a base_b =
  let eq = ref true in
  let w = ref 0 in
  while !eq && !w < t.wpr do
    if
      Bigarray.Array1.unsafe_get t.words (base_a + !w)
      <> Bigarray.Array1.unsafe_get t.words (base_b + !w)
    then eq := false;
    incr w
  done;
  !eq

let rehash t =
  let size' = (t.mask + 1) * 2 in
  let table' = Array.make size' 0 in
  let mask' = size' - 1 in
  for idx = 0 to t.len - 1 do
    let s = ref (t.hash.(idx) land mask') in
    while table'.(!s) <> 0 do
      s := (!s + 1) land mask'
    done;
    table'.(!s) <- idx + 1
  done;
  t.table <- table';
  t.mask <- mask';
  t.st_resizes <- t.st_resizes + 1

(* --- signatures --- *)

let sig_base t idx = idx * t.sig_stride

(* pack counts (field k = counts.(k)) at t.sigs[off ..]; runs 2n + 1
   times per committed state, so the single-word case (n <= 9) builds
   the word in a register and stores once *)
let pack_counts t counts off =
  let lay = t.lay in
  if lay.sig_words = 1 then begin
    let shift = lay.field_shift in
    let acc = ref 0 in
    for k = 0 to t.n do
      acc := !acc lor (Array.unsafe_get counts k lsl Array.unsafe_get shift k)
    done;
    Array.unsafe_set t.sigs off !acc
  end
  else begin
    for w = 0 to lay.sig_words - 1 do
      t.sigs.(off + w) <- 0
    done;
    for k = 0 to t.n do
      let w = lay.field_word.(k) and s = lay.field_shift.(k) in
      t.sigs.(off + w) <- t.sigs.(off + w) lor (counts.(k) lsl s)
    done
  end

let iter_row_masks t base f =
  for w = 0 to t.wpr - 1 do
    let x = ref (Bigarray.Array1.unsafe_get t.words (base + w)) in
    let wbase = w lsl 6 in
    while !x <> 0L do
      let b = Int64.logand !x (Int64.neg !x) in
      f (wbase + bit_index64 b);
      x := Int64.logand !x (Int64.sub !x 1L)
    done
  done

(* count = popcount (row AND pattern), one word op pair per row word *)
let pat_count t rbase slot =
  let c = ref 0 in
  let pbase = slot * t.wpr in
  for w = 0 to t.wpr - 1 do
    c :=
      !c
      + pop64
          (Int64.logand
             (Bigarray.Array1.unsafe_get t.words (rbase + w))
             (Bigarray.Array1.unsafe_get t.count_pat (pbase + w)))
  done;
  !c

(* reference path (n > 10): one masked popcount per (slot, row word) *)
let compute_counts_pat t rbase =
  let nn = t.n in
  for k = 0 to nn do
    t.sc_lvl.(k) <- pat_count t rbase k
  done;
  for c = 0 to nn - 1 do
    let row = t.sc_chan.(c) in
    for k = 0 to nn do
      row.(k) <- pat_count t rbase (nn + 1 + (c * (nn + 1)) + k)
    done
  done

(* fast path (n <= 10, so every count fits 8 bits): one [byte_t1] add
   per nonzero row byte accumulates four level counts at once, keyed
   by the byte position's popcount; in-byte channels use [byte_t2],
   higher channels gate [byte_t1] on the position's bits *)
let compute_counts_packed t rbase =
  let nn = t.n in
  let accl = t.sc_accl and accc = t.sc_accc in
  let asz = Array.length accl in
  Array.fill accl 0 asz 0;
  for c = 0 to nn - 1 do
    Array.fill accc.(c) 0 asz 0
  done;
  let nlow = min 3 nn in
  for w = 0 to t.wpr - 1 do
    let x = Bigarray.Array1.unsafe_get t.words (rbase + w) in
    if x <> 0L then
      for b = 0 to 7 do
        let v = Int64.to_int (Int64.shift_right_logical x (8 * b)) land 0xFF in
        if v <> 0 then begin
          let p = (w lsl 3) + b in
          let pc = Array.unsafe_get t.byte_pc p in
          let tv = Array.unsafe_get byte_t1 v in
          Array.unsafe_set accl pc (Array.unsafe_get accl pc + tv);
          for c = 0 to nlow - 1 do
            let a = Array.unsafe_get accc c in
            Array.unsafe_set a pc
              (Array.unsafe_get a pc
              + Array.unsafe_get (Array.unsafe_get byte_t2 c) v)
          done;
          let hc = Array.unsafe_get t.byte_hc p in
          for k = 0 to Array.length hc - 1 do
            let a = Array.unsafe_get accc (Array.unsafe_get hc k) in
            Array.unsafe_set a pc (Array.unsafe_get a pc + tv)
          done
        end
      done
  done;
  let lvl = t.sc_lvl and chan = t.sc_chan in
  Array.fill lvl 0 (nn + 1) 0;
  for pc = 0 to asz - 1 do
    let a = Array.unsafe_get accl pc in
    if a <> 0 then
      for j = 0 to min 3 (nn - pc) do
        let k = pc + j in
        Array.unsafe_set lvl k
          (Array.unsafe_get lvl k + ((a lsr (8 * j)) land 0xFF))
      done
  done;
  for c = 0 to nn - 1 do
    let row = chan.(c) and ac = accc.(c) in
    Array.fill row 0 (nn + 1) 0;
    for pc = 0 to asz - 1 do
      let a = Array.unsafe_get ac pc in
      if a <> 0 then
        for j = 0 to min 3 (nn - pc) do
          let k = pc + j in
          Array.unsafe_set row k
            (Array.unsafe_get row k + ((a lsr (8 * j)) land 0xFF))
        done
    done
  done

let compute_sigs t idx =
  let nn = t.n in
  let rbase = idx * t.wpr in
  if nn <= 10 then compute_counts_packed t rbase else compute_counts_pat t rbase;
  let sw = t.lay.sig_words in
  let base = sig_base t idx in
  let lvl = t.sc_lvl in
  pack_counts t lvl base;
  (* channel c: ones signature then zeros (complement) signature *)
  let zeros = t.sc_zeros in
  for c = 0 to nn - 1 do
    let ones = t.sc_chan.(c) in
    for k = 0 to nn do
      zeros.(k) <- lvl.(k) - ones.(k)
    done;
    pack_counts t ones (base + ((1 + (2 * c)) * sw));
    pack_counts t zeros (base + ((2 + (2 * c)) * sw))
  done

(* fieldwise a <= b over one packed signature (the borrow trick) *)
let sig_le t off_a off_b =
  let lay = t.lay in
  let ok = ref true in
  for w = 0 to lay.sig_words - 1 do
    let g = Array.unsafe_get lay.guards w in
    if
      ((Array.unsafe_get t.sigs (off_b + w) lor g)
      - Array.unsafe_get t.sigs (off_a + w))
        land g
      <> g
    then ok := false
  done;
  !ok

(* --- dedup insert --- *)

let commit t ~level =
  let base = stage_off t in
  let h = row_hash t base in
  let slot = ref (h land t.mask) in
  let found = ref (-1) in
  t.st_probes <- t.st_probes + 1;
  let continue = ref true in
  while !continue do
    let e = Array.unsafe_get t.table !slot in
    if e = 0 then continue := false
    else begin
      let idx = e - 1 in
      if t.hash.(idx) = h && rows_equal t (idx * t.wpr) base then begin
        found := idx;
        continue := false
      end
      else begin
        t.st_collisions <- t.st_collisions + 1;
        slot := (!slot + 1) land t.mask
      end
    end
  done;
  if !found >= 0 then begin
    Metrics.incr c_dups;
    `Dup !found
  end
  else begin
    let idx = t.len in
    t.table.(!slot) <- idx + 1;
    t.hash.(idx) <- h;
    t.card.(idx) <- row_card t base;
    t.level.(idx) <- level;
    t.len <- idx + 1;
    if t.with_sigs then compute_sigs t idx;
    (* keep the load factor <= 1/2 *)
    if 2 * t.len > t.mask then rehash t;
    Metrics.incr c_states;
    `Fresh idx
  end

(* truncate back to a previously observed length: the committed prefix
   is immutable, so dropping a suffix only needs the table rebuilt *)
let truncate t len =
  if len < 0 || len > t.len then invalid_arg "Arena.truncate";
  if len < t.len then begin
    t.len <- len;
    Array.fill t.table 0 (Array.length t.table) 0;
    for idx = 0 to len - 1 do
      let s = ref (t.hash.(idx) land t.mask) in
      while t.table.(!s) <> 0 do
        s := (!s + 1) land t.mask
      done;
      t.table.(!s) <- idx + 1
    done
  end

(* --- conversions --- *)

let state_of_base t base =
  let masks = ref [] in
  iter_row_masks t base (fun m -> masks := m :: !masks);
  State.of_masks ~n:t.n (List.rev !masks)

let to_state t idx = state_of_base t (idx * t.wpr)
let staged_state t = state_of_base t (stage_off t)
let iter_masks t idx f = iter_row_masks t (idx * t.wpr) f

(* --- subsumption ---

   Boolean-identical to [Subsume.subsumes] on the corresponding
   states: the card / level / channel filters are the same pointwise
   <= tests (packed), the backtracking explores the same assignment
   space (possibly in a different order), and the final check is the
   same mask-image inclusion. The extra union check below only refutes
   pairs the backtracking would refute anyway (a channel of B missing
   from every candidate set cannot be covered by the injection). *)

exception No

(* Swap index bits [i < j] of the 2^n positions of the row at [base]:
   the same butterfly structure as [apply_cmp], but a swap instead of
   an OR-move. Positions with bits (i, j) = (1, 0) exchange with their
   (0, 1) partner at distance [2^j - 2^i]; (0, 0) and (1, 1) are
   fixed. *)
let transpose_row t base i j =
  if j < 6 then begin
    (* delta-swap within each word; [intra.(i).(j)] selects the lower
       position of every swapped pair *)
    let pat = t.intra.(i).(j) in
    let delta = (1 lsl j) - (1 lsl i) in
    for w = 0 to t.wpr - 1 do
      let x = Bigarray.Array1.unsafe_get t.words (base + w) in
      let d =
        Int64.logand (Int64.logxor x (Int64.shift_right_logical x delta)) pat
      in
      Bigarray.Array1.unsafe_set t.words (base + w)
        (Int64.logxor (Int64.logxor x d) (Int64.shift_left d delta))
    done
  end
  else if i < 6 then begin
    (* word pair (w, w + 2^(j-6)): bit-i=1 positions of the low word
       exchange with bit-i=0 positions of the high word, 2^i apart *)
    let bi = t.bitset.(i) and sh = 1 lsl i in
    let nbi = Int64.lognot t.bitset.(i) in
    let dj = 1 lsl (j - 6) in
    for w = 0 to t.wpr - 1 do
      if (w lsr (j - 6)) land 1 = 0 then begin
        let a = Bigarray.Array1.unsafe_get t.words (base + w) in
        let b = Bigarray.Array1.unsafe_get t.words (base + w + dj) in
        Bigarray.Array1.unsafe_set t.words (base + w)
          (Int64.logor (Int64.logand a nbi)
             (Int64.shift_left (Int64.logand b nbi) sh));
        Bigarray.Array1.unsafe_set t.words (base + w + dj)
          (Int64.logor (Int64.logand b bi)
             (Int64.shift_right_logical (Int64.logand a bi) sh))
      end
    done
  end
  else begin
    (* whole-word swap w <-> w - 2^(i-6) + 2^(j-6) *)
    let di = 1 lsl (i - 6) and dj = 1 lsl (j - 6) in
    for w = 0 to t.wpr - 1 do
      if (w lsr (i - 6)) land 1 = 1 && (w lsr (j - 6)) land 1 = 0 then begin
        let w' = w - di + dj in
        let a = Bigarray.Array1.unsafe_get t.words (base + w) in
        Bigarray.Array1.unsafe_set t.words (base + w)
          (Bigarray.Array1.unsafe_get t.words (base + w'));
        Bigarray.Array1.unsafe_set t.words (base + w') a
      end
    done
  end

(* Copy row [src] into the staging slot and permute its positions by
   the channel permutation [pi] (bit [pi.(c)] of an image index = bit
   [c] of the source index), as a product of index-bit transpositions:
   each cycle (c1 c2 ... cl) of [pi] is T(c1,c2) then T(c1,c3) ...
   T(c1,cl) applied to the row in that order. Word-parallel — about
   (n - 1) * wpr word ops for a worst-case permutation, versus a
   per-bit loop over every mask of the row. Clobbers the staging row. *)
let permute_row_into_staging t src pi =
  let dst = stage_off t in
  for w = 0 to t.wpr - 1 do
    Bigarray.Array1.unsafe_set t.words (dst + w)
      (Bigarray.Array1.unsafe_get t.words (src + w))
  done;
  let visited = ref 0 in
  for c = 0 to t.n - 1 do
    if (!visited lsr c) land 1 = 0 then begin
      visited := !visited lor (1 lsl c);
      let d = ref pi.(c) in
      while !d <> c do
        visited := !visited lor (1 lsl !d);
        transpose_row t dst (min c !d) (max c !d);
        d := pi.(!d)
      done
    end
  done

let subsumes t a b =
  t.card.(a) <= t.card.(b)
  &&
  let sw = t.lay.sig_words in
  let sa = sig_base t a and sb = sig_base t b in
  (* n <= 9 packs each signature into one word: inline the borrow
     test there — this pair loop is the filter's hottest code and
     classic-mode ocamlopt does not inline sig_le *)
  (if sw = 1 then
     let g = t.lay.guards.(0) in
     ((Array.unsafe_get t.sigs sb lor g) - Array.unsafe_get t.sigs sa) land g
     = g
   else sig_le t sa sb)
  && (row_subset t (a * t.wpr) (b * t.wpr)
     ||
     let nn = t.n in
     let cand = t.sc_cand in
     let full = (1 lsl nn) - 1 in
     match
       let union = ref 0 in
       (if sw = 1 then begin
          let sigs = t.sigs and g = t.lay.guards.(0) in
          for c = 0 to nn - 1 do
            let oa = Array.unsafe_get sigs (sa + 1 + (2 * c))
            and za = Array.unsafe_get sigs (sa + 2 + (2 * c)) in
            let m = ref 0 in
            for c' = 0 to nn - 1 do
              let ob = Array.unsafe_get sigs (sb + 1 + (2 * c')) in
              if ((ob lor g) - oa) land g = g then begin
                let zb = Array.unsafe_get sigs (sb + 2 + (2 * c')) in
                if ((zb lor g) - za) land g = g then m := !m lor (1 lsl c')
              end
            done;
            if !m = 0 then raise No;
            cand.(c) <- !m;
            union := !union lor !m
          done
        end
        else
          for c = 0 to nn - 1 do
            let m = ref 0 in
            let oa = sa + ((1 + (2 * c)) * sw)
            and za = sa + ((2 + (2 * c)) * sw) in
            for c' = 0 to nn - 1 do
              if
                sig_le t oa (sb + ((1 + (2 * c')) * sw))
                && sig_le t za (sb + ((2 + (2 * c')) * sw))
              then m := !m lor (1 lsl c')
            done;
            if !m = 0 then raise No;
            cand.(c) <- !m;
            union := !union lor !m
          done);
       if !union <> full then raise No
     with
     | exception No -> false
     | () ->
         (* most constrained channel first — insertion sort on the
            precomputed candidate popcounts ([Array.sort] with a
            closure is measurable at this call rate; the order only
            steers the backtracking, the boolean result is
            order-independent) *)
         let order = t.sc_order and opc = t.sc_opc in
         for c = 0 to nn - 1 do
           order.(c) <- c;
           opc.(c) <- Bitops.popcount (Array.unsafe_get cand c)
         done;
         for i = 1 to nn - 1 do
           let c = Array.unsafe_get order i in
           let k = Array.unsafe_get opc c in
           let j = ref (i - 1) in
           while !j >= 0 && Array.unsafe_get opc (Array.unsafe_get order !j) > k
           do
             Array.unsafe_set order (!j + 1) (Array.unsafe_get order !j);
             decr j
           done;
           Array.unsafe_set order (!j + 1) c
         done;
         let pi = t.sc_pi in
         let ba = a * t.wpr and bb = b * t.wpr in
         let rec assign i used =
           if i = nn then begin
             (* image inclusion: every mask of A lands in B — permute
                the whole row A by pi and do one word-parallel subset
                scan (uses the staging slot as scratch, which is free
                between [commit]s) *)
             permute_row_into_staging t ba pi;
             row_subset t (stage_off t) bb
           end
           else begin
             let c = order.(i) in
             let avail = ref (cand.(c) land lnot used) in
             let ok = ref false in
             while (not !ok) && !avail <> 0 do
               let bit = !avail land - !avail in
               let c' = Bitops.floor_log2 bit in
               pi.(c) <- c';
               if assign (i + 1) (used lor bit) then ok := true
               else avail := !avail land lnot bit
             done;
             !ok
           end
         in
         assign 0 0)
