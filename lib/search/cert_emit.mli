(** Exhaustion-certificate emission from the driver's frontier log.

    The searcher proves "no depth-[d] sorting network on [n] wires" by
    exhausting a subsumption-reduced BFS; this module turns the per-
    level surviving frontiers (collected via {!Driver.run}'s
    [frontier_log]) into a {!Cert.Exhaustion} certificate the
    independent checker can re-validate. Every expanded child of every
    frontier state gets a cover: a cited pool entry (the implicit
    initial state, or any earlier-logged frontier state) plus the
    witnessing wire permutation from {!Subsume.subsumes_perm}. The
    derivation is deterministic — children are enumerated in
    {!Cert.all_matchings} order, equality hits cite the first identical
    pool entry with the identity permutation, and the fallback scan
    cites the lowest-indexed subsumer — so both search engines, logging
    identical frontiers, yield byte-identical certificates. *)

val exhaustion :
  n:int ->
  max_depth:int ->
  frontiers:State.t list list ->
  (Cert.t, string) result
(** [exhaustion ~n ~max_depth ~frontiers] builds and self-checks the
    certificate; [frontiers] holds the logged levels in order (levels
    beyond [max_depth - 1] are ignored). [Error] carries the reason no
    certificate exists: a sorted child (the claim is false), an
    uncovered child (the log came from an incompatible search), or a
    failed self-check. *)
