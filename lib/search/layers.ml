type layer = (int * int) list

let all ~n =
  if n < 2 then invalid_arg "Layers.all: n must be >= 2";
  (* matchings by recursion on the smallest free channel: leave it
     unmatched, or pair it with any larger free channel *)
  let rec go = function
    | [] -> [ [] ]
    | c :: rest ->
        let without = go rest in
        let with_c =
          List.concat_map
            (fun c' ->
              let rest' = List.filter (fun x -> x <> c') rest in
              List.map (fun m -> (c, c') :: m) (go rest'))
            rest
        in
        without @ with_c
  in
  List.filter (fun l -> l <> []) (go (List.init n Fun.id))

let first ~n =
  if n < 2 then invalid_arg "Layers.first: n must be >= 2";
  List.init (n / 2) (fun k -> (2 * k, (2 * k) + 1))

(* The stabilizer of [first]: permute the floor(n/2) pairs and flip
   within each pair; any leftover channel is fixed. Elements are
   realised as channel maps. *)
let stabilizer ~n =
  let k = n / 2 in
  let rec perms = function
    | [] -> [ [] ]
    | xs ->
        List.concat_map
          (fun x -> List.map (fun p -> x :: p) (perms (List.filter (( <> ) x) xs)))
          xs
  in
  let pair_perms = List.map Array.of_list (perms (List.init k Fun.id)) in
  List.concat_map
    (fun sigma ->
      List.init (1 lsl k) (fun flips ->
          Array.init n (fun c ->
              if c >= 2 * k then c
              else
                let p = c / 2 and b = c land 1 in
                (2 * sigma.(p)) + (b lxor ((flips lsr p) land 1)))))
    pair_perms

let apply_group_elt g layer =
  List.sort compare
    (List.map
       (fun (i, j) ->
         let i' = g.(i) and j' = g.(j) in
         (min i' j', max i' j'))
       layer)

let second ~n =
  let group = stabilizer ~n in
  let canonical layer =
    List.fold_left
      (fun best g ->
        let img = apply_group_elt g layer in
        if compare img best < 0 then img else best)
      layer group
  in
  List.filter (fun l -> canonical l = l) (all ~n)

let gates layer = List.map (fun (i, j) -> Gate.compare_up i j) layer
