(** Layered breadth-first search for exact small-network bounds, with
    frontier deduplication, pluggable move generation, a node/time
    budget, multicore expansion, and built-in observability.

    The driver is generic over the move type ['m] so that both the
    general sorting-network search (moves = comparator layers, frontier
    deduplicated by {!Subsume}) and the shuffle-restricted register
    search of {!Min_depth} (moves = op vectors, frontier deduplicated
    by state equality — channel permutations do not commute with the
    fixed shuffle, so subsumption would be unsound there) are thin
    instantiations.

    Level [k] of the BFS holds representatives of every state reachable
    by a [k]-move prefix. Each level expands every frontier entry by
    every move; a child that {!State.is_sorted} resolves the search
    immediately (its move list is the witness), a child failing the
    system's [prune] test or subsumed by a representative already kept
    (at this or any earlier level — both reductions preserve at least
    one depth-optimal witness) is dropped. The search is exhaustive up
    to those reductions, so [Unsorted] is a proof that no [max_depth]-
    move prefix sorts, and the first level at which a sorted child
    appears is the exact optimum.

    Expansion fans out across OCaml 5 domains via {!Par.map_list}, as
    does the candidates-versus-kept part of the subsumption filter; a
    shared atomic flag short-circuits all domains once a witness is
    found or the budget trips. With [domains = 1] everything runs
    inline and deterministically.

    Observability: a run wrapped around an {!Obs.Sink} emits one
    ["span"] event per level (path ["search/level"]) whose [nodes] /
    [pruned] / [deduped] / [subsumed] fields are per-level deltas —
    summing them over all level events reproduces the final {!stats}
    exactly — plus a closing ["search"] event with the totals; the
    [on_level] callback delivers live cumulative stats after each
    completed level. Both cost nothing when absent.

    Crash safety: with [~checkpoint:(path, interval)] the driver cuts
    a snapshot of its whole loop state at every level boundary (the
    only points where that state is a consistent prefix of the
    search) and publishes it through {!Checkpoint.write} whenever
    [interval] seconds have passed since the last write — or since the
    start of the run, so the first write falls due one full interval
    in ([0.] = every boundary); boundaries skipped by the cadence
    cost a closure, not a serialization, so checkpointing is near-free
    between writes; a run interrupted by a {!Cancel} token, a signal
    handler tripping one, or an injected ["kill-level"] {!Fault}
    returns [Interrupted] after flushing the newest unwritten
    boundary. {!resume} reads a snapshot back; [run ~resume] then
    continues from that boundary with identical frontier, dedup
    memory, counters and already-spent budget, so the eventual
    outcome, witness and cumulative node counts are exactly those of
    a never-interrupted run. An incompatible or stale snapshot (other
    width, [max_depth], dedup mode or move tag) degrades to a fresh
    run with a [stderr] warning — resuming is never less safe than
    rerunning. *)

type budget = { max_nodes : int; max_seconds : float option }
(** [max_nodes] bounds move applications (edges explored);
    [max_seconds] optionally bounds {e wall-clock} time
    ({!Obs.Clock.wall}), so a budget means the same seconds at any
    [domains] count. (Earlier versions metered [Sys.time], which sums
    CPU over domains and tripped [domains]x too early.) *)

val default_budget : budget
(** 200 million nodes, no time cap. *)

type stats = {
  nodes : int;  (** move applications performed *)
  pruned : int;  (** children dropped by the system's prune test *)
  deduped : int;  (** children dropped as equal to a seen state *)
  subsumed : int;  (** children dropped by subsumption *)
  redundant : int;
      (** moves skipped before application by the system's
          [redundant_of] static-analysis hook (never counted in
          [nodes]) *)
  frontier_sizes : int list;  (** surviving frontier per completed level *)
  peak_frontier : int;
  completed_levels : int;
      (** levels fully expanded and deduplicated; on [Inconclusive],
          depths up to this value are exhaustively refuted *)
  elapsed : float;  (** wall-clock seconds *)
  elapsed_cpu : float;
      (** CPU seconds, summed over domains (>= [elapsed] on multicore
          runs when cores are busy) *)
}

type 'm outcome =
  | Sorted of { depth : int; moves : 'm list; stats : stats }
      (** a sorting prefix exists; [moves] (in application order) is a
          witness of the {e minimal} length [depth <= max_depth] *)
  | Unsorted of stats
      (** no prefix of up to [max_depth] moves sorts (exhaustive) *)
  | Inconclusive of stats  (** budget exhausted first *)
  | Interrupted of stats
      (** cancelled (token, signal, or injected kill) before a
          verdict; [completed_levels] depths are still exhaustively
          refuted, and a configured checkpoint holds the last
          completed boundary for {!resume} *)

type dedup = Equal | Subsume

type 'm system = {
  n : int;
  tag : string;
      (** names the move type for checkpoint compatibility (e.g.
          ["layers"], ["shuffle-ops"]); a snapshot only resumes into a
          system with the same tag *)
  initial : State.t;
  moves_at : level:int -> 'm list;
      (** moves available for the layer at 1-based [level] *)
  apply : 'm -> State.t -> State.t;
  pairs_of : ('m -> (int * int) list) option;
      (** when every move is a plain comparator layer, the ascending
          [(i, j)] pairs it applies — [Some] unlocks the {!Arena}
          engine, whose word-parallel butterfly replaces [apply];
          [None] (moves that are not comparator layers, e.g. the
          shuffled op vectors of [Min_depth]) pins the run to the
          legacy engine. When [Some f], [f m] and [apply m] must agree:
          [apply m st = State.apply_comparators st (f m)]. *)
  prune : level:int -> remaining:int -> State.t -> bool;
      (** sound necessary-condition filter: [true] only if the state
          cannot reach a sorted state within [remaining] more moves *)
  redundant_of : level:int -> State.t -> 'm -> bool;
      (** static-analysis move filter, consulted {e before} a move is
          applied: [true] only if some other available move (or the
          already-represented parent) provably reaches the same child,
          so skipping the move preserves a depth-optimal witness. The
          driver partially applies [redundant_of ~level st] once per
          expanded state — implementations amortize per-state work
          (e.g. a reachable-set scan) in that closure. Skips are
          counted in [stats.redundant] and the
          ["analysis.redundant_moves"] metric, not in [nodes]. *)
  dedup : dedup;
}

val no_prune : level:int -> remaining:int -> State.t -> bool
val no_redundant : level:int -> State.t -> 'a -> bool

val subsume_filter :
  domains:int ->
  kept:(State.t * Subsume.fingerprint) list ref ->
  (State.t * 'a * Subsume.fingerprint) list ->
  (State.t * 'a) list * int
(** The driver's greedy subsumption filter, exposed so the sharded
    coordinator ({!Shard_search}) merges with {e the same} decision
    procedure the in-process engines use. [candidates] must already be
    equality-deduped and sorted by ascending fingerprint cardinality;
    survivors are appended to [kept] and returned with the number
    dropped. For every [domains] the kept set equals the plain
    sequential greedy filter's (fan-out only parallelises the test
    against representatives frozen before each batch). *)

type engine = [ `Auto | `Legacy | `Arena ]
(** Which frontier representation {!run} executes on. [`Legacy] is the
    boxed [State.t] list / [Hashtbl] path with {!Par} fan-out;
    [`Arena] is the packed single-domain {!Arena} path (requires
    [pairs_of]); [`Auto] (the default) picks the arena whenever the
    system exposes [pairs_of]. Both engines explore candidates in the
    same order with boolean-identical dedup and subsumption decisions,
    so outcome, witness, stats and checkpoints are interchangeable —
    a snapshot written by either engine resumes into either. *)

type resume_state
(** A validated checkpoint snapshot, ready to hand to {!run}. *)

val resume : path:string -> (resume_state, string) result
(** Read a search checkpoint back, falling back to the [.bak] copy
    (with a [stderr] warning) when the primary is missing or corrupt.
    [Error] if neither copy is a valid search checkpoint — a torn or
    bit-flipped file is reported, never raised, and {e never} silently
    accepted (the envelope CRC catches any single corrupted byte). *)

val describe : resume_state -> string
(** One line naming the snapshot: tag, width, depth cap, next level. *)

val run :
  ?domains:int ->
  ?engine:engine ->
  ?budget:budget ->
  ?sink:Sink.t ->
  ?on_level:(level:int -> frontier:int -> stats -> unit) ->
  ?frontier_log:(level:int -> State.t list -> unit) ->
  ?cancel:Cancel.t ->
  ?checkpoint:string * float ->
  ?resume:resume_state ->
  max_depth:int ->
  'm system ->
  'm outcome
(** [run ~max_depth sys] searches prefixes of up to [max_depth] moves.
    [domains] (default 1) parallelises expansion and subsumption
    filtering on the legacy engine; the arena engine (see {!engine})
    runs single-domain and ignores the fan-out. [sink] (default {!Sink.null}) receives the per-level
    and closing span events; [on_level ~level ~frontier stats] fires
    after each {e completed} level with the surviving frontier size
    and a cumulative stats snapshot. [frontier_log ~level states]
    receives each completed level's surviving states in frontier
    order — identical on both engines — the feed certificate emitters
    consume. [cancel] is polled by every
    worker domain between expansions and at level boundaries; once
    tripped the fan-out drains and the run returns [Interrupted].
    [checkpoint:(path, interval)] snapshots progress at level
    boundaries at most every [interval] seconds (see the module
    preamble); [resume] continues from such a snapshot. With
    [domains > 1] the witness (not its length) and the node counts may
    vary between runs; every outcome is sound. *)

(** {1 Sorting-network instantiation} *)

type layer = Layers.layer

val network_system : ?restrict:bool -> n:int -> unit -> layer system
(** The general optimal-depth search on [n] wires. Both modes fix the
    canonical maximal first layer (Parberry; Bundala–Závodný Lemma 3 —
    justified independently of any frontier reduction). With [restrict]
    (default [true]) levels 2+ additionally use second layers up to
    first-layer symmetry and subsumption deduplication, and levels 3+
    consult the static-analysis [redundant_of] hook: a layer holding a
    comparator that never fires on the state's reachable 0-1 set
    ({!Reach.unordered_pairs}) is skipped, because [Layers.all]
    contains the same layer without it — same child, one comparator
    cheaper. With [~restrict:false] they use every layer, equality-only
    deduplication and no analysis hook — the slow exhaustive reference
    the pruned search is validated against.
    @raise Invalid_argument unless [2 <= n <= 10]. *)

val optimal_depth :
  ?domains:int -> ?engine:engine -> ?budget:budget -> ?sink:Sink.t ->
  ?on_level:(level:int -> frontier:int -> stats -> unit) ->
  ?frontier_log:(level:int -> State.t list -> unit) ->
  ?cancel:Cancel.t -> ?checkpoint:string * float -> ?resume:resume_state ->
  ?restrict:bool -> ?max_depth:int ->
  n:int -> unit -> layer outcome
(** [optimal_depth ~n ()] certifies the exact minimal depth of a
    sorting network on [n] wires (for [Sorted], [depth] is optimal and
    [moves] a witness). [max_depth] defaults to [n], an upper bound by
    odd-even transposition sort. *)

val witness_network : n:int -> layer list -> Network.t
(** The witness as a circuit-model network, one level per layer. *)

val verify_witness : n:int -> layer list -> bool
(** Checks a witness on all [2^n] zero-one inputs through the compiled
    engine ({!Cache} + {!Bitslice}) — independent of the searcher's
    own state arithmetic. *)
