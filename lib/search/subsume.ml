type fingerprint = {
  card : int;
  level_card : int array;
  chan_ones : int array array;
}

let fingerprint st =
  let n = State.n st in
  let level_card = Array.make (n + 1) 0 in
  let chan_ones = Array.make_matrix n (n + 1) 0 in
  let card = ref 0 in
  State.iter_masks
    (fun m ->
      let k = Bitops.popcount m in
      incr card;
      level_card.(k) <- level_card.(k) + 1;
      let w = ref m in
      while !w <> 0 do
        let c = Bitops.floor_log2 (!w land - !w) in
        chan_ones.(c).(k) <- chan_ones.(c).(k) + 1;
        w := !w land (!w - 1)
      done)
    st;
  { card = !card; level_card; chan_ones }

let level_cards_le fa fb =
  let ok = ref true in
  Array.iteri (fun k a -> if a > fb.level_card.(k) then ok := false) fa.level_card;
  !ok

(* Channel c of A may map to c' of B only if at every level B has at
   least as many vectors with the bit set, and at least as many with it
   clear (the injection preserves levels and the mapped bit). *)
let channel_ok fa fb c c' =
  let levels = Array.length fa.level_card in
  let ok = ref true in
  for k = 0 to levels - 1 do
    if
      fa.chan_ones.(c).(k) > fb.chan_ones.(c').(k)
      || fa.level_card.(k) - fa.chan_ones.(c).(k)
         > fb.level_card.(k) - fb.chan_ones.(c').(k)
    then ok := false
  done;
  !ok

let channel_candidates fa fb =
  let n = Array.length fa.chan_ones in
  Array.init n (fun c ->
      List.filter (channel_ok fa fb c) (List.init n Fun.id))

let permute_mask pi m =
  let img = ref 0 in
  let w = ref m in
  while !w <> 0 do
    let c = Bitops.floor_log2 (!w land - !w) in
    img := !img lor (1 lsl pi.(c));
    w := !w land (!w - 1)
  done;
  !img

let subsumes (sa, fa) (sb, fb) =
  if State.n sa <> State.n sb then
    invalid_arg "Subsume.subsumes: states of different widths";
  State.subset sa sb
  || fa.card <= fb.card
     && level_cards_le fa fb
     &&
     let n = State.n sa in
     let cand = channel_candidates fa fb in
     Array.for_all (fun l -> l <> []) cand
     &&
     (* assign the most constrained channels first *)
     let order = Array.init n Fun.id in
     Array.sort
       (fun c c' -> compare (List.length cand.(c)) (List.length cand.(c')))
       order;
     let pi = Array.make n (-1) in
     let used = Array.make n false in
     let rec assign i =
       if i = n then
         State.for_all_masks (fun m -> State.mem sb (permute_mask pi m)) sa
       else
         let c = order.(i) in
         List.exists
           (fun c' ->
             (not used.(c'))
             && begin
                  pi.(c) <- c';
                  used.(c') <- true;
                  let r = assign (i + 1) in
                  used.(c') <- false;
                  r
                end)
           cand.(c)
     in
     assign 0

let subsumes_states a b = subsumes (a, fingerprint a) (b, fingerprint b)
