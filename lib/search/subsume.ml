type fingerprint = {
  card : int;
  level_card : int array;
  chan_ones : int array array;
}

let fingerprint st =
  let n = State.n st in
  let level_card = Array.make (n + 1) 0 in
  let chan_ones = Array.make_matrix n (n + 1) 0 in
  let card = ref 0 in
  State.iter_masks
    (fun m ->
      let k = Bitops.popcount m in
      incr card;
      level_card.(k) <- level_card.(k) + 1;
      let w = ref m in
      while !w <> 0 do
        let c = Bitops.floor_log2 (!w land - !w) in
        chan_ones.(c).(k) <- chan_ones.(c).(k) + 1;
        w := !w land (!w - 1)
      done)
    st;
  { card = !card; level_card; chan_ones }

let level_cards_le fa fb =
  let ok = ref true in
  Array.iteri (fun k a -> if a > fb.level_card.(k) then ok := false) fa.level_card;
  !ok

(* Channel c of A may map to c' of B only if at every level B has at
   least as many vectors with the bit set, and at least as many with it
   clear (the injection preserves levels and the mapped bit). *)
let channel_ok fa fb c c' =
  let levels = Array.length fa.level_card in
  let ok = ref true in
  for k = 0 to levels - 1 do
    if
      fa.chan_ones.(c).(k) > fb.chan_ones.(c').(k)
      || fa.level_card.(k) - fa.chan_ones.(c).(k)
         > fb.level_card.(k) - fb.chan_ones.(c').(k)
    then ok := false
  done;
  !ok

let channel_candidates fa fb =
  let n = Array.length fa.chan_ones in
  Array.init n (fun c ->
      List.filter (channel_ok fa fb c) (List.init n Fun.id))

let permute_mask pi m =
  let img = ref 0 in
  let w = ref m in
  while !w <> 0 do
    let c = Bitops.floor_log2 (!w land - !w) in
    img := !img lor (1 lsl pi.(c));
    w := !w land (!w - 1)
  done;
  !img

let subsumes (sa, fa) (sb, fb) =
  if State.n sa <> State.n sb then
    invalid_arg "Subsume.subsumes: states of different widths";
  State.subset sa sb
  || fa.card <= fb.card
     && level_cards_le fa fb
     &&
     let n = State.n sa in
     let cand = channel_candidates fa fb in
     Array.for_all (fun l -> l <> []) cand
     &&
     (* assign the most constrained channels first *)
     let order = Array.init n Fun.id in
     Array.sort
       (fun c c' -> compare (List.length cand.(c)) (List.length cand.(c')))
       order;
     let pi = Array.make n (-1) in
     let used = Array.make n false in
     let rec assign i =
       if i = n then
         State.for_all_masks (fun m -> State.mem sb (permute_mask pi m)) sa
       else
         let c = order.(i) in
         List.exists
           (fun c' ->
             (not used.(c'))
             && begin
                  pi.(c) <- c';
                  used.(c') <- true;
                  let r = assign (i + 1) in
                  used.(c') <- false;
                  r
                end)
           cand.(c)
     in
     assign 0

let subsumes_states a b = subsumes (a, fingerprint a) (b, fingerprint b)

(* Same search as [subsumes], but hands back the witnessing wire
   permutation so a certificate can cite it. *)
let subsumes_perm (sa, fa) (sb, fb) =
  if State.n sa <> State.n sb then
    invalid_arg "Subsume.subsumes_perm: states of different widths";
  let n = State.n sa in
  if State.subset sa sb then Some (Array.init n Fun.id)
  else if not (fa.card <= fb.card && level_cards_le fa fb) then None
  else
    let cand = channel_candidates fa fb in
    if not (Array.for_all (fun l -> l <> []) cand) then None
    else begin
      let order = Array.init n Fun.id in
      Array.sort
        (fun c c' -> compare (List.length cand.(c)) (List.length cand.(c')))
        order;
      let pi = Array.make n (-1) in
      let used = Array.make n false in
      let rec assign i =
        if i = n then
          State.for_all_masks (fun m -> State.mem sb (permute_mask pi m)) sa
        else
          let c = order.(i) in
          List.exists
            (fun c' ->
              (not used.(c'))
              && begin
                   pi.(c) <- c';
                   used.(c') <- true;
                   let r = assign (i + 1) in
                   used.(c') <- false;
                   r
                 end)
            cand.(c)
      in
      if assign 0 then Some pi else None
    end

(* --- canonical wire-permutation form --- *)

(* Channels are grouped into classes by their per-level ones histogram
   (the [chan_ones] row). The row is permutation-covariant — relabel
   the state by [pi] and channel [pi c] inherits channel [c]'s row —
   so the class partition, the class sizes and the lexicographic order
   of class signatures are all isomorphism-invariant. The canonical
   form is the lexicographically smallest image of the mask set over
   the permutations that map each class onto its block of target
   positions (classes ordered by signature): for two isomorphic
   states those candidate image sets coincide, so the minima are equal
   (completeness), and any canonical form is an image of the state
   under a concrete permutation, so equal canonical forms imply
   isomorphism (soundness).

   The candidate count is the product of class factorials —
   exponential for highly symmetric states — so the enumeration is
   capped, scaled down for large states so the total work stays
   bounded. Beyond the cap each class keeps its members in channel
   order: still deterministic and sound (the result remains a genuine
   image), merely no longer guaranteed equal across isomorphs. The
   cap predicate itself only reads isomorphism-invariant quantities,
   so two isomorphic states always take the same branch. *)

let canonical_images_cap = 40_320 (* 8! *)

let sorted_image pi masks =
  let img = Array.map (permute_mask pi) masks in
  Array.sort compare img;
  img

let canonical_masks st =
  let n = State.n st in
  let fp = fingerprint st in
  let order = Array.init n Fun.id in
  (* order channels by signature; ties broken by channel index so the
     capped fallback is deterministic *)
  Array.sort
    (fun c d ->
      match compare fp.chan_ones.(c) fp.chan_ones.(d) with
      | 0 -> compare c d
      | r -> r)
    order;
  (* classes: runs of equal signature, as (start, members) in target
     position order *)
  let classes = ref [] in
  let i = ref 0 in
  while !i < n do
    let j = ref (!i + 1) in
    while
      !j < n && fp.chan_ones.(order.(!i)) = fp.chan_ones.(order.(!j))
    do
      incr j
    done;
    classes := (!i, Array.sub order !i (!j - !i)) :: !classes;
    i := !j
  done;
  let classes = List.rev !classes in
  let masks = Array.of_list (State.masks st) in
  let fact k = let r = ref 1 in for v = 2 to k do r := !r * v done; !r in
  let images =
    List.fold_left (fun acc (_, ms) -> acc * fact (Array.length ms)) 1 classes
  in
  let cap =
    min canonical_images_cap (max 24 (2_000_000 / (Array.length masks + 1)))
  in
  let pi = Array.make n (-1) in
  List.iter
    (fun (start, members) ->
      Array.iteri (fun k c -> pi.(c) <- start + k) members)
    classes;
  if images <= 1 || images > cap then sorted_image pi masks
  else begin
    (* enumerate every block-respecting permutation: for each class,
       all arrangements of its members over its positions *)
    let best = ref (sorted_image pi masks) in
    let rec arrange = function
      | [] ->
          let img = sorted_image pi masks in
          if compare img !best < 0 then best := img
      | (start, members) :: rest ->
          let k = Array.length members in
          let used = Array.make k false in
          let rec place slot =
            if slot = k then arrange rest
            else
              for m = 0 to k - 1 do
                if not used.(m) then begin
                  used.(m) <- true;
                  pi.(members.(m)) <- start + slot;
                  place (slot + 1);
                  used.(m) <- false
                end
              done
          in
          place 0
    in
    arrange classes;
    !best
  end

(* SplitMix64 finalizer: full 64-bit avalanche, so distinct canonical
   forms scatter over the whole int64 range. *)
let mix64 h =
  let open Int64 in
  let h = logxor h (shift_right_logical h 30) in
  let h = mul h 0xBF58476D1CE4E5B9L in
  let h = logxor h (shift_right_logical h 27) in
  let h = mul h 0x94D049BB133111EBL in
  logxor h (shift_right_logical h 31)

let reachable_state nw =
  let n = Network.wires nw in
  if n < 2 || n > 16 then
    invalid_arg "Subsume.canonical_hash: wires must be in [2, 16]";
  let c = Cache.compile nw in
  let total = 1 lsl n in
  let reach = Array.make total false in
  let t = ref 0 in
  while !t < total do
    let m = min Bitslice.lanes (total - !t) in
    let lo = !t in
    let out = Bitslice.eval_masks c (Array.init m (fun j -> lo + j)) in
    Array.iter (fun o -> reach.(o) <- true) out;
    t := !t + m
  done;
  let masks = ref [] in
  for m = total - 1 downto 0 do
    if reach.(m) then masks := m :: !masks
  done;
  State.of_masks ~n !masks

let canonical_key nw =
  let st = reachable_state nw in
  let canon = canonical_masks st in
  let b = Buffer.create (8 + (Array.length canon * 5)) in
  Buffer.add_string b (string_of_int (State.n st));
  Array.iter
    (fun m ->
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int m))
    canon;
  Buffer.contents b

let canonical_hash nw =
  let st = reachable_state nw in
  let canon = canonical_masks st in
  let h = ref (mix64 (Int64.of_int ((State.n st * 0x9E3779B9) + 1))) in
  Array.iter
    (fun m ->
      h :=
        mix64
          (Int64.add
             (Int64.mul !h 0x100000001B3L)
             (Int64.of_int (m + 1))))
    canon;
  !h
