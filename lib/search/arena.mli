(** GC-free packed-state arena for the exact search.

    Every state the BFS ever sees is one flat row of int64 Bigarray
    words (64 reachable masks per word), with the scalars the
    subsumption filters scan — cardinality, BFS level, row hash and
    the packed filter signatures — in parallel int arrays: a
    struct-of-arrays layout the hot loops walk without chasing boxed
    [State.t] or fingerprint records. Dedup is open addressing over an
    xxhash64-style row hash (linear probing, power-of-two table,
    resized at load factor 1/2), so the frontier never allocates boxed
    keys. Comparator layers apply to a whole row as a butterfly of
    masked word shifts — O(row words) per comparator instead of a loop
    over every reachable mask.

    Mutation protocol: build a child into the single {e staging row}
    with {!stage_state} or {!stage_child}, interrogate it
    ({!staged_is_sorted}), then {!commit} it — which either dedups it
    against every row ever committed or freezes it as the next index.
    Committed rows are immutable and indices are stable for the arena's
    lifetime.

    An arena (and its staging row and subsumption scratch) is
    single-domain: confine each instance to one domain. *)

type t

val create : ?with_sigs:bool -> n:int -> unit -> t
(** An empty arena for [n]-wire states ([2 <= n <= 16]; rows are [2^n]
    bits). [with_sigs] (default true) additionally computes, at commit
    time, the packed SWAR signatures that {!subsumes} needs; pass
    [false] for equality-dedup-only runs to skip that work. *)

val n : t -> int

val length : t -> int
(** Number of committed states; valid indices are [0 .. length - 1]. *)

val stage_state : t -> State.t -> unit
(** Pack an explicit state into the staging row. *)

val stage_child : t -> parent:int -> (int * int) list -> unit
(** [stage_child t ~parent layer] writes into the staging row the image
    of committed row [parent] under the comparator layer (ascending
    [(i, j)] pairs, [i < j]) — the arena-native
    [State.apply_comparators]. *)

val staged_is_sorted : t -> bool
(** Whether the staging row's reachable set contains only the [n + 1]
    sorted 0-1 vectors — the "witness found" test, before commit. *)

val commit : t -> level:int -> [ `Fresh of int | `Dup of int ]
(** Dedup-insert the staging row: [`Dup idx] if a row with identical
    words was already committed (the staging row is simply abandoned),
    else [`Fresh idx] freezing it at the next index with BFS level
    [level] (and its signatures, when enabled). *)

val staged_state : t -> State.t
(** Unpack the staging row (allocating) without committing it — for
    [State.t]-typed prune hooks that must see a child {e before} it
    enters the dedup memory. *)

val truncate : t -> int -> unit
(** [truncate t len] drops every row committed after the first [len]
    (indices [>= len] become invalid; the dedup table is rebuilt).
    How an interrupted run discards an in-flight level's commits so a
    checkpoint cut at the previous boundary stays consistent. *)

val card : t -> int -> int
(** Reachable-set cardinality of a committed row (precomputed). *)

val level : t -> int -> int
(** BFS level recorded at commit. *)

val to_state : t -> int -> State.t
(** Unpack a committed row (allocating) — the bridge to the
    [State.t]-typed prune/redundancy hooks and checkpoint format. *)

val iter_masks : t -> int -> (int -> unit) -> unit
(** Iterate the reachable masks of a committed row in increasing order
    without unpacking it. *)

val subsumes : t -> int -> int -> bool
(** [subsumes t a b] is boolean-identical to
    [Subsume.subsumes (to_state t a, _) (to_state t b, _)]: does some
    wire permutation carry row [a]'s reachable set into a subset of row
    [b]'s? The card / level / per-channel filters run as field-wise
    comparisons on the packed signatures (one subtract-and-mask per
    signature word), candidate channel images are bitmasks, and the
    final backtracking search is allocation-free. Requires the arena to
    have been created with signatures. *)

val record_metrics : t -> unit
(** Flush the arena's local counters into the global {!Metrics}
    registry ([arena.probes], [arena.collisions], [arena.resizes],
    [arena.bytes]; [arena.states] / [arena.dups] are bumped live at
    commit) — call once per run, not per operation. *)
