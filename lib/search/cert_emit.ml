(* Derive an exhaustion certificate from a search's frontier log. The
   driver only hands over the surviving states per level; every cover —
   the subsumption witness that justifies dropping each expanded child —
   is recomputed here, then the finished certificate is re-validated by
   the independent checker before it leaves this function. *)

let exhaustion ~n ~max_depth ~frontiers =
  if n < 2 || n > 12 then Error "cert emission supports n in [2, 12]"
  else if max_depth < 1 then Error "max_depth must be >= 1"
  else if List.length frontiers < max_depth - 1 then
    Error
      (Printf.sprintf "need %d logged frontiers for max-depth %d, got %d"
         (max_depth - 1) max_depth (List.length frontiers))
  else begin
    let frontiers =
      List.filteri (fun i _ -> i < max_depth - 1) frontiers
    in
    let matchings = Cert.all_matchings ~n in
    (* the certificate pool: initial state implicit at index 0, then
       every frontier state in file order *)
    let dummy =
      let st = State.initial ~n in
      (st, Subsume.fingerprint st)
    in
    let pool : (State.t * Subsume.fingerprint) array ref =
      ref (Array.make 64 dummy)
    in
    let pool_len = ref 0 in
    let by_key : (int array, int) Hashtbl.t = Hashtbl.create 1024 in
    let add_pool st =
      if !pool_len = Array.length !pool then begin
        let np = Array.make (2 * Array.length !pool) (!pool).(0) in
        Array.blit !pool 0 np 0 !pool_len;
        pool := np
      end;
      (!pool).(!pool_len) <- (st, Subsume.fingerprint st);
      let k = State.key st in
      if not (Hashtbl.mem by_key k) then Hashtbl.add by_key k !pool_len;
      incr pool_len
    in
    let identity = Array.init n Fun.id in
    let cover_of child =
      (* equality fast path: an identical pool entry covers the child
         with the identity permutation *)
      match Hashtbl.find_opt by_key (State.key child) with
      | Some cite -> Some Cert.{ cite; pi = identity }
      | None ->
          let fc = Subsume.fingerprint child in
          let rec scan i =
            if i >= !pool_len then None
            else
              let q, fq = (!pool).(i) in
              match Subsume.subsumes_perm (q, fq) (child, fc) with
              | Some pi -> Some Cert.{ cite = i; pi }
              | None -> scan (i + 1)
          in
          scan 0
    in
    let exception Uncovered of string in
    try
      add_pool (State.initial ~n);
      let prev = ref [ State.initial ~n ] in
      let covers =
        List.mapi
          (fun li states ->
            let l = li + 1 in
            List.iter add_pool states;
            let block = ref [] in
            List.iteri
              (fun pi_idx p ->
                List.iteri
                  (fun mi m ->
                    let child = State.apply_comparators p m in
                    if State.is_sorted child then
                      raise
                        (Uncovered
                           (Printf.sprintf
                              "level %d parent %d matching %d: child is \
                               sorted — not an exhaustion"
                              l pi_idx mi));
                    match cover_of child with
                    | Some cv -> block := cv :: !block
                    | None ->
                        raise
                          (Uncovered
                             (Printf.sprintf
                                "level %d parent %d matching %d: no pool \
                                 entry subsumes the child"
                                l pi_idx mi)))
                  matchings)
              !prev;
            prev := states;
            List.rev !block)
          frontiers
      in
      let cert =
        Cert.Exhaustion
          { n;
            max_depth;
            frontiers =
              Array.of_list (List.map (List.map State.masks) frontiers);
            covers = Array.of_list covers }
      in
      match Cert.check cert with
      | Ok () -> Ok cert
      | Error e ->
          Error
            (Printf.sprintf "emitted certificate fails its own check: %s %s: %s"
               e.Cert.code e.Cert.where e.Cert.reason)
    with Uncovered why -> Error why
  end
