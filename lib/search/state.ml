(* Packed bitset over the 2^n zero-one vectors. 62 masks per word keeps
   every word nonnegative, so Bitops.popcount and floor_log2 apply
   directly. *)

let bits_per_word = 62

type t = { n : int; words : int array }

let word_count n = (((1 lsl n) + bits_per_word - 1) / bits_per_word)

let check_n n =
  if n < 2 || n > 20 then
    invalid_arg "Search.State: n must be in [2, 20] (state is 2^n bits)"

let n st = st.n

let initial ~n =
  check_n n;
  let total = 1 lsl n in
  let words =
    Array.init (word_count n) (fun i ->
        let cnt = min bits_per_word (total - (i * bits_per_word)) in
        if cnt = bits_per_word then max_int else (1 lsl cnt) - 1)
  in
  { n; words }

let of_masks ~n masks =
  check_n n;
  let words = Array.make (word_count n) 0 in
  List.iter
    (fun m ->
      if m < 0 || m >= 1 lsl n then
        invalid_arg "Search.State.of_masks: mask out of range";
      let w = m / bits_per_word in
      words.(w) <- words.(w) lor (1 lsl (m mod bits_per_word)))
    masks;
  { n; words }

let mem st m = (st.words.(m / bits_per_word) lsr (m mod bits_per_word)) land 1 = 1

let card st = Array.fold_left (fun acc w -> acc + Bitops.popcount w) 0 st.words

let iter_masks f st =
  Array.iteri
    (fun i word ->
      let base = i * bits_per_word in
      let w = ref word in
      while !w <> 0 do
        let low = !w land - !w in
        f (base + Bitops.floor_log2 low);
        w := !w land (!w - 1)
      done)
    st.words

let fold_masks f st init =
  let acc = ref init in
  iter_masks (fun m -> acc := f m !acc) st;
  !acc

exception Early

let exists_mask p st =
  try
    iter_masks (fun m -> if p m then raise Early) st;
    false
  with Early -> true

let for_all_masks p st = not (exists_mask (fun m -> not (p m)) st)

let masks st = List.rev (fold_masks (fun m acc -> m :: acc) st [])

let equal a b = a.n = b.n && a.words = b.words

(* Short-circuits on the first violating word: this sits inside the
   subsumption inner loop, where almost every call is a refutation and
   the violation is overwhelmingly in an early word. *)
let subset a b =
  a.n = b.n
  &&
  let len = Array.length a.words in
  let i = ref 0 in
  while !i < len && a.words.(!i) land lnot b.words.(!i) = 0 do
    incr i
  done;
  !i = len

let key st = st.words

let of_key ~n words =
  check_n n;
  if Array.length words <> word_count n then
    invalid_arg "Search.State.of_key: wrong word count for this n";
  { n; words = Array.copy words }

let map_masks st f =
  let words = Array.make (Array.length st.words) 0 in
  iter_masks
    (fun m ->
      let m' = f m in
      let w = m' / bits_per_word in
      words.(w) <- words.(w) lor (1 lsl (m' mod bits_per_word)))
    st;
  { n = st.n; words }

let apply_comparators st layer =
  map_masks st (fun m ->
      List.fold_left
        (fun m (i, j) ->
          (* ascending comparator: only (1, 0) across (i, j) changes *)
          if (m lsr i) land 1 = 1 && (m lsr j) land 1 = 0 then
            m lxor ((1 lsl i) lor (1 lsl j))
          else m)
        m layer)

(* The n + 1 sorted vectors, cached per n so is_sorted is a word-wise
   subset test rather than a per-mask loop. *)
let sorted_states : t option array = Array.make 21 None

let sorted_state n =
  match sorted_states.(n) with
  | Some st -> st
  | None ->
      let st =
        of_masks ~n (List.init (n + 1) (fun k -> ((1 lsl k) - 1) lsl (n - k)))
      in
      sorted_states.(n) <- Some st;
      st

let is_sorted st = subset st (sorted_state st.n)
