(** Subsumption between search states under channel permutation
    (Bundala–Závodný), with the cheap necessary-condition filters of
    Frăsinaru–Răschip applied before any permutation is attempted.

    State [A] {e subsumes} state [B] when some wire permutation [pi]
    satisfies [pi(A) ⊆ B]: any comparator suffix that completes [B] to
    a sorting network, conjugated by [pi], completes [A] in the same
    number of layers, so [B] may be dropped from a frontier that keeps
    [A] without losing any depth-optimal network. (Conjugation can
    reverse comparators; by Knuth's untangling argument — exercise
    5.3.4.16 — a generalized network rewrites to a standard one of the
    same depth, so depth conclusions are unaffected.)

    The permutation search is a backtracking match over channels,
    gated by three filters, each necessary for [pi(A) ⊆ B] because
    [pi] maps the vectors of [A] {e injectively} into [B] preserving
    ones-count (the "level" of a vector):

    - cardinality: [|A| <= |B|];
    - per-level cardinality: [|A_k| <= |B_k|] for every level [k];
    - channel histograms: channel [c] of [A] may map to [c'] of [B]
      only if, at every level [k], [A_k] has no more vectors with bit
      [c] set (resp. clear) than [B_k] has with bit [c'] set (resp.
      clear). *)

type fingerprint = {
  card : int;  (** number of vectors *)
  level_card : int array;  (** index [k]: vectors with [k] ones *)
  chan_ones : int array array;
      (** [chan_ones.(c).(k)]: vectors with [k] ones and bit [c] set *)
}

val fingerprint : State.t -> fingerprint
(** One pass over the state; cost [O(card * n)]. Frontier entries cache
    this so repeated subsumption tests pay it once. *)

val level_cards_le : fingerprint -> fingerprint -> bool
(** The per-level cardinality filter: [|A_k| <= |B_k|] for all [k]. *)

val channel_candidates : fingerprint -> fingerprint -> int list array
(** [channel_candidates fa fb] lists, per channel [c] of [A], the
    channels of [B] that pass the histogram filter. An empty list for
    any channel refutes subsumption without a permutation search. *)

val subsumes : State.t * fingerprint -> State.t * fingerprint -> bool
(** [subsumes (a, fa) (b, fb)] decides whether [a] subsumes [b]. The
    identity-permutation case ([subset a b]) is tested first, then the
    filters, then the backtracking match (channels ordered by fewest
    candidates, final subset check over the vectors of [a]).
    @raise Invalid_argument if the states have different widths. *)

val subsumes_states : State.t -> State.t -> bool
(** [subsumes] computing both fingerprints on the fly (tests, one-off
    queries). *)

val subsumes_perm :
  State.t * fingerprint -> State.t * fingerprint -> int array option
(** Like {!subsumes}, but returns the witnessing permutation as an
    image array ([pi.(c)] is where channel [c] lands), so certificate
    emitters can cite it; [Some] of the identity when [subset a b]
    short-circuits. @raise Invalid_argument on width mismatch. *)

(** {1 Canonical wire-permutation form}

    Two networks are {e isomorphic} here when some wire permutation
    [pi] carries the 0-1 reachable set of one onto the other's — the
    same relabeling equivalence the subsumption filters exploit, on
    whole networks. The canonical form picks a distinguished image of
    the reachable set: channels are classed by their per-level ones
    histograms (permutation-covariant, so the classing is
    isomorphism-invariant) and the lexicographically smallest image
    over class-respecting permutations wins. Equal canonical forms
    always imply isomorphism (the form is an image under a concrete
    permutation); the converse holds whenever the class-factorial
    enumeration fits the internal cap, which covers every network
    whose channels are even mildly distinguishable — beyond the cap
    the form degrades deterministically to a fixed class-ordered
    image, losing sharing but never soundness. The verification
    service keys its response cache on this form so isomorphic
    submissions hit one entry. *)

val canonical_masks : State.t -> int array
(** The canonical image of the state's mask set, sorted ascending. *)

val canonical_key : Network.t -> string
(** Exact canonical cache key: width plus the canonical mask list of
    the network's 0-1 reachable set (computed by a bit-sliced sweep of
    all [2^wires] inputs). Keys are equal exactly when the canonical
    forms are — no hash collisions.
    @raise Invalid_argument unless [2 <= wires <= 16]. *)

val canonical_hash : Network.t -> int64
(** [canonical_key] folded through a SplitMix64 avalanche into 64
    bits: isomorphic networks always collide; distinct canonical forms
    collide only with ordinary 64-bit hash probability.
    @raise Invalid_argument unless [2 <= wires <= 16]. *)
