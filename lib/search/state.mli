(** A search node: the closed set of zero-one vectors reachable at the
    output of a comparator-network prefix, as a packed bitset.

    By the 0-1 principle, a prefix on [n] wires is characterised — for
    the purpose of deciding whether some suffix completes it to a
    sorting network — by the image of all [2^n] zero-one inputs. A
    vector assigns bit [w] of an [n]-bit mask to wire [w] (the same
    encoding as {!Min_depth}); the set of reachable masks is stored one
    bit per mask, 62 masks per word, so membership, union, subset and
    the sortedness test are word operations.

    States are immutable after construction and safe to share across
    domains. All transition functions ([apply_comparators],
    [map_masks]) allocate a fresh state. *)

type t

val initial : n:int -> t
(** All [2^n] vectors: the state of the empty prefix.
    @raise Invalid_argument unless [2 <= n <= 20]. *)

val of_masks : n:int -> int list -> t
(** A state holding exactly the given masks (duplicates collapse).
    @raise Invalid_argument if a mask is outside [0, 2^n). *)

val n : t -> int
(** Number of wires. *)

val card : t -> int
(** Number of reachable vectors. *)

val mem : t -> int -> bool

val masks : t -> int list
(** The reachable masks in increasing order (tests, diagnostics). *)

val iter_masks : (int -> unit) -> t -> unit

val fold_masks : (int -> 'a -> 'a) -> t -> 'a -> 'a

val exists_mask : (int -> bool) -> t -> bool

val for_all_masks : (int -> bool) -> t -> bool

val equal : t -> t -> bool

val subset : t -> t -> bool
(** [subset a b] is true iff every vector of [a] is in [b]. Word-wise. *)

val key : t -> int array
(** The underlying bit words, for hashtable keys. The caller must treat
    the array as frozen; two states on the same [n] are [equal] iff
    their keys are structurally equal. *)

val of_key : n:int -> int array -> t
(** Inverse of {!key} (the array is copied): rebuilds the state a key
    was taken from — how checkpointed dedup memory is rehydrated into
    an {!Arena}.
    @raise Invalid_argument if the word count is wrong for [n]. *)

val apply_comparators : t -> (int * int) list -> t
(** [apply_comparators st layer] pushes every reachable vector through
    one parallel layer of {e ascending} comparators: each pair [(i, j)]
    with [i < j] places the minimum on wire [i]. Pairs must be disjoint
    (not checked — the layer generators guarantee it). *)

val map_masks : t -> (int -> int) -> t
(** [map_masks st f] is the image state [{ f v | v in st }] — the
    generic transition for register-model stages (e.g. shuffle + ops in
    {!Min_depth}). [f] must return masks in [0, 2^n). *)

val is_sorted : t -> bool
(** True iff every reachable vector is sorted ascending by wire index
    (zeros on low wires) — i.e. the prefix is a sorting network. *)
