type budget = { max_nodes : int; max_seconds : float option }

let default_budget = { max_nodes = 200_000_000; max_seconds = None }

type stats = {
  nodes : int;
  pruned : int;
  deduped : int;
  subsumed : int;
  redundant : int;
  frontier_sizes : int list;
  peak_frontier : int;
  completed_levels : int;
  elapsed : float;
  elapsed_cpu : float;
}

type 'm outcome =
  | Sorted of { depth : int; moves : 'm list; stats : stats }
  | Unsorted of stats
  | Inconclusive of stats
  | Interrupted of stats

type dedup = Equal | Subsume

type 'm system = {
  n : int;
  tag : string;
  initial : State.t;
  moves_at : level:int -> 'm list;
  apply : 'm -> State.t -> State.t;
  pairs_of : ('m -> (int * int) list) option;
  prune : level:int -> remaining:int -> State.t -> bool;
  redundant_of : level:int -> State.t -> 'm -> bool;
  dedup : dedup;
}

type engine = [ `Auto | `Legacy | `Arena ]

let no_prune ~level:_ ~remaining:_ _ = false
let no_redundant ~level:_ _ _ = false

(* Cumulative global counters, surfaced by --metrics / bench-json. *)
let c_nodes = Metrics.counter "search.nodes"
let c_pruned = Metrics.counter "search.pruned"
let c_deduped = Metrics.counter "search.deduped"
let c_subsumed = Metrics.counter "search.subsumed"
let c_levels = Metrics.counter "search.levels"

(* The static-analysis pruning hook lives under the analyzer's counter
   namespace: these are redundancy facts (lib/analysis Reach domain)
   consumed by the search. *)
let c_redundant = Metrics.counter "analysis.redundant_moves"
let c_ckpt_failures = Metrics.counter "checkpoint.failures"
let c_resumes = Metrics.counter "checkpoint.resumes"

(* Work-size thresholds for the parallel sections: a domain spawn
   costs far more than expanding or fingerprinting one small state, so
   fan-out only engages once every domain can be fed at least this
   many elements (small frontiers — all of n <= 6 — stay sequential;
   see Par.map_list). *)
let expand_min_per_domain = 32
let subsume_min_per_domain = 16

(* Greedy subsumption filter. Candidates (already equality-deduped,
   sorted by ascending cardinality so the strongest states are kept
   first) are tested against the cumulative representative list; the
   test against representatives kept before this call parallelises in
   batches, the test against representatives added within the batch is
   a short sequential tail. Dropping a candidate is sound because some
   kept representative subsumes it. *)
let subsume_filter ~domains ~kept candidates =
  let dropped = ref 0 in
  let survivors = ref [] in
  let batch_size = if domains <= 1 then max_int else domains * 32 in
  let rec loop = function
    | [] -> ()
    | cands ->
        let rec split i acc = function
          | [] -> (List.rev acc, [])
          | x :: rest when i < batch_size -> split (i + 1) (x :: acc) rest
          | rest -> (List.rev acc, rest)
        in
        let batch, rest = split 0 [] cands in
        let frozen = !kept in
        let checked =
          Par.map_list ~min_per_domain:subsume_min_per_domain ~domains
            (fun ((st, _, fp) as cand) ->
              if
                List.exists (fun (s2, f2) -> Subsume.subsumes (s2, f2) (st, fp)) frozen
              then None
              else Some cand)
            batch
        in
        let batch_new = ref [] in
        List.iter
          (function
            | None -> incr dropped
            | Some ((st, pre, fp) as cand) ->
                if
                  List.exists
                    (fun (s2, _, f2) -> Subsume.subsumes (s2, f2) (st, fp))
                    !batch_new
                then incr dropped
                else begin
                  batch_new := cand :: !batch_new;
                  kept := (st, fp) :: !kept;
                  survivors := (st, pre) :: !survivors
                end)
          checked;
        loop rest
  in
  loop candidates;
  (List.rev !survivors, !dropped)

(* --- checkpoint / resume --- *)

(* -2: the snapshot gained [s_redundant] (the analysis-hook skip
   counter); older snapshots deserialize into a different record
   layout, so the kind is bumped and they are rejected as a whole —
   rerunning is always sound, resuming into a wrong layout never is. *)
let checkpoint_kind = "snlb-search-driver-2"

(* Everything run needs to continue from a level boundary exactly as
   if it had never stopped: the frontier (with the move prefixes that
   produced it), the cross-level equality and subsumption memories,
   every counter, and the wall/CPU time already spent (so budgets and
   reported stats cover the whole logical run, not just the last
   incarnation). *)
type 'm snapshot = {
  s_level : int;  (* next level to expand (1-based) *)
  s_frontier : (State.t * 'm list) list;
  s_seen : (int array, unit) Hashtbl.t;
  s_kept : (State.t * Subsume.fingerprint) list;
  s_nodes : int;
  s_pruned : int;
  s_deduped : int;
  s_subsumed : int;
  s_redundant : int;
  s_sizes : int list;  (* reversed frontier_sizes, as kept by the loop *)
  s_elapsed : float;
  s_elapsed_cpu : float;
}

type resume_state = {
  rs_tag : string;
  rs_n : int;
  rs_max_depth : int;
  rs_dedup : string;
  rs_level : int;
  rs_payload : string;
}

let dedup_name = function Equal -> "equal" | Subsume -> "subsume"

let meta_int meta key =
  match List.assoc_opt key meta with
  | None -> Error (Printf.sprintf "missing meta key %S" key)
  | Some v -> (
      match int_of_string_opt v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "meta key %S is not an integer (%S)" key v))

let resume ~path =
  match Checkpoint.load ~path with
  | Error _ as e -> e
  | Ok (ck, source) -> (
      (match source with
      | `Primary -> ()
      | `Backup reason ->
          Printf.eprintf
            "snlb: falling back to checkpoint backup %s (%s)\n%!"
            (Atomic_file.backup_path path) reason);
      if ck.Checkpoint.kind <> checkpoint_kind then
        Error
          (Printf.sprintf "checkpoint %s holds a %S snapshot, not a search"
             path ck.Checkpoint.kind)
      else
        let meta = ck.Checkpoint.meta in
        let ( let* ) = Result.bind in
        let* n = meta_int meta "n" in
        let* max_depth = meta_int meta "max_depth" in
        let* level = meta_int meta "level" in
        let* tag =
          match List.assoc_opt "tag" meta with
          | Some t -> Ok t
          | None -> Error "missing meta key \"tag\""
        in
        let* dedup =
          match List.assoc_opt "dedup" meta with
          | Some d -> Ok d
          | None -> Error "missing meta key \"dedup\""
        in
        Ok
          { rs_tag = tag;
            rs_n = n;
            rs_max_depth = max_depth;
            rs_dedup = dedup;
            rs_level = level;
            rs_payload = ck.Checkpoint.payload })

let describe rs =
  Printf.sprintf "%s search, n=%d, max_depth=%d, next level %d" rs.rs_tag
    rs.rs_n rs.rs_max_depth rs.rs_level

(* The snapshot is only trusted when every compatibility key matches
   the run it is resumed into: the completed levels of a different
   max_depth were explored under a different prune budget, a different
   dedup mode keeps a different frontier, and a different move tag is
   a different search entirely. On mismatch the run degrades to a
   fresh start with a warning — resuming must never be less safe than
   rerunning. *)
let validate_resume ~max_depth sys rs =
  if rs.rs_tag <> sys.tag then
    Error (Printf.sprintf "move tag %S does not match this search (%S)" rs.rs_tag sys.tag)
  else if rs.rs_n <> sys.n then
    Error (Printf.sprintf "checkpoint is for n=%d, this search is n=%d" rs.rs_n sys.n)
  else if rs.rs_max_depth <> max_depth then
    Error
      (Printf.sprintf "checkpoint max_depth=%d, this search max_depth=%d"
         rs.rs_max_depth max_depth)
  else if rs.rs_dedup <> dedup_name sys.dedup then
    Error
      (Printf.sprintf "checkpoint dedup=%s, this search dedup=%s" rs.rs_dedup
         (dedup_name sys.dedup))
  else Ok ()

let run ?(domains = 1) ?(engine = (`Auto : engine)) ?(budget = default_budget)
    ?(sink = Sink.null) ?on_level ?frontier_log ?cancel ?checkpoint
    ?resume:resume_from ~max_depth sys =
  if max_depth < 0 then invalid_arg "Driver.run: max_depth must be >= 0";
  let use_arena =
    match engine with
    | `Legacy -> false
    | `Arena ->
        if Option.is_none sys.pairs_of then
          invalid_arg
            "Driver.run: the arena engine needs a system exposing pairs_of";
        true
    | `Auto -> Option.is_some sys.pairs_of
  in
  (* a validated snapshot, or None for a fresh start *)
  let snap : 'm snapshot option =
    match resume_from with
    | None -> None
    | Some rs -> (
        match validate_resume ~max_depth sys rs with
        | Ok () ->
            Metrics.incr c_resumes;
            Some (Marshal.from_string rs.rs_payload 0 : 'm snapshot)
        | Error why ->
            Printf.eprintf
              "snlb: ignoring incompatible checkpoint (%s); starting fresh\n%!"
              why;
            None)
  in
  let prior_elapsed, prior_cpu =
    match snap with
    | Some s -> (s.s_elapsed, s.s_elapsed_cpu)
    | None -> (0., 0.)
  in
  let w0 = Clock.wall () -. prior_elapsed in
  let cpu0 = Clock.cpu () -. prior_cpu in
  let nodes =
    Atomic.make (match snap with Some s -> s.s_nodes | None -> 0)
  in
  let stop = Atomic.make false in
  let over_budget = Atomic.make false in
  let interrupted = ref false in
  let cancelled () =
    (match cancel with Some t -> Cancel.cancelled t | None -> false)
    || !interrupted
  in
  let pruned_total = ref (match snap with Some s -> s.s_pruned | None -> 0) in
  let deduped_total = ref (match snap with Some s -> s.s_deduped | None -> 0) in
  let subsumed_total = ref (match snap with Some s -> s.s_subsumed | None -> 0) in
  let redundant_total =
    ref (match snap with Some s -> s.s_redundant | None -> 0)
  in
  let sizes = ref (match snap with Some s -> s.s_sizes | None -> []) in
  let mk_stats completed =
    { nodes = Atomic.get nodes;
      pruned = !pruned_total;
      deduped = !deduped_total;
      subsumed = !subsumed_total;
      redundant = !redundant_total;
      frontier_sizes = List.rev !sizes;
      peak_frontier = List.fold_left max 0 !sizes;
      completed_levels = completed;
      elapsed = Clock.wall () -. w0;
      elapsed_cpu = Clock.cpu () -. cpu0 }
  in
  let record_totals s =
    Metrics.add c_nodes s.nodes;
    Metrics.add c_pruned s.pruned;
    Metrics.add c_deduped s.deduped;
    Metrics.add c_subsumed s.subsumed;
    Metrics.add c_redundant s.redundant;
    Metrics.add c_levels s.completed_levels
  in
  (* Checkpoints are cut at level boundaries — the only points where
     the loop state is a consistent prefix of the search. [interval]
     throttles the writes; the latest unwritten boundary payload is
     retained so an interruption can flush it. *)
  let ckpt_path, ckpt_interval =
    match checkpoint with
    | Some (p, i) -> (Some p, max 0. i)
    | None -> (None, 0.)
  in
  (* the cadence clock starts now: the first on-cadence write falls
     due one full interval into the run, so short runs don't pay for
     a write they'll never need (an interruption flushes regardless) *)
  let last_write = ref (Clock.wall ()) in
  let pending : (unit -> string * int) option ref = ref None in
  let flush_payload mk =
    let payload, boundary_level = mk () in
    match ckpt_path with
    | None -> ()
    | Some path -> (
        match
          Checkpoint.write ~path
            { Checkpoint.kind = checkpoint_kind;
              meta =
                [ ("tag", sys.tag);
                  ("n", string_of_int sys.n);
                  ("max_depth", string_of_int max_depth);
                  ("dedup", dedup_name sys.dedup);
                  ("level", string_of_int boundary_level) ];
              payload }
        with
        | Ok () ->
            last_write := Clock.wall ();
            pending := None
        | Error e ->
            Metrics.incr c_ckpt_failures;
            Printf.eprintf
              "snlb: checkpoint write failed (%s); search continues\n%!" e)
  in
  (* --- arena engine ---

     The packed-row fast path: the whole dedup memory lives in one
     {!Arena} (flat int64 rows + open addressing, no boxed keys), a
     child is built by the butterfly [Arena.stage_child] instead of a
     per-mask [apply], and subsumption runs on packed signatures. The
     loop is sequential (an arena is single-domain) but mirrors the
     legacy control flow decision for decision — same candidate order,
     same counter semantics, same level boundaries — and snapshots
     convert to the {e legacy} structures at flush time, so checkpoints
     keep [checkpoint_kind] and resume into either engine. *)
  let run_arena () =
    let pairs_of = Option.get sys.pairs_of in
    let arena = Arena.create ~with_sigs:(sys.dedup = Subsume) ~n:sys.n () in
    (* kept representatives as arena indices, sorted by ascending
       cardinality: a rep can only subsume candidates of >= its card
       (subsumption maps the reachable set injectively), so the scan
       for a candidate cuts off at the first larger card *)
    let kept_idx = ref (Array.make 256 0) in
    let kept_card = ref (Array.make 256 0) in
    let kept_len = ref 0 in
    let kept_insert idx =
      if !kept_len = Array.length !kept_idx then begin
        let grow a =
          let a' = Array.make (2 * Array.length a) 0 in
          Array.blit a 0 a' 0 (Array.length a);
          a'
        in
        kept_idx := grow !kept_idx;
        kept_card := grow !kept_card
      end;
      let c = Arena.card arena idx in
      let lo = ref 0 and hi = ref !kept_len in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if (!kept_card).(mid) <= c then lo := mid + 1 else hi := mid
      done;
      let pos = !lo in
      Array.blit !kept_idx pos !kept_idx (pos + 1) (!kept_len - pos);
      Array.blit !kept_card pos !kept_card (pos + 1) (!kept_len - pos);
      (!kept_idx).(pos) <- idx;
      (!kept_card).(pos) <- c;
      incr kept_len
    in
    let kept_subsumes cand =
      let c = Arena.card arena cand in
      let k = ref 0 and hit = ref false in
      while (not !hit) && !k < !kept_len && (!kept_card).(!k) <= c do
        if Arena.subsumes arena (!kept_idx).(!k) cand then hit := true;
        incr k
      done;
      !hit
    in
    let commit_existing st =
      Arena.stage_state arena st;
      match Arena.commit arena ~level:0 with `Fresh i | `Dup i -> i
    in
    let frontier = ref [] in
    (match snap with
    | None -> frontier := [ (commit_existing sys.initial, []) ]
    | Some s ->
        (* rehydrate the legacy-format snapshot: every seen state
           becomes a committed row, then kept and frontier resolve to
           their indices by dedup *)
        Hashtbl.iter
          (fun key () -> ignore (commit_existing (State.of_key ~n:sys.n key)))
          s.s_seen;
        List.iter
          (fun (st, _fp) -> kept_insert (commit_existing st))
          (List.rev s.s_kept);
        frontier := List.map (fun (st, pre) -> (commit_existing st, pre)) s.s_frontier);
    let result = ref None in
    let level = ref (match snap with Some s -> s.s_level | None -> 1) in
    (* last completed boundary's row count: an interrupted level's
       commits are truncated back to it before the final flush *)
    let boundary_len = ref (Arena.length arena) in
    let snapshot_payload () =
      let s_level = !level
      and s_nodes = Atomic.get nodes
      and s_pruned = !pruned_total
      and s_deduped = !deduped_total
      and s_subsumed = !subsumed_total
      and s_redundant = !redundant_total
      and s_sizes = !sizes
      and s_elapsed = Clock.wall () -. w0
      and s_elapsed_cpu = Clock.cpu () -. cpu0 in
      fun () ->
        let seen = Hashtbl.create (2 * Arena.length arena) in
        for idx = 0 to Arena.length arena - 1 do
          Hashtbl.replace seen (State.key (Arena.to_state arena idx)) ()
        done;
        let s_kept =
          List.init !kept_len (fun k ->
              let st = Arena.to_state arena (!kept_idx).(k) in
              (st, Subsume.fingerprint st))
        in
        let s_frontier =
          List.map (fun (idx, pre) -> (Arena.to_state arena idx, pre)) !frontier
        in
        ( Marshal.to_string
            { s_level;
              s_frontier;
              s_seen = seen;
              s_kept;
              s_nodes;
              s_pruned;
              s_deduped;
              s_subsumed;
              s_redundant;
              s_sizes;
              s_elapsed;
              s_elapsed_cpu }
            [],
          s_level )
    in
    while !result = None && !level <= max_depth && !frontier <> [] do
      let lvl = !level in
      let nodes0 = Atomic.get nodes in
      let pruned0 = !pruned_total
      and deduped0 = !deduped_total
      and subsumed0 = !subsumed_total
      and redundant0 = !redundant_total in
      Span.run ~sink ~name:"level" @@ fun sp ->
      let moves = sys.moves_at ~level:lvl in
      let remaining = max_depth - lvl in
      let last = lvl = max_depth in
      let candidates = ref [] in
      (* equality-dup hits are tallied locally and folded in only when
         the level completes, matching the legacy path (whose dedup
         phase never runs for an interrupted or over-budget level) *)
      let level_deduped = ref 0 in
      let found = ref None in
      (try
         List.iter
           (fun (pidx, pre) ->
             if cancelled () then raise Exit;
             let pst = lazy (Arena.to_state arena pidx) in
             let is_red =
               if sys.redundant_of == no_redundant then fun _ -> false
               else sys.redundant_of ~level:lvl (Lazy.force pst)
             in
             let redundant = ref 0 in
             let live =
               List.filter
                 (fun m ->
                   if is_red m then begin
                     incr redundant;
                     false
                   end
                   else true)
                 moves
             in
             let nlive = List.length live in
             let before = Atomic.fetch_and_add nodes nlive in
             let timed_out =
               match budget.max_seconds with
               | Some s -> Clock.wall () -. w0 > s
               | None -> false
             in
             if before + nlive > budget.max_nodes || timed_out then begin
               Atomic.set over_budget true;
               (* the tripping state's own redundancy tally is
                  discarded, exactly as the legacy chunk returns
                  an empty result once the budget trips *)
               raise Exit
             end;
             redundant_total := !redundant_total + !redundant;
             List.iter
               (fun m ->
                 Arena.stage_child arena ~parent:pidx (pairs_of m);
                 if Arena.staged_is_sorted arena then begin
                   found := Some (m :: pre);
                   raise Exit
                 end
                 else if last then ()
                 else if
                   sys.prune != no_prune
                   && sys.prune ~level:lvl ~remaining (Arena.staged_state arena)
                 then incr pruned_total
                 else
                   match Arena.commit arena ~level:lvl with
                   | `Fresh idx -> candidates := (idx, m :: pre) :: !candidates
                   | `Dup _ -> incr level_deduped)
               live)
           !frontier
       with Exit -> ());
      let surviving =
        match !found with
        | Some rev_moves ->
            result :=
              Some
                (Sorted
                   { depth = lvl;
                     moves = List.rev rev_moves;
                     stats = mk_stats (lvl - 1) });
            0
        | None ->
            if Atomic.get over_budget then begin
              result := Some (Inconclusive (mk_stats (lvl - 1)));
              0
            end
            else if cancelled () then begin
              result := Some (Interrupted (mk_stats (lvl - 1)));
              0
            end
            else begin
              deduped_total := !deduped_total + !level_deduped;
              let survivors =
                match sys.dedup with
                | Equal -> List.rev !candidates
                | Subsume ->
                    let ordered =
                      List.stable_sort
                        (fun (a, _) (b, _) ->
                          compare (Arena.card arena a) (Arena.card arena b))
                        (List.rev !candidates)
                    in
                    List.filter
                      (fun (idx, _) ->
                        if kept_subsumes idx then begin
                          incr subsumed_total;
                          false
                        end
                        else begin
                          kept_insert idx;
                          true
                        end)
                      ordered
              in
              let width = List.length survivors in
              (match frontier_log with
              | Some f ->
                  f ~level:lvl
                    (List.map (fun (idx, _) -> Arena.to_state arena idx)
                       survivors)
              | None -> ());
              sizes := width :: !sizes;
              frontier := survivors;
              incr level;
              width
            end
      in
      Span.add sp "level" (Sink.Int lvl);
      Span.add sp "nodes" (Sink.Int (Atomic.get nodes - nodes0));
      Span.add sp "pruned" (Sink.Int (!pruned_total - pruned0));
      Span.add sp "deduped" (Sink.Int (!deduped_total - deduped0));
      Span.add sp "subsumed" (Sink.Int (!subsumed_total - subsumed0));
      Span.add sp "redundant" (Sink.Int (!redundant_total - redundant0));
      Span.add sp "frontier" (Sink.Int surviving);
      (match on_level with
      | Some f when !result = None -> f ~level:lvl ~frontier:surviving (mk_stats lvl)
      | Some _ | None -> ());
      if !result = None then begin
        boundary_len := Arena.length arena;
        if ckpt_path <> None then begin
          let payload = snapshot_payload () in
          pending := Some payload;
          if Clock.wall () -. !last_write >= ckpt_interval then
            flush_payload payload
        end;
        if Fault.fire "kill-level" then interrupted := true;
        if cancelled () then result := Some (Interrupted (mk_stats lvl))
      end
    done;
    (match (!result, !pending) with
    | Some (Interrupted _), Some payload ->
        (* drop the in-flight level's commits so the lazily-built
           snapshot matches the boundary it was cut at *)
        Arena.truncate arena !boundary_len;
        flush_payload payload
    | _ -> ());
    Arena.record_metrics arena;
    match !result with Some r -> r | None -> Unsorted (mk_stats (!level - 1))
  in
  Span.run ~sink ~name:"search" @@ fun search_sp ->
  let outcome =
    if State.is_sorted sys.initial then
      Sorted { depth = 0; moves = []; stats = mk_stats 0 }
    else if use_arena then run_arena ()
    else begin
      (* cross-level memory: states already represented (sound — the
         earlier occurrence reaches any sorted descendant no later) *)
      let seen : (int array, unit) Hashtbl.t =
        match snap with Some s -> s.s_seen | None -> Hashtbl.create 4096
      in
      if Option.is_none snap then Hashtbl.replace seen (State.key sys.initial) ();
      let kept : (State.t * Subsume.fingerprint) list ref =
        ref (match snap with Some s -> s.s_kept | None -> [])
      in
      let frontier =
        ref
          (match snap with
          | Some s -> s.s_frontier
          | None -> [ (sys.initial, []) ])
      in
      let result = ref None in
      let level = ref (match snap with Some s -> s.s_level | None -> 1) in
      (* Capture the boundary NOW but serialize lazily, at flush time:
         the scalars below are overwritten by the very next level's
         expansion, so they are pinned eagerly, while the structures
         ([frontier] / [seen] / [kept]) are only mutated at the next
         boundary — which installs a fresh thunk before anything can
         flush this one. Skipped boundaries therefore cost a closure,
         not a Marshal of the whole search state. *)
      let snapshot_payload () =
        let s_level = !level
        and s_nodes = Atomic.get nodes
        and s_pruned = !pruned_total
        and s_deduped = !deduped_total
        and s_subsumed = !subsumed_total
        and s_redundant = !redundant_total
        and s_sizes = !sizes
        and s_elapsed = Clock.wall () -. w0
        and s_elapsed_cpu = Clock.cpu () -. cpu0 in
        fun () ->
          ( Marshal.to_string
              { s_level;
                s_frontier = !frontier;
                s_seen = seen;
                s_kept = !kept;
                s_nodes;
                s_pruned;
                s_deduped;
                s_subsumed;
                s_redundant;
                s_sizes;
                s_elapsed;
                s_elapsed_cpu }
              [],
            s_level )
      in
      while !result = None && !level <= max_depth && !frontier <> [] do
        let lvl = !level in
        let nodes0 = Atomic.get nodes in
        let pruned0 = !pruned_total
        and deduped0 = !deduped_total
        and subsumed0 = !subsumed_total
        and redundant0 = !redundant_total in
        (* nested under the "search" span: the event path is
           "search/level" *)
        Span.run ~sink ~name:"level" @@ fun sp ->
        let moves = sys.moves_at ~level:lvl in
        let remaining = max_depth - lvl in
        let last = lvl = max_depth in
        let expand (st, pre) =
          (* analysis hook: moves the system proves redundant for this
             state (another available move reaches the same child) are
             skipped before they are applied or counted as nodes *)
          let is_red = sys.redundant_of ~level:lvl st in
          let redundant = ref 0 in
          let live =
            List.filter
              (fun m ->
                if is_red m then begin
                  incr redundant;
                  false
                end
                else true)
              moves
          in
          let nlive = List.length live in
          let before = Atomic.fetch_and_add nodes nlive in
          let timed_out =
            match budget.max_seconds with
            | Some s -> Clock.wall () -. w0 > s
            | None -> false
          in
          if before + nlive > budget.max_nodes || timed_out then begin
            Atomic.set over_budget true;
            Atomic.set stop true;
            (None, [], 0, 0)
          end
          else begin
            let found = ref None in
            let cands = ref [] in
            let pruned = ref 0 in
            (try
               List.iter
                 (fun m ->
                   let st' = sys.apply m st in
                   if State.is_sorted st' then begin
                     found := Some (m :: pre);
                     Atomic.set stop true;
                     raise Exit
                   end
                   else if last then ()
                   else if sys.prune ~level:lvl ~remaining st' then incr pruned
                   else cands := (st', m :: pre) :: !cands)
                 live
             with Exit -> ());
            (!found, List.rev !cands, !pruned, !redundant)
          end
        in
        let chunks =
          Par.map_list_until ~min_per_domain:expand_min_per_domain ~domains
            ~stop:(fun () -> Atomic.get stop || cancelled ())
            ~default:(None, [], 0, 0) expand !frontier
        in
        List.iter
          (fun (_, _, p, r) ->
            pruned_total := !pruned_total + p;
            redundant_total := !redundant_total + r)
          chunks;
        let surviving =
          match List.find_map (fun (f, _, _, _) -> f) chunks with
          | Some rev_moves ->
              result :=
                Some
                  (Sorted
                     { depth = lvl;
                       moves = List.rev rev_moves;
                       stats = mk_stats (lvl - 1) });
              0
          | None ->
              if Atomic.get over_budget then begin
                result := Some (Inconclusive (mk_stats (lvl - 1)));
                0
              end
              else if cancelled () then begin
                (* killed mid-level: the current level's partial work is
                   discarded; the checkpoint (if any) holds the last
                   completed boundary, so a resumed run repeats exactly
                   this level and the cumulative counts match a
                   never-interrupted run *)
                result := Some (Interrupted (mk_stats (lvl - 1)));
                0
              end
              else begin
                let candidates =
                  List.concat_map (fun (_, c, _, _) -> c) chunks
                in
                (* equality dedup against everything ever seen *)
                let fresh =
                  List.filter
                    (fun (st, _) ->
                      let k = State.key st in
                      if Hashtbl.mem seen k then begin
                        incr deduped_total;
                        false
                      end
                      else begin
                        Hashtbl.replace seen k ();
                        true
                      end)
                    candidates
                in
                let survivors =
                  match sys.dedup with
                  | Equal -> fresh
                  | Subsume ->
                      let with_fp =
                        Par.map_list ~min_per_domain:expand_min_per_domain
                          ~domains
                          (fun (st, pre) -> (st, pre, Subsume.fingerprint st))
                          fresh
                      in
                      let ordered =
                        List.stable_sort
                          (fun (_, _, fa) (_, _, fb) ->
                            compare fa.Subsume.card fb.Subsume.card)
                          with_fp
                      in
                      let kept_states, dropped =
                        subsume_filter ~domains ~kept ordered
                      in
                      subsumed_total := !subsumed_total + dropped;
                      kept_states
                in
                let width = List.length survivors in
                (match frontier_log with
                | Some f -> f ~level:lvl (List.map fst survivors)
                | None -> ());
                sizes := width :: !sizes;
                frontier := survivors;
                incr level;
                width
              end
        in
        (* per-level deltas: summing these fields over all level events
           reproduces the run's final stats exactly *)
        Span.add sp "level" (Sink.Int lvl);
        Span.add sp "nodes" (Sink.Int (Atomic.get nodes - nodes0));
        Span.add sp "pruned" (Sink.Int (!pruned_total - pruned0));
        Span.add sp "deduped" (Sink.Int (!deduped_total - deduped0));
        Span.add sp "subsumed" (Sink.Int (!subsumed_total - subsumed0));
        Span.add sp "redundant" (Sink.Int (!redundant_total - redundant0));
        Span.add sp "frontier" (Sink.Int surviving);
        (match on_level with
        | Some f when !result = None ->
            (* level lvl fully expanded and deduplicated *)
            f ~level:lvl ~frontier:surviving (mk_stats lvl)
        | Some _ | None -> ());
        (* level boundary: cut a snapshot, flush on the cadence *)
        if !result = None then begin
          if ckpt_path <> None then begin
            let payload = snapshot_payload () in
            pending := Some payload;
            if Clock.wall () -. !last_write >= ckpt_interval then
              flush_payload payload
          end;
          (* simulated mid-run kill: fires after the boundary flush so
             every incarnation makes progress (exactly one level) *)
          if Fault.fire "kill-level" then interrupted := true;
          if cancelled () then
            result := Some (Interrupted (mk_stats lvl))
        end
      done;
      (* a final flush covers boundaries the cadence skipped, so an
         interrupted run never loses more than the in-flight level *)
      (match (!result, !pending) with
      | Some (Interrupted _), Some payload -> flush_payload payload
      | _ -> ());
      match !result with
      | Some r -> r
      | None ->
          (* loop left because level > max_depth or the frontier emptied:
             every reachable state was explored with its maximal
             remaining budget, so no prefix of <= max_depth moves sorts *)
          Unsorted (mk_stats (!level - 1))
    end
  in
  let s, verdict =
    match outcome with
    | Sorted { stats; _ } -> (stats, "sorted")
    | Unsorted stats -> (stats, "unsorted")
    | Inconclusive stats -> (stats, "inconclusive")
    | Interrupted stats -> (stats, "interrupted")
  in
  record_totals s;
  Span.add search_sp "outcome" (Sink.Str verdict);
  Span.add search_sp "nodes" (Sink.Int s.nodes);
  Span.add search_sp "pruned" (Sink.Int s.pruned);
  Span.add search_sp "deduped" (Sink.Int s.deduped);
  Span.add search_sp "subsumed" (Sink.Int s.subsumed);
  Span.add search_sp "redundant" (Sink.Int s.redundant);
  Span.add search_sp "peak_frontier" (Sink.Int s.peak_frontier);
  Span.add search_sp "completed_levels" (Sink.Int s.completed_levels);
  outcome

(* --- sorting-network instantiation --- *)

type layer = Layers.layer

let network_system ?(restrict = true) ~n () =
  if n < 2 || n > 10 then
    invalid_arg "Driver.network_system: n must be in [2, 10]";
  let all = Layers.all ~n in
  let first = [ Layers.first ~n ] in
  let second = if restrict then Layers.second ~n else all in
  let moves_at ~level =
    if level = 1 then first else if level = 2 then second else all
  in
  (* Analysis hook (restricted mode, levels >= 3 only): a layer
     containing a comparator [(i, j)] that never fires on the state's
     reachable set — no reachable mask has bit [i] set and bit [j]
     clear ({!Reach.unordered_pairs} over {!State.iter_masks}) —
     reaches exactly the state of that layer minus the comparator.
     [Layers.all] contains every nonempty matching, so from level 3 on
     the smaller layer is itself an available move (or, when it
     empties, the child equals the parent, which the equality dedup
     already represents); skipping the larger layer therefore loses no
     depth-optimal witness. Level 2 serves only symmetry
     representatives, where the sub-layer may be absent, and level 1
     is fixed — the hook stays off there. The reference system keeps
     the hook off entirely: it is the exhaustive baseline the pruned
     search is validated against. *)
  let redundant_of ~level st =
    if not restrict || level <= 2 then fun _ -> false
    else begin
      let tbl =
        lazy (Reach.unordered_pairs ~n ~iter:(fun f -> State.iter_masks f st))
      in
      fun layer ->
        List.exists
          (fun (i, j) -> not (Reach.pair_unordered (Lazy.force tbl) ~n i j))
          layer
    end
  in
  { n;
    tag = (if restrict then "layers" else "layers-reference");
    initial = State.initial ~n;
    moves_at;
    apply = (fun layer st -> State.apply_comparators st layer);
    pairs_of = Some (fun layer -> layer);
    prune = no_prune;
    redundant_of;
    dedup = (if restrict then Subsume else Equal) }

let optimal_depth ?domains ?engine ?budget ?sink ?on_level ?frontier_log
    ?cancel ?checkpoint ?resume ?restrict ?max_depth ~n () =
  let max_depth = match max_depth with Some d -> d | None -> n in
  run ?domains ?engine ?budget ?sink ?on_level ?frontier_log ?cancel
    ?checkpoint ?resume ~max_depth
    (network_system ?restrict ~n ())

let witness_network ~n layers =
  Network.of_gate_levels ~wires:n (List.map Layers.gates layers)

let verify_witness ~n layers =
  Bitslice.is_sorting_network (Cache.compile (witness_network ~n layers))
