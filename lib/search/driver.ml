type budget = { max_nodes : int; max_seconds : float option }

let default_budget = { max_nodes = 200_000_000; max_seconds = None }

type stats = {
  nodes : int;
  pruned : int;
  deduped : int;
  subsumed : int;
  frontier_sizes : int list;
  peak_frontier : int;
  completed_levels : int;
  elapsed : float;
  elapsed_cpu : float;
}

type 'm outcome =
  | Sorted of { depth : int; moves : 'm list; stats : stats }
  | Unsorted of stats
  | Inconclusive of stats

type dedup = Equal | Subsume

type 'm system = {
  n : int;
  initial : State.t;
  moves_at : level:int -> 'm list;
  apply : 'm -> State.t -> State.t;
  prune : level:int -> remaining:int -> State.t -> bool;
  dedup : dedup;
}

let no_prune ~level:_ ~remaining:_ _ = false

(* Cumulative global counters, surfaced by --metrics / bench-json. *)
let c_nodes = Metrics.counter "search.nodes"
let c_pruned = Metrics.counter "search.pruned"
let c_deduped = Metrics.counter "search.deduped"
let c_subsumed = Metrics.counter "search.subsumed"
let c_levels = Metrics.counter "search.levels"

(* Greedy subsumption filter. Candidates (already equality-deduped,
   sorted by ascending cardinality so the strongest states are kept
   first) are tested against the cumulative representative list; the
   test against representatives kept before this call parallelises in
   batches, the test against representatives added within the batch is
   a short sequential tail. Dropping a candidate is sound because some
   kept representative subsumes it. *)
let subsume_filter ~domains ~kept candidates =
  let dropped = ref 0 in
  let survivors = ref [] in
  let batch_size = if domains <= 1 then max_int else domains * 16 in
  let rec loop = function
    | [] -> ()
    | cands ->
        let rec split i acc = function
          | [] -> (List.rev acc, [])
          | x :: rest when i < batch_size -> split (i + 1) (x :: acc) rest
          | rest -> (List.rev acc, rest)
        in
        let batch, rest = split 0 [] cands in
        let frozen = !kept in
        let checked =
          Par.map_list ~domains
            (fun ((st, _, fp) as cand) ->
              if
                List.exists (fun (s2, f2) -> Subsume.subsumes (s2, f2) (st, fp)) frozen
              then None
              else Some cand)
            batch
        in
        let batch_new = ref [] in
        List.iter
          (function
            | None -> incr dropped
            | Some ((st, pre, fp) as cand) ->
                if
                  List.exists
                    (fun (s2, _, f2) -> Subsume.subsumes (s2, f2) (st, fp))
                    !batch_new
                then incr dropped
                else begin
                  batch_new := cand :: !batch_new;
                  kept := (st, fp) :: !kept;
                  survivors := (st, pre) :: !survivors
                end)
          checked;
        loop rest
  in
  loop candidates;
  (List.rev !survivors, !dropped)

let run ?(domains = 1) ?(budget = default_budget) ?(sink = Sink.null)
    ?on_level ~max_depth sys =
  if max_depth < 0 then invalid_arg "Driver.run: max_depth must be >= 0";
  let w0 = Clock.wall () in
  let cpu0 = Clock.cpu () in
  let nodes = Atomic.make 0 in
  let stop = Atomic.make false in
  let over_budget = Atomic.make false in
  let pruned_total = ref 0 in
  let deduped_total = ref 0 in
  let subsumed_total = ref 0 in
  let sizes = ref [] in
  let mk_stats completed =
    { nodes = Atomic.get nodes;
      pruned = !pruned_total;
      deduped = !deduped_total;
      subsumed = !subsumed_total;
      frontier_sizes = List.rev !sizes;
      peak_frontier = List.fold_left max 0 !sizes;
      completed_levels = completed;
      elapsed = Clock.wall () -. w0;
      elapsed_cpu = Clock.cpu () -. cpu0 }
  in
  let record_totals s =
    Metrics.add c_nodes s.nodes;
    Metrics.add c_pruned s.pruned;
    Metrics.add c_deduped s.deduped;
    Metrics.add c_subsumed s.subsumed;
    Metrics.add c_levels s.completed_levels
  in
  Span.run ~sink ~name:"search" @@ fun search_sp ->
  let outcome =
    if State.is_sorted sys.initial then
      Sorted { depth = 0; moves = []; stats = mk_stats 0 }
    else begin
      (* cross-level memory: states already represented (sound — the
         earlier occurrence reaches any sorted descendant no later) *)
      let seen : (int array, unit) Hashtbl.t = Hashtbl.create 4096 in
      Hashtbl.replace seen (State.key sys.initial) ();
      let kept : (State.t * Subsume.fingerprint) list ref = ref [] in
      let frontier = ref [ (sys.initial, []) ] in
      let result = ref None in
      let level = ref 1 in
      while !result = None && !level <= max_depth && !frontier <> [] do
        let lvl = !level in
        let nodes0 = Atomic.get nodes in
        let pruned0 = !pruned_total
        and deduped0 = !deduped_total
        and subsumed0 = !subsumed_total in
        (* nested under the "search" span: the event path is
           "search/level" *)
        Span.run ~sink ~name:"level" @@ fun sp ->
        let moves = sys.moves_at ~level:lvl in
        let nmoves = List.length moves in
        let remaining = max_depth - lvl in
        let last = lvl = max_depth in
        let expand (st, pre) =
          if Atomic.get stop then (None, [], 0)
          else begin
            let before = Atomic.fetch_and_add nodes nmoves in
            let timed_out =
              match budget.max_seconds with
              | Some s -> Clock.wall () -. w0 > s
              | None -> false
            in
            if before + nmoves > budget.max_nodes || timed_out then begin
              Atomic.set over_budget true;
              Atomic.set stop true;
              (None, [], 0)
            end
            else begin
              let found = ref None in
              let cands = ref [] in
              let pruned = ref 0 in
              (try
                 List.iter
                   (fun m ->
                     let st' = sys.apply m st in
                     if State.is_sorted st' then begin
                       found := Some (m :: pre);
                       Atomic.set stop true;
                       raise Exit
                     end
                     else if last then ()
                     else if sys.prune ~level:lvl ~remaining st' then incr pruned
                     else cands := (st', m :: pre) :: !cands)
                   moves
               with Exit -> ());
              (!found, List.rev !cands, !pruned)
            end
          end
        in
        let chunks = Par.map_list ~domains expand !frontier in
        List.iter (fun (_, _, p) -> pruned_total := !pruned_total + p) chunks;
        let surviving =
          match List.find_map (fun (f, _, _) -> f) chunks with
          | Some rev_moves ->
              result :=
                Some
                  (Sorted
                     { depth = lvl;
                       moves = List.rev rev_moves;
                       stats = mk_stats (lvl - 1) });
              0
          | None ->
              if Atomic.get over_budget then begin
                result := Some (Inconclusive (mk_stats (lvl - 1)));
                0
              end
              else begin
                let candidates = List.concat_map (fun (_, c, _) -> c) chunks in
                (* equality dedup against everything ever seen *)
                let fresh =
                  List.filter
                    (fun (st, _) ->
                      let k = State.key st in
                      if Hashtbl.mem seen k then begin
                        incr deduped_total;
                        false
                      end
                      else begin
                        Hashtbl.replace seen k ();
                        true
                      end)
                    candidates
                in
                let survivors =
                  match sys.dedup with
                  | Equal -> fresh
                  | Subsume ->
                      let with_fp =
                        Par.map_list ~domains
                          (fun (st, pre) -> (st, pre, Subsume.fingerprint st))
                          fresh
                      in
                      let ordered =
                        List.stable_sort
                          (fun (_, _, fa) (_, _, fb) ->
                            compare fa.Subsume.card fb.Subsume.card)
                          with_fp
                      in
                      let kept_states, dropped =
                        subsume_filter ~domains ~kept ordered
                      in
                      subsumed_total := !subsumed_total + dropped;
                      kept_states
                in
                let width = List.length survivors in
                sizes := width :: !sizes;
                frontier := survivors;
                incr level;
                width
              end
        in
        (* per-level deltas: summing these fields over all level events
           reproduces the run's final stats exactly *)
        Span.add sp "level" (Sink.Int lvl);
        Span.add sp "nodes" (Sink.Int (Atomic.get nodes - nodes0));
        Span.add sp "pruned" (Sink.Int (!pruned_total - pruned0));
        Span.add sp "deduped" (Sink.Int (!deduped_total - deduped0));
        Span.add sp "subsumed" (Sink.Int (!subsumed_total - subsumed0));
        Span.add sp "frontier" (Sink.Int surviving);
        match on_level with
        | Some f when !result = None ->
            (* level lvl fully expanded and deduplicated *)
            f ~level:lvl ~frontier:surviving (mk_stats lvl)
        | Some _ | None -> ()
      done;
      match !result with
      | Some r -> r
      | None ->
          (* loop left because level > max_depth or the frontier emptied:
             every reachable state was explored with its maximal
             remaining budget, so no prefix of <= max_depth moves sorts *)
          Unsorted (mk_stats (!level - 1))
    end
  in
  let s, verdict =
    match outcome with
    | Sorted { stats; _ } -> (stats, "sorted")
    | Unsorted stats -> (stats, "unsorted")
    | Inconclusive stats -> (stats, "inconclusive")
  in
  record_totals s;
  Span.add search_sp "outcome" (Sink.Str verdict);
  Span.add search_sp "nodes" (Sink.Int s.nodes);
  Span.add search_sp "pruned" (Sink.Int s.pruned);
  Span.add search_sp "deduped" (Sink.Int s.deduped);
  Span.add search_sp "subsumed" (Sink.Int s.subsumed);
  Span.add search_sp "peak_frontier" (Sink.Int s.peak_frontier);
  Span.add search_sp "completed_levels" (Sink.Int s.completed_levels);
  outcome

(* --- sorting-network instantiation --- *)

type layer = Layers.layer

let network_system ?(restrict = true) ~n () =
  if n < 2 || n > 10 then
    invalid_arg "Driver.network_system: n must be in [2, 10]";
  let all = Layers.all ~n in
  let first = [ Layers.first ~n ] in
  let second = if restrict then Layers.second ~n else all in
  let moves_at ~level =
    if level = 1 then first else if level = 2 then second else all
  in
  { n;
    initial = State.initial ~n;
    moves_at;
    apply = (fun layer st -> State.apply_comparators st layer);
    prune = no_prune;
    dedup = (if restrict then Subsume else Equal) }

let optimal_depth ?domains ?budget ?sink ?on_level ?restrict ?max_depth ~n () =
  let max_depth = match max_depth with Some d -> d | None -> n in
  run ?domains ?budget ?sink ?on_level ~max_depth (network_system ?restrict ~n ())

let witness_network ~n layers =
  Network.of_gate_levels ~wires:n (List.map Layers.gates layers)

let verify_witness ~n layers =
  Bitslice.is_sorting_network (Cache.compile (witness_network ~n layers))
