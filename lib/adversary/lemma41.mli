(** Lemma 4.1: one reverse delta network, processed recursively.

    Given adversary state whose pattern, restricted to the block's
    wires, uses only [S_0 / M_0 / L_0] (the Theorem 4.1 invariant), run
    the induction of Lemma 4.1 over the recursive structure: leaves
    yield singleton collections of [t(0) = k^3] sets, and every node
    combines its two children's collections with {!Mset.merge}.

    On return the state's input pattern has been refined so that the
    collection's sets are exactly its [M_i]-sets, each noncolliding in
    the block, with

    [|B| >= |A| - l |A| / k^2]   and   [t(l) = k^3 + l k^2]

    (Properties (1)–(4) of the lemma), both of which {!run} asserts. *)

type stats = {
  a_size : int;  (** [|A|]: tracked members on the block's wires at entry *)
  b_size : int;  (** [|B|]: surviving members *)
  levels : int;  (** [l] *)
  sets : int;  (** [t(l)] *)
  merges : Mset.merge_stats list;  (** per-node step records, leaf-to-root order *)
}

val run :
  ?policy:Mset.offset_policy ->
  ?sink:Sink.t ->
  Mset.state ->
  Reverse_delta.t ->
  Mset.collection * stats
(** Mutates the state (pattern refinement and symbolic routing) and
    returns the root collection. The lemma's loss bound (Property 4)
    and set count (implied by Property 1) are asserted unless an
    ablation [policy] of [Fixed _] is in force. [sink] receives one
    timed ["lemma41"] span per call, carrying [a_size] / [b_size] /
    [levels] / [sets]. *)
