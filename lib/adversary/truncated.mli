(** The [f(n)] variant (Section 5, second paragraph).

    If an arbitrary fixed permutation is allowed after every [f]
    shuffle stages (instead of every [lg n]), each chunk of [f] stages
    decomposes into [2^(lg n - f)] disjoint [f]-level reverse delta
    trees. The adversary runs Lemma 4.1 independently inside every
    tree of a chunk and then unions the collections index-wise —
    same-index sets share one [M_i] symbol and never met inside the
    chunk, so the union is still a family of noncolliding sets. The
    paper's modified splitting predicts a depth lower bound of
    [Omega(f lg n / lg f)] for this class, against the
    [O(f lg n)] upper bound from emulating AKS; experiment E8 measures
    the number of chunks survived as [f] varies. *)

type chunk_report = {
  index : int;
  a_size : int;
  b_size : int;
  sets : int;
  d_size : int;
}

type result = {
  reports : chunk_report list;
  survived : int;  (** chunks after which the special set had >= 2 wires *)
  final_pattern : Pattern.t;
  final_m_set : int list;
  exhausted : bool;
}

val run : ?k:int -> f:int -> Register_model.t -> result
(** [run ?k ~f prog] plays the adversary against a shuffle-based
    program whose stage count is a multiple of [f]; consecutive chunks
    are glued with the induced inter-chunk wire re-indexing
    ([rotl^f]). [k] defaults to [max 2 (lg n)].
    @raise Invalid_argument if [prog] is not shuffle-based or its
    stage count is not divisible by [f]. *)
