type block_report = {
  index : int;
  a_size : int;
  b_size : int;
  sets : int;
  d_size : int;
  paper_bound : float;
}

type result = {
  reports : block_report list;
  survived : int;
  final_pattern : Pattern.t;
  final_m_set : int list;
  exhausted : bool;
}

let log2f x = log x /. log 2.

let paper_bound ~n ~blocks =
  let lg = log2f (float_of_int n) in
  float_of_int n /. (lg ** (4. *. float_of_int blocks))

let depth_lower_bound ~n =
  let lg = log2f (float_of_int n) in
  lg *. lg /. (4. *. log2f lg)

let max_survivable_blocks ~n =
  let rec go d =
    if paper_bound ~n ~blocks:(d + 1) > 1. then go (d + 1) else d
  in
  go 0

let run ?k ?policy ?(sink = Sink.null) it =
  let n = Iterated.n it in
  let k =
    match k with Some k -> k | None -> max 2 (Bitops.ceil_log2 n)
  in
  let st = Mset.create ~n ~k in
  let reports = ref [] in
  let survived = ref 0 in
  let exhausted = ref true in
  Span.run ~sink ~name:"adversary" @@ fun adv_sp ->
  (try
     List.iteri
       (fun index (b : Iterated.block) ->
         (* the per-block span must close before the early-exit raise,
            or the block's event would be swallowed with it *)
         let d_size =
           Span.run ~sink ~name:"block" @@ fun sp ->
           (match b.pre with
           | None -> ()
           | Some p -> Mset.apply_swap_level st p);
           let coll, stats = Lemma41.run ?policy ~sink st b.body in
           let chosen, d_size = Mset.best_set coll in
           Mset.rho_rename st coll chosen;
           reports :=
             { index;
               a_size = stats.Lemma41.a_size;
               b_size = stats.Lemma41.b_size;
               sets = stats.Lemma41.sets;
               d_size;
               paper_bound = paper_bound ~n ~blocks:(index + 1) }
             :: !reports;
           Span.add sp "index" (Sink.Int index);
           Span.add sp "a_size" (Sink.Int stats.Lemma41.a_size);
           Span.add sp "b_size" (Sink.Int stats.Lemma41.b_size);
           Span.add sp "sets" (Sink.Int stats.Lemma41.sets);
           Span.add sp "d_size" (Sink.Int d_size);
           d_size
         in
         if d_size >= 2 then incr survived
         else begin
           exhausted := false;
           raise Exit
         end)
       (Iterated.blocks it)
   with Exit -> ());
  Span.add adv_sp "n" (Sink.Int n);
  Span.add adv_sp "blocks" (Sink.Int (List.length !reports));
  Span.add adv_sp "survived" (Sink.Int !survived);
  { reports = List.rev !reports;
    survived = !survived;
    final_pattern = Array.copy st.Mset.input_sym;
    final_m_set = Pattern.m_set st.Mset.input_sym 0;
    exhausted = !exhausted }
