type block_report = {
  index : int;
  a_size : int;
  b_size : int;
  sets : int;
  d_size : int;
  paper_bound : float;
}

type result = {
  reports : block_report list;
  survived : int;
  final_pattern : Pattern.t;
  final_m_set : int list;
  exhausted : bool;
}

let log2f x = log x /. log 2.

let paper_bound ~n ~blocks =
  let lg = log2f (float_of_int n) in
  float_of_int n /. (lg ** (4. *. float_of_int blocks))

let depth_lower_bound ~n =
  let lg = log2f (float_of_int n) in
  lg *. lg /. (4. *. log2f lg)

let max_survivable_blocks ~n =
  let rec go d =
    if paper_bound ~n ~blocks:(d + 1) > 1. then go (d + 1) else d
  in
  go 0

let run ?k ?policy it =
  let n = Iterated.n it in
  let k =
    match k with Some k -> k | None -> max 2 (Bitops.ceil_log2 n)
  in
  let st = Mset.create ~n ~k in
  let reports = ref [] in
  let survived = ref 0 in
  let exhausted = ref true in
  (try
     List.iteri
       (fun index (b : Iterated.block) ->
         (match b.pre with
         | None -> ()
         | Some p -> Mset.apply_swap_level st p);
         let coll, stats = Lemma41.run ?policy st b.body in
         let chosen, d_size = Mset.best_set coll in
         Mset.rho_rename st coll chosen;
         reports :=
           { index;
             a_size = stats.Lemma41.a_size;
             b_size = stats.Lemma41.b_size;
             sets = stats.Lemma41.sets;
             d_size;
             paper_bound = paper_bound ~n ~blocks:(index + 1) }
           :: !reports;
         if d_size >= 2 then incr survived
         else begin
           exhausted := false;
           raise Exit
         end)
       (Iterated.blocks it)
   with Exit -> ());
  { reports = List.rev !reports;
    survived = !survived;
    final_pattern = Array.copy st.Mset.input_sym;
    final_m_set = Pattern.m_set st.Mset.input_sym 0;
    exhausted = !exhausted }
