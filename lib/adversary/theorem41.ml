type block_report = {
  index : int;
  a_size : int;
  b_size : int;
  sets : int;
  d_size : int;
  paper_bound : float;
}

type result = {
  reports : block_report list;
  survived : int;
  final_pattern : Pattern.t;
  final_m_set : int list;
  exhausted : bool;
  interrupted : bool;
}

let log2f x = log x /. log 2.

let paper_bound ~n ~blocks =
  let lg = log2f (float_of_int n) in
  float_of_int n /. (lg ** (4. *. float_of_int blocks))

let depth_lower_bound ~n =
  let lg = log2f (float_of_int n) in
  lg *. lg /. (4. *. log2f lg)

let max_survivable_blocks ~n =
  let rec go d =
    if paper_bound ~n ~blocks:(d + 1) > 1. then go (d + 1) else d
  in
  go 0

(* --- per-block checkpointing --- *)

let checkpoint_kind = "snlb-adversary"

(* Everything the block loop needs to continue after the last fully
   processed block: the mutable adversary state, the reports so far,
   and the index of the next block to process. *)
type snapshot = {
  s_next : int;
  s_state : Mset.state;
  s_reports : block_report list;  (* reversed, as accumulated *)
  s_survived : int;
}

let write_checkpoint ~path ~n ~k ~blocks snap =
  match
    Checkpoint.write ~path
      { Checkpoint.kind = checkpoint_kind;
        meta =
          [ ("n", string_of_int n);
            ("k", string_of_int k);
            ("blocks", string_of_int blocks);
            ("next", string_of_int snap.s_next) ];
        payload = Marshal.to_string snap [] }
  with
  | Ok () -> ()
  | Error e ->
      Printf.eprintf "snlb: adversary checkpoint write failed (%s); run continues\n%!" e

let load_checkpoint ~path ~n ~k ~blocks =
  match Checkpoint.load ~path with
  | Error e ->
      Printf.eprintf "snlb: cannot resume adversary run (%s); starting fresh\n%!" e;
      None
  | Ok (ck, source) ->
      (match source with
      | `Primary -> ()
      | `Backup reason ->
          Printf.eprintf "snlb: falling back to checkpoint backup %s (%s)\n%!"
            (Atomic_file.backup_path path) reason);
      let meta_int key =
        Option.bind (List.assoc_opt key ck.Checkpoint.meta) int_of_string_opt
      in
      if
        ck.Checkpoint.kind = checkpoint_kind
        && meta_int "n" = Some n
        && meta_int "k" = Some k
        && meta_int "blocks" = Some blocks
      then Some (Marshal.from_string ck.Checkpoint.payload 0 : snapshot)
      else begin
        Printf.eprintf
          "snlb: checkpoint %s does not match this adversary run; starting fresh\n%!"
          path;
        None
      end

let run ?k ?policy ?(sink = Sink.null) ?cancel ?checkpoint ?(resume = false) it =
  let n = Iterated.n it in
  let k =
    match k with Some k -> k | None -> max 2 (Bitops.ceil_log2 n)
  in
  let blocks = Iterated.block_count it in
  let snap =
    match (resume, checkpoint) with
    | true, Some path -> load_checkpoint ~path ~n ~k ~blocks
    | true, None ->
        Printf.eprintf "snlb: resume requested without a checkpoint path; starting fresh\n%!";
        None
    | false, _ -> None
  in
  let st = match snap with Some s -> s.s_state | None -> Mset.create ~n ~k in
  let reports = ref (match snap with Some s -> s.s_reports | None -> []) in
  let survived = ref (match snap with Some s -> s.s_survived | None -> 0) in
  let first_block = match snap with Some s -> s.s_next | None -> 0 in
  let exhausted = ref true in
  let interrupted = ref false in
  let cancelled () =
    match cancel with Some t -> Cancel.cancelled t | None -> false
  in
  Span.run ~sink ~name:"adversary" @@ fun adv_sp ->
  (try
     List.iteri
       (fun index (b : Iterated.block) ->
         if index >= first_block then begin
           if cancelled () then begin
             interrupted := true;
             exhausted := false;
             raise Exit
           end;
           (* the per-block span must close before the early-exit raise,
              or the block's event would be swallowed with it *)
           let d_size =
             Span.run ~sink ~name:"block" @@ fun sp ->
             (match b.pre with
             | None -> ()
             | Some p -> Mset.apply_swap_level st p);
             let coll, stats = Lemma41.run ?policy ~sink st b.body in
             let chosen, d_size = Mset.best_set coll in
             Mset.rho_rename st coll chosen;
             reports :=
               { index;
                 a_size = stats.Lemma41.a_size;
                 b_size = stats.Lemma41.b_size;
                 sets = stats.Lemma41.sets;
                 d_size;
                 paper_bound = paper_bound ~n ~blocks:(index + 1) }
               :: !reports;
             Span.add sp "index" (Sink.Int index);
             Span.add sp "a_size" (Sink.Int stats.Lemma41.a_size);
             Span.add sp "b_size" (Sink.Int stats.Lemma41.b_size);
             Span.add sp "sets" (Sink.Int stats.Lemma41.sets);
             Span.add sp "d_size" (Sink.Int d_size);
             d_size
           in
           (* block boundary: persist progress before deciding to stop *)
           (match checkpoint with
           | Some path ->
               write_checkpoint ~path ~n ~k ~blocks
                 { s_next = index + 1;
                   s_state = st;
                   s_reports = !reports;
                   s_survived =
                     (if d_size >= 2 then !survived + 1 else !survived) }
           | None -> ());
           if d_size >= 2 then incr survived
           else begin
             exhausted := false;
             raise Exit
           end;
           (* simulated kill between blocks, after the boundary flush,
              so every incarnation advances exactly one block *)
           if index + 1 < blocks && (Fault.fire "kill-block" || cancelled ())
           then begin
             interrupted := true;
             exhausted := false;
             raise Exit
           end
         end)
       (Iterated.blocks it)
   with Exit -> ());
  Span.add adv_sp "n" (Sink.Int n);
  Span.add adv_sp "blocks" (Sink.Int (List.length !reports));
  Span.add adv_sp "survived" (Sink.Int !survived);
  (if !interrupted then
     Span.add adv_sp "outcome" (Sink.Str "interrupted"));
  { reports = List.rev !reports;
    survived = !survived;
    final_pattern = Array.copy st.Mset.input_sym;
    final_m_set = Pattern.m_set st.Mset.input_sym 0;
    exhausted = !exhausted;
    interrupted = !interrupted }
