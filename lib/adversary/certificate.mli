(** Fooling-pair certificates (Corollary 4.1.1).

    From a final input pattern whose [M_0]-set [D] has at least two
    wires and is noncolliding in a network, refine to a concrete input
    [pi] in which [D]'s wires carry *adjacent* values, pick two of
    them with values [m] and [m+1], and let [pi'] be [pi] with those
    two values exchanged. Since the network never compares [m] with
    [m+1] on input [pi], it performs the identical sequence of moves
    on both inputs, so it maps them to the same output permutation and
    cannot sort both.

    {!validate} re-checks all of that *concretely* — by instrumented
    evaluation of the actual network, with no reliance on the symbolic
    machinery that produced the pattern. A validated certificate is
    independent proof that the network is not a sorting network. *)

type t = {
  input : int array;  (** [pi], a permutation of [0, n) by wire *)
  twin : int array;  (** [pi'], differing from [pi] on two wires *)
  wire0 : int;
  wire1 : int;  (** the two witness wires from [D] *)
  value0 : int;  (** [m]; [twin] carries it on [wire1] *)
  value1 : int;  (** [m + 1] *)
  m_set : int list;  (** all wires of [D], for the noncollision audit *)
}

val of_pattern : Pattern.t -> t option
(** [None] when the [M_0]-set has fewer than two wires (the adversary
    lost). The two witness wires are chosen so their canonical values
    are consecutive. *)

val validate : Network.t -> t -> (unit, string) result
(** Checks, by direct evaluation of [nw]:
    - [input] and [twin] are permutations differing exactly by the
      stated swap;
    - values [value0] and [value1] are never compared on [input];
    - the outputs on [input] and [twin] are identical up to exchanging
      [value0] and [value1] (same routing permutation);
    - consequently the two outputs cannot both be sorted.
    Returns a description of the first failing check. *)

val to_cert : Network.t -> t -> (Cert.t, string) result
(** Package the fooling pair as a portable {!Cert.Lower_bound}: the
    network rewritten as register-model stages [(Pi_i, ops_i)] plus
    this certificate's input/twin/witness data, self-checked with
    {!Cert.check} before returning. [Error] when a gate does not sit
    on a register pair [(2k, 2k+1)] (only shuffle-style topologies
    convert) or the transcript fails the independent replay. *)

val validate_noncolliding : Network.t -> t -> (unit, string) result
(** The stronger audit: *no two* values carried by [m_set] wires are
    ever compared on [input] — i.e. [D] is noncolliding under the
    canonical refinement, the full Property (2) of Lemma 4.1. *)
