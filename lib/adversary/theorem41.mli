(** Theorem 4.1: iterating Lemma 4.1 over the blocks of an iterated
    reverse delta network.

    Starting from the all-[M_0] pattern, every block is processed by
    {!Lemma41.run}; the largest surviving [M_i]-set is selected and the
    pattern renamed back to [S_0 / M_0 / L_0] via [rho] (Lemma 3.4),
    ready for the next block. The run stops early once the special set
    has shrunk to a single wire — at that point the adversary has lost
    and the network *may* sort (a genuine sorter must always drive the
    adversary to that point; a too-shallow network must not, which is
    what Corollary 4.1.1 turns into a fooling pair). *)

type block_report = {
  index : int;
  a_size : int;  (** [|A|] entering the block *)
  b_size : int;  (** [|B|] after the block *)
  sets : int;  (** [t] *)
  d_size : int;  (** [|D|]: largest set, kept for the next block *)
  paper_bound : float;
      (** the theorem's pessimistic guarantee [n / lg^{4(index+1)} n],
          for comparison with the measured [d_size] *)
}

type result = {
  reports : block_report list;  (** one per processed block, in order *)
  survived : int;
      (** blocks after which the special set still had >= 2 wires *)
  final_pattern : Pattern.t;
      (** input pattern over the network's input wires; only
          [S_0 / M_0 / L_0] occur *)
  final_m_set : int list;
      (** the [M_0]-set of [final_pattern] — noncolliding in every
          processed block *)
  exhausted : bool;  (** all blocks processed (vs. stopped at |D| <= 1) *)
  interrupted : bool;
      (** stopped by a {!Cancel} token or an injected ["kill-block"]
          {!Fault} with blocks remaining; a configured checkpoint holds
          the last completed block for resumption *)
}

val run :
  ?k:int -> ?policy:Mset.offset_policy -> ?sink:Sink.t ->
  ?cancel:Cancel.t -> ?checkpoint:string -> ?resume:bool ->
  Iterated.t -> result
(** [run ?k ?policy it] processes the blocks of [it]. [k] defaults to
    [max 2 (lg n)], the theorem's choice; [policy] is the Lemma 4.1
    offset rule (ablation hook). [sink] receives one timed span per
    block (path ["adversary/block"], fields [index] / [a_size] /
    [b_size] / [sets] / [d_size]) nesting the {!Lemma41} span, plus a
    closing ["adversary"] event.

    Crash safety: with [~checkpoint:path] the run publishes a snapshot
    of the adversary state through {!Checkpoint.write} after {e every}
    block (blocks are the only consistent boundaries, and block counts
    are tiny — [O(lg n / lglg n)] — so no interval throttle is needed);
    [cancel] is polled between blocks. [~resume:true] restores the
    snapshot at [checkpoint] and continues with the next unprocessed
    block, so an interrupted-and-resumed run reports exactly the
    [reports] / [survived] / final pattern of an uninterrupted one. A
    missing, corrupt or mismatched (different [n], [k] or block
    structure) snapshot degrades to a fresh run with a [stderr]
    warning. *)

val paper_bound : n:int -> blocks:int -> float
(** [n / (lg n)^(4 d)] — the explicit bound of Theorem 4.1. *)

val depth_lower_bound : n:int -> float
(** The depth below which Corollary 4.1.1 guarantees a fooling pair:
    [lg^2 n / (4 lglg n)] comparator levels. *)

val max_survivable_blocks : n:int -> int
(** Largest [d] with [n / lg^{4d} n > 1] — the number of blocks the
    theorem guarantees the adversary survives. *)
