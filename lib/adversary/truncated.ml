type chunk_report = {
  index : int;
  a_size : int;
  b_size : int;
  sets : int;
  d_size : int;
}

type result = {
  reports : chunk_report list;
  survived : int;
  final_pattern : Pattern.t;
  final_m_set : int list;
  exhausted : bool;
}

let run ?k ~f prog =
  let n = Register_model.n prog in
  let chunks = Shuffle_net.chunk_ops prog ~f in
  let k =
    match k with Some k -> k | None -> max 2 (Bitops.ceil_log2 n)
  in
  let st = Mset.create ~n ~k in
  let reports = ref [] in
  let survived = ref 0 in
  let exhausted = ref true in
  let glue = Shuffle_net.inter_chunk_perm ~n ~f in
  (try
     List.iteri
       (fun index opss ->
         if index > 0 then Mset.apply_swap_level st glue;
         let a_size = Mset.tracked_count st in
         let forest = Shuffle_net.forest_of_ops ~n opss in
         let colls = List.map (fun tree -> fst (Lemma41.run st tree)) forest in
         let coll = Mset.union_collections colls in
         let chosen, d_size = Mset.best_set coll in
         Mset.rho_rename st coll chosen;
         reports :=
           { index;
             a_size;
             b_size = coll.Mset.total;
             sets = coll.Mset.t;
             d_size }
           :: !reports;
         if d_size >= 2 then incr survived
         else begin
           exhausted := false;
           raise Exit
         end)
       chunks
   with Exit -> ());
  { reports = List.rev !reports;
    survived = !survived;
    final_pattern = Array.copy st.Mset.input_sym;
    final_m_set = Pattern.m_set st.Mset.input_sym 0;
    exhausted = !exhausted }
