(** The naive halving adversary of Section 2.

    Keep a single special set of mutually-uncompared, adjacent values
    (initially everything); whenever a comparator joins two members,
    expel one. Each comparator level can halve the set, so this
    argument alone only yields the trivial [Omega(lg n)] bound — the
    point of experiment E4 is to measure exactly that gap against the
    paper's collection-of-sets adversary.

    Unlike {!Lemma41}, this adversary runs on arbitrary networks (any
    level structure, any permutations), which also makes it a handy
    generic fooling-pair generator for shallow circuits. *)

type result = {
  sizes : int list;
      (** special-set size after each comparator level, starting with
          the initial size [n] *)
  levels_survived : int;
      (** comparator levels processed before the set first had < 2
          wires (= all levels if it never did) *)
  final_pattern : Pattern.t;
  final_m_set : int list;
}

val run : Network.t -> result
(** Processes every level; the expelled member of a colliding pair is
    always the one on the comparator's min-output side. *)
