type result = {
  sizes : int list;
  levels_survived : int;
  final_pattern : Pattern.t;
  final_m_set : int list;
}

type state = {
  sym : Symbol.t array;
  origin : int option array;
  input_sym : Symbol.t array;
  tracked : bool array;
  mutable size : int;
  mutable x_fresh : int;
}

let tracked_at st w =
  match st.origin.(w) with
  | Some iw when st.tracked.(iw) -> Some iw
  | Some _ | None -> None

let untrack st w =
  match st.origin.(w) with
  | None -> assert false
  | Some iw ->
      let x = Symbol.X (0, st.x_fresh) in
      st.x_fresh <- st.x_fresh + 1;
      st.tracked.(iw) <- false;
      st.input_sym.(iw) <- x;
      st.sym.(w) <- x;
      st.origin.(w) <- None;
      st.size <- st.size - 1

let swap_state st a b =
  let s = st.sym.(a) in
  st.sym.(a) <- st.sym.(b);
  st.sym.(b) <- s;
  let o = st.origin.(a) in
  st.origin.(a) <- st.origin.(b);
  st.origin.(b) <- o

let fire st g =
  match g with
  | Gate.Exchange { a; b } -> swap_state st a b
  | Gate.Compare { lo; hi } ->
      (* A collision between two tracked values: expel the one that the
         comparator would route to the min output. *)
      (if tracked_at st lo <> None && tracked_at st hi <> None then untrack st lo);
      let c = Symbol.compare st.sym.(lo) st.sym.(hi) in
      if c > 0 then swap_state st lo hi
      else if c = 0 then
        assert (tracked_at st lo = None && tracked_at st hi = None)

let run nw =
  let n = Network.wires nw in
  let st =
    { sym = Array.make n (Symbol.M 0);
      origin = Array.init n (fun w -> Some w);
      input_sym = Array.make n (Symbol.M 0);
      tracked = Array.make n true;
      size = n;
      x_fresh = 0 }
  in
  let sizes = ref [ n ] in
  let levels_survived = ref 0 in
  let comparator_levels = ref 0 in
  List.iter
    (fun lvl ->
      (match lvl.Network.pre with
      | None -> ()
      | Some p ->
          let old_sym = Array.copy st.sym and old_origin = Array.copy st.origin in
          for w = 0 to n - 1 do
            let w' = Perm.apply p w in
            st.sym.(w') <- old_sym.(w);
            st.origin.(w') <- old_origin.(w)
          done);
      let has_comparator = List.exists Gate.is_comparator lvl.Network.gates in
      List.iter (fire st) lvl.Network.gates;
      if has_comparator then begin
        incr comparator_levels;
        sizes := st.size :: !sizes;
        if st.size >= 2 then levels_survived := !comparator_levels
      end)
    (Network.levels nw);
  { sizes = List.rev !sizes;
    levels_survived = !levels_survived;
    final_pattern = Array.copy st.input_sym;
    final_m_set = Pattern.m_set st.input_sym 0 }
