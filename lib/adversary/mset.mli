(** Shared adversary state and the collection-merge step of Lemma 4.1.

    The adversary maintains, while walking a (collection of) reverse
    delta network(s):

    - the *current pattern*: the symbol presently resting on every
      physical wire (symbols travel with values, values are routed by
      comparators acting on symbol order);
    - the *input pattern* it is constructing by stepwise refinement,
      over the original input wires — every renaming this module
      performs is an order-preserving renaming or a [U]-refinement in
      the sense of Definitions 3.1–3.3, so the input pattern always
      refines the pattern the run started from;
    - for every tracked value: its original input wire, its current
      physical wire, and the index of the noncolliding [M_i]-set it
      belongs to.

    A {!collection} is the family [M_0 .. M_{t-1}] of one (sub)network
    of the recursion; {!merge} implements the induction step: count
    the cross-level collision sets [C_{i,j}], pick the offset [i_0]
    minimising [L_{i_0} = sum_j |C_{j, j-i_0}|] (the averaging
    argument guarantees [|L_{i_0}| <= |B_0| / k^2], which is asserted),
    expel the [C_{j, j-i_0}] wires into fresh [X] symbols, shift the
    right-hand collection's indices up by [i_0], and only then fire
    the cross gates symbolically. *)

type collection = private {
  sets : (int, int list) Hashtbl.t;
      (** set index -> members, as original input wires; only nonempty
          sets are present *)
  t : int;  (** number of sets, [t(l) = k^3 + l k^2] *)
  total : int;  (** total membership across sets *)
}

type state = {
  n : int;
  k : int;  (** the lemma's parameter [k] *)
  sym : Symbol.t array;  (** physical wire -> current symbol *)
  origin : int option array;
      (** physical wire -> original input wire of the tracked value
          currently there; [None] for untracked values *)
  pos : int array;  (** original input wire -> current physical wire *)
  tracked : bool array;  (** original input wire -> still tracked? *)
  set_idx : int array;  (** original input wire -> set index *)
  input_sym : Symbol.t array;
      (** the input pattern under construction, over original wires *)
  mutable x_fresh : int;  (** next fresh second index for [X] symbols *)
}

val create : n:int -> k:int -> state
(** Fresh state for Theorem 4.1: every wire tracked in set 0 with
    symbol [M_0], identity positions. *)

val singleton_collection : state -> int -> collection
(** [singleton_collection st w] is the [t(0) = k^3]-set collection of
    the leaf at physical wire [w]: set 0 holds the tracked value
    currently on [w], if any (base case of Lemma 4.1). *)

val empty_collection : state -> collection
(** A [t(0)]-set collection with no members (for truncated-forest
    bookkeeping). *)

val union_collections : collection list -> collection
(** Index-wise union of collections over *disjoint* subnetworks that
    share the symbol space (used by the truncated variant, where one
    chunk is a forest of disjoint trees): sets with equal index carry
    the same [M_i] symbol and never met inside the chunk, so their
    union is still noncolliding so far. All collections must have
    equal [t]. *)

type merge_stats = {
  i0 : int;  (** chosen offset *)
  candidates : int;  (** cross pairs with both sides tracked *)
  removed : int;  (** [|L_{i0}|] — wires expelled *)
  left_total : int;  (** [|B_0|] *)
}

type offset_policy =
  | Argmin  (** smallest loss, smallest offset on ties (default) *)
  | First_below_average
      (** the first [i] with [|L_i| <= |B_0| / k^2] — the literal
          existence form of the paper's averaging argument *)
  | Fixed of int
      (** always offset [i mod k^2] — the ablation control; the
          averaging guarantee does not apply *)

val merge :
  ?policy:offset_policy ->
  state ->
  cross:Reverse_delta.cross list ->
  left:collection ->
  right:collection ->
  collection * merge_stats
(** One induction step of Lemma 4.1 at a node whose final level is
    [cross]. Mutates [state] (renamings and symbolic routing) and
    returns the combined collection with [t' = t + k^2].
    @raise Invalid_argument if the two collections disagree on [t].
    @raise Assert_failure if the averaging bound fails under [Argmin]
    or [First_below_average] — it cannot, by the paper's disjointness
    argument. *)

val apply_swap_level : state -> Perm.t -> unit
(** Route an inter-block permutation through the physical state:
    the value on wire [j] moves to wire [perm j]. *)

val best_set : collection -> int * int
(** [(index, size)] of a largest set (smallest index on ties);
    [(0, 0)] for an all-empty collection. *)

val rho_rename : state -> collection -> int -> unit
(** The [rho_i] renaming of Lemma 3.4, applied between blocks
    (Theorem 4.1): every symbol below [M_i] becomes [S_0], everything
    above becomes [L_0], [M_i] becomes [M_0]; members of set [i] are
    re-tracked as set 0 and everything else is untracked. *)

val tracked_count : state -> int

val check_invariants : state -> collection -> unit
(** Internal-consistency audit used by the test suite: positions and
    origins are mutually inverse, tracked wires carry exactly the
    [M_i] symbol of their set, collection membership matches the
    [set_idx] table, and input/current symbols agree per value.
    @raise Failure describing the first violation. *)
