(** The adaptive extension (Section 5, first paragraph).

    The lower-bound argument never assumed the comparator labeling
    was fixed in advance: the network builder may choose every stage's
    op vector after seeing everything that happened so far, and the
    adversary still wins. This module plays that game concretely on
    shuffle-based networks: the engine alternates between a *builder*
    (who picks each stage's [+,-,0,1] labeling, with full knowledge of
    the adversary's bookkeeping — strictly more information than the
    paper grants) and the Lemma 4.1 adversary (processed stage by
    stage rather than by recursion, which is the same computation in
    a different order).

    The chosen labels are recorded, so the adaptively-built network is
    returned as an ordinary register program and any resulting fooling
    pair can be validated against it. *)

type builder =
  stage:int ->
  state:Mset.state ->
  pairs:(int * int) array ->
  Reverse_delta.kind option array
(** [builder ~stage ~state ~pairs] labels the cross pairs of shuffle
    stage [stage] (1-indexed within the current block). [pairs.(i)] is
    the (sub0-wire, sub1-wire) pair in the block's input-wire
    coordinates; return value [i] labels that pair ([None] = "0"). The
    builder may inspect the full adversary [state] but must not mutate
    it. *)

type result = {
  reports : Theorem41.block_report list;
  survived : int;
  final_pattern : Pattern.t;
  final_m_set : int list;
  program : Register_model.t;  (** the network the builder produced *)
}

val run : ?k:int -> n:int -> blocks:int -> builder -> result
(** Play [blocks] full shuffle blocks on [n = 2^d] wires. Stops early
    when the special set drops below 2 wires; the returned program
    covers only the stages actually played. *)

val oblivious_all_compare : builder
(** Ignores the state: "+" everywhere (the densest fixed network). *)

val greedy_killer : builder
(** Compares exactly the pairs whose two wires currently hold tracked
    values of the same set (each such comparison costs the adversary a
    wire); leaves everything else alone. *)

val steering_killer : builder
(** {!greedy_killer} plus routing: a pair holding exactly one tracked
    value uses "0"/"1" to park that value on whichever side will meet
    a same-set tracked value at the next stage, manufacturing future
    collisions. *)
