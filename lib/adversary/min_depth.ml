type outcome =
  | Sorter of Register_model.op array list
  | Impossible
  | Inconclusive

(* Masks encode one zero-one input/state: bit r = value of register r. *)

let shuffle_mask ~n ~d m =
  (* content of register j moves to rotl j: bit r of m' = bit rotr r of m *)
  let m' = ref 0 in
  for r = 0 to n - 1 do
    let src = if r = 0 then 0 else ((r lsr 1) lor ((r land 1) lsl (d - 1))) in
    if (m lsr src) land 1 = 1 then m' := !m' lor (1 lsl r)
  done;
  !m'

let apply_ops ~pairs ops m =
  let m = ref m in
  for k = 0 to pairs - 1 do
    let a = 2 * k and b = (2 * k) + 1 in
    let va = (!m lsr a) land 1 and vb = (!m lsr b) land 1 in
    let va', vb' =
      match ops.(k) with
      | Register_model.Plus -> (va land vb, va lor vb)
      | Register_model.Minus -> (va lor vb, va land vb)
      | Register_model.One -> (vb, va)
      | Register_model.Zero -> (va, vb)
    in
    m := !m land lnot ((1 lsl a) lor (1 lsl b));
    m := !m lor (va' lsl a) lor (vb' lsl b)
  done;
  !m

module Int_set = Set.Make (Int)

let sorted_masks n =
  (* ascending by register index: zeros at low registers *)
  List.init (n + 1) (fun z -> ((1 lsl z) - 1) lsl (n - z)) |> Int_set.of_list

let all_op_vectors ~pairs =
  (* enumerate {+,-,0,1}^pairs; Plus first so witnesses favour dense
     comparator levels *)
  let ops_of_code code =
    Array.init pairs (fun k ->
        match (code lsr (2 * k)) land 3 with
        | 0 -> Register_model.Plus
        | 1 -> Register_model.Minus
        | 2 -> Register_model.One
        | _ -> Register_model.Zero)
  in
  List.init (1 lsl (2 * pairs)) ops_of_code

(* Necessary condition for sorting within [r] more stages: every unit
   mask's one must sit at a register whose low [d - r] bits are all
   ones (its committed high position bits must already be correct);
   dually for single-zero masks. *)
let prunable ~n ~d ~remaining state =
  if remaining >= d then false
  else begin
    let low_bits = d - remaining in
    let low_mask = (1 lsl low_bits) - 1 in
    let full = (1 lsl n) - 1 in
    Int_set.exists
      (fun m ->
        if m <> 0 && m land (m - 1) = 0 then begin
          (* unit: position of the single one *)
          let p = Bitops.floor_log2 m in
          p land low_mask <> low_mask
        end
        else
          let c = full land lnot m in
          if c <> 0 && c land (c - 1) = 0 then begin
            let p = Bitops.floor_log2 c in
            p land low_mask <> 0
          end
          else false)
      state
  end

let key_of_state state =
  let b = Buffer.create 64 in
  Int_set.iter (fun m -> Buffer.add_string b (string_of_int m); Buffer.add_char b ',') state;
  Buffer.contents b

let search ~n ~depth ?(node_budget = 5_000_000) () =
  if not (Bitops.is_power_of_two n) || n < 2 || n > 256 then
    invalid_arg "Min_depth.search: n must be a power of two in [2,256]";
  let d = Bitops.log2_exact n in
  let pairs = n / 2 in
  let sorted = sorted_masks n in
  let vectors = all_op_vectors ~pairs in
  let initial = Int_set.of_list (List.init (1 lsl n) (fun m -> m)) in
  (* memo: state key -> largest remaining budget already refuted *)
  let refuted : (string, int) Hashtbl.t = Hashtbl.create 4096 in
  let nodes = ref 0 in
  let exception Budget in
  let rec go state remaining =
    if Int_set.subset state sorted then Some []
    else if remaining = 0 then None
    else if prunable ~n ~d ~remaining state then None
    else begin
      incr nodes;
      if !nodes > node_budget then raise Budget;
      let key = key_of_state state in
      match Hashtbl.find_opt refuted key with
      | Some r when r >= remaining -> None
      | Some _ | None ->
          let rec try_vectors = function
            | [] ->
                Hashtbl.replace refuted key remaining;
                None
            | ops :: rest -> (
                let state' =
                  Int_set.map
                    (fun m -> apply_ops ~pairs ops (shuffle_mask ~n ~d m))
                    state
                in
                match go state' (remaining - 1) with
                | Some tail -> Some (ops :: tail)
                | None -> try_vectors rest)
          in
          try_vectors vectors
    end
  in
  match go initial depth with
  | Some program -> Sorter program
  | None -> Impossible
  | exception Budget -> Inconclusive

let verify_witness ~n program =
  let prog = Register_model.shuffle_program ~n program in
  Zero_one.is_sorting_network (Register_model.to_network prog)

let minimal_depth ~n ~max_depth ?node_budget () =
  let rec go depth =
    if depth > max_depth then None
    else
      match search ~n ~depth ?node_budget () with
      | Sorter program ->
          assert (verify_witness ~n program);
          Some (depth, program)
      | Impossible -> go (depth + 1)
      | Inconclusive ->
          failwith
            (Printf.sprintf
               "Min_depth.minimal_depth: inconclusive at depth %d (raise node_budget)"
               depth)
  in
  go 1
