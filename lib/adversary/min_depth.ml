type outcome =
  | Sorter of Register_model.op array list
  | Impossible
  | Inconclusive
  | Interrupted

type minimal =
  | Minimal of int * Register_model.op array list
  | No_sorter
  | Unknown of int
  | Stopped of int

(* Masks encode one zero-one input/state: bit r = value of register r. *)

let shuffle_mask ~n ~d m =
  (* content of register j moves to rotl j: bit r of m' = bit rotr r of m *)
  let m' = ref 0 in
  for r = 0 to n - 1 do
    let src = if r = 0 then 0 else ((r lsr 1) lor ((r land 1) lsl (d - 1))) in
    if (m lsr src) land 1 = 1 then m' := !m' lor (1 lsl r)
  done;
  !m'

let apply_ops ~pairs ops m =
  let m = ref m in
  for k = 0 to pairs - 1 do
    let a = 2 * k and b = (2 * k) + 1 in
    let va = (!m lsr a) land 1 and vb = (!m lsr b) land 1 in
    let va', vb' =
      match ops.(k) with
      | Register_model.Plus -> (va land vb, va lor vb)
      | Register_model.Minus -> (va lor vb, va land vb)
      | Register_model.One -> (vb, va)
      | Register_model.Zero -> (va, vb)
    in
    m := !m land lnot ((1 lsl a) lor (1 lsl b));
    m := !m lor (va' lsl a) lor (vb' lsl b)
  done;
  !m

let all_op_vectors ~pairs =
  (* enumerate {+,-,0,1}^pairs; Plus first so witnesses favour dense
     comparator levels *)
  let ops_of_code code =
    Array.init pairs (fun k ->
        match (code lsr (2 * k)) land 3 with
        | 0 -> Register_model.Plus
        | 1 -> Register_model.Minus
        | 2 -> Register_model.One
        | _ -> Register_model.Zero)
  in
  List.init (1 lsl (2 * pairs)) ops_of_code

(* Necessary condition for sorting within [r] more stages: every unit
   mask's one must sit at a register whose low [d - r] bits are all
   ones (its committed high position bits must already be correct);
   dually for single-zero masks. *)
let prunable ~n ~d ~remaining state =
  if remaining >= d then false
  else begin
    let low_bits = d - remaining in
    let low_mask = (1 lsl low_bits) - 1 in
    let full = (1 lsl n) - 1 in
    State.exists_mask
      (fun m ->
        if m <> 0 && m land (m - 1) = 0 then begin
          (* unit: position of the single one *)
          let p = Bitops.floor_log2 m in
          p land low_mask <> low_mask
        end
        else
          let c = full land lnot m in
          if c <> 0 && c land (c - 1) = 0 then begin
            let p = Bitops.floor_log2 c in
            p land low_mask <> 0
          end
          else false)
      state
  end

(* Channel permutations do not commute with the fixed shuffle wiring,
   so subsumption (sound for the free-layer search) is NOT sound here;
   the frontier is deduplicated by state equality only. *)
let system ~n =
  let d = Bitops.log2_exact n in
  let pairs = n / 2 in
  let vectors = all_op_vectors ~pairs in
  { Driver.n;
    tag = "shuffle-ops";
    initial = State.initial ~n;
    moves_at = (fun ~level:_ -> vectors);
    apply =
      (fun ops st ->
        State.map_masks st (fun m -> apply_ops ~pairs ops (shuffle_mask ~n ~d m)));
    (* a move here is shuffle-then-ops, not a comparator layer, so the
       arena engine's butterfly apply cannot express it *)
    pairs_of = None;
    prune = (fun ~level:_ ~remaining st -> prunable ~n ~d ~remaining st);
    (* redundancy hook off: the op-vector move set is tiny (4^(n/2)
       vectors, n <= 8 in practice) and equality dedup already
       collapses the children a never-firing op would duplicate *)
    redundant_of = Driver.no_redundant;
    dedup = Driver.Equal }

let check_n ~fn n =
  if not (Bitops.is_power_of_two n) || n < 2 || n > 16 then
    invalid_arg (fn ^ ": n must be a power of two in [2,16]")

let search ~n ~depth ?budget ?domains ?sink ?cancel ?checkpoint ?resume () =
  check_n ~fn:"Min_depth.search" n;
  match
    Driver.run ?domains ?budget ?sink ?cancel ?checkpoint ?resume
      ~max_depth:depth (system ~n)
  with
  | Driver.Sorted { moves; _ } -> Sorter moves
  | Driver.Unsorted _ -> Impossible
  | Driver.Inconclusive _ -> Inconclusive
  | Driver.Interrupted _ -> Interrupted

let verify_witness ~n program =
  let prog = Register_model.shuffle_program ~n program in
  Zero_one.is_sorting_network (Register_model.to_network prog)

let minimal_depth ~n ~max_depth ?budget ?domains ?sink ?cancel ?checkpoint
    ?resume () =
  check_n ~fn:"Min_depth.minimal_depth" n;
  match
    Driver.run ?domains ?budget ?sink ?cancel ?checkpoint ?resume ~max_depth
      (system ~n)
  with
  | Driver.Sorted { depth; moves; _ } ->
      assert (verify_witness ~n moves);
      Minimal (depth, moves)
  | Driver.Unsorted _ -> No_sorter
  | Driver.Inconclusive stats -> Unknown stats.Driver.completed_levels
  | Driver.Interrupted stats -> Stopped stats.Driver.completed_levels
