(** Exhaustive minimal-depth search for shuffle-based sorters (tiny n).

    Section 6 asks whether small-depth sorting networks based on a
    single permutation exist, and Knuth's problem 5.3.4.47 asks for the
    exact minimal depth of shuffle-based sorters. For tiny [n] the
    question is decidable by search: a prefix of a shuffle-based
    network is characterised (for sorting purposes, by the 0-1
    principle) by the *image* of all [2^n] zero-one inputs, a set of at
    most [2^n] bit masks; stages act on that image deterministically,
    so depth-first search with memoisation over images answers "does a
    depth-[D] shuffle-based sorter exist?" exactly.

    Pruning: unit masks (single 1) remain unit masks under comparators,
    and a unit at register [p] can only reach the top register within
    [r] further stages if the low [lg n - r] bits of [p] are all ones
    (its high position bits are already committed); dually for
    single-zero masks. This cheap necessary condition cuts the search
    space by orders of magnitude and is itself exercised by the test
    suite. *)

type outcome =
  | Sorter of Register_model.op array list
      (** a witness program: op vectors, one per stage *)
  | Impossible  (** exhaustively refuted at this depth *)
  | Inconclusive  (** search aborted by the node budget *)

val search : n:int -> depth:int -> ?node_budget:int -> unit -> outcome
(** [search ~n ~depth ()] decides whether some shuffle-based network of
    exactly [depth] stages sorts all inputs. [node_budget] (default
    [5_000_000]) bounds the number of states expanded.
    @raise Invalid_argument unless [n] is a power of two in [2, 256]. *)

val minimal_depth : n:int -> max_depth:int -> ?node_budget:int -> unit ->
  (int * Register_model.op array list) option
(** Iterative deepening: the least [D <= max_depth] admitting a sorter,
    with a witness, or [None] if every depth up to [max_depth] is
    refuted (raises [Failure] if a level was inconclusive, since
    minimality could then not be certified). *)

val verify_witness : n:int -> Register_model.op array list -> bool
(** Checks a witness with the independent 0-1 verifier. *)
