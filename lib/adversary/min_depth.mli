(** Exhaustive minimal-depth search for shuffle-based sorters (tiny n),
    as a shuffle-restricted instantiation of the generic layered search
    driver ({!Driver}).

    Section 6 asks whether small-depth sorting networks based on a
    single permutation exist, and Knuth's problem 5.3.4.47 asks for the
    exact minimal depth of shuffle-based sorters. For tiny [n] the
    question is decidable by search: a prefix of a shuffle-based
    network is characterised (for sorting purposes, by the 0-1
    principle) by the *image* of all [2^n] zero-one inputs — exactly
    the packed {!State} representation — and stages act on that image
    deterministically, so a layered breadth-first search over images
    answers "does a depth-[D] shuffle-based sorter exist?" exactly.

    The instantiation plugs three things into {!Driver.run}: the move
    set (all [4^(n/2)] op vectors per stage), the transition (shuffle
    the registers, then apply the op vector pairwise), and a pruning
    test — unit masks (single 1) remain unit masks under comparators,
    and a unit at register [p] can only reach the top register within
    [r] further stages if the low [lg n - r] bits of [p] are all ones
    (its high position bits are already committed); dually for
    single-zero masks. Unlike the free-layer search, the frontier is
    deduplicated by state {e equality} only: channel permutations do
    not commute with the fixed shuffle wiring, so subsumption is
    unsound here. *)

type outcome =
  | Sorter of Register_model.op array list
      (** a witness program: op vectors, one per stage *)
  | Impossible  (** exhaustively refuted at this depth *)
  | Inconclusive  (** search aborted by the budget *)
  | Interrupted  (** cancelled; a configured checkpoint can resume *)

type minimal =
  | Minimal of int * Register_model.op array list
      (** the exact minimal depth, with a verified witness *)
  | No_sorter  (** every depth up to [max_depth] exhaustively refuted *)
  | Unknown of int
      (** budget exhausted; depths up to the payload {e are} refuted *)
  | Stopped of int
      (** cancelled; depths up to the payload {e are} refuted, and a
          configured checkpoint can resume the rest *)

val search :
  n:int -> depth:int -> ?budget:Driver.budget -> ?domains:int ->
  ?sink:Sink.t -> ?cancel:Cancel.t -> ?checkpoint:string * float ->
  ?resume:Driver.resume_state -> unit -> outcome
(** [search ~n ~depth ()] decides whether some shuffle-based network of
    at most [depth] stages sorts all inputs (a [Sorter] witness may be
    shorter than [depth]). [budget] (default {!Driver.default_budget})
    bounds move applications as in {!Driver.run}; [sink] receives the
    driver's per-level span events; [cancel] / [checkpoint] / [resume]
    behave exactly as in {!Driver.run} (snapshots carry the
    ["shuffle-ops"] tag, so they cannot be resumed into the free-layer
    search or vice versa).
    @raise Invalid_argument unless [n] is a power of two in [2, 16]. *)

val minimal_depth :
  n:int -> max_depth:int -> ?budget:Driver.budget -> ?domains:int ->
  ?sink:Sink.t -> ?cancel:Cancel.t -> ?checkpoint:string * float ->
  ?resume:Driver.resume_state -> unit -> minimal
(** The least [D <= max_depth] admitting a sorter, with a verified
    witness ([Minimal]); [No_sorter] if every depth up to [max_depth]
    is refuted; [Unknown k] if the budget ran out after exhaustively
    refuting depths up to [k]; [Stopped k] likewise on cancellation. *)

val verify_witness : n:int -> Register_model.op array list -> bool
(** Checks a witness with the independent 0-1 verifier. *)
